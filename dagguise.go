// Package dagguise is a from-scratch reproduction of "DAGguise: Mitigating
// Memory Timing Side Channels" (Deutsch, Yang, Bourgeat, Drean, Emer, Yan —
// ASPLOS 2022): a request shaper that re-times a protected application's
// memory traffic to follow a secret-independent Directed Acyclic Request
// Graph (rDAG), together with everything needed to evaluate it — a
// transaction-level DDR3 + memory-controller simulator, trace-driven
// out-of-order cores, the FS / FS-BTA / TP / Camouflage baselines, attack
// and leakage measurement machinery, an offline profiling phase, a SAT
// solver driving a k-induction security proof, and an area model.
//
// The package is a facade over the internal subsystems; see DESIGN.md for
// the full inventory and EXPERIMENTS.md for the paper-versus-measured
// results of every table and figure.
//
// # Quick start
//
//	tpl := dagguise.Template{Sequences: 4, Weight: 300, WriteRatio: 0.001, Banks: 8}
//	sys, err := dagguise.NewSystem(dagguise.DefaultConfig(2, dagguise.DAGguise), []dagguise.CoreSpec{
//		{Name: "victim", Source: victimTrace, Protected: true, Defense: tpl},
//		{Name: "co-runner", Source: appTrace},
//	})
//	res := sys.Measure(30_000, 400_000)
package dagguise

import (
	"dagguise/internal/config"
	"dagguise/internal/sim"
)

// Scheme selects the memory protection mechanism.
type Scheme = config.Scheme

// The evaluated schemes.
const (
	// Insecure is the unprotected FR-FCFS / open-row baseline.
	Insecure = config.Insecure
	// FixedService is static slot-based temporal partitioning.
	FixedService = config.FixedService
	// FSBTA is Fixed Service with Bank Triple Alternation.
	FSBTA = config.FSBTA
	// TemporalPartitioning is coarse time-sliced partitioning.
	TemporalPartitioning = config.TemporalPartitioning
	// Camouflage is distribution-based traffic shaping (insecure against
	// fine-grained attacks; included as a baseline).
	Camouflage = config.Camouflage
	// DAGguise is the paper's rDAG request shaper.
	DAGguise = config.DAGguise
)

// SystemConfig is the simulated machine configuration (Table 2).
type SystemConfig = config.SystemConfig

// DRAMTiming is the DDR3 timing parameter set in DRAM cycles.
type DRAMTiming = config.DRAMTiming

// CacheLevel configures one cache level.
type CacheLevel = config.CacheLevel

// CoreConfig configures the out-of-order core model.
type CoreConfig = config.CoreConfig

// DefaultConfig returns the paper's Table 2 machine with the given core
// count and protection scheme.
func DefaultConfig(cores int, scheme Scheme) SystemConfig {
	return config.Default(cores, scheme)
}

// DDR31600 returns the Table 2 DDR3-1600 timing parameters.
func DDR31600() DRAMTiming { return config.DDR31600() }

// ParseScheme maps an evaluation name ("insecure", "fs", "fs-bta", "tp",
// "camouflage", "dagguise") to a Scheme.
func ParseScheme(name string) (Scheme, error) { return config.ParseScheme(name) }

// System is a fully wired simulated machine: cores, caches, shapers,
// memory controller and DRAM.
type System = sim.System

// CoreSpec describes one core's workload and protection needs.
type CoreSpec = sim.CoreSpec

// CoreResult is the per-core outcome of a measurement window.
type CoreResult = sim.CoreResult

// Result is the outcome of a measurement window.
type Result = sim.Result

// CPUFrequencyHz is the simulated core clock.
const CPUFrequencyHz = sim.CPUFrequencyHz

// NewSystem builds a simulated machine from the configuration and per-core
// specs. The spec count must equal cfg.Cores.
func NewSystem(cfg SystemConfig, specs []CoreSpec) (*System, error) {
	return sim.New(cfg, specs)
}
