package dagguise

import (
	"dagguise/internal/rdag"
	"dagguise/internal/smt"
)

// SMTUnit is a functional-unit class of the §7 SMT port-contention
// demonstration.
type SMTUnit = smt.Unit

// The SMT unit classes.
const (
	SMTALU = smt.ALU
	SMTMUL = smt.MUL
	SMTDIV = smt.DIV
	SMTLSU = smt.LSU
)

// SMTUOp is one micro-operation of an SMT thread.
type SMTUOp = smt.UOp

// SMTLeakage holds the port-channel leakage with and without shaping.
type SMTLeakage = smt.Leakage

// SMTSecretTrace builds a square-and-multiply-style µop stream whose
// divider usage encodes the secret bits — the PORTSMASH-style transmitter.
func SMTSecretTrace(bits []int) []SMTUOp { return smt.SecretTrace(bits) }

// SMTDefaultDefense returns a defense rDAG over the functional-unit
// classes (one sequence per class, uniform rate).
func SMTDefaultDefense() Template { return smt.DefaultDefense() }

// SMTMeasureLeakage runs the SMT port-contention channel for two secrets,
// unshaped and shaped by a DAGguise port shaper, and returns the
// per-probe mutual information of each — the §7 generalisation of the
// paper, demonstrated end to end.
func SMTMeasureLeakage(secret0, secret1 []int, defense Template, probes int) (SMTLeakage, error) {
	return smt.MeasureLeakage(secret0, secret1, defense, probes)
}

// SMTRunChannel exposes the raw channel: the attacker's divider-probe
// latencies while the victim µop stream runs unshaped or shaped.
func SMTRunChannel(victim []SMTUOp, shaped bool, defense rdag.Template, probes int) ([]uint64, error) {
	return smt.RunChannel(victim, shaped, defense, probes)
}
