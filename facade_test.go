package dagguise_test

import (
	"strings"
	"testing"

	"dagguise"
)

func TestFacadeRDAGHelpers(t *testing.T) {
	g := &dagguise.Graph{}
	a := g.AddVertex(0, 0)
	b := g.AddVertex(1, 0)
	g.AddEdge(a, b, 50)
	d, err := dagguise.NewGraphDriver(g, 100)
	if err != nil {
		t.Fatal(err)
	}
	if slots := d.Poll(0); len(slots) != 1 {
		t.Fatalf("graph driver slots = %d", len(slots))
	}
	pd, err := dagguise.NewPatternDriver(dagguise.Template{Sequences: 2, Weight: 10, Banks: 8})
	if err != nil {
		t.Fatal(err)
	}
	if slots := pd.Poll(0); len(slots) != 2 {
		t.Fatalf("pattern driver slots = %d", len(slots))
	}
	space := dagguise.DefaultTemplateSpace(8)
	if len(space.Candidates()) == 0 {
		t.Fatal("empty default space")
	}
}

func TestFacadeConfigHelpers(t *testing.T) {
	timing := dagguise.DDR31600()
	if timing.TRC != 39 || timing.ClockRatio != 3 {
		t.Fatalf("DDR3-1600 parameters wrong: %+v", timing)
	}
	cfg := dagguise.DefaultConfig(8, dagguise.FSBTA)
	if cfg.Cores != 8 || !cfg.ClosedRow {
		t.Fatalf("config wrong: %+v", cfg)
	}
	if _, err := dagguise.ParseScheme("nonesuch"); err == nil {
		t.Fatal("unknown scheme parsed")
	}
}

func TestFacadeFigure1(t *testing.T) {
	rows, err := dagguise.Figure1Primer(60)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
}

func TestFacadeSMT(t *testing.T) {
	ops := dagguise.SMTSecretTrace([]int{1, 0})
	if len(ops) == 0 {
		t.Fatal("empty secret trace")
	}
	hasDiv := false
	for _, op := range ops {
		if op.Unit == dagguise.SMTDIV {
			hasDiv = true
		}
	}
	if !hasDiv {
		t.Fatal("set bit did not use the divider")
	}
	lats, err := dagguise.SMTRunChannel(ops, true, dagguise.SMTDefaultDefense(), 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(lats) != 20 {
		t.Fatalf("probes = %d", len(lats))
	}
	res, err := dagguise.SMTMeasureLeakage([]int{0, 0}, []int{1, 1}, dagguise.SMTDefaultDefense(), 40)
	if err != nil {
		t.Fatal(err)
	}
	if res.ShapedMI != 0 {
		t.Fatalf("shaped SMT channel leaked %f", res.ShapedMI)
	}
}

func TestFacadeEnergy(t *testing.T) {
	counts := dagguise.EnergyCounts{
		Activates: 1000, Reads: 900, Writes: 100, SuppressedFakes: 300,
		Refreshes: 5, Cycles: 100_000, FreqMHz: 800,
	}
	res, err := dagguise.EstimateEnergy(dagguise.DDR3EnergyDefaults(), counts)
	if err != nil || res.TotalNJ <= 0 {
		t.Fatalf("energy estimate: %+v, %v", res, err)
	}
	frac, err := dagguise.FakeEnergyOverhead(dagguise.DDR3EnergyDefaults(), counts)
	if err != nil || frac <= 0 || frac >= 1 {
		t.Fatalf("fake overhead: %f, %v", frac, err)
	}
	saving, err := dagguise.SuppressionSaving(dagguise.DDR3EnergyDefaults(), counts)
	if err != nil || saving <= 0 {
		t.Fatalf("suppression saving: %f, %v", saving, err)
	}
}

func TestFacadeTraces(t *testing.T) {
	rec := dagguise.NewTraceRecorder(true)
	rec.Compute(5)
	rec.Load(0x40)
	rec.LoadDep(0x80)
	tr := rec.Trace()
	if len(tr.Ops) != 2 {
		t.Fatalf("recorded ops = %d", len(tr.Ops))
	}
	looped := dagguise.LoopTrace(tr)
	for i := 0; i < 5; i++ {
		if _, ok := looped.Next(); !ok {
			t.Fatal("loop exhausted")
		}
	}
	dna, err := dagguise.DNATrace(3, dagguise.DefaultDNAConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(dna.Ops) == 0 {
		t.Fatal("empty DNA trace")
	}
	if len(dagguise.Workloads()) != 15 {
		t.Fatal("workload count")
	}
}

func TestFacadeVerifyModelNames(t *testing.T) {
	cfg := dagguise.DefaultVerifyModel()
	cfg.Leaky = true
	_, cex, err := dagguise.LeakDetectionDepth(cfg, 16)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(cex.String(), "counterexample") {
		t.Fatal("counterexample rendering")
	}
}
