package dagguise

import (
	"dagguise/internal/attack"
	"dagguise/internal/camouflage"
	"dagguise/internal/verify"
)

// AttackPattern is a victim (transmitter) request schedule for leakage
// experiments: closed-loop gaps and bank choices, as in the Figure 5
// running example.
type AttackPattern = attack.Pattern

// AttackProbe configures the attacker (receiver): one outstanding read to
// a fixed bank/row, reissued a fixed gap after each response.
type AttackProbe = attack.Probe

// LeakageResult quantifies attacker-side distinguishability of two victim
// secrets: order-blind and per-position mutual information (bits) plus a
// nearest-neighbour classifier's accuracy.
type LeakageResult = attack.LeakageResult

// CamouflageDistribution is the target inter-injection interval
// distribution of the Camouflage baseline.
type CamouflageDistribution = camouflage.Distribution

// MeasureLeakage runs the two secret patterns under the scheme for several
// trials and quantifies how well an attacker can distinguish them from the
// latencies of its own probes (the Table 1 security comparison).
func MeasureLeakage(scheme Scheme, defense Template, dist CamouflageDistribution,
	secret0, secret1 AttackPattern, probe AttackProbe, probes, trials int) (LeakageResult, error) {
	return attack.MeasureLeakage(scheme, defense, dist, secret0, secret1, probe, probes, trials)
}

// Figure1Primer reproduces the paper's Figure 1 attack example on the
// insecure baseline: the attacker's probe latency reveals whether the
// victim is idle, using a different bank, the same bank and row, or the
// same bank but a different row.
func Figure1Primer(probes int) ([]attack.Figure1Row, error) {
	return attack.Figure1Primer(probes)
}

// VerifyModelConfig parameterises the bit-level model used by the formal
// security verification (§5.1).
type VerifyModelConfig = verify.ModelConfig

// VerifyReport is the outcome of a k-induction verification run.
type VerifyReport = verify.Report

// Counterexample is a decoded property violation.
type Counterexample = verify.Counterexample

// DefaultVerifyModel returns the verified configuration: two banks, a
// weight-2 chain defense rDAG, latency-2 FCFS controller.
func DefaultVerifyModel() VerifyModelConfig { return verify.DefaultModel() }

// VerifySecurity proves (or refutes, with a counterexample) the
// indistinguishability property of §5.2 at unrolling depth k: the base
// step is bounded model checking from reset; the induction step uses the
// public-state strengthening discharged alongside it. All obligations are
// decided by the built-in CDCL SAT solver.
func VerifySecurity(cfg VerifyModelConfig, k int) (VerifyReport, error) {
	v, err := verify.NewVerifier(cfg)
	if err != nil {
		return VerifyReport{}, err
	}
	return v.Verify(k)
}

// MinimalVerifiedK returns the smallest k at which the proof closes.
func MinimalVerifiedK(cfg VerifyModelConfig, maxK int) (int, error) {
	v, err := verify.NewVerifier(cfg)
	if err != nil {
		return 0, err
	}
	return v.MinimalK(maxK)
}

// LeakDetectionDepth returns the smallest bounded-model-checking depth at
// which a (deliberately broken) configuration yields a counterexample.
func LeakDetectionDepth(cfg VerifyModelConfig, maxK int) (int, *Counterexample, error) {
	v, err := verify.NewVerifier(cfg)
	if err != nil {
		return 0, nil, err
	}
	return v.DetectionDepth(maxK)
}
