package dagguise_test

import (
	"testing"

	"dagguise"
)

// TestPublicAPIEndToEnd exercises the facade the way the README's
// quickstart does: build a protected two-core system, run it, and check
// the victim makes progress behind its shaper.
func TestPublicAPIEndToEnd(t *testing.T) {
	victimTrace, err := dagguise.DocDistTrace(7, dagguise.DefaultDocDistConfig())
	if err != nil {
		t.Fatal(err)
	}
	prof, err := dagguise.WorkloadByName("xz")
	if err != nil {
		t.Fatal(err)
	}
	coSrc, err := dagguise.NewWorkloadSource(prof, 3)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := dagguise.NewSystem(dagguise.DefaultConfig(2, dagguise.DAGguise), []dagguise.CoreSpec{
		{
			Name:      "victim",
			Source:    dagguise.LoopTrace(victimTrace),
			Protected: true,
			Defense:   dagguise.Template{Sequences: 4, Weight: 300, WriteRatio: 0.001, Banks: 8},
		},
		{Name: "xz", Source: coSrc},
	})
	if err != nil {
		t.Fatal(err)
	}
	res := sys.Measure(10_000, 100_000)
	if len(res.Cores) != 2 {
		t.Fatalf("cores = %d", len(res.Cores))
	}
	if res.Cores[0].IPC <= 0 || res.Cores[1].IPC <= 0 {
		t.Fatalf("zero IPC: %+v", res.Cores)
	}
	if res.Cores[0].ShaperForwarded == 0 {
		t.Fatal("shaper inactive")
	}
}

func TestPublicVerification(t *testing.T) {
	k, err := dagguise.MinimalVerifiedK(dagguise.DefaultVerifyModel(), 12)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := dagguise.VerifySecurity(dagguise.DefaultVerifyModel(), k)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Holds() {
		t.Fatalf("verification failed at k=%d: %+v", k, rep)
	}
	leaky := dagguise.DefaultVerifyModel()
	leaky.Leaky = true
	depth, cex, err := dagguise.LeakDetectionDepth(leaky, 16)
	if err != nil {
		t.Fatal(err)
	}
	if depth == 0 || cex == nil {
		t.Fatal("leaky model not caught through the facade")
	}
}

func TestPublicLeakageAndArea(t *testing.T) {
	s0 := dagguise.AttackPattern{Gaps: []uint64{100}, Banks: []int{0, 1}}
	s1 := dagguise.AttackPattern{Gaps: []uint64{200}, Banks: []int{0, 1}}
	probe := dagguise.AttackProbe{Bank: 0, Gap: 120}
	res, err := dagguise.MeasureLeakage(dagguise.DAGguise, dagguise.Template{}, dagguise.CamouflageDistribution{},
		s0, s1, probe, 80, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.SequenceMI != 0 {
		t.Fatalf("DAGguise leaked through the facade: %f", res.SequenceMI)
	}
	areaRes, err := dagguise.EstimateArea(dagguise.Table3AreaConfig())
	if err != nil {
		t.Fatal(err)
	}
	if areaRes.TotalAreaMM2 <= 0.03 || areaRes.TotalAreaMM2 >= 0.05 {
		t.Fatalf("area = %f, want ~0.037", areaRes.TotalAreaMM2)
	}
}

func TestPublicProfiling(t *testing.T) {
	victimTrace, err := dagguise.DocDistTrace(7, dagguise.DefaultDocDistConfig())
	if err != nil {
		t.Fatal(err)
	}
	space := dagguise.TemplateSpace{Sequences: []int{2, 8}, Weights: []uint64{90, 600}, Banks: 8}
	res, err := dagguise.ProfileVictim(func() dagguise.TraceSource {
		cp := *victimTrace
		return &cp
	}, space, dagguise.ProfileOptions{Warmup: 3000, Window: 30_000, KneeFraction: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 4 || res.Selected.Sequences == 0 {
		t.Fatalf("profile incomplete: %+v", res)
	}
}

func TestSchemeParsingRoundTrip(t *testing.T) {
	for _, s := range []dagguise.Scheme{dagguise.Insecure, dagguise.FSBTA, dagguise.DAGguise, dagguise.Camouflage} {
		got, err := dagguise.ParseScheme(s.String())
		if err != nil || got != s {
			t.Fatalf("round trip of %v failed: %v, %v", s, got, err)
		}
	}
}
