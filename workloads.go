package dagguise

import (
	"dagguise/internal/trace"
	"dagguise/internal/victim"
	"dagguise/internal/workload"
)

// TraceOp is one memory operation of a program trace.
type TraceOp = trace.Op

// TraceSource yields the operations of one program.
type TraceSource = trace.Source

// TraceSlice is a finite in-memory trace.
type TraceSlice = trace.Slice

// LoopTrace wraps a finite trace source into an infinite one.
func LoopTrace(inner TraceSource) TraceSource { return &trace.Loop{Inner: inner} }

// TraceRecorder records the memory behaviour of an instrumented
// application into a trace (the victim implementations use one).
type TraceRecorder = trace.Recorder

// NewTraceRecorder builds a recorder; inferDeps adds dependencies between
// repeated accesses to the same line.
func NewTraceRecorder(inferDeps bool) *TraceRecorder { return trace.NewRecorder(inferDeps) }

// WorkloadProfile parameterises a synthetic SPEC-like co-runner.
type WorkloadProfile = workload.Profile

// Workloads returns the fifteen SPEC CPU2017-like co-runner profiles used
// by the evaluation (Figure 9's x-axis).
func Workloads() []WorkloadProfile { return workload.Profiles() }

// WorkloadByName returns the named profile.
func WorkloadByName(name string) (WorkloadProfile, error) { return workload.ByName(name) }

// NewWorkloadSource builds an infinite deterministic trace source for a
// profile; the seed also separates the address space of co-scheduled
// copies.
func NewWorkloadSource(p WorkloadProfile, seed int64) (TraceSource, error) {
	return workload.NewSource(p, seed)
}

// DocDistConfig sizes the Document Distance victim.
type DocDistConfig = victim.DocDistConfig

// DNAConfig sizes the DNA sequence-matching victim.
type DNAConfig = victim.DNAConfig

// DefaultDocDistConfig returns the evaluation's DocDist sizing.
func DefaultDocDistConfig() DocDistConfig { return victim.DefaultDocDist() }

// DefaultDNAConfig returns the evaluation's DNA sizing.
func DefaultDNAConfig() DNAConfig { return victim.DefaultDNA() }

// DocDistTrace runs the real Document Distance computation on a private
// document derived from secretSeed and records its memory trace — the
// secret-dependent access pattern DAGguise hides.
func DocDistTrace(secretSeed int64, cfg DocDistConfig) (*TraceSlice, error) {
	return victim.DocDistTrace(secretSeed, cfg)
}

// DNATrace runs the real DNA k-mer alignment on a private sequence derived
// from secretSeed against a public indexed sequence and records its memory
// trace.
func DNATrace(secretSeed int64, cfg DNAConfig) (*TraceSlice, error) {
	return victim.DNATrace(secretSeed, cfg)
}
