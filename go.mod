module dagguise

go 1.22
