package stats

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGeomean(t *testing.T) {
	got, err := Geomean([]float64{2, 8})
	if err != nil || math.Abs(got-4) > 1e-9 {
		t.Fatalf("geomean(2,8) = %f, %v, want 4", got, err)
	}
	if g, err := Geomean(nil); err != nil || g != 0 {
		t.Fatalf("empty geomean = %f, %v, want 0", g, err)
	}
	_, err = Geomean([]float64{1, 0})
	var npe *NonPositiveError
	if !errors.As(err, &npe) {
		t.Fatalf("expected *NonPositiveError on non-positive value, got %v", err)
	}
	if npe.Index != 1 || npe.Value != 0 {
		t.Fatalf("error fields = %+v", npe)
	}
}

func TestGeomeanAtMostMax(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		vals := make([]float64, len(raw))
		max := 0.0
		for i, r := range raw {
			vals[i] = float64(r%1000) + 1
			if vals[i] > max {
				max = vals[i]
			}
		}
		g, err := Geomean(vals)
		return err == nil && g <= max+1e-9 && g > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMean(t *testing.T) {
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Fatal("mean broken")
	}
	if Mean(nil) != 0 {
		t.Fatal("empty mean should be 0")
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram(10)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []uint64{5, 9, 15, 100} {
		h.Add(v)
	}
	if h.Total != 4 {
		t.Fatalf("total = %d", h.Total)
	}
	if h.P(7) != 0.5 { // bin 0 holds 5 and 9
		t.Fatalf("P(7) = %f, want 0.5", h.P(7))
	}
	bins := h.Bins()
	if len(bins) != 3 || bins[0] != 0 || bins[2] != 10 {
		t.Fatalf("bins = %v", bins)
	}
	if _, err := NewHistogram(0); !errors.As(err, new(*ZeroBinWidthError)) {
		t.Fatalf("zero bin width accepted: %v", err)
	}
	fresh, err := NewHistogram(1)
	if err != nil {
		t.Fatal(err)
	}
	if fresh.P(1) != 0 {
		t.Fatal("empty histogram P != 0")
	}
}

func TestBinaryMIPerfectlyDistinguishable(t *testing.T) {
	obs0 := []uint64{100, 100, 100}
	obs1 := []uint64{500, 500, 500}
	if mi := BinaryMI(obs0, obs1, 10); math.Abs(mi-1) > 1e-9 {
		t.Fatalf("MI = %f, want 1 bit", mi)
	}
}

func TestBinaryMIIdenticalDistributions(t *testing.T) {
	obs := []uint64{1, 2, 3, 4, 5, 6}
	if mi := BinaryMI(obs, obs, 1); mi != 0 {
		t.Fatalf("MI = %f, want 0", mi)
	}
	if BinaryMI(nil, obs, 1) != 0 {
		t.Fatal("empty observations should give 0")
	}
}

func TestBinaryMIBounds(t *testing.T) {
	f := func(a, b []uint8) bool {
		if len(a) == 0 || len(b) == 0 {
			return true
		}
		o0 := make([]uint64, len(a))
		o1 := make([]uint64, len(b))
		for i, v := range a {
			o0[i] = uint64(v)
		}
		for i, v := range b {
			o1[i] = uint64(v)
		}
		mi := BinaryMI(o0, o1, 4)
		return mi >= 0 && mi <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSequenceMICatchesOrderingLeak(t *testing.T) {
	// Two schedules with identical histograms but swapped order: the
	// aggregate MI is 0 but the per-position MI is 1 (Figure 2).
	seq0 := [][]uint64{{200}, {400}}
	seq1 := [][]uint64{{400}, {200}}
	all0 := append(append([]uint64{}, seq0[0]...), seq0[1]...)
	all1 := append(append([]uint64{}, seq1[0]...), seq1[1]...)
	if BinaryMI(all0, all1, 10) != 0 {
		t.Fatal("aggregate MI should be blind to ordering")
	}
	if mi := SequenceMI(seq0, seq1, 10); math.Abs(mi-1) > 1e-9 {
		t.Fatalf("sequence MI = %f, want 1", mi)
	}
	if SequenceMI(nil, nil, 1) != 0 {
		t.Fatal("empty sequence MI should be 0")
	}
}

func TestBinaryMISameDistributionNearZero(t *testing.T) {
	// Finite-sample regression for the Miller–Madow correction: two sample
	// sets drawn from the same distribution must report ≈0 bits. The
	// uncorrected plug-in estimator reports roughly (bins-1)/(2N ln 2)
	// here — about 0.07 bits at N=200 over ~20 populated bins — which
	// mislabelled secure schemes as leaky.
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{100, 200, 400} {
		draw := func() []uint64 {
			out := make([]uint64, n)
			for i := range out {
				out[i] = 40 + uint64(rng.Intn(160))
			}
			return out
		}
		const trials = 30
		avg := 0.0
		for i := 0; i < trials; i++ {
			avg += BinaryMI(draw(), draw(), 8)
		}
		avg /= trials
		// ~20 populated bins over [40, 200) at width 8: the uncorrected
		// estimator's expected bias. Averaging across trials isolates the
		// bias from per-draw variance; the corrected average must sit well
		// below it (clamping at 0 leaves a small positive residue).
		bias := 19.0 / (2 * float64(2*n) * math.Ln2)
		if avg > bias/2 {
			t.Errorf("n=%d: same-distribution MI averages %f bits, above half the uncorrected bias %f", n, avg, bias)
		}
		if avg > 0.03 {
			t.Errorf("n=%d: same-distribution MI averages %f bits, want ~0", n, avg)
		}
	}
}

func TestBinaryMICorrectionPreservesSignal(t *testing.T) {
	// The bias correction must not erase a real difference: disjoint
	// supports still report close to 1 bit.
	rng := rand.New(rand.NewSource(8))
	obs0 := make([]uint64, 100)
	obs1 := make([]uint64, 100)
	for i := range obs0 {
		obs0[i] = 40 + uint64(rng.Intn(40))
		obs1[i] = 400 + uint64(rng.Intn(40))
	}
	if mi := BinaryMI(obs0, obs1, 8); mi < 0.9 {
		t.Fatalf("disjoint-support MI = %f, want ~1", mi)
	}
}

func TestSequenceMIMismatchedLengths(t *testing.T) {
	// Only the common prefix is compared: the extra position in seq0 must
	// not contribute (it has no counterpart under the other secret).
	seq0 := [][]uint64{{200}, {400}, {999}}
	seq1 := [][]uint64{{200}, {400}}
	if mi := SequenceMI(seq0, seq1, 10); mi != 0 {
		t.Fatalf("common-prefix MI = %f, want 0", mi)
	}
	if mi := SequenceMI(seq1, seq0, 10); mi != 0 {
		t.Fatalf("order of arguments changed the result: %f", mi)
	}
}

func TestSequenceMIEmptyPositions(t *testing.T) {
	// A position with no samples on one side carries no evidence and must
	// average in as 0, not poison the estimate.
	seq0 := [][]uint64{{}, {200}}
	seq1 := [][]uint64{{100}, {400}}
	mi := SequenceMI(seq0, seq1, 10)
	if mi != 0.5 {
		t.Fatalf("MI = %f, want 0.5 (one empty position, one fully leaking)", mi)
	}
}

func TestBinaryMIZeroBinWidth(t *testing.T) {
	// Bin width 0 means "unbinned": each distinct value is its own bin,
	// equivalent to width 1, rather than a division by zero.
	obs0 := []uint64{100, 100}
	obs1 := []uint64{101, 101}
	unbinned := BinaryMI(obs0, obs1, 0)
	if width1 := BinaryMI(obs0, obs1, 1); unbinned != width1 {
		t.Fatalf("unbinned MI %f != width-1 MI %f", unbinned, width1)
	}
	if math.Abs(unbinned-1) > 1e-9 {
		t.Fatalf("adjacent distinct values unbinned MI = %f, want 1", unbinned)
	}
	if mi := SequenceMI([][]uint64{obs0}, [][]uint64{obs1}, 0); math.Abs(mi-1) > 1e-9 {
		t.Fatalf("sequence MI with zero bin width = %f, want 1", mi)
	}
}

func TestHistogramBinsDeterministicOrder(t *testing.T) {
	// Bins must come back sorted ascending regardless of insertion order —
	// downstream float summation order (and golden-tested reports) depend
	// on it.
	values := []uint64{970, 10, 450, 300, 880, 20, 660, 110, 555, 5}
	for trial := 0; trial < 20; trial++ {
		h, err := NewHistogram(10)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(trial)))
		for _, i := range rng.Perm(len(values)) {
			h.Add(values[i])
		}
		bins := h.Bins()
		if len(bins) != 10 {
			t.Fatalf("bins = %v", bins)
		}
		for i := 1; i < len(bins); i++ {
			if bins[i-1] >= bins[i] {
				t.Fatalf("trial %d: bins not strictly ascending: %v", trial, bins)
			}
		}
	}
}

func TestWelchT(t *testing.T) {
	same := []uint64{10, 12, 11, 13, 10, 12}
	if got := WelchT(same, same); got != 0 {
		t.Fatalf("identical samples t = %f, want 0", got)
	}
	far := []uint64{500, 502, 501, 503, 500, 502}
	if got := WelchT(same, far); got < 100 {
		t.Fatalf("well-separated samples t = %f, want large", got)
	}
	if got := WelchT([]uint64{1}, far); got != 0 {
		t.Fatalf("undersized sample t = %f, want 0", got)
	}
	// Zero variance on both sides: 0 for equal means, the large sentinel
	// for distinct means (keeps reports finite and JSON-encodable).
	if got := WelchT([]uint64{5, 5}, []uint64{5, 5}); got != 0 {
		t.Fatalf("constant equal samples t = %f, want 0", got)
	}
	got := WelchT([]uint64{5, 5}, []uint64{9, 9})
	if math.IsInf(got, 0) || math.IsNaN(got) || got < 1e6 {
		t.Fatalf("constant distinct samples t = %f, want large finite sentinel", got)
	}
}

func TestKSDistance(t *testing.T) {
	a := []uint64{1, 2, 3, 4}
	if got := KSDistance(a, a); got != 0 {
		t.Fatalf("identical samples KS = %f, want 0", got)
	}
	disjoint := []uint64{100, 200, 300, 400}
	if got := KSDistance(a, disjoint); got != 1 {
		t.Fatalf("disjoint samples KS = %f, want 1", got)
	}
	if got := KSDistance(nil, a); got != 0 {
		t.Fatalf("empty sample KS = %f, want 0", got)
	}
	// Half the mass shifted: sup CDF distance is 0.5, and the statistic is
	// symmetric in its arguments.
	b := []uint64{1, 2, 300, 400}
	if got := KSDistance(a, b); got != 0.5 {
		t.Fatalf("half-shifted KS = %f, want 0.5", got)
	}
	if KSDistance(a, b) != KSDistance(b, a) {
		t.Fatal("KS distance not symmetric")
	}
}

func TestNormalize(t *testing.T) {
	out, err := Normalize([]float64{2, 6}, []float64{4, 3})
	if err != nil || out[0] != 0.5 || out[1] != 2 {
		t.Fatalf("normalize = %v, %v", out, err)
	}
	if _, err := Normalize([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := Normalize([]float64{1}, []float64{0}); err == nil {
		t.Fatal("zero baseline accepted")
	}
}
