package stats

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestGeomean(t *testing.T) {
	got, err := Geomean([]float64{2, 8})
	if err != nil || math.Abs(got-4) > 1e-9 {
		t.Fatalf("geomean(2,8) = %f, %v, want 4", got, err)
	}
	if g, err := Geomean(nil); err != nil || g != 0 {
		t.Fatalf("empty geomean = %f, %v, want 0", g, err)
	}
	_, err = Geomean([]float64{1, 0})
	var npe *NonPositiveError
	if !errors.As(err, &npe) {
		t.Fatalf("expected *NonPositiveError on non-positive value, got %v", err)
	}
	if npe.Index != 1 || npe.Value != 0 {
		t.Fatalf("error fields = %+v", npe)
	}
}

func TestGeomeanAtMostMax(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		vals := make([]float64, len(raw))
		max := 0.0
		for i, r := range raw {
			vals[i] = float64(r%1000) + 1
			if vals[i] > max {
				max = vals[i]
			}
		}
		g, err := Geomean(vals)
		return err == nil && g <= max+1e-9 && g > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMean(t *testing.T) {
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Fatal("mean broken")
	}
	if Mean(nil) != 0 {
		t.Fatal("empty mean should be 0")
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram(10)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []uint64{5, 9, 15, 100} {
		h.Add(v)
	}
	if h.Total != 4 {
		t.Fatalf("total = %d", h.Total)
	}
	if h.P(7) != 0.5 { // bin 0 holds 5 and 9
		t.Fatalf("P(7) = %f, want 0.5", h.P(7))
	}
	bins := h.Bins()
	if len(bins) != 3 || bins[0] != 0 || bins[2] != 10 {
		t.Fatalf("bins = %v", bins)
	}
	if _, err := NewHistogram(0); !errors.As(err, new(*ZeroBinWidthError)) {
		t.Fatalf("zero bin width accepted: %v", err)
	}
	fresh, err := NewHistogram(1)
	if err != nil {
		t.Fatal(err)
	}
	if fresh.P(1) != 0 {
		t.Fatal("empty histogram P != 0")
	}
}

func TestBinaryMIPerfectlyDistinguishable(t *testing.T) {
	obs0 := []uint64{100, 100, 100}
	obs1 := []uint64{500, 500, 500}
	if mi := BinaryMI(obs0, obs1, 10); math.Abs(mi-1) > 1e-9 {
		t.Fatalf("MI = %f, want 1 bit", mi)
	}
}

func TestBinaryMIIdenticalDistributions(t *testing.T) {
	obs := []uint64{1, 2, 3, 4, 5, 6}
	if mi := BinaryMI(obs, obs, 1); mi != 0 {
		t.Fatalf("MI = %f, want 0", mi)
	}
	if BinaryMI(nil, obs, 1) != 0 {
		t.Fatal("empty observations should give 0")
	}
}

func TestBinaryMIBounds(t *testing.T) {
	f := func(a, b []uint8) bool {
		if len(a) == 0 || len(b) == 0 {
			return true
		}
		o0 := make([]uint64, len(a))
		o1 := make([]uint64, len(b))
		for i, v := range a {
			o0[i] = uint64(v)
		}
		for i, v := range b {
			o1[i] = uint64(v)
		}
		mi := BinaryMI(o0, o1, 4)
		return mi >= 0 && mi <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSequenceMICatchesOrderingLeak(t *testing.T) {
	// Two schedules with identical histograms but swapped order: the
	// aggregate MI is 0 but the per-position MI is 1 (Figure 2).
	seq0 := [][]uint64{{200}, {400}}
	seq1 := [][]uint64{{400}, {200}}
	all0 := append(append([]uint64{}, seq0[0]...), seq0[1]...)
	all1 := append(append([]uint64{}, seq1[0]...), seq1[1]...)
	if BinaryMI(all0, all1, 10) != 0 {
		t.Fatal("aggregate MI should be blind to ordering")
	}
	if mi := SequenceMI(seq0, seq1, 10); math.Abs(mi-1) > 1e-9 {
		t.Fatalf("sequence MI = %f, want 1", mi)
	}
	if SequenceMI(nil, nil, 1) != 0 {
		t.Fatal("empty sequence MI should be 0")
	}
}

func TestNormalize(t *testing.T) {
	out, err := Normalize([]float64{2, 6}, []float64{4, 3})
	if err != nil || out[0] != 0.5 || out[1] != 2 {
		t.Fatalf("normalize = %v, %v", out, err)
	}
	if _, err := Normalize([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := Normalize([]float64{1}, []float64{0}); err == nil {
		t.Fatal("zero baseline accepted")
	}
}
