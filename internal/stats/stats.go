// Package stats provides the measurement utilities used across the
// evaluation: aggregate means, histograms of observed latencies, and the
// mutual-information estimator that quantifies side-channel leakage for
// the Table 1 security comparison.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// NonPositiveError reports a Geomean input outside its domain: the
// geometric mean is only defined over positive values.
type NonPositiveError struct {
	// Index is the offending position, Value the offending input.
	Index int
	Value float64
}

// Error implements error.
func (e *NonPositiveError) Error() string {
	return fmt.Sprintf("stats: geomean of non-positive value %f at index %d", e.Value, e.Index)
}

// Geomean returns the geometric mean of positive values (the aggregate the
// paper uses for normalized IPC). It returns 0 for an empty slice and a
// *NonPositiveError when any input is outside the function's domain.
func Geomean(vals []float64) (float64, error) {
	if len(vals) == 0 {
		return 0, nil
	}
	sum := 0.0
	for i, v := range vals {
		if v <= 0 {
			return 0, &NonPositiveError{Index: i, Value: v}
		}
		sum += math.Log(v)
	}
	return math.Exp(sum / float64(len(vals))), nil
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range vals {
		sum += v
	}
	return sum / float64(len(vals))
}

// Histogram counts occurrences of binned values.
type Histogram struct {
	BinWidth uint64
	Counts   map[uint64]uint64
	Total    uint64
}

// ZeroBinWidthError reports a histogram constructed with bin width 0,
// which would divide by zero on the first Add.
type ZeroBinWidthError struct{}

// Error implements error.
func (e *ZeroBinWidthError) Error() string {
	return "stats: histogram bin width must be positive"
}

// NewHistogram builds a histogram with the given bin width. A zero bin
// width is rejected with *ZeroBinWidthError rather than silently clamped.
func NewHistogram(binWidth uint64) (*Histogram, error) {
	if binWidth == 0 {
		return nil, &ZeroBinWidthError{}
	}
	return &Histogram{BinWidth: binWidth, Counts: make(map[uint64]uint64)}, nil
}

// Add records a value.
func (h *Histogram) Add(v uint64) {
	h.Counts[v/h.BinWidth]++
	h.Total++
}

// P returns the empirical probability of the bin containing v.
func (h *Histogram) P(v uint64) float64 {
	if h.Total == 0 {
		return 0
	}
	return float64(h.Counts[v/h.BinWidth]) / float64(h.Total)
}

// Bins returns the populated bin indices in ascending order.
func (h *Histogram) Bins() []uint64 {
	out := make([]uint64, 0, len(h.Counts))
	for b := range h.Counts {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// BinaryMI estimates the mutual information, in bits, between a uniform
// binary secret and an observation, from samples of the observation under
// each secret value. This is the leakage metric of the security
// comparison: a perfectly protected channel gives 0 bits; 1 bit means the
// observation fully determines the secret.
//
// The plug-in estimator is positively biased on finite samples — two
// sample sets drawn from the *same* distribution report spuriously
// positive MI of roughly (bins-1)/(2N ln 2) bits — so the estimate is
// Miller–Madow corrected: the entropy-bias terms of the marginal and
// joint histograms cancel against each other, leaving the correction
// (cells - bins - 1)/(2N ln 2) where cells counts the populated
// (secret, bin) pairs. The result is clamped to [0, 1] (the entropy of a
// binary secret bounds it from above; the correction can overshoot on
// either side for tiny N).
func BinaryMI(obs0, obs1 []uint64, binWidth uint64) float64 {
	if len(obs0) == 0 || len(obs1) == 0 {
		return 0
	}
	if binWidth == 0 {
		// MI over unbinned observations: each distinct value is its own bin.
		binWidth = 1
	}
	h0, _ := NewHistogram(binWidth)
	h1, _ := NewHistogram(binWidth)
	for _, v := range obs0 {
		h0.Add(v)
	}
	for _, v := range obs1 {
		h1.Add(v)
	}
	// Iterate bins in sorted order so the floating-point summation order —
	// and therefore the estimate's last ulp — is deterministic across runs
	// (the audit layer golden-tests reports built from these values).
	binSet := map[uint64]bool{}
	for b := range h0.Counts {
		binSet[b] = true
	}
	for b := range h1.Counts {
		binSet[b] = true
	}
	bins := make([]uint64, 0, len(binSet))
	for b := range binSet {
		bins = append(bins, b)
	}
	sort.Slice(bins, func(i, j int) bool { return bins[i] < bins[j] })
	mi := 0.0
	cells := 0
	for _, b := range bins {
		p0 := float64(h0.Counts[b]) / float64(h0.Total)
		p1 := float64(h1.Counts[b]) / float64(h1.Total)
		pb := (p0 + p1) / 2
		if p0 > 0 {
			mi += 0.5 * p0 * math.Log2(p0/pb)
			cells++
		}
		if p1 > 0 {
			mi += 0.5 * p1 * math.Log2(p1/pb)
			cells++
		}
	}
	n := float64(h0.Total + h1.Total)
	mi -= float64(cells-len(bins)-1) / (2 * n * math.Ln2)
	if mi < 0 {
		mi = 0
	}
	if mi > 1 {
		mi = 1
	}
	return mi
}

// degenerateT is the value WelchT reports when both samples have zero
// variance but different means: the statistic is infinite in the limit, and
// a large finite sentinel keeps reports JSON-encodable and comparable.
const degenerateT = 1e12

// WelchT returns the absolute Welch's t statistic between two samples —
// the TVLA-style first-order leakage detector. It needs at least two
// samples on each side (returns 0 otherwise); when both samples are
// constant it returns 0 for equal means and a large sentinel value for
// distinct means.
func WelchT(a, b []uint64) float64 {
	if len(a) < 2 || len(b) < 2 {
		return 0
	}
	meanVar := func(xs []uint64) (m, v float64) {
		for _, x := range xs {
			m += float64(x)
		}
		m /= float64(len(xs))
		for _, x := range xs {
			d := float64(x) - m
			v += d * d
		}
		v /= float64(len(xs) - 1)
		return m, v
	}
	m0, v0 := meanVar(a)
	m1, v1 := meanVar(b)
	se := v0/float64(len(a)) + v1/float64(len(b))
	if se == 0 {
		if m0 == m1 {
			return 0
		}
		return degenerateT
	}
	return math.Abs(m0-m1) / math.Sqrt(se)
}

// KSDistance returns the two-sample Kolmogorov–Smirnov statistic: the
// supremum distance between the empirical CDFs of a and b, in [0, 1]. It
// is distribution-free — sensitive to any difference in shape, not just the
// mean shift WelchT detects — and returns 0 when either sample is empty.
func KSDistance(a, b []uint64) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	sa := append([]uint64(nil), a...)
	sb := append([]uint64(nil), b...)
	sort.Slice(sa, func(i, j int) bool { return sa[i] < sa[j] })
	sort.Slice(sb, func(i, j int) bool { return sb[i] < sb[j] })
	na, nb := float64(len(sa)), float64(len(sb))
	var i, j int
	var d float64
	for i < len(sa) && j < len(sb) {
		v := sa[i]
		if sb[j] < v {
			v = sb[j]
		}
		for i < len(sa) && sa[i] == v {
			i++
		}
		for j < len(sb) && sb[j] == v {
			j++
		}
		if diff := math.Abs(float64(i)/na - float64(j)/nb); diff > d {
			d = diff
		}
	}
	return d
}

// SequenceMI estimates per-position mutual information between the secret
// and a *sequence* of observations by averaging BinaryMI across positions.
// It captures ordering leaks (Figure 2) that aggregate histograms hide.
func SequenceMI(seq0, seq1 [][]uint64, binWidth uint64) float64 {
	n := len(seq0)
	if len(seq1) < n {
		n = len(seq1)
	}
	if n == 0 {
		return 0
	}
	// seq0[i] and seq1[i] are samples of observation position i under
	// secrets 0 and 1.
	total := 0.0
	for i := 0; i < n; i++ {
		total += BinaryMI(seq0[i], seq1[i], binWidth)
	}
	return total / float64(n)
}

// Normalize divides each value by the matching baseline value.
func Normalize(values, baseline []float64) ([]float64, error) {
	if len(values) != len(baseline) {
		return nil, fmt.Errorf("stats: normalize length mismatch %d vs %d", len(values), len(baseline))
	}
	out := make([]float64, len(values))
	for i := range values {
		if baseline[i] == 0 {
			return nil, fmt.Errorf("stats: zero baseline at index %d", i)
		}
		out[i] = values[i] / baseline[i]
	}
	return out, nil
}
