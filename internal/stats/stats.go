// Package stats provides the measurement utilities used across the
// evaluation: aggregate means, histograms of observed latencies, and the
// mutual-information estimator that quantifies side-channel leakage for
// the Table 1 security comparison.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// NonPositiveError reports a Geomean input outside its domain: the
// geometric mean is only defined over positive values.
type NonPositiveError struct {
	// Index is the offending position, Value the offending input.
	Index int
	Value float64
}

// Error implements error.
func (e *NonPositiveError) Error() string {
	return fmt.Sprintf("stats: geomean of non-positive value %f at index %d", e.Value, e.Index)
}

// Geomean returns the geometric mean of positive values (the aggregate the
// paper uses for normalized IPC). It returns 0 for an empty slice and a
// *NonPositiveError when any input is outside the function's domain.
func Geomean(vals []float64) (float64, error) {
	if len(vals) == 0 {
		return 0, nil
	}
	sum := 0.0
	for i, v := range vals {
		if v <= 0 {
			return 0, &NonPositiveError{Index: i, Value: v}
		}
		sum += math.Log(v)
	}
	return math.Exp(sum / float64(len(vals))), nil
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range vals {
		sum += v
	}
	return sum / float64(len(vals))
}

// Histogram counts occurrences of binned values.
type Histogram struct {
	BinWidth uint64
	Counts   map[uint64]uint64
	Total    uint64
}

// ZeroBinWidthError reports a histogram constructed with bin width 0,
// which would divide by zero on the first Add.
type ZeroBinWidthError struct{}

// Error implements error.
func (e *ZeroBinWidthError) Error() string {
	return "stats: histogram bin width must be positive"
}

// NewHistogram builds a histogram with the given bin width. A zero bin
// width is rejected with *ZeroBinWidthError rather than silently clamped.
func NewHistogram(binWidth uint64) (*Histogram, error) {
	if binWidth == 0 {
		return nil, &ZeroBinWidthError{}
	}
	return &Histogram{BinWidth: binWidth, Counts: make(map[uint64]uint64)}, nil
}

// Add records a value.
func (h *Histogram) Add(v uint64) {
	h.Counts[v/h.BinWidth]++
	h.Total++
}

// P returns the empirical probability of the bin containing v.
func (h *Histogram) P(v uint64) float64 {
	if h.Total == 0 {
		return 0
	}
	return float64(h.Counts[v/h.BinWidth]) / float64(h.Total)
}

// Bins returns the populated bin indices in ascending order.
func (h *Histogram) Bins() []uint64 {
	out := make([]uint64, 0, len(h.Counts))
	for b := range h.Counts {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// BinaryMI estimates the mutual information, in bits, between a uniform
// binary secret and an observation, from samples of the observation under
// each secret value. This is the leakage metric of the security
// comparison: a perfectly protected channel gives 0 bits; 1 bit means the
// observation fully determines the secret.
func BinaryMI(obs0, obs1 []uint64, binWidth uint64) float64 {
	if len(obs0) == 0 || len(obs1) == 0 {
		return 0
	}
	if binWidth == 0 {
		// MI over unbinned observations: each distinct value is its own bin.
		binWidth = 1
	}
	h0, _ := NewHistogram(binWidth)
	h1, _ := NewHistogram(binWidth)
	for _, v := range obs0 {
		h0.Add(v)
	}
	for _, v := range obs1 {
		h1.Add(v)
	}
	bins := map[uint64]bool{}
	for b := range h0.Counts {
		bins[b] = true
	}
	for b := range h1.Counts {
		bins[b] = true
	}
	mi := 0.0
	for b := range bins {
		p0 := float64(h0.Counts[b]) / float64(h0.Total)
		p1 := float64(h1.Counts[b]) / float64(h1.Total)
		pb := (p0 + p1) / 2
		if p0 > 0 {
			mi += 0.5 * p0 * math.Log2(p0/pb)
		}
		if p1 > 0 {
			mi += 0.5 * p1 * math.Log2(p1/pb)
		}
	}
	if mi < 0 {
		mi = 0
	}
	return mi
}

// SequenceMI estimates per-position mutual information between the secret
// and a *sequence* of observations by averaging BinaryMI across positions.
// It captures ordering leaks (Figure 2) that aggregate histograms hide.
func SequenceMI(seq0, seq1 [][]uint64, binWidth uint64) float64 {
	n := len(seq0)
	if len(seq1) < n {
		n = len(seq1)
	}
	if n == 0 {
		return 0
	}
	// seq0[i] and seq1[i] are samples of observation position i under
	// secrets 0 and 1.
	total := 0.0
	for i := 0; i < n; i++ {
		total += BinaryMI(seq0[i], seq1[i], binWidth)
	}
	return total / float64(n)
}

// Normalize divides each value by the matching baseline value.
func Normalize(values, baseline []float64) ([]float64, error) {
	if len(values) != len(baseline) {
		return nil, fmt.Errorf("stats: normalize length mismatch %d vs %d", len(values), len(baseline))
	}
	out := make([]float64, len(values))
	for i := range values {
		if baseline[i] == 0 {
			return nil, fmt.Errorf("stats: zero baseline at index %d", i)
		}
		out[i] = values[i] / baseline[i]
	}
	return out, nil
}
