// Package area reproduces the Table 3 hardware cost evaluation: a
// gate-count model of the shaper's rDAG computation logic (which the paper
// synthesised with YoSys against the 45nm FreePDK45 library) and an SRAM
// bit-cell model of the per-domain private transaction queues (which the
// paper sized with CACTI). The structural formulas follow §4.4's
// description of the state the logic must track — per bank: a
// waiting-for-response bit, a read/write bit and a countdown to the next
// prescribed request — and the constants are calibrated to
// FreePDK45/CACTI 45nm values.
package area

import "fmt"

// Config parameterises the shaper hardware.
type Config struct {
	// Domains is the number of parallel shaper instances (protected
	// security domains).
	Domains int
	// Banks per shaper (one sequence state machine per bank).
	Banks int
	// WeightBits is the rDAG edge-weight register width.
	WeightBits int
	// QueueEntries is the private transaction queue depth per domain.
	QueueEntries int
	// EntryBytes is the size of one queue entry: a 64-bit address plus
	// 64 bytes of write data.
	EntryBytes int
}

// Table3Config returns the configuration evaluated in the paper: eight
// shapers, eight banks each, 16-bit weights, eight 72-byte queue entries.
func Table3Config() Config {
	return Config{Domains: 8, Banks: 8, WeightBits: 16, QueueEntries: 8, EntryBytes: 72}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Domains <= 0 || c.Banks <= 0 || c.WeightBits <= 0 || c.QueueEntries <= 0 || c.EntryBytes <= 0 {
		return fmt.Errorf("area: all parameters must be positive: %+v", c)
	}
	return nil
}

// FreePDK45 calibration constants.
const (
	// flopGates is the NAND2-equivalent gate count of one flip-flop.
	flopGates = 6
	// counterGatesPerBit covers a loadable down-counter bit (flop +
	// decrement logic + load mux).
	counterGatesPerBit = 11
	// compareGatesPerBit covers the zero-detect tree per counter bit.
	compareGatesPerBit = 1
	// ctrlGatesPerBank covers the per-bank slice of the emission
	// arbiter and queue-match logic.
	ctrlGatesPerBank = 5
	// ctrlGatesFixed covers the per-domain FSM.
	ctrlGatesFixed = 6
	// gateAreaUm2 is the average placed-and-routed NAND2-equivalent
	// cell area in FreePDK45 at 45nm.
	gateAreaUm2 = 1.506
	// sramBitAreaUm2 is the CACTI 45nm SRAM area per bit including
	// peripheral overheads at these small macro sizes.
	sramBitAreaUm2 = 0.4625
)

// Result is the Table 3 breakdown.
type Result struct {
	// ComputationGates is the NAND2-equivalent gate count of the rDAG
	// computation logic across all domains.
	ComputationGates int
	// ComputationAreaMM2 is its area in mm².
	ComputationAreaMM2 float64
	// SRAMBytes is the total private-queue storage.
	SRAMBytes int
	// SRAMAreaMM2 is its area in mm².
	SRAMAreaMM2 float64
	// TotalAreaMM2 is the full DAGguise footprint.
	TotalAreaMM2 float64
}

// Estimate computes the hardware cost of the configuration.
func Estimate(c Config) (Result, error) {
	if err := c.Validate(); err != nil {
		return Result{}, err
	}
	// Per bank: waiting bit, read/write bit, weight down-counter and its
	// zero detect (§4.4: "a bit to indicate whether the shaper is
	// waiting for a response, a bit to indicate whether the next request
	// is a read or write, and a counter ... until the next request").
	perBank := 2*flopGates + c.WeightBits*(counterGatesPerBit+compareGatesPerBit)
	perDomain := c.Banks*perBank + c.Banks*ctrlGatesPerBank + ctrlGatesFixed
	gates := c.Domains * perDomain

	sramBytes := c.Domains * c.QueueEntries * c.EntryBytes
	res := Result{
		ComputationGates:   gates,
		ComputationAreaMM2: float64(gates) * gateAreaUm2 / 1e6,
		SRAMBytes:          sramBytes,
		SRAMAreaMM2:        float64(sramBytes*8) * sramBitAreaUm2 / 1e6,
	}
	res.TotalAreaMM2 = res.ComputationAreaMM2 + res.SRAMAreaMM2
	return res, nil
}

// String renders the result as the Table 3 rows.
func (r Result) String() string {
	return fmt.Sprintf(
		"Computation Logic: %d gates, %.5f mm^2\nPrivate Queues: %d B SRAM, %.5f mm^2\nTotal: %.5f mm^2",
		r.ComputationGates, r.ComputationAreaMM2, r.SRAMBytes, r.SRAMAreaMM2, r.TotalAreaMM2)
}
