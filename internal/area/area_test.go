package area

import (
	"math"
	"strings"
	"testing"
)

func TestTable3Reproduction(t *testing.T) {
	res, err := Estimate(Table3Config())
	if err != nil {
		t.Fatal(err)
	}
	// Paper Table 3: 13424 gates, 0.02022 mm²; 4608 B SRAM, 0.01705 mm²;
	// total 0.03727 mm².
	if res.ComputationGates != 13424 {
		t.Fatalf("gates = %d, want 13424", res.ComputationGates)
	}
	if math.Abs(res.ComputationAreaMM2-0.02022) > 0.0002 {
		t.Fatalf("computation area = %.5f, want ~0.02022", res.ComputationAreaMM2)
	}
	if res.SRAMBytes != 4608 {
		t.Fatalf("SRAM bytes = %d, want 4608", res.SRAMBytes)
	}
	if math.Abs(res.SRAMAreaMM2-0.01705) > 0.0002 {
		t.Fatalf("SRAM area = %.5f, want ~0.01705", res.SRAMAreaMM2)
	}
	if math.Abs(res.TotalAreaMM2-0.03727) > 0.0004 {
		t.Fatalf("total = %.5f, want ~0.03727", res.TotalAreaMM2)
	}
}

func TestAreaScalesWithDomains(t *testing.T) {
	one := Table3Config()
	one.Domains = 1
	r1, err := Estimate(one)
	if err != nil {
		t.Fatal(err)
	}
	r8, _ := Estimate(Table3Config())
	if r8.ComputationGates != 8*r1.ComputationGates {
		t.Fatalf("gates do not scale linearly: %d vs 8x%d", r8.ComputationGates, r1.ComputationGates)
	}
	if r8.SRAMBytes != 8*r1.SRAMBytes {
		t.Fatal("SRAM does not scale linearly")
	}
}

func TestValidate(t *testing.T) {
	bad := Table3Config()
	bad.Banks = 0
	if _, err := Estimate(bad); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestString(t *testing.T) {
	res, _ := Estimate(Table3Config())
	s := res.String()
	if !strings.Contains(s, "13424") || !strings.Contains(s, "Total") {
		t.Fatalf("rendering incomplete: %s", s)
	}
}
