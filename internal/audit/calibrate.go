package audit

import (
	"math"
	"math/rand"
	"sort"

	"dagguise/internal/stats"
)

// Stat is a two-sample statistic over secret-conditioned observation
// windows (larger = more distinguishable). stats.WelchT, stats.KSDistance
// and a closed-over stats.BinaryMI all fit.
type Stat func(obs0, obs1 []uint64) float64

// PermutationThreshold estimates the (1 - alpha) quantile of stat's null
// distribution on this window by reassigning the pooled samples to the two
// secret labels k times and recomputing the statistic. Under the null
// (no leakage) the labels are exchangeable, so comparing the observed
// statistic against this threshold rejects with false-positive rate alpha
// by construction — no distributional assumptions, no magic constants. The
// caller seeds rng, which makes the threshold deterministic.
func PermutationThreshold(obs0, obs1 []uint64, stat Stat, k int, alpha float64, rng *rand.Rand) float64 {
	if k < 1 || len(obs0) == 0 || len(obs1) == 0 {
		return 0
	}
	pool := make([]uint64, 0, len(obs0)+len(obs1))
	pool = append(pool, obs0...)
	pool = append(pool, obs1...)
	n0 := len(obs0)
	vals := make([]float64, k)
	for i := 0; i < k; i++ {
		rng.Shuffle(len(pool), func(a, b int) { pool[a], pool[b] = pool[b], pool[a] })
		vals[i] = stat(pool[:n0], pool[n0:])
	}
	sort.Float64s(vals)
	idx := int(math.Ceil(float64(k)*(1-alpha))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= k {
		idx = k - 1
	}
	return vals[idx]
}

// SequencePermutationThreshold calibrates stats.SequenceMI: under the
// no-leakage null the samples at each probe position are exchangeable
// between the two secrets, so shuffling every position's pooled samples
// independently k times yields the statistic's null distribution and the
// (1 - alpha) quantile is the rejection threshold. Positions keep their
// identity (only labels within a position are permuted), so the threshold
// is valid for the ordering-sensitive statistic.
func SequencePermutationThreshold(seq0, seq1 [][]uint64, binWidth uint64, k int, alpha float64, rng *rand.Rand) float64 {
	n := len(seq0)
	if len(seq1) < n {
		n = len(seq1)
	}
	if n == 0 || k < 1 {
		return 0
	}
	vals := make([]float64, k)
	var pool []uint64
	for i := 0; i < k; i++ {
		total := 0.0
		for p := 0; p < n; p++ {
			pool = pool[:0]
			pool = append(pool, seq0[p]...)
			pool = append(pool, seq1[p]...)
			rng.Shuffle(len(pool), func(a, b int) { pool[a], pool[b] = pool[b], pool[a] })
			total += stats.BinaryMI(pool[:len(seq0[p])], pool[len(seq0[p]):], binWidth)
		}
		vals[i] = total / float64(n)
	}
	sort.Float64s(vals)
	idx := int(math.Ceil(float64(k)*(1-alpha))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= k {
		idx = k - 1
	}
	return vals[idx]
}

// BootstrapCI returns a percentile-bootstrap confidence interval for stat
// at the given confidence level: each side is resampled with replacement b
// times and the interval is cut from the resampled statistic's quantiles.
// The interval quantifies the finite-sample uncertainty the old point
// estimate hid. The caller seeds rng, which makes the interval
// deterministic.
func BootstrapCI(obs0, obs1 []uint64, stat Stat, b int, confidence float64, rng *rand.Rand) (lo, hi float64) {
	if b < 1 || len(obs0) == 0 || len(obs1) == 0 {
		return 0, 0
	}
	r0 := make([]uint64, len(obs0))
	r1 := make([]uint64, len(obs1))
	vals := make([]float64, b)
	for i := 0; i < b; i++ {
		for j := range r0 {
			r0[j] = obs0[rng.Intn(len(obs0))]
		}
		for j := range r1 {
			r1[j] = obs1[rng.Intn(len(obs1))]
		}
		vals[i] = stat(r0, r1)
	}
	sort.Float64s(vals)
	tail := (1 - confidence) / 2
	at := func(q float64) float64 {
		idx := int(math.Ceil(q*float64(b))) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= b {
			idx = b - 1
		}
		return vals[idx]
	}
	return at(tail), at(1 - tail)
}
