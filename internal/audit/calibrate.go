package audit

import (
	"context"

	"dagguise/internal/rng"
)

// Stat is a two-sample statistic over secret-conditioned observation
// windows (larger = more distinguishable). stats.WelchT, stats.KSDistance
// and a closed-over stats.BinaryMI all fit.
type Stat func(obs0, obs1 []uint64) float64

// PermutationThreshold estimates the (1 - alpha) quantile of stat's null
// distribution on this window by reassigning the pooled samples to the two
// secret labels k times and recomputing the statistic. Under the null
// (no leakage) the labels are exchangeable, so comparing the observed
// statistic against this threshold rejects with false-positive rate alpha
// by construction — no distributional assumptions, no magic constants. The
// caller seeds rnd, which makes the threshold deterministic.
//
// This form never aborts; PermutationThresholdCtx adds cancellation.
func PermutationThreshold(obs0, obs1 []uint64, stat Stat, k int, alpha float64, rnd *rng.Rand) float64 {
	v, _ := PermutationThresholdCtx(context.Background(), obs0, obs1, stat, k, alpha, rnd)
	return v
}

// SequencePermutationThreshold calibrates stats.SequenceMI: under the
// no-leakage null the samples at each probe position are exchangeable
// between the two secrets, so shuffling every position's pooled samples
// independently k times yields the statistic's null distribution and the
// (1 - alpha) quantile is the rejection threshold. Positions keep their
// identity (only labels within a position are permuted), so the threshold
// is valid for the ordering-sensitive statistic.
func SequencePermutationThreshold(seq0, seq1 [][]uint64, binWidth uint64, k int, alpha float64, rnd *rng.Rand) float64 {
	v, _ := SequencePermutationThresholdCtx(context.Background(), seq0, seq1, binWidth, k, alpha, rnd)
	return v
}

// BootstrapCI returns a percentile-bootstrap confidence interval for stat
// at the given confidence level: each side is resampled with replacement b
// times and the interval is cut from the resampled statistic's quantiles.
// The interval quantifies the finite-sample uncertainty the old point
// estimate hid. The caller seeds rnd, which makes the interval
// deterministic.
func BootstrapCI(obs0, obs1 []uint64, stat Stat, b int, confidence float64, rnd *rng.Rand) (lo, hi float64) {
	lo, hi, _ = BootstrapCICtx(context.Background(), obs0, obs1, stat, b, confidence, rnd)
	return lo, hi
}
