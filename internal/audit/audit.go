// Package audit is the streaming leakage-audit layer: it taps the
// attacker-observable response timing of a running simulation and computes
// secret-conditioned statistics online, window by window, so the repo's
// central security claim — that shaped egress carries no victim-dependent
// timing information — is a continuously observable property rather than a
// one-off offline table.
//
// The pipeline: probe hooks in internal/attack and internal/sim record
// (cycle, value) samples into a Tap per secret run; an Auditor consumes the
// two streams and, every Stride samples, evaluates a sliding window with
// three detectors — Welch's t-test (TVLA-style first-order), the
// Kolmogorov–Smirnov distance (distribution-free shape), and windowed
// mutual information with Miller–Madow bias correction. Thresholds are
// calibrated per window by permutation testing (so the false-positive rate
// is Alpha by construction, not a hard-coded magic number), and the MI
// point estimate carries a bootstrap confidence interval. The first window
// whose calibrated, bias-corrected leakage exceeds the configured budget is
// flagged with its cycle range, so the operator can jump straight to that
// point in a Perfetto trace exported by internal/obs.
//
// Like internal/obs, the collection side is measurement-only and nil-safe:
// every Tap method is a no-op on the nil pointer, and internal/sim's
// non-interference test pins the shaped egress stream bit-identical with
// auditing on and off.
package audit

import (
	"context"
	"encoding/json"
	"fmt"

	"dagguise/internal/rng"
	"dagguise/internal/stats"
)

// Sample is one attacker-observable timing sample: the simulation cycle it
// was observed at and its value (a probe response latency in the attack
// harness, a response inter-arrival gap in the full-system tap).
type Sample struct {
	Cycle uint64 `json:"cycle"`
	Value uint64 `json:"value"`
}

// Tap collects attacker-observable samples from a probe hook. Components
// hold a possibly-nil *Tap and call Record unconditionally: every method is
// a no-op on the nil receiver, so a disabled audit costs one predictable
// nil check per observation site and nothing else.
type Tap struct {
	samples []Sample
}

// NewTap returns an empty tap.
func NewTap() *Tap { return &Tap{} }

// Record appends one sample. No-op on nil.
func (t *Tap) Record(cycle, value uint64) {
	if t == nil {
		return
	}
	t.samples = append(t.samples, Sample{Cycle: cycle, Value: value})
}

// Samples returns the recorded samples in observation order (nil on nil).
func (t *Tap) Samples() []Sample {
	if t == nil {
		return nil
	}
	return t.samples
}

// Len returns the number of recorded samples.
func (t *Tap) Len() int {
	if t == nil {
		return 0
	}
	return len(t.samples)
}

// Reset discards the recorded samples.
func (t *Tap) Reset() {
	if t == nil {
		return
	}
	t.samples = t.samples[:0]
}

// Config parameterises an Auditor.
type Config struct {
	// Window is the number of samples per secret evaluated together
	// (must be at least 2; Welch's t needs a variance estimate).
	Window int `json:"window"`
	// Stride is the spacing between window starts; 0 selects Window
	// (tumbling windows), smaller values overlap.
	Stride int `json:"stride"`
	// BinWidth is the MI histogram bin width (0 = every distinct value is
	// its own bin).
	BinWidth uint64 `json:"bin_width"`
	// Budget is the leakage budget in bits: a window "exceeds" when a
	// calibrated detector rejects the null AND its bias-corrected MI is
	// above this budget.
	Budget float64 `json:"budget_bits"`
	// Alpha is the per-window false-positive rate the permutation
	// calibration targets.
	Alpha float64 `json:"alpha"`
	// Permutations is the number of label shuffles per window used to
	// estimate each detector's null distribution.
	Permutations int `json:"permutations"`
	// Bootstrap is the number of resamples behind the MI confidence
	// interval.
	Bootstrap int `json:"bootstrap"`
	// Confidence is the CI level (e.g. 0.95).
	Confidence float64 `json:"confidence"`
	// Seed drives the permutation and bootstrap RNG; every window derives
	// its own deterministic stream from it, so reports are reproducible.
	Seed int64 `json:"seed"`
}

// DefaultConfig returns the calibration defaults used by cmd/dagaudit and
// the CI leakage gate.
func DefaultConfig() Config {
	return Config{
		Window:       100,
		Stride:       0, // = Window
		BinWidth:     8,
		Budget:       0.05,
		Alpha:        0.01,
		Permutations: 200,
		Bootstrap:    200,
		Confidence:   0.95,
		Seed:         1,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Window < 2 {
		return fmt.Errorf("audit: window %d too small (need >= 2)", c.Window)
	}
	if c.Stride < 0 {
		return fmt.Errorf("audit: negative stride %d", c.Stride)
	}
	if c.Budget < 0 {
		return fmt.Errorf("audit: negative budget %f", c.Budget)
	}
	if c.Alpha <= 0 || c.Alpha >= 1 {
		return fmt.Errorf("audit: alpha %f outside (0, 1)", c.Alpha)
	}
	if c.Confidence <= 0 || c.Confidence >= 1 {
		return fmt.Errorf("audit: confidence %f outside (0, 1)", c.Confidence)
	}
	if c.Permutations < 1 || c.Bootstrap < 1 {
		return fmt.Errorf("audit: need at least one permutation and bootstrap resample")
	}
	return nil
}

// stride returns the effective window spacing.
func (c Config) stride() int {
	if c.Stride == 0 {
		return c.Window
	}
	return c.Stride
}

// WindowReport is the audit outcome of one sliding window.
type WindowReport struct {
	// Index is the window's ordinal; Start its sample offset into each
	// secret's stream.
	Index int `json:"index"`
	Start int `json:"start"`
	// StartCycle / EndCycle bound the simulation cycles the window covers
	// (across both secret runs) — the jump target for a Perfetto trace.
	StartCycle uint64 `json:"start_cycle"`
	EndCycle   uint64 `json:"end_cycle"`
	// T is the absolute Welch's t statistic and TThreshold its
	// permutation-calibrated rejection threshold; likewise KS and MI.
	T           float64 `json:"t"`
	TThreshold  float64 `json:"t_threshold"`
	KS          float64 `json:"ks"`
	KSThreshold float64 `json:"ks_threshold"`
	// MI is the Miller–Madow-corrected windowed mutual information in
	// bits, with a percentile-bootstrap confidence interval [MILo, MIHi].
	MI          float64 `json:"mi_bits"`
	MILo        float64 `json:"mi_lo"`
	MIHi        float64 `json:"mi_hi"`
	MIThreshold float64 `json:"mi_threshold"`
	// Detectors lists the calibrated detectors that rejected the
	// no-leakage null on this window ("welch", "ks", "mi").
	Detectors []string `json:"detectors,omitempty"`
	// Exceeded marks the window as over the leakage budget: a detector
	// fired and the corrected MI is above Config.Budget.
	Exceeded bool `json:"exceeded"`
}

// Auditor consumes two secret-conditioned sample streams and audits every
// full window as soon as both streams reach it. It is single-goroutine,
// deterministic for a fixed Config, and never mutates the samples it is
// fed — the simulation cannot observe it.
//
// Long-running consumers (the dagauditd service) keep its memory bounded
// with Compact, which discards samples no future window can reference, and
// TakeWindows, which hands off finished reports for external aggregation.
// Offsets reported in WindowReport.Start are absolute stream positions and
// are unaffected by compaction.
type Auditor struct {
	cfg Config
	// base is the absolute stream offset of streams[i][0]: Compact drops
	// consumed prefixes and advances it, so all window arithmetic runs on
	// absolute offsets while memory stays bounded.
	base    int
	streams [2][]Sample
	next    int // absolute start offset of the next unprocessed window
	done    int // windows audited since creation (survives TakeWindows)
	windows []WindowReport
}

// New builds an Auditor for the configuration.
func New(cfg Config) (*Auditor, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Auditor{cfg: cfg}, nil
}

// Push appends one sample observed under the given secret (0 or 1) and
// processes any windows that became complete.
func (a *Auditor) Push(secret int, s Sample) error {
	if secret != 0 && secret != 1 {
		return fmt.Errorf("audit: secret %d outside the binary channel", secret)
	}
	a.streams[secret] = append(a.streams[secret], s)
	a.drain()
	return nil
}

// PushTap feeds every sample of the tap under the given secret.
func (a *Auditor) PushTap(secret int, t *Tap) error {
	for _, s := range t.Samples() {
		if err := a.Push(secret, s); err != nil {
			return err
		}
	}
	return nil
}

// drain audits every window both streams have fully covered.
func (a *Auditor) drain() {
	w := a.cfg.Window
	for a.base+len(a.streams[0]) >= a.next+w && a.base+len(a.streams[1]) >= a.next+w {
		a.audit(a.next)
		a.next += a.cfg.stride()
	}
}

// audit evaluates the full window starting at absolute offset start.
func (a *Auditor) audit(start int) {
	w := a.cfg.Window
	rel := start - a.base
	win0 := a.streams[0][rel : rel+w]
	win1 := a.streams[1][rel : rel+w]
	rep, _ := a.evalWindow(context.Background(), start, win0, win1)
	a.windows = append(a.windows, rep)
}

// evalWindow computes one window report over the two (possibly
// unequal-length, for the final partial flush) sample windows. The window
// index is taken from — and advances — the auditor's lifetime counter, so
// every window derives its own RNG stream from (Seed, index) and the report
// is identical no matter how the pushes were interleaved or how often the
// auditor was compacted, checkpointed and restored. A canceled context
// leaves the counter untouched so a later retry reproduces the same report.
func (a *Auditor) evalWindow(ctx context.Context, start int, win0, win1 []Sample) (WindowReport, error) {
	v0 := make([]uint64, len(win0))
	v1 := make([]uint64, len(win1))
	for i := range win0 {
		v0[i] = win0[i].Value
	}
	for i := range win1 {
		v1[i] = win1[i].Value
	}

	idx := a.done
	rep := WindowReport{
		Index:      idx,
		Start:      start,
		StartCycle: minCycle(win0, win1),
		EndCycle:   maxCycle(win0, win1),
		T:          stats.WelchT(v0, v1),
		KS:         stats.KSDistance(v0, v1),
	}
	mi := func(x, y []uint64) float64 { return stats.BinaryMI(x, y, a.cfg.BinWidth) }
	rep.MI = mi(v0, v1)

	rnd := rng.New(a.cfg.Seed*1_000_003 + int64(idx))
	var err error
	rep.TThreshold, err = PermutationThresholdCtx(ctx, v0, v1, stats.WelchT, a.cfg.Permutations, a.cfg.Alpha, rnd)
	if err != nil {
		return rep, err
	}
	ks := func(x, y []uint64) float64 { return stats.KSDistance(x, y) }
	if rep.KSThreshold, err = PermutationThresholdCtx(ctx, v0, v1, ks, a.cfg.Permutations, a.cfg.Alpha, rnd); err != nil {
		return rep, err
	}
	if rep.MIThreshold, err = PermutationThresholdCtx(ctx, v0, v1, mi, a.cfg.Permutations, a.cfg.Alpha, rnd); err != nil {
		return rep, err
	}
	if rep.MILo, rep.MIHi, err = BootstrapCICtx(ctx, v0, v1, mi, a.cfg.Bootstrap, a.cfg.Confidence, rnd); err != nil {
		return rep, err
	}

	if rep.T > rep.TThreshold {
		rep.Detectors = append(rep.Detectors, "welch")
	}
	if rep.KS > rep.KSThreshold {
		rep.Detectors = append(rep.Detectors, "ks")
	}
	if rep.MI > rep.MIThreshold {
		rep.Detectors = append(rep.Detectors, "mi")
	}
	rep.Exceeded = len(rep.Detectors) > 0 && rep.MI > a.cfg.Budget
	a.done = idx + 1
	return rep, nil
}

// Audited returns the number of windows evaluated over the auditor's
// lifetime, including reports already handed off with TakeWindows.
func (a *Auditor) Audited() int { return a.done }

// Pending returns, per secret class, how many accepted samples are waiting
// beyond the last evaluated window.
func (a *Auditor) Pending() [2]int {
	var p [2]int
	for i := range a.streams {
		p[i] = a.base + len(a.streams[i]) - a.next
		if p[i] < 0 {
			p[i] = 0
		}
	}
	return p
}

// Compact discards every sample no future window can reference (the prefix
// below the next unprocessed window start), bounding the auditor's memory
// to O(Window) for tumbling windows regardless of stream length. Reports
// are unaffected: window indices, offsets and RNG streams are all absolute.
func (a *Auditor) Compact() {
	cut := a.next - a.base
	for i := range a.streams {
		if n := len(a.streams[i]); n < cut {
			cut = n
		}
	}
	if cut <= 0 {
		return
	}
	for i := range a.streams {
		rem := copy(a.streams[i], a.streams[i][cut:])
		a.streams[i] = a.streams[i][:rem]
	}
	a.base += cut
}

// TakeWindows returns the window reports accumulated since the last call
// and clears the retained slice, so a long-running consumer can fold them
// into its own bounded aggregate. Window indices keep counting across
// calls; Report only covers windows still retained.
func (a *Auditor) TakeWindows() []WindowReport {
	ws := a.windows
	a.windows = nil
	return ws
}

// Flush force-evaluates one final partial window over whatever samples are
// pending beyond the last full window — the end-of-stream audit of a
// tenant that stopped short of Config.Window. A starved stream (fewer than
// 2 pending samples in either secret class) cannot be calibrated and
// returns a wrapped ErrInsufficientSamples; with nothing pending at all it
// returns (nil, nil). The evaluated window is also appended to Windows.
func (a *Auditor) Flush() (*WindowReport, error) { return a.FlushCtx(context.Background()) }

// FlushCtx is Flush with cooperative cancellation threaded through the
// calibration loops.
func (a *Auditor) FlushCtx(ctx context.Context) (*WindowReport, error) {
	p := a.Pending()
	if p[0] == 0 && p[1] == 0 {
		return nil, nil
	}
	if p[0] < 2 || p[1] < 2 {
		return nil, fmt.Errorf("%w: %d and %d pending samples past window %d",
			ErrInsufficientSamples, p[0], p[1], a.done)
	}
	rel := a.next - a.base
	rep, err := a.evalWindow(ctx, a.next, a.streams[0][rel:], a.streams[1][rel:])
	if err != nil {
		return nil, err
	}
	a.windows = append(a.windows, rep)
	// The flushed samples are consumed: advance past the longer side so a
	// subsequent Flush is a no-op and Compact can reclaim them.
	a.next = a.base + max(len(a.streams[0]), len(a.streams[1]))
	return &rep, nil
}

func minCycle(a, b []Sample) uint64 {
	m := a[0].Cycle
	if b[0].Cycle < m {
		m = b[0].Cycle
	}
	return m
}

func maxCycle(a, b []Sample) uint64 {
	m := a[len(a)-1].Cycle
	if c := b[len(b)-1].Cycle; c > m {
		m = c
	}
	return m
}

// Windows returns the audited windows so far.
func (a *Auditor) Windows() []WindowReport { return a.windows }

// Report is the full audit outcome: the input shape, every window's
// statistics, and the budget verdict. Field order (and therefore the JSON
// encoding) is fixed, and every number is deterministic for a fixed
// Config, so reports are golden-testable and diffable across CI runs.
type Report struct {
	Scheme string `json:"scheme"`
	Config Config `json:"config"`
	// Samples counts the observations consumed per secret.
	Samples [2]int         `json:"samples"`
	Windows []WindowReport `json:"windows"`
	// FirstExceeded is the index of the first window over budget (-1 if
	// none); FirstExceededCycle is that window's StartCycle.
	FirstExceeded      int    `json:"first_exceeded_window"`
	FirstExceededCycle uint64 `json:"first_exceeded_cycle"`
	// MaxMI is the largest corrected windowed MI observed.
	MaxMI float64 `json:"max_mi_bits"`
	// WithinBudget is the CI gate: true when no window exceeded.
	WithinBudget bool `json:"within_budget"`
}

// Report summarises everything audited so far under the given scheme name.
func (a *Auditor) Report(scheme string) *Report {
	r := &Report{
		Scheme:        scheme,
		Config:        a.cfg,
		Samples:       [2]int{a.base + len(a.streams[0]), a.base + len(a.streams[1])},
		Windows:       a.windows,
		FirstExceeded: -1,
		WithinBudget:  true,
	}
	for _, w := range a.windows {
		if w.MI > r.MaxMI {
			r.MaxMI = w.MI
		}
		if w.Exceeded && r.FirstExceeded < 0 {
			r.FirstExceeded = w.Index
			r.FirstExceededCycle = w.StartCycle
			r.WithinBudget = false
		}
	}
	return r
}

// JSON renders the report as stable, indented JSON.
func (r *Report) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// Format renders the report as an aligned text summary.
func (r *Report) Format() string {
	out := fmt.Sprintf("leakage audit: scheme=%s windows=%d window=%d stride=%d budget=%.3f bits alpha=%.3f\n",
		r.Scheme, len(r.Windows), r.Config.Window, r.Config.stride(), r.Config.Budget, r.Config.Alpha)
	out += fmt.Sprintf("%4s %12s %12s %10s %10s %10s %24s %s\n",
		"win", "cycles", "t(thr)", "ks(thr)", "mi", "thr", "ci", "verdict")
	for _, w := range r.Windows {
		verdict := "ok"
		if len(w.Detectors) > 0 {
			verdict = "trip:" + joinDetectors(w.Detectors)
		}
		if w.Exceeded {
			verdict = "LEAK " + joinDetectors(w.Detectors)
		}
		out += fmt.Sprintf("%4d %12s %6.1f(%4.1f) %5.3f(%.3f) %10.4f %10.4f %10.4f..%-10.4f %s\n",
			w.Index, fmt.Sprintf("%d..%d", w.StartCycle, w.EndCycle),
			clipT(w.T), clipT(w.TThreshold), w.KS, w.KSThreshold,
			w.MI, w.MIThreshold, w.MILo, w.MIHi, verdict)
	}
	if r.WithinBudget {
		out += fmt.Sprintf("result: within budget (max windowed MI %.4f <= %.4f bits)\n", r.MaxMI, r.Config.Budget)
	} else {
		out += fmt.Sprintf("result: LEAK — window %d exceeds the %.4f-bit budget starting at cycle %d (max windowed MI %.4f)\n",
			r.FirstExceeded, r.Config.Budget, r.FirstExceededCycle, r.MaxMI)
	}
	return out
}

// clipT keeps the degenerate-variance t sentinel readable in text output.
func clipT(t float64) float64 {
	if t > 9999 {
		return 9999
	}
	return t
}

func joinDetectors(ds []string) string {
	out := ""
	for i, d := range ds {
		if i > 0 {
			out += ","
		}
		out += d
	}
	return out
}
