package audit

import (
	"bytes"
	"flag"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

func TestNilTapIsNoOp(t *testing.T) {
	var tap *Tap
	tap.Record(1, 2) // must not panic
	tap.Reset()
	if tap.Samples() != nil || tap.Len() != 0 {
		t.Fatal("nil tap should report nothing")
	}
}

func TestTapRecords(t *testing.T) {
	tap := NewTap()
	tap.Record(10, 100)
	tap.Record(20, 200)
	if tap.Len() != 2 || tap.Samples()[1] != (Sample{Cycle: 20, Value: 200}) {
		t.Fatalf("samples = %v", tap.Samples())
	}
	tap.Reset()
	if tap.Len() != 0 {
		t.Fatal("reset did not clear")
	}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{Window: 1, Alpha: 0.01, Confidence: 0.95, Permutations: 1, Bootstrap: 1},
		{Window: 10, Alpha: 0, Confidence: 0.95, Permutations: 1, Bootstrap: 1},
		{Window: 10, Alpha: 0.01, Confidence: 1, Permutations: 1, Bootstrap: 1},
		{Window: 10, Alpha: 0.01, Confidence: 0.95, Permutations: 0, Bootstrap: 1},
		{Window: 10, Alpha: 0.01, Confidence: 0.95, Permutations: 1, Bootstrap: 1, Budget: -1},
		{Window: 10, Alpha: 0.01, Confidence: 0.95, Permutations: 1, Bootstrap: 1, Stride: -1},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if _, err := New(Config{}); err == nil {
		t.Fatal("zero config accepted")
	}
}

func TestAuditorRejectsNonBinarySecret(t *testing.T) {
	a, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Push(2, Sample{}); err == nil {
		t.Fatal("secret 2 accepted")
	}
}

// pushPair feeds n paired samples; gen returns (cycle, value0, value1) for
// sample i.
func pushPair(t *testing.T, a *Auditor, n int, gen func(i int) (uint64, uint64, uint64)) {
	t.Helper()
	for i := 0; i < n; i++ {
		c, v0, v1 := gen(i)
		if err := a.Push(0, Sample{Cycle: c, Value: v0}); err != nil {
			t.Fatal(err)
		}
		if err := a.Push(1, Sample{Cycle: c, Value: v1}); err != nil {
			t.Fatal(err)
		}
	}
}

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Window = 50
	cfg.Permutations = 100
	cfg.Bootstrap = 100
	return cfg
}

func TestIdenticalTrafficStaysWithinBudget(t *testing.T) {
	// Secret-independent traffic (the DAGguise invariant): both streams
	// are bit-identical, so no detector may fire in any window.
	a, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	pushPair(t, a, 200, func(i int) (uint64, uint64, uint64) {
		v := 200 + uint64(rng.Intn(40))
		return uint64(i) * 120, v, v
	})
	rep := a.Report("identical")
	if len(rep.Windows) != 4 {
		t.Fatalf("windows = %d, want 4", len(rep.Windows))
	}
	if !rep.WithinBudget || rep.FirstExceeded != -1 {
		t.Fatalf("identical traffic flagged: %+v", rep)
	}
	for _, w := range rep.Windows {
		if len(w.Detectors) != 0 || w.MI != 0 || w.T != 0 || w.KS != 0 {
			t.Fatalf("window %d not clean: %+v", w.Index, w)
		}
	}
}

func TestSameDistributionNoiseStaysWithinBudget(t *testing.T) {
	// Independent draws from the *same* distribution: the plug-in MI is
	// spuriously positive here, and an uncalibrated threshold would flag
	// it. The Miller–Madow correction plus permutation calibration must
	// keep it clean.
	a, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	pushPair(t, a, 200, func(i int) (uint64, uint64, uint64) {
		return uint64(i) * 120, 200 + uint64(rng.Intn(64)), 200 + uint64(rng.Intn(64))
	})
	rep := a.Report("null")
	if !rep.WithinBudget {
		t.Fatalf("same-distribution noise flagged as leakage: first window %d, max MI %f",
			rep.FirstExceeded, rep.MaxMI)
	}
}

func TestLeakFlagsFirstExceedingWindowAndCycle(t *testing.T) {
	// The two secrets diverge from sample 100 on (windows 0 and 1 clean,
	// window 2 leaks): the report must name window 2 and its start cycle.
	cfg := smallConfig()
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(13))
	pushPair(t, a, 200, func(i int) (uint64, uint64, uint64) {
		v0 := 200 + uint64(rng.Intn(16))
		v1 := 200 + uint64(rng.Intn(16))
		if i >= 100 {
			v1 += 120 // the secret-dependent latency shift
		}
		return uint64(i) * 120, v0, v1
	})
	rep := a.Report("leaky")
	if rep.WithinBudget {
		t.Fatal("shifted stream not flagged")
	}
	if rep.FirstExceeded != 2 {
		t.Fatalf("first exceeded window = %d, want 2", rep.FirstExceeded)
	}
	if want := uint64(100 * 120); rep.FirstExceededCycle != want {
		t.Fatalf("first exceeded cycle = %d, want %d", rep.FirstExceededCycle, want)
	}
	w := rep.Windows[2]
	if len(w.Detectors) == 0 || !w.Exceeded {
		t.Fatalf("leak window not tripped: %+v", w)
	}
	if !(w.MILo <= w.MI && w.MI <= w.MIHi) {
		t.Fatalf("CI [%f, %f] does not bracket MI %f", w.MILo, w.MIHi, w.MI)
	}
	for _, clean := range rep.Windows[:2] {
		if clean.Exceeded {
			t.Fatalf("pre-divergence window %d flagged", clean.Index)
		}
	}
}

func TestOverlappingStride(t *testing.T) {
	cfg := smallConfig()
	cfg.Stride = 25
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pushPair(t, a, 100, func(i int) (uint64, uint64, uint64) {
		return uint64(i), uint64(i % 7), uint64(i % 7)
	})
	// Starts 0 and 25 fit fully in 100 samples with window 50 and stride
	// 25 (start 50 needs samples up to 100, then 75 up to 125).
	if got := len(a.Windows()); got != 3 {
		t.Fatalf("windows = %d, want 3", got)
	}
	if a.Windows()[1].Start != 25 {
		t.Fatalf("second window starts at %d", a.Windows()[1].Start)
	}
}

func TestPushTap(t *testing.T) {
	tap0, tap1 := NewTap(), NewTap()
	for i := 0; i < 60; i++ {
		tap0.Record(uint64(i), 100)
		tap1.Record(uint64(i), 100)
	}
	cfg := smallConfig()
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.PushTap(0, tap0); err != nil {
		t.Fatal(err)
	}
	if err := a.PushTap(1, tap1); err != nil {
		t.Fatal(err)
	}
	if len(a.Windows()) != 1 {
		t.Fatalf("windows = %d, want 1", len(a.Windows()))
	}
}

// TestReportGolden pins the exact JSON report for a fixed synthetic input:
// the audit pipeline (estimators, calibration, serialization) must be
// deterministic down to the last float, or CI artifact diffs and the
// -budget gate would be noise.
func TestReportGolden(t *testing.T) {
	cfg := smallConfig()
	cfg.Seed = 42
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	pushPair(t, a, 150, func(i int) (uint64, uint64, uint64) {
		v0 := 180 + uint64(rng.Intn(32))
		v1 := 180 + uint64(rng.Intn(32))
		if i >= 50 {
			v1 += 90
		}
		return uint64(i) * 137, v0, v1
	})
	got, err := a.Report("golden").JSON()
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	path := filepath.Join("testdata", "report.golden")
	if *updateGolden {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("report drifted from golden (run with -update to accept):\n%s", got)
	}
}

func TestFormatMentionsVerdict(t *testing.T) {
	a, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	pushPair(t, a, 50, func(i int) (uint64, uint64, uint64) {
		return uint64(i), 100, 900 // maximally distinguishable
	})
	rep := a.Report("insecure")
	text := rep.Format()
	if !bytes.Contains([]byte(text), []byte("LEAK")) {
		t.Fatalf("leak verdict missing from summary:\n%s", text)
	}
	clean, _ := New(smallConfig())
	if !bytes.Contains([]byte(clean.Report("x").Format()), []byte("within budget")) {
		t.Fatal("clean verdict missing")
	}
}
