package audit

import (
	"context"
	"encoding/json"
	"errors"
	"math/rand"
	"testing"

	crng "dagguise/internal/rng"
)

// streamCfg is a small, fast configuration for the streaming tests.
func streamCfg() Config {
	cfg := DefaultConfig()
	cfg.Window = 20
	cfg.Permutations = 40
	cfg.Bootstrap = 40
	return cfg
}

// feed pushes n paired samples drawn from the given per-class offsets.
func feed(t *testing.T, a *Auditor, n int, seed int64, off0, off1 uint64) {
	t.Helper()
	rnd := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		c := uint64(i * 10)
		if err := a.Push(0, Sample{Cycle: c, Value: off0 + uint64(rnd.Intn(16))}); err != nil {
			t.Fatal(err)
		}
		if err := a.Push(1, Sample{Cycle: c + 5, Value: off1 + uint64(rnd.Intn(16))}); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCompactPreservesReports pins the bounded-memory contract: a
// periodically compacted auditor produces window reports byte-identical to
// an uncompacted one over the same stream.
func TestCompactPreservesReports(t *testing.T) {
	plain, err := New(streamCfg())
	if err != nil {
		t.Fatal(err)
	}
	compacted, err := New(streamCfg())
	if err != nil {
		t.Fatal(err)
	}
	rnd := rand.New(rand.NewSource(7))
	for i := 0; i < 137; i++ {
		s0 := Sample{Cycle: uint64(i * 10), Value: 100 + uint64(rnd.Intn(16))}
		s1 := Sample{Cycle: uint64(i*10 + 5), Value: 100 + uint64(rnd.Intn(16))}
		for _, a := range []*Auditor{plain, compacted} {
			if err := a.Push(0, s0); err != nil {
				t.Fatal(err)
			}
			if err := a.Push(1, s1); err != nil {
				t.Fatal(err)
			}
		}
		if i%11 == 0 {
			compacted.Compact()
		}
	}
	compacted.Compact()
	if n := len(compacted.streams[0]); n >= 40 {
		t.Fatalf("compaction left %d samples pending, want O(window)", n)
	}
	ra, _ := plain.Report("x").JSON()
	rb, _ := compacted.Report("x").JSON()
	if string(ra) != string(rb) {
		t.Fatalf("compacted report diverged:\n%s\nvs\n%s", ra, rb)
	}
}

// TestAuditorStateRoundTrip pins crash recovery: save mid-stream (through
// JSON, as a checkpoint would), restore, finish the stream, and require
// the report byte-identical to an uninterrupted run.
func TestAuditorStateRoundTrip(t *testing.T) {
	ref, err := New(streamCfg())
	if err != nil {
		t.Fatal(err)
	}
	feed(t, ref, 105, 3, 100, 160)

	first, err := New(streamCfg())
	if err != nil {
		t.Fatal(err)
	}
	feed(t, first, 53, 3, 100, 160)
	first.Compact() // recovery must also survive a compacted save
	blob, err := json.Marshal(first.SaveState())
	if err != nil {
		t.Fatal(err)
	}
	var st AuditorState
	if err := json.Unmarshal(blob, &st); err != nil {
		t.Fatal(err)
	}
	resumed, err := RestoreAuditor(&st)
	if err != nil {
		t.Fatal(err)
	}
	// Continue the identical tail: replay the full deterministic stream
	// generator and skip what the first half already consumed.
	rnd := rand.New(rand.NewSource(3))
	for i := 0; i < 105; i++ {
		s0 := Sample{Cycle: uint64(i * 10), Value: 100 + uint64(rnd.Intn(16))}
		s1 := Sample{Cycle: uint64(i*10 + 5), Value: 160 + uint64(rnd.Intn(16))}
		if i < 53 {
			continue
		}
		if err := resumed.Push(0, s0); err != nil {
			t.Fatal(err)
		}
		if err := resumed.Push(1, s1); err != nil {
			t.Fatal(err)
		}
	}
	ra, _ := ref.Report("x").JSON()
	rb, _ := resumed.Report("x").JSON()
	if string(ra) != string(rb) {
		t.Fatalf("resumed report diverged:\n%s\nvs\n%s", ra, rb)
	}
}

func TestRestoreAuditorRejectsCorruptState(t *testing.T) {
	if _, err := RestoreAuditor(nil); err == nil {
		t.Fatal("nil state accepted")
	}
	bad := &AuditorState{Config: streamCfg(), Base: 10, Next: 3}
	if _, err := RestoreAuditor(bad); err == nil {
		t.Fatal("next < base accepted")
	}
	badCfg := &AuditorState{Config: Config{Window: 1}}
	if _, err := RestoreAuditor(badCfg); err == nil {
		t.Fatal("invalid config accepted")
	}
}

// TestFlushStarvedStream is the regression test for the typed calibration
// error: a tenant whose class-1 stream dried up must surface
// ErrInsufficientSamples, not a NaN statistic or a zero threshold.
func TestFlushStarvedStream(t *testing.T) {
	a, err := New(streamCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Class 0 keeps producing; class 1 delivered a single sample.
	for i := 0; i < 9; i++ {
		if err := a.Push(0, Sample{Cycle: uint64(i), Value: 100}); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Push(1, Sample{Cycle: 0, Value: 100}); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Flush(); !errors.Is(err, ErrInsufficientSamples) {
		t.Fatalf("starved flush returned %v, want ErrInsufficientSamples", err)
	}
	// The calibration primitives themselves carry the same typed error.
	ctx := context.Background()
	if _, err := PermutationThresholdCtx(ctx, []uint64{1, 2, 3}, []uint64{4}, mi8, 10, 0.05, crng.New(99)); !errors.Is(err, ErrInsufficientSamples) {
		t.Fatalf("PermutationThresholdCtx returned %v, want ErrInsufficientSamples", err)
	}
	if _, _, err := BootstrapCICtx(ctx, []uint64{1}, []uint64{2, 3}, mi8, 10, 0.95, crng.New(99)); !errors.Is(err, ErrInsufficientSamples) {
		t.Fatalf("BootstrapCICtx returned %v, want ErrInsufficientSamples", err)
	}
}

// TestFlushPartialWindow checks the end-of-stream audit: a leaky remnant
// shorter than a full window still produces a calibrated report, and a
// second flush is a no-op.
func TestFlushPartialWindow(t *testing.T) {
	a, err := New(streamCfg())
	if err != nil {
		t.Fatal(err)
	}
	feed(t, a, 29, 5, 100, 400) // one full window + 9 pending pairs
	if got := a.Audited(); got != 1 {
		t.Fatalf("audited %d full windows, want 1", got)
	}
	rep, err := a.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if rep == nil || rep.Index != 1 {
		t.Fatalf("flush produced %+v, want window index 1", rep)
	}
	if !rep.Exceeded {
		t.Fatal("grossly leaky partial window not flagged")
	}
	if rep2, err := a.Flush(); err != nil || rep2 != nil {
		t.Fatalf("second flush = (%v, %v), want no-op", rep2, err)
	}
}
