package audit

import (
	"context"
	"errors"
	"testing"

	"dagguise/internal/rng"
	"dagguise/internal/stats"
)

func synthStreams(seed int64, n int) (a, b []uint64) {
	r := rng.New(seed)
	for i := 0; i < n; i++ {
		a = append(a, uint64(100+r.Intn(40)))
		b = append(b, uint64(100+r.Intn(40)))
	}
	return a, b
}

func TestCtxVariantsMatchPlainForms(t *testing.T) {
	a, b := synthStreams(7, 200)

	plain := PermutationThreshold(a, b, stats.WelchT, 100, 0.05, rng.New(11))
	got, err := PermutationThresholdCtx(context.Background(), a, b, stats.WelchT, 100, 0.05, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	if got != plain {
		t.Fatalf("PermutationThresholdCtx %v != PermutationThreshold %v", got, plain)
	}

	lo, hi := BootstrapCI(a, b, stats.WelchT, 100, 0.95, rng.New(13))
	glo, ghi, err := BootstrapCICtx(context.Background(), a, b, stats.WelchT, 100, 0.95, rng.New(13))
	if err != nil {
		t.Fatal(err)
	}
	if glo != lo || ghi != hi {
		t.Fatalf("BootstrapCICtx (%v,%v) != BootstrapCI (%v,%v)", glo, ghi, lo, hi)
	}

	seq0 := [][]uint64{a[:50], a[50:100]}
	seq1 := [][]uint64{b[:50], b[50:100]}
	sp := SequencePermutationThreshold(seq0, seq1, 8, 50, 0.05, rng.New(17))
	gsp, err := SequencePermutationThresholdCtx(context.Background(), seq0, seq1, 8, 50, 0.05, rng.New(17))
	if err != nil {
		t.Fatal(err)
	}
	if gsp != sp {
		t.Fatalf("SequencePermutationThresholdCtx %v != plain %v", gsp, sp)
	}
}

func TestCtxVariantsReturnTypedErrCanceled(t *testing.T) {
	a, b := synthStreams(7, 200)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	if _, err := PermutationThresholdCtx(ctx, a, b, stats.WelchT, 100, 0.05, rng.New(1)); !errors.Is(err, ErrCanceled) {
		t.Fatalf("PermutationThresholdCtx: got %v, want ErrCanceled", err)
	}
	if _, _, err := BootstrapCICtx(ctx, a, b, stats.WelchT, 100, 0.95, rng.New(1)); !errors.Is(err, ErrCanceled) {
		t.Fatalf("BootstrapCICtx: got %v, want ErrCanceled", err)
	}
	seq0 := [][]uint64{a[:50]}
	seq1 := [][]uint64{b[:50]}
	if _, err := SequencePermutationThresholdCtx(ctx, seq0, seq1, 8, 50, 0.05, rng.New(1)); !errors.Is(err, ErrCanceled) {
		t.Fatalf("SequencePermutationThresholdCtx: got %v, want ErrCanceled", err)
	}
}

func TestAuditorPushCtx(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Window = 10
	au, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	a, b := synthStreams(3, 20)
	for i := 0; i < 9; i++ {
		if err := au.PushCtx(ctx, 0, Sample{Cycle: uint64(i), Value: a[i]}); err != nil {
			t.Fatal(err)
		}
		if err := au.PushCtx(ctx, 1, Sample{Cycle: uint64(i), Value: b[i]}); err != nil {
			t.Fatal(err)
		}
	}
	cancel()
	// The push completing the first window must abandon calibration with a
	// typed error and leave the window unprocessed...
	if err := au.PushCtx(ctx, 0, Sample{Cycle: 9, Value: a[9]}); err != nil {
		t.Fatal(err) // stream 1 not full yet, no window triggered
	}
	if err := au.PushCtx(ctx, 1, Sample{Cycle: 9, Value: b[9]}); !errors.Is(err, ErrCanceled) {
		t.Fatalf("got %v, want ErrCanceled", err)
	}
	if len(au.Windows()) != 0 {
		t.Fatal("canceled push still audited a window")
	}
	// ...and a later push under a live context resumes it.
	if err := au.PushCtx(context.Background(), 0, Sample{Cycle: 10, Value: a[10]}); err != nil {
		t.Fatal(err)
	}
	if len(au.Windows()) != 1 {
		t.Fatalf("pending window not resumed: %d windows", len(au.Windows()))
	}
}

func TestTapSaveRestore(t *testing.T) {
	tap := NewTap()
	tap.Record(10, 100)
	tap.Record(20, 200)
	saved := tap.SaveState()
	tap.Record(30, 300)
	tap.RestoreState(saved)
	if tap.Len() != 2 || tap.Samples()[1] != (Sample{Cycle: 20, Value: 200}) {
		t.Fatalf("restore mismatch: %+v", tap.Samples())
	}
	var nilTap *Tap
	if nilTap.SaveState() != nil {
		t.Fatal("nil tap saved samples")
	}
	nilTap.RestoreState(saved) // must not panic
}
