package audit

import (
	"math/rand"
	"testing"

	crng "dagguise/internal/rng"

	"dagguise/internal/stats"
)

func mi8(a, b []uint64) float64 { return stats.BinaryMI(a, b, 8) }

func synth(n int, base, spread uint64, rng *rand.Rand) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = base + uint64(rng.Intn(int(spread)))
	}
	return out
}

func TestPermutationThresholdSeparatesSignalFromNull(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	null0 := synth(80, 200, 32, rng)
	null1 := synth(80, 200, 32, rng)
	shift := synth(80, 320, 32, rng)

	for name, stat := range map[string]Stat{"welch": stats.WelchT, "ks": func(a, b []uint64) float64 { return stats.KSDistance(a, b) }, "mi": mi8} {
		thr := PermutationThreshold(null0, null1, stat, 200, 0.01, crng.New(5))
		if got := stat(null0, null1); got > thr {
			t.Errorf("%s: null statistic %f above its own calibrated threshold %f", name, got, thr)
		}
		if got := stat(null0, shift); got <= thr {
			t.Errorf("%s: shifted statistic %f not above threshold %f", name, got, thr)
		}
	}
}

func TestPermutationThresholdDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := synth(60, 100, 50, rng)
	b := synth(60, 120, 50, rng)
	t1 := PermutationThreshold(a, b, mi8, 150, 0.05, crng.New(77))
	t2 := PermutationThreshold(a, b, mi8, 150, 0.05, crng.New(77))
	if t1 != t2 {
		t.Fatalf("thresholds differ for identical seeds: %v vs %v", t1, t2)
	}
	if PermutationThreshold(nil, b, mi8, 150, 0.05, crng.New(1)) != 0 {
		t.Fatal("empty sample should yield zero threshold")
	}
}

func TestBootstrapCIBracketsEstimate(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	a := synth(100, 100, 16, rng)
	b := synth(100, 180, 16, rng) // clearly distinguishable
	point := mi8(a, b)
	lo, hi := BootstrapCI(a, b, mi8, 200, 0.95, crng.New(31))
	if !(lo <= point && point <= hi) {
		t.Fatalf("CI [%f, %f] does not bracket point estimate %f", lo, hi, point)
	}
	if lo == hi && lo == 0 {
		t.Fatal("degenerate CI on a leaky channel")
	}
	lo2, hi2 := BootstrapCI(a, b, mi8, 200, 0.95, crng.New(31))
	if lo != lo2 || hi != hi2 {
		t.Fatal("bootstrap CI not deterministic for a fixed seed")
	}
}

func TestBootstrapCIEmptyInput(t *testing.T) {
	if lo, hi := BootstrapCI(nil, []uint64{1}, mi8, 10, 0.95, crng.New(1)); lo != 0 || hi != 0 {
		t.Fatal("empty input should yield the zero interval")
	}
}
