package audit

// SaveState returns a copy of the tap's recorded samples (nil on a nil
// tap), the tap's full mutable state.
func (t *Tap) SaveState() []Sample {
	if t == nil || len(t.samples) == 0 {
		return nil
	}
	return append([]Sample(nil), t.samples...)
}

// RestoreState replaces the tap's recorded samples. No-op on nil.
func (t *Tap) RestoreState(samples []Sample) {
	if t == nil {
		return
	}
	t.samples = append(t.samples[:0], samples...)
}
