package audit

import "fmt"

// AuditorState is the complete serializable state of an Auditor: enough to
// resume a stream audit bit-identically after a crash. Offsets are
// absolute stream positions (compaction-independent); Windows carries only
// the reports not yet handed off with TakeWindows.
type AuditorState struct {
	Config  Config         `json:"config"`
	Base    int            `json:"base"`
	Streams [2][]Sample    `json:"streams"`
	Next    int            `json:"next"`
	Done    int            `json:"done"`
	Windows []WindowReport `json:"windows,omitempty"`
}

// SaveState captures the auditor's full mutable state as a deep copy.
func (a *Auditor) SaveState() *AuditorState {
	st := &AuditorState{
		Config:  a.cfg,
		Base:    a.base,
		Next:    a.next,
		Done:    a.done,
		Windows: append([]WindowReport(nil), a.windows...),
	}
	for i := range a.streams {
		st.Streams[i] = append([]Sample(nil), a.streams[i]...)
	}
	return st
}

// RestoreAuditor rebuilds an auditor positioned exactly at the saved
// state: the next window evaluated continues the identical report stream.
// The state is validated structurally so a corrupted checkpoint surfaces
// as an error instead of a skewed audit.
func RestoreAuditor(st *AuditorState) (*Auditor, error) {
	if st == nil {
		return nil, fmt.Errorf("audit: nil auditor state")
	}
	if err := st.Config.Validate(); err != nil {
		return nil, err
	}
	if st.Base < 0 || st.Next < st.Base || st.Done < 0 {
		return nil, fmt.Errorf("audit: inconsistent auditor state (base %d, next %d, done %d)",
			st.Base, st.Next, st.Done)
	}
	a := &Auditor{cfg: st.Config, base: st.Base, next: st.Next, done: st.Done,
		windows: append([]WindowReport(nil), st.Windows...)}
	for i := range st.Streams {
		a.streams[i] = append([]Sample(nil), st.Streams[i]...)
	}
	return a, nil
}

// SaveState returns a copy of the tap's recorded samples (nil on a nil
// tap), the tap's full mutable state.
func (t *Tap) SaveState() []Sample {
	if t == nil || len(t.samples) == 0 {
		return nil
	}
	return append([]Sample(nil), t.samples...)
}

// RestoreState replaces the tap's recorded samples. No-op on nil.
func (t *Tap) RestoreState(samples []Sample) {
	if t == nil {
		return
	}
	t.samples = append(t.samples[:0], samples...)
}
