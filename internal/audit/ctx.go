package audit

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"dagguise/internal/rng"
	"dagguise/internal/stats"
)

// ErrCanceled is returned (wrapped) by every context-aware audit entry
// point when the context is canceled or its deadline passes mid-loop. The
// permutation and bootstrap loops are O(k·n) and dominate dagaudit runtime,
// so they poll the context once per resample.
var ErrCanceled = errors.New("audit: canceled")

// ErrInsufficientSamples is returned (wrapped) by the calibration
// primitives and Auditor.Flush when a window holds fewer than 2 samples
// for either secret class. Welch's t needs a variance estimate per class
// and a permutation null over a 1-sample class is degenerate, so instead
// of quietly producing a NaN statistic or a zero threshold that every
// later comparison misreads, starvation is a typed, matchable error —
// the verdict a long-running audit service must surface for a tenant
// whose stream dried up on one secret class.
var ErrInsufficientSamples = errors.New("audit: fewer than 2 samples in a secret class")

// ctxErr converts a context failure into a typed ErrCanceled (nil when the
// context is still live).
func ctxErr(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("%w: %v", ErrCanceled, err)
	}
	return nil
}

// quantileIdx returns the index of the ceil(q·k) order statistic, clamped.
func quantileIdx(k int, q float64) int {
	idx := int(math.Ceil(q*float64(k))) - 1
	if idx < 0 {
		return 0
	}
	if idx >= k {
		return k - 1
	}
	return idx
}

// permQuantileIdx is the (1 - alpha) rejection-threshold index the
// permutation calibrations cut at.
func permQuantileIdx(k int, alpha float64) int {
	return quantileIdx(k, 1-alpha)
}

// PermutationThresholdCtx is PermutationThreshold with cancellation: it
// polls ctx once per permutation and returns a wrapped ErrCanceled the
// moment it fires. When it completes, the value and the PRNG draws consumed
// are identical to the context-free form.
func PermutationThresholdCtx(ctx context.Context, obs0, obs1 []uint64, stat Stat, k int, alpha float64, rnd *rng.Rand) (float64, error) {
	if k < 1 || (len(obs0) == 0 && len(obs1) == 0) {
		return 0, nil
	}
	if len(obs0) < 2 || len(obs1) < 2 {
		return 0, fmt.Errorf("%w: calibration got %d and %d", ErrInsufficientSamples, len(obs0), len(obs1))
	}
	pool := make([]uint64, 0, len(obs0)+len(obs1))
	pool = append(pool, obs0...)
	pool = append(pool, obs1...)
	n0 := len(obs0)
	vals := make([]float64, k)
	for i := 0; i < k; i++ {
		if err := ctxErr(ctx); err != nil {
			return 0, err
		}
		rnd.Shuffle(len(pool), func(a, b int) { pool[a], pool[b] = pool[b], pool[a] })
		vals[i] = stat(pool[:n0], pool[n0:])
	}
	sort.Float64s(vals)
	return vals[permQuantileIdx(k, alpha)], nil
}

// SequencePermutationThresholdCtx is SequencePermutationThreshold with
// cancellation, polled once per permutation round.
func SequencePermutationThresholdCtx(ctx context.Context, seq0, seq1 [][]uint64, binWidth uint64, k int, alpha float64, rnd *rng.Rand) (float64, error) {
	n := len(seq0)
	if len(seq1) < n {
		n = len(seq1)
	}
	if n == 0 || k < 1 {
		return 0, nil
	}
	vals := make([]float64, k)
	var pool []uint64
	for i := 0; i < k; i++ {
		if err := ctxErr(ctx); err != nil {
			return 0, err
		}
		total := 0.0
		for p := 0; p < n; p++ {
			pool = pool[:0]
			pool = append(pool, seq0[p]...)
			pool = append(pool, seq1[p]...)
			rnd.Shuffle(len(pool), func(a, b int) { pool[a], pool[b] = pool[b], pool[a] })
			total += stats.BinaryMI(pool[:len(seq0[p])], pool[len(seq0[p]):], binWidth)
		}
		vals[i] = total / float64(n)
	}
	sort.Float64s(vals)
	return vals[permQuantileIdx(k, alpha)], nil
}

// BootstrapCICtx is BootstrapCI with cancellation, polled once per
// resample.
func BootstrapCICtx(ctx context.Context, obs0, obs1 []uint64, stat Stat, b int, confidence float64, rnd *rng.Rand) (lo, hi float64, err error) {
	if b < 1 || (len(obs0) == 0 && len(obs1) == 0) {
		return 0, 0, nil
	}
	if len(obs0) < 2 || len(obs1) < 2 {
		return 0, 0, fmt.Errorf("%w: bootstrap got %d and %d", ErrInsufficientSamples, len(obs0), len(obs1))
	}
	r0 := make([]uint64, len(obs0))
	r1 := make([]uint64, len(obs1))
	vals := make([]float64, b)
	for i := 0; i < b; i++ {
		if err := ctxErr(ctx); err != nil {
			return 0, 0, err
		}
		for j := range r0 {
			r0[j] = obs0[rnd.Intn(len(obs0))]
		}
		for j := range r1 {
			r1[j] = obs1[rnd.Intn(len(obs1))]
		}
		vals[i] = stat(r0, r1)
	}
	sort.Float64s(vals)
	tail := (1 - confidence) / 2
	return vals[quantileIdx(b, tail)], vals[quantileIdx(b, 1-tail)], nil
}

// PushCtx is Push with cancellation: window calibration triggered by this
// sample is abandoned (wrapped ErrCanceled) when the context fires. Samples
// already appended stay; a later PushCtx with a live context resumes the
// pending windows.
func (a *Auditor) PushCtx(ctx context.Context, secret int, s Sample) error {
	if secret != 0 && secret != 1 {
		return fmt.Errorf("audit: secret %d outside the binary channel", secret)
	}
	a.streams[secret] = append(a.streams[secret], s)
	return a.drainCtx(ctx)
}

// PushTapCtx feeds every sample of the tap under the given secret,
// honouring cancellation between windows.
func (a *Auditor) PushTapCtx(ctx context.Context, secret int, t *Tap) error {
	for _, s := range t.Samples() {
		if err := a.PushCtx(ctx, secret, s); err != nil {
			return err
		}
	}
	return nil
}

// drainCtx audits every complete window, honouring cancellation both
// between windows and inside each window's calibration loops. An
// abandoned window leaves the auditor's counters untouched, so a later
// push with a live context re-evaluates it identically.
func (a *Auditor) drainCtx(ctx context.Context) error {
	w := a.cfg.Window
	for a.base+len(a.streams[0]) >= a.next+w && a.base+len(a.streams[1]) >= a.next+w {
		if err := ctxErr(ctx); err != nil {
			return err
		}
		rel := a.next - a.base
		rep, err := a.evalWindow(ctx, a.next, a.streams[0][rel:rel+w], a.streams[1][rel:rel+w])
		if err != nil {
			return err
		}
		a.windows = append(a.windows, rep)
		a.next += a.cfg.stride()
	}
	return nil
}
