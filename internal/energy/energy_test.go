package energy

import "testing"

func baseCounts() Counts {
	return Counts{
		Activates: 10_000,
		Reads:     8_000,
		Writes:    2_000,
		Refreshes: 50,
		Cycles:    1_000_000,
		FreqMHz:   800,
	}
}

func TestEstimateBreakdownSums(t *testing.T) {
	r, err := Estimate(DDR3Defaults(), baseCounts())
	if err != nil {
		t.Fatal(err)
	}
	sum := r.RowNJ + r.BurstNJ + r.FakeNJ + r.RefreshNJ + r.BackgroundNJ
	if sum != r.TotalNJ {
		t.Fatalf("breakdown %.2f != total %.2f", sum, r.TotalNJ)
	}
	if r.TotalNJ <= 0 {
		t.Fatal("zero energy")
	}
}

func TestEstimateRejectsZeroFrequency(t *testing.T) {
	c := baseCounts()
	c.FreqMHz = 0
	if _, err := Estimate(DDR3Defaults(), c); err == nil {
		t.Fatal("zero frequency accepted")
	}
}

func TestSuppressionSavesEnergy(t *testing.T) {
	c := baseCounts()
	c.SuppressedFakes = 5_000
	saving, err := SuppressionSaving(DDR3Defaults(), c)
	if err != nil {
		t.Fatal(err)
	}
	if saving <= 0.05 {
		t.Fatalf("suppression saving %.3f, expected a substantial fraction", saving)
	}
	// And a performed fake costs strictly more than a suppressed one.
	perf := c
	perf.PerformedFakes, perf.SuppressedFakes = perf.SuppressedFakes, 0
	ep, _ := Estimate(DDR3Defaults(), perf)
	es, _ := Estimate(DDR3Defaults(), c)
	if ep.FakeNJ <= es.FakeNJ {
		t.Fatalf("performed fakes %.1f nJ not above suppressed %.1f nJ", ep.FakeNJ, es.FakeNJ)
	}
}

func TestFakeOverheadScalesWithFakes(t *testing.T) {
	few := baseCounts()
	few.SuppressedFakes = 100
	many := baseCounts()
	many.SuppressedFakes = 50_000
	lo, err := FakeOverhead(DDR3Defaults(), few)
	if err != nil {
		t.Fatal(err)
	}
	hi, err := FakeOverhead(DDR3Defaults(), many)
	if err != nil {
		t.Fatal(err)
	}
	if !(hi > lo) {
		t.Fatalf("overhead did not grow with fakes: %.4f vs %.4f", lo, hi)
	}
	if hi > 0.5 {
		t.Fatalf("suppressed-fake overhead %.3f implausibly high", hi)
	}
}
