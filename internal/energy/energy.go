// Package energy models DRAM energy consumption, quantifying the §4.4
// discussion of fake-request energy cost and the benefit of the
// "suppression" optimisation the paper adopts: a suppressed fake updates
// the controller's timing state as if it were performed, but skips the
// DRAM array access and the data-bus transfer, so it costs only the
// command-bus activity.
//
// The per-operation energies follow the standard DDR3 current-profile
// methodology (Micron TN-41-01 style): an activate/precharge pair costs
// the row charge/restore, a read or write burst costs the column access
// plus I/O, and background power accrues per cycle. The constants are
// representative of a 2Gb DDR3-1600 x8 device and matter only relatively —
// the experiments report overhead percentages, not absolute joules.
package energy

import "fmt"

// Params holds per-operation energies in picojoules and background power
// in milliwatts.
type Params struct {
	ActPrePJ     float64 // one activate+precharge pair
	ReadBurstPJ  float64 // column read + I/O for one 64B burst
	WriteBurstPJ float64 // column write + ODT for one 64B burst
	RefreshPJ    float64 // one refresh command
	BackgroundMW float64 // standby power for the whole rank
}

// DDR3Defaults returns representative 2Gb DDR3-1600 energies.
func DDR3Defaults() Params {
	return Params{
		ActPrePJ:     1995, // IDD0-derived row energy
		ReadBurstPJ:  1300, // IDD4R + I/O
		WriteBurstPJ: 1420, // IDD4W + ODT
		RefreshPJ:    27600,
		BackgroundMW: 75,
	}
}

// Counts are the operation tallies of a simulation window.
type Counts struct {
	// Activates counts row activations (every access under closed-row;
	// misses and conflicts under open-row).
	Activates uint64
	// Reads and Writes count real data bursts.
	Reads, Writes uint64
	// SuppressedFakes counts fake requests under the suppression
	// optimisation: they advance timing state but skip the array access
	// and the burst.
	SuppressedFakes uint64
	// PerformedFakes counts fake requests actually sent to the DIMMs
	// (the naive alternative).
	PerformedFakes uint64
	// Refreshes counts refresh commands.
	Refreshes uint64
	// Cycles is the window length in DRAM cycles.
	Cycles uint64
	// FreqMHz is the DRAM command clock.
	FreqMHz float64
}

// Result is the energy breakdown in nanojoules.
type Result struct {
	RowNJ        float64
	BurstNJ      float64
	FakeNJ       float64
	RefreshNJ    float64
	BackgroundNJ float64
	TotalNJ      float64
}

// Estimate computes the energy of a window.
func Estimate(p Params, c Counts) (Result, error) {
	if c.FreqMHz <= 0 {
		return Result{}, fmt.Errorf("energy: frequency must be positive")
	}
	var r Result
	r.RowNJ = float64(c.Activates) * p.ActPrePJ / 1000
	r.BurstNJ = (float64(c.Reads)*p.ReadBurstPJ + float64(c.Writes)*p.WriteBurstPJ) / 1000
	// A performed fake pays a full activate + read burst; a suppressed
	// fake pays only command-bus activity (~5% of a burst).
	r.FakeNJ = float64(c.PerformedFakes)*(p.ActPrePJ+p.ReadBurstPJ)/1000 +
		float64(c.SuppressedFakes)*0.05*p.ReadBurstPJ/1000
	r.RefreshNJ = float64(c.Refreshes) * p.RefreshPJ / 1000
	seconds := float64(c.Cycles) / (c.FreqMHz * 1e6)
	r.BackgroundNJ = p.BackgroundMW * 1e-3 * seconds * 1e9
	r.TotalNJ = r.RowNJ + r.BurstNJ + r.FakeNJ + r.RefreshNJ + r.BackgroundNJ
	return r, nil
}

// FakeOverhead returns the fraction of total energy attributable to fake
// requests under the given counts.
func FakeOverhead(p Params, c Counts) (float64, error) {
	full, err := Estimate(p, c)
	if err != nil {
		return 0, err
	}
	if full.TotalNJ == 0 {
		return 0, nil
	}
	return full.FakeNJ / full.TotalNJ, nil
}

// SuppressionSaving compares performing versus suppressing the same number
// of fakes, returning the energy saved as a fraction of the performed-fake
// total.
func SuppressionSaving(p Params, c Counts) (float64, error) {
	performed := c
	performed.PerformedFakes += performed.SuppressedFakes
	performed.SuppressedFakes = 0
	suppressed := c
	suppressed.SuppressedFakes += suppressed.PerformedFakes
	suppressed.PerformedFakes = 0
	ep, err := Estimate(p, performed)
	if err != nil {
		return 0, err
	}
	es, err := Estimate(p, suppressed)
	if err != nil {
		return 0, err
	}
	if ep.TotalNJ == 0 {
		return 0, nil
	}
	return (ep.TotalNJ - es.TotalNJ) / ep.TotalNJ, nil
}
