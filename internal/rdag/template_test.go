package rdag

import (
	"testing"
	"testing/quick"

	"dagguise/internal/mem"
)

func TestTemplateValidate(t *testing.T) {
	bad := []Template{
		{Sequences: 0, Weight: 100, Banks: 8},
		{Sequences: 1, Weight: 100, Banks: 0},
		{Sequences: 1, Weight: 100, Banks: 8, WriteRatio: 1.5},
		{Sequences: 1, Weight: 100, Banks: 8, WriteRatio: -0.1},
	}
	for i, tpl := range bad {
		if err := tpl.Validate(); err == nil {
			t.Errorf("case %d: expected error for %v", i, tpl)
		}
	}
	good := Template{Sequences: 4, Weight: 300, Banks: 8, WriteRatio: 0.001}
	if err := good.Validate(); err != nil {
		t.Errorf("valid template rejected: %v", err)
	}
}

func TestTemplateFigure6aUnroll(t *testing.T) {
	// Figure 6(a): 4 parallel sequences, weight 100 DRAM cycles, each
	// alternating between two banks.
	tpl := Template{Sequences: 4, Weight: 100, Banks: 8}
	g, err := tpl.Unroll(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Vertices) != 16 {
		t.Fatalf("vertices = %d, want 16", len(g.Vertices))
	}
	if len(g.Edges) != 12 {
		t.Fatalf("edges = %d, want 12", len(g.Edges))
	}
	if len(g.Roots()) != 4 || len(g.Sinks()) != 4 {
		t.Fatalf("roots/sinks = %d/%d, want 4/4", len(g.Roots()), len(g.Sinks()))
	}
	// Sequence 0 alternates banks 0 and 4 (stride = sequence count).
	if g.Vertices[0].Bank != 0 || g.Vertices[1].Bank != 4 || g.Vertices[2].Bank != 0 {
		t.Fatalf("sequence 0 banks = %d,%d,%d; want 0,4,0",
			g.Vertices[0].Bank, g.Vertices[1].Bank, g.Vertices[2].Bank)
	}
	for _, e := range g.Edges {
		if e.Weight != 100 {
			t.Fatalf("edge weight %d, want uniform 100", e.Weight)
		}
	}
}

func TestTemplateWriteRatioDeterministic(t *testing.T) {
	tpl := Template{Sequences: 1, Weight: 10, Banks: 8, WriteRatio: 0.25}
	g, err := tpl.Unroll(8)
	if err != nil {
		t.Fatal(err)
	}
	writes := 0
	for _, v := range g.Vertices {
		if v.Kind == mem.Write {
			writes++
		}
	}
	if writes != 2 {
		t.Fatalf("writes = %d, want 2 of 8 at ratio 0.25", writes)
	}
	// Determinism: same template yields the same write placement.
	g2, _ := tpl.Unroll(8)
	for i := range g.Vertices {
		if g.Vertices[i].Kind != g2.Vertices[i].Kind {
			t.Fatal("write placement is not deterministic")
		}
	}
}

func TestTemplateUnrollRejectsBadLength(t *testing.T) {
	tpl := Template{Sequences: 1, Weight: 10, Banks: 8}
	if _, err := tpl.Unroll(0); err == nil {
		t.Fatal("expected error for zero unroll length")
	}
}

func TestTemplateDensityOrdering(t *testing.T) {
	lowBW := Template{Sequences: 1, Weight: 400, Banks: 8}
	highBW := Template{Sequences: 8, Weight: 50, Banks: 8}
	if lowBW.Density() >= highBW.Density() {
		t.Fatalf("density ordering wrong: %f >= %f", lowBW.Density(), highBW.Density())
	}
}

func TestBankAtWithinRange(t *testing.T) {
	f := func(seq uint8, banks uint8, step uint8) bool {
		b := int(banks%8) + 1
		tpl := Template{Sequences: int(seq%8) + 1, Weight: 10, Banks: b}
		for i := 0; i < tpl.Sequences; i++ {
			got := tpl.BankAt(i, int(step))
			if got < 0 || got >= b {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTemplateCoversAllBanks(t *testing.T) {
	// Every bank must be prescribed by some sequence, otherwise real
	// requests to uncovered banks would starve in the private queue.
	for _, seqs := range []int{1, 2, 4, 8} {
		tpl := Template{Sequences: seqs, Weight: 100, Banks: 8}
		covered := map[int]bool{}
		for s := 0; s < seqs; s++ {
			for j := 0; j < 8; j++ {
				covered[tpl.BankAt(s, j)] = true
			}
		}
		if len(covered) != 8 {
			t.Fatalf("%d sequences cover only %d of 8 banks", seqs, len(covered))
		}
	}
}

func TestDefaultSpaceCandidates(t *testing.T) {
	sp := DefaultSpace(8)
	cands := sp.Candidates()
	if len(cands) != 4*9*2 {
		t.Fatalf("candidates = %d, want 72 (4 sequences x 9 weights x 2 write ratios)", len(cands))
	}
	for _, c := range cands {
		if err := c.Validate(); err != nil {
			t.Fatalf("candidate %v invalid: %v", c, err)
		}
	}
}

func TestSpaceCandidatesEmptyRatios(t *testing.T) {
	sp := Space{Sequences: []int{1}, Weights: []uint64{10}, Banks: 4}
	cands := sp.Candidates()
	if len(cands) != 1 || cands[0].WriteRatio != 0 {
		t.Fatalf("expected single all-read candidate, got %v", cands)
	}
}

func TestUnrollAllVerticesReachableFromRoots(t *testing.T) {
	// Property: in any template unrolling, every vertex is reachable from
	// a root (the chains are connected).
	f := func(seqRaw, lenRaw uint8) bool {
		tpl := Template{Sequences: int(seqRaw%8) + 1, Weight: 10, Banks: 8}
		n := int(lenRaw%10) + 1
		g, err := tpl.Unroll(n)
		if err != nil {
			return false
		}
		reached := make([]bool, len(g.Vertices))
		var visit func(v VertexID)
		visit = func(v VertexID) {
			if reached[v] {
				return
			}
			reached[v] = true
			for _, e := range g.Successors(v) {
				visit(e.To)
			}
		}
		for _, r := range g.Roots() {
			visit(r)
		}
		for _, ok := range reached {
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
