package rdag

import (
	"encoding/json"
	"strings"
	"testing"
	"testing/quick"

	"dagguise/internal/mem"
)

// figure4Graph builds the example rDAG of Figure 4: v0->{v1,v2}, {v1,v2}->v3, v3->v4.
func figure4Graph(t *testing.T) *Graph {
	t.Helper()
	g := &Graph{}
	v0 := g.AddVertex(0, mem.Read)
	v1 := g.AddVertex(1, mem.Read)
	v2 := g.AddVertex(2, mem.Read)
	v3 := g.AddVertex(3, mem.Read)
	v4 := g.AddVertex(0, mem.Write)
	g.AddEdge(v0, v1, 10)
	g.AddEdge(v0, v2, 20)
	g.AddEdge(v1, v3, 30)
	g.AddEdge(v2, v3, 40)
	g.AddEdge(v3, v4, 50)
	if err := g.Validate(); err != nil {
		t.Fatalf("figure-4 graph invalid: %v", err)
	}
	return g
}

func TestValidateAcceptsFigure4(t *testing.T) {
	g := figure4Graph(t)
	if got := len(g.TopoOrder()); got != 5 {
		t.Fatalf("topo order has %d vertices, want 5", got)
	}
}

func TestValidateRejectsCycle(t *testing.T) {
	g := &Graph{}
	a := g.AddVertex(0, mem.Read)
	b := g.AddVertex(1, mem.Read)
	g.AddEdge(a, b, 1)
	g.AddEdge(b, a, 1)
	if err := g.Validate(); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("expected cycle error, got %v", err)
	}
}

func TestValidateRejectsSelfLoop(t *testing.T) {
	g := &Graph{}
	a := g.AddVertex(0, mem.Read)
	g.AddEdge(a, a, 1)
	if err := g.Validate(); err == nil || !strings.Contains(err.Error(), "self-loop") {
		t.Fatalf("expected self-loop error, got %v", err)
	}
}

func TestValidateRejectsDuplicateEdge(t *testing.T) {
	g := &Graph{}
	a := g.AddVertex(0, mem.Read)
	b := g.AddVertex(1, mem.Read)
	g.AddEdge(a, b, 1)
	g.AddEdge(a, b, 2)
	if err := g.Validate(); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("expected duplicate error, got %v", err)
	}
}

func TestValidateRejectsDanglingEdge(t *testing.T) {
	g := &Graph{}
	g.AddVertex(0, mem.Read)
	g.Edges = append(g.Edges, Edge{From: 0, To: 5, Weight: 1})
	if err := g.Validate(); err == nil {
		t.Fatal("expected missing-vertex error")
	}
}

func TestValidateRejectsBadVertex(t *testing.T) {
	g := &Graph{Vertices: []Vertex{{ID: 3, Bank: 0, Kind: mem.Read}}}
	if err := g.Validate(); err == nil {
		t.Fatal("expected dense-ID error")
	}
	g2 := &Graph{Vertices: []Vertex{{ID: 0, Bank: -1, Kind: mem.Read}}}
	if err := g2.Validate(); err == nil {
		t.Fatal("expected negative-bank error")
	}
	g3 := &Graph{Vertices: []Vertex{{ID: 0, Bank: 0, Kind: 9}}}
	if err := g3.Validate(); err == nil {
		t.Fatal("expected invalid-kind error")
	}
}

func TestRootsAndSinks(t *testing.T) {
	g := figure4Graph(t)
	roots := g.Roots()
	if len(roots) != 1 || roots[0] != 0 {
		t.Fatalf("roots = %v, want [0]", roots)
	}
	sinks := g.Sinks()
	if len(sinks) != 1 || sinks[0] != 4 {
		t.Fatalf("sinks = %v, want [4]", sinks)
	}
}

func TestTopoOrderRespectsEdges(t *testing.T) {
	g := figure4Graph(t)
	pos := make(map[VertexID]int)
	for i, v := range g.TopoOrder() {
		pos[v] = i
	}
	for _, e := range g.Edges {
		if pos[e.From] >= pos[e.To] {
			t.Fatalf("edge %d->%d violated by topo order", e.From, e.To)
		}
	}
}

func TestCriticalPathWeight(t *testing.T) {
	g := figure4Graph(t)
	// Longest path: 0 ->(20) 2 ->(40) 3 ->(50) 4 = 110.
	if got := g.CriticalPathWeight(); got != 110 {
		t.Fatalf("CriticalPathWeight = %d, want 110", got)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	g := figure4Graph(t)
	data, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	var back Graph
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Vertices) != len(g.Vertices) || len(back.Edges) != len(g.Edges) {
		t.Fatalf("round trip lost elements: %d/%d vertices, %d/%d edges",
			len(back.Vertices), len(g.Vertices), len(back.Edges), len(g.Edges))
	}
	for i := range g.Vertices {
		if back.Vertices[i] != g.Vertices[i] {
			t.Fatalf("vertex %d changed: %+v vs %+v", i, back.Vertices[i], g.Vertices[i])
		}
	}
}

func TestJSONUnmarshalRejectsInvalid(t *testing.T) {
	bad := `{"vertices":[{"id":0,"bank":0,"kind":0},{"id":1,"bank":0,"kind":0}],
	         "edges":[{"from":0,"to":1,"weight":1},{"from":1,"to":0,"weight":1}]}`
	var g Graph
	if err := json.Unmarshal([]byte(bad), &g); err == nil {
		t.Fatal("expected cycle rejection on unmarshal")
	}
}

func TestDOTOutput(t *testing.T) {
	g := figure4Graph(t)
	dot := g.DOT("fig4")
	for _, want := range []string{"digraph fig4", "v0 -> v1", "v3 -> v4", "doublecircle"} {
		if !strings.Contains(dot, want) {
			t.Fatalf("DOT output missing %q:\n%s", want, dot)
		}
	}
}

func TestTopoOrderPropertyRandomDAGs(t *testing.T) {
	// Property: any graph whose edges all point from lower to higher IDs
	// validates, and its topological order respects every edge.
	f := func(n uint8, picks []uint16) bool {
		size := int(n%20) + 2
		g := &Graph{}
		for i := 0; i < size; i++ {
			g.AddVertex(i%4, mem.Read)
		}
		seen := map[[2]VertexID]bool{}
		for _, p := range picks {
			from := int(p) % size
			to := int(p>>4) % size
			if from >= to {
				continue
			}
			key := [2]VertexID{VertexID(from), VertexID(to)}
			if seen[key] {
				continue
			}
			seen[key] = true
			g.AddEdge(VertexID(from), VertexID(to), uint64(p%100))
		}
		if err := g.Validate(); err != nil {
			return false
		}
		pos := make(map[VertexID]int)
		for i, v := range g.TopoOrder() {
			pos[v] = i
		}
		for _, e := range g.Edges {
			if pos[e.From] >= pos[e.To] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
