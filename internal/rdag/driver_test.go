package rdag

import (
	"testing"

	"dagguise/internal/mem"
)

func TestPatternDriverChainTiming(t *testing.T) {
	// One sequence, weight 150 (the Figure 5 defense rDAG): requests must
	// be spaced exactly 150 cycles after the previous completion.
	d := MustPatternDriver(Template{Sequences: 1, Weight: 150, Banks: 8})

	slots := d.Poll(0)
	if len(slots) != 1 {
		t.Fatalf("expected one slot at cycle 0, got %d", len(slots))
	}
	if d.Outstanding() != 1 {
		t.Fatalf("outstanding = %d, want 1", d.Outstanding())
	}
	// Nothing more until the response comes back.
	if got := d.Poll(1000); len(got) != 0 {
		t.Fatalf("driver emitted %d slots while waiting", len(got))
	}
	// Response at cycle 100: next request due at 250.
	d.Complete(slots[0].Token, 100)
	if got := d.Poll(249); len(got) != 0 {
		t.Fatal("slot emitted before its 150-cycle dependency elapsed")
	}
	got := d.Poll(250)
	if len(got) != 1 {
		t.Fatalf("expected slot at cycle 250, got %d", len(got))
	}
}

func TestPatternDriverBankAlternation(t *testing.T) {
	d := MustPatternDriver(Template{Sequences: 1, Weight: 0, Banks: 8})
	var banks []int
	now := uint64(0)
	for i := 0; i < 6; i++ {
		slots := d.Poll(now)
		if len(slots) != 1 {
			t.Fatalf("step %d: %d slots", i, len(slots))
		}
		banks = append(banks, slots[0].Bank)
		now += 10
		d.Complete(slots[0].Token, now)
	}
	// A single sequence cycles through every bank in turn.
	want := []int{0, 1, 2, 3, 4, 5}
	for i := range want {
		if banks[i] != want[i] {
			t.Fatalf("bank sequence %v, want %v", banks, want)
		}
	}
}

func TestPatternDriverParallelSequences(t *testing.T) {
	d := MustPatternDriver(Template{Sequences: 4, Weight: 100, Banks: 8})
	slots := d.Poll(0)
	if len(slots) != 4 {
		t.Fatalf("expected 4 parallel slots, got %d", len(slots))
	}
	banks := map[int]bool{}
	for _, s := range slots {
		banks[s.Bank] = true
	}
	if len(banks) != 4 {
		t.Fatalf("parallel slots share banks: %v", slots)
	}
	// Completing one sequence only re-arms that sequence.
	d.Complete(slots[0].Token, 50)
	next := d.Poll(150)
	if len(next) != 1 || next[0].Token != slots[0].Token {
		t.Fatalf("expected only sequence %d to re-arm, got %v", slots[0].Token, next)
	}
}

func TestPatternDriverWriteRatio(t *testing.T) {
	d := MustPatternDriver(Template{Sequences: 1, Weight: 0, Banks: 8, WriteRatio: 0.5})
	var kinds []mem.Kind
	now := uint64(0)
	for i := 0; i < 6; i++ {
		s := d.Poll(now)[0]
		kinds = append(kinds, s.Kind)
		now += 10
		d.Complete(s.Token, now)
	}
	writes := 0
	for _, k := range kinds {
		if k == mem.Write {
			writes++
		}
	}
	if writes != 3 {
		t.Fatalf("writes = %d of 6 at ratio 0.5, kinds=%v", writes, kinds)
	}
}

func TestPatternDriverCompletePanicsWhenIdle(t *testing.T) {
	d := MustPatternDriver(Template{Sequences: 1, Weight: 10, Banks: 8})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on spurious completion")
		}
	}()
	d.Complete(0, 5)
}

func TestPatternDriverReset(t *testing.T) {
	d := MustPatternDriver(Template{Sequences: 2, Weight: 50, Banks: 8})
	first := d.Poll(0)
	d.Complete(first[0].Token, 10)
	d.Reset()
	if d.Outstanding() != 0 {
		t.Fatalf("outstanding after reset = %d", d.Outstanding())
	}
	again := d.Poll(0)
	if len(again) != 2 {
		t.Fatalf("expected full re-emission after reset, got %d", len(again))
	}
	if d.Emitted() != 2 {
		t.Fatalf("emitted counter = %d, want 2", d.Emitted())
	}
}

func TestGraphDriverDiamondDependency(t *testing.T) {
	// Diamond: r -> a, r -> b, {a,b} -> s. s must wait for both.
	g := &Graph{}
	r := g.AddVertex(0, mem.Read)
	a := g.AddVertex(1, mem.Read)
	b := g.AddVertex(2, mem.Read)
	s := g.AddVertex(3, mem.Read)
	g.AddEdge(r, a, 10)
	g.AddEdge(r, b, 20)
	g.AddEdge(a, s, 30)
	g.AddEdge(b, s, 5)
	d, err := NewGraphDriver(g, 100)
	if err != nil {
		t.Fatal(err)
	}

	slots := d.Poll(0)
	if len(slots) != 1 || slots[0].Token != int(r) {
		t.Fatalf("expected root first, got %v", slots)
	}
	d.Complete(int(r), 50) // a ready at 60, b at 70
	if got := d.Poll(59); len(got) != 0 {
		t.Fatalf("premature emission: %v", got)
	}
	got := d.Poll(60)
	if len(got) != 1 || got[0].Token != int(a) {
		t.Fatalf("expected a at 60, got %v", got)
	}
	got = d.Poll(70)
	if len(got) != 1 || got[0].Token != int(b) {
		t.Fatalf("expected b at 70, got %v", got)
	}
	// s waits for max(a completion + 30, b completion + 5).
	d.Complete(int(a), 100) // s ready at 130 via a
	d.Complete(int(b), 140) // s ready at 145 via b
	if got := d.Poll(144); len(got) != 0 {
		t.Fatal("sink emitted before all dependencies")
	}
	got = d.Poll(145)
	if len(got) != 1 || got[0].Token != int(s) {
		t.Fatalf("expected sink at 145, got %v", got)
	}
}

func TestGraphDriverRestarts(t *testing.T) {
	g := &Graph{}
	v := g.AddVertex(0, mem.Read)
	d, err := NewGraphDriver(g, 25)
	if err != nil {
		t.Fatal(err)
	}
	s := d.Poll(0)
	if len(s) != 1 {
		t.Fatal("no initial emission")
	}
	d.Complete(int(v), 10)
	// Restart: root ready at 10+25 = 35.
	if got := d.Poll(34); len(got) != 0 {
		t.Fatal("restarted too early")
	}
	if got := d.Poll(35); len(got) != 1 {
		t.Fatal("restart missed")
	}
}

func TestGraphDriverRejectsEmptyGraph(t *testing.T) {
	if _, err := NewGraphDriver(&Graph{}, 10); err == nil {
		t.Fatal("expected error for empty graph")
	}
}

func TestDriversAreDeterministic(t *testing.T) {
	// Two identical drivers fed identical completion times emit identical
	// slot schedules — the heart of the security argument.
	run := func() []Slot {
		d := MustPatternDriver(Template{Sequences: 2, Weight: 75, Banks: 8, WriteRatio: 0.25})
		var log []Slot
		now := uint64(0)
		for step := 0; step < 50; step++ {
			slots := d.Poll(now)
			log = append(log, slots...)
			for _, s := range slots {
				d.Complete(s.Token, now+uint64(20+s.Bank))
			}
			now += 30
		}
		return log
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("schedule lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("slot %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}
