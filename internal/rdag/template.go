package rdag

import (
	"fmt"

	"dagguise/internal/mem"
)

// Template is the configurable rDAG template of §4.3: a number of parallel
// sequences, each an infinite chain of requests with a uniform edge weight,
// alternating between two banks, with a deterministic fraction of vertices
// tagged as writes. The profiling stage sweeps these parameters to pick a
// defense rDAG whose density matches the victim's bandwidth needs.
type Template struct {
	// Sequences is the number of parallel chains (1, 2, 4 or 8 in the
	// paper's search space).
	Sequences int
	// Weight is the uniform edge weight in CPU cycles: the gap between a
	// request's completion and its dependent's arrival.
	Weight uint64
	// WriteRatio is the fraction of vertices tagged as writes; it is
	// realised deterministically (every round(1/ratio)-th vertex of each
	// sequence is a write). Zero means all reads.
	WriteRatio float64
	// Banks is the number of banks in the machine. The banks are
	// partitioned among the sequences: sequence i cycles through banks
	// i, i+S, i+2S, ... (mod Banks) where S is the sequence count. With
	// 4 sequences over 8 banks each sequence alternates between two
	// banks (Figure 6a); with 2 sequences each cycles through four
	// (Figure 6b). Every bank is prescribed by some sequence, so no real
	// request can starve in the shaper's private queue.
	Banks int
	// RowHitRatio is the fraction of vertices tagged as row-buffer hits,
	// realised deterministically. This implements the row-buffer-aware
	// extension the paper sketches in §4.4: instead of forcing a
	// closed-row policy, the defense rDAG prescribes the row-hit/miss
	// pattern itself, and the shaper enforces it (forwarding a real
	// request only when its row relation matches, faking otherwise).
	// Zero keeps the base scheme (closed-row policy required).
	RowHitRatio float64
}

// Validate checks the template parameters.
func (t Template) Validate() error {
	if t.Sequences <= 0 {
		return fmt.Errorf("rdag: template needs at least one sequence, got %d", t.Sequences)
	}
	if t.Banks <= 0 {
		return fmt.Errorf("rdag: template needs at least one bank, got %d", t.Banks)
	}
	if t.WriteRatio < 0 || t.WriteRatio > 1 {
		return fmt.Errorf("rdag: write ratio %f outside [0,1]", t.WriteRatio)
	}
	if t.RowHitRatio < 0 || t.RowHitRatio > 1 {
		return fmt.Errorf("rdag: row-hit ratio %f outside [0,1]", t.RowHitRatio)
	}
	return nil
}

// rowHitPeriod converts the row-hit ratio into "every request except each
// Nth is a hit"; 0 disables row-hit encoding entirely.
func (t Template) rowHitPeriod() int {
	if t.RowHitRatio <= 0 {
		return 0
	}
	miss := 1 - t.RowHitRatio
	if miss <= 0 {
		return 1 << 30 // effectively all hits
	}
	p := int(1.0/miss + 0.5)
	if p < 1 {
		p = 1
	}
	return p
}

// RowHitAt reports whether the j-th request of a sequence is tagged as a
// row hit. The miss phase is anchored at j=0 (a sequence's first request
// can never hit a row it has not opened), which also keeps miss slots off
// the write slots' phase — otherwise every miss slot would be a write and
// reads could never be forwarded.
func (t Template) RowHitAt(j int) bool {
	p := t.rowHitPeriod()
	if p == 0 {
		return false
	}
	return j%p != 0
}

// writePeriod converts the ratio into "every Nth vertex is a write";
// 0 disables writes.
func (t Template) writePeriod() int {
	if t.WriteRatio <= 0 {
		return 0
	}
	p := int(1.0/t.WriteRatio + 0.5)
	if p < 1 {
		p = 1
	}
	return p
}

// BankAt returns the bank of the j-th request of sequence i.
func (t Template) BankAt(i, j int) int {
	return (i%t.Banks + j*t.Sequences) % t.Banks
}

// BanksPerSequence returns how many distinct banks each sequence visits.
func (t Template) BanksPerSequence() int {
	per := t.Banks / t.Sequences
	if per < 1 {
		per = 1
	}
	return per
}

// Unroll materialises n vertices per sequence as a finite Graph, for
// serialisation, visualisation and analysis (Figure 6 shows two such
// unrollings).
func (t Template) Unroll(n int) (*Graph, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if n <= 0 {
		return nil, fmt.Errorf("rdag: unroll length must be positive, got %d", n)
	}
	g := &Graph{}
	wp := t.writePeriod()
	for s := 0; s < t.Sequences; s++ {
		var prev VertexID
		for j := 0; j < n; j++ {
			bank := t.BankAt(s, j)
			kind := mem.Read
			if wp > 0 && (j+1)%wp == 0 {
				kind = mem.Write
			}
			var id VertexID
			if t.RowHitRatio > 0 && t.RowHitAt(j) {
				id = g.AddRowHitVertex(bank, kind)
			} else {
				id = g.AddVertex(bank, kind)
			}
			if j > 0 {
				g.AddEdge(prev, id, t.Weight)
			}
			prev = id
		}
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// Density returns a dimensionless request-density score used to order
// candidate rDAGs: sequences per unit weight. Higher density demands more
// bandwidth from the controller.
func (t Template) Density() float64 {
	w := float64(t.Weight)
	if w <= 0 {
		w = 1
	}
	return float64(t.Sequences) / w
}

// String summarises the template.
func (t Template) String() string {
	return fmt.Sprintf("template{seq=%d w=%d wr=%.4f banks=%d}", t.Sequences, t.Weight, t.WriteRatio, t.Banks)
}

// Space is the profiling search space of §4.3: the cross product of
// sequence counts, edge weights and write ratios.
type Space struct {
	Sequences   []int
	Weights     []uint64
	WriteRatios []float64
	Banks       int
}

// DefaultSpace mirrors the paper's Figure 7 sweep: 1/2/4/8 sequences and
// uniform weights 0..400 DRAM cycles (here in CPU cycles at ratio 3), with
// the streaming write ratio 1/1000.
func DefaultSpace(banks int) Space {
	weights := make([]uint64, 0, 9)
	for w := 0; w <= 400; w += 50 {
		weights = append(weights, uint64(w*3))
	}
	return Space{
		Sequences:   []int{1, 2, 4, 8},
		Weights:     weights,
		WriteRatios: []float64{0.001, 0.25},
		Banks:       banks,
	}
}

// Candidates enumerates every template in the space.
func (s Space) Candidates() []Template {
	var out []Template
	ratios := s.WriteRatios
	if len(ratios) == 0 {
		ratios = []float64{0}
	}
	for _, seq := range s.Sequences {
		for _, w := range s.Weights {
			for _, r := range ratios {
				out = append(out, Template{Sequences: seq, Weight: w, WriteRatio: r, Banks: s.Banks})
			}
		}
	}
	return out
}
