// Package rdag implements the Directed Acyclic Request Graph (rDAG)
// representation introduced by the paper (§4.1), together with the template
// generator used for offline profiling (§4.3) and the runtime drivers that
// the DAGguise shaper executes (§4.4).
//
// An rDAG vertex is a memory request (bank ID + read/write tag); an edge
// with weight w says the destination request arrives at the memory
// controller w cycles after the source request completes. Vertices with no
// connecting path may be in flight in parallel. Because arrival times are
// defined relative to completion times — which include unknown contention
// delays — an rDAG automatically stretches under memory pressure: this is
// the "versatility" property that lets DAGguise yield bandwidth dynamically.
package rdag

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"dagguise/internal/mem"
)

// VertexID indexes a vertex within a Graph.
type VertexID int

// Vertex is one memory request in an rDAG.
type Vertex struct {
	ID   VertexID `json:"id"`
	Bank int      `json:"bank"`
	Kind mem.Kind `json:"kind"` // 0 = read, 1 = write
	// RowHit marks the request as a row-buffer hit in row-buffer-aware
	// defense rDAGs (§4.4 extension); omitted for base-scheme rDAGs.
	RowHit bool `json:"rowhit,omitempty"`
}

// Edge is a timing dependency: the request at To arrives Weight cycles
// after the request at From completes.
type Edge struct {
	From   VertexID `json:"from"`
	To     VertexID `json:"to"`
	Weight uint64   `json:"weight"`
}

// Graph is a finite rDAG. The zero value is an empty graph; add vertices
// and edges then call Validate (or use a constructor that does).
type Graph struct {
	Vertices []Vertex `json:"vertices"`
	Edges    []Edge   `json:"edges"`

	succ [][]int // edge indices by source, built by Validate
	pred [][]int // edge indices by destination
}

// AddVertex appends a vertex and returns its ID.
func (g *Graph) AddVertex(bank int, kind mem.Kind) VertexID {
	id := VertexID(len(g.Vertices))
	g.Vertices = append(g.Vertices, Vertex{ID: id, Bank: bank, Kind: kind})
	g.succ = nil
	g.pred = nil
	return id
}

// AddRowHitVertex appends a vertex tagged as a row-buffer hit.
func (g *Graph) AddRowHitVertex(bank int, kind mem.Kind) VertexID {
	id := g.AddVertex(bank, kind)
	g.Vertices[id].RowHit = true
	return id
}

// AddEdge appends a timing dependency.
func (g *Graph) AddEdge(from, to VertexID, weight uint64) {
	g.Edges = append(g.Edges, Edge{From: from, To: to, Weight: weight})
	g.succ = nil
	g.pred = nil
}

// Validate checks structural invariants: vertex IDs are dense and match
// their index, edges reference existing vertices, there are no self-loops
// or duplicate edges, and the graph is acyclic. It also builds the
// adjacency indices used by the traversal helpers.
func (g *Graph) Validate() error {
	for i, v := range g.Vertices {
		if int(v.ID) != i {
			return fmt.Errorf("rdag: vertex %d has ID %d; IDs must equal their index", i, v.ID)
		}
		if v.Bank < 0 {
			return fmt.Errorf("rdag: vertex %d has negative bank %d", i, v.Bank)
		}
		if v.Kind != mem.Read && v.Kind != mem.Write {
			return fmt.Errorf("rdag: vertex %d has invalid kind %d", i, v.Kind)
		}
	}
	n := len(g.Vertices)
	seen := make(map[[2]VertexID]bool, len(g.Edges))
	g.succ = make([][]int, n)
	g.pred = make([][]int, n)
	for i, e := range g.Edges {
		if int(e.From) < 0 || int(e.From) >= n || int(e.To) < 0 || int(e.To) >= n {
			return fmt.Errorf("rdag: edge %d (%d->%d) references missing vertex", i, e.From, e.To)
		}
		if e.From == e.To {
			return fmt.Errorf("rdag: edge %d is a self-loop on vertex %d", i, e.From)
		}
		key := [2]VertexID{e.From, e.To}
		if seen[key] {
			return fmt.Errorf("rdag: duplicate edge %d->%d", e.From, e.To)
		}
		seen[key] = true
		g.succ[e.From] = append(g.succ[e.From], i)
		g.pred[e.To] = append(g.pred[e.To], i)
	}
	if _, err := g.topoOrder(); err != nil {
		return err
	}
	return nil
}

// topoOrder returns a topological ordering, or an error naming a vertex on
// a cycle.
func (g *Graph) topoOrder() ([]VertexID, error) {
	n := len(g.Vertices)
	indeg := make([]int, n)
	for _, e := range g.Edges {
		indeg[e.To]++
	}
	queue := make([]VertexID, 0, n)
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			queue = append(queue, VertexID(i))
		}
	}
	order := make([]VertexID, 0, n)
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		for _, ei := range g.succ[v] {
			to := g.Edges[ei].To
			indeg[to]--
			if indeg[to] == 0 {
				queue = append(queue, to)
			}
		}
	}
	if len(order) != n {
		for i := 0; i < n; i++ {
			if indeg[i] > 0 {
				return nil, fmt.Errorf("rdag: cycle detected involving vertex %d", i)
			}
		}
	}
	return order, nil
}

// TopoOrder returns a topological ordering of the vertices. Validate must
// have succeeded.
func (g *Graph) TopoOrder() []VertexID {
	order, err := g.topoOrder()
	if err != nil {
		panic(err)
	}
	return order
}

// Roots returns the vertices with no predecessors.
func (g *Graph) Roots() []VertexID {
	g.ensureAdj()
	var roots []VertexID
	for i := range g.Vertices {
		if len(g.pred[i]) == 0 {
			roots = append(roots, VertexID(i))
		}
	}
	return roots
}

// Sinks returns the vertices with no successors.
func (g *Graph) Sinks() []VertexID {
	g.ensureAdj()
	var sinks []VertexID
	for i := range g.Vertices {
		if len(g.succ[i]) == 0 {
			sinks = append(sinks, VertexID(i))
		}
	}
	return sinks
}

func (g *Graph) ensureAdj() {
	if g.succ != nil && len(g.succ) == len(g.Vertices) {
		return
	}
	if err := g.Validate(); err != nil {
		panic(err)
	}
}

// Successors returns the out-edges of v.
func (g *Graph) Successors(v VertexID) []Edge {
	g.ensureAdj()
	out := make([]Edge, len(g.succ[v]))
	for i, ei := range g.succ[v] {
		out[i] = g.Edges[ei]
	}
	return out
}

// Predecessors returns the in-edges of v.
func (g *Graph) Predecessors(v VertexID) []Edge {
	g.ensureAdj()
	out := make([]Edge, len(g.pred[v]))
	for i, ei := range g.pred[v] {
		out[i] = g.Edges[ei]
	}
	return out
}

// InDegree returns the number of in-edges of v.
func (g *Graph) InDegree(v VertexID) int {
	g.ensureAdj()
	return len(g.pred[v])
}

// CriticalPathWeight returns the largest sum of edge weights along any
// path, a lower bound on one traversal of the rDAG with zero memory
// latency. Useful when reasoning about the density of a defense rDAG.
func (g *Graph) CriticalPathWeight() uint64 {
	g.ensureAdj()
	order := g.TopoOrder()
	dist := make([]uint64, len(g.Vertices))
	var best uint64
	for _, v := range order {
		for _, ei := range g.succ[v] {
			e := g.Edges[ei]
			if d := dist[v] + e.Weight; d > dist[e.To] {
				dist[e.To] = d
			}
		}
		if dist[v] > best {
			best = dist[v]
		}
	}
	return best
}

// MarshalJSON implements json.Marshaler using the exported fields only.
func (g *Graph) MarshalJSON() ([]byte, error) {
	type wire struct {
		Vertices []Vertex `json:"vertices"`
		Edges    []Edge   `json:"edges"`
	}
	return json.Marshal(wire{Vertices: g.Vertices, Edges: g.Edges})
}

// UnmarshalJSON implements json.Unmarshaler and validates the result.
func (g *Graph) UnmarshalJSON(data []byte) error {
	type wire struct {
		Vertices []Vertex `json:"vertices"`
		Edges    []Edge   `json:"edges"`
	}
	var w wire
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	g.Vertices = w.Vertices
	g.Edges = w.Edges
	g.succ, g.pred = nil, nil
	return g.Validate()
}

// DOT renders the graph in Graphviz dot format, with banks as vertex
// labels and weights as edge labels (Figure 4 style).
func (g *Graph) DOT(name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %s {\n  rankdir=LR;\n  node [shape=circle];\n", name)
	for _, v := range g.Vertices {
		shape := "circle"
		if v.Kind == mem.Write {
			shape = "doublecircle"
		}
		fmt.Fprintf(&b, "  v%d [label=\"b%d\" shape=%s];\n", v.ID, v.Bank, shape)
	}
	edges := make([]Edge, len(g.Edges))
	copy(edges, g.Edges)
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].From != edges[j].From {
			return edges[i].From < edges[j].From
		}
		return edges[i].To < edges[j].To
	})
	for _, e := range edges {
		fmt.Fprintf(&b, "  v%d -> v%d [label=\"%d\"];\n", e.From, e.To, e.Weight)
	}
	b.WriteString("}\n")
	return b.String()
}
