package rdag

import (
	"encoding/json"
	"testing"
)

// FuzzGraphJSON checks the graph deserialiser never panics and that every
// accepted graph satisfies the structural invariants (Validate ran inside
// UnmarshalJSON) and re-serialises cleanly.
func FuzzGraphJSON(f *testing.F) {
	tpl := Template{Sequences: 2, Weight: 100, Banks: 4}
	g, _ := tpl.Unroll(3)
	seed, _ := json.Marshal(g)
	f.Add(seed)
	f.Add([]byte(`{"vertices":[],"edges":[]}`))
	f.Add([]byte(`{"vertices":[{"id":0,"bank":0,"kind":0}],"edges":[{"from":0,"to":0,"weight":1}]}`))
	f.Add([]byte(`not json`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var g Graph
		if err := json.Unmarshal(data, &g); err != nil {
			return
		}
		// Accepted graphs are valid by construction; exercise traversals.
		order := g.TopoOrder()
		if len(order) != len(g.Vertices) {
			t.Fatalf("topo order covers %d of %d vertices", len(order), len(g.Vertices))
		}
		if _, err := json.Marshal(&g); err != nil {
			t.Fatalf("accepted graph failed to marshal: %v", err)
		}
	})
}
