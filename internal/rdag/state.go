package rdag

import "fmt"

// SeqSave is the serializable state of one PatternDriver sequence machine.
type SeqSave struct {
	Waiting bool   `json:"waiting"`
	NextAt  uint64 `json:"next_at"`
	Step    int    `json:"step"`
	Count   int    `json:"count"`
}

// DriverState is the serializable runtime position of a defense-rDAG
// driver — a tagged union over the two driver kinds. The template/graph
// itself is configuration, rebuilt by the constructor.
type DriverState struct {
	Kind        string `json:"kind"`
	Outstanding int    `json:"outstanding"`

	// PatternDriver fields.
	Seqs    []SeqSave `json:"seqs,omitempty"`
	Emitted uint64    `json:"emitted,omitempty"`

	// GraphDriver fields.
	Indeg     []int    `json:"indeg,omitempty"`
	ReadyAt   []uint64 `json:"ready_at,omitempty"`
	Issued    []bool   `json:"issued,omitempty"`
	Done      []bool   `json:"done,omitempty"`
	Remaining int      `json:"remaining,omitempty"`
}

// StatefulDriver is a Driver whose rDAG position can be checkpointed.
type StatefulDriver interface {
	Driver
	SaveState() DriverState
	RestoreState(DriverState) error
}

// SaveState implements StatefulDriver.
func (d *PatternDriver) SaveState() DriverState {
	st := DriverState{Kind: "pattern", Outstanding: d.outstanding, Emitted: d.emitted}
	st.Seqs = make([]SeqSave, len(d.seqs))
	for i, s := range d.seqs {
		st.Seqs[i] = SeqSave{Waiting: s.waiting, NextAt: s.nextAt, Step: s.step, Count: s.count}
	}
	return st
}

// RestoreState implements StatefulDriver.
func (d *PatternDriver) RestoreState(st DriverState) error {
	if st.Kind != "pattern" {
		return fmt.Errorf("rdag: restoring %q state into a pattern driver", st.Kind)
	}
	if len(st.Seqs) != len(d.seqs) {
		return fmt.Errorf("rdag: state holds %d sequences, driver has %d", len(st.Seqs), len(d.seqs))
	}
	for i, s := range st.Seqs {
		d.seqs[i] = seqState{waiting: s.Waiting, nextAt: s.NextAt, step: s.Step, count: s.Count}
	}
	d.outstanding = st.Outstanding
	d.emitted = st.Emitted
	return nil
}

// SaveState implements StatefulDriver.
func (d *GraphDriver) SaveState() DriverState {
	st := DriverState{
		Kind:        "graph",
		Outstanding: d.outstanding,
		Remaining:   d.remaining,
		Indeg:       append([]int(nil), d.indeg...),
		ReadyAt:     append([]uint64(nil), d.readyAt...),
		Issued:      append([]bool(nil), d.emitted...),
		Done:        append([]bool(nil), d.done...),
	}
	return st
}

// RestoreState implements StatefulDriver.
func (d *GraphDriver) RestoreState(st DriverState) error {
	if st.Kind != "graph" {
		return fmt.Errorf("rdag: restoring %q state into a graph driver", st.Kind)
	}
	n := len(d.g.Vertices)
	if len(st.Indeg) != n || len(st.ReadyAt) != n || len(st.Issued) != n || len(st.Done) != n {
		return fmt.Errorf("rdag: state shape does not match %d-vertex graph", n)
	}
	copy(d.indeg, st.Indeg)
	copy(d.readyAt, st.ReadyAt)
	copy(d.emitted, st.Issued)
	copy(d.done, st.Done)
	d.remaining = st.Remaining
	d.outstanding = st.Outstanding
	return nil
}
