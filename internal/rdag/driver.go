package rdag

import (
	"fmt"

	"dagguise/internal/mem"
)

// RowRelation prescribes a slot's row-buffer behaviour (the §4.4
// row-buffer-aware extension).
type RowRelation uint8

const (
	// RowAny leaves the row unconstrained; the system must run a
	// closed-row policy to hide row state (the paper's base scheme).
	RowAny RowRelation = iota
	// RowHitSlot requires the request to hit the bank's open row.
	RowHitSlot
	// RowMissSlot requires the request to open a different row.
	RowMissSlot
)

// Slot is a request the defense rDAG prescribes the shaper to emit: a bank,
// a read/write tag, an optional row relation, and a token the shaper echoes
// back via Complete when the memory controller finishes serving the
// request.
type Slot struct {
	Token int
	Bank  int
	Kind  mem.Kind
	Row   RowRelation
}

// Driver is the runtime form of a defense rDAG executed by the shaper
// (§4.4's "rDAG computation logic"). Poll returns the slots whose timing
// dependencies are satisfied at cycle now; the shaper emits one request per
// slot (real if a matching one is queued, fake otherwise) and must call
// Complete with the slot's token when the request's response returns.
type Driver interface {
	Poll(now uint64) []Slot
	Complete(token int, now uint64)
	// Outstanding reports how many emitted slots have not completed.
	Outstanding() int
	Reset()
}

type seqState struct {
	waiting bool
	nextAt  uint64
	step    int
	count   int
}

// PatternDriver executes a Template as an infinite schedule: one state
// machine per parallel sequence, exactly matching the paper's hardware
// cost model (per sequence: a wait bit, a read/write bit, and a countdown
// to the next request).
type PatternDriver struct {
	tpl         Template
	writePeriod int
	seqs        []seqState
	outstanding int
	emitted     uint64
}

// NewPatternDriver builds a driver for the template.
func NewPatternDriver(tpl Template) (*PatternDriver, error) {
	if err := tpl.Validate(); err != nil {
		return nil, err
	}
	d := &PatternDriver{tpl: tpl, writePeriod: tpl.writePeriod()}
	d.seqs = make([]seqState, tpl.Sequences)
	return d, nil
}

// MustPatternDriver panics on template error.
func MustPatternDriver(tpl Template) *PatternDriver {
	d, err := NewPatternDriver(tpl)
	if err != nil {
		panic(err)
	}
	return d
}

// Template returns the template the driver executes.
func (d *PatternDriver) Template() Template { return d.tpl }

// Poll implements Driver. The token is the sequence index.
func (d *PatternDriver) Poll(now uint64) []Slot {
	var out []Slot
	for i := range d.seqs {
		s := &d.seqs[i]
		if s.waiting || now < s.nextAt {
			continue
		}
		bank := d.tpl.BankAt(i, s.step)
		kind := mem.Read
		if d.writePeriod > 0 && (s.count+1)%d.writePeriod == 0 {
			kind = mem.Write
		}
		row := RowAny
		if d.tpl.RowHitRatio > 0 {
			if d.tpl.RowHitAt(s.count) {
				row = RowHitSlot
			} else {
				row = RowMissSlot
			}
		}
		s.waiting = true
		d.outstanding++
		d.emitted++
		out = append(out, Slot{Token: i, Bank: bank, Kind: kind, Row: row})
	}
	return out
}

// Complete implements Driver: the response for sequence token returned at
// cycle now, so its dependent request arrives Weight cycles later.
func (d *PatternDriver) Complete(token int, now uint64) {
	if token < 0 || token >= len(d.seqs) {
		panic(fmt.Sprintf("rdag: pattern driver has no sequence %d", token))
	}
	s := &d.seqs[token]
	if !s.waiting {
		panic(fmt.Sprintf("rdag: sequence %d completed while not waiting", token))
	}
	s.waiting = false
	s.step++
	s.count++
	s.nextAt = now + d.tpl.Weight
	d.outstanding--
}

// Outstanding implements Driver.
func (d *PatternDriver) Outstanding() int { return d.outstanding }

// Emitted returns the cumulative number of slots emitted.
func (d *PatternDriver) Emitted() uint64 { return d.emitted }

// Reset implements Driver.
func (d *PatternDriver) Reset() {
	for i := range d.seqs {
		d.seqs[i] = seqState{}
	}
	d.outstanding = 0
	d.emitted = 0
}

// GraphDriver executes an arbitrary finite rDAG cyclically: when every
// vertex of an iteration has completed, the graph restarts with its roots
// arriving RestartWeight cycles after the last completion. This supports
// complex, irregular defense rDAGs beyond the template space ("expanding
// the rDAG search space", §6.2).
type GraphDriver struct {
	g             *Graph
	restartWeight uint64

	indeg       []int
	readyAt     []uint64
	emitted     []bool
	done        []bool
	remaining   int
	outstanding int
}

// NewGraphDriver validates g and builds a cyclic driver over it.
func NewGraphDriver(g *Graph, restartWeight uint64) (*GraphDriver, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if len(g.Vertices) == 0 {
		return nil, fmt.Errorf("rdag: graph driver needs a non-empty graph")
	}
	d := &GraphDriver{g: g, restartWeight: restartWeight}
	d.indeg = make([]int, len(g.Vertices))
	d.readyAt = make([]uint64, len(g.Vertices))
	d.emitted = make([]bool, len(g.Vertices))
	d.done = make([]bool, len(g.Vertices))
	d.Reset()
	return d, nil
}

// Graph returns the underlying rDAG.
func (d *GraphDriver) Graph() *Graph { return d.g }

func (d *GraphDriver) restart(at uint64) {
	for i := range d.g.Vertices {
		d.indeg[i] = d.g.InDegree(VertexID(i))
		d.readyAt[i] = at
		d.emitted[i] = false
		d.done[i] = false
	}
	d.remaining = len(d.g.Vertices)
}

// Poll implements Driver. The token is the vertex ID.
func (d *GraphDriver) Poll(now uint64) []Slot {
	var out []Slot
	for i, v := range d.g.Vertices {
		if d.emitted[i] || d.indeg[i] > 0 || now < d.readyAt[i] {
			continue
		}
		d.emitted[i] = true
		d.outstanding++
		out = append(out, Slot{Token: i, Bank: v.Bank, Kind: v.Kind})
	}
	return out
}

// Complete implements Driver.
func (d *GraphDriver) Complete(token int, now uint64) {
	if token < 0 || token >= len(d.g.Vertices) {
		panic(fmt.Sprintf("rdag: graph driver has no vertex %d", token))
	}
	if !d.emitted[token] || d.done[token] {
		panic(fmt.Sprintf("rdag: vertex %d completed in invalid state", token))
	}
	d.done[token] = true
	d.outstanding--
	d.remaining--
	for _, e := range d.g.Successors(VertexID(token)) {
		d.indeg[e.To]--
		if at := now + e.Weight; at > d.readyAt[e.To] {
			d.readyAt[e.To] = at
		}
	}
	if d.remaining == 0 {
		d.restart(now + d.restartWeight)
	}
}

// Outstanding implements Driver.
func (d *GraphDriver) Outstanding() int { return d.outstanding }

// Reset implements Driver.
func (d *GraphDriver) Reset() {
	d.outstanding = 0
	d.restart(0)
}
