package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"path/filepath"

	"dagguise/internal/ckpt"
	"dagguise/internal/config"
	"dagguise/internal/fault"
	"dagguise/internal/sim"
)

// ShardResult is the deterministic outcome of one shard: the twin-run
// digests, the non-interference verdict, and the aggregate counters of the
// secret-A run. Every field is a pure function of the shard descriptor and
// the sweep config — never of worker count, retries or resume history —
// which is what makes the merged report byte-stable.
type ShardResult struct {
	Name         string              `json:"name"`
	Scheme       string              `json:"scheme"`
	Seed         int64               `json:"seed"`
	ChanLo       int                 `json:"chan_lo"`
	ChanHi       int                 `json:"chan_hi"`
	Cycles       uint64              `json:"cycles"`
	DigestA      string              `json:"digest_a"`
	DigestB      string              `json:"digest_b"`
	Interference bool                `json:"interference"`
	Counters     sim.ClusterCounters `json:"counters"`
	// FaultEvents is the size of the shard's derived fault campaign
	// (absent on clean sweeps, keeping their reports byte-identical to
	// pre-campaign builds). Like every other field it is a pure function
	// of the shard descriptor and sweep config.
	FaultEvents int `json:"fault_events,omitempty"`
}

// ShardOptions configures one shard execution.
type ShardOptions struct {
	// Dir holds the shard's checkpoint frame; empty disables checkpoints.
	Dir string
	// Every is the checkpoint interval in simulated cycles (0 = only at
	// the natural chunk boundary, i.e. one chunk).
	Every uint64
	// SecretA and SecretB are the twin-run secrets.
	SecretA, SecretB int
	// Faults, when non-empty, is the shard's fault campaign, attached to
	// both twins (fault decisions are secret-independent, so the
	// non-interference verdict carries over to the faulty machine).
	Faults fault.Schedule
	// SaveFrame and LoadFrame override the checkpoint IO — the hook the
	// pool uses to route checkpoints through its storage-fault injection
	// and quarantine layer. Nil selects ckpt.SaveFrame / ckpt.LoadFrame.
	SaveFrame func(path string, payload []byte) error
	LoadFrame func(path string) ([]byte, error)
	// OnCheckpoint, if set, is called after every durable checkpoint.
	OnCheckpoint func()
	// OnResume, if set, is called when a checkpoint frame was restored.
	OnResume func()
	// OnChunk, if set, is called after every simulated chunk with the
	// chunk's cycle bounds and the secret-A twin's counters — BEFORE the
	// chunk's checkpoint is cut. That ordering is load-bearing for the
	// telemetry plane: the pool emits (and fsyncs) the chunk's telemetry
	// inside this hook, so by the time the checkpoint that lets a resume
	// skip the chunk is durable, the chunk's records already are too —
	// a SIGKILL can duplicate telemetry (the collector dedups) but can
	// never leave a hole in it.
	OnChunk func(lo, hi uint64, counters sim.ClusterCounters)
}

// pairState is the checkpoint payload: both twins, cut at the same cycle.
type pairState struct {
	A *sim.ClusterState `json:"a"`
	B *sim.ClusterState `json:"b"`
}

// CheckpointName returns the checkpoint file for a shard inside dir.
func CheckpointName(dir, shard string) string {
	return filepath.Join(dir, shard+".ckpt")
}

// RunShard executes one shard: twin clusters over the shard's channel
// slice, advanced in checkpointed chunks, digested into a ShardResult.
// A context cancellation between chunks returns ctx.Err() with the last
// checkpoint already durable; rerunning the same shard resumes from it and
// produces the identical result.
func RunShard(ctx context.Context, base config.MultiChannelConfig, sh Shard, opt ShardOptions) (*ShardResult, error) {
	scheme, err := config.ParseScheme(sh.Scheme)
	if err != nil {
		return nil, err
	}
	cfg := base
	cfg.Scheme = scheme
	a, err := sim.NewCluster(cfg, sh.ChanLo, sh.ChanHi, sh.Seed, opt.SecretA)
	if err != nil {
		return nil, err
	}
	b, err := sim.NewCluster(cfg, sh.ChanLo, sh.ChanHi, sh.Seed, opt.SecretB)
	if err != nil {
		return nil, err
	}
	if len(opt.Faults.Events) > 0 {
		if err := a.AttachFaults(opt.Faults); err != nil {
			return nil, fmt.Errorf("fleet: shard %s faults: %w", sh.Name, err)
		}
		if err := b.AttachFaults(opt.Faults); err != nil {
			return nil, fmt.Errorf("fleet: shard %s faults: %w", sh.Name, err)
		}
	}
	loadFrame := opt.LoadFrame
	if loadFrame == nil {
		loadFrame = ckpt.LoadFrame
	}
	ckptPath := ""
	if opt.Dir != "" {
		ckptPath = CheckpointName(opt.Dir, sh.Name)
		if blob, err := loadFrame(ckptPath); err == nil {
			var pair pairState
			if err := json.Unmarshal(blob, &pair); err != nil {
				return nil, fmt.Errorf("fleet: shard %s checkpoint: %w", sh.Name, err)
			}
			if err := a.RestoreState(pair.A); err != nil {
				return nil, fmt.Errorf("fleet: shard %s twin A: %w", sh.Name, err)
			}
			if err := b.RestoreState(pair.B); err != nil {
				return nil, fmt.Errorf("fleet: shard %s twin B: %w", sh.Name, err)
			}
			if opt.OnResume != nil {
				opt.OnResume()
			}
		} else if !errors.Is(err, fs.ErrNotExist) {
			return nil, fmt.Errorf("fleet: shard %s checkpoint: %w", sh.Name, err)
		}
	}
	every := opt.Every
	if every == 0 || every > sh.Cycles {
		every = sh.Cycles
	}
	for a.Now() < sh.Cycles {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		chunk := every
		if rem := sh.Cycles - a.Now(); chunk > rem {
			chunk = rem
		}
		lo := a.Now()
		a.Run(chunk)
		b.Run(chunk)
		if opt.OnChunk != nil {
			opt.OnChunk(lo, a.Now(), a.Counters())
		}
		if ckptPath != "" && a.Now() < sh.Cycles {
			if err := saveCheckpoint(ckptPath, a, b, opt.SaveFrame); err != nil {
				return nil, err
			}
			if opt.OnCheckpoint != nil {
				opt.OnCheckpoint()
			}
		}
	}
	da, db := a.AuditDigest(), b.AuditDigest()
	return &ShardResult{
		Name:   sh.Name,
		Scheme: sh.Scheme,
		Seed:   sh.Seed,
		ChanLo: sh.ChanLo, ChanHi: sh.ChanHi,
		Cycles:       sh.Cycles,
		DigestA:      da,
		DigestB:      db,
		Interference: da != db,
		Counters:     a.Counters(),
		FaultEvents:  len(opt.Faults.Events),
	}, nil
}

// saveCheckpoint cuts a durable paired snapshot of both twins.
func saveCheckpoint(path string, a, b *sim.Cluster, save func(string, []byte) error) error {
	sa, err := a.SaveState()
	if err != nil {
		return err
	}
	sb, err := b.SaveState()
	if err != nil {
		return err
	}
	blob, err := json.Marshal(pairState{A: sa, B: sb})
	if err != nil {
		return err
	}
	if save == nil {
		save = ckpt.SaveFrame
	}
	return save(path, blob)
}
