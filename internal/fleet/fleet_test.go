package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"path/filepath"
	"testing"

	"dagguise/internal/config"
)

// testSweep is the small two-scheme sweep the package tests share.
func testSweep(channels, domains int, cycles uint64) Sweep {
	s := DefaultSweep(channels, domains, []int64{42}, cycles)
	return s
}

func TestSweepShardsOrderedAndNamed(t *testing.T) {
	s := testSweep(4, 8, 1000)
	s.Seeds = []int64{1, 2}
	s.SliceChannels = 2
	shards, err := s.Shards()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"insecure-seed1-ch00-02", "insecure-seed1-ch02-04",
		"insecure-seed2-ch00-02", "insecure-seed2-ch02-04",
		"dagguise-seed1-ch00-02", "dagguise-seed1-ch02-04",
		"dagguise-seed2-ch00-02", "dagguise-seed2-ch02-04",
	}
	if len(shards) != len(want) {
		t.Fatalf("got %d shards, want %d", len(shards), len(want))
	}
	for i, sh := range shards {
		if sh.Name != want[i] {
			t.Fatalf("shard %d named %q, want %q", i, sh.Name, want[i])
		}
	}
	// Uneven slice widths take the remainder on the last slice.
	s.SliceChannels = 3
	shards, err = s.Shards()
	if err != nil {
		t.Fatal(err)
	}
	if shards[1].ChanLo != 3 || shards[1].ChanHi != 4 {
		t.Fatalf("remainder slice is [%d, %d), want [3, 4)", shards[1].ChanLo, shards[1].ChanHi)
	}
}

func TestSweepValidate(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Sweep)
	}{
		{"no schemes", func(s *Sweep) { s.Schemes = nil }},
		{"unknown scheme", func(s *Sweep) { s.Schemes = []string{"quantum"} }},
		{"no seeds", func(s *Sweep) { s.Seeds = nil }},
		{"zero cycles", func(s *Sweep) { s.Cycles = 0 }},
		{"equal secrets", func(s *Sweep) { s.SecretB = s.SecretA }},
		{"broken config", func(s *Sweep) { s.Config.Channels = 0 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := testSweep(2, 4, 1000)
			tc.mutate(&s)
			if err := s.Validate(); err == nil {
				t.Fatal("validation accepted a broken sweep")
			}
		})
	}
}

func TestSweepFingerprintStable(t *testing.T) {
	a, err := testSweep(2, 8, 1000).Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	b, err := testSweep(2, 8, 1000).Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("identical sweeps fingerprint differently: %s vs %s", a, b)
	}
	c, err := testSweep(2, 8, 2000).Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Fatal("different sweeps share a fingerprint")
	}
}

func TestRunShardDeterministic(t *testing.T) {
	s := testSweep(2, 8, 5000)
	shards, err := s.Shards()
	if err != nil {
		t.Fatal(err)
	}
	sh := shards[len(shards)-1] // a dagguise shard
	opt := ShardOptions{SecretA: s.SecretA, SecretB: s.SecretB}
	r1, err := RunShard(context.Background(), s.Config, sh, opt)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunShard(context.Background(), s.Config, sh, opt)
	if err != nil {
		t.Fatal(err)
	}
	b1, _ := json.Marshal(r1)
	b2, _ := json.Marshal(r2)
	if !bytes.Equal(b1, b2) {
		t.Fatalf("identical shard runs differ:\n%s\n%s", b1, b2)
	}
}

// TestRunShardResumesFromCheckpoint interrupts a shard right after its
// first durable checkpoint and requires the resumed execution to land on
// the exact result of an uninterrupted run.
func TestRunShardResumesFromCheckpoint(t *testing.T) {
	s := testSweep(2, 8, 8000)
	shards, err := s.Shards()
	if err != nil {
		t.Fatal(err)
	}
	sh := shards[0]
	ref, err := RunShard(context.Background(), s.Config, sh, ShardOptions{SecretA: s.SecretA, SecretB: s.SecretB})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	_, err = RunShard(ctx, s.Config, sh, ShardOptions{
		Dir: dir, Every: 2000,
		SecretA: s.SecretA, SecretB: s.SecretB,
		OnCheckpoint: cancel,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted shard returned %v, want context.Canceled", err)
	}
	resumes := 0
	got, err := RunShard(context.Background(), s.Config, sh, ShardOptions{
		Dir: dir, Every: 2000,
		SecretA: s.SecretA, SecretB: s.SecretB,
		OnResume: func() { resumes++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if resumes != 1 {
		t.Fatalf("resumed %d times, want 1", resumes)
	}
	rb, _ := json.Marshal(ref)
	gb, _ := json.Marshal(got)
	if !bytes.Equal(rb, gb) {
		t.Fatalf("resumed shard differs from uninterrupted run:\n%s\n%s", rb, gb)
	}
}

// TestMergeOrderIndependent is the satellite regression test: the merged
// report's bytes must not depend on the order results landed in the
// manifest (i.e. on worker scheduling).
func TestMergeOrderIndependent(t *testing.T) {
	s := testSweep(2, 8, 4000)
	m, err := NewManifest(s)
	if err != nil {
		t.Fatal(err)
	}
	for i := range m.Records {
		res, err := RunShard(context.Background(), s.Config, m.Records[i].Shard,
			ShardOptions{SecretA: s.SecretA, SecretB: s.SecretB})
		if err != nil {
			t.Fatal(err)
		}
		m.Records[i].Status = StatusDone
		m.Records[i].Result = res
	}
	ref, err := Merge(m)
	if err != nil {
		t.Fatal(err)
	}
	refBytes, err := ref.Encode()
	if err != nil {
		t.Fatal(err)
	}
	// Rotate and reverse the records; volatile ops counters change too —
	// neither may reach the report.
	perm := append(append([]Record(nil), m.Records[2:]...), m.Records[:2]...)
	for i, j := 0, len(perm)-1; i < j; i, j = i+1, j-1 {
		perm[i], perm[j] = perm[j], perm[i]
	}
	for i := range perm {
		perm[i].Worker = 7 - i
		perm[i].Retries = i
		perm[i].Checkpoints = 3 * i
	}
	got, err := Merge(&Manifest{Version: ManifestVersion, Fingerprint: m.Fingerprint, Records: perm})
	if err != nil {
		t.Fatal(err)
	}
	gotBytes, err := got.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(refBytes, gotBytes) {
		t.Fatal("merged report bytes depend on record order or ops counters")
	}
}

func TestMergeRejectsIncomplete(t *testing.T) {
	s := testSweep(2, 4, 1000)
	m, err := NewManifest(s)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Merge(m); !errors.Is(err, ErrShardsIncomplete) {
		t.Fatalf("got %v, want ErrShardsIncomplete", err)
	}
}

func TestManifestRoundTripAndRequeue(t *testing.T) {
	s := testSweep(2, 4, 1000)
	m, err := NewManifest(s)
	if err != nil {
		t.Fatal(err)
	}
	m.Records[0].Status = StatusRunning
	m.Records[1].Status = StatusDone
	path := filepath.Join(t.TempDir(), ManifestName)
	if err := m.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := loaded.Matches(s); err != nil {
		t.Fatal(err)
	}
	other := s
	other.Cycles++
	if err := loaded.Matches(other); !errors.Is(err, ErrManifestMismatch) {
		t.Fatalf("got %v, want ErrManifestMismatch", err)
	}
	if n := loaded.Requeue(); n != 1 {
		t.Fatalf("requeued %d shards, want 1", n)
	}
	if loaded.Records[0].Status != StatusPending || loaded.Records[0].Resumes != 1 {
		t.Fatalf("crashed shard not re-queued: %+v", loaded.Records[0])
	}
	if loaded.Records[1].Status != StatusDone {
		t.Fatal("done shard must survive a requeue")
	}
}

func TestPoolFailurePathRetriesThenFails(t *testing.T) {
	s := testSweep(2, 4, 1000)
	// FS-BTA passes sweep validation but the cluster rejects it, so every
	// attempt fails — exercising retry, backoff accounting and the failed
	// terminal state.
	s.Schemes = []string{config.FSBTA.String()}
	dir := t.TempDir()
	_, err := Run(context.Background(), s, Options{Workers: 2, Dir: dir, Retries: 2, Backoff: 1, MaxBackoff: 2})
	if !errors.Is(err, ErrShardsIncomplete) {
		t.Fatalf("got %v, want ErrShardsIncomplete", err)
	}
	m, err := LoadManifest(filepath.Join(dir, ManifestName))
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range m.Records {
		if rec.Status != StatusFailed {
			t.Fatalf("shard %s is %s, want failed", rec.Shard.Name, rec.Status)
		}
		if rec.Retries != 2 || rec.Error == "" {
			t.Fatalf("shard %s retried %d times (want 2), error %q", rec.Shard.Name, rec.Retries, rec.Error)
		}
	}
}
