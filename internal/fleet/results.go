package fleet

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"time"

	"dagguise/internal/ckpt"
	"dagguise/internal/fault"
	"dagguise/internal/runner"
)

// Per-shard artifact naming inside a fleet directory. The result file is
// the authoritative "done" state in multi-process mode: it is committed
// write-once (see commitResult), so the manifest can always be rebuilt
// from the directory.
const (
	ResultSuffix = ".result"
	FailedSuffix = ".failed"
)

// ResultName returns the committed-result file for a shard inside dir.
func ResultName(dir, shard string) string {
	return filepath.Join(dir, shard+ResultSuffix)
}

// FailedName returns the terminal-failure marker for a shard inside dir.
func FailedName(dir, shard string) string {
	return filepath.Join(dir, shard+FailedSuffix)
}

// failedMarker is the durable record of a shard that exhausted its
// retries; peers adopt the failure instead of re-running the shard.
type failedMarker struct {
	Shard    string `json:"shard"`
	Error    string `json:"error"`
	Attempts int    `json:"attempts"`
}

// commitResult publishes a shard result with the fencing discipline that
// makes zombie overwrites structurally impossible:
//
//  1. The holder's lease is re-checked; a stolen lease fails ErrFenced
//     before any byte is written.
//  2. The framed result is written to a temp file and then os.Link'd to
//     the result path. Link never replaces an existing file, so a
//     committed result can never be clobbered — by anyone.
//  3. A link that loses to an existing identical result is an idempotent
//     success (shard results are deterministic); an existing different
//     result is refused with ErrFenced.
//
// Injected storage faults retry with deterministic backoff; a torn
// deposit at the result path is quarantined by the read-back and the
// link retried.
func commitResult(io *fsio, lm *LeaseManager, h *Held, dir string, res *ShardResult) error {
	blob, err := json.Marshal(res)
	if err != nil {
		return err
	}
	framed := ckpt.Frame(blob)
	path := ResultName(dir, res.Name)
	for attempt := 0; ; attempt++ {
		if attempt > io.retries+8 {
			return fmt.Errorf("fleet: result %s: commit gave up after %d attempts", res.Name, attempt)
		}
		if lm != nil && h != nil {
			if err := lm.Check(h); err != nil {
				return err
			}
		}
		err := io.fault(path, framed)
		if err == nil {
			err = linkFile(dir, path, framed)
		}
		switch {
		case err == nil:
			return nil
		case errors.Is(err, fs.ErrExist):
			// Something occupies the result path. An identical committed
			// result is an idempotent success; a corrupt artifact is
			// quarantined (loadFrame) and the link retried; a different
			// valid result means a newer owner got here first.
			payload, rerr := io.loadFrame(path)
			switch {
			case rerr == nil && bytes.Equal(payload, blob):
				return nil
			case rerr == nil:
				return fmt.Errorf("%w: result %s already committed with different bytes", ErrFenced, res.Name)
			default:
				continue
			}
		case errors.Is(err, fault.ErrInjectedIO):
			time.Sleep(runner.BackoffDelay(io.backoff, io.maxWait, io.seed, attempt))
		default:
			return err
		}
	}
}

// linkFile writes data to a temp file and hard-links it to path — the
// write-once primitive: link fails fs.ErrExist rather than replacing.
func linkFile(dir, path string, data []byte) error {
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName)
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Link(tmpName, path); err != nil {
		return err
	}
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
	return nil
}

// loadResult reads a committed shard result; fs.ErrNotExist (including
// quarantined corruption) means the shard is not done.
func loadResult(io *fsio, dir, shard string) (*ShardResult, error) {
	payload, err := io.loadFrame(ResultName(dir, shard))
	if err != nil {
		return nil, err
	}
	var res ShardResult
	if err := json.Unmarshal(payload, &res); err != nil || res.Name != shard {
		io.quarantine(ResultName(dir, shard), fmt.Errorf("fleet: result %s: bad payload", shard))
		return nil, fs.ErrNotExist
	}
	return &res, nil
}

// writeFailed durably marks a shard as terminally failed.
func writeFailed(io *fsio, dir, shard, cause string, attempts int) error {
	blob, err := json.Marshal(failedMarker{Shard: shard, Error: cause, Attempts: attempts})
	if err != nil {
		return err
	}
	return io.writeAtomic(FailedName(dir, shard), blob)
}

// loadFailed reads a shard's failure marker.
func loadFailed(io *fsio, dir, shard string) (*failedMarker, error) {
	blob, err := io.readFile(FailedName(dir, shard), func(b []byte) error {
		var probe failedMarker
		return json.Unmarshal(b, &probe)
	})
	if err != nil {
		return nil, err
	}
	var m failedMarker
	_ = json.Unmarshal(blob, &m)
	return &m, nil
}

// Reconcile folds the fleet directory's authoritative per-shard state
// into the manifest — the lease-aware replacement for Manifest.Requeue:
//
//   - a committed result file marks the record done (adopting a peer's
//     or a previous incarnation's work),
//   - a failure marker marks it failed,
//   - a live lease keeps it running (a peer owns it — joining a live
//     fleet must not double-run claimed shards),
//   - otherwise a running record's lease has lapsed (or never existed —
//     the crashed-fleet degenerate case, where Reconcile behaves exactly
//     like the old Requeue) and the shard returns to pending.
//
// It returns the names of the re-queued shards.
func Reconcile(m *Manifest, dir string, lm *LeaseManager, io *fsio) []string {
	if io == nil {
		io = newFSIO(nil, 0, 0)
	}
	var requeued []string
	for i := range m.Records {
		rec := &m.Records[i]
		if rec.Status == StatusDone && rec.Result != nil {
			continue
		}
		if res, err := loadResult(io, dir, rec.Shard.Name); err == nil {
			rec.Status = StatusDone
			rec.Result = res
			rec.Error = ""
			continue
		}
		if fm, err := loadFailed(io, dir, rec.Shard.Name); err == nil {
			rec.Status = StatusFailed
			rec.Result = nil
			rec.Error = fm.Error
			continue
		}
		if l, live, ok := lm.Peek(rec.Shard.Name); ok && live {
			rec.Status = StatusRunning
			rec.Owner = l.Owner
			rec.Epoch = l.Epoch
			continue
		}
		if rec.Status == StatusRunning {
			rec.Status = StatusPending
			rec.Owner = ""
			rec.Epoch = 0
			rec.Resumes++
			requeued = append(requeued, rec.Shard.Name)
		}
	}
	return requeued
}
