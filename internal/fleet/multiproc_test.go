package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"syscall"
	"testing"
	"time"

	"dagguise/internal/fault"
)

// telemReportLocal folds a telemetry directory into its deterministic
// report bytes (shared with pool_test.go's telemReport if present).
func multiTelemReport(t *testing.T, dir string) []byte {
	t.Helper()
	blob := telemReport(t, dir)
	return blob
}

// TestFleetMultiProcessInvariant pins the tentpole's headline invariant:
// the merged fleet report and the deterministic telemetry report are
// byte-identical whether the sweep ran in one process or in three
// concurrent ones coordinating purely through lease files — even with
// seeded storage faults injected under every durable write of each
// process.
func TestFleetMultiProcessInvariant(t *testing.T) {
	s := testSweep(2, 8, 6000)
	s.Seeds = []int64{1, 2}
	refTelem := t.TempDir()
	ref := runSweep(t, s, Options{Workers: 1, Dir: t.TempDir(), CheckpointEvery: 2500, TelemDir: refTelem})

	dir := t.TempDir()
	telemDir := filepath.Join(dir, "telem")
	procs := []string{"a", "b", "c"}
	reports := make([][]byte, len(procs))
	errs := make([]error, len(procs))
	var wg sync.WaitGroup
	for i, proc := range procs {
		wg.Add(1)
		go func(i int, proc string) {
			defer wg.Done()
			inj, err := fault.NewFSInjector(fault.FSCampaign(int64(100+i), 200, 12))
			if err != nil {
				errs[i] = err
				return
			}
			rep, err := Run(context.Background(), s, Options{
				Workers:         2,
				Dir:             dir,
				CheckpointEvery: 2500,
				TelemDir:        telemDir,
				Proc:            proc,
				LeaseTTL:        2 * time.Second,
				FS:              inj,
				Backoff:         time.Millisecond,
				MaxBackoff:      5 * time.Millisecond,
			})
			if err != nil {
				errs[i] = err
				return
			}
			reports[i], errs[i] = rep.Encode()
		}(i, proc)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("process %s: %v", procs[i], err)
		}
	}
	for i, got := range reports {
		if !bytes.Equal(ref, got) {
			t.Fatalf("process %s report differs from single-process reference:\n--- reference ---\n%s\n--- %s ---\n%s",
				procs[i], ref, procs[i], got)
		}
	}
	a := multiTelemReport(t, refTelem)
	b := multiTelemReport(t, telemDir)
	if !bytes.Equal(a, b) {
		t.Fatalf("multi-process telemetry report differs from single-process reference:\n--- reference ---\n%s\n--- fleet ---\n%s", a, b)
	}
}

const zombieEnvDir = "DAGGUISE_FLEET_ZOMBIE_DIR"

// zombieResult is the stale result the SIGSTOP'd worker tries to commit:
// same shard, deliberately different bytes from the thief's.
func zombieResult() *ShardResult {
	return &ShardResult{Name: "s0", Scheme: "dagguise", Cycles: 100,
		DigestA: "zombie", DigestB: "zombie-b", Interference: true}
}

// thiefResult is the result the stealing peer commits while the zombie
// is stopped.
func thiefResult() *ShardResult {
	return &ShardResult{Name: "s0", Scheme: "dagguise", Cycles: 100,
		DigestA: "thief", DigestB: "thief", Interference: false}
}

// TestFleetZombieHelper is not a test: it is the zombie worker body
// re-executed by TestFleetZombieCommitIsFenced. It claims the lease,
// signals the parent, waits to be SIGSTOP'd past its TTL and resumed,
// then tries to commit a stale result — which must fail ErrFenced.
func TestFleetZombieHelper(t *testing.T) {
	dir := os.Getenv(zombieEnvDir)
	if dir == "" {
		t.Skip("helper process body; driven by TestFleetZombieCommitIsFenced")
	}
	lm := NewLeaseManager(dir, 300*time.Millisecond, nil)
	io := newFSIO(nil, 0, 0)
	h, err := lm.Acquire("s0", "zombie-w0")
	if err != nil {
		fmt.Fprintln(os.Stderr, "zombie: acquire:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(filepath.Join(dir, "zombie-claimed"), nil, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "zombie:", err)
		os.Exit(1)
	}
	// Wait for the parent's go-signal. The SIGSTOP lands somewhere in this
	// loop; by the time SIGCONT resumes us, the lease has been stolen.
	for {
		if _, err := os.Stat(filepath.Join(dir, "zombie-go")); err == nil {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	err = commitResult(io, lm, h, dir, zombieResult())
	switch {
	case errors.Is(err, ErrFenced):
		os.Exit(0)
	case err == nil:
		fmt.Fprintln(os.Stderr, "zombie: stale commit SUCCEEDED")
		os.Exit(1)
	default:
		fmt.Fprintln(os.Stderr, "zombie: unexpected commit error:", err)
		os.Exit(2)
	}
}

// TestFleetZombieCommitIsFenced is the satellite subprocess test for the
// fencing epoch: a worker SIGSTOP'd past its lease TTL, whose shard was
// stolen and committed by a peer, must fail its own commit with
// ErrFenced on SIGCONT — and the thief's committed result must be
// untouched by the attempt.
func TestFleetZombieCommitIsFenced(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess zombie test skipped in -short mode")
	}
	dir := t.TempDir()
	cmd := exec.Command(os.Args[0], "-test.run=TestFleetZombieHelper$")
	cmd.Env = append(os.Environ(), zombieEnvDir+"="+dir)
	var childOut bytes.Buffer
	cmd.Stdout = &childOut
	cmd.Stderr = &childOut
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = cmd.Process.Kill()
		_, _ = cmd.Process.Wait()
	}()

	// Wait for the zombie's claim, then stop it dead.
	deadline := time.Now().Add(30 * time.Second)
	for {
		if _, err := os.Stat(filepath.Join(dir, "zombie-claimed")); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("zombie never claimed; output:\n%s", childOut.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := cmd.Process.Signal(syscall.SIGSTOP); err != nil {
		t.Fatal(err)
	}

	// Let the 300ms lease lapse (plus grace), steal it and commit.
	lm := NewLeaseManager(dir, 300*time.Millisecond, nil)
	io := newFSIO(nil, 0, 0)
	var thief *Held
	stealDeadline := time.Now().Add(10 * time.Second)
	for {
		h, err := lm.Acquire("s0", "thief-w0")
		if err == nil {
			thief = h
			break
		}
		if !errors.Is(err, ErrLeaseHeld) {
			t.Fatal(err)
		}
		if time.Now().After(stealDeadline) {
			t.Fatal("lease never became stealable")
		}
		time.Sleep(25 * time.Millisecond)
	}
	if !thief.Stole() || thief.Epoch() < 2 {
		t.Fatalf("steal: stole=%v epoch=%d, want a stolen second-generation lease", thief.Stole(), thief.Epoch())
	}
	if err := commitResult(io, lm, thief, dir, thiefResult()); err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(thiefResult())
	if err != nil {
		t.Fatal(err)
	}

	// Resume the zombie and let it discover the fence.
	if err := os.WriteFile(filepath.Join(dir, "zombie-go"), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := cmd.Process.Signal(syscall.SIGCONT); err != nil {
		t.Fatal(err)
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("zombie did not exit cleanly (fence not detected?): %v\noutput:\n%s", err, childOut.String())
	}

	// The committed result is byte-for-byte the thief's.
	got, err := loadResult(io, dir, "s0")
	if err != nil {
		t.Fatal(err)
	}
	gotBytes, err := json.Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, gotBytes) {
		t.Fatalf("zombie disturbed the committed result:\nwant %s\ngot  %s", want, gotBytes)
	}
	// And nothing corrupt was left behind at the result path.
	if _, err := os.Stat(ResultName(dir, "s0") + CorruptSuffix); !errors.Is(err, fs.ErrNotExist) {
		t.Fatal("fenced commit quarantined the committed result")
	}
}
