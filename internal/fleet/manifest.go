package fleet

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"

	"dagguise/internal/ckpt"
)

// ManifestVersion is bumped on incompatible manifest layout changes.
const ManifestVersion = 1

// ManifestName is the work-queue file inside a fleet directory.
const ManifestName = "fleet-manifest.json"

// ErrManifestMismatch reports a manifest whose sweep fingerprint (or
// version) does not match the sweep being resumed.
var ErrManifestMismatch = errors.New("fleet: manifest does not match the sweep")

// ErrManifestCorrupt reports a manifest whose records are structurally
// invalid — e.g. a hand-edited or future-version Status string. Loading
// fails loudly instead of silently miscounting the record in Counts and
// never scheduling it.
var ErrManifestCorrupt = errors.New("fleet: manifest is corrupt")

// Status is a shard's work-queue state.
type Status string

const (
	// StatusPending marks a shard no worker has claimed.
	StatusPending Status = "pending"
	// StatusRunning marks a claimed shard. A manifest loaded with running
	// shards belonged to a crashed fleet; they are re-queued on resume.
	StatusRunning Status = "running"
	// StatusDone marks a completed shard with a recorded result.
	StatusDone Status = "done"
	// StatusFailed marks a shard that exhausted its retries.
	StatusFailed Status = "failed"
)

// Record is one shard's manifest entry: the descriptor, its work-queue
// state, and the ops counters (attempts, retries, backoff, checkpoints,
// resumes). The ops counters describe this fleet incarnation's history and
// are deliberately excluded from the merged report — only Result feeds it.
type Record struct {
	Shard       Shard        `json:"shard"`
	Status      Status       `json:"status"`
	Worker      int          `json:"worker"`
	Attempts    int          `json:"attempts"`
	Retries     int          `json:"retries"`
	BackoffNs   int64        `json:"backoff_ns"`
	Checkpoints int          `json:"checkpoints"`
	Resumes     int          `json:"resumes"`
	Error       string       `json:"error,omitempty"`
	Result      *ShardResult `json:"result,omitempty"`
	// Owner and Epoch mirror the shard's lease while it is running: the
	// holder identity and fencing epoch observed at the last reconcile or
	// claim. Steals and Fenced count lease evictions and refused zombie
	// commits involving this shard.
	Owner  string `json:"owner,omitempty"`
	Epoch  uint64 `json:"epoch,omitempty"`
	Steals int    `json:"steals,omitempty"`
	Fenced int    `json:"fenced,omitempty"`
}

// validStatus reports whether s is a Status this build understands.
func validStatus(s Status) bool {
	switch s {
	case StatusPending, StatusRunning, StatusDone, StatusFailed:
		return true
	}
	return false
}

// Manifest is the fsync'd work queue of a fleet run.
type Manifest struct {
	Version     int      `json:"version"`
	Fingerprint string   `json:"fingerprint"`
	Records     []Record `json:"records"`
}

// NewManifest expands the sweep into a fresh all-pending manifest.
func NewManifest(s Sweep) (*Manifest, error) {
	shards, err := s.Shards()
	if err != nil {
		return nil, err
	}
	fp, err := s.Fingerprint()
	if err != nil {
		return nil, err
	}
	m := &Manifest{Version: ManifestVersion, Fingerprint: fp}
	for _, sh := range shards {
		m.Records = append(m.Records, Record{Shard: sh, Status: StatusPending})
	}
	return m, nil
}

// LoadManifest reads a manifest from disk.
func LoadManifest(path string) (*Manifest, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(blob, &m); err != nil {
		return nil, fmt.Errorf("fleet: manifest %s: %w", path, err)
	}
	if m.Version != ManifestVersion {
		return nil, fmt.Errorf("%w: version %d, want %d", ErrManifestMismatch, m.Version, ManifestVersion)
	}
	for i := range m.Records {
		if !validStatus(m.Records[i].Status) {
			return nil, fmt.Errorf("%w: %s: record %d (%s) has unknown status %q",
				ErrManifestCorrupt, path, i, m.Records[i].Shard.Name, m.Records[i].Status)
		}
	}
	return &m, nil
}

// Matches checks the manifest against a sweep's fingerprint.
func (m *Manifest) Matches(s Sweep) error {
	fp, err := s.Fingerprint()
	if err != nil {
		return err
	}
	if m.Fingerprint != fp {
		return fmt.Errorf("%w: manifest fingerprint %.12s…, sweep %.12s…", ErrManifestMismatch, m.Fingerprint, fp)
	}
	return nil
}

// Requeue flips crashed shards (left running by a killed fleet) back to
// pending and counts the resume. It returns how many it re-queued.
//
// Requeue is the crashed-fleet degenerate path: it assumes every running
// record's owner is dead, which is only safe when no other process can
// hold a live claim. Multi-process fleets use Reconcile instead, which
// consults the lease files and re-queues only shards whose leases have
// actually lapsed.
func (m *Manifest) Requeue() int {
	n := 0
	for i := range m.Records {
		if m.Records[i].Status == StatusRunning {
			m.Records[i].Status = StatusPending
			m.Records[i].Resumes++
			n++
		}
	}
	return n
}

// Counts returns the number of records in each state.
func (m *Manifest) Counts() (pending, running, done, failed int) {
	for i := range m.Records {
		switch m.Records[i].Status {
		case StatusPending:
			pending++
		case StatusRunning:
			running++
		case StatusDone:
			done++
		case StatusFailed:
			failed++
		}
	}
	return
}

// Save writes the manifest durably: serialized deterministically, written
// to a temp file, fsync'd, renamed over the target, directory fsync'd —
// the same atomic protocol as the checkpoint layer, so a crash leaves
// either the old queue or the new one, never a torn file.
func (m *Manifest) Save(path string) error {
	blob, err := m.encode()
	if err != nil {
		return err
	}
	return ckpt.WriteFileAtomic(path, blob)
}

// encode renders the manifest's canonical on-disk bytes.
func (m *Manifest) encode() ([]byte, error) {
	blob, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(blob, '\n'), nil
}
