package fleet

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"
)

// runSweep executes a sweep in its own directory and returns the encoded
// report bytes.
func runSweep(t *testing.T, s Sweep, opts Options) []byte {
	t.Helper()
	rep, err := Run(context.Background(), s, opts)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := rep.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

// TestFleetWorkerCountInvariant pins the first half of the headline
// invariant: the merged report is byte-identical whether the sweep ran on
// one worker or on many.
func TestFleetWorkerCountInvariant(t *testing.T) {
	s := testSweep(2, 8, 6000)
	solo := runSweep(t, s, Options{Workers: 1, Dir: t.TempDir(), CheckpointEvery: 2500})
	many := runSweep(t, s, Options{Workers: 4, Dir: t.TempDir(), CheckpointEvery: 2500})
	if !bytes.Equal(solo, many) {
		t.Fatalf("report depends on worker count:\n--- 1 worker ---\n%s\n--- 4 workers ---\n%s", solo, many)
	}
}

func TestFleetResumeRejectsChangedSweep(t *testing.T) {
	s := testSweep(2, 4, 1000)
	dir := t.TempDir()
	runSweep(t, s, Options{Workers: 2, Dir: dir})
	s.Cycles = 2000
	if _, err := Run(context.Background(), s, Options{Workers: 2, Dir: dir}); !errors.Is(err, ErrManifestMismatch) {
		t.Fatalf("got %v, want ErrManifestMismatch", err)
	}
}

func TestFleetSecondRunIsNoOp(t *testing.T) {
	s := testSweep(2, 4, 2000)
	dir := t.TempDir()
	first := runSweep(t, s, Options{Workers: 2, Dir: dir})
	again := runSweep(t, s, Options{Workers: 2, Dir: dir})
	if !bytes.Equal(first, again) {
		t.Fatal("re-running a completed sweep changed the report")
	}
}

// killSweep is the fixture shared between TestFleetKillResume and its
// helper process; it must be heavy enough that the parent's SIGKILL lands
// while shards are mid-flight.
func killSweep() Sweep {
	return DefaultSweep(4, 32, []int64{9}, 60000)
}

const helperEnvDir = "DAGGUISE_FLEET_HELPER_DIR"

// TestFleetHelperProcess is not a test: it is the child body re-executed by
// TestFleetKillResume so the parent can SIGKILL a live multi-worker fleet.
func TestFleetHelperProcess(t *testing.T) {
	dir := os.Getenv(helperEnvDir)
	if dir == "" {
		t.Skip("helper process body; driven by TestFleetKillResume")
	}
	s := killSweep()
	s.SliceChannels = 2
	opts := Options{Workers: 3, Dir: dir, CheckpointEvery: 2000, TelemDir: filepath.Join(dir, "telem")}
	if _, err := Run(context.Background(), s, opts); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	os.Exit(0)
}

// TestFleetKillResume pins the rest of the headline invariant: a fleet
// SIGKILL'd mid-flight, then resumed from its manifest, merges to the same
// bytes as an uninterrupted single-worker run — and so does the fleet
// telemetry report collected from the per-worker streams.
func TestFleetKillResume(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess kill test skipped in -short mode")
	}
	s := killSweep()
	s.SliceChannels = 2
	refTelem := t.TempDir()
	ref := runSweep(t, s, Options{Workers: 1, Dir: t.TempDir(), CheckpointEvery: 2000, TelemDir: refTelem})

	killDir := t.TempDir()
	cmd := exec.Command(os.Args[0], "-test.run=TestFleetHelperProcess$")
	cmd.Env = append(os.Environ(), helperEnvDir+"="+killDir)
	var childOut bytes.Buffer
	cmd.Stdout = &childOut
	cmd.Stderr = &childOut
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// Kill as soon as the fleet has cut its first mid-shard checkpoint —
	// that guarantees shards are genuinely in flight.
	deadline := time.Now().Add(30 * time.Second)
	for {
		if time.Now().After(deadline) {
			_ = cmd.Process.Kill()
			_ = cmd.Wait()
			t.Fatalf("no checkpoint appeared before the deadline; child output:\n%s", childOut.String())
		}
		frames, err := filepath.Glob(filepath.Join(killDir, "*.ckpt"))
		if err != nil {
			t.Fatal(err)
		}
		if len(frames) > 0 {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = cmd.Wait() // expected: killed

	m, err := LoadManifest(filepath.Join(killDir, ManifestName))
	if err != nil {
		t.Fatalf("killed fleet left no readable manifest: %v", err)
	}
	_, _, done, _ := m.Counts()
	if done == len(m.Records) {
		t.Fatalf("fleet finished before the kill; enlarge killSweep (child output:\n%s)", childOut.String())
	}

	got := runSweep(t, s, Options{Workers: 3, Dir: killDir, CheckpointEvery: 2000, TelemDir: filepath.Join(killDir, "telem")})
	if !bytes.Equal(ref, got) {
		t.Fatalf("killed+resumed fleet differs from uninterrupted run:\n--- reference ---\n%s\n--- resumed ---\n%s", ref, got)
	}
	// The telemetry plane honors the same contract: the killed worker's
	// torn stream plus the resume's replayed chunks collapse to the exact
	// bytes of the uninterrupted single-worker report.
	a := telemReport(t, refTelem)
	b := telemReport(t, filepath.Join(killDir, "telem"))
	if !bytes.Equal(a, b) {
		t.Fatalf("killed+resumed telemetry report differs:\n--- reference ---\n%s\n--- resumed ---\n%s", a, b)
	}
}

// TestFleetHundredTenantGate is the acceptance run: one hundred tenants
// over four channels, with the audit gate requiring the insecure baseline
// to trip and DAGguise to stay clean.
func TestFleetHundredTenantGate(t *testing.T) {
	if testing.Short() {
		t.Skip("hundred-tenant sweep skipped in -short mode")
	}
	s := DefaultSweep(4, 100, []int64{7}, 12000)
	s.SliceChannels = 2
	rep, err := Run(context.Background(), s, Options{Workers: 4, Dir: t.TempDir(), CheckpointEvery: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Gate(); err != nil {
		t.Fatalf("audit gate: %v", err)
	}
	for _, v := range rep.Verdicts {
		switch v.Scheme {
		case "insecure":
			if !v.Interference {
				t.Fatal("insecure baseline did not leak at 100 tenants")
			}
		case "dagguise":
			if v.Interference {
				t.Fatal("dagguise showed interference at 100 tenants")
			}
		default:
			t.Fatalf("unexpected scheme %q in report", v.Scheme)
		}
	}
	if rep.Totals.Shards != 4 {
		t.Fatalf("got %d shards, want 4", rep.Totals.Shards)
	}
	if rep.Totals.Remote == 0 {
		t.Fatal("channel-sliced shards should route some requests out of slice")
	}
}
