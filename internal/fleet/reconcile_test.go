package fleet

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestLoadManifestRejectsUnknownStatus is the satellite regression test:
// a hand-edited (or future-version) status string must fail loudly with
// ErrManifestCorrupt instead of silently never scheduling the record.
func TestLoadManifestRejectsUnknownStatus(t *testing.T) {
	s := testSweep(2, 4, 1000)
	m, err := NewManifest(s)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), ManifestName)
	if err := m.Save(path); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	mut := bytes.Replace(blob, []byte(`"pending"`), []byte(`"paused"`), 1)
	if bytes.Equal(mut, blob) {
		t.Fatal("fixture: no pending status found to mangle")
	}
	if err := os.WriteFile(path, mut, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadManifest(path); !errors.Is(err, ErrManifestCorrupt) {
		t.Fatalf("got %v, want ErrManifestCorrupt", err)
	}
}

// TestReconcileConsultsLeases is the satellite fix test for the resume
// path: Reconcile must keep running shards whose lease is live (a peer
// owns them), re-queue only shards whose lease is absent or lapsed, and
// adopt terminal artifacts (results, failure markers) from the directory.
func TestReconcileConsultsLeases(t *testing.T) {
	s := testSweep(2, 4, 1000)
	s.Seeds = []int64{1, 2} // four shards
	m, err := NewManifest(s)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	lm, clk := testLM(dir, time.Second)
	io := newFSIO(nil, 0, 0)

	// Record 0: running under a live peer lease.
	m.Records[0].Status = StatusRunning
	peer, err := lm.Acquire(m.Records[0].Shard.Name, "peer-w0")
	if err != nil {
		t.Fatal(err)
	}
	// Record 1: running but its owner crashed without a lease.
	m.Records[1].Status = StatusRunning
	// Record 2: a peer committed its result.
	res := &ShardResult{Name: m.Records[2].Shard.Name, Scheme: m.Records[2].Shard.Scheme, Cycles: 1000}
	if err := commitResult(io, nil, nil, dir, res); err != nil {
		t.Fatal(err)
	}
	// Record 3: a peer durably marked it failed.
	if err := writeFailed(io, dir, m.Records[3].Shard.Name, "boom", 3); err != nil {
		t.Fatal(err)
	}

	requeued := Reconcile(m, dir, lm, io)
	if len(requeued) != 1 || requeued[0] != m.Records[1].Shard.Name {
		t.Fatalf("requeued %v, want exactly the lease-less running shard", requeued)
	}
	if m.Records[0].Status != StatusRunning || m.Records[0].Owner != "peer-w0" || m.Records[0].Epoch != peer.Epoch() {
		t.Fatalf("live-leased shard disturbed: %+v", m.Records[0])
	}
	if m.Records[1].Status != StatusPending || m.Records[1].Resumes != 1 {
		t.Fatalf("crashed shard not re-queued: %+v", m.Records[1])
	}
	if m.Records[2].Status != StatusDone || m.Records[2].Result == nil {
		t.Fatalf("committed result not adopted: %+v", m.Records[2])
	}
	if m.Records[3].Status != StatusFailed || m.Records[3].Error != "boom" {
		t.Fatalf("failure marker not adopted: %+v", m.Records[3])
	}

	// Once the peer's lease lapses, a second reconcile re-queues it too.
	clk.advance(3 * time.Second)
	requeued = Reconcile(m, dir, lm, io)
	if len(requeued) != 1 || requeued[0] != m.Records[0].Shard.Name {
		t.Fatalf("requeued %v after lease lapse, want the stale peer's shard", requeued)
	}
	if m.Records[0].Status != StatusPending || m.Records[0].Owner != "" {
		t.Fatalf("lapsed-lease shard not re-queued: %+v", m.Records[0])
	}
}

// TestRunQuarantinesCorruptManifest pins the robustness path on top of
// the strict loader: a torn manifest is quarantined and the fleet
// rebuilds the queue from the directory's authoritative per-shard state
// instead of aborting the campaign.
func TestRunQuarantinesCorruptManifest(t *testing.T) {
	s := testSweep(2, 4, 1500)
	dir := t.TempDir()
	first := runSweep(t, s, Options{Workers: 2, Dir: dir})
	path := filepath.Join(dir, ManifestName)
	if err := os.WriteFile(path, []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	again := runSweep(t, s, Options{Workers: 2, Dir: dir})
	if !bytes.Equal(first, again) {
		t.Fatal("rebuilt-from-artifacts report differs from the original")
	}
	if _, err := os.Stat(path + CorruptSuffix); err != nil {
		t.Fatalf("torn manifest was not quarantined: %v", err)
	}
	// The adopted results meant no shard was re-simulated: the rebuilt
	// manifest must show every shard done.
	m, err := LoadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	_, _, done, _ := m.Counts()
	if done != len(m.Records) {
		t.Fatalf("%d/%d shards done after rebuild", done, len(m.Records))
	}
}
