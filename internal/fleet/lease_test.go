package fleet

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"dagguise/internal/fault"
)

// fakeClock is an injectable wall clock for lease-expiry tests: no test
// here ever sleeps to expire a lease.
type fakeClock struct {
	t time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1_700_000_000, 0)}
}

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

// testLM builds a lease manager over dir with an injectable clock.
func testLM(dir string, ttl time.Duration) (*LeaseManager, *fakeClock) {
	clk := newFakeClock()
	lm := NewLeaseManager(dir, ttl, nil)
	lm.now = clk.now
	return lm, clk
}

func TestLeaseAcquireIsExclusive(t *testing.T) {
	lm, _ := testLM(t.TempDir(), time.Second)
	h, err := lm.Acquire("s0", "a-w0")
	if err != nil {
		t.Fatal(err)
	}
	if h.Epoch() != 1 || h.Stole() {
		t.Fatalf("first acquisition: epoch %d stole %v, want epoch 1, no steal", h.Epoch(), h.Stole())
	}
	if _, err := lm.Acquire("s0", "b-w0"); !errors.Is(err, ErrLeaseHeld) {
		t.Fatalf("second owner got %v, want ErrLeaseHeld", err)
	}
	// The same owner id re-acquiring adopts its own generation (crashed
	// incarnation residue), not a new epoch.
	h2, err := lm.Acquire("s0", "a-w0")
	if err != nil {
		t.Fatal(err)
	}
	if h2.Epoch() != 1 {
		t.Fatalf("own-residue adoption bumped the epoch to %d", h2.Epoch())
	}
}

func TestLeaseStealAfterExpiryBumpsEpoch(t *testing.T) {
	lm, clk := testLM(t.TempDir(), time.Second)
	if _, err := lm.Acquire("s0", "dead-w0"); err != nil {
		t.Fatal(err)
	}
	// Inside TTL+grace the lease is protected.
	clk.advance(time.Second)
	if _, err := lm.Acquire("s0", "thief-w0"); !errors.Is(err, ErrLeaseHeld) {
		t.Fatalf("lease stolen inside the grace window: %v", err)
	}
	clk.advance(time.Second)
	h, err := lm.Acquire("s0", "thief-w0")
	if err != nil {
		t.Fatal(err)
	}
	if !h.Stole() || h.Epoch() != 2 {
		t.Fatalf("steal: stole=%v epoch=%d, want stole, epoch 2", h.Stole(), h.Epoch())
	}
}

func TestLeaseEpochMonotonicAcrossRelease(t *testing.T) {
	lm, _ := testLM(t.TempDir(), time.Second)
	for want := uint64(1); want <= 4; want++ {
		h, err := lm.Acquire("s0", "a-w0")
		if err != nil {
			t.Fatal(err)
		}
		if h.Epoch() != want {
			t.Fatalf("generation %d has epoch %d", want, h.Epoch())
		}
		lm.Release(h)
	}
}

func TestLeaseRenewAndCheckFenceAfterSteal(t *testing.T) {
	lm, clk := testLM(t.TempDir(), time.Second)
	zombie, err := lm.Acquire("s0", "zombie-w0")
	if err != nil {
		t.Fatal(err)
	}
	clk.advance(3 * time.Second)
	if _, err := lm.Acquire("s0", "thief-w0"); err != nil {
		t.Fatal(err)
	}
	if err := lm.Renew(zombie); !errors.Is(err, ErrFenced) {
		t.Fatalf("zombie renewal got %v, want ErrFenced", err)
	}
	if err := lm.Check(zombie); !errors.Is(err, ErrFenced) {
		t.Fatalf("zombie fence check got %v, want ErrFenced", err)
	}
}

func TestLeaseReleaseIsOwnerChecked(t *testing.T) {
	lm, clk := testLM(t.TempDir(), time.Second)
	zombie, err := lm.Acquire("s0", "zombie-w0")
	if err != nil {
		t.Fatal(err)
	}
	clk.advance(3 * time.Second)
	thief, err := lm.Acquire("s0", "thief-w0")
	if err != nil {
		t.Fatal(err)
	}
	// The zombie's release must not tomb the thief's live lease.
	lm.Release(zombie)
	if err := lm.Check(thief); err != nil {
		t.Fatalf("zombie release disturbed the thief's lease: %v", err)
	}
}

func TestLeaseCorruptFileIsQuarantinedAndReclaimed(t *testing.T) {
	dir := t.TempDir()
	lm, _ := testLM(dir, time.Second)
	path := filepath.Join(dir, "s0"+LeaseSuffix)
	if err := os.WriteFile(path, []byte("{torn garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	h, err := lm.Acquire("s0", "a-w0")
	if err != nil {
		t.Fatalf("corrupt lease wedged the claim loop: %v", err)
	}
	if h.Epoch() != 1 {
		t.Fatalf("epoch %d after quarantine, want 1", h.Epoch())
	}
	if _, err := os.Stat(path + CorruptSuffix); err != nil {
		t.Fatalf("corrupt lease was not quarantined: %v", err)
	}
}

func TestLeaseHeartbeatKeepsLeaseAlive(t *testing.T) {
	lm := NewLeaseManager(t.TempDir(), 120*time.Millisecond, nil)
	h, err := lm.Acquire("s0", "a-w0")
	if err != nil {
		t.Fatal(err)
	}
	stop := lm.Heartbeat(context.Background(), h, nil)
	defer stop()
	time.Sleep(400 * time.Millisecond)
	// Well past the original TTL, still ours: the heartbeat renewed it.
	if err := lm.Check(h); err != nil {
		t.Fatalf("heartbeat failed to keep the lease alive: %v", err)
	}
	l, live, ok := lm.Peek("s0")
	if !ok || !live || l.Owner != "a-w0" {
		t.Fatalf("lease state after renewals: %+v live=%v ok=%v", l, live, ok)
	}
}

// TestLeaseHeartbeatFencesAfterSteal drives the real steal protocol
// against a live heartbeat: the zombie's clock is frozen (its renewals
// always write an already-lapsed expiry from the thief's point of view),
// the thief's clock is far ahead, and the thief steals through the tomb
// protocol. A renewal in flight during the steal may transiently win the
// file back — the documented renew-vs-steal race — so the thief re-steals
// until exactly one side fences; the zombie's heartbeat must report
// ErrFenced.
func TestLeaseHeartbeatFencesAfterSteal(t *testing.T) {
	dir := t.TempDir()
	zombieLM, _ := testLM(dir, 120*time.Millisecond) // frozen clock
	thiefLM, thiefClk := testLM(dir, 120*time.Millisecond)
	thiefClk.advance(time.Hour)

	h, err := zombieLM.Acquire("s0", "zombie-w0")
	if err != nil {
		t.Fatal(err)
	}
	fencedCh := make(chan error, 1)
	stop := zombieLM.Heartbeat(context.Background(), h, func(err error) { fencedCh <- err })
	defer stop()

	deadline := time.After(5 * time.Second)
	for {
		if _, err := thiefLM.Acquire("s0", "thief-w0"); err != nil && !errors.Is(err, ErrLeaseHeld) {
			t.Fatal(err)
		}
		select {
		case err := <-fencedCh:
			if !errors.Is(err, ErrFenced) {
				t.Fatalf("fence callback got %v, want ErrFenced", err)
			}
			return
		case <-deadline:
			t.Fatal("zombie heartbeat never fenced against the thief's steal")
		case <-time.After(50 * time.Millisecond):
		}
	}
}

func TestCommitResultIsWriteOnce(t *testing.T) {
	dir := t.TempDir()
	io := newFSIO(nil, 0, 0)
	res := &ShardResult{Name: "s0", Scheme: "dagguise", Cycles: 100, DigestA: "aa", DigestB: "aa"}
	if err := commitResult(io, nil, nil, dir, res); err != nil {
		t.Fatal(err)
	}
	// Identical re-commit (a replayed deterministic shard) is idempotent.
	if err := commitResult(io, nil, nil, dir, res); err != nil {
		t.Fatalf("idempotent re-commit: %v", err)
	}
	committed, err := loadResult(io, dir, "s0")
	if err != nil {
		t.Fatal(err)
	}
	// A different result (a zombie that somehow dodged the lease check)
	// must be refused with ErrFenced, leaving the committed bytes intact.
	evil := *res
	evil.DigestB = "bb"
	evil.Interference = true
	if err := commitResult(io, nil, nil, dir, &evil); !errors.Is(err, ErrFenced) {
		t.Fatalf("conflicting commit got %v, want ErrFenced", err)
	}
	after, err := loadResult(io, dir, "s0")
	if err != nil {
		t.Fatal(err)
	}
	if after.DigestB != committed.DigestB || after.Interference {
		t.Fatal("conflicting commit clobbered the committed result")
	}
}

func TestCommitResultFencesBeforeWriting(t *testing.T) {
	dir := t.TempDir()
	lm, clk := testLM(dir, time.Second)
	io := newFSIO(nil, 0, 0)
	zombie, err := lm.Acquire("s0", "zombie-w0")
	if err != nil {
		t.Fatal(err)
	}
	clk.advance(3 * time.Second)
	if _, err := lm.Acquire("s0", "thief-w0"); err != nil {
		t.Fatal(err)
	}
	res := &ShardResult{Name: "s0", Scheme: "dagguise", Cycles: 100}
	if err := commitResult(io, lm, zombie, dir, res); !errors.Is(err, ErrFenced) {
		t.Fatalf("zombie commit got %v, want ErrFenced", err)
	}
	if _, err := os.Stat(ResultName(dir, "s0")); !os.IsNotExist(err) {
		t.Fatal("fenced commit still deposited a result file")
	}
}

func TestCommitResultUnderInjectedFaults(t *testing.T) {
	dir := t.TempDir()
	inj, err := fault.NewFSInjector(fault.FSSchedule{Seed: 7, Events: []fault.FSEvent{
		{Kind: fault.FSTornWrite, Op: 0},
		{Kind: fault.FSWriteEIO, Op: 1},
	}})
	if err != nil {
		t.Fatal(err)
	}
	io := newFSIO(inj, time.Millisecond, 2*time.Millisecond)
	res := &ShardResult{Name: "s0", Scheme: "dagguise", Cycles: 100, DigestA: "aa", DigestB: "aa"}
	if err := commitResult(io, nil, nil, dir, res); err != nil {
		t.Fatalf("commit under injected faults: %v", err)
	}
	got, err := loadResult(io, dir, "s0")
	if err != nil {
		t.Fatal(err)
	}
	if got.DigestA != "aa" {
		t.Fatal("committed result corrupted by injected faults")
	}
}
