// Package fleet is the sharded campaign fabric: it fans a multi-channel,
// multi-tenant non-interference sweep out over a worker pool with a
// fsync'd work-queue manifest, per-shard deterministic checkpoints and a
// deterministic merge, so one invocation saturates every core and a
// SIGKILL'd fleet resumes to the byte.
//
// The unit of work is the shard: one (scheme, seed, channel-slice) cell of
// the sweep, executed as a twin pair of sim.Cluster runs whose protected
// tenants encode two different secrets. A shard's result is a pure
// function of its descriptor — worker count, completion order, retries and
// crash/resume cycles can change nothing in the merged report.
package fleet

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"dagguise/internal/config"
	"dagguise/internal/fault"
	"dagguise/internal/mem"
)

// Shard is one work-queue entry: a (scheme, seed, channel-slice) cell.
type Shard struct {
	Name   string `json:"name"`
	Scheme string `json:"scheme"`
	Seed   int64  `json:"seed"`
	ChanLo int    `json:"chan_lo"`
	ChanHi int    `json:"chan_hi"`
	Cycles uint64 `json:"cycles"`
}

// Sweep describes a whole campaign: the cross product of schemes, seeds
// and channel slices over one multi-channel machine.
type Sweep struct {
	// Schemes are evaluation scheme names (config.ParseScheme); the
	// Config's own Scheme field is overridden per shard.
	Schemes []string `json:"schemes"`
	// Seeds are the base seeds; every tenant and shaper stream of a shard
	// is derived from its shard's seed via rng.Derive.
	Seeds []int64 `json:"seeds"`
	// Cycles is the simulated length of every shard.
	Cycles uint64 `json:"cycles"`
	// SliceChannels is the number of channels per shard slice; the last
	// slice takes the remainder. Zero puts all channels in one shard.
	SliceChannels int `json:"slice_channels"`
	// SecretA and SecretB are the twin-run secrets the protected tenants
	// encode; the non-interference verdict compares their digests.
	SecretA int `json:"secret_a"`
	SecretB int `json:"secret_b"`
	// FaultEvents, when positive, turns the sweep into a fault campaign:
	// every shard runs under a fault.Schedule of this many events, derived
	// deterministically from the sweep fingerprint and the shard name (see
	// ShardFaultSchedule). Both twins of a shard share the schedule, so
	// the non-interference verdict extends to the faulty machine. Zero
	// (the omitted default) keeps the sweep clean — and its fingerprint
	// identical to pre-fault-campaign builds.
	FaultEvents int `json:"fault_events,omitempty"`
	// Config is the machine; its Scheme field is ignored.
	Config config.MultiChannelConfig `json:"config"`
}

// DefaultSweep returns a two-scheme (insecure vs DAGguise) sweep over the
// default multi-channel machine, the shape the CI gate runs.
func DefaultSweep(channels, domains int, seeds []int64, cycles uint64) Sweep {
	return Sweep{
		Schemes:       []string{config.Insecure.String(), config.DAGguise.String()},
		Seeds:         seeds,
		Cycles:        cycles,
		SliceChannels: 1,
		SecretA:       11,
		SecretB:       12,
		Config:        config.DefaultMultiChannel(channels, domains, config.DAGguise),
	}
}

// Validate checks the sweep.
func (s Sweep) Validate() error {
	if len(s.Schemes) == 0 {
		return fmt.Errorf("fleet: sweep has no schemes")
	}
	for _, name := range s.Schemes {
		if _, err := config.ParseScheme(name); err != nil {
			return err
		}
	}
	if len(s.Seeds) == 0 {
		return fmt.Errorf("fleet: sweep has no seeds")
	}
	if s.Cycles == 0 {
		return fmt.Errorf("fleet: sweep has zero cycles")
	}
	if s.SliceChannels < 0 {
		return fmt.Errorf("fleet: negative slice width %d", s.SliceChannels)
	}
	if s.SecretA == s.SecretB {
		return fmt.Errorf("fleet: twin secrets must differ, both are %d", s.SecretA)
	}
	if s.FaultEvents < 0 {
		return fmt.Errorf("fleet: negative fault event count %d", s.FaultEvents)
	}
	cfg := s.Config
	for _, name := range s.Schemes {
		scheme, _ := config.ParseScheme(name)
		cfg.Scheme = scheme
		if err := cfg.Validate(); err != nil {
			return fmt.Errorf("fleet: sweep config under scheme %s: %w", name, err)
		}
	}
	return nil
}

// Shards expands the sweep into its ordered shard list: schemes in sweep
// order, seeds in sweep order, channel slices low to high. The order is
// part of the manifest contract — workers claim lowest-index first.
func (s Sweep) Shards() ([]Shard, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	width := s.SliceChannels
	if width == 0 || width > s.Config.Channels {
		width = s.Config.Channels
	}
	var out []Shard
	for _, scheme := range s.Schemes {
		for _, seed := range s.Seeds {
			for lo := 0; lo < s.Config.Channels; lo += width {
				hi := lo + width
				if hi > s.Config.Channels {
					hi = s.Config.Channels
				}
				out = append(out, Shard{
					Name:   fmt.Sprintf("%s-seed%d-ch%02d-%02d", scheme, seed, lo, hi),
					Scheme: scheme,
					Seed:   seed,
					ChanLo: lo,
					ChanHi: hi,
					Cycles: s.Cycles,
				})
			}
		}
	}
	return out, nil
}

// ShardFaultSchedule derives the fault campaign for one shard of the
// sweep: the seed is the first eight bytes of SHA-256(fingerprint |
// shard name), so the schedule is a pure function of the sweep spec and
// the shard — any fleet process (and any resume) derives the identical
// faults, and a campaign failure replays from the sweep alone. Only the
// protected domains are eligible for domain-scoped faults; the horizon
// is the shard's cycle budget.
func (s Sweep) ShardFaultSchedule(fingerprint string, sh Shard) fault.Schedule {
	if s.FaultEvents <= 0 {
		return fault.Schedule{}
	}
	sum := sha256.Sum256([]byte(fingerprint + "|" + sh.Name))
	seed := int64(binary.LittleEndian.Uint64(sum[:8]) >> 1)
	var doms []mem.Domain
	for i := 0; i < s.Config.Protected; i++ {
		doms = append(doms, mem.Domain(i+1))
	}
	return fault.Campaign(seed, fault.CampaignConfig{
		Horizon:  sh.Cycles,
		Domains:  doms,
		MaxStorm: sh.Cycles/32 + 1,
		Events:   s.FaultEvents,
	})
}

// Fingerprint hashes the sweep specification. A manifest records it so a
// resume against a changed sweep is rejected instead of silently merging
// incompatible shards.
func (s Sweep) Fingerprint() (string, error) {
	blob, err := json.Marshal(s)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(blob)
	return hex.EncodeToString(sum[:]), nil
}
