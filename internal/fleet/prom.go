package fleet

import (
	"fmt"
	"io"
)

// shardMetric maps one manifest Record field to a Prometheus series.
type shardMetric struct {
	name  string
	typ   string // "counter" or "gauge"
	help  string
	value func(r *Record) float64
}

// shardMetrics is emitted in this fixed order so the exposition is
// deterministic and diffs cleanly between scrapes.
var shardMetrics = []shardMetric{
	{"dagfleet_shard_attempts_total", "counter",
		"Shard execution attempts, including the first.",
		func(r *Record) float64 { return float64(r.Attempts) }},
	{"dagfleet_shard_retries_total", "counter",
		"Retry decisions after failed shard attempts.",
		func(r *Record) float64 { return float64(r.Retries) }},
	{"dagfleet_shard_backoff_seconds_total", "counter",
		"Deterministic backoff delay scheduled for the shard's retries.",
		func(r *Record) float64 { return float64(r.BackoffNs) / 1e9 }},
	{"dagfleet_shard_checkpoint_writes_total", "counter",
		"Mid-shard twin-cluster checkpoints persisted for the shard.",
		func(r *Record) float64 { return float64(r.Checkpoints) }},
	{"dagfleet_shard_resumes_total", "counter",
		"Restores of the shard from a persisted checkpoint or a crashed fleet.",
		func(r *Record) float64 { return float64(r.Resumes) }},
	{"dagfleet_shard_lease_steals_total", "counter",
		"Expired leases on the shard stolen from dead or stalled owners.",
		func(r *Record) float64 { return float64(r.Steals) }},
	{"dagfleet_shard_fenced_commits_total", "counter",
		"Zombie commits on the shard refused by the lease fencing epoch.",
		func(r *Record) float64 { return float64(r.Fenced) }},
	{"dagfleet_shard_lease_epoch", "gauge",
		"Fencing epoch of the shard's live lease (0 when unclaimed or terminal).",
		func(r *Record) float64 { return float64(r.Epoch) }},
}

// shardStates is the fixed label universe of the state gauge, so a
// scrape always carries all four series per shard (1 on the current
// state).
var shardStates = []Status{StatusPending, StatusRunning, StatusDone, StatusFailed}

// WriteShardPrometheus renders per-shard fleet progress from manifest
// records in Prometheus text exposition format, the fleet counterpart
// of runner.WriteJobMetrics. Records are emitted in manifest order, so
// identical fleet states produce byte-identical expositions; the
// manifest is persisted atomically, so records read off disk mid-run
// are always a consistent snapshot.
func WriteShardPrometheus(w io.Writer, records []Record) error {
	for _, m := range shardMetrics {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", m.name, m.help, m.name, m.typ); err != nil {
			return err
		}
		for i := range records {
			r := &records[i]
			if _, err := fmt.Fprintf(w, "%s{shard=%q} %g\n", m.name, r.Shard.Name, m.value(r)); err != nil {
				return err
			}
		}
	}
	const state = "dagfleet_shard_state"
	if _, err := fmt.Fprintf(w, "# HELP %s Shard work-queue state (1 on the current state's series).\n# TYPE %s gauge\n", state, state); err != nil {
		return err
	}
	for i := range records {
		for _, s := range shardStates {
			v := 0
			if records[i].Status == s {
				v = 1
			}
			if _, err := fmt.Fprintf(w, "%s{shard=%q,state=%q} %d\n", state, records[i].Shard.Name, s, v); err != nil {
				return err
			}
		}
	}
	return nil
}
