package fleet

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"dagguise/internal/telem"
)

// telemReport collects a telemetry directory and returns the encoded
// deterministic report bytes.
func telemReport(t *testing.T, dir string) []byte {
	t.Helper()
	c, err := telem.Collect(dir)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.Report(nil)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := rep.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

// TestFleetTelemWorkerCountInvariant pins the telemetry half of the
// headline invariant: the collector's deterministic report is
// byte-identical whether the campaign ran on one worker or on many.
func TestFleetTelemWorkerCountInvariant(t *testing.T) {
	s := testSweep(2, 8, 6000)
	soloTelem, manyTelem := t.TempDir(), t.TempDir()
	solo := runSweep(t, s, Options{Workers: 1, Dir: t.TempDir(), CheckpointEvery: 2500, TelemDir: soloTelem})
	many := runSweep(t, s, Options{Workers: 4, Dir: t.TempDir(), CheckpointEvery: 2500, TelemDir: manyTelem})
	if !bytes.Equal(solo, many) {
		t.Fatal("fleet report depends on worker count with telemetry on")
	}
	a, b := telemReport(t, soloTelem), telemReport(t, manyTelem)
	if !bytes.Equal(a, b) {
		t.Fatalf("telemetry report depends on worker count:\n--- 1 worker ---\n%s\n--- 4 workers ---\n%s", a, b)
	}
	// The collector saw real work: spans, leak series and shard states.
	c, err := telem.Collect(manyTelem)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Spans) == 0 {
		t.Fatal("no spans stitched from a completed campaign")
	}
	leak := 0
	for _, name := range c.DB.Names() {
		if strings.HasPrefix(name, "leak/") {
			leak++
		}
	}
	if leak != len(c.Shards) {
		t.Fatalf("%d leak series for %d shards", leak, len(c.Shards))
	}
	_, _, done, _ := c.Counts()
	if done != len(c.Shards) {
		t.Fatalf("%d done of %d shards in ops fold", done, len(c.Shards))
	}
}

// TestFleetTelemIsMeasurementOnly pins Options.TelemDir's contract: the
// fleet report is byte-identical with telemetry on or off.
func TestFleetTelemIsMeasurementOnly(t *testing.T) {
	s := testSweep(2, 6, 4000)
	off := runSweep(t, s, Options{Workers: 3, Dir: t.TempDir(), CheckpointEvery: 1500})
	on := runSweep(t, s, Options{Workers: 3, Dir: t.TempDir(), CheckpointEvery: 1500, TelemDir: t.TempDir()})
	if !bytes.Equal(off, on) {
		t.Fatal("enabling telemetry changed the fleet report bytes")
	}
}

// TestFleetLogLinesAtomic pins the logf serialization contract: a
// non-thread-safe writer shared by concurrent workers receives exactly
// one whole line per Write, never fragments. bytes.Buffer has no
// internal locking, so under -race this also proves logf's mutex is the
// only thing standing between workers and a data race.
func TestFleetLogLinesAtomic(t *testing.T) {
	var buf bytes.Buffer
	s := testSweep(2, 8, 1500)
	if _, err := Run(context.Background(), s, Options{Workers: 4, Dir: t.TempDir(), Log: &buf}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if out == "" {
		t.Fatal("no log output")
	}
	if !strings.HasSuffix(out, "\n") {
		t.Fatalf("log does not end in a newline: %q", out)
	}
	for _, line := range strings.Split(strings.TrimSuffix(out, "\n"), "\n") {
		if !strings.HasPrefix(line, "fleet: ") {
			t.Fatalf("interleaved log fragment: %q", line)
		}
	}
}

// TestWriteShardPrometheus pins the per-shard exposition: fixed metric
// order, manifest record order, and the full four-state gauge universe.
func TestWriteShardPrometheus(t *testing.T) {
	recs := []Record{
		{Shard: Shard{Name: "s0"}, Status: StatusDone, Attempts: 2, Retries: 1, BackoffNs: 1_500_000_000, Checkpoints: 3, Resumes: 1},
		{Shard: Shard{Name: "s1"}, Status: StatusRunning, Attempts: 1},
	}
	var buf bytes.Buffer
	if err := WriteShardPrometheus(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	for _, want := range []string{
		"# HELP dagfleet_shard_attempts_total",
		"# TYPE dagfleet_shard_attempts_total counter",
		"dagfleet_shard_attempts_total{shard=\"s0\"} 2\n",
		"dagfleet_shard_attempts_total{shard=\"s1\"} 1\n",
		"dagfleet_shard_retries_total{shard=\"s0\"} 1\n",
		"dagfleet_shard_backoff_seconds_total{shard=\"s0\"} 1.5\n",
		"dagfleet_shard_checkpoint_writes_total{shard=\"s0\"} 3\n",
		"dagfleet_shard_resumes_total{shard=\"s0\"} 1\n",
		"# TYPE dagfleet_shard_state gauge",
		"dagfleet_shard_state{shard=\"s0\",state=\"done\"} 1\n",
		"dagfleet_shard_state{shard=\"s0\",state=\"running\"} 0\n",
		"dagfleet_shard_state{shard=\"s1\",state=\"running\"} 1\n",
		"dagfleet_shard_state{shard=\"s1\",state=\"pending\"} 0\n",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("exposition missing %q:\n%s", want, got)
		}
	}
	// Deterministic: a second render is byte-identical.
	var again bytes.Buffer
	if err := WriteShardPrometheus(&again, recs); err != nil {
		t.Fatal(err)
	}
	if got != again.String() {
		t.Fatal("exposition is not deterministic")
	}
	// Metric families appear in their fixed order.
	last := -1
	for _, name := range []string{
		"dagfleet_shard_attempts_total", "dagfleet_shard_retries_total",
		"dagfleet_shard_backoff_seconds_total", "dagfleet_shard_checkpoint_writes_total",
		"dagfleet_shard_resumes_total", "dagfleet_shard_state",
	} {
		i := strings.Index(got, "# HELP "+name)
		if i <= last {
			t.Fatalf("family %s out of order", name)
		}
		last = i
	}
}
