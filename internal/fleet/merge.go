package fleet

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"

	"dagguise/internal/config"
)

// ErrShardsIncomplete reports a merge over a manifest with unfinished or
// failed shards.
var ErrShardsIncomplete = errors.New("fleet: manifest has unfinished shards")

// SchemeVerdict is the per-scheme fold of the non-interference audit:
// whether any shard of the scheme observed a twin-run digest difference.
type SchemeVerdict struct {
	Scheme       string `json:"scheme"`
	Secure       bool   `json:"secure"`
	Shards       int    `json:"shards"`
	Interference bool   `json:"interference"`
}

// Totals aggregates the deterministic counters over every shard.
type Totals struct {
	Shards          int    `json:"shards"`
	Cycles          uint64 `json:"cycles"`
	Issued          uint64 `json:"issued"`
	Completed       uint64 `json:"completed"`
	Remote          uint64 `json:"remote"`
	Stalls          uint64 `json:"stalls"`
	ShaperForwarded uint64 `json:"shaper_forwarded"`
	ShaperFakes     uint64 `json:"shaper_fakes"`
	TapSamples      uint64 `json:"tap_samples"`
}

// Report is the merged outcome of a sweep. It contains only deterministic
// per-shard results (never the manifest's ops counters), shards sorted by
// name and verdicts sorted by scheme, so its encoding is byte-identical
// regardless of worker count, completion order or crash/resume history.
type Report struct {
	Version     int             `json:"version"`
	Fingerprint string          `json:"fingerprint"`
	Verdicts    []SchemeVerdict `json:"verdicts"`
	Totals      Totals          `json:"totals"`
	Shards      []ShardResult   `json:"shards"`
}

// Merge folds a completed manifest into the byte-stable report. Completion
// order does not matter; any shard that is not done is an error.
func Merge(m *Manifest) (*Report, error) {
	rep := &Report{Version: ManifestVersion, Fingerprint: m.Fingerprint}
	for i := range m.Records {
		rec := &m.Records[i]
		if rec.Status != StatusDone || rec.Result == nil {
			return nil, fmt.Errorf("%w: shard %s is %s (%s)",
				ErrShardsIncomplete, rec.Shard.Name, rec.Status, rec.Error)
		}
		rep.Shards = append(rep.Shards, *rec.Result)
	}
	sort.Slice(rep.Shards, func(i, j int) bool { return rep.Shards[i].Name < rep.Shards[j].Name })
	byScheme := make(map[string]*SchemeVerdict)
	for i := range rep.Shards {
		r := &rep.Shards[i]
		rep.Totals.Shards++
		rep.Totals.Cycles += r.Cycles
		rep.Totals.Issued += r.Counters.Issued
		rep.Totals.Completed += r.Counters.Completed
		rep.Totals.Remote += r.Counters.Remote
		rep.Totals.Stalls += r.Counters.Stalls
		rep.Totals.ShaperForwarded += r.Counters.ShaperForwarded
		rep.Totals.ShaperFakes += r.Counters.ShaperFakes
		rep.Totals.TapSamples += r.Counters.TapSamples
		v := byScheme[r.Scheme]
		if v == nil {
			scheme, err := config.ParseScheme(r.Scheme)
			if err != nil {
				return nil, err
			}
			v = &SchemeVerdict{Scheme: r.Scheme, Secure: scheme.Secure()}
			byScheme[r.Scheme] = v
		}
		v.Shards++
		v.Interference = v.Interference || r.Interference
	}
	for _, v := range byScheme {
		rep.Verdicts = append(rep.Verdicts, *v)
	}
	sort.Slice(rep.Verdicts, func(i, j int) bool { return rep.Verdicts[i].Scheme < rep.Verdicts[j].Scheme })
	return rep, nil
}

// Encode serializes the report deterministically (indented JSON plus a
// trailing newline — the bytes the fleet-soak CI job diffs).
func (r *Report) Encode() ([]byte, error) {
	blob, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(blob, '\n'), nil
}

// Gate enforces the non-interference contract over the merged report:
// every secure scheme must be clean on every shard, and every insecure
// scheme must have tripped somewhere (a baseline that cannot leak means
// the observable is too weak to certify anything).
func (r *Report) Gate() error {
	for _, v := range r.Verdicts {
		if v.Secure && v.Interference {
			return fmt.Errorf("fleet: secure scheme %s showed interference", v.Scheme)
		}
		if !v.Secure && !v.Interference {
			return fmt.Errorf("fleet: insecure scheme %s did not trip the audit; observable too weak", v.Scheme)
		}
	}
	return nil
}
