package fleet

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"time"

	"dagguise/internal/ckpt"
	"dagguise/internal/fault"
	"dagguise/internal/runner"
)

// CorruptSuffix is appended to quarantined artifacts: a torn or
// checksum-failed manifest, lease or checkpoint is renamed aside (never
// deleted, so a post-mortem can inspect it) and treated as absent.
const CorruptSuffix = ".corrupt"

// fsio is the fleet's durable-IO layer: every manifest, lease,
// checkpoint and result write funnels through it so a fault.FSSchedule
// can perturb the storage underneath the coordination protocol. Writes
// that draw an injected fault retry with runner.BackoffDelay; reads that
// hit a corrupt artifact quarantine it to *.corrupt and report
// fs.ErrNotExist, which every caller already treats as "start fresh".
// A zero-value fsio (nil injector) is the production path: plain
// ckpt.WriteFileAtomic semantics with no retries needed.
type fsio struct {
	inj     *fault.FSInjector
	retries int
	backoff time.Duration
	maxWait time.Duration
	seed    int64
	// onFault observes every injected fault (counter hook); onQuarantine
	// observes every quarantined artifact. Both may be nil.
	onFault      func(kind fault.FSKind, path string)
	onQuarantine func(path string, cause error)
}

// newFSIO builds the durable-IO layer; inj may be nil (no injection).
func newFSIO(inj *fault.FSInjector, backoff, maxWait time.Duration) *fsio {
	if backoff <= 0 {
		backoff = 5 * time.Millisecond
	}
	if maxWait <= 0 {
		maxWait = 250 * time.Millisecond
	}
	return &fsio{inj: inj, retries: 8, backoff: backoff, maxWait: maxWait, seed: 0x46534943}
}

// fault applies the next operation's injected faults. It returns a
// non-nil error when the operation must fail this attempt; torn writes
// deposit their partial artifact at path first.
func (f *fsio) fault(path string, data []byte) error {
	for _, ev := range f.inj.NextOp() {
		if f.onFault != nil {
			f.onFault(ev.Kind, path)
		}
		switch ev.Kind {
		case fault.FSWriteEIO:
			return fmt.Errorf("%w: %s", fault.ErrInjectedIO, path)
		case fault.FSTornWrite:
			// A non-atomic writer died mid-write: half the payload lands
			// at the target path directly, bypassing the atomic protocol.
			_ = os.WriteFile(path, data[:len(data)/2], 0o644)
			return fmt.Errorf("%w: torn write %s", fault.ErrInjectedIO, path)
		case fault.FSRenameStall, fault.FSFsyncDelay:
			time.Sleep(time.Duration(ev.DelayMs) * time.Millisecond)
		}
	}
	return nil
}

// writeAtomic durably writes data to path under fault injection,
// retrying injected failures with deterministic backoff.
func (f *fsio) writeAtomic(path string, data []byte) error {
	for attempt := 0; ; attempt++ {
		err := f.fault(path, data)
		if err == nil {
			err = ckpt.WriteFileAtomic(path, data)
		}
		if err == nil {
			return nil
		}
		if attempt >= f.retries || !errors.Is(err, fault.ErrInjectedIO) {
			return err
		}
		time.Sleep(runner.BackoffDelay(f.backoff, f.maxWait, f.seed, attempt))
	}
}

// saveFrame writes a checksum-framed payload durably (the checkpoint and
// result format) under fault injection.
func (f *fsio) saveFrame(path string, payload []byte) error {
	return f.writeAtomic(path, ckpt.Frame(payload))
}

// loadFrame reads a framed artifact. Absent files return fs.ErrNotExist
// untouched; corrupt ones (torn writes, checksum failures) are
// quarantined to path+CorruptSuffix and reported as absent, so the
// caller regenerates or re-fetches the artifact instead of aborting.
func (f *fsio) loadFrame(path string) ([]byte, error) {
	payload, err := ckpt.LoadFrame(path)
	if err == nil {
		return payload, nil
	}
	if errors.Is(err, fs.ErrNotExist) {
		return nil, err
	}
	f.quarantine(path, err)
	return nil, fmt.Errorf("fleet: quarantined corrupt %s: %w", path, fs.ErrNotExist)
}

// readFile reads a raw artifact (leases, manifests) with the same
// quarantine discipline as loadFrame; validate reports whether the bytes
// parse, so torn JSON is quarantined rather than surfaced.
func (f *fsio) readFile(path string, validate func([]byte) error) ([]byte, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if validate != nil {
		if verr := validate(blob); verr != nil {
			f.quarantine(path, verr)
			return nil, fmt.Errorf("fleet: quarantined corrupt %s: %w", path, fs.ErrNotExist)
		}
	}
	return blob, nil
}

// quarantine renames a corrupt artifact aside.
func (f *fsio) quarantine(path string, cause error) {
	if err := os.Rename(path, path+CorruptSuffix); err != nil {
		// Already quarantined by a peer (or vanished): nothing to keep.
		_ = os.Remove(path)
	}
	if f.onQuarantine != nil {
		f.onQuarantine(path, cause)
	}
}
