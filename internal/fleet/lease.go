package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
	"time"

	"dagguise/internal/fault"
)

// Lease file naming inside a fleet directory: <name>.lease is the live
// claim, <name>.tomb is the fencing grave a terminated lease leaves
// behind (see LeaseManager for the epoch rules).
const (
	LeaseSuffix = ".lease"
	TombSuffix  = ".tomb"
)

// ErrFenced reports a commit or renewal attempted with a stale lease: the
// holder slept past its expiry, a peer stole the claim, and the fencing
// check refused the zombie's write. The stolen work is owned by the
// thief; the fenced worker must abandon the shard, never retry it.
var ErrFenced = errors.New("fleet: lease fenced by a newer owner")

// ErrLeaseHeld reports a claim attempt on a lease another owner holds and
// is still renewing; the claimer moves on to other work.
var ErrLeaseHeld = errors.New("fleet: lease held by a live owner")

// Lease is the on-disk claim on one unit of work: who owns it, the
// monotonic fencing epoch of this ownership generation, and the wall
// clock past which the owner is presumed dead and the claim stealable.
type Lease struct {
	Name          string `json:"name"`
	Owner         string `json:"owner"`
	Epoch         uint64 `json:"epoch"`
	ExpiresUnixMs int64  `json:"expires_unix_ms"`
}

// LeaseManager implements lease-based claims over a shared directory, the
// coordination fabric that lets K independent fleet processes share one
// work queue with no channel between them but the filesystem:
//
//   - Claim: the lease file is created with O_CREATE|O_EXCL — exactly one
//     racer's create succeeds. The new lease's epoch is the tomb's
//     epoch + 1 (0 when no tomb exists), so epochs grow monotonically
//     across ownership generations.
//   - Renew: the holder's heartbeat rewrites the lease (atomic rename)
//     with a fresh expiry. A renewal that finds another owner in the file
//     returns ErrFenced — the holder was stolen from while asleep.
//   - Steal: a claimer that finds an expired lease renames it to the tomb
//     file. Rename is the arbiter: only one racer renames the current
//     inode (the rest get ENOENT and re-enter the claim loop), and the
//     tomb then carries the dead generation's epoch for the successor.
//   - Release: a voluntary termination also renames lease → tomb, so the
//     epoch chain stays monotonic across clean handoffs too.
//
// One documented race is accepted: a steal validates expiry and then
// renames, so a renewal landing in that window can lose a live lease.
// Safety is unaffected — the old owner's next renewal or commit fences —
// and the fleet's results are deterministic, so even a doubly-run shard
// commits identical bytes.
type LeaseManager struct {
	dir   string
	ttl   time.Duration
	grace time.Duration
	io    *fsio
	// now is the wall clock, injectable for tests.
	now func() time.Time
}

// NewLeaseManager builds a lease manager over dir. ttl is the renewal
// deadline a holder must beat; expired leases become stealable after a
// further ttl/4 grace (clock-skew margin). A nil io selects the plain
// durable-write path.
func NewLeaseManager(dir string, ttl time.Duration, io *fsio) *LeaseManager {
	if ttl <= 0 {
		ttl = 10 * time.Second
	}
	if io == nil {
		io = newFSIO(nil, 0, 0)
	}
	return &LeaseManager{
		dir:   dir,
		ttl:   ttl,
		grace: ttl / 4,
		io:    io,
		now:   time.Now,
	}
}

// TTL returns the lease renewal deadline.
func (lm *LeaseManager) TTL() time.Duration { return lm.ttl }

// Held is an acquired lease: the handle that renews, fences commits, and
// releases the claim.
type Held struct {
	lm    *LeaseManager
	name  string
	owner string
	epoch uint64
	// stole reports that acquiring this lease evicted an expired
	// predecessor (telemetry: the steal is attributed to this owner).
	stole bool
}

// Name returns the leased work unit's name.
func (h *Held) Name() string { return h.name }

// Owner returns the holder identity the lease was acquired under.
func (h *Held) Owner() string { return h.owner }

// Epoch returns the fencing epoch of this ownership generation.
func (h *Held) Epoch() uint64 { return h.epoch }

// Stole reports whether the acquisition evicted an expired lease.
func (h *Held) Stole() bool { return h.stole }

func (lm *LeaseManager) leasePath(name string) string {
	return filepath.Join(lm.dir, name+LeaseSuffix)
}

func (lm *LeaseManager) tombPath(name string) string {
	return filepath.Join(lm.dir, name+TombSuffix)
}

// read parses the lease (or tomb) at path, quarantining torn or garbage
// files so a crashed writer cannot wedge the claim loop.
func (lm *LeaseManager) read(path string) (Lease, error) {
	var l Lease
	blob, err := lm.io.readFile(path, func(b []byte) error {
		var probe Lease
		if err := json.Unmarshal(b, &probe); err != nil {
			return err
		}
		if probe.Name == "" || probe.Owner == "" {
			return fmt.Errorf("fleet: lease %s missing name or owner", path)
		}
		return nil
	})
	if err != nil {
		return Lease{}, err
	}
	// The validator above proved the bytes parse.
	_ = json.Unmarshal(blob, &l)
	return l, nil
}

// Peek returns the current lease on name and whether it is still live
// (within expiry + grace). ok is false when no lease file exists.
func (lm *LeaseManager) Peek(name string) (l Lease, live, ok bool) {
	l, err := lm.read(lm.leasePath(name))
	if err != nil {
		return Lease{}, false, false
	}
	return l, lm.now().UnixMilli() < l.ExpiresUnixMs+lm.grace.Milliseconds(), true
}

// Acquire claims the lease on name for owner. It returns ErrLeaseHeld
// when a live owner holds it; expired leases are stolen through the tomb
// protocol. The returned Held carries the new generation's epoch.
func (lm *LeaseManager) Acquire(name, owner string) (*Held, error) {
	path := lm.leasePath(name)
	stole := false
	for attempt := 0; ; attempt++ {
		if attempt > 64 {
			return nil, fmt.Errorf("fleet: lease %s: claim loop livelocked", name)
		}
		cur, err := lm.read(path)
		switch {
		case err == nil && cur.Owner == owner:
			// Our own residue (a crashed prior incarnation of this exact
			// owner id): owner ids embed a per-process nonce, so this is
			// us — adopt the generation and renew it.
			h := &Held{lm: lm, name: name, owner: owner, epoch: cur.Epoch, stole: stole}
			if err := lm.Renew(h); err != nil {
				continue
			}
			return h, nil
		case err == nil && lm.now().UnixMilli() < cur.ExpiresUnixMs+lm.grace.Milliseconds():
			return nil, fmt.Errorf("%w: %s owned by %s (epoch %d)", ErrLeaseHeld, name, cur.Owner, cur.Epoch)
		case err == nil:
			// Expired: steal by renaming lease → tomb. Exactly one racer
			// wins the rename; losers loop and find the fresh state.
			if err := os.Rename(path, lm.tombPath(name)); err != nil {
				if errors.Is(err, fs.ErrNotExist) {
					continue
				}
				return nil, err
			}
			lm.syncDir()
			stole = true
			continue
		case !errors.Is(err, fs.ErrNotExist):
			return nil, err
		}
		// No lease: claim a fresh generation above the tomb's epoch.
		epoch := uint64(1)
		if tomb, terr := lm.read(lm.tombPath(name)); terr == nil {
			epoch = tomb.Epoch + 1
		}
		l := Lease{Name: name, Owner: owner, Epoch: epoch, ExpiresUnixMs: lm.now().Add(lm.ttl).UnixMilli()}
		err = lm.createExcl(path, l)
		switch {
		case err == nil:
			return &Held{lm: lm, name: name, owner: owner, epoch: epoch, stole: stole}, nil
		case errors.Is(err, fs.ErrExist):
			continue // lost the create race
		case errors.Is(err, fault.ErrInjectedIO):
			continue // our torn residue; the next read quarantines it
		default:
			return nil, err
		}
	}
}

// createExcl writes a fresh lease with O_CREATE|O_EXCL semantics: the
// atomicity of the claim comes from the exclusive create, so this path
// cannot use the rename protocol. Injected faults may leave a torn lease
// at the path; the claim loop's read quarantines it and retries.
func (lm *LeaseManager) createExcl(path string, l Lease) error {
	blob, err := json.Marshal(l)
	if err != nil {
		return err
	}
	if err := lm.io.fault(path, blob); err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(blob); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	lm.syncDir()
	return nil
}

// Renew extends the holder's expiry. It re-reads the lease first: a file
// now owned by someone else (or gone) means this holder was stolen from,
// and the renewal fails with ErrFenced.
func (lm *LeaseManager) Renew(h *Held) error {
	path := lm.leasePath(h.name)
	cur, err := lm.read(path)
	if err != nil || cur.Owner != h.owner || cur.Epoch != h.epoch {
		return fmt.Errorf("%w: %s renewing epoch %d, lease is %s", ErrFenced, h.owner, h.epoch, describeLease(cur, err))
	}
	cur.ExpiresUnixMs = lm.now().Add(lm.ttl).UnixMilli()
	blob, err := json.Marshal(cur)
	if err != nil {
		return err
	}
	return lm.io.writeAtomic(path, blob)
}

// Release terminates the holder's generation, leaving the tomb so the
// next claim's epoch stays above this one. A holder that was already
// stolen from releases nothing (the thief owns the file now).
func (lm *LeaseManager) Release(h *Held) {
	path := lm.leasePath(h.name)
	cur, err := lm.read(path)
	if err != nil || cur.Owner != h.owner || cur.Epoch != h.epoch {
		return
	}
	if err := os.Rename(path, lm.tombPath(h.name)); err == nil {
		lm.syncDir()
	}
}

// Check re-validates ownership: the fencing gate commit paths call before
// publishing results. ErrFenced means a newer generation owns the work.
func (lm *LeaseManager) Check(h *Held) error {
	cur, err := lm.read(lm.leasePath(h.name))
	if err != nil || cur.Owner != h.owner || cur.Epoch != h.epoch {
		return fmt.Errorf("%w: %s holds epoch %d, lease is %s", ErrFenced, h.owner, h.epoch, describeLease(cur, err))
	}
	return nil
}

// Heartbeat renews the lease every TTL/3 until ctx ends or the stop
// function is called; a fencing failure invokes onFence once and ends
// the loop. It returns the stop function.
func (lm *LeaseManager) Heartbeat(ctx context.Context, h *Held, onFence func(error)) (stop func()) {
	done := make(chan struct{})
	stopCh := make(chan struct{})
	go func() {
		defer close(done)
		tick := time.NewTicker(lm.ttl / 3)
		defer tick.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-stopCh:
				return
			case <-tick.C:
				if err := lm.Renew(h); err != nil {
					if errors.Is(err, ErrFenced) && onFence != nil {
						onFence(err)
					}
					return
				}
			}
		}
	}()
	return sync.OnceFunc(func() {
		close(stopCh)
		<-done
	})
}

// syncDir fsyncs the lease directory so renames and creates are durable
// before the caller proceeds on their strength.
func (lm *LeaseManager) syncDir() {
	if d, err := os.Open(lm.dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
}

// describeLease renders the competing lease state for fencing errors.
func describeLease(l Lease, err error) string {
	if err != nil {
		return "gone"
	}
	return fmt.Sprintf("owned by %s (epoch %d)", l.Owner, l.Epoch)
}
