package fleet

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"sync"
	"time"

	"dagguise/internal/obs"
	"dagguise/internal/runner"
	"dagguise/internal/sim"
	"dagguise/internal/telem"
)

// Options configures a fleet run.
type Options struct {
	// Workers is the pool size; <= 0 selects GOMAXPROCS.
	Workers int
	// Dir holds the manifest and the per-shard checkpoint frames.
	Dir string
	// CheckpointEvery is the per-shard checkpoint interval in simulated
	// cycles (0 = no mid-shard checkpoints; shards still resume at shard
	// granularity via the manifest).
	CheckpointEvery uint64
	// Retries is how many times a failing shard is retried before it is
	// marked failed; between attempts the worker sleeps
	// runner.BackoffDelay (deterministic capped exponential, seeded by
	// the shard).
	Retries int
	// Backoff and MaxBackoff bound the retry delay.
	Backoff    time.Duration
	MaxBackoff time.Duration
	// Log receives progress lines (nil = quiet). Log output is wall-clock
	// ordered and is not part of any byte-stable artifact.
	Log io.Writer
	// Spans, when set, records one span per shard attempt on the runner
	// lane of the flight recorder.
	Spans *obs.Spans
	// Mx, when set, receives fleet counters (shards done/failed/retried,
	// checkpoints, resumes) under domain 0.
	Mx *obs.Registry
	// TelemDir, when set, enables the fleet telemetry plane: every
	// worker appends a durable telem stream there (plus a campaign-level
	// "fleet" stream), for telem.Collect / dagtop / dagmon to fold.
	// Telemetry is measurement-only: manifest, checkpoints, report and
	// log bytes are identical with it on or off.
	TelemDir string
}

// Pool executes a sweep's manifest over a worker pool. All manifest
// mutation happens under one mutex and every transition is saved durably
// before the work proceeds, so a SIGKILL at any instant leaves a queue the
// next incarnation resumes exactly.
type pool struct {
	opts     Options
	sweep    Sweep
	manifest *Manifest
	path     string
	mu       sync.Mutex
	// telem holds one emitter per worker (nil slice when telemetry is
	// off; emitters themselves are nil-safe).
	telem []*telem.Emitter
}

// Run executes the sweep: it creates or resumes the manifest in opts.Dir,
// fans the pending shards out over the worker pool, and merges the
// completed manifest into the byte-stable report. On context cancellation
// it returns ctx.Err() after parking claimed shards back to pending; a
// subsequent Run with the same sweep resumes them.
func Run(ctx context.Context, sweep Sweep, opts Options) (*Report, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("fleet: options need a directory for the manifest")
	}
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, err
	}
	path := filepath.Join(opts.Dir, ManifestName)
	var m *Manifest
	var requeued []string
	if _, err := os.Stat(path); err == nil {
		m, err = LoadManifest(path)
		if err != nil {
			return nil, err
		}
		if err := m.Matches(sweep); err != nil {
			return nil, err
		}
		for i := range m.Records {
			if m.Records[i].Status == StatusRunning {
				requeued = append(requeued, m.Records[i].Shard.Name)
			}
		}
		if n := m.Requeue(); n > 0 {
			logf(opts.Log, "fleet: re-queued %d shard(s) left running by a dead fleet\n", n)
		}
	} else {
		m, err = NewManifest(sweep)
		if err != nil {
			return nil, err
		}
	}
	p := &pool{opts: opts, sweep: sweep, manifest: m, path: path}
	var campaign *telem.Emitter
	if opts.TelemDir != "" {
		fp := m.Fingerprint
		e, err := telem.OpenEmitter(opts.TelemDir, "fleet", fp)
		if err != nil {
			return nil, err
		}
		campaign = e
		defer campaign.Close()
		campaign.Campaign(len(m.Records), opts.Workers, sweep.Cycles)
		for _, name := range requeued {
			campaign.Shard(name, telem.EventRequeue, "", 0)
		}
		if err := campaign.Sync(); err != nil {
			return nil, err
		}
		p.telem = make([]*telem.Emitter, opts.Workers)
		for w := range p.telem {
			we, err := telem.OpenEmitter(opts.TelemDir, strconv.Itoa(w), fp)
			if err != nil {
				return nil, err
			}
			p.telem[w] = we
			defer we.Close()
		}
	}
	if err := p.save(); err != nil {
		return nil, err
	}
	pending, _, done, _ := m.Counts()
	logf(opts.Log, "fleet: %d shard(s), %d already done, %d worker(s)\n", len(m.Records), done, opts.Workers)
	if pending > 0 {
		var wg sync.WaitGroup
		for w := 0; w < opts.Workers; w++ {
			wg.Add(1)
			go func(worker int) {
				defer wg.Done()
				p.work(ctx, worker)
			}(w)
		}
		var mxWG sync.WaitGroup
		stopMx := make(chan struct{})
		if campaign != nil && opts.Mx != nil {
			// Periodic fleet counter deltas onto the campaign stream (ops
			// plane): one snapshot diff per tick, one final flush on stop.
			mxWG.Add(1)
			go func() {
				defer mxWG.Done()
				var prev *obs.Snapshot
				tick := time.NewTicker(time.Second)
				defer tick.Stop()
				for {
					select {
					case <-stopMx:
						campaign.Metrics(opts.Mx.Snapshot(), prev)
						_ = campaign.Sync()
						return
					case <-tick.C:
						snap := opts.Mx.Snapshot()
						campaign.Metrics(snap, prev)
						prev = snap
					}
				}
			}()
		}
		wg.Wait()
		close(stopMx)
		mxWG.Wait()
	}
	if err := ctx.Err(); err != nil {
		p.mu.Lock()
		defer p.mu.Unlock()
		_, _, done, _ := p.manifest.Counts()
		logf(opts.Log, "fleet: interrupted with %d/%d shard(s) done; rerun to resume\n", done, len(p.manifest.Records))
		return nil, err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return Merge(p.manifest)
}

// save persists the manifest; callers must hold no lock (claim/finish take
// it themselves) or the pool lock consistently. It is only called with
// p.mu held except during construction.
func (p *pool) save() error {
	return p.manifest.Save(p.path)
}

// claim atomically picks the lowest-index pending shard, marks it running
// and persists the transition. ok is false when no pending work remains.
func (p *pool) claim(worker int) (idx int, ok bool, err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := range p.manifest.Records {
		if p.manifest.Records[i].Status != StatusPending {
			continue
		}
		p.manifest.Records[i].Status = StatusRunning
		p.manifest.Records[i].Worker = worker
		p.manifest.Records[i].Attempts++
		if err := p.save(); err != nil {
			return 0, false, err
		}
		return i, true, nil
	}
	return 0, false, nil
}

// finish records a terminal (or parked) state for a claimed shard.
func (p *pool) finish(idx int, status Status, res *ShardResult, cause error) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	rec := &p.manifest.Records[idx]
	rec.Status = status
	rec.Result = res
	rec.Error = ""
	if cause != nil {
		rec.Error = cause.Error()
	}
	return p.save()
}

// bump applies a counter mutation to a record under the pool lock.
func (p *pool) bump(idx int, f func(*Record)) {
	p.mu.Lock()
	f(&p.manifest.Records[idx])
	p.mu.Unlock()
}

// emitter returns the worker's telemetry emitter (nil when telemetry is
// off — every emitter method is nil-safe).
func (p *pool) emitter(worker int) *telem.Emitter {
	if worker < len(p.telem) {
		return p.telem[worker]
	}
	return nil
}

// work is one worker's loop: claim, execute with panic isolation, retry
// with deterministic backoff, record, repeat until the queue drains or the
// context is cancelled.
func (p *pool) work(ctx context.Context, worker int) {
	for {
		if ctx.Err() != nil {
			return
		}
		idx, ok, err := p.claim(worker)
		if err != nil || !ok {
			return
		}
		rec := func() Record {
			p.mu.Lock()
			defer p.mu.Unlock()
			return p.manifest.Records[idx]
		}()
		sh := rec.Shard
		e := p.emitter(worker)
		e.Shard(sh.Name, telem.EventClaim, "", sh.Cycles)
		_ = e.Sync()
		var res *ShardResult
		var cause error
		for attempt := 0; ; attempt++ {
			span := uint64(0)
			if p.opts.Spans != nil {
				span = p.opts.Spans.Begin("shard:"+sh.Name, obs.CompRunner, int32(idx), 0, 0, 0)
			}
			res, cause = p.runShard(ctx, idx, sh, e)
			if p.opts.Spans != nil {
				p.opts.Spans.End(span, sh.Cycles)
			}
			if cause == nil || ctx.Err() != nil || attempt >= p.opts.Retries {
				break
			}
			delay := runner.BackoffDelay(p.opts.Backoff, p.opts.MaxBackoff, sh.Seed, attempt)
			p.bump(idx, func(r *Record) {
				r.Retries++
				r.BackoffNs += int64(delay)
			})
			p.opts.Mx.Inc(obs.CtrFleetRetries, 0)
			e.Shard(sh.Name, telem.EventRetry, cause.Error(), 0)
			logf(p.opts.Log, "fleet: worker %d shard %s attempt %d failed (%v); retrying in %s\n",
				worker, sh.Name, attempt+1, cause, delay)
			select {
			case <-ctx.Done():
			case <-time.After(delay):
			}
		}
		// Telemetry for a terminal state is emitted AND synced before the
		// manifest transition is saved: the durable stream is never
		// behind the durable manifest, so a resumed collector always sees
		// every shard the manifest says finished.
		switch {
		case cause == nil:
			e.SpanBegin(sh.Name, "shard:"+sh.Name, 0)
			e.SpanEnd(sh.Name, "shard:"+sh.Name, 0, sh.Cycles)
			leak := 0.0
			if res.Interference {
				leak = 1
			}
			e.Point("leak/"+sh.Scheme+"/"+sh.Name, sh.Cycles, leak)
			e.Shard(sh.Name, telem.EventDone, "", sh.Cycles)
			_ = e.Sync()
			_ = p.finish(idx, StatusDone, res, nil)
			p.opts.Mx.Inc(obs.CtrFleetShardsDone, 0)
			logf(p.opts.Log, "fleet: worker %d shard %s done\n", worker, sh.Name)
		case ctx.Err() != nil:
			// Interrupted, not failed: park the shard for the resume.
			e.Shard(sh.Name, telem.EventRequeue, "", 0)
			_ = e.Sync()
			_ = p.finish(idx, StatusPending, nil, nil)
		default:
			e.Shard(sh.Name, telem.EventFailed, cause.Error(), 0)
			_ = e.Sync()
			_ = p.finish(idx, StatusFailed, nil, cause)
			p.opts.Mx.Inc(obs.CtrFleetShardsFailed, 0)
			logf(p.opts.Log, "fleet: worker %d shard %s FAILED: %v\n", worker, sh.Name, cause)
		}
	}
}

// runShard executes one attempt with panic isolation: a panicking shard
// (a seeded fault-injection campaign gone wrong, a model bug) takes down
// its attempt, not the fleet.
func (p *pool) runShard(ctx context.Context, idx int, sh Shard, e *telem.Emitter) (res *ShardResult, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, fmt.Errorf("fleet: shard %s panicked: %v", sh.Name, r)
		}
	}()
	return RunShard(ctx, p.sweep.Config, sh, ShardOptions{
		Dir:     p.opts.Dir,
		Every:   p.opts.CheckpointEvery,
		SecretA: p.sweep.SecretA,
		SecretB: p.sweep.SecretB,
		OnCheckpoint: func() {
			p.bump(idx, func(r *Record) { r.Checkpoints++ })
			p.opts.Mx.Inc(obs.CtrFleetCheckpoints, 0)
		},
		OnResume: func() {
			p.bump(idx, func(r *Record) { r.Resumes++ })
			p.opts.Mx.Inc(obs.CtrFleetResumes, 0)
		},
		OnChunk: func(lo, hi uint64, c sim.ClusterCounters) {
			if e == nil {
				return
			}
			// Chunk bounds are deterministic (multiples of the
			// checkpoint interval), so a crash-replayed chunk re-emits
			// byte-identical deterministic records and the collector's
			// dedup collapses them. The Sync runs before RunShard cuts
			// the chunk's checkpoint — see ShardOptions.OnChunk.
			e.Heartbeat(sh.Name, hi)
			e.SpanBegin(sh.Name, "chunk", lo)
			e.SpanEnd(sh.Name, "chunk", lo, hi)
			e.Point("completed/"+sh.Name, hi, float64(c.Completed))
			e.Point("issued/"+sh.Name, hi, float64(c.Issued))
			e.Point("stalls/"+sh.Name, hi, float64(c.Stalls))
			_ = e.Sync()
		},
	})
}

// logMu serializes fleet log lines: logf formats first and issues one
// Write under the lock, so concurrent workers sharing a log writer can
// interleave whole lines but never fragments of them.
var logMu sync.Mutex

func logf(w io.Writer, format string, args ...interface{}) {
	if w == nil {
		return
	}
	line := fmt.Sprintf(format, args...)
	logMu.Lock()
	defer logMu.Unlock()
	_, _ = io.WriteString(w, line)
}
