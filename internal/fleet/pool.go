package fleet

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"sync"
	"time"

	"dagguise/internal/fault"
	"dagguise/internal/obs"
	"dagguise/internal/runner"
	"dagguise/internal/sim"
	"dagguise/internal/telem"
)

// Options configures a fleet run.
type Options struct {
	// Workers is the pool size; <= 0 selects GOMAXPROCS.
	Workers int
	// Dir holds the manifest, the per-shard checkpoint frames, and the
	// lease/result/failed files of the multi-process protocol.
	Dir string
	// CheckpointEvery is the per-shard checkpoint interval in simulated
	// cycles (0 = no mid-shard checkpoints; shards still resume at shard
	// granularity via the manifest).
	CheckpointEvery uint64
	// Retries is how many times a failing shard is retried before it is
	// marked failed; between attempts the worker sleeps
	// runner.BackoffDelay (deterministic capped exponential, seeded by
	// the shard).
	Retries int
	// Backoff and MaxBackoff bound the retry delay.
	Backoff    time.Duration
	MaxBackoff time.Duration
	// Log receives progress lines (nil = quiet). Log output is wall-clock
	// ordered and is not part of any byte-stable artifact.
	Log io.Writer
	// Spans, when set, records one span per shard attempt on the runner
	// lane of the flight recorder.
	Spans *obs.Spans
	// Mx, when set, receives fleet counters (shards done/failed/retried,
	// checkpoints, resumes, lease steals, fenced commits, storage faults)
	// under domain 0.
	Mx *obs.Registry
	// TelemDir, when set, enables the fleet telemetry plane: every
	// worker appends a durable telem stream there (plus a campaign-level
	// "fleet" stream), for telem.Collect / dagtop / dagmon to fold.
	// Telemetry is measurement-only: manifest, checkpoints, report and
	// log bytes are identical with it on or off.
	TelemDir string
	// Proc names this process when several cooperate on one fleet
	// directory (dagchaos -join). It namespaces the telemetry streams
	// (<proc>-w<i>, fleet-<proc>) and prefixes the lease owner ids; empty
	// selects the single-process stream names and a pid-derived owner
	// prefix. Worker coordination is identical either way — claims always
	// go through the lease protocol.
	Proc string
	// LeaseTTL is the shard-lease renewal deadline: a worker's heartbeat
	// renews every TTL/3, and a lease unrenewed past TTL (+TTL/4 grace)
	// is presumed dead and stealable. Zero selects 10s. Keep it well
	// above the longest checkpoint interval's wall time; a too-short TTL
	// costs duplicated work (and fenced zombies), never correctness.
	LeaseTTL time.Duration
	// FS, when set, injects seeded storage faults (torn writes, EIO,
	// rename stalls, fsync delays) under every manifest, lease,
	// checkpoint and result write — the fleet's own chaos campaign.
	// Injected failures are retried with deterministic backoff and torn
	// artifacts quarantined to *.corrupt; the merged report bytes are
	// unaffected.
	FS *fault.FSInjector
}

// Pool executes a sweep's manifest over a worker pool. Shard ownership is
// arbitrated by per-shard lease files in the fleet directory — never by
// the in-process mutex — so K independent processes pointed at the same
// directory cooperate purely through shared storage: claims are exclusive
// creates, liveness is heartbeat renewal, crashed owners are stolen from
// after TTL, and the fencing epoch keeps any zombie from overwriting a
// committed result. The local manifest is a durable cache of that
// authoritative per-shard state (results, failure markers, leases),
// rebuilt by Reconcile on every start.
type pool struct {
	opts     Options
	sweep    Sweep
	manifest *Manifest
	path     string
	proc     string
	poll     time.Duration
	lm       *LeaseManager
	io       *fsio
	mu       sync.Mutex
	// telem holds one emitter per worker (nil slice when telemetry is
	// off; emitters themselves are nil-safe).
	telem []*telem.Emitter
}

// Run executes the sweep: it creates or resumes the manifest in opts.Dir,
// fans the non-terminal shards out over the worker pool under the lease
// protocol, waits out (or steals from) any peer processes working the
// same directory, and merges the completed manifest into the byte-stable
// report. On context cancellation it returns ctx.Err() after parking
// claimed shards back to pending and releasing their leases; a subsequent
// Run with the same sweep resumes them.
func Run(ctx context.Context, sweep Sweep, opts Options) (*Report, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("fleet: options need a directory for the manifest")
	}
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, err
	}
	fsio := newFSIO(opts.FS, opts.Backoff, opts.MaxBackoff)
	fsio.onFault = func(kind fault.FSKind, path string) {
		opts.Mx.Inc(obs.CtrFleetFSFaults, 0)
		logf(opts.Log, "fleet: injected %s fault on %s\n", kind, filepath.Base(path))
	}
	fsio.onQuarantine = func(path string, cause error) {
		logf(opts.Log, "fleet: quarantined corrupt %s (%v)\n", filepath.Base(path), cause)
	}
	lm := NewLeaseManager(opts.Dir, opts.LeaseTTL, fsio)
	proc := opts.Proc
	if proc == "" {
		proc = fmt.Sprintf("solo-%d", os.Getpid())
	}
	poll := lm.TTL() / 4
	if poll > 500*time.Millisecond {
		poll = 500 * time.Millisecond
	}
	if poll < 10*time.Millisecond {
		poll = 10 * time.Millisecond
	}

	path := filepath.Join(opts.Dir, ManifestName)
	var m *Manifest
	if _, err := os.Stat(path); err == nil {
		m, err = LoadManifest(path)
		switch {
		case err == nil:
			if merr := m.Matches(sweep); merr != nil {
				return nil, merr
			}
		case errors.Is(err, ErrManifestMismatch):
			return nil, err
		default:
			// A torn or hand-mangled manifest is quarantined and rebuilt:
			// the per-shard result/failed/lease files are the
			// authoritative state, and Reconcile below re-derives the
			// queue from them.
			fsio.quarantine(path, err)
			m = nil
		}
	}
	if m == nil {
		var err error
		m, err = NewManifest(sweep)
		if err != nil {
			return nil, err
		}
	}
	p := &pool{opts: opts, sweep: sweep, manifest: m, path: path, proc: proc, poll: poll, lm: lm, io: fsio}
	requeued := Reconcile(m, opts.Dir, lm, fsio)
	if len(requeued) > 0 {
		logf(opts.Log, "fleet: re-queued %d shard(s) with lapsed leases\n", len(requeued))
	}
	var campaign *telem.Emitter
	if opts.TelemDir != "" {
		fp := m.Fingerprint
		e, err := telem.OpenEmitter(opts.TelemDir, p.campaignStream(), fp)
		if err != nil {
			return nil, err
		}
		campaign = e
		defer campaign.Close()
		campaign.Campaign(len(m.Records), opts.Workers, sweep.Cycles)
		for _, name := range requeued {
			campaign.Shard(name, telem.EventRequeue, "", 0)
		}
		if err := campaign.Sync(); err != nil {
			return nil, err
		}
		p.telem = make([]*telem.Emitter, opts.Workers)
		for w := range p.telem {
			we, err := telem.OpenEmitter(opts.TelemDir, p.workerStream(w), fp)
			if err != nil {
				return nil, err
			}
			p.telem[w] = we
			defer we.Close()
		}
	}
	if err := p.save(); err != nil {
		return nil, err
	}
	pending, running, done, _ := m.Counts()
	logf(opts.Log, "fleet: %d shard(s), %d already done, %d worker(s)\n", len(m.Records), done, opts.Workers)
	if pending > 0 || running > 0 {
		var wg sync.WaitGroup
		for w := 0; w < opts.Workers; w++ {
			wg.Add(1)
			go func(worker int) {
				defer wg.Done()
				p.work(ctx, worker)
			}(w)
		}
		var mxWG sync.WaitGroup
		stopMx := make(chan struct{})
		if campaign != nil && opts.Mx != nil {
			// Periodic fleet counter deltas onto the campaign stream (ops
			// plane): one snapshot diff per tick, one final flush on stop.
			mxWG.Add(1)
			go func() {
				defer mxWG.Done()
				var prev *obs.Snapshot
				tick := time.NewTicker(time.Second)
				defer tick.Stop()
				for {
					select {
					case <-stopMx:
						campaign.Metrics(opts.Mx.Snapshot(), prev)
						_ = campaign.Sync()
						return
					case <-tick.C:
						snap := opts.Mx.Snapshot()
						campaign.Metrics(snap, prev)
						prev = snap
					}
				}
			}()
		}
		wg.Wait()
		close(stopMx)
		mxWG.Wait()
	}
	if err := ctx.Err(); err != nil {
		p.mu.Lock()
		defer p.mu.Unlock()
		_, _, done, _ := p.manifest.Counts()
		logf(opts.Log, "fleet: interrupted with %d/%d shard(s) done; rerun to resume\n", done, len(p.manifest.Records))
		return nil, err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	// One last fold of the directory state: a peer may have committed the
	// final results while our workers were already draining.
	Reconcile(p.manifest, opts.Dir, lm, fsio)
	if err := p.save(); err != nil {
		return nil, err
	}
	return Merge(p.manifest)
}

// campaignStream names this process's campaign-level telemetry stream.
func (p *pool) campaignStream() string {
	if p.opts.Proc == "" {
		return "fleet"
	}
	return "fleet-" + p.opts.Proc
}

// workerStream names one worker's telemetry stream.
func (p *pool) workerStream(w int) string {
	if p.opts.Proc == "" {
		return strconv.Itoa(w)
	}
	return p.opts.Proc + "-w" + strconv.Itoa(w)
}

// owner is the lease identity of one worker: process prefix + worker
// index. The process prefix is unique per incarnation, which is the real
// fence — the epoch is the observable, monotonic generation number.
func (p *pool) owner(worker int) string {
	return p.proc + "-w" + strconv.Itoa(worker)
}

// save persists the manifest. It is only called with p.mu held except
// during construction.
func (p *pool) save() error {
	blob, err := p.manifest.encode()
	if err != nil {
		return err
	}
	return p.io.writeAtomic(p.path, blob)
}

// status reads a record's queue state under the pool lock.
func (p *pool) status(idx int) Status {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.manifest.Records[idx].Status
}

// claim walks the manifest for work: terminal artifacts committed by
// peers are adopted, expired leases are stolen, and the lowest-index
// claimable shard is leased and marked running. held == nil with
// anyOpen == true means every remaining shard is owned by a live peer —
// the caller waits and rescans; anyOpen == false means the queue is
// fully terminal.
func (p *pool) claim(worker int, owner string) (idx int, held *Held, anyOpen bool, err error) {
	n := func() int {
		p.mu.Lock()
		defer p.mu.Unlock()
		return len(p.manifest.Records)
	}()
	for i := 0; i < n; i++ {
		switch p.status(i) {
		case StatusDone, StatusFailed:
			continue
		}
		name := func() string {
			p.mu.Lock()
			defer p.mu.Unlock()
			return p.manifest.Records[i].Shard.Name
		}()
		if res, rerr := loadResult(p.io, p.opts.Dir, name); rerr == nil {
			p.adoptDone(i, res)
			continue
		}
		if fm, ferr := loadFailed(p.io, p.opts.Dir, name); ferr == nil {
			p.adoptFailed(i, fm)
			continue
		}
		h, aerr := p.lm.Acquire(name, owner)
		if errors.Is(aerr, ErrLeaseHeld) {
			p.observeLease(i, name)
			anyOpen = true
			continue
		}
		if aerr != nil {
			return 0, nil, anyOpen, aerr
		}
		p.mu.Lock()
		rec := &p.manifest.Records[i]
		rec.Status = StatusRunning
		rec.Worker = worker
		rec.Owner = h.Owner()
		rec.Epoch = h.Epoch()
		rec.Attempts++
		if h.Stole() {
			rec.Steals++
		}
		serr := p.save()
		p.mu.Unlock()
		if serr != nil {
			p.lm.Release(h)
			return 0, nil, anyOpen, serr
		}
		return i, h, anyOpen, nil
	}
	return 0, nil, anyOpen, nil
}

// adoptDone records a result committed by a peer (or a previous
// incarnation) without re-running the shard.
func (p *pool) adoptDone(idx int, res *ShardResult) {
	p.mu.Lock()
	defer p.mu.Unlock()
	rec := &p.manifest.Records[idx]
	if rec.Status == StatusDone {
		return
	}
	rec.Status = StatusDone
	rec.Result = res
	rec.Error = ""
	rec.Owner = ""
	rec.Epoch = 0
	_ = p.save()
	logf(p.opts.Log, "fleet: adopted committed shard %s\n", rec.Shard.Name)
}

// adoptFailed records a terminal failure marked durably by a peer.
func (p *pool) adoptFailed(idx int, fm *failedMarker) {
	p.mu.Lock()
	defer p.mu.Unlock()
	rec := &p.manifest.Records[idx]
	if rec.Status == StatusFailed {
		return
	}
	rec.Status = StatusFailed
	rec.Result = nil
	rec.Error = fm.Error
	rec.Owner = ""
	rec.Epoch = 0
	_ = p.save()
	logf(p.opts.Log, "fleet: adopted failed shard %s (%s)\n", rec.Shard.Name, fm.Error)
}

// observeLease mirrors a live peer's lease into the local record.
func (p *pool) observeLease(idx int, name string) {
	l, live, ok := p.lm.Peek(name)
	if !ok || !live {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	rec := &p.manifest.Records[idx]
	if rec.Status == StatusDone || rec.Status == StatusFailed {
		return
	}
	rec.Status = StatusRunning
	rec.Owner = l.Owner
	rec.Epoch = l.Epoch
}

// finish records a terminal (or parked) state for a claimed shard.
func (p *pool) finish(idx int, status Status, res *ShardResult, cause error) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	rec := &p.manifest.Records[idx]
	rec.Status = status
	rec.Result = res
	rec.Error = ""
	rec.Owner = ""
	rec.Epoch = 0
	if cause != nil {
		rec.Error = cause.Error()
	}
	return p.save()
}

// bump applies a counter mutation to a record under the pool lock.
func (p *pool) bump(idx int, f func(*Record)) {
	p.mu.Lock()
	f(&p.manifest.Records[idx])
	p.mu.Unlock()
}

// emitter returns the worker's telemetry emitter (nil when telemetry is
// off — every emitter method is nil-safe).
func (p *pool) emitter(worker int) *telem.Emitter {
	if worker < len(p.telem) {
		return p.telem[worker]
	}
	return nil
}

// work is one worker's loop: claim through the lease protocol, execute,
// and repeat. When every unclaimed shard is held by a live peer the
// worker polls — adopting results as peers commit them, stealing leases
// as they lapse — until the whole queue is terminal.
func (p *pool) work(ctx context.Context, worker int) {
	owner := p.owner(worker)
	for ctx.Err() == nil {
		idx, held, anyOpen, err := p.claim(worker, owner)
		if err != nil {
			logf(p.opts.Log, "fleet: worker %d claim failed: %v\n", worker, err)
			return
		}
		if held == nil {
			if !anyOpen {
				return
			}
			select {
			case <-ctx.Done():
			case <-time.After(p.poll):
			}
			continue
		}
		p.runClaimed(ctx, worker, idx, held)
	}
}

// runClaimed executes one leased shard: heartbeat-renewed, retried with
// deterministic backoff, and terminated through the fencing commit.
func (p *pool) runClaimed(ctx context.Context, worker int, idx int, held *Held) {
	rec := func() Record {
		p.mu.Lock()
		defer p.mu.Unlock()
		return p.manifest.Records[idx]
	}()
	sh := rec.Shard
	e := p.emitter(worker)
	if held.Stole() {
		p.opts.Mx.Inc(obs.CtrFleetLeaseSteals, 0)
		e.Lease(sh.Name, telem.EventSteal, held.Owner(), held.Epoch(), 0)
		logf(p.opts.Log, "fleet: worker %d stole lapsed lease on %s (epoch %d)\n", worker, sh.Name, held.Epoch())
	}
	e.Lease(sh.Name, telem.EventClaim, held.Owner(), held.Epoch(), sh.Cycles)
	_ = e.Sync()

	// A fencing event (the heartbeat finding a thief's lease) cancels the
	// shard context with the fence as its cause: the attempt stops at the
	// next chunk boundary and the terminal switch below abandons the
	// shard to its new owner.
	shardCtx, cancel := context.WithCancelCause(ctx)
	defer cancel(nil)
	stopHB := p.lm.Heartbeat(shardCtx, held, func(err error) { cancel(err) })

	var res *ShardResult
	var cause error
	for attempt := 0; ; attempt++ {
		span := uint64(0)
		if p.opts.Spans != nil {
			span = p.opts.Spans.Begin("shard:"+sh.Name, obs.CompRunner, int32(idx), 0, 0, 0)
		}
		res, cause = p.runShard(shardCtx, idx, sh, e)
		if p.opts.Spans != nil {
			p.opts.Spans.End(span, sh.Cycles)
		}
		if cause == nil || shardCtx.Err() != nil || attempt >= p.opts.Retries {
			break
		}
		delay := runner.BackoffDelay(p.opts.Backoff, p.opts.MaxBackoff, sh.Seed, attempt)
		p.bump(idx, func(r *Record) {
			r.Retries++
			r.BackoffNs += int64(delay)
		})
		p.opts.Mx.Inc(obs.CtrFleetRetries, 0)
		e.Shard(sh.Name, telem.EventRetry, cause.Error(), 0)
		logf(p.opts.Log, "fleet: worker %d shard %s attempt %d failed (%v); retrying in %s\n",
			worker, sh.Name, attempt+1, cause, delay)
		select {
		case <-shardCtx.Done():
		case <-time.After(delay):
		}
	}
	stopHB()
	fenced := errors.Is(context.Cause(shardCtx), ErrFenced)

	// Telemetry for a terminal state is emitted AND synced before the
	// manifest transition is saved: the durable stream is never behind
	// the durable manifest, so a resumed collector always sees every
	// shard the manifest says finished.
	switch {
	case cause == nil:
		err := commitResult(p.io, p.lm, held, p.opts.Dir, res)
		if errors.Is(err, ErrFenced) {
			p.fenced(worker, idx, sh, held, e, err)
			return
		}
		if err != nil {
			e.Shard(sh.Name, telem.EventFailed, err.Error(), 0)
			_ = e.Sync()
			_ = writeFailed(p.io, p.opts.Dir, sh.Name, err.Error(), rec.Attempts)
			_ = p.finish(idx, StatusFailed, nil, err)
			p.lm.Release(held)
			p.opts.Mx.Inc(obs.CtrFleetShardsFailed, 0)
			logf(p.opts.Log, "fleet: worker %d shard %s commit FAILED: %v\n", worker, sh.Name, err)
			return
		}
		e.SpanBegin(sh.Name, "shard:"+sh.Name, 0)
		e.SpanEnd(sh.Name, "shard:"+sh.Name, 0, sh.Cycles)
		leak := 0.0
		if res.Interference {
			leak = 1
		}
		e.Point("leak/"+sh.Scheme+"/"+sh.Name, sh.Cycles, leak)
		e.Shard(sh.Name, telem.EventDone, "", sh.Cycles)
		_ = e.Sync()
		_ = p.finish(idx, StatusDone, res, nil)
		p.lm.Release(held)
		p.opts.Mx.Inc(obs.CtrFleetShardsDone, 0)
		logf(p.opts.Log, "fleet: worker %d shard %s done\n", worker, sh.Name)
	case fenced:
		p.fenced(worker, idx, sh, held, e, context.Cause(shardCtx))
	case ctx.Err() != nil:
		// Interrupted, not failed: park the shard for the resume and
		// release the lease so a live peer can take over immediately.
		e.Shard(sh.Name, telem.EventRequeue, "", 0)
		_ = e.Sync()
		_ = p.finish(idx, StatusPending, nil, nil)
		p.lm.Release(held)
	default:
		e.Shard(sh.Name, telem.EventFailed, cause.Error(), 0)
		_ = e.Sync()
		_ = writeFailed(p.io, p.opts.Dir, sh.Name, cause.Error(), rec.Attempts)
		_ = p.finish(idx, StatusFailed, nil, cause)
		p.lm.Release(held)
		p.opts.Mx.Inc(obs.CtrFleetShardsFailed, 0)
		logf(p.opts.Log, "fleet: worker %d shard %s FAILED: %v\n", worker, sh.Name, cause)
	}
}

// fenced abandons a shard whose lease was stolen while this worker slept:
// the thief owns the work now, and the write-once commit has already
// refused (or will refuse) this worker's stale result. The record returns
// to pending so the claim scan adopts the thief's result when it lands.
func (p *pool) fenced(worker, idx int, sh Shard, held *Held, e *telem.Emitter, cause error) {
	e.Lease(sh.Name, telem.EventFenced, held.Owner(), held.Epoch(), 0)
	_ = e.Sync()
	p.bump(idx, func(r *Record) { r.Fenced++ })
	_ = p.finish(idx, StatusPending, nil, nil)
	p.opts.Mx.Inc(obs.CtrFleetFencedCommits, 0)
	logf(p.opts.Log, "fleet: worker %d shard %s fenced (%v); abandoning to new owner\n", worker, sh.Name, cause)
}

// runShard executes one attempt with panic isolation: a panicking shard
// (a seeded fault-injection campaign gone wrong, a model bug) takes down
// its attempt, not the fleet.
func (p *pool) runShard(ctx context.Context, idx int, sh Shard, e *telem.Emitter) (res *ShardResult, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, fmt.Errorf("fleet: shard %s panicked: %v", sh.Name, r)
		}
	}()
	return RunShard(ctx, p.sweep.Config, sh, ShardOptions{
		Dir:       p.opts.Dir,
		Every:     p.opts.CheckpointEvery,
		SecretA:   p.sweep.SecretA,
		SecretB:   p.sweep.SecretB,
		Faults:    p.sweep.ShardFaultSchedule(p.manifest.Fingerprint, sh),
		SaveFrame: p.io.saveFrame,
		LoadFrame: p.io.loadFrame,
		OnCheckpoint: func() {
			p.bump(idx, func(r *Record) { r.Checkpoints++ })
			p.opts.Mx.Inc(obs.CtrFleetCheckpoints, 0)
		},
		OnResume: func() {
			p.bump(idx, func(r *Record) { r.Resumes++ })
			p.opts.Mx.Inc(obs.CtrFleetResumes, 0)
		},
		OnChunk: func(lo, hi uint64, c sim.ClusterCounters) {
			if e == nil {
				return
			}
			// Chunk bounds are deterministic (multiples of the
			// checkpoint interval), so a crash-replayed chunk re-emits
			// byte-identical deterministic records and the collector's
			// dedup collapses them. The Sync runs before RunShard cuts
			// the chunk's checkpoint — see ShardOptions.OnChunk.
			e.Heartbeat(sh.Name, hi)
			e.SpanBegin(sh.Name, "chunk", lo)
			e.SpanEnd(sh.Name, "chunk", lo, hi)
			e.Point("completed/"+sh.Name, hi, float64(c.Completed))
			e.Point("issued/"+sh.Name, hi, float64(c.Issued))
			e.Point("stalls/"+sh.Name, hi, float64(c.Stalls))
			_ = e.Sync()
		},
	})
}

// logMu serializes fleet log lines: logf formats first and issues one
// Write under the lock, so concurrent workers sharing a log writer can
// interleave whole lines but never fragments of them.
var logMu sync.Mutex

func logf(w io.Writer, format string, args ...interface{}) {
	if w == nil {
		return
	}
	line := fmt.Sprintf(format, args...)
	logMu.Lock()
	defer logMu.Unlock()
	_, _ = io.WriteString(w, line)
}
