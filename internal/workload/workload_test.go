package workload

import (
	"testing"

	"dagguise/internal/mem"
	"dagguise/internal/trace"
)

func TestFifteenProfiles(t *testing.T) {
	ps := Profiles()
	if len(ps) != 15 {
		t.Fatalf("profiles = %d, want 15 (Figure 9's x-axis)", len(ps))
	}
	seen := map[string]bool{}
	for _, p := range ps {
		if err := p.Validate(); err != nil {
			t.Errorf("profile %s invalid: %v", p.Name, err)
		}
		if seen[p.Name] {
			t.Errorf("duplicate profile %s", p.Name)
		}
		seen[p.Name] = true
	}
}

func TestByName(t *testing.T) {
	p, err := ByName("lbm")
	if err != nil || p.Name != "lbm" {
		t.Fatalf("ByName(lbm) = %v, %v", p, err)
	}
	if _, err := ByName("nonesuch"); err == nil {
		t.Fatal("unknown profile accepted")
	}
	if len(Names()) != 15 {
		t.Fatal("Names length mismatch")
	}
}

func TestValidateRejectsBadFractions(t *testing.T) {
	p := Profile{Name: "x", MeanGap: 10, HotFraction: 1.5}
	if err := p.Validate(); err == nil {
		t.Fatal("bad hot fraction accepted")
	}
	p = Profile{Name: "x", MeanGap: -1}
	if err := p.Validate(); err == nil {
		t.Fatal("negative gap accepted")
	}
}

func TestSourceDeterminism(t *testing.T) {
	p, _ := ByName("xz")
	a := MustSource(p, 42)
	b := MustSource(p, 42)
	for i := 0; i < 1000; i++ {
		opA, _ := a.Next()
		opB, _ := b.Next()
		if opA != opB {
			t.Fatalf("op %d differs: %+v vs %+v", i, opA, opB)
		}
	}
}

func TestSourceResetRestartsStream(t *testing.T) {
	p, _ := ByName("lbm")
	s := MustSource(p, 7)
	var first []trace.Op
	for i := 0; i < 100; i++ {
		op, _ := s.Next()
		first = append(first, op)
	}
	s.Reset()
	for i := 0; i < 100; i++ {
		op, _ := s.Next()
		if op != first[i] {
			t.Fatalf("op %d differs after reset", i)
		}
	}
}

func TestSeedsSeparateAddressSpaces(t *testing.T) {
	p, _ := ByName("lbm")
	a := MustSource(p, 1)
	b := MustSource(p, 2)
	opA, _ := a.Next()
	opB, _ := b.Next()
	if opA.Addr>>32 == opB.Addr>>32 {
		t.Fatal("different seeds share an address-space base")
	}
}

func TestProfileCharacteristicsRealised(t *testing.T) {
	// lbm must generate far more distinct (cold) lines per op than
	// exchange2, and more writes.
	countCold := func(name string) (cold int, writes int, gaps int) {
		p, _ := ByName(name)
		s := MustSource(p, 3)
		seen := map[uint64]bool{}
		for i := 0; i < 20000; i++ {
			op, _ := s.Next()
			line := op.Addr >> 6
			if !seen[line] {
				seen[line] = true
				cold++
			}
			if op.Kind == mem.Write {
				writes++
			}
			gaps += op.Gap
		}
		return
	}
	lbmCold, lbmWr, lbmGap := countCold("lbm")
	exCold, _, exGap := countCold("exchange2")
	if lbmCold <= exCold*2 {
		t.Fatalf("lbm cold lines %d not clearly above exchange2 %d", lbmCold, exCold)
	}
	if lbmWr == 0 {
		t.Fatal("lbm generated no writes")
	}
	if lbmGap >= exGap {
		t.Fatalf("lbm gap %d should be below exchange2 %d", lbmGap, exGap)
	}
}

func TestSortedByIntensity(t *testing.T) {
	names := SortedByIntensity()
	if len(names) != 15 {
		t.Fatal("intensity sort lost profiles")
	}
	if names[0] != "lbm" {
		t.Fatalf("most intense = %s, want lbm", names[0])
	}
	last := names[len(names)-1]
	if last != "exchange2" && last != "leela" {
		t.Fatalf("least intense = %s, want a compute-bound profile", last)
	}
}

func TestGeometricMean(t *testing.T) {
	// The gap generator must realise roughly the configured mean.
	p := Profile{Name: "g", MeanGap: 50, HotFraction: 1}
	s := MustSource(p, 11)
	total := 0
	const n = 20000
	for i := 0; i < n; i++ {
		op, _ := s.Next()
		total += op.Gap
	}
	meanGap := float64(total) / n
	if meanGap < 35 || meanGap > 65 {
		t.Fatalf("realised mean gap %.1f, want near 50", meanGap)
	}
}
