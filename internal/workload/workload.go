// Package workload provides the fifteen SPEC CPU2017-like co-runner
// profiles used by the evaluation (Figures 9 and 10). Each profile is a
// parameterised synthetic trace generator whose knobs — memory-op density,
// hot-set hit fraction, streaming behaviour, dependency fraction and write
// fraction — are set to reproduce the published memory characteristics of
// the corresponding benchmark (memory-bound lbm/fotonik3d/roms at tens of
// LLC misses per kilo-instruction down to compute-bound exchange2/leela
// below one). The absolute numbers need not match gem5 checkpoints; what
// the experiments need is the *range* of bandwidth demands and latency
// sensitivities across co-runners.
package workload

import (
	"fmt"
	"math/rand"
	"sort"

	"dagguise/internal/mem"
	"dagguise/internal/rng"
	"dagguise/internal/trace"
)

// Profile parameterises one synthetic application.
type Profile struct {
	// Name is the SPEC benchmark this profile stands in for.
	Name string
	// MeanGap is the mean number of non-memory instructions between
	// memory operations (geometrically distributed).
	MeanGap int
	// HotFraction of accesses go to a small cache-resident working set.
	HotFraction float64
	// StreamFraction of the remaining accesses walk sequential lines
	// (high row locality, bank interleaved); the rest are uniform random
	// over a large footprint (row conflicts, no locality).
	StreamFraction float64
	// DepFraction of memory ops depend on their predecessor (serialised,
	// pointer-chasing style — low memory-level parallelism).
	DepFraction float64
	// WriteFraction of memory ops are stores.
	WriteFraction float64
}

// Validate checks the profile's parameters.
func (p Profile) Validate() error {
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"hot", p.HotFraction}, {"stream", p.StreamFraction},
		{"dep", p.DepFraction}, {"write", p.WriteFraction},
	} {
		if f.v < 0 || f.v > 1 {
			return fmt.Errorf("workload %s: %s fraction %f outside [0,1]", p.Name, f.name, f.v)
		}
	}
	if p.MeanGap < 0 {
		return fmt.Errorf("workload %s: negative mean gap", p.Name)
	}
	return nil
}

// Profiles returns the fifteen co-runner profiles, ordered as in Figure 9.
func Profiles() []Profile {
	return []Profile{
		{Name: "blender", MeanGap: 90, HotFraction: 0.90, StreamFraction: 0.70, DepFraction: 0.15, WriteFraction: 0.25},
		{Name: "cactuBSSN", MeanGap: 45, HotFraction: 0.72, StreamFraction: 0.80, DepFraction: 0.10, WriteFraction: 0.30},
		{Name: "cam4", MeanGap: 55, HotFraction: 0.75, StreamFraction: 0.75, DepFraction: 0.12, WriteFraction: 0.28},
		{Name: "deepsjeng", MeanGap: 110, HotFraction: 0.93, StreamFraction: 0.20, DepFraction: 0.50, WriteFraction: 0.20},
		{Name: "exchange2", MeanGap: 260, HotFraction: 0.995, StreamFraction: 0.30, DepFraction: 0.30, WriteFraction: 0.15},
		{Name: "fotonik3d", MeanGap: 30, HotFraction: 0.55, StreamFraction: 0.90, DepFraction: 0.05, WriteFraction: 0.30},
		{Name: "lbm", MeanGap: 25, HotFraction: 0.45, StreamFraction: 0.92, DepFraction: 0.05, WriteFraction: 0.40},
		{Name: "leela", MeanGap: 190, HotFraction: 0.985, StreamFraction: 0.25, DepFraction: 0.55, WriteFraction: 0.20},
		{Name: "nab", MeanGap: 80, HotFraction: 0.88, StreamFraction: 0.60, DepFraction: 0.20, WriteFraction: 0.22},
		{Name: "namd", MeanGap: 120, HotFraction: 0.94, StreamFraction: 0.65, DepFraction: 0.15, WriteFraction: 0.20},
		{Name: "povray", MeanGap: 170, HotFraction: 0.975, StreamFraction: 0.35, DepFraction: 0.35, WriteFraction: 0.18},
		{Name: "roms", MeanGap: 35, HotFraction: 0.62, StreamFraction: 0.85, DepFraction: 0.08, WriteFraction: 0.32},
		{Name: "wrf", MeanGap: 50, HotFraction: 0.74, StreamFraction: 0.80, DepFraction: 0.10, WriteFraction: 0.30},
		{Name: "x264", MeanGap: 95, HotFraction: 0.91, StreamFraction: 0.70, DepFraction: 0.20, WriteFraction: 0.25},
		{Name: "xz", MeanGap: 70, HotFraction: 0.82, StreamFraction: 0.30, DepFraction: 0.45, WriteFraction: 0.25},
	}
}

// ByName returns the named profile.
func ByName(name string) (Profile, error) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("workload: unknown profile %q", name)
}

// Names returns all profile names in order.
func Names() []string {
	ps := Profiles()
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.Name
	}
	return out
}

// generator is the infinite trace source for a profile.
type generator struct {
	p    Profile
	seed int64
	rng  *rng.Rand

	hotLines  []uint64
	streamPos uint64
	base      uint64
}

const (
	lineBytes      = 64
	hotSetLines    = 512     // 32 KiB: resident in L1/L2
	footprintLines = 1 << 22 // 256 MiB random-access footprint
)

// NewSource builds an infinite deterministic trace source for the profile.
// The seed also offsets the address space so co-scheduled copies do not
// share lines.
func NewSource(p Profile, seed int64) (trace.Source, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	g := &generator{p: p, seed: seed}
	g.Reset()
	return g, nil
}

// MustSource panics on an invalid profile.
func MustSource(p Profile, seed int64) trace.Source {
	s, err := NewSource(p, seed)
	if err != nil {
		panic(err)
	}
	return s
}

// Reset implements trace.Source.
func (g *generator) Reset() {
	g.rng = rng.New(g.seed)
	g.base = uint64(g.seed&0xff) << 32
	g.hotLines = make([]uint64, hotSetLines)
	for i := range g.hotLines {
		g.hotLines[i] = g.base + uint64(i)*lineBytes
	}
	g.streamPos = 0
}

// Next implements trace.Source; it never exhausts.
func (g *generator) Next() (trace.Op, bool) {
	p := g.p
	var addr uint64
	r := g.rng.Float64()
	switch {
	case r < p.HotFraction:
		addr = g.hotLines[g.rng.Intn(len(g.hotLines))]
	case g.rng.Float64() < p.StreamFraction:
		g.streamPos++
		addr = g.base + uint64(1<<30) + g.streamPos*lineBytes
	default:
		addr = g.base + uint64(2<<30) + uint64(g.rng.Intn(footprintLines))*lineBytes
	}
	kind := mem.Read
	if g.rng.Float64() < p.WriteFraction {
		kind = mem.Write
	}
	dep := 0
	if kind == mem.Read && g.rng.Float64() < p.DepFraction {
		dep = 1
	}
	gap := 0
	if p.MeanGap > 0 {
		// Geometric with the configured mean.
		gap = geometric(g.rng.Rand, p.MeanGap)
	}
	return trace.Op{Addr: addr, Kind: kind, Gap: gap, Dep: dep}, true
}

// geometric samples a geometric distribution with the given mean.
func geometric(rng *rand.Rand, mean int) int {
	// P(stop) per unit = 1/(mean+1); inverse-CDF sampling would need
	// log; a simple loop is fine because mean values are modest.
	p := 1.0 / float64(mean+1)
	n := 0
	for rng.Float64() > p && n < mean*10 {
		n++
	}
	return n
}

// SortedByIntensity returns profile names ordered from most to least
// memory-intensive (by 1000/(MeanGap+1) * miss fraction), useful for
// choosing heavy/light co-runner mixes.
func SortedByIntensity() []string {
	ps := Profiles()
	sort.Slice(ps, func(i, j int) bool {
		return intensity(ps[i]) > intensity(ps[j])
	})
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.Name
	}
	return out
}

func intensity(p Profile) float64 {
	return (1 - p.HotFraction) * 1000 / float64(p.MeanGap+1)
}
