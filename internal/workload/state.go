package workload

import (
	"fmt"

	"dagguise/internal/trace"
)

// SaveState implements trace.Stateful: the generator's position is its
// stream cursor plus the PRNG position (the hot set and base offset are
// derived from the seed and rebuilt by Reset).
func (g *generator) SaveState() trace.SourceState {
	rs := g.rng.State()
	return trace.SourceState{Kind: "workload", Pos: g.streamPos, Rand: &rs}
}

// RestoreState implements trace.Stateful.
func (g *generator) RestoreState(st trace.SourceState) error {
	if st.Kind != "workload" {
		return fmt.Errorf("workload: restoring %q state into a workload source", st.Kind)
	}
	if st.Rand == nil {
		return fmt.Errorf("workload: state missing PRNG position")
	}
	if st.Rand.Seed != g.seed {
		return fmt.Errorf("workload: state seed %d does not match generator seed %d", st.Rand.Seed, g.seed)
	}
	g.Reset()
	g.rng.Restore(*st.Rand)
	g.streamPos = st.Pos
	return nil
}
