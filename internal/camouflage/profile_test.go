package camouflage

import (
	"testing"

	"dagguise/internal/trace"
	"dagguise/internal/victim"
)

func TestProfileVictimDerivesDistribution(t *testing.T) {
	tr, err := victim.DocDistTrace(11, victim.DefaultDocDist())
	if err != nil {
		t.Fatal(err)
	}
	dist, err := ProfileVictim(&trace.Loop{Inner: tr}, 16, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if len(dist.Intervals) != 16 {
		t.Fatalf("samples = %d, want 16", len(dist.Intervals))
	}
	// Quantile sampling: intervals are sorted ascending and positive.
	for i, v := range dist.Intervals {
		if v == 0 {
			t.Fatal("zero interval in distribution")
		}
		if i > 0 && v < dist.Intervals[i-1] {
			t.Fatal("intervals not sorted")
		}
	}
	if dist.Mean() <= 0 || dist.Mean() > 100_000 {
		t.Fatalf("implausible mean interval %f", dist.Mean())
	}
}

func TestProfileVictimErrorsOnEmptyTrace(t *testing.T) {
	if _, err := ProfileVictim(&trace.Slice{}, 8, 100); err == nil {
		t.Fatal("empty trace accepted")
	}
}

func TestProfiledDistributionDrivesShaper(t *testing.T) {
	tr, err := victim.DNATrace(3, victim.DefaultDNA())
	if err != nil {
		t.Fatal(err)
	}
	dist, err := ProfileVictim(&trace.Loop{Inner: tr}, 8, 500)
	if err != nil {
		t.Fatal(err)
	}
	m := testMapper()
	sh, err := New(1, dist, m, 8, alloc(), 9)
	if err != nil {
		t.Fatal(err)
	}
	emitted := 0
	for now := uint64(0); now < 200_000 && emitted < 10; now++ {
		emitted += len(sh.Tick(now))
	}
	if emitted < 10 {
		t.Fatalf("shaper with profiled distribution emitted only %d requests", emitted)
	}
}
