package camouflage

import (
	"fmt"

	"dagguise/internal/mem"
	"dagguise/internal/rng"
)

// State is the Camouflage shaper's full mutable state: the private queue,
// the remaining intervals of the current epoch, the injection clock and the
// interval-sampling PRNG position.
type State struct {
	Queue    []mem.Request `json:"queue,omitempty"`
	Pool     []uint64      `json:"pool,omitempty"`
	LastEmit uint64        `json:"last_emit"`
	NextAt   uint64        `json:"next_at"`
	Started  bool          `json:"started"`
	Stats    Stats         `json:"stats"`
	Rand     rng.State     `json:"rand"`
}

// SaveState captures the shaper's full mutable state.
func (s *Shaper) SaveState() State {
	return State{
		Queue:    append([]mem.Request(nil), s.queue...),
		Pool:     append([]uint64(nil), s.pool...),
		LastEmit: s.lastEmit,
		NextAt:   s.nextAt,
		Started:  s.started,
		Stats:    s.stats,
		Rand:     s.rng.State(),
	}
}

// RestoreState overwrites the shaper's mutable state.
func (s *Shaper) RestoreState(st State) error {
	if len(st.Queue) > s.capacity {
		return fmt.Errorf("camouflage: state queue depth %d exceeds capacity %d", len(st.Queue), s.capacity)
	}
	s.queue = append(s.queue[:0], st.Queue...)
	s.pool = append(s.pool[:0], st.Pool...)
	s.lastEmit = st.LastEmit
	s.nextAt = st.NextAt
	s.started = st.Started
	s.stats = st.Stats
	s.rng.Restore(st.Rand)
	return nil
}
