package camouflage

import (
	"fmt"
	"sort"

	"dagguise/internal/cache"
	"dagguise/internal/config"
	"dagguise/internal/cpu"
	"dagguise/internal/dram"
	"dagguise/internal/mem"
	"dagguise/internal/memctrl"
	"dagguise/internal/trace"
)

// ProfileVictim implements Camouflage's offline profiling: run the victim
// alone on an insecure memory system, record when its requests reach the
// memory controller, and distil the inter-injection intervals into a
// target distribution of the requested size (evenly spaced quantiles of
// the observed intervals).
//
// This function also documents the paper's §3.1 criticism by construction:
// the distribution is measured WITHOUT contention, so when co-runners slow
// the victim down, its real injections no longer match the profile and the
// shaping cost balloons — profiling "correctly" would require re-profiling
// against every expected co-runner mix, which DAGguise's versatility
// property avoids.
func ProfileVictim(src trace.Source, samples int, maxRequests int) (Distribution, error) {
	if samples <= 0 {
		samples = 16
	}
	if maxRequests <= 0 {
		maxRequests = 4000
	}
	cfg := config.Default(1, config.Insecure)
	mapper := mem.MustMapper(cfg.Geometry)
	dev := dram.New(cfg.Timing, mapper, cfg.ClosedRow)
	ctrl := memctrl.New(dev, mapper, memctrl.FRFCFS{}, 32)

	hier, err := cache.NewHierarchy(cfg)
	if err != nil {
		return Distribution{}, err
	}
	var times []uint64
	port := &recordingPort{ctrl: ctrl, times: &times}
	next := uint64(0)
	alloc := func() uint64 { next++; return next }
	core := cpu.New(1, src, hier, cfg.Core, port, alloc)

	const maxCycles = 20_000_000
	for now := uint64(0); now < maxCycles && len(times) < maxRequests && !core.Done(); now++ {
		core.Tick(now)
		for _, resp := range ctrl.Tick(now) {
			if err := core.OnResponse(resp, now); err != nil {
				return Distribution{}, err
			}
		}
	}
	if len(times) < 2 {
		return Distribution{}, fmt.Errorf("camouflage: victim produced %d requests; nothing to profile", len(times))
	}
	intervals := make([]uint64, 0, len(times)-1)
	for i := 1; i < len(times); i++ {
		intervals = append(intervals, times[i]-times[i-1])
	}
	sort.Slice(intervals, func(i, j int) bool { return intervals[i] < intervals[j] })
	if samples > len(intervals) {
		samples = len(intervals)
	}
	out := make([]uint64, samples)
	for i := range out {
		idx := i * (len(intervals) - 1) / (samples - 1 + boolToInt(samples == 1))
		out[i] = intervals[idx]
		if out[i] == 0 {
			out[i] = 1
		}
	}
	return Distribution{Intervals: out}, nil
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// recordingPort forwards to the controller and records accepted enqueue
// times (the victim's injection instants).
type recordingPort struct {
	ctrl  *memctrl.Controller
	times *[]uint64
}

// TryEnqueue implements cpu.Port.
func (p *recordingPort) TryEnqueue(req mem.Request, now uint64) bool {
	if !p.ctrl.Enqueue(req, now) {
		return false
	}
	*p.times = append(*p.times, now)
	return true
}
