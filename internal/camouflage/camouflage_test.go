package camouflage

import (
	"errors"
	"testing"

	"dagguise/internal/mem"
	"dagguise/internal/shaper"
)

func testMapper() *mem.Mapper {
	return mem.MustMapper(mem.Geometry{Channels: 1, Ranks: 1, Banks: 8, RowBytes: 8 << 10, LineBytes: 64, CapacityGiB: 4})
}

func alloc() shaper.IDAlloc {
	next := uint64(1 << 32)
	return func() uint64 { next++; return next }
}

func TestDistributionValidate(t *testing.T) {
	if err := (Distribution{}).Validate(); err == nil {
		t.Fatal("empty distribution accepted")
	}
	d := Distribution{Intervals: []uint64{100, 200}}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.Mean() != 150 {
		t.Fatalf("mean = %f, want 150", d.Mean())
	}
}

// drive runs the shaper for the given number of cycles with victim
// requests enqueued at the given cycles/banks, returning emission times.
func drive(t *testing.T, victims map[uint64]int, cycles uint64, seed int64) []uint64 {
	t.Helper()
	m := testMapper()
	s, err := New(1, Distribution{Intervals: []uint64{200, 400}}, m, 8, alloc(), seed)
	if err != nil {
		t.Fatal(err)
	}
	var times []uint64
	id := uint64(0)
	for now := uint64(0); now < cycles; now++ {
		if bank, ok := victims[now]; ok && !s.Full() {
			id++
			s.Enqueue(mem.Request{ID: id, Addr: m.AddrForBank(bank, 0, 0), Kind: mem.Read, Domain: 1}, now)
		}
		for range s.Tick(now) {
			times = append(times, now)
		}
	}
	return times
}

func TestIntervalsRealiseDistribution(t *testing.T) {
	times := drive(t, nil, 5000, 3)
	if len(times) < 4 {
		t.Fatalf("too few emissions: %d", len(times))
	}
	// Every observed interval must come from the target distribution,
	// and over many epochs both values must appear in equal proportion
	// (each epoch draws each value exactly once).
	counts := map[uint64]int{}
	for i := 1; i < len(times); i++ {
		iv := times[i] - times[i-1]
		if iv != 200 && iv != 400 {
			t.Fatalf("interval %d not in target distribution {200,400}", iv)
		}
		counts[iv]++
	}
	diff := counts[200] - counts[400]
	if diff < -1 || diff > 1 {
		t.Fatalf("interval counts unbalanced: %v", counts)
	}
}

func TestOrderingLeaksVictimActivity(t *testing.T) {
	// Figure 2: with no pending requests the shaper picks intervals
	// randomly; with pending requests it greedily picks the shortest.
	// The *ordering* of intervals therefore depends on the input.
	idle := drive(t, nil, 4000, 1)
	busy := drive(t, map[uint64]int{1: 0, 2: 1, 3: 2, 500: 3, 900: 4, 1300: 5}, 4000, 1)
	if len(idle) == 0 || len(busy) == 0 {
		t.Fatal("no emissions")
	}
	same := len(idle) == len(busy)
	if same {
		for i := range idle {
			if idle[i] != busy[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("camouflage emissions identical across inputs; expected an ordering leak")
	}
}

func TestRealRequestsKeepTheirBanks(t *testing.T) {
	// The bank of a forwarded request is the victim's own — the second
	// leak the paper identifies in Camouflage.
	m := testMapper()
	s, err := New(1, Distribution{Intervals: []uint64{10}}, m, 8, alloc(), 9)
	if err != nil {
		t.Fatal(err)
	}
	s.Enqueue(mem.Request{ID: 1, Addr: m.AddrForBank(6, 0, 0), Kind: mem.Read, Domain: 1}, 0)
	var forwarded *mem.Request
	for now := uint64(0); now < 1000 && forwarded == nil; now++ {
		for _, r := range s.Tick(now) {
			if !r.Fake {
				cp := r
				forwarded = &cp
			}
		}
	}
	if forwarded == nil {
		t.Fatal("real request never forwarded")
	}
	if got := m.FlatBank(m.Decode(forwarded.Addr)); got != 6 {
		t.Fatalf("forwarded bank = %d, want the victim's bank 6", got)
	}
}

func TestBackpressureAndStats(t *testing.T) {
	m := testMapper()
	s, _ := New(1, Distribution{Intervals: []uint64{1000}}, m, 2, alloc(), 1)
	for i := 0; i < 2; i++ {
		if ok, err := s.Enqueue(mem.Request{ID: uint64(i + 1), Addr: 0, Domain: 1}, 0); err != nil || !ok {
			t.Fatalf("enqueue rejected below capacity (ok=%v err=%v)", ok, err)
		}
	}
	if ok, err := s.Enqueue(mem.Request{ID: 9, Addr: 0, Domain: 1}, 0); err != nil || ok {
		t.Fatalf("enqueue accepted over capacity (ok=%v err=%v)", ok, err)
	}
	if s.Stats().Rejected != 1 || s.Stats().Enqueued != 2 {
		t.Fatalf("stats = %+v", s.Stats())
	}
}

func TestWrongDomainIsRoutingError(t *testing.T) {
	m := testMapper()
	s, _ := New(1, Distribution{Intervals: []uint64{10}}, m, 8, alloc(), 1)
	ok, err := s.Enqueue(mem.Request{ID: 1, Domain: 3}, 0)
	if ok {
		t.Fatal("wrong-domain request accepted")
	}
	var rerr *shaper.RoutingError
	if !errors.As(err, &rerr) {
		t.Fatalf("error = %v, want *shaper.RoutingError", err)
	}
	if rerr.Got != 3 || rerr.Want != 1 || rerr.ID != 1 {
		t.Fatalf("routing error fields = %+v", rerr)
	}
}

func TestFakeResponsesSwallowed(t *testing.T) {
	m := testMapper()
	s, _ := New(1, Distribution{Intervals: []uint64{10}}, m, 8, alloc(), 1)
	if s.OnResponse(mem.Response{ID: 5, Fake: true}, 0) {
		t.Fatal("fake response delivered")
	}
	if !s.OnResponse(mem.Response{ID: 5, Fake: false}, 0) {
		t.Fatal("real response swallowed")
	}
}

func TestReset(t *testing.T) {
	m := testMapper()
	s, _ := New(1, Distribution{Intervals: []uint64{10}}, m, 8, alloc(), 1)
	s.Enqueue(mem.Request{ID: 1, Addr: 0, Domain: 1}, 0)
	s.Tick(0)
	s.Reset()
	if s.QueueLen() != 0 || s.Stats().Enqueued != 0 {
		t.Fatal("reset incomplete")
	}
}
