// Package camouflage implements the Camouflage baseline (Zhou et al.,
// HPCA'17): a memory traffic shaper that forces the *distribution* of
// inter-injection intervals to match a profiled target distribution, by
// delaying real requests and issuing fake ones.
//
// Camouflage is included as a comparison point, not as a secure defense:
// as §3.1 of the DAGguise paper shows (Figure 2), constraining only the
// distribution leaves the *ordering* of intervals input-dependent, and the
// scheme ignores bank information entirely (forwarded requests keep their
// original banks). Both channels remain observable to a fine-grained
// attacker, and the attack demonstration in internal/attack exploits them.
//
// This implementation draws each epoch's intervals from the target
// distribution as a pool sampled without replacement. When a real request
// is waiting, the shaper greedily picks the smallest adequate remaining
// interval (to limit the victim's slowdown); otherwise it picks a random
// one. Every epoch's emitted intervals exactly realise the target
// distribution, yet their order — and the banks of forwarded requests —
// depend on the victim's behaviour, reproducing the leak of Figure 2.
package camouflage

import (
	"fmt"
	"sort"

	"dagguise/internal/mem"
	"dagguise/internal/obs"
	"dagguise/internal/rng"
	"dagguise/internal/shaper"
)

// Distribution is an empirical distribution of inter-injection intervals
// in CPU cycles, typically obtained by profiling the victim offline.
type Distribution struct {
	Intervals []uint64
}

// Validate checks the distribution is usable.
func (d Distribution) Validate() error {
	if len(d.Intervals) == 0 {
		return fmt.Errorf("camouflage: empty interval distribution")
	}
	return nil
}

// Mean returns the average interval.
func (d Distribution) Mean() float64 {
	var sum uint64
	for _, v := range d.Intervals {
		sum += v
	}
	return float64(sum) / float64(len(d.Intervals))
}

// Stats aggregates shaper counters.
type Stats struct {
	Forwarded uint64
	Fakes     uint64
	Enqueued  uint64
	Rejected  uint64
}

// Shaper shapes one domain's traffic to the target interval distribution.
type Shaper struct {
	domain   mem.Domain
	dist     Distribution
	mapper   *mem.Mapper
	capacity int
	alloc    shaper.IDAlloc
	rng      *rng.Rand

	queue    []mem.Request
	pool     []uint64 // remaining intervals of the current epoch
	lastEmit uint64
	nextAt   uint64
	started  bool
	stats    Stats

	// Observability (nil = off); measurement only.
	mx *obs.Registry
	tr *obs.Tracer

	rows    uint64
	columns int
	banks   int
}

// New builds a Camouflage shaper for the domain.
func New(domain mem.Domain, dist Distribution, mapper *mem.Mapper, capacity int, alloc shaper.IDAlloc, seed int64) (*Shaper, error) {
	if err := dist.Validate(); err != nil {
		return nil, err
	}
	if capacity <= 0 {
		capacity = 8
	}
	geo := mapper.Geometry()
	return &Shaper{
		domain:   domain,
		dist:     dist,
		mapper:   mapper,
		capacity: capacity,
		alloc:    alloc,
		rng:      rng.New(seed),
		rows:     1 << 14,
		columns:  geo.RowBytes / geo.LineBytes,
		banks:    mapper.BankCount(),
	}, nil
}

// Domain returns the protected domain.
func (s *Shaper) Domain() mem.Domain { return s.domain }

// Observe attaches an observability registry and tracer (either may be
// nil). Measurement only: shaping decisions never consult them.
func (s *Shaper) Observe(mx *obs.Registry, tr *obs.Tracer) {
	s.mx = mx
	s.tr = tr
}

// Full reports whether the private queue is at capacity.
func (s *Shaper) Full() bool { return len(s.queue) >= s.capacity }

// QueueLen returns the private queue occupancy.
func (s *Shaper) QueueLen() int { return len(s.queue) }

// Enqueue accepts a real request from the domain. It returns (false, nil)
// when the private queue is full (ordinary backpressure) and a
// *shaper.RoutingError when the request belongs to another domain.
func (s *Shaper) Enqueue(req mem.Request, now uint64) (bool, error) {
	if req.Domain != s.domain {
		return false, &shaper.RoutingError{Got: req.Domain, Want: s.domain, ID: req.ID}
	}
	if len(s.queue) >= s.capacity {
		s.stats.Rejected++
		s.mx.Inc(obs.CtrShaperRejected, int(s.domain))
		return false, nil
	}
	s.queue = append(s.queue, req)
	s.stats.Enqueued++
	return true, nil
}

// refill starts a new epoch with a fresh copy of the distribution.
func (s *Shaper) refill() {
	s.pool = append(s.pool[:0], s.dist.Intervals...)
	sort.Slice(s.pool, func(i, j int) bool { return s.pool[i] < s.pool[j] })
}

// pickInterval removes and returns the next interval: the smallest one
// when a request is pending (input-dependent — the leak), or a uniformly
// random one otherwise.
func (s *Shaper) pickInterval(havePending bool) uint64 {
	if len(s.pool) == 0 {
		s.refill()
	}
	var idx int
	if havePending {
		idx = 0 // pool is sorted ascending
	} else {
		idx = s.rng.Intn(len(s.pool))
	}
	v := s.pool[idx]
	s.pool = append(s.pool[:idx], s.pool[idx+1:]...)
	return v
}

// Tick returns the requests to inject this cycle.
func (s *Shaper) Tick(now uint64) []mem.Request {
	s.mx.Observe(obs.HistShaperQueue, int(s.domain), uint64(len(s.queue)))
	if !s.started {
		s.started = true
		s.nextAt = now + s.pickInterval(len(s.queue) > 0)
		return nil
	}
	if now < s.nextAt {
		return nil
	}
	var req mem.Request
	if len(s.queue) > 0 {
		req = s.queue[0]
		s.queue = s.queue[1:]
		s.stats.Forwarded++
		s.mx.Inc(obs.CtrShaperForwarded, int(s.domain))
		s.tr.Emit(obs.Event{Cycle: now, Comp: obs.CompShaper, Kind: obs.EvReal, Index: int32(s.domain), Domain: int32(s.domain)})
	} else {
		req = mem.Request{
			ID:     s.alloc(),
			Addr:   s.mapper.AddrForBank(s.rng.Intn(s.banks), uint64(s.rng.Int63n(int64(s.rows))), s.rng.Intn(s.columns)),
			Kind:   mem.Read,
			Domain: s.domain,
			Fake:   true,
		}
		s.stats.Fakes++
		s.mx.Inc(obs.CtrShaperFakes, int(s.domain))
		s.tr.Emit(obs.Event{Cycle: now, Comp: obs.CompShaper, Kind: obs.EvFake, Index: int32(s.domain), Domain: int32(s.domain)})
	}
	req.Issue = now
	s.lastEmit = now
	s.nextAt = now + s.pickInterval(len(s.queue) > 0)
	return []mem.Request{req}
}

// OnResponse reports whether the response should be delivered to the core.
// Camouflage tracks nothing across responses.
func (s *Shaper) OnResponse(resp mem.Response, now uint64) bool {
	return !resp.Fake
}

// Stats returns cumulative counters.
func (s *Shaper) Stats() Stats { return s.stats }

// Reset clears the shaper state.
func (s *Shaper) Reset() {
	s.queue = s.queue[:0]
	s.pool = s.pool[:0]
	s.started = false
	s.nextAt = 0
	s.stats = Stats{}
}
