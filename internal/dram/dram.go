// Package dram implements a transaction-level DDR3 DRAM device model that
// enforces the Table 2 timing constraints: per-bank row-buffer state with
// tRC/tRCD/tRAS/tRP/tRTP/tWR, per-rank tRRD and tFAW activation windows and
// tREFI/tRFC refresh, and per-channel data-bus occupancy with tBURST, tCCD
// and tWTR turnarounds.
//
// The model serves whole transactions (a read or write of one cache line)
// rather than individual DRAM commands: when the memory controller commits a
// transaction the device computes the earliest legal schedule of the implied
// PRE/ACT/RD/WR commands, updates its state and reports when the data burst
// completes. This reproduces every contention source exploited by memory
// timing side channels — bank conflicts, row-buffer hits/misses/conflicts,
// and shared-bus delays — while remaining fast enough to sweep the paper's
// full evaluation.
package dram

import (
	"fmt"

	"dagguise/internal/config"
	"dagguise/internal/mem"
	"dagguise/internal/obs"
)

// Timing is config.DRAMTiming converted to CPU cycles.
type Timing struct {
	RC, RCD, RAS, FAW, WR, RP, RTRS, CAS, CWD, RTP, Burst, CCD, WTR, RRD uint64
	REFI, RFC                                                            uint64
}

func convert(t config.DRAMTiming) Timing {
	c := func(v int) uint64 { return uint64(v * t.ClockRatio) }
	return Timing{
		RC: c(t.TRC), RCD: c(t.TRCD), RAS: c(t.TRAS), FAW: c(t.TFAW),
		WR: c(t.TWR), RP: c(t.TRP), RTRS: c(t.TRTRS), CAS: c(t.TCAS),
		CWD: c(t.TCWD), RTP: c(t.TRTP), Burst: c(t.TBURST), CCD: c(t.TCCD),
		WTR: c(t.TWTR), RRD: c(t.TRRD), REFI: c(t.TREFI), RFC: c(t.TRFC),
	}
}

type bankState struct {
	rowOpen   bool
	openRow   uint64
	nextAct   uint64 // earliest cycle the next ACT may issue
	nextRead  uint64 // earliest cycle the next RD may issue
	nextWrite uint64 // earliest cycle the next WR may issue
	nextPre   uint64 // earliest cycle the next PRE may issue
	busyUntil uint64 // transaction-granularity occupancy
}

type rankState struct {
	actWindow   [4]uint64 // timestamps of the last four ACTs (tFAW)
	actIdx      int
	actCount    int
	nextAct     uint64 // tRRD constraint across banks in the rank
	nextRefresh uint64
	refreshEnd  uint64
}

type chanState struct {
	busFree   uint64 // cycle the data bus becomes free
	nextCol   uint64 // tCCD column command spacing
	lastWrite bool
	wtrUntil  uint64 // write-to-read turnaround gate for RD commands
}

// Outcome classifies how a transaction hit the row buffer, for statistics
// and for the Figure 1 attack primer.
type Outcome int

const (
	// RowHit means the target row was already open.
	RowHit Outcome = iota
	// RowMiss means the bank was precharged (closed) and only needed ACT.
	RowMiss
	// RowConflict means a different row was open and had to be precharged.
	RowConflict
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case RowHit:
		return "hit"
	case RowMiss:
		return "miss"
	default:
		return "conflict"
	}
}

// Result reports the schedule the device chose for a transaction.
type Result struct {
	// Start is the cycle the first command of the transaction issued.
	Start uint64
	// DataDone is the cycle the data burst completed on the bus; this is
	// the transaction's completion time as seen by the controller.
	DataDone uint64
	// Outcome is the row-buffer outcome.
	Outcome Outcome
}

// stallWindow is an injected blackout [from, until) during which no command
// may start (a fault-injected refresh storm beyond the nominal schedule).
type stallWindow struct {
	from, until uint64
}

// Device is the DRAM device array behind one set of channels.
type Device struct {
	t         Timing
	mapper    *mem.Mapper
	closedRow bool
	banks     []bankState
	ranks     []rankState
	channels  []chanState
	stalls    []stallWindow

	// Observability (nil = off). Measurement only: never read during
	// scheduling decisions.
	mx *obs.Registry
	tr *obs.Tracer

	// Stats counters.
	hits, misses, conflicts, refreshes uint64
	stallHits                          uint64
}

// New builds a Device for the geometry embedded in the mapper. closedRow
// selects the auto-precharge policy required by the secure schemes.
func New(t config.DRAMTiming, mapper *mem.Mapper, closedRow bool) *Device {
	geo := mapper.Geometry()
	d := &Device{
		t:         convert(t),
		mapper:    mapper,
		closedRow: closedRow,
		banks:     make([]bankState, mapper.BankCount()),
		ranks:     make([]rankState, geo.Channels*geo.Ranks),
		channels:  make([]chanState, geo.Channels),
	}
	for i := range d.ranks {
		d.ranks[i].nextRefresh = d.t.REFI
	}
	return d
}

// ClosedRow reports whether the device auto-precharges after every access.
func (d *Device) ClosedRow() bool { return d.closedRow }

// Observe attaches an observability registry and tracer (either may be
// nil). The device records refresh activity; transaction-level metrics
// are attributed by the memory controller, which knows the domain.
func (d *Device) Observe(mx *obs.Registry, tr *obs.Tracer) {
	d.mx = mx
	d.tr = tr
}

// Timing returns the CPU-cycle timing set in use.
func (d *Device) Timing() Timing { return d.t }

func (d *Device) rankIndex(c mem.Coord) int {
	return c.Channel*d.mapper.Geometry().Ranks + c.Rank
}

// BankBusyUntil returns the transaction-granularity busy horizon of the
// coordinate's bank: the controller should not commit a second transaction
// to the bank before this cycle.
func (d *Device) BankBusyUntil(c mem.Coord) uint64 {
	return d.banks[d.mapper.FlatBank(c)].busyUntil
}

// RowOpen reports whether the coordinate's row is currently open, which
// lets the scheduler implement FR-FCFS row-hit-first policies.
func (d *Device) RowOpen(c mem.Coord) bool {
	b := &d.banks[d.mapper.FlatBank(c)]
	return b.rowOpen && b.openRow == c.Row
}

func max64(vals ...uint64) uint64 {
	var m uint64
	for _, v := range vals {
		if v > m {
			m = v
		}
	}
	return m
}

// refreshGate advances the lazy refresh schedule of the rank and returns the
// earliest cycle ≥ at that is outside a refresh window and outside every
// injected stall window. The catch-up is O(1) in the number of elapsed
// refresh intervals, so a transaction displaced far into the future by an
// injected storm (up to fault.Forever) is gated in constant time.
func (d *Device) refreshGate(ri int, rk *rankState, at uint64) uint64 {
	if at >= rk.nextRefresh {
		k := (at-rk.nextRefresh)/d.t.REFI + 1
		rk.refreshEnd = rk.nextRefresh + (k-1)*d.t.REFI + d.t.RFC
		rk.nextRefresh += k * d.t.REFI
		d.refreshes += k
		d.mx.Add(obs.CtrRefreshes, 0, k)
	}
	if at < rk.refreshEnd {
		d.mx.Add(obs.CtrRefreshStallCycles, 0, rk.refreshEnd-at)
		d.tr.Emit(obs.Event{Cycle: at, Dur: rk.refreshEnd - at, Comp: obs.CompRank, Kind: obs.EvRefresh, Index: int32(ri)})
		at = rk.refreshEnd
	}
	return d.stallGate(at)
}

// stallGate pushes at past any injected blackout window covering it.
// Windows are disjoint-or-nested in practice but the loop handles overlaps;
// it terminates because each iteration strictly advances at to a window end.
func (d *Device) stallGate(at uint64) uint64 {
	for moved := true; moved; {
		moved = false
		for _, w := range d.stalls {
			if at >= w.from && at < w.until {
				at = w.until
				d.stallHits++
				moved = true
			}
		}
	}
	return at
}

// InjectStallWindow registers a blackout window [from, until): no command
// may start inside it. It models a fault-injected refresh storm; the window
// applies to every rank alike (storms are device-global and, critically for
// the security argument, input-independent). until is clamped so schedule
// arithmetic cannot overflow.
func (d *Device) InjectStallWindow(from, until uint64) {
	const maxUntil = uint64(1) << 60 // fault.Forever; avoids importing the package
	if until > maxUntil {
		until = maxUntil
	}
	if until <= from {
		return
	}
	d.stalls = append(d.stalls, stallWindow{from: from, until: until})
}

// InjectedStallHits reports how many command schedules were displaced by
// injected stall windows.
func (d *Device) InjectedStallHits() uint64 { return d.stallHits }

// fawGate returns the earliest cycle ≥ at an ACT may issue under tFAW.
func (d *Device) fawGate(rk *rankState, at uint64) uint64 {
	if rk.actCount < len(rk.actWindow) {
		return at
	}
	oldest := rk.actWindow[rk.actIdx]
	if oldest+d.t.FAW > at {
		at = oldest + d.t.FAW
	}
	return at
}

func (d *Device) recordAct(rk *rankState, at uint64) {
	rk.actWindow[rk.actIdx] = at
	rk.actIdx = (rk.actIdx + 1) % len(rk.actWindow)
	rk.actCount++
	rk.nextAct = at + d.t.RRD
}

// Service commits a transaction for coordinate c with kind k, starting no
// earlier than cycle now, and returns the chosen schedule. The caller is
// responsible for not over-committing a bank (see BankBusyUntil).
func (d *Device) Service(c mem.Coord, k mem.Kind, now uint64) Result {
	t := &d.t
	bank := &d.banks[d.mapper.FlatBank(c)]
	ri := d.rankIndex(c)
	rank := &d.ranks[ri]
	ch := &d.channels[c.Channel]

	start := now
	if bank.busyUntil > start {
		start = bank.busyUntil
	}
	start = d.refreshGate(ri, rank, start)

	var outcome Outcome
	var colCmd uint64 // cycle the RD/WR column command issues
	switch {
	case bank.rowOpen && bank.openRow == c.Row:
		outcome = RowHit
		colCmd = start
		d.hits++
	case bank.rowOpen:
		outcome = RowConflict
		d.conflicts++
		// PRE, then ACT, then column command.
		pre := max64(start, bank.nextPre)
		act := max64(pre+t.RP, bank.nextAct, rank.nextAct)
		act = d.fawGate(rank, act)
		d.recordAct(rank, act)
		bank.nextAct = act + t.RC
		bank.nextPre = act + t.RAS
		bank.openRow = c.Row
		bank.rowOpen = true
		colCmd = act + t.RCD
		start = pre
	default:
		outcome = RowMiss
		d.misses++
		act := max64(start, bank.nextAct, rank.nextAct)
		act = d.fawGate(rank, act)
		d.recordAct(rank, act)
		bank.nextAct = act + t.RC
		bank.nextPre = act + t.RAS
		bank.openRow = c.Row
		bank.rowOpen = true
		colCmd = act + t.RCD
		start = act
	}

	// Column command constraints: per-bank RD/WR gates, channel tCCD
	// spacing, write-to-read turnaround and data bus availability.
	if k == mem.Read {
		colCmd = max64(colCmd, bank.nextRead, ch.nextCol, ch.wtrUntil)
	} else {
		colCmd = max64(colCmd, bank.nextWrite, ch.nextCol)
	}
	// Data burst must find the bus free.
	dataLat := t.CAS
	if k == mem.Write {
		dataLat = t.CWD
	}
	if colCmd+dataLat < ch.busFree {
		colCmd = ch.busFree - dataLat
	}
	dataStart := colCmd + dataLat
	dataDone := dataStart + t.Burst

	// Update channel state.
	ch.busFree = dataDone
	ch.nextCol = colCmd + t.CCD
	if k == mem.Write {
		ch.lastWrite = true
		ch.wtrUntil = dataDone + t.WTR
	} else {
		ch.lastWrite = false
	}

	// Update bank column/precharge gates.
	bank.nextRead = colCmd + t.CCD
	bank.nextWrite = colCmd + t.CCD
	if k == mem.Read {
		if p := colCmd + t.RTP; p > bank.nextPre {
			bank.nextPre = p
		}
	} else {
		if p := dataDone + t.WR; p > bank.nextPre {
			bank.nextPre = p
		}
	}

	if d.closedRow {
		// Auto-precharge: close the row as soon as legal.
		pre := bank.nextPre
		bank.rowOpen = false
		if act := pre + t.RP; act > bank.nextAct {
			bank.nextAct = act
		}
	}

	bank.busyUntil = dataDone
	return Result{Start: start, DataDone: dataDone, Outcome: outcome}
}

// Stats reports cumulative row-buffer outcome counts and refresh count.
func (d *Device) Stats() (hits, misses, conflicts, refreshes uint64) {
	return d.hits, d.misses, d.conflicts, d.refreshes
}

// Reset returns the device to its post-power-up state (all banks closed,
// counters cleared, refresh schedule restarted).
func (d *Device) Reset() {
	for i := range d.banks {
		d.banks[i] = bankState{}
	}
	for i := range d.ranks {
		d.ranks[i] = rankState{nextRefresh: d.t.REFI}
	}
	for i := range d.channels {
		d.channels[i] = chanState{}
	}
	d.stalls = nil
	d.hits, d.misses, d.conflicts, d.refreshes = 0, 0, 0, 0
	d.stallHits = 0
}

// UncontendedReadLatency returns the latency in CPU cycles of an isolated
// read to a closed bank: ACT + tRCD + tCAS + tBURST. Useful as the "n" of
// the Figure 1 example and for calibrating workloads.
func (d *Device) UncontendedReadLatency() uint64 {
	return d.t.RCD + d.t.CAS + d.t.Burst
}

// String describes the device configuration.
func (d *Device) String() string {
	policy := "open-row"
	if d.closedRow {
		policy = "closed-row"
	}
	return fmt.Sprintf("dram{banks=%d %s}", len(d.banks), policy)
}
