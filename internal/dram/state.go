package dram

import "fmt"

// BankSave mirrors one bank's row-buffer and command-gate state.
type BankSave struct {
	RowOpen   bool   `json:"row_open"`
	OpenRow   uint64 `json:"open_row"`
	NextAct   uint64 `json:"next_act"`
	NextRead  uint64 `json:"next_read"`
	NextWrite uint64 `json:"next_write"`
	NextPre   uint64 `json:"next_pre"`
	BusyUntil uint64 `json:"busy_until"`
}

// RankSave mirrors one rank's tFAW window and refresh schedule.
type RankSave struct {
	ActWindow   [4]uint64 `json:"act_window"`
	ActIdx      int       `json:"act_idx"`
	ActCount    int       `json:"act_count"`
	NextAct     uint64    `json:"next_act"`
	NextRefresh uint64    `json:"next_refresh"`
	RefreshEnd  uint64    `json:"refresh_end"`
}

// ChanSave mirrors one channel's bus and turnaround state.
type ChanSave struct {
	BusFree   uint64 `json:"bus_free"`
	NextCol   uint64 `json:"next_col"`
	LastWrite bool   `json:"last_write"`
	WTRUntil  uint64 `json:"wtr_until"`
}

// StallSave mirrors one injected blackout window.
type StallSave struct {
	From  uint64 `json:"from"`
	Until uint64 `json:"until"`
}

// DeviceState is the device's full mutable state. Timing parameters and
// geometry are configuration, rebuilt by the constructor.
type DeviceState struct {
	Banks     []BankSave  `json:"banks"`
	Ranks     []RankSave  `json:"ranks"`
	Channels  []ChanSave  `json:"channels"`
	Stalls    []StallSave `json:"stalls,omitempty"`
	Hits      uint64      `json:"hits"`
	Misses    uint64      `json:"misses"`
	Conflicts uint64      `json:"conflicts"`
	Refreshes uint64      `json:"refreshes"`
	StallHits uint64      `json:"stall_hits"`
}

// SaveState captures the device's full mutable state, including any
// injected stall windows.
func (d *Device) SaveState() DeviceState {
	st := DeviceState{
		Banks:    make([]BankSave, len(d.banks)),
		Ranks:    make([]RankSave, len(d.ranks)),
		Channels: make([]ChanSave, len(d.channels)),
		Hits:     d.hits, Misses: d.misses, Conflicts: d.conflicts,
		Refreshes: d.refreshes, StallHits: d.stallHits,
	}
	for i, b := range d.banks {
		st.Banks[i] = BankSave{RowOpen: b.rowOpen, OpenRow: b.openRow, NextAct: b.nextAct,
			NextRead: b.nextRead, NextWrite: b.nextWrite, NextPre: b.nextPre, BusyUntil: b.busyUntil}
	}
	for i, r := range d.ranks {
		st.Ranks[i] = RankSave{ActWindow: r.actWindow, ActIdx: r.actIdx, ActCount: r.actCount,
			NextAct: r.nextAct, NextRefresh: r.nextRefresh, RefreshEnd: r.refreshEnd}
	}
	for i, c := range d.channels {
		st.Channels[i] = ChanSave{BusFree: c.busFree, NextCol: c.nextCol, LastWrite: c.lastWrite, WTRUntil: c.wtrUntil}
	}
	for _, w := range d.stalls {
		st.Stalls = append(st.Stalls, StallSave{From: w.from, Until: w.until})
	}
	return st
}

// RestoreState overwrites the device's mutable state. The stall-window set
// is replaced wholesale with the saved one, so restore after attaching any
// fault schedule (AttachFaults then RestoreState): the saved set already
// contains the windows that were registered before the save.
func (d *Device) RestoreState(st DeviceState) error {
	if len(st.Banks) != len(d.banks) || len(st.Ranks) != len(d.ranks) || len(st.Channels) != len(d.channels) {
		return fmt.Errorf("dram: state shape (%d banks, %d ranks, %d channels) does not match device (%d, %d, %d)",
			len(st.Banks), len(st.Ranks), len(st.Channels), len(d.banks), len(d.ranks), len(d.channels))
	}
	for i, b := range st.Banks {
		d.banks[i] = bankState{rowOpen: b.RowOpen, openRow: b.OpenRow, nextAct: b.NextAct,
			nextRead: b.NextRead, nextWrite: b.NextWrite, nextPre: b.NextPre, busyUntil: b.BusyUntil}
	}
	for i, r := range st.Ranks {
		d.ranks[i] = rankState{actWindow: r.ActWindow, actIdx: r.ActIdx, actCount: r.ActCount,
			nextAct: r.NextAct, nextRefresh: r.NextRefresh, refreshEnd: r.RefreshEnd}
	}
	for i, c := range st.Channels {
		d.channels[i] = chanState{busFree: c.BusFree, nextCol: c.NextCol, lastWrite: c.LastWrite, wtrUntil: c.WTRUntil}
	}
	d.stalls = d.stalls[:0]
	for _, w := range st.Stalls {
		d.stalls = append(d.stalls, stallWindow{from: w.From, until: w.Until})
	}
	d.hits, d.misses, d.conflicts = st.Hits, st.Misses, st.Conflicts
	d.refreshes, d.stallHits = st.Refreshes, st.StallHits
	return nil
}
