package dram

import (
	"sort"
	"testing"
	"testing/quick"

	"dagguise/internal/config"
	"dagguise/internal/mem"
)

func testDevice(closed bool) (*Device, *mem.Mapper) {
	m := mem.MustMapper(mem.Geometry{Channels: 1, Ranks: 1, Banks: 8, RowBytes: 8 << 10, LineBytes: 64, CapacityGiB: 4})
	return New(config.DDR31600(), m, closed), m
}

func TestUncontendedReadLatency(t *testing.T) {
	d, _ := testDevice(false)
	tm := d.Timing()
	want := tm.RCD + tm.CAS + tm.Burst
	if got := d.UncontendedReadLatency(); got != want {
		t.Fatalf("UncontendedReadLatency = %d, want %d", got, want)
	}
	// Table 2 at ratio 3: (11+11+4)*3 = 78 CPU cycles.
	if want != 78 {
		t.Fatalf("expected 78 CPU cycles for DDR3-1600, got %d", want)
	}
}

func TestRowHitFasterThanMissFasterThanConflict(t *testing.T) {
	d, _ := testDevice(false)
	c := mem.Coord{Bank: 0, Row: 10, Column: 0}

	// First access: row miss (ACT+RD).
	r1 := d.Service(c, mem.Read, 0)
	if r1.Outcome != RowMiss {
		t.Fatalf("first access outcome = %v, want miss", r1.Outcome)
	}
	missLat := r1.DataDone - 0

	// Second access, same row, after the bank is free: row hit.
	at := r1.DataDone
	r2 := d.Service(c, mem.Read, at)
	if r2.Outcome != RowHit {
		t.Fatalf("second access outcome = %v, want hit", r2.Outcome)
	}
	hitLat := r2.DataDone - at

	// Third access, different row: conflict (PRE+ACT+RD).
	at = r2.DataDone
	c2 := mem.Coord{Bank: 0, Row: 11, Column: 0}
	r3 := d.Service(c2, mem.Read, at)
	if r3.Outcome != RowConflict {
		t.Fatalf("third access outcome = %v, want conflict", r3.Outcome)
	}
	confLat := r3.DataDone - at

	if !(hitLat < missLat && missLat < confLat) {
		t.Fatalf("latency ordering violated: hit=%d miss=%d conflict=%d", hitLat, missLat, confLat)
	}
}

func TestClosedRowAlwaysMisses(t *testing.T) {
	d, _ := testDevice(true)
	c := mem.Coord{Bank: 3, Row: 5, Column: 1}
	at := uint64(0)
	for i := 0; i < 5; i++ {
		r := d.Service(c, mem.Read, at)
		if r.Outcome == RowHit {
			t.Fatalf("access %d: row hit under closed-row policy", i)
		}
		at = r.DataDone
	}
	hits, _, _, _ := d.Stats()
	if hits != 0 {
		t.Fatalf("closed-row device recorded %d hits", hits)
	}
}

func TestBankParallelismBeatsSameBank(t *testing.T) {
	// Four requests to four banks should complete sooner than four
	// requests to one bank (closed-row to make accesses uniform).
	dSame, _ := testDevice(true)
	at := uint64(0)
	var doneSame uint64
	for i := 0; i < 4; i++ {
		r := dSame.Service(mem.Coord{Bank: 0, Row: uint64(i)}, mem.Read, at)
		at = dSame.BankBusyUntil(mem.Coord{Bank: 0})
		doneSame = r.DataDone
	}

	dPar, _ := testDevice(true)
	var donePar uint64
	for i := 0; i < 4; i++ {
		r := dPar.Service(mem.Coord{Bank: i, Row: 0}, mem.Read, 0)
		donePar = r.DataDone
	}
	if donePar >= doneSame {
		t.Fatalf("bank-parallel completion %d not faster than same-bank %d", donePar, doneSame)
	}
}

func TestBusSerialisesBursts(t *testing.T) {
	// Two simultaneous reads to different banks share one data bus: their
	// bursts must not overlap.
	d, _ := testDevice(true)
	r1 := d.Service(mem.Coord{Bank: 0, Row: 0}, mem.Read, 0)
	r2 := d.Service(mem.Coord{Bank: 1, Row: 0}, mem.Read, 0)
	burst := d.Timing().Burst
	if r2.DataDone < r1.DataDone+burst {
		t.Fatalf("bursts overlap: r1 done %d, r2 done %d, burst %d", r1.DataDone, r2.DataDone, burst)
	}
}

func TestTFAWLimitsActivationRate(t *testing.T) {
	d, _ := testDevice(true)
	// Issue 5 activations to 5 different banks at cycle 0; the 5th ACT
	// must wait for the tFAW window.
	var starts []uint64
	for i := 0; i < 5; i++ {
		r := d.Service(mem.Coord{Bank: i, Row: 0}, mem.Read, 0)
		starts = append(starts, r.Start)
	}
	faw := d.Timing().FAW
	if starts[4] < starts[0]+faw {
		t.Fatalf("5th ACT at %d violates tFAW window starting %d (tFAW=%d)", starts[4], starts[0], faw)
	}
}

func TestWriteThenReadTurnaround(t *testing.T) {
	d, _ := testDevice(false)
	w := d.Service(mem.Coord{Bank: 0, Row: 0}, mem.Write, 0)
	// Read to a different bank right after the write: must respect tWTR
	// after the write burst.
	r := d.Service(mem.Coord{Bank: 1, Row: 0}, mem.Read, 0)
	tm := d.Timing()
	minRead := w.DataDone + tm.WTR + tm.CAS + tm.Burst
	if r.DataDone < minRead {
		t.Fatalf("read after write done at %d, want >= %d", r.DataDone, minRead)
	}
}

func TestRefreshBlocksRank(t *testing.T) {
	d, _ := testDevice(true)
	tm := d.Timing()
	// Ask for service just after the first refresh interval elapses; the
	// transaction must be pushed past the refresh window.
	r := d.Service(mem.Coord{Bank: 0, Row: 0}, mem.Read, tm.REFI)
	if r.Start < tm.REFI+tm.RFC {
		t.Fatalf("transaction started %d inside refresh window [%d,%d)", r.Start, tm.REFI, tm.REFI+tm.RFC)
	}
	_, _, _, refreshes := d.Stats()
	if refreshes == 0 {
		t.Fatal("no refresh recorded")
	}
}

func TestServiceMonotonicCompletion(t *testing.T) {
	// Property: repeatedly servicing the same bank yields strictly
	// increasing completion times regardless of request pattern.
	d, _ := testDevice(false)
	f := func(rows []uint8, kinds []bool) bool {
		d.Reset()
		var last uint64
		at := uint64(0)
		n := len(rows)
		if n > 32 {
			n = 32
		}
		for i := 0; i < n; i++ {
			k := mem.Read
			if i < len(kinds) && kinds[i] {
				k = mem.Write
			}
			r := d.Service(mem.Coord{Bank: 2, Row: uint64(rows[i] % 16)}, k, at)
			if r.DataDone <= last {
				return false
			}
			last = r.DataDone
			at = d.BankBusyUntil(mem.Coord{Bank: 2})
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestServiceStartNotBeforeNow(t *testing.T) {
	d, _ := testDevice(false)
	f := func(bank uint8, row uint16, nowRaw uint16) bool {
		now := uint64(nowRaw)
		r := d.Service(mem.Coord{Bank: int(bank % 8), Row: uint64(row)}, mem.Read, now)
		return r.Start >= now && r.DataDone > r.Start
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestResetRestoresInitialState(t *testing.T) {
	d, _ := testDevice(false)
	c := mem.Coord{Bank: 0, Row: 0}
	first := d.Service(c, mem.Read, 0)
	d.Reset()
	second := d.Service(c, mem.Read, 0)
	if first != second {
		t.Fatalf("post-reset service %+v differs from fresh %+v", second, first)
	}
	hits, misses, conflicts, _ := d.Stats()
	if hits != 0 || misses != 1 || conflicts != 0 {
		t.Fatalf("stats not reset: %d/%d/%d", hits, misses, conflicts)
	}
}

func TestBusNeverOverlapsProperty(t *testing.T) {
	// Property: across any mix of banks, rows and kinds, the data bursts
	// of all transactions on the shared bus are separated by at least
	// tBURST — collect every DataDone and check pairwise spacing.
	d, _ := testDevice(false)
	f := func(ops []uint16) bool {
		d.Reset()
		var dones []uint64
		now := uint64(0)
		n := len(ops)
		if n > 48 {
			n = 48
		}
		for i := 0; i < n; i++ {
			op := ops[i]
			c := mem.Coord{Bank: int(op % 8), Row: uint64(op>>3) % 64}
			k := mem.Read
			if op&0x8000 != 0 {
				k = mem.Write
			}
			// Respect the transaction-level contract: one in-flight
			// transaction per bank.
			start := d.BankBusyUntil(c)
			if start < now {
				start = now
			}
			r := d.Service(c, k, start)
			dones = append(dones, r.DataDone)
			now += uint64(op % 7)
		}
		sorted := append([]uint64{}, dones...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		burst := d.Timing().Burst
		for i := 1; i < len(sorted); i++ {
			if sorted[i]-sorted[i-1] < burst {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSameBankRespectsRowCycleProperty(t *testing.T) {
	// Property: consecutive row activations in one bank are at least tRC
	// apart. Closed-row forces an ACT per access, so consecutive Start
	// times bound the ACT spacing from below only if starts equal ACTs;
	// instead check completion spacing >= tRCD+tCAS gap implied by tRC
	// for back-to-back conflicting accesses.
	d, _ := testDevice(true)
	tm := d.Timing()
	var starts []uint64
	at := uint64(0)
	for i := 0; i < 10; i++ {
		r := d.Service(mem.Coord{Bank: 1, Row: uint64(i)}, mem.Read, at)
		starts = append(starts, r.Start)
		at = d.BankBusyUntil(mem.Coord{Bank: 1})
	}
	for i := 1; i < len(starts); i++ {
		// Start is the ACT issue time for closed-bank accesses after
		// the first; spacing must respect tRC... except the very first
		// pair where Start includes the precharge-free cold start.
		if i >= 2 && starts[i]-starts[i-1] < tm.RC {
			t.Fatalf("ACTs %d and %d only %d apart (tRC=%d)", i-1, i, starts[i]-starts[i-1], tm.RC)
		}
	}
}

func TestOutcomeString(t *testing.T) {
	if RowHit.String() != "hit" || RowMiss.String() != "miss" || RowConflict.String() != "conflict" {
		t.Fatal("Outcome.String mismatch")
	}
}

func TestDeviceString(t *testing.T) {
	dOpen, _ := testDevice(false)
	dClosed, _ := testDevice(true)
	if dOpen.String() == dClosed.String() {
		t.Fatal("open and closed devices should describe differently")
	}
}

func TestInjectedStallWindowDisplacesService(t *testing.T) {
	d, _ := testDevice(true)
	d.InjectStallWindow(1_000, 5_000)
	c := mem.Coord{Bank: 0, Row: 3, Column: 0}

	// Before the window: unaffected.
	if r := d.Service(c, mem.Read, 0); r.Start >= 1_000 {
		t.Fatalf("pre-window service displaced to %d", r.Start)
	}
	// Inside the window: pushed past its end.
	r := d.Service(c, mem.Read, 2_000)
	if r.Start < 5_000 {
		t.Fatalf("in-window service started at %d, want >= 5000", r.Start)
	}
	if d.InjectedStallHits() == 0 {
		t.Fatal("stall hit not accounted")
	}
	// Well after the window: unaffected again.
	r2 := d.Service(c, mem.Read, 50_000)
	if r2.Start >= 1<<30 {
		t.Fatalf("post-window service displaced to %d", r2.Start)
	}
}

func TestInjectedStallWindowClampsAndRefreshCatchUpIsO1(t *testing.T) {
	d, _ := testDevice(true)
	// A permanent storm: until is clamped to 2^60 and the O(1) refresh
	// catch-up must handle the enormous displacement without spinning.
	d.InjectStallWindow(100, ^uint64(0))
	r := d.Service(mem.Coord{Bank: 1, Row: 0, Column: 0}, mem.Read, 500)
	if r.Start < 1<<60 {
		t.Fatalf("service inside permanent storm started at %d", r.Start)
	}
	if r.DataDone <= r.Start {
		t.Fatal("schedule arithmetic overflowed")
	}
	// A second transaction on the same bank lands even later, exercising
	// the refresh catch-up with a huge `at`.
	r2 := d.Service(mem.Coord{Bank: 1, Row: 1, Column: 0}, mem.Read, 600)
	if r2.Start < r.DataDone {
		t.Fatalf("bank occupancy lost under storm: %d < %d", r2.Start, r.DataDone)
	}
}

func TestInjectStallWindowRejectsEmpty(t *testing.T) {
	d, _ := testDevice(true)
	d.InjectStallWindow(10, 10)
	d.InjectStallWindow(20, 5)
	if r := d.Service(mem.Coord{Bank: 0, Row: 0, Column: 0}, mem.Read, 12); r.Start >= 1_000 {
		t.Fatalf("empty windows must be ignored, start=%d", r.Start)
	}
}
