// Package smt demonstrates the paper's §7 claim that DAGguise generalises
// beyond memory controllers: rDAGs can shape *any* scheduler-mediated
// request stream. Here the shared resource is the functional-unit ports of
// an SMT core (the PORTSMASH-style channel of Aldaya et al.): two hardware
// threads compete for issue ports, a victim's secret-dependent use of a
// low-throughput unit (the non-pipelined divider) delays the attacker's
// own µops, and the attacker reads the secret from its issue latencies.
//
// The defense is the same shaper, re-instantiated: a defense rDAG whose
// vertices name functional-unit classes instead of DRAM banks, executed by
// the identical rdag.PatternDriver. The shaper sits between decode and
// dispatch, delaying the victim's µops to the prescribed schedule and
// dispatching fake µops when no real one matches the prescribed unit.
package smt

import (
	"fmt"

	"dagguise/internal/rdag"
)

// Unit is a functional-unit class.
type Unit int

// The modelled unit classes.
const (
	ALU Unit = iota
	MUL
	DIV
	LSU
	numUnits
)

// String names the unit.
func (u Unit) String() string {
	switch u {
	case ALU:
		return "alu"
	case MUL:
		return "mul"
	case DIV:
		return "div"
	case LSU:
		return "lsu"
	}
	return fmt.Sprintf("unit(%d)", int(u))
}

// UOp is one micro-operation of a thread's trace.
type UOp struct {
	Unit Unit
	// Gap is the number of cycles the thread is busy with unshared work
	// before this µop becomes ready.
	Gap int
}

// unitSpec describes a unit class's ports and timing.
type unitSpec struct {
	ports     int
	latency   uint64
	pipelined bool
}

// defaultUnits models a small SMT back-end: two ALUs (1-cycle), one
// pipelined multiplier (3-cycle), one NON-pipelined divider (12-cycle; the
// contended resource of the attack), one load/store port (4-cycle).
func defaultUnits() map[Unit]unitSpec {
	return map[Unit]unitSpec{
		ALU: {ports: 2, latency: 1, pipelined: true},
		MUL: {ports: 1, latency: 3, pipelined: true},
		DIV: {ports: 1, latency: 12, pipelined: false},
		LSU: {ports: 1, latency: 4, pipelined: true},
	}
}

// Core is a two-thread SMT core sharing functional-unit ports. Thread 0 is
// the victim (optionally shaped), thread 1 the attacker.
type Core struct {
	units map[Unit]unitSpec
	// busyUntil[u][p]: cycle port p of unit u frees (for non-pipelined
	// units this is completion; for pipelined ones it is the next issue
	// opportunity, i.e. one cycle after issue).
	busyUntil map[Unit][]uint64

	priority int // alternating arbitration winner
}

// NewCore builds the default SMT core.
func NewCore() *Core {
	c := &Core{units: defaultUnits(), busyUntil: make(map[Unit][]uint64)}
	for u, spec := range c.units {
		c.busyUntil[u] = make([]uint64, spec.ports)
	}
	return c
}

// tryIssue issues a µop of the unit class at cycle now if a port is free,
// returning the completion cycle and success.
func (c *Core) tryIssue(u Unit, now uint64) (uint64, bool) {
	spec := c.units[u]
	for p := 0; p < spec.ports; p++ {
		if c.busyUntil[u][p] <= now {
			if spec.pipelined {
				c.busyUntil[u][p] = now + 1
			} else {
				c.busyUntil[u][p] = now + spec.latency
			}
			return now + spec.latency, true
		}
	}
	return 0, false
}

// Latency returns the unit's execution latency.
func (c *Core) Latency(u Unit) uint64 { return c.units[u].latency }

// PortShaper is the DAGguise shaper re-targeted at dispatch: it buffers
// the victim thread's µops and releases them (or fakes) per the defense
// rDAG. Slot banks index unit classes.
type PortShaper struct {
	driver rdag.Driver
	queue  []UOp
	cap    int

	inflight map[int]*slotState

	forwarded, fakes uint64
}

// slotState tracks one dispatched slot: waiting for a port, then
// executing until done.
type slotState struct {
	unit   Unit
	issued bool
	done   uint64
}

// NewPortShaper builds a shaper over a defense rDAG whose Banks dimension
// is the number of unit classes.
func NewPortShaper(tpl rdag.Template) (*PortShaper, error) {
	if tpl.Banks != int(numUnits) {
		return nil, fmt.Errorf("smt: defense rDAG must span %d unit classes, got %d banks", numUnits, tpl.Banks)
	}
	d, err := rdag.NewPatternDriver(tpl)
	if err != nil {
		return nil, err
	}
	return &PortShaper{driver: d, cap: 8, inflight: make(map[int]*slotState)}, nil
}

// Enqueue buffers a real µop; false when the buffer is full.
func (s *PortShaper) Enqueue(op UOp) bool {
	if len(s.queue) >= s.cap {
		return false
	}
	s.queue = append(s.queue, op)
	return true
}

// Full reports whether the µop buffer is at capacity.
func (s *PortShaper) Full() bool { return len(s.queue) >= s.cap }

// Stats returns forwarded and fake µop counts.
func (s *PortShaper) Stats() (forwarded, fakes uint64) { return s.forwarded, s.fakes }

// Tick advances the shaper one cycle against the core: dispatched slots
// claim ports as they free up, completed slots advance the defense rDAG,
// and newly due slots dispatch a real µop of the prescribed unit if one is
// buffered, or a fake one otherwise. Real and fake µops occupy ports
// identically, so the observable port schedule depends only on the rDAG.
// The returned units are the classes dispatched this cycle.
func (s *PortShaper) Tick(now uint64, core *Core) []Unit {
	// Tokens are processed in ascending order for determinism; pattern
	// drivers use the sequence index as the token, so the space is tiny.
	for token := 0; token < 64; token++ {
		st, ok := s.inflight[token]
		if !ok {
			continue
		}
		if !st.issued {
			if done, issued := core.tryIssue(st.unit, now); issued {
				st.issued = true
				st.done = done
			}
			continue
		}
		if st.done <= now {
			delete(s.inflight, token)
			s.driver.Complete(token, now)
		}
	}
	var out []Unit
	for _, slot := range s.driver.Poll(now) {
		unit := Unit(slot.Bank % int(numUnits))
		matched := false
		for i := range s.queue {
			if s.queue[i].Unit == unit {
				s.queue = append(s.queue[:i], s.queue[i+1:]...)
				matched = true
				break
			}
		}
		if matched {
			s.forwarded++
		} else {
			s.fakes++
		}
		st := &slotState{unit: unit}
		if done, issued := core.tryIssue(unit, now); issued {
			st.issued = true
			st.done = done
		}
		s.inflight[slot.Token] = st
		out = append(out, unit)
	}
	return out
}
