package smt

import (
	"testing"

	"dagguise/internal/rdag"
)

func TestCoreIssueAndPorts(t *testing.T) {
	c := NewCore()
	// Two ALUs: two issues in the same cycle succeed, a third fails.
	if _, ok := c.tryIssue(ALU, 0); !ok {
		t.Fatal("first ALU issue failed")
	}
	if _, ok := c.tryIssue(ALU, 0); !ok {
		t.Fatal("second ALU issue failed")
	}
	if _, ok := c.tryIssue(ALU, 0); ok {
		t.Fatal("third ALU issue succeeded with 2 ports")
	}
	// Pipelined: next cycle both ports are free again.
	if _, ok := c.tryIssue(ALU, 1); !ok {
		t.Fatal("pipelined ALU not free next cycle")
	}
}

func TestDividerNonPipelined(t *testing.T) {
	c := NewCore()
	done, ok := c.tryIssue(DIV, 0)
	if !ok || done != 12 {
		t.Fatalf("DIV issue: done=%d ok=%v", done, ok)
	}
	if _, ok := c.tryIssue(DIV, 5); ok {
		t.Fatal("non-pipelined DIV accepted a second op mid-execution")
	}
	if _, ok := c.tryIssue(DIV, 12); !ok {
		t.Fatal("DIV not free after completion")
	}
}

func TestUnitString(t *testing.T) {
	for _, u := range []Unit{ALU, MUL, DIV, LSU} {
		if u.String() == "" {
			t.Fatal("empty unit name")
		}
	}
}

func TestSecretTraceEncodesBits(t *testing.T) {
	t0 := SecretTrace([]int{0, 0})
	t1 := SecretTrace([]int{1, 1})
	divs := func(ops []UOp) int {
		n := 0
		for _, op := range ops {
			if op.Unit == DIV {
				n++
			}
		}
		return n
	}
	if divs(t0) != 0 || divs(t1) != 2 {
		t.Fatalf("div counts: %d/%d, want 0/2", divs(t0), divs(t1))
	}
}

func TestPortShaperRejectsWrongBankCount(t *testing.T) {
	if _, err := NewPortShaper(rdag.Template{Sequences: 1, Weight: 5, Banks: 2}); err == nil {
		t.Fatal("wrong bank count accepted")
	}
}

func TestPortShaperBuffersAndDispatches(t *testing.T) {
	sh, err := NewPortShaper(DefaultDefense())
	if err != nil {
		t.Fatal(err)
	}
	core := NewCore()
	sh.Enqueue(UOp{Unit: DIV})
	dispatched := map[Unit]int{}
	for now := uint64(0); now < 200; now++ {
		for _, u := range sh.Tick(now, core) {
			dispatched[u]++
		}
	}
	fwd, fakes := sh.Stats()
	if fwd != 1 {
		t.Fatalf("forwarded = %d, want the one real DIV µop", fwd)
	}
	if fakes == 0 {
		t.Fatal("no fakes dispatched over 200 cycles")
	}
	for u := Unit(0); u < numUnits; u++ {
		if dispatched[u] == 0 {
			t.Fatalf("unit %v never dispatched", u)
		}
	}
}

func TestPortChannelLeaksUnshaped(t *testing.T) {
	secret0 := []int{0, 0, 0, 0, 0, 0, 0, 0}
	secret1 := []int{1, 1, 1, 1, 1, 1, 1, 1}
	res, err := MeasureLeakage(secret0, secret1, DefaultDefense(), 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.InsecureMI < 0.05 {
		t.Fatalf("unshaped SMT channel shows no leakage: MI=%f", res.InsecureMI)
	}
	if res.ShapedMI != 0 {
		t.Fatalf("shaped SMT channel leaks: MI=%f", res.ShapedMI)
	}
}

func TestShapedScheduleIdenticalAcrossSecrets(t *testing.T) {
	// Stronger: attacker latencies must be bit-for-bit identical.
	l0, err := RunChannel(SecretTrace([]int{0, 1, 0, 1}), true, DefaultDefense(), 150)
	if err != nil {
		t.Fatal(err)
	}
	l1, err := RunChannel(SecretTrace([]int{1, 0, 1, 1}), true, DefaultDefense(), 150)
	if err != nil {
		t.Fatal(err)
	}
	for i := range l0 {
		if l0[i] != l1[i] {
			t.Fatalf("probe %d: %d vs %d", i, l0[i], l1[i])
		}
	}
}

func TestVictimMakesProgressWhenShaped(t *testing.T) {
	sh, err := NewPortShaper(DefaultDefense())
	if err != nil {
		t.Fatal(err)
	}
	core := NewCore()
	v := &shapedVictim{ops: SecretTrace([]int{1, 0, 1}), shaper: sh}
	for now := uint64(0); now < 2000; now++ {
		v.tick(now, core)
	}
	fwd, _ := sh.Stats()
	if fwd < 10 {
		t.Fatalf("victim forwarded only %d µops in 2000 cycles", fwd)
	}
}
