package smt

import (
	"fmt"

	"dagguise/internal/rdag"
	"dagguise/internal/stats"
)

// SecretTrace builds the victim µop stream of a square-and-multiply-style
// computation over the secret bits: every bit costs a squaring (MUL plus
// ALU work); a set bit additionally uses the non-pipelined divider (the
// modular reduction of a multiply step) — the unit whose port contention
// the attacker observes.
func SecretTrace(bits []int) []UOp {
	var ops []UOp
	for _, b := range bits {
		ops = append(ops,
			UOp{Unit: MUL, Gap: 2},
			UOp{Unit: ALU, Gap: 1},
		)
		if b != 0 {
			ops = append(ops, UOp{Unit: DIV, Gap: 1})
		}
		ops = append(ops, UOp{Unit: ALU, Gap: 3})
	}
	return ops
}

// DefaultDefense is a defense rDAG for the port channel: one sequence per
// unit class with a uniform inter-request weight, so every class is
// exercised at a fixed, secret-independent rate.
func DefaultDefense() rdag.Template {
	return rdag.Template{Sequences: int(numUnits), Weight: 6, Banks: int(numUnits)}
}

// victimThread issues µops in order as ports allow (unshaped victim).
type victimThread struct {
	ops       []UOp
	pos       int
	readyAt   uint64
	pending   bool
	done      uint64
	executing bool
}

func (v *victimThread) tick(now uint64, core *Core) {
	if v.executing {
		if v.done <= now {
			v.executing = false
		} else {
			return
		}
	}
	if !v.pending {
		if len(v.ops) == 0 {
			return
		}
		op := v.ops[v.pos%len(v.ops)]
		v.pos++
		v.readyAt = now + uint64(op.Gap)
		v.pending = true
	}
	op := v.ops[(v.pos-1)%len(v.ops)]
	if now < v.readyAt {
		return
	}
	if done, ok := core.tryIssue(op.Unit, now); ok {
		v.pending = false
		v.executing = true
		v.done = done
	}
}

// shapedVictim feeds µops through the port shaper.
type shapedVictim struct {
	ops     []UOp
	pos     int
	readyAt uint64
	shaper  *PortShaper
}

func (v *shapedVictim) tick(now uint64, core *Core) {
	if len(v.ops) > 0 && now >= v.readyAt && !v.shaper.Full() {
		op := v.ops[v.pos%len(v.ops)]
		v.pos++
		v.shaper.Enqueue(op)
		v.readyAt = now + uint64(op.Gap)
	}
	v.shaper.Tick(now, core)
}

// RunChannel simulates the two-thread core until the attacker collects
// nProbes divider-latency samples. The attacker repeatedly issues a DIV
// probe a fixed gap after the previous one completes and records
// issue-request-to-completion latency. shaped selects the DAGguise port
// shaper for the victim.
func RunChannel(victim []UOp, shaped bool, defense rdag.Template, nProbes int) ([]uint64, error) {
	core := NewCore()
	var unshaped *victimThread
	var protected *shapedVictim
	if shaped {
		sh, err := NewPortShaper(defense)
		if err != nil {
			return nil, err
		}
		protected = &shapedVictim{ops: victim, shaper: sh}
	} else {
		unshaped = &victimThread{ops: victim}
	}

	var latencies []uint64
	const probeGap = 8
	aReady := uint64(0)
	aWant := false
	var aRequested uint64
	aExecuting := false
	var aDone uint64

	for now := uint64(0); now < 4_000_000 && len(latencies) < nProbes; now++ {
		// Attacker (thread 1) issues first each cycle: a fixed, secret-
		// independent arbitration order.
		if aExecuting && aDone <= now {
			aExecuting = false
			latencies = append(latencies, aDone-aRequested)
			aReady = now + probeGap
		}
		if !aExecuting && !aWant && now >= aReady {
			aWant = true
			aRequested = now
		}
		if aWant {
			if done, ok := core.tryIssue(DIV, now); ok {
				aWant = false
				aExecuting = true
				aDone = done
			}
		}
		// Victim (thread 0).
		if protected != nil {
			protected.tick(now, core)
		} else {
			unshaped.tick(now, core)
		}
	}
	if len(latencies) < nProbes {
		return latencies, fmt.Errorf("smt: attacker starved: %d of %d probes", len(latencies), nProbes)
	}
	return latencies, nil
}

// Leakage quantifies how well the port-contention attacker distinguishes
// two victim secrets, with and without shaping.
type Leakage struct {
	InsecureMI float64
	ShapedMI   float64
}

// MeasureLeakage runs both secrets through the channel unshaped and
// shaped, returning per-position mutual information for each.
func MeasureLeakage(secret0, secret1 []int, defense rdag.Template, probes int) (Leakage, error) {
	run := func(bits []int, shaped bool) ([][]uint64, error) {
		lats, err := RunChannel(SecretTrace(bits), shaped, defense, probes)
		if err != nil {
			return nil, err
		}
		out := make([][]uint64, len(lats))
		for i, l := range lats {
			out[i] = []uint64{l}
		}
		return out, nil
	}
	var res Leakage
	i0, err := run(secret0, false)
	if err != nil {
		return res, err
	}
	i1, err := run(secret1, false)
	if err != nil {
		return res, err
	}
	res.InsecureMI = stats.SequenceMI(i0, i1, 1)
	s0, err := run(secret0, true)
	if err != nil {
		return res, err
	}
	s1, err := run(secret1, true)
	if err != nil {
		return res, err
	}
	res.ShapedMI = stats.SequenceMI(s0, s1, 1)
	return res, nil
}
