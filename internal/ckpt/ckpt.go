// Package ckpt serializes full simulator state into versioned, checksummed
// snapshots and provides crash-safe file persistence for them.
//
// On-disk layout (all integers big-endian):
//
//	offset  size  field
//	0       8     magic "DAGCKPT1"
//	8       4     format version (currently 1)
//	12      8     payload length in bytes
//	20      n     payload: deterministic JSON of sim.SystemState
//	20+n    32    SHA-256 over bytes [0, 20+n)
//
// The payload is canonical: every map in the state layer is serialized as a
// sorted pair list, so encoding the same state twice yields identical bytes.
// Load never panics on hostile input; every rejection is one of the typed
// sentinel errors below, distinguishable with errors.Is.
package ckpt

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"dagguise/internal/sim"
)

// Magic identifies a DAGguise checkpoint file.
const Magic = "DAGCKPT1"

// Version is the current snapshot format version. Decoders reject any other
// version rather than guessing at field layout.
const Version uint32 = 1

const (
	headerLen   = 8 + 4 + 8
	checksumLen = sha256.Size
	// maxPayload bounds the declared payload length so a corrupted length
	// field cannot drive a huge allocation before the checksum is verified.
	maxPayload = 1 << 32
)

// Typed sentinel errors. Decode wraps them with detail; match with errors.Is.
var (
	ErrTruncated          = errors.New("ckpt: snapshot truncated")
	ErrBadMagic           = errors.New("ckpt: not a checkpoint (bad magic)")
	ErrUnsupportedVersion = errors.New("ckpt: unsupported format version")
	ErrChecksum           = errors.New("ckpt: checksum mismatch")
	ErrCorrupt            = errors.New("ckpt: corrupt payload")
)

// Frame wraps an arbitrary payload in the versioned, checksummed snapshot
// framing (magic, version, length, payload, SHA-256). Encode uses it for
// simulator snapshots; other durable state (the dagauditd tenant-auditor
// checkpoint, fault schedules under test) reuses the same framing so every
// on-disk artifact gets the same truncation/corruption detection.
func Frame(payload []byte) []byte {
	buf := make([]byte, 0, headerLen+len(payload)+checksumLen)
	buf = append(buf, Magic...)
	buf = binary.BigEndian.AppendUint32(buf, Version)
	buf = binary.BigEndian.AppendUint64(buf, uint64(len(payload)))
	buf = append(buf, payload...)
	sum := sha256.Sum256(buf)
	return append(buf, sum[:]...)
}

// Unframe validates the snapshot framing and returns the payload bytes. It
// rejects truncated, corrupted or incompatible input with a typed sentinel
// error and never panics.
func Unframe(data []byte) ([]byte, error) {
	if len(data) < headerLen+checksumLen {
		return nil, fmt.Errorf("%w: %d bytes, need at least %d", ErrTruncated, len(data), headerLen+checksumLen)
	}
	if !bytes.Equal(data[:8], []byte(Magic)) {
		return nil, fmt.Errorf("%w: got %q", ErrBadMagic, data[:8])
	}
	if v := binary.BigEndian.Uint32(data[8:12]); v != Version {
		return nil, fmt.Errorf("%w: snapshot is v%d, this build reads v%d", ErrUnsupportedVersion, v, Version)
	}
	plen := binary.BigEndian.Uint64(data[12:20])
	if plen > maxPayload {
		return nil, fmt.Errorf("%w: declared payload of %d bytes is implausible", ErrCorrupt, plen)
	}
	want := headerLen + int(plen) + checksumLen
	if len(data) < want {
		return nil, fmt.Errorf("%w: %d bytes, header declares %d", ErrTruncated, len(data), want)
	}
	if len(data) > want {
		return nil, fmt.Errorf("%w: %d trailing bytes after checksum", ErrCorrupt, len(data)-want)
	}
	body := data[:headerLen+plen]
	sum := sha256.Sum256(body)
	if !bytes.Equal(sum[:], data[headerLen+plen:]) {
		return nil, fmt.Errorf("%w", ErrChecksum)
	}
	return body[headerLen:], nil
}

// Encode serializes a system state into the framed snapshot format.
func Encode(st *sim.SystemState) ([]byte, error) {
	if st == nil {
		return nil, fmt.Errorf("ckpt: nil state")
	}
	payload, err := json.Marshal(st)
	if err != nil {
		return nil, fmt.Errorf("ckpt: encode state: %w", err)
	}
	return Frame(payload), nil
}

// Decode parses and validates a framed snapshot. It rejects truncated,
// corrupted or incompatible input with a typed error and never panics.
func Decode(data []byte) (*sim.SystemState, error) {
	payload, err := Unframe(data)
	if err != nil {
		return nil, err
	}
	st := new(sim.SystemState)
	dec := json.NewDecoder(bytes.NewReader(payload))
	dec.DisallowUnknownFields()
	if err := dec.Decode(st); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return st, nil
}

// SaveFrame atomically persists an arbitrary payload under the snapshot
// framing — the durable-write path for non-simulator state.
func SaveFrame(path string, payload []byte) error {
	return WriteFileAtomic(path, Frame(payload))
}

// LoadFrame reads the framed file at path and returns its validated
// payload.
func LoadFrame(path string) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("ckpt: read %s: %w", path, err)
	}
	payload, err := Unframe(data)
	if err != nil {
		return nil, fmt.Errorf("%w (file %s)", err, path)
	}
	return payload, nil
}

// Save atomically writes a snapshot to path: the bytes go to a temporary
// file in the same directory, are fsynced, renamed over path, and the
// directory entry is fsynced. A crash at any point leaves either the old
// snapshot or the new one, never a torn file.
func Save(path string, st *sim.SystemState) error {
	data, err := Encode(st)
	if err != nil {
		return err
	}
	return WriteFileAtomic(path, data)
}

// Load reads and validates the snapshot at path.
func Load(path string) (*sim.SystemState, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("ckpt: read %s: %w", path, err)
	}
	st, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("%w (file %s)", err, path)
	}
	return st, nil
}

// WriteFileAtomic durably writes data to path via a same-directory temp
// file, fsync, rename, and directory fsync. It is also used for the
// runner's resume manifests.
func WriteFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("ckpt: create dir: %w", err)
	}
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("ckpt: create temp: %w", err)
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("ckpt: write temp: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("ckpt: sync temp: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("ckpt: close temp: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		return fmt.Errorf("ckpt: rename: %w", err)
	}
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
	return nil
}
