package ckpt

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
)

// Line framing: the text sibling of Frame/Unframe for append-only NDJSON
// streams (the fleet telemetry plane). Each record is one line,
//
//	DAGT1 <16 hex chars> <payload>\n
//
// where the hex field is the first eight bytes of SHA-256 over the
// payload. The payload stays inspectable with standard line tools
// (`cut -d' ' -f3-` yields pure NDJSON) while every line carries the
// same magic/checksum discipline as a binary checkpoint frame: a torn
// tail or a flipped bit is detected, never silently ingested. Rejections
// reuse this package's typed sentinels (ErrTruncated, ErrBadMagic,
// ErrChecksum) so stream readers can distinguish a crash-truncated tail
// from real corruption with errors.Is.

// LineMagic is the leading token of every framed telemetry line.
const LineMagic = "DAGT1"

const lineSumLen = 16 // hex chars: first 8 bytes of SHA-256

// FrameLine wraps payload (which must not contain a newline) into one
// framed text line, including the trailing '\n'.
func FrameLine(payload []byte) ([]byte, error) {
	if bytes.IndexByte(payload, '\n') >= 0 {
		return nil, fmt.Errorf("ckpt: line payload contains a newline")
	}
	sum := sha256.Sum256(payload)
	out := make([]byte, 0, len(LineMagic)+1+lineSumLen+1+len(payload)+1)
	out = append(out, LineMagic...)
	out = append(out, ' ')
	out = hex.AppendEncode(out, sum[:lineSumLen/2])
	out = append(out, ' ')
	out = append(out, payload...)
	out = append(out, '\n')
	return out, nil
}

// UnframeLine validates one framed line (with or without its trailing
// newline) and returns the payload bytes. A line too short to hold the
// header is ErrTruncated; a wrong magic token is ErrBadMagic; a checksum
// mismatch — including any line cut mid-payload — is ErrChecksum.
func UnframeLine(line []byte) ([]byte, error) {
	line = bytes.TrimSuffix(line, []byte("\n"))
	line = bytes.TrimSuffix(line, []byte("\r"))
	header := len(LineMagic) + 1 + lineSumLen + 1
	if len(line) < header {
		return nil, fmt.Errorf("%w: line of %d bytes, header needs %d", ErrTruncated, len(line), header)
	}
	if string(line[:len(LineMagic)]) != LineMagic || line[len(LineMagic)] != ' ' {
		return nil, fmt.Errorf("%w: line starts %q", ErrBadMagic, line[:len(LineMagic)])
	}
	sumHex := line[len(LineMagic)+1 : len(LineMagic)+1+lineSumLen]
	if line[len(LineMagic)+1+lineSumLen] != ' ' {
		return nil, fmt.Errorf("%w: missing payload separator", ErrBadMagic)
	}
	want, err := hex.DecodeString(string(sumHex))
	if err != nil {
		return nil, fmt.Errorf("%w: bad checksum field: %v", ErrBadMagic, err)
	}
	payload := line[header:]
	sum := sha256.Sum256(payload)
	if !bytes.Equal(sum[:lineSumLen/2], want) {
		return nil, fmt.Errorf("%w: line payload of %d bytes", ErrChecksum, len(payload))
	}
	return payload, nil
}
