package ckpt

import (
	"encoding/json"
	"fmt"
	"path/filepath"
	"testing"

	"dagguise/internal/fault"
	"dagguise/internal/mem"
)

// fireLog renders every injector decision the schedule makes for the
// cycle range [from, to) — the "remaining fault sequence" a resumed
// simulation would experience. The injector is a pure function of its
// schedule, so two schedules with equal fire logs are operationally
// identical from the resume point onward.
func fireLog(t *testing.T, s fault.Schedule, doms []mem.Domain, from, to uint64) string {
	t.Helper()
	in, err := fault.NewInjector(s)
	if err != nil {
		t.Fatalf("injector: %v", err)
	}
	out := ""
	for _, w := range in.StallWindows() {
		if w.End() > from {
			out += fmt.Sprintf("stall %s\n", w)
		}
	}
	for now := from; now < to; now++ {
		for _, d := range append([]mem.Domain{fault.AllDomains}, doms...) {
			if in.EgressStalled(d, now) {
				out += fmt.Sprintf("%d egress dom%d\n", now, d)
			}
			if in.ShaperRejects(d, now) {
				out += fmt.Sprintf("%d reject dom%d\n", now, d)
			}
			if until, ok := in.DeferResponse(d, now); ok {
				out += fmt.Sprintf("%d defer dom%d until %d\n", now, d, until)
			}
		}
	}
	return out
}

// TestFaultScheduleCheckpointRoundTrip persists one schedule of every
// fault kind — plus randomized campaign schedules — through the ckpt
// frame Save/Load path and asserts the restored schedule fires the
// identical remaining fault sequence from a mid-horizon resume point.
func TestFaultScheduleCheckpointRoundTrip(t *testing.T) {
	const horizon = 4_000
	doms := []mem.Domain{1, 2}
	scheds := map[string]fault.Schedule{
		"dram-stall": {Seed: 1, Events: []fault.Event{
			{Kind: fault.DRAMStall, Start: 100, Duration: 300},
			{Kind: fault.DRAMStall, Start: 2_500, Duration: 200},
		}},
		"resp-delay": {Seed: 2, Events: []fault.Event{
			{Kind: fault.RespDelay, Domain: 1, Start: 1_900, Duration: 400, Delay: 7},
		}},
		"resp-drop": {Seed: 3, Events: []fault.Event{
			{Kind: fault.RespDrop, Domain: fault.AllDomains, Start: 2_200, Duration: 150, Delay: 20},
		}},
		"shaper-backpressure": {Seed: 4, Events: []fault.Event{
			{Kind: fault.ShaperBackpressure, Domain: 2, Start: 1_000, Duration: 2_000},
		}},
		"egress-stall": {Seed: 5, Events: []fault.Event{
			{Kind: fault.EgressStall, Domain: 1, Start: 3_000, Duration: 500},
		}},
	}
	for i := int64(0); i < 4; i++ {
		scheds[fmt.Sprintf("campaign-%d", i)] = fault.Campaign(100+i, fault.CampaignConfig{
			Horizon: horizon, Domains: doms, Events: 16,
		})
	}

	for name, s := range scheds {
		t.Run(name, func(t *testing.T) {
			want := fireLog(t, s, doms, horizon/2, horizon)

			payload, err := json.Marshal(s)
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join(t.TempDir(), "sched.ckpt")
			if err := SaveFrame(path, payload); err != nil {
				t.Fatal(err)
			}
			restoredPayload, err := LoadFrame(path)
			if err != nil {
				t.Fatal(err)
			}
			var restored fault.Schedule
			if err := json.Unmarshal(restoredPayload, &restored); err != nil {
				t.Fatal(err)
			}
			if restored.Seed != s.Seed || len(restored.Events) != len(s.Events) {
				t.Fatalf("restored schedule shape differs: %d events seed %d, want %d events seed %d",
					len(restored.Events), restored.Seed, len(s.Events), s.Seed)
			}
			if got := fireLog(t, restored, doms, horizon/2, horizon); got != want {
				t.Fatalf("restored schedule fires a different remaining sequence:\n%s\nvs\n%s", got, want)
			}
		})
	}
}

// TestLoadFrameRejectsCorruption checks the generic frame loader surfaces
// the same typed errors as the simulator snapshot path.
func TestLoadFrameRejectsCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.ckpt")
	if err := SaveFrame(path, []byte(`{"a":1}`)); err != nil {
		t.Fatal(err)
	}
	payload, err := LoadFrame(path)
	if err != nil || string(payload) != `{"a":1}` {
		t.Fatalf("round trip = (%q, %v)", payload, err)
	}
	framed := Frame([]byte("hello"))
	framed[len(framed)-1] ^= 0xff
	if _, err := Unframe(framed); err == nil {
		t.Fatal("corrupted checksum accepted")
	}
	if _, err := Unframe(framed[:10]); err == nil {
		t.Fatal("truncated frame accepted")
	}
}
