package ckpt

import (
	"bytes"
	"errors"
	"testing"
)

func TestFrameLineRoundTrip(t *testing.T) {
	payloads := [][]byte{
		[]byte(`{"k":"hello","ver":1,"worker":"0"}`),
		[]byte(""),
		[]byte("plain text with spaces and DAGT1 inside"),
		bytes.Repeat([]byte("x"), 4096),
	}
	for _, p := range payloads {
		line, err := FrameLine(p)
		if err != nil {
			t.Fatalf("FrameLine(%q): %v", p, err)
		}
		if !bytes.HasSuffix(line, []byte("\n")) {
			t.Fatalf("framed line missing trailing newline: %q", line)
		}
		got, err := UnframeLine(line)
		if err != nil {
			t.Fatalf("UnframeLine: %v", err)
		}
		if !bytes.Equal(got, p) {
			t.Fatalf("round trip mismatch: got %q want %q", got, p)
		}
		// With the newline stripped it must still parse (readers may
		// hand over trimmed lines).
		if _, err := UnframeLine(bytes.TrimSuffix(line, []byte("\n"))); err != nil {
			t.Fatalf("UnframeLine without newline: %v", err)
		}
	}
}

func TestFrameLineRejectsNewline(t *testing.T) {
	if _, err := FrameLine([]byte("two\nlines")); err == nil {
		t.Fatal("FrameLine accepted a payload containing a newline")
	}
}

func TestFrameLineDeterministic(t *testing.T) {
	a, err := FrameLine([]byte("same payload"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := FrameLine([]byte("same payload"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("framing is not deterministic: %q vs %q", a, b)
	}
}

func TestUnframeLineTypedErrors(t *testing.T) {
	line, err := FrameLine([]byte("payload"))
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		line []byte
		want error
	}{
		{"too short", []byte("DAGT1 abc"), ErrTruncated},
		{"empty", nil, ErrTruncated},
		{"wrong magic", append([]byte("DAGX1"), line[5:]...), ErrBadMagic},
		{"missing separator", bytes.Replace(line, []byte(" "), []byte("_"), 1), ErrBadMagic},
		{"non-hex checksum", append([]byte("DAGT1 zzzzzzzzzzzzzzzz "), []byte("payload")...), ErrBadMagic},
		{"flipped payload bit", bytes.Replace(line, []byte("payload"), []byte("paYload"), 1), ErrChecksum},
		{"cut mid-payload", line[:len(line)-3], ErrChecksum},
	}
	for _, tc := range cases {
		if _, err := UnframeLine(tc.line); !errors.Is(err, tc.want) {
			t.Errorf("%s: got %v, want %v", tc.name, err, tc.want)
		}
	}
}
