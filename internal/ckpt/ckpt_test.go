package ckpt

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"dagguise/internal/config"
	"dagguise/internal/mem"
	"dagguise/internal/rdag"
	"dagguise/internal/sim"
	"dagguise/internal/trace"
	"dagguise/internal/victim"
	"dagguise/internal/workload"
)

func buildSystem(t *testing.T, scheme config.Scheme) *sim.System {
	t.Helper()
	tr, err := victim.DocDistTrace(11, victim.DefaultDocDist())
	if err != nil {
		t.Fatal(err)
	}
	p, err := workload.ByName("lbm")
	if err != nil {
		t.Fatal(err)
	}
	cfg := config.Default(2, scheme)
	sys, err := sim.New(cfg, []sim.CoreSpec{
		{
			Name:      "docdist",
			Source:    &trace.Loop{Inner: tr},
			Protected: true,
			Defense:   rdag.Template{Sequences: 8, Weight: 150, WriteRatio: 0.25, Banks: 8},
		},
		{Name: "lbm", Source: workload.MustSource(p, 5)},
	})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func stateBytes(t *testing.T, sys *sim.System) []byte {
	t.Helper()
	st, err := sys.SaveState()
	if err != nil {
		t.Fatal(err)
	}
	data, err := Encode(st)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestRoundTripGolden is the checkpoint invariant: for every scheme,
// Run(2N) and Run(N) -> Save -> Load into a fresh system -> Run(N) must
// produce bit-identical egress traces and bit-identical final state.
func TestRoundTripGolden(t *testing.T) {
	const half = 60_000
	schemes := []config.Scheme{
		config.Insecure,
		config.FixedService,
		config.FSBTA,
		config.TemporalPartitioning,
		config.Camouflage,
		config.DAGguise,
	}
	for _, scheme := range schemes {
		scheme := scheme
		t.Run(scheme.String(), func(t *testing.T) {
			t.Parallel()
			straight := buildSystem(t, scheme)
			straight.EnableEgressTrace()
			straight.Run(2 * half)

			first := buildSystem(t, scheme)
			first.EnableEgressTrace()
			first.Run(half)
			st, err := first.SaveState()
			if err != nil {
				t.Fatal(err)
			}
			frame, err := Encode(st)
			if err != nil {
				t.Fatal(err)
			}
			loaded, err := Decode(frame)
			if err != nil {
				t.Fatal(err)
			}

			resumed := buildSystem(t, scheme)
			if err := resumed.RestoreState(loaded); err != nil {
				t.Fatal(err)
			}
			resumed.EnableEgressTrace()
			resumed.Run(half)

			for dom := mem.Domain(1); dom <= 2; dom++ {
				want := straight.EgressTrace(dom)
				got := append(append([]sim.EgressEvent(nil), first.EgressTrace(dom)...), resumed.EgressTrace(dom)...)
				if len(want) != len(got) {
					t.Fatalf("domain %d: straight run emitted %d egress events, split run %d", dom, len(want), len(got))
				}
				for i := range want {
					if want[i] != got[i] {
						t.Fatalf("domain %d: egress event %d diverged: straight %+v, split %+v", dom, i, want[i], got[i])
					}
				}
			}

			wantState := stateBytes(t, straight)
			gotState := stateBytes(t, resumed)
			if !bytes.Equal(wantState, gotState) {
				t.Fatalf("final state diverged after save/load/resume (%d vs %d bytes)", len(wantState), len(gotState))
			}
		})
	}
}

// TestEncodeDeterministic: encoding the same state twice, and encoding a
// decoded copy, must yield identical bytes — no map-order or pointer noise.
func TestEncodeDeterministic(t *testing.T) {
	sys := buildSystem(t, config.DAGguise)
	sys.Run(20_000)
	st, err := sys.SaveState()
	if err != nil {
		t.Fatal(err)
	}
	a, err := Encode(st)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Encode(st)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("two encodings of the same state differ")
	}
	dec, err := Decode(a)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Encode(dec)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, c) {
		t.Fatal("re-encoding a decoded state differs from the original")
	}
}

func TestRestoreRejectsSchemeMismatch(t *testing.T) {
	sys := buildSystem(t, config.DAGguise)
	sys.Run(10_000)
	st, err := sys.SaveState()
	if err != nil {
		t.Fatal(err)
	}
	other := buildSystem(t, config.Insecure)
	if err := other.RestoreState(st); err == nil {
		t.Fatal("restoring a DAGguise snapshot into an insecure system succeeded")
	}
}

func TestDecodeRejectsDamage(t *testing.T) {
	sys := buildSystem(t, config.Insecure)
	sys.Run(10_000)
	frame := stateBytes(t, sys)

	cases := []struct {
		name string
		mut  func([]byte) []byte
		want error
	}{
		{"empty", func(b []byte) []byte { return nil }, ErrTruncated},
		{"header only", func(b []byte) []byte { return b[:12] }, ErrTruncated},
		{"cut payload", func(b []byte) []byte { return b[:len(b)/2] }, ErrTruncated},
		{"cut checksum", func(b []byte) []byte { return b[:len(b)-1] }, ErrTruncated},
		{"bad magic", func(b []byte) []byte { b[0] ^= 0xff; return b }, ErrBadMagic},
		{"future version", func(b []byte) []byte { b[11] = 99; return b }, ErrUnsupportedVersion},
		{"payload bit flip", func(b []byte) []byte { b[headerLen+10] ^= 0x01; return b }, ErrChecksum},
		{"checksum bit flip", func(b []byte) []byte { b[len(b)-1] ^= 0x80; return b }, ErrChecksum},
		{"trailing garbage", func(b []byte) []byte { return append(b, 0xAA) }, ErrCorrupt},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			data := tc.mut(append([]byte(nil), frame...))
			_, err := Decode(data)
			if !errors.Is(err, tc.want) {
				t.Fatalf("got %v, want %v", err, tc.want)
			}
		})
	}
}

func TestSaveLoadFile(t *testing.T) {
	sys := buildSystem(t, config.DAGguise)
	sys.Run(15_000)
	st, err := sys.SaveState()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "nested", "snap.ckpt")
	if err := Save(path, st); err != nil {
		t.Fatal(err)
	}
	// Save over an existing file must replace it atomically.
	if err := Save(path, st); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := Encode(st)
	b, _ := Encode(got)
	if !bytes.Equal(a, b) {
		t.Fatal("state loaded from disk differs from the saved state")
	}
	if entries, err := os.ReadDir(filepath.Dir(path)); err == nil {
		for _, e := range entries {
			if e.Name() != "snap.ckpt" {
				t.Fatalf("leftover temp file %q after Save", e.Name())
			}
		}
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "absent.ckpt")); err == nil {
		t.Fatal("loading a missing file succeeded")
	}
}

// FuzzDecode feeds arbitrary mutations of a valid snapshot into Decode.
// Every outcome must be either a clean decode or one of the typed sentinel
// errors — never a panic, never an untyped failure.
func FuzzDecode(f *testing.F) {
	tr, err := victim.DocDistTrace(11, victim.DefaultDocDist())
	if err != nil {
		f.Fatal(err)
	}
	p, err := workload.ByName("lbm")
	if err != nil {
		f.Fatal(err)
	}
	cfg := config.Default(2, config.DAGguise)
	sys, err := sim.New(cfg, []sim.CoreSpec{
		{
			Name:      "docdist",
			Source:    &trace.Loop{Inner: tr},
			Protected: true,
			Defense:   rdag.Template{Sequences: 8, Weight: 150, WriteRatio: 0.25, Banks: 8},
		},
		{Name: "lbm", Source: workload.MustSource(p, 5)},
	})
	if err != nil {
		f.Fatal(err)
	}
	sys.Run(5_000)
	st, err := sys.SaveState()
	if err != nil {
		f.Fatal(err)
	}
	frame, err := Encode(st)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(frame, uint32(0), byte(0))
	f.Add(frame, uint32(len(frame)/2), byte(0x40))
	f.Add([]byte(Magic), uint32(0), byte(0))

	f.Fuzz(func(t *testing.T, data []byte, cut uint32, flip byte) {
		mutated := append([]byte(nil), data...)
		if int(cut) < len(mutated) {
			if flip != 0 {
				mutated[cut] ^= flip
			} else {
				mutated = mutated[:cut]
			}
		}
		st, err := Decode(mutated)
		if err == nil {
			if st == nil {
				t.Fatal("Decode returned nil state with nil error")
			}
			return
		}
		for _, sentinel := range []error{ErrTruncated, ErrBadMagic, ErrUnsupportedVersion, ErrChecksum, ErrCorrupt} {
			if errors.Is(err, sentinel) {
				return
			}
		}
		t.Fatalf("Decode returned untyped error %v", err)
	})
}
