package auditd

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"dagguise/internal/audit"
	"dagguise/internal/obs"
)

// IngestResult is the JSON body of every ingest response, success or not.
// Accepted/Duplicates count this request only; NextSeq is each touched
// tenant's cursor after the request, the client's replay point.
type IngestResult struct {
	Accepted   int               `json:"accepted"`
	Duplicates int               `json:"duplicates"`
	NextSeq    map[string]uint64 `json:"next_seq,omitempty"`
	Error      string            `json:"error,omitempty"`
	Tenant     string            `json:"tenant,omitempty"`
	Expected   *uint64           `json:"expected,omitempty"`
}

// Handler returns the service's HTTP API:
//
//	POST /v1/ingest                  NDJSON observation batch
//	GET  /v1/verdicts                all tenant verdicts (sorted, deterministic)
//	GET  /v1/verdicts/{tenant}       one tenant's verdict
//	POST /v1/tenants/{tenant}/flush  force the final partial window
//	POST /v1/checkpoint              force a durable checkpoint
//	GET  /v1/alerts                  SLO alert edges + currently firing set
//	GET  /metrics                    Prometheus text exposition
//	GET  /healthz                    liveness (process is up)
//	GET  /readyz                     readiness (accepting and not overloaded)
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/ingest", s.handleIngest)
	mux.HandleFunc("GET /v1/verdicts", s.handleVerdicts)
	mux.HandleFunc("GET /v1/verdicts/{tenant}", s.handleVerdict)
	mux.HandleFunc("POST /v1/tenants/{tenant}/flush", s.handleFlush)
	mux.HandleFunc("POST /v1/checkpoint", s.handleCheckpoint)
	mux.HandleFunc("GET /v1/alerts", s.handleAlerts)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if !s.ready.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, "draining")
			return
		}
		if s.Overloaded() {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, "overloaded")
			return
		}
		fmt.Fprintln(w, "ready")
	})
	return mux
}

// writeJSON writes v with status code; encoding a fixed struct cannot
// fail, so errors are ignored past the header.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

// parseBatch validates an NDJSON body into observations. Any malformed
// line poisons the whole batch (400): partial application would make the
// accepted stream depend on where parsing stopped.
func (s *Service) parseBatch(body []byte) ([]Observation, error) {
	var out []Observation
	sc := bufio.NewScanner(bytes.NewReader(body))
	sc.Buffer(make([]byte, 0, 64*1024), s.cfg.MaxLineBytes)
	line := 0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var o Observation
		dec := json.NewDecoder(bytes.NewReader(raw))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&o); err != nil {
			return nil, fmt.Errorf("line %d: %v", line, err)
		}
		if o.Tenant == "" || len(o.Tenant) > 128 {
			return nil, fmt.Errorf("line %d: tenant must be 1..128 bytes", line)
		}
		if o.Secret != 0 && o.Secret != 1 {
			return nil, fmt.Errorf("line %d: secret must be 0 or 1, got %d", line, o.Secret)
		}
		out = append(out, o)
	}
	if err := sc.Err(); err != nil {
		if errors.Is(err, bufio.ErrTooLong) {
			return nil, fmt.Errorf("line %d: exceeds %d-byte line limit", line+1, s.cfg.MaxLineBytes)
		}
		return nil, err
	}
	return out, nil
}

func (s *Service) handleIngest(w http.ResponseWriter, r *http.Request) {
	s.handlerWG.Add(1)
	defer s.handlerWG.Done()
	if !s.accepting.Load() {
		writeJSON(w, http.StatusServiceUnavailable, IngestResult{Error: "draining"})
		return
	}
	n := s.ctr.batches.Add(1)
	// One span per ingest request, parented on the client's propagated
	// span context; the logical clock is the batch counter, so the trace
	// lane is dense regardless of wall-time gaps between requests.
	sc := obs.ParseSpanContext(r.Header.Get(obs.SpanHeader))
	span := s.cfg.Spans.Begin("ingest", obs.CompService, 0, 0, sc.Span, n-1)
	defer func() { s.cfg.Spans.End(span, s.ctr.batches.Load()) }()

	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBatchBytes))
	if err != nil {
		s.ctr.malformed.Add(1)
		writeJSON(w, http.StatusBadRequest, IngestResult{Error: fmt.Sprintf("read body: %v", err)})
		return
	}
	batch, err := s.parseBatch(body)
	if err != nil {
		s.ctr.malformed.Add(1)
		writeJSON(w, http.StatusBadRequest, IngestResult{Error: err.Error()})
		return
	}
	s.ctr.observations.Add(uint64(len(batch)))

	// Group by tenant, preserving both per-tenant observation order and
	// first-appearance tenant order so processing is deterministic.
	groups := make(map[string][]Observation)
	var order []string
	for _, o := range batch {
		if _, ok := groups[o.Tenant]; !ok {
			order = append(order, o.Tenant)
		}
		groups[o.Tenant] = append(groups[o.Tenant], o)
	}

	res := IngestResult{NextSeq: make(map[string]uint64, len(order))}
	for _, name := range order {
		group := groups[name]
		t, err := s.tenantFor(name)
		if err != nil {
			if errors.Is(err, errTooManyTenants) {
				s.ctr.rejectedTenants.Add(1)
				res.Error, res.Tenant = err.Error(), name
				writeJSON(w, http.StatusForbidden, res)
				return
			}
			res.Error, res.Tenant = err.Error(), name
			writeJSON(w, http.StatusInternalServerError, res)
			return
		}
		req := &batchReq{t: t, obs: group, done: make(chan batchResp, 1)}
		select {
		case s.shardFor(name).ch <- req:
		default:
			// Queue full: shed this request rather than block or buffer.
			s.ctr.shed.Add(uint64(len(group)))
			w.Header().Set("Retry-After", strconv.Itoa(s.cfg.RetryAfterSeconds))
			res.Error, res.Tenant = "overloaded, retry later", name
			writeJSON(w, http.StatusTooManyRequests, res)
			return
		}
		var resp batchResp
		select {
		case resp = <-req.done:
		case <-r.Context().Done():
			// Client gone; the shard still applies the batch (the done
			// channel is buffered), so its work is not lost.
			return
		}
		res.Accepted += resp.accepted
		res.Duplicates += resp.duplicates
		res.NextSeq[name] = resp.nextSeq
		if resp.poisoned != "" {
			res.Error, res.Tenant = "tenant quarantined: "+resp.poisoned, name
			writeJSON(w, http.StatusUnprocessableEntity, res)
			return
		}
		if resp.gap != nil {
			res.Error, res.Tenant, res.Expected = "sequence gap", name, resp.gap
			writeJSON(w, http.StatusConflict, res)
			return
		}
	}
	writeJSON(w, http.StatusOK, res)
}

// VerdictsResponse is the GET /v1/verdicts body.
type VerdictsResponse struct {
	Tenants []TenantVerdict `json:"tenants"`
}

func (s *Service) handleVerdicts(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, VerdictsResponse{Tenants: s.Verdicts()})
}

func (s *Service) handleVerdict(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("tenant")
	v, ok := s.Verdict(name)
	if !ok {
		writeJSON(w, http.StatusNotFound, IngestResult{Error: "unknown tenant", Tenant: name})
		return
	}
	writeJSON(w, http.StatusOK, v)
}

// FlushResponse is the POST /v1/tenants/{t}/flush body.
type FlushResponse struct {
	Tenant  string              `json:"tenant"`
	Window  *audit.WindowReport `json:"window,omitempty"`
	Error   string              `json:"error,omitempty"`
	Starved bool                `json:"starved,omitempty"`
}

func (s *Service) handleFlush(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("tenant")
	rep, err := s.Flush(name)
	resp := FlushResponse{Tenant: name, Window: rep}
	switch {
	case err == nil:
		writeJSON(w, http.StatusOK, resp)
	case errors.Is(err, audit.ErrInsufficientSamples):
		// The typed starvation error: the stream never produced two
		// samples per secret class, so no calibrated verdict exists.
		resp.Error, resp.Starved = err.Error(), true
		writeJSON(w, http.StatusUnprocessableEntity, resp)
	default:
		resp.Error = err.Error()
		code := http.StatusConflict
		s.mu.RLock()
		_, known := s.tenants[name]
		s.mu.RUnlock()
		if !known {
			code = http.StatusNotFound
		}
		writeJSON(w, code, resp)
	}
}

// AlertsResponse is the GET /v1/alerts body: the engine's retained
// alert edges (oldest first), the (rule, series) pairs currently in
// violation, and the active rule set.
type AlertsResponse struct {
	History []obs.Alert `json:"history"`
	Firing  []string    `json:"firing"`
	Rules   []obs.Rule  `json:"rules,omitempty"`
}

func (s *Service) handleAlerts(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, AlertsResponse{
		History: s.engine.History(),
		Firing:  s.engine.Firing(),
		Rules:   s.engine.Rules(),
	})
}

func (s *Service) handleCheckpoint(w http.ResponseWriter, _ *http.Request) {
	if s.cfg.CheckpointPath == "" {
		writeJSON(w, http.StatusUnprocessableEntity, map[string]string{"error": "checkpointing disabled"})
		return
	}
	if err := s.Checkpoint(); err != nil {
		writeJSON(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, map[string]uint64{"checkpoints": s.Checkpoints()})
}

func (s *Service) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	for _, c := range []struct {
		name string
		v    uint64
	}{
		{"ingest_batches", s.ctr.batches.Load()},
		{"ingest_observations", s.ctr.observations.Load()},
		{"ingest_accepted", s.ctr.accepted.Load()},
		{"ingest_duplicates", s.ctr.duplicates.Load()},
		{"ingest_shed", s.ctr.shed.Load()},
		{"ingest_gaps", s.ctr.gaps.Load()},
		{"ingest_malformed", s.ctr.malformed.Load()},
		{"tenants_rejected", s.ctr.rejectedTenants.Load()},
		{"tenants_quarantined", s.ctr.quarantined.Load()},
		{"panics_recovered", s.ctr.panics.Load()},
		{"checkpoints", s.ctr.checkpoints.Load()},
		{"alert_edges", s.ctr.alerts.Load()},
		{"webhook_delivered", s.cfg.Notifier.Delivered()},
		{"webhook_failed", s.cfg.Notifier.Failed()},
		{"webhook_dropped", s.cfg.Notifier.Dropped()},
	} {
		fmt.Fprintf(w, "# TYPE dagauditd_%s_total counter\n", c.name)
		fmt.Fprintf(w, "dagauditd_%s_total %d\n", c.name, c.v)
	}
	// Tenant → metrics-domain mapping, then the per-domain registry
	// (request-value histograms keyed by tenant slot).
	for _, t := range s.sortedTenants() {
		fmt.Fprintf(w, "dagauditd_tenant_slot{tenant=%q} %d\n", t.name, t.slot)
	}
	_ = obs.WritePrometheus(w, s.mx.Snapshot(), "dagauditd")
}
