package auditd

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"dagguise/internal/audit"
	"dagguise/internal/fault"
)

// testCfg is a small, fast service configuration.
func testCfg() Config {
	ac := audit.DefaultConfig()
	ac.Window = 20
	ac.Permutations = 40
	ac.Bootstrap = 40
	return Config{Audit: ac, Shards: 2, QueueDepth: 8}
}

// genObs builds a deterministic observation stream for one tenant:
// n pairs of (secret 0, secret 1) samples with dense seq from 0 and the
// given per-class value offsets (equal offsets = clean, far apart =
// leaky).
func genObs(tenant string, n int, seed int64, off0, off1 uint64) []Observation {
	rnd := rand.New(rand.NewSource(seed))
	out := make([]Observation, 0, 2*n)
	for i := 0; i < n; i++ {
		out = append(out,
			Observation{Tenant: tenant, Seq: uint64(2 * i), Secret: 0, Cycle: uint64(10 * i), Value: off0 + uint64(rnd.Intn(16))},
			Observation{Tenant: tenant, Seq: uint64(2*i + 1), Secret: 1, Cycle: uint64(10*i + 5), Value: off1 + uint64(rnd.Intn(16))},
		)
	}
	return out
}

// startServer wires a Service to an httptest server and a client.
func startServer(t *testing.T, cfg Config) (*Service, *httptest.Server, *Client) {
	t.Helper()
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		_ = svc.Close(context.Background())
	})
	c := &Client{Base: ts.URL, HTTP: ts.Client(), BatchSize: 20, Seed: 1,
		Backoff: time.Millisecond, MaxBackoff: 20 * time.Millisecond}
	return svc, ts, c
}

func mustStream(t *testing.T, c *Client, obs []Observation) StreamResult {
	t.Helper()
	res, err := c.Stream(context.Background(), obs)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestVerdictsLeakyVsClean drives a leaky and a clean tenant end to end
// over HTTP and checks the service reproduces the batch auditor's
// judgement for each independently.
func TestVerdictsLeakyVsClean(t *testing.T) {
	_, _, c := startServer(t, testCfg())
	leaky := genObs("leaky", 60, 7, 100, 400)
	clean := genObs("clean", 60, 8, 100, 100)
	res := mustStream(t, c, append(append([]Observation{}, leaky...), clean...))
	if res.Accepted != len(leaky)+len(clean) {
		t.Fatalf("accepted %d of %d", res.Accepted, len(leaky)+len(clean))
	}
	_, vr, err := c.Verdicts(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(vr.Tenants) != 2 {
		t.Fatalf("want 2 tenants, got %d", len(vr.Tenants))
	}
	byName := map[string]TenantVerdict{}
	for _, v := range vr.Tenants {
		byName[v.Tenant] = v
	}
	if v := byName["leaky"]; v.WithinBudget || v.Tripped == 0 {
		t.Errorf("leaky tenant not flagged: %+v", v)
	}
	if v := byName["clean"]; !v.WithinBudget || v.Tripped != 0 {
		t.Errorf("clean tenant flagged: %+v", v)
	}
	// Verdicts are sorted by tenant name for deterministic output.
	if vr.Tenants[0].Tenant != "clean" || vr.Tenants[1].Tenant != "leaky" {
		t.Errorf("verdicts not name-sorted: %s, %s", vr.Tenants[0].Tenant, vr.Tenants[1].Tenant)
	}
}

// postBody posts raw NDJSON and decodes the IngestResult.
func postBody(t *testing.T, ts *httptest.Server, body string) (int, IngestResult) {
	t.Helper()
	resp, err := ts.Client().Post(ts.URL+"/v1/ingest", "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var res IngestResult
	_ = json.NewDecoder(resp.Body).Decode(&res)
	return resp.StatusCode, res
}

// TestIngestProtocol pins the wire protocol's failure semantics:
// duplicates acknowledged, gaps rejected with the expected cursor,
// malformed lines rejected atomically.
func TestIngestProtocol(t *testing.T) {
	_, ts, _ := startServer(t, testCfg())
	line := func(seq int, secret int) string {
		return fmt.Sprintf(`{"tenant":"t","seq":%d,"secret":%d,"cycle":%d,"value":100}`+"\n", seq, secret, seq)
	}

	code, res := postBody(t, ts, line(0, 0)+line(1, 1))
	if code != http.StatusOK || res.Accepted != 2 {
		t.Fatalf("initial ingest: code %d res %+v", code, res)
	}
	// Full retransmission: acknowledged as duplicates, cursor unmoved.
	code, res = postBody(t, ts, line(0, 0)+line(1, 1))
	if code != http.StatusOK || res.Accepted != 0 || res.Duplicates != 2 || res.NextSeq["t"] != 2 {
		t.Fatalf("duplicate ingest: code %d res %+v", code, res)
	}
	// Gap: rejected with the expected sequence so the client can rewind.
	code, res = postBody(t, ts, line(5, 0))
	if code != http.StatusConflict || res.Expected == nil || *res.Expected != 2 {
		t.Fatalf("gap ingest: code %d res %+v", code, res)
	}
	// Mixed batch past a gap is cut at the gap, nothing after applies.
	code, res = postBody(t, ts, line(2, 0)+line(4, 0))
	if code != http.StatusConflict || res.Accepted != 1 || *res.Expected != 3 {
		t.Fatalf("mixed gap ingest: code %d res %+v", code, res)
	}

	for name, body := range map[string]string{
		"not json":      "this is not json\n",
		"unknown field": `{"tenant":"t","seq":3,"secret":1,"cycle":9,"value":1,"extra":true}` + "\n",
		"bad secret":    `{"tenant":"t","seq":3,"secret":2,"cycle":9,"value":1}` + "\n",
		"empty tenant":  `{"tenant":"","seq":3,"secret":0,"cycle":9,"value":1}` + "\n",
		"long line":     `{"tenant":"t","seq":3,"secret":0,"cycle":9,"value":1,"pad":"` + strings.Repeat("x", 5000) + `"}` + "\n",
	} {
		if code, res = postBody(t, ts, body); code != http.StatusBadRequest {
			t.Errorf("%s: code %d res %+v, want 400", name, code, res)
		}
	}
	// The malformed batches changed nothing: the cursor is where the last
	// accepted observation left it.
	code, res = postBody(t, ts, line(3, 1))
	if code != http.StatusOK || res.Accepted != 1 {
		t.Fatalf("post-reject ingest: code %d res %+v", code, res)
	}
}

// TestBackpressureSheds wedges the single shard behind a blocking hook and
// verifies that once its bounded queue fills, further ingest sheds with
// 429 + Retry-After instead of blocking or buffering, and /readyz turns
// unready.
func TestBackpressureSheds(t *testing.T) {
	cfg := testCfg()
	cfg.Shards = 1
	cfg.QueueDepth = 1
	cfg.RetryAfterSeconds = 3
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	cfg.Hook = func(tenant string, o Observation) {
		if tenant == "wedge" && o.Seq == 0 {
			once.Do(func() { close(entered) })
			<-release
		}
	}
	svc, ts, _ := startServer(t, cfg)
	defer func() {
		select {
		case <-release:
		default:
			close(release)
		}
	}()

	line := func(tenant string, seq int) string {
		return fmt.Sprintf(`{"tenant":%q,"seq":%d,"secret":0,"cycle":1,"value":1}`+"\n", tenant, seq)
	}
	done := make(chan int, 2)
	go func() { // occupies the shard worker (hook blocks inside)
		code, _ := postBody(t, ts, line("wedge", 0))
		done <- code
	}()
	<-entered
	go func() { // sits in the depth-1 queue
		code, _ := postBody(t, ts, line("queued", 0))
		done <- code
	}()
	for i := 0; len(svc.shards[0].ch) == 0 && i < 1000; i++ {
		time.Sleep(time.Millisecond)
	}
	if len(svc.shards[0].ch) != 1 {
		t.Fatal("queue never filled")
	}

	// Queue full: this request must be shed immediately.
	resp, err := ts.Client().Post(ts.URL+"/v1/ingest", "application/x-ndjson", strings.NewReader(line("shedme", 0)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("want 429, got %d", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "3" {
		t.Errorf("Retry-After = %q, want 3", ra)
	}
	if rz, err := ts.Client().Get(ts.URL + "/readyz"); err != nil {
		t.Fatal(err)
	} else {
		rz.Body.Close()
		if rz.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("overloaded /readyz = %d, want 503", rz.StatusCode)
		}
	}

	close(release)
	for i := 0; i < 2; i++ {
		if code := <-done; code != http.StatusOK {
			t.Errorf("wedged/queued request finished %d, want 200", code)
		}
	}
	if svc.ctr.shed.Load() == 0 {
		t.Error("shed counter not incremented")
	}
}

// TestPanicQuarantineIsolation injects a panic into one tenant's pipeline
// and verifies the blast radius: that tenant quarantines (422, verdict
// flagged) while the other tenant and the service keep working.
func TestPanicQuarantineIsolation(t *testing.T) {
	cfg := testCfg()
	cfg.Hook = func(tenant string, o Observation) {
		if tenant == "poison" && o.Seq == 3 {
			panic("injected: poisoned stream")
		}
	}
	svc, ts, c := startServer(t, cfg)

	line := func(tenant string, seq int) string {
		return fmt.Sprintf(`{"tenant":%q,"seq":%d,"secret":%d,"cycle":%d,"value":100}`+"\n", tenant, seq, seq%2, seq)
	}
	var poison strings.Builder
	for i := 0; i < 6; i++ {
		poison.WriteString(line("poison", i))
	}
	code, res := postBody(t, ts, poison.String())
	if code != http.StatusUnprocessableEntity || !strings.Contains(res.Error, "injected") {
		t.Fatalf("poisoned ingest: code %d res %+v", code, res)
	}
	// Further traffic to the quarantined tenant is refused, not crashed.
	if code, _ = postBody(t, ts, line("poison", 6)); code != http.StatusUnprocessableEntity {
		t.Fatalf("post-quarantine ingest: code %d, want 422", code)
	}
	// A healthy tenant is untouched.
	mustStream(t, c, genObs("healthy", 30, 3, 100, 100))
	v, ok := svc.Verdict("poison")
	if !ok || !v.Quarantined || !strings.Contains(v.QuarantineReason, "injected") {
		t.Errorf("poison verdict: %+v", v)
	}
	if v, _ := svc.Verdict("healthy"); v.Quarantined || v.Accepted != 60 {
		t.Errorf("healthy verdict: %+v", v)
	}
	if svc.ctr.panics.Load() != 1 {
		t.Errorf("panics counter = %d, want 1", svc.ctr.panics.Load())
	}
}

// verdictBytes fetches the raw verdict JSON.
func verdictBytes(t *testing.T, c *Client) []byte {
	t.Helper()
	raw, _, err := c.Verdicts(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestDegradationDeterministic floods a tenant past DegradeAfter and
// verifies (a) the service degrades to sampling instead of auditing the
// full flood, and (b) the surviving verdict is a pure function of the
// stream — identical across different batch sizes and a mid-stream full
// replay.
func TestDegradationDeterministic(t *testing.T) {
	cfg := testCfg()
	cfg.DegradeAfter = 40
	cfg.SampleKeep = 2
	obs := genObs("flood", 100, 11, 100, 400)

	_, _, c1 := startServer(t, cfg)
	c1.BatchSize = 16
	mustStream(t, c1, obs)
	raw1 := verdictBytes(t, c1)

	_, _, c2 := startServer(t, cfg)
	c2.BatchSize = 64
	mustStream(t, c2, obs[:120])
	mustStream(t, c2, obs) // full replay: first 120 dup-acked
	raw2 := verdictBytes(t, c2)

	if !bytes.Equal(raw1, raw2) {
		t.Errorf("degraded verdicts differ across batching/replay:\n%s\nvs\n%s", raw1, raw2)
	}
	var vr VerdictsResponse
	if err := json.Unmarshal(raw1, &vr); err != nil {
		t.Fatal(err)
	}
	v := vr.Tenants[0]
	if !v.Degraded || v.Sampled == 0 {
		t.Errorf("tenant did not degrade: %+v", v)
	}
	if v.Accepted != 200 {
		t.Errorf("accepted %d, want 200 (degradation must not drop acceptance)", v.Accepted)
	}
}

// killForTest stops the service's goroutines without the final checkpoint
// Close would write — the in-process stand-in for SIGKILL.
func (s *Service) killForTest() {
	s.closeOnce.Do(func() {
		s.ready.Store(false)
		s.accepting.Store(false)
		s.handlerWG.Wait()
		for _, sh := range s.shards {
			close(sh.ch)
		}
		s.shardWG.Wait()
	})
}

// TestCrashRecoveryByteIdenticalVerdicts is the headline robustness
// property: checkpoint mid-stream, lose the un-checkpointed tail to a
// simulated SIGKILL, restore, blindly replay the full stream, and the
// final verdict JSON is byte-identical to an uninterrupted run.
func TestCrashRecoveryByteIdenticalVerdicts(t *testing.T) {
	leaky := genObs("leaky", 75, 21, 100, 400)
	clean := genObs("clean", 75, 22, 100, 100)
	all := append(append([]Observation{}, leaky...), clean...)

	finish := func(c *Client) []byte {
		for _, tenant := range []string{"clean", "leaky"} {
			if _, err := c.Flush(context.Background(), tenant); err != nil {
				t.Fatal(err)
			}
		}
		return verdictBytes(t, c)
	}

	// Reference: one uninterrupted run.
	_, _, ref := startServer(t, testCfg())
	mustStream(t, ref, all)
	want := finish(ref)

	// Crashing run: manual checkpoints only, so the tail after the last
	// checkpoint is genuinely lost state.
	dir := t.TempDir()
	cfg := testCfg()
	cfg.CheckpointPath = filepath.Join(dir, "auditd.ckpt")

	svc1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(svc1.Handler())
	c1 := &Client{Base: ts1.URL, HTTP: ts1.Client(), BatchSize: 20, Seed: 1,
		Backoff: time.Millisecond, MaxBackoff: 20 * time.Millisecond}
	mustStream(t, c1, all[:100])
	if err := c1.Checkpoint(context.Background()); err != nil {
		t.Fatal(err)
	}
	mustStream(t, c1, all[100:220]) // tail beyond the checkpoint: will be lost
	ts1.Close()
	svc1.killForTest()

	// Recovery: restore from the checkpoint, then the client replays the
	// whole stream; the 100 checkpointed observations dup-ack, the rest
	// (including the lost tail) apply fresh.
	svc2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(svc2.Handler())
	defer func() {
		ts2.Close()
		_ = svc2.Close(context.Background())
	}()
	c2 := &Client{Base: ts2.URL, HTTP: ts2.Client(), BatchSize: 20, Seed: 1,
		Backoff: time.Millisecond, MaxBackoff: 20 * time.Millisecond}
	res := mustStream(t, c2, all)
	if res.Duplicates == 0 {
		t.Error("replay produced no duplicates: checkpoint restored nothing")
	}
	got := finish(c2)

	if !bytes.Equal(want, got) {
		t.Errorf("resumed verdicts differ from uninterrupted run:\n%s\nvs\n%s", want, got)
	}
}

// TestStarvedTenantFlush exercises satellite 1 through the service: a
// tenant whose stream never yields two samples per class flushes to the
// typed starvation outcome instead of a fabricated verdict.
func TestStarvedTenantFlush(t *testing.T) {
	svc, _, c := startServer(t, testCfg())
	obs := []Observation{
		{Tenant: "starved", Seq: 0, Secret: 0, Cycle: 1, Value: 100},
		{Tenant: "starved", Seq: 1, Secret: 0, Cycle: 2, Value: 101},
		{Tenant: "starved", Seq: 2, Secret: 1, Cycle: 3, Value: 102},
	}
	mustStream(t, c, obs)
	starved, err := c.Flush(context.Background(), "starved")
	if err != nil {
		t.Fatal(err)
	}
	if !starved {
		t.Fatal("flush of one-sided stream did not report starvation")
	}
	v, _ := svc.Verdict("starved")
	if !v.Flushed || v.FlushError == "" || v.Windows != 0 {
		t.Errorf("starved verdict: %+v", v)
	}
	// Unknown tenant flushes are 404, not 500.
	if _, err := c.Flush(context.Background(), "nobody"); err == nil {
		t.Error("flush of unknown tenant succeeded")
	}
}

// TestCheckpointCorruptionRejected verifies a damaged checkpoint fails
// restore loudly instead of silently serving wrong verdicts.
func TestCheckpointCorruptionRejected(t *testing.T) {
	dir := t.TempDir()
	cfg := testCfg()
	cfg.CheckpointPath = filepath.Join(dir, "auditd.ckpt")

	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	c := &Client{Base: ts.URL, HTTP: ts.Client(), BatchSize: 20}
	mustStream(t, c, genObs("t", 30, 5, 100, 400))
	if err := c.Checkpoint(context.Background()); err != nil {
		t.Fatal(err)
	}
	ts.Close()
	_ = svc.Close(context.Background())

	blob, err := os.ReadFile(cfg.CheckpointPath)
	if err != nil {
		t.Fatal(err)
	}
	for name, mutate := range map[string]func([]byte) []byte{
		"bit flip":  func(b []byte) []byte { b = append([]byte{}, b...); b[len(b)/2] ^= 0x40; return b },
		"truncated": func(b []byte) []byte { return b[:len(b)/2] },
		"garbage":   func([]byte) []byte { return []byte("not a checkpoint") },
	} {
		if err := os.WriteFile(cfg.CheckpointPath, mutate(blob), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := New(cfg); err == nil {
			t.Errorf("%s: New accepted a corrupt checkpoint", name)
		}
	}
}

// TestMaxTenantsRefused pins the registry bound: tenant MaxTenants+1 is
// refused with a terminal 403, not a retryable shed.
func TestMaxTenantsRefused(t *testing.T) {
	cfg := testCfg()
	cfg.MaxTenants = 2
	_, ts, _ := startServer(t, cfg)
	for i, want := range []int{http.StatusOK, http.StatusOK, http.StatusForbidden} {
		body := fmt.Sprintf(`{"tenant":"t%d","seq":0,"secret":0,"cycle":1,"value":1}`+"\n", i)
		if code, res := postBody(t, ts, body); code != want {
			t.Fatalf("tenant %d: code %d res %+v, want %d", i, code, res, want)
		}
	}
}

// TestClientChaosConverges drives the full client-side fault repertoire —
// malformed and truncated pre-sends, burst duplicate storms, slow
// trickled uploads, stalled readers — and verifies the service neither
// crashes nor diverges: the final verdicts are byte-identical to a
// fault-free run of the same stream.
func TestClientChaosConverges(t *testing.T) {
	obs := genObs("chaotic", 60, 31, 100, 400)

	_, _, calm := startServer(t, testCfg())
	mustStream(t, calm, obs)
	want := verdictBytes(t, calm)

	// A real net/http server with read timeouts (not httptest defaults):
	// the configuration under which a stalled-reader fault once
	// deadlocked the client against its own unclosed pipe.
	svc, err := New(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewUnstartedServer(svc.Handler())
	srv.Config.ReadHeaderTimeout = time.Second
	srv.Config.ReadTimeout = 2 * time.Second
	srv.Start()
	t.Cleanup(func() {
		srv.Close()
		_ = svc.Close(context.Background())
	})
	wild := &Client{Base: srv.URL, HTTP: srv.Client(), BatchSize: 10, Seed: 1,
		Backoff: time.Millisecond, MaxBackoff: 20 * time.Millisecond}
	// One deterministic event of every kind, plus a random campaign on
	// top — the full repertoire is guaranteed hit, whatever the seed.
	wild.Faults = fault.ClientCampaign(97, len(obs)/10+2, 8)
	wild.Faults.Events = append(wild.Faults.Events,
		fault.ClientEvent{Kind: fault.SlowClient, Batch: 1, Magnitude: 8},
		fault.ClientEvent{Kind: fault.MalformedPayload, Batch: 2},
		fault.ClientEvent{Kind: fault.TruncatedPayload, Batch: 3},
		fault.ClientEvent{Kind: fault.BurstStorm, Batch: 4, Magnitude: 2},
		fault.ClientEvent{Kind: fault.StalledReader, Batch: 5},
	)
	wild.Retries = 50
	res := mustStream(t, wild, obs)
	got := verdictBytes(t, wild)

	if !bytes.Equal(want, got) {
		t.Errorf("chaos run verdicts diverged:\n%s\nvs\n%s", want, got)
	}
	if res.Accepted+res.Duplicates < len(obs) {
		t.Errorf("chaos run acked %d+%d of %d", res.Accepted, res.Duplicates, len(obs))
	}
	if svc.ctr.panics.Load() != 0 {
		t.Errorf("service recovered %d panics under client chaos, want 0", svc.ctr.panics.Load())
	}
	// At least one injected fault must actually have hit the server.
	if svc.ctr.malformed.Load() == 0 && svc.ctr.duplicates.Load() == 0 {
		t.Error("chaos campaign injected nothing observable")
	}
}

// TestMetricsExposition smoke-tests /metrics and /healthz.
func TestMetricsExposition(t *testing.T) {
	_, ts, c := startServer(t, testCfg())
	mustStream(t, c, genObs("m", 30, 41, 100, 400))
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"dagauditd_ingest_accepted_total 60",
		`dagauditd_tenant_slot{tenant="m"} 1`,
		`dagauditd_req_latency_bucket{domain="1"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	hz, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hz.Body.Close()
	if hz.StatusCode != http.StatusOK {
		t.Errorf("/healthz = %d", hz.StatusCode)
	}
}

// TestCloseNoGoroutineLeak pins graceful shutdown: after Close (and
// connection teardown) the service has released every goroutine it
// started, and Close is idempotent.
func TestCloseNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()

	svc, err := New(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	c := &Client{Base: ts.URL, HTTP: ts.Client(), BatchSize: 20}
	mustStream(t, c, genObs("g", 40, 51, 100, 400))
	ts.Close()
	if err := svc.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := svc.Close(context.Background()); err != nil {
		t.Fatal(err) // idempotent
	}
	// Ingest after Close is refused, not deadlocked.
	req := httptest.NewRequest(http.MethodPost, "/v1/ingest", strings.NewReader(`{"tenant":"g","seq":80,"secret":0,"cycle":1,"value":1}`+"\n"))
	rec := httptest.NewRecorder()
	svc.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("post-Close ingest = %d, want 503", rec.Code)
	}

	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if now := runtime.NumGoroutine(); now > before {
		buf := make([]byte, 1<<16)
		t.Fatalf("goroutines leaked: %d before, %d after\n%s", before, now, buf[:runtime.Stack(buf, true)])
	}
}
