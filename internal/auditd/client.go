package auditd

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"dagguise/internal/fault"
	"dagguise/internal/obs"
	"dagguise/internal/runner"
)

// Client streams observations into a dagauditd instance with the retry
// discipline the server's protocol assumes: timeouts and transport errors
// back off exponentially (capped, deterministic jitter via
// runner.BackoffDelay), 429 respects Retry-After, 409 rewinds the cursor
// to the server's expected sequence, and 4xx terminal states stop the
// stream. Because every observation carries its sequence number, any
// amount of retrying — including replaying the whole stream after a
// server crash — is idempotent.
type Client struct {
	// Base is the server URL, e.g. "http://127.0.0.1:9470".
	Base string
	// HTTP is the transport (default http.DefaultClient).
	HTTP *http.Client
	// BatchSize is observations per ingest request (default 64).
	BatchSize int
	// Retries bounds consecutive failed attempts per batch (default 8).
	Retries int
	// Backoff / MaxBackoff shape the retry delays (defaults 50ms / 2s).
	Backoff, MaxBackoff time.Duration
	// Seed keys the deterministic backoff jitter.
	Seed int64
	// Faults, when non-empty, injects client-side transport chaos
	// (malformed pre-sends, truncations, bursts, slow writes, stalled
	// readers) keyed on the batch index.
	Faults fault.ClientSchedule
	// Logf, when non-nil, narrates retries and injected faults.
	Logf func(format string, args ...any)
	// Spans, when set, records one CompClient span per Stream call (on
	// the sequence-number clock) and stamps every ingest request with
	// the X-Dag-Span header, so the server's ingest spans nest under the
	// client's stream span across the process boundary.
	Spans *obs.Spans
}

func (c *Client) httpc() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) batchSize() int {
	if c.BatchSize > 0 {
		return c.BatchSize
	}
	return 64
}

func (c *Client) retries() int {
	if c.Retries > 0 {
		return c.Retries
	}
	return 8
}

func (c *Client) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

// encodeBatch renders observations as the NDJSON wire format.
func encodeBatch(batch []Observation) []byte {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, o := range batch {
		_ = enc.Encode(o)
	}
	return buf.Bytes()
}

// post sends one ingest request and decodes the response body (best
// effort: a non-JSON body yields a zero IngestResult with the status).
func (c *Client) post(ctx context.Context, body io.Reader, span uint64) (IngestResult, int, http.Header, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.Base+"/v1/ingest", body)
	if err != nil {
		return IngestResult{}, 0, nil, err
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	if span != 0 {
		req.Header.Set(obs.SpanHeader, obs.SpanContext{Span: span, Name: "stream"}.Encode())
	}
	resp, err := c.httpc().Do(req)
	if err != nil {
		return IngestResult{}, 0, nil, err
	}
	defer resp.Body.Close()
	var res IngestResult
	_ = json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&res)
	return res, resp.StatusCode, resp.Header, nil
}

// injectPreSend fires this batch's pre-send faults: deliberately broken
// requests whose rejection (or slow drip) exercises the server's
// validation and read paths. Responses are ignored — the real send
// follows.
func (c *Client) injectPreSend(ctx context.Context, batchIdx int, payload []byte, span uint64) {
	for _, ev := range c.Faults.ForBatch(batchIdx) {
		switch ev.Kind {
		case fault.MalformedPayload:
			c.logf("chaos: malformed pre-send at batch %d", batchIdx)
			garbage := []byte("{\"tenant\":\"x\",\"seq\":not-json\n\x00\xff")
			_, _, _, _ = c.post(ctx, bytes.NewReader(garbage), span)
		case fault.TruncatedPayload:
			cut := len(payload) / 2
			if cut == 0 {
				cut = 1
			}
			c.logf("chaos: truncated pre-send at batch %d (%d/%d bytes)", batchIdx, cut, len(payload))
			_, _, _, _ = c.post(ctx, bytes.NewReader(payload[:cut]), span)
		case fault.BurstStorm:
			// Duplicate storm: fire the real payload several extra times
			// up front. Whatever subset the server accepts, the sequence
			// protocol dedups the rest — the storm must not change the
			// accepted stream.
			m := ev.Magnitude
			if m < 1 {
				m = 1
			} else if m > 3 {
				m = 3
			}
			c.logf("chaos: burst storm at batch %d (%d extra sends)", batchIdx, m)
			for j := 0; j < m; j++ {
				_, _, _, _ = c.post(ctx, bytes.NewReader(payload), span)
			}
		case fault.StalledReader:
			// Open a request whose body never arrives, then abandon it:
			// the server must time the read out without wedging a worker.
			// The pipe must be closed by a timer, not after post returns:
			// a canceled round trip still waits for its body writer to
			// finish, so closing only afterwards would deadlock the
			// client against its own stall.
			c.logf("chaos: stalled reader at batch %d", batchIdx)
			stallCtx, cancel := context.WithTimeout(ctx, 100*time.Millisecond)
			pr, pw := io.Pipe()
			tm := time.AfterFunc(150*time.Millisecond, func() {
				pw.CloseWithError(context.Canceled)
			})
			_, _, _, _ = c.post(stallCtx, pr, span)
			tm.Stop()
			pw.CloseWithError(context.Canceled)
			cancel()
		}
	}
}

// sendBody wraps the payload in this batch's in-flight faults (slow
// trickled writes) and posts it.
func (c *Client) sendBody(ctx context.Context, batchIdx int, payload []byte, span uint64) (IngestResult, int, http.Header, error) {
	for _, ev := range c.Faults.ForBatch(batchIdx) {
		if ev.Kind == fault.SlowClient {
			chunk := ev.Magnitude
			if chunk < 1 {
				chunk = 1
			}
			c.logf("chaos: slow client at batch %d (%d-byte chunks)", batchIdx, chunk)
			return c.post(ctx, &trickleReader{data: payload, chunk: chunk, pause: time.Millisecond}, span)
		}
	}
	return c.post(ctx, bytes.NewReader(payload), span)
}

// trickleReader serves data in tiny chunks with pauses — a slowloris-
// shaped client. Pauses are capped so tests stay fast.
type trickleReader struct {
	data   []byte
	chunk  int
	pause  time.Duration
	pauses int
}

func (t *trickleReader) Read(p []byte) (int, error) {
	if len(t.data) == 0 {
		return 0, io.EOF
	}
	if t.pauses < 32 { // bound total added latency
		t.pauses++
		time.Sleep(t.pause)
	}
	n := t.chunk
	if n > len(p) {
		n = len(p)
	}
	if n > len(t.data) {
		n = len(t.data)
	}
	copy(p, t.data[:n])
	t.data = t.data[n:]
	return n, nil
}

// sleepCtx waits d or until ctx is done.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	tm := time.NewTimer(d)
	defer tm.Stop()
	select {
	case <-tm.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// StreamResult summarises one Stream call.
type StreamResult struct {
	Accepted   int // observations newly accepted by the server
	Duplicates int // retransmissions the server acknowledged and dropped
	Retries    int // failed attempts that were retried
	Shed       int // 429 responses absorbed via backoff
}

// Stream sends observations (ascending, dense Seq) in batches until the
// server has acknowledged every one, surviving sheds, transport faults
// and server restarts. It is safe to call with a stream the server has
// partially or wholly seen: duplicates are acknowledged server-side.
func (c *Client) Stream(ctx context.Context, observations []Observation) (StreamResult, error) {
	var out StreamResult
	first := uint64(0)
	if len(observations) > 0 {
		first = observations[0].Seq
	}
	// The stream span lives on the sequence-number clock (the only
	// deterministic time axis a retrying client has) and is the parent
	// every ingest request propagates to the server.
	span := c.Spans.Begin("stream", obs.CompClient, 0, 0, 0, first)
	defer func() { c.Spans.End(span, first+uint64(len(observations))) }()
	i, batchIdx, attempts := 0, 0, 0
	for i < len(observations) {
		end := i + c.batchSize()
		if end > len(observations) {
			end = len(observations)
		}
		payload := encodeBatch(observations[i:end])
		c.injectPreSend(ctx, batchIdx, payload, span)
		res, status, hdr, err := c.sendBody(ctx, batchIdx, payload, span)
		batchIdx++

		backoffRetry := func(why string) error {
			attempts++
			out.Retries++
			if attempts > c.retries() {
				return fmt.Errorf("auditd client: batch at seq %d failed %d times: %s", observations[i].Seq, attempts, why)
			}
			d := runner.BackoffDelay(c.Backoff, c.MaxBackoff, c.Seed, attempts)
			c.logf("retry %d after %v: %s", attempts, d, why)
			return sleepCtx(ctx, d)
		}

		switch {
		case err != nil:
			if ctx.Err() != nil {
				return out, ctx.Err()
			}
			if err := backoffRetry(err.Error()); err != nil {
				return out, err
			}
		case status == http.StatusOK:
			i = end
			attempts = 0
			out.Accepted += res.Accepted
			out.Duplicates += res.Duplicates
		case status == http.StatusTooManyRequests:
			out.Shed++
			d := retryAfter(hdr)
			if d <= 0 {
				attempts++
				out.Retries++
				d = runner.BackoffDelay(c.Backoff, c.MaxBackoff, c.Seed, attempts)
			}
			c.logf("shed (429), waiting %v", d)
			if err := sleepCtx(ctx, d); err != nil {
				return out, err
			}
		case status == http.StatusConflict && res.Expected != nil:
			// Sequence gap: rewind the cursor to what the server expects.
			out.Accepted += res.Accepted
			out.Duplicates += res.Duplicates
			want := *res.Expected
			if want < first || want > first+uint64(len(observations)) {
				return out, fmt.Errorf("auditd client: server expects seq %d outside stream [%d,%d)", want, first, first+uint64(len(observations)))
			}
			c.logf("gap: rewinding cursor from %d to %d", i, int(want-first))
			i = int(want - first)
			if err := backoffRetry("sequence gap"); err != nil {
				return out, err
			}
		case status == http.StatusServiceUnavailable:
			if err := backoffRetry("server draining"); err != nil {
				return out, err
			}
		default:
			// 400/403/422/...: protocol-terminal, retrying cannot help.
			return out, fmt.Errorf("auditd client: server rejected batch (%d): %s", status, res.Error)
		}
	}
	return out, nil
}

// retryAfter parses a Retry-After seconds header, 0 if absent/invalid.
func retryAfter(hdr http.Header) time.Duration {
	if hdr == nil {
		return 0
	}
	n, err := strconv.Atoi(hdr.Get("Retry-After"))
	if err != nil || n < 0 {
		return 0
	}
	return time.Duration(n) * time.Second
}

// Verdicts fetches all tenant verdicts, returning both the raw JSON bytes
// (byte-diffable across runs) and the decoded form.
func (c *Client) Verdicts(ctx context.Context) ([]byte, *VerdictsResponse, error) {
	raw, err := c.get(ctx, "/v1/verdicts")
	if err != nil {
		return nil, nil, err
	}
	var vr VerdictsResponse
	if err := json.Unmarshal(raw, &vr); err != nil {
		return raw, nil, fmt.Errorf("auditd client: decode verdicts: %w", err)
	}
	return raw, &vr, nil
}

// Flush forces the named tenant's final partial window. starved reports
// the typed insufficient-samples outcome (the flush is recorded but no
// calibrated window exists).
func (c *Client) Flush(ctx context.Context, tenant string) (starved bool, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.Base+"/v1/tenants/"+tenant+"/flush", nil)
	if err != nil {
		return false, err
	}
	resp, err := c.httpc().Do(req)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	var fr FlushResponse
	_ = json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&fr)
	switch {
	case resp.StatusCode == http.StatusOK:
		return false, nil
	case fr.Starved:
		return true, nil
	default:
		return false, fmt.Errorf("auditd client: flush %s (%d): %s", tenant, resp.StatusCode, fr.Error)
	}
}

// Checkpoint forces a durable server checkpoint.
func (c *Client) Checkpoint(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.Base+"/v1/checkpoint", nil)
	if err != nil {
		return err
	}
	resp, err := c.httpc().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("auditd client: checkpoint (%d): %s", resp.StatusCode, bytes.TrimSpace(body))
	}
	return nil
}

// get fetches a URL path, returning the body on 200.
func (c *Client) get(ctx context.Context, path string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+path, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.httpc().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("auditd client: GET %s: %d", path, resp.StatusCode)
	}
	return body, nil
}
