package auditd

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"dagguise/internal/obs"
)

// alertSink is a test webhook: it records every alert edge dagauditd
// delivers.
type alertSink struct {
	mu     sync.Mutex
	alerts []obs.Alert
}

func (as *alertSink) handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var a obs.Alert
		if err := json.NewDecoder(r.Body).Decode(&a); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		as.mu.Lock()
		as.alerts = append(as.alerts, a)
		as.mu.Unlock()
	})
}

func (as *alertSink) got() []obs.Alert {
	as.mu.Lock()
	defer as.mu.Unlock()
	return append([]obs.Alert(nil), as.alerts...)
}

// fetchAlerts reads the /v1/alerts endpoint.
func fetchAlerts(t *testing.T, c *Client) AlertsResponse {
	t.Helper()
	raw, err := c.get(context.Background(), "/v1/alerts")
	if err != nil {
		t.Fatal(err)
	}
	var ar AlertsResponse
	if err := json.Unmarshal(raw, &ar); err != nil {
		t.Fatal(err)
	}
	return ar
}

// burnEdges filters one tenant's leak-budget edges out of a history.
func burnEdges(history []obs.Alert, tenant string) []obs.Alert {
	var out []obs.Alert
	for _, a := range history {
		if a.Rule == "leak-budget-burn" && a.Series == "leak_burn/"+tenant {
			out = append(out, a)
		}
	}
	return out
}

// TestAlertingLeakyFiresCleanSilent is the PR's acceptance scenario in
// one process: with the stock rule catalog and a webhook wired in, a
// tenant burning its leakage budget fires exactly one deduplicated
// alert edge (delivered to the webhook and visible at /v1/alerts),
// while a clean DAGguise-shaped tenant stays silent.
func TestAlertingLeakyFiresCleanSilent(t *testing.T) {
	sink := &alertSink{}
	hook := httptest.NewServer(sink.handler())
	defer hook.Close()
	notifier := obs.NewNotifier(hook.URL, obs.NotifierConfig{Backoff: time.Millisecond})

	tr := obs.NewTracer(1 << 12)
	cfg := testCfg()
	cfg.Rules = obs.DefaultRules()
	cfg.Notifier = notifier
	cfg.Tracer = tr
	_, _, c := startServer(t, cfg)

	leaky := genObs("leaky", 60, 7, 100, 400)
	clean := genObs("clean", 60, 8, 100, 100)
	mustStream(t, c, append(append([]Observation{}, leaky...), clean...))
	for _, tenant := range []string{"clean", "leaky"} {
		if _, err := c.Flush(context.Background(), tenant); err != nil {
			t.Fatal(err)
		}
	}

	ar := fetchAlerts(t, c)
	if got := burnEdges(ar.History, "leaky"); len(got) != 1 || got[0].State != "firing" {
		t.Fatalf("leaky tenant burn edges = %+v, want exactly one firing edge", got)
	}
	if got := burnEdges(ar.History, "clean"); len(got) != 0 {
		t.Fatalf("clean tenant fired burn alerts: %+v", got)
	}
	wantKey := "leak-budget-burn|leak_burn/leaky"
	found := false
	for _, k := range ar.Firing {
		if k == wantKey {
			found = true
		}
	}
	if !found {
		t.Fatalf("firing set %v missing %q", ar.Firing, wantKey)
	}
	if len(ar.Rules) == 0 {
		t.Fatal("alerts response carries no rule set")
	}

	// The edge reached the webhook (delivery is async; Close drains).
	notifier.Close()
	var hits int
	for _, a := range sink.got() {
		if a.Rule == "leak-budget-burn" && a.Series == "leak_burn/leaky" && a.State == "firing" {
			hits++
		}
	}
	if hits != 1 {
		t.Fatalf("webhook received %d leaky burn edges, want 1 (got %+v)", hits, sink.got())
	}
	if notifier.Failed() != 0 || notifier.Dropped() != 0 {
		t.Fatalf("webhook delivery lost edges: failed=%d dropped=%d", notifier.Failed(), notifier.Dropped())
	}

	// The flight tracer recorded the edge as an EvAlert event.
	var alertEvents int
	for _, ev := range tr.Events() {
		if ev.Kind == obs.EvAlert && strings.Contains(ev.Name, "leak_burn/leaky") {
			alertEvents++
		}
	}
	if alertEvents != 1 {
		t.Fatalf("tracer holds %d leaky alert events, want 1", alertEvents)
	}
}

// TestAlertStateSurvivesCheckpoint pins the durable-alerting contract:
// TSDB points and engine dedup state ride the service checkpoint, so a
// SIGKILL + restore + blind full replay does not re-fire an alert that
// already fired, and the alert history is preserved.
func TestAlertStateSurvivesCheckpoint(t *testing.T) {
	stream := genObs("leaky", 60, 7, 100, 400)
	dir := t.TempDir()
	cfg := testCfg()
	cfg.Rules = obs.DefaultRules()
	cfg.CheckpointPath = filepath.Join(dir, "auditd.ckpt")

	svc1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(svc1.Handler())
	c1 := &Client{Base: ts1.URL, HTTP: ts1.Client(), BatchSize: 20, Seed: 1,
		Backoff: time.Millisecond, MaxBackoff: 20 * time.Millisecond}
	mustStream(t, c1, stream)
	before := fetchAlerts(t, c1)
	if got := burnEdges(before.History, "leaky"); len(got) != 1 {
		t.Fatalf("pre-kill burn edges = %+v, want 1", got)
	}
	if err := c1.Checkpoint(context.Background()); err != nil {
		t.Fatal(err)
	}
	ts1.Close()
	svc1.killForTest()

	svc2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(svc2.Handler())
	defer func() {
		ts2.Close()
		_ = svc2.Close(context.Background())
	}()
	c2 := &Client{Base: ts2.URL, HTTP: ts2.Client(), BatchSize: 20, Seed: 1,
		Backoff: time.Millisecond, MaxBackoff: 20 * time.Millisecond}

	restored := fetchAlerts(t, c2)
	if got := burnEdges(restored.History, "leaky"); len(got) != 1 || got[0].Seq != burnEdges(before.History, "leaky")[0].Seq {
		t.Fatalf("alert history not restored: %+v vs %+v", restored.History, before.History)
	}

	// Blind full replay: everything dup-acks, the burn rate is unchanged,
	// and the restored dedup state suppresses a duplicate firing edge.
	res := mustStream(t, c2, stream)
	if res.Duplicates == 0 {
		t.Fatal("replay produced no duplicates: checkpoint restored nothing")
	}
	after := fetchAlerts(t, c2)
	if got := burnEdges(after.History, "leaky"); len(got) != 1 {
		t.Fatalf("replay re-fired a deduplicated alert: %+v", got)
	}
	wantKey := "leak-budget-burn|leak_burn/leaky"
	found := false
	for _, k := range after.Firing {
		if k == wantKey {
			found = true
		}
	}
	if !found {
		t.Fatalf("restored firing set %v missing %q", after.Firing, wantKey)
	}
}

// TestIngestSpanPropagation checks the cross-process span contract: the
// client's stream span travels in the X-Dag-Span header and becomes the
// parent of every server-side ingest span; a malformed header degrades
// to an unparented span instead of failing the ingest.
func TestIngestSpanPropagation(t *testing.T) {
	tr := obs.NewTracer(1 << 12)
	cfg := testCfg()
	cfg.Spans = obs.NewSpans(tr)
	_, ts, c := startServer(t, cfg)
	c.Spans = obs.NewSpans(nil) // client-side: IDs + propagation, no local ring

	stream := genObs("clean", 30, 9, 100, 100) // 60 obs, batch 20 => 3 ingests
	mustStream(t, c, stream)

	var begins []obs.Event
	for _, ev := range tr.Events() {
		if ev.Kind == obs.EvSpanBegin && ev.Name == "ingest" {
			begins = append(begins, ev)
		}
	}
	if len(begins) != 3 {
		t.Fatalf("server recorded %d ingest spans, want 3", len(begins))
	}
	for _, ev := range begins {
		// The client's first allocated span ID is 1: the Stream span.
		if ev.Parent != 1 {
			t.Fatalf("ingest span parent = %d, want the client stream span (1): %+v", ev.Parent, ev)
		}
		if ev.Comp != obs.CompService {
			t.Fatalf("ingest span on component %v, want CompService", ev.Comp)
		}
	}
	if open := cfg.Spans.Open(); len(open) != 0 {
		t.Fatalf("server left ingest spans open: %+v", open)
	}

	// A garbage span header must not fail ingest; the span lands with no
	// parent.
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/ingest",
		strings.NewReader(`{"tenant":"clean","seq":60,"secret":0,"cycle":600,"value":100}`+"\n"))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	req.Header.Set(obs.SpanHeader, ";;;not-a-span;;;")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest with garbage span header returned %d", resp.StatusCode)
	}
	evs := tr.Events()
	last := evs[len(evs)-1]
	if last.Kind != obs.EvSpanEnd || last.Name != "ingest" {
		t.Fatalf("last event after garbage-header ingest = %+v", last)
	}
	if last.Parent != 0 {
		t.Fatalf("garbage header produced parent %d, want 0", last.Parent)
	}
}
