// Package auditd is the always-on leakage-audit service: the
// productionized form of internal/audit's batch pipeline, built to keep
// producing trustworthy verdicts while clients misbehave, load spikes and
// the process gets killed.
//
// Architecture: timing observations arrive over HTTP as newline-delimited
// JSON batches, each line carrying (tenant, seq, secret, cycle, value).
// The handler validates and groups lines, then routes every tenant to one
// of a fixed set of shard workers over a bounded queue — the only place
// work can pile up, so overload surfaces as an immediate 429 + Retry-After
// instead of unbounded memory growth or a deadlocked accept loop. Each
// tenant owns a windowed audit.Auditor (compacted after every batch, so
// memory per tenant is O(window), not O(stream)) plus a bounded aggregate
// of every window ever audited.
//
// Robustness properties, each pinned by a test:
//
//   - Exactly-once ingest: every observation carries a per-tenant sequence
//     number; duplicates are acknowledged and dropped, gaps are rejected
//     with the expected sequence, so any client retry policy — including
//     blind full-stream replay after a server crash — converges on the
//     identical accepted stream and therefore the identical verdicts.
//   - Backpressure, not collapse: full shard queues shed load with 429;
//     the request path never blocks unboundedly and never allocates
//     proportionally to the flood.
//   - Graceful degradation: a tenant that keeps flooding past
//     DegradeAfter observations is switched to deterministic 1-in-
//     SampleKeep sampling (keyed on the sequence number, so the kept
//     subsequence — and every verdict derived from it — is independent of
//     timing and load).
//   - Panic isolation: a poisoned stream that panics the audit pipeline
//     quarantines that tenant and keeps the fleet serving; the quarantine
//     reason is visible in the tenant's verdict.
//   - Crash recovery: all tenant state checkpoints through internal/ckpt
//     (framed, checksummed, atomically renamed) every CheckpointEvery
//     accepted observations; a SIGKILL loses at most the un-checkpointed
//     tail, which the sequence protocol lets clients replay, so resumed
//     verdicts are byte-identical to an uninterrupted run.
package auditd

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"

	"dagguise/internal/audit"
	"dagguise/internal/obs"
	"dagguise/internal/rng"
	"dagguise/internal/telem"
)

// Observation is one wire-format timing sample. Seq numbers a tenant's
// observations densely from 0 across both secret classes: it is the
// exactly-once cursor, not a timestamp.
type Observation struct {
	Tenant string `json:"tenant"`
	Seq    uint64 `json:"seq"`
	Secret int    `json:"secret"`
	Cycle  uint64 `json:"cycle"`
	Value  uint64 `json:"value"`
}

// Config parameterises a Service.
type Config struct {
	// Audit is the per-tenant auditor configuration. Each tenant's
	// calibration seed is derived from Audit.Seed and the tenant name, so
	// tenants are statistically independent but individually reproducible.
	Audit audit.Config
	// Shards is the number of worker goroutines (default 4). Tenants hash
	// onto shards, so one tenant's batches always process in order.
	Shards int
	// QueueDepth bounds each shard's pending-batch queue (default 64);
	// a full queue sheds load with 429 instead of growing.
	QueueDepth int
	// MaxTenants bounds the tenant registry (default 64); past it, new
	// tenant names are refused outright (403, not a retryable 429).
	MaxTenants int
	// MaxBatchBytes / MaxLineBytes bound one ingest request body and one
	// NDJSON line (defaults 1 MiB / 4096).
	MaxBatchBytes int64
	MaxLineBytes  int
	// DegradeAfter is the per-tenant accepted-observation count past which
	// the service degrades to sampling instead of auditing every
	// observation (0 = never degrade).
	DegradeAfter int
	// SampleKeep is the degraded sampling rate: keep observations whose
	// seq is divisible by SampleKeep (default 4, minimum 2 once degraded).
	SampleKeep int
	// RecentWindows is how many of the latest window reports each
	// tenant's verdict retains (default 8).
	RecentWindows int
	// CheckpointPath, when non-empty, enables durable tenant-state
	// checkpoints at this file path.
	CheckpointPath string
	// CheckpointEvery is the auto-checkpoint cadence in accepted
	// observations across all tenants (0 = only explicit/shutdown
	// checkpoints).
	CheckpointEvery int
	// RetryAfterSeconds is the Retry-After hint attached to shed load
	// (default 1).
	RetryAfterSeconds int
	// Hook, when non-nil, runs for every accepted observation before it is
	// processed — the chaos/test seam for injecting processing faults
	// (e.g. panics on a poisoned stream). Keyed decisions must depend only
	// on (tenant, observation) to preserve determinism.
	Hook func(tenant string, o Observation)

	// Rules, when non-empty, enables the in-process SLO pipeline: every
	// processed batch feeds the service's time-series store
	// (leak_burn/<tenant> per audited window, queue_sat/<shard> and
	// retry_rate/<shard> per batch) and evaluates the rules against it,
	// emitting deduplicated alert edges. obs.DefaultRules is the stock
	// catalog; obs.ParseRules reads a -alert-rules file.
	Rules []obs.Rule
	// Notifier delivers alert edges to a webhook (nil = keep them only in
	// the engine's history, visible at /v1/alerts).
	Notifier *obs.Notifier
	// Tracer, when non-nil, receives flight-recorder events (alert edges;
	// ingest spans when Spans is also set).
	Tracer *obs.Tracer
	// Spans, when non-nil, records one span per ingest request, parented
	// on the client's X-Dag-Span context so cross-process traces nest.
	Spans *obs.Spans
	// Telem, when non-nil, mirrors the SLO feed series (leak_burn,
	// queue_sat, retry_rate) onto a fleet telemetry stream, so a fleet
	// collector folds a targeted audit daemon into the same campaign
	// view as the simulation workers. Nil is a no-op.
	Telem *telem.Emitter
}

// withDefaults fills the zero-value knobs.
func (c Config) withDefaults() Config {
	if c.Audit.Window == 0 {
		c.Audit = audit.DefaultConfig()
	}
	if c.Shards <= 0 {
		c.Shards = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.MaxTenants <= 0 {
		c.MaxTenants = 64
	}
	if c.MaxBatchBytes <= 0 {
		c.MaxBatchBytes = 1 << 20
	}
	if c.MaxLineBytes <= 0 {
		c.MaxLineBytes = 4096
	}
	if c.SampleKeep < 2 {
		c.SampleKeep = 4
	}
	if c.RecentWindows <= 0 {
		c.RecentWindows = 8
	}
	if c.RetryAfterSeconds <= 0 {
		c.RetryAfterSeconds = 1
	}
	return c
}

// aggregate is a tenant's bounded fold over every window ever audited —
// the verdict survives even though full reports are handed off and
// samples compacted away.
type aggregate struct {
	Windows            int     `json:"windows"`
	Tripped            int     `json:"tripped"`
	MaxMI              float64 `json:"max_mi_bits"`
	FirstExceeded      int     `json:"first_exceeded_window"`
	FirstExceededCycle uint64  `json:"first_exceeded_cycle"`
}

// tenant is one audited stream's full state. Only its shard goroutine
// mutates it (under mu); verdict and checkpoint readers lock mu briefly.
type tenant struct {
	mu   sync.Mutex
	name string
	slot int // obs registry domain

	nextSeq  uint64
	kept     [2]uint64
	sampled  uint64 // degradation-sampled observations (accepted, not audited)
	degraded bool

	poisoned     bool
	poisonReason string

	flushed    bool
	flushError string

	aud    *audit.Auditor
	agg    aggregate
	recent []audit.WindowReport
}

// fold drains finished window reports into the bounded aggregate and
// returns the freshly drained windows so the caller can feed the
// alerting time-series.
func (t *tenant) fold(recentCap int) []audit.WindowReport {
	ws := t.aud.TakeWindows()
	for _, w := range ws {
		t.agg.Windows++
		if len(w.Detectors) > 0 {
			t.agg.Tripped++
		}
		if w.MI > t.agg.MaxMI {
			t.agg.MaxMI = w.MI
		}
		if w.Exceeded && t.agg.FirstExceeded < 0 {
			t.agg.FirstExceeded = w.Index
			t.agg.FirstExceededCycle = w.StartCycle
		}
		t.recent = append(t.recent, w)
	}
	if len(t.recent) > recentCap {
		t.recent = append([]audit.WindowReport(nil), t.recent[len(t.recent)-recentCap:]...)
	}
	return ws
}

// batchReq is one tenant's slice of an ingest request, queued to a shard.
type batchReq struct {
	t    *tenant
	obs  []Observation
	done chan batchResp // buffered(1): the shard never blocks on a gone handler
}

// batchResp is the processing outcome the handler turns into HTTP.
type batchResp struct {
	accepted   int
	duplicates int
	nextSeq    uint64
	gap        *uint64 // non-nil: first out-of-order seq, value = expected
	poisoned   string  // non-empty: tenant quarantined with this reason
}

type shard struct {
	idx       int
	ch        chan *batchReq
	processed uint64 // batches this shard has applied (its TSDB time axis)
}

// counters are the service-level metrics exported at /metrics.
type counters struct {
	batches, observations, accepted, duplicates atomic.Uint64
	shed, gaps, malformed, rejectedTenants      atomic.Uint64
	quarantined, panics, checkpoints, alerts    atomic.Uint64
}

// Service is the leakage-audit daemon core: wire it to HTTP with Handler.
type Service struct {
	cfg Config
	mx  *obs.Registry

	// tsdb and engine are non-nil only when cfg.Rules is set; both are
	// internally locked, and nil disables the whole alerting path at the
	// usual obs nil-no-op cost.
	tsdb   *obs.TSDB
	engine *obs.Engine

	shards []*shard

	mu      sync.RWMutex
	tenants map[string]*tenant

	accepting atomic.Bool
	ready     atomic.Bool

	handlerWG sync.WaitGroup // in-flight ingest handlers (gates shutdown)
	shardWG   sync.WaitGroup

	ckptMu    sync.Mutex
	sinceCkpt atomic.Uint64

	ctr       counters
	closeOnce sync.Once
	closeErr  error
}

// New builds a Service. When cfg.CheckpointPath names an existing
// checkpoint, all tenant state is restored from it before serving — the
// crash-recovery path — so the first verdict after a kill continues the
// stream exactly where the last checkpoint captured it.
func New(cfg Config) (*Service, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Audit.Validate(); err != nil {
		return nil, fmt.Errorf("auditd: %w", err)
	}
	s := &Service{
		cfg:     cfg,
		mx:      obs.NewRegistry(cfg.MaxTenants + 1),
		tenants: make(map[string]*tenant),
	}
	if len(cfg.Rules) > 0 {
		for i := range cfg.Rules {
			if err := cfg.Rules[i].Validate(); err != nil {
				return nil, fmt.Errorf("auditd: %w", err)
			}
		}
		s.tsdb = obs.NewTSDB(obs.DefaultTSDBCap)
		s.engine = obs.NewEngine(s.tsdb, cfg.Rules)
	}
	if cfg.CheckpointPath != "" {
		if err := s.restore(); err != nil {
			return nil, err
		}
	}
	for i := 0; i < cfg.Shards; i++ {
		sh := &shard{idx: i, ch: make(chan *batchReq, cfg.QueueDepth)}
		s.shards = append(s.shards, sh)
		s.shardWG.Add(1)
		go s.runShard(sh)
	}
	s.accepting.Store(true)
	s.ready.Store(true)
	return s, nil
}

// shardFor maps a tenant name onto its shard, so one tenant's batches
// always process in order on one goroutine.
func (s *Service) shardFor(name string) *shard {
	h := fnv.New32a()
	h.Write([]byte(name))
	return s.shards[int(h.Sum32())%len(s.shards)]
}

// errTooManyTenants rejects tenant-registry growth past the bound.
var errTooManyTenants = fmt.Errorf("auditd: tenant limit reached")

// tenantFor returns (creating if needed) the named tenant.
func (s *Service) tenantFor(name string) (*tenant, error) {
	s.mu.RLock()
	t := s.tenants[name]
	s.mu.RUnlock()
	if t != nil {
		return t, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if t = s.tenants[name]; t != nil {
		return t, nil
	}
	if len(s.tenants) >= s.cfg.MaxTenants {
		return nil, errTooManyTenants
	}
	t, err := s.newTenant(name)
	if err != nil {
		return nil, err
	}
	s.tenants[name] = t
	return t, nil
}

// newTenant builds a fresh tenant with a name-derived calibration seed.
// Caller holds s.mu.
func (s *Service) newTenant(name string) (*tenant, error) {
	cfg := s.cfg.Audit
	cfg.Seed = rng.Derive(cfg.Seed, name)
	aud, err := audit.New(cfg)
	if err != nil {
		return nil, err
	}
	t := &tenant{name: name, slot: len(s.tenants) + 1, aud: aud}
	t.agg.FirstExceeded = -1
	return t, nil
}

// runShard is one worker: it drains its queue until Close closes it,
// checkpointing on cadence with no tenant locks held.
func (s *Service) runShard(sh *shard) {
	defer s.shardWG.Done()
	for req := range sh.ch {
		sat := float64(len(sh.ch)) / float64(cap(sh.ch))
		resp := s.processBatch(req.t, req.obs)
		req.done <- resp
		if s.tsdb != nil {
			// Per-shard series keep every T axis monotonic without
			// cross-shard coordination: each shard is one goroutine.
			sh.processed++
			s.tsdb.Append(fmt.Sprintf("queue_sat/shard%d", sh.idx), sh.processed, sat)
			dup := 0.0
			if resp.duplicates > 0 {
				dup = 1
			}
			s.tsdb.Append(fmt.Sprintf("retry_rate/shard%d", sh.idx), sh.processed, dup)
			s.cfg.Telem.Point(fmt.Sprintf("queue_sat/shard%d", sh.idx), sh.processed, sat)
			s.cfg.Telem.Point(fmt.Sprintf("retry_rate/shard%d", sh.idx), sh.processed, dup)
			s.evalAlerts(s.ctr.accepted.Load())
		}
		if s.cfg.CheckpointPath != "" && s.cfg.CheckpointEvery > 0 &&
			s.sinceCkpt.Add(uint64(resp.accepted)) >= uint64(s.cfg.CheckpointEvery) {
			s.sinceCkpt.Store(0)
			_ = s.Checkpoint() // best-effort; surfaced via /readyz staleness, not by dropping data
		}
	}
}

// feedWindows appends one 0/1 leak-budget indicator point per freshly
// audited window to the tenant's burn series. T is the window index, so
// the series — and every burn-rate alert derived from it — is a
// deterministic function of the tenant's accepted stream.
func (s *Service) feedWindows(t *tenant, ws []audit.WindowReport) {
	if s.tsdb == nil {
		return
	}
	for _, w := range ws {
		v := 0.0
		if w.Exceeded {
			v = 1
		}
		s.tsdb.Append("leak_burn/"+t.name, uint64(w.Index), v)
		s.cfg.Telem.Point("leak_burn/"+t.name, uint64(w.Index), v)
	}
}

// evalAlerts runs the SLO engine at logical time t and fans new edges
// out to the webhook notifier and the flight tracer.
func (s *Service) evalAlerts(t uint64) {
	for _, a := range s.engine.Eval(t) {
		s.ctr.alerts.Add(1)
		s.cfg.Notifier.Notify(a)
		s.cfg.Tracer.Emit(obs.Event{
			Cycle: a.T, Name: a.Rule + "/" + a.Series + " " + a.State,
			Comp: obs.CompService, Kind: obs.EvAlert,
		})
	}
}

// processBatch applies one tenant's observations under its lock. A panic
// anywhere in the audit pipeline quarantines this tenant only — the
// recover is the service's per-tenant blast wall.
func (s *Service) processBatch(t *tenant, batch []Observation) (resp batchResp) {
	t.mu.Lock()
	defer t.mu.Unlock()
	defer func() {
		if p := recover(); p != nil {
			t.poisoned = true
			t.poisonReason = fmt.Sprintf("panic: %v", p)
			s.ctr.panics.Add(1)
			s.ctr.quarantined.Add(1)
			resp = batchResp{nextSeq: t.nextSeq, poisoned: t.poisonReason}
		}
	}()
	if t.poisoned {
		return batchResp{nextSeq: t.nextSeq, poisoned: t.poisonReason}
	}
	for _, o := range batch {
		switch {
		case o.Seq < t.nextSeq:
			resp.duplicates++
			continue
		case o.Seq > t.nextSeq:
			expected := t.nextSeq
			resp.gap = &expected
			resp.nextSeq = t.nextSeq
			s.ctr.gaps.Add(1)
			s.ctr.accepted.Add(uint64(resp.accepted))
			s.ctr.duplicates.Add(uint64(resp.duplicates))
			return resp
		}
		t.nextSeq++
		resp.accepted++
		if s.cfg.Hook != nil {
			s.cfg.Hook(t.name, o)
		}
		if s.cfg.DegradeAfter > 0 && t.nextSeq > uint64(s.cfg.DegradeAfter) {
			t.degraded = true
		}
		if t.degraded && o.Seq%uint64(s.cfg.SampleKeep) != 0 {
			t.sampled++
			continue
		}
		t.kept[o.Secret]++
		s.mx.Observe(obs.HistReqLatency, t.slot, o.Value)
		if err := t.aud.Push(o.Secret, audit.Sample{Cycle: o.Cycle, Value: o.Value}); err != nil {
			panic(err) // secret validated at parse; reaching here is a pipeline bug
		}
	}
	s.feedWindows(t, t.fold(s.cfg.RecentWindows))
	t.aud.Compact()
	resp.nextSeq = t.nextSeq
	s.ctr.accepted.Add(uint64(resp.accepted))
	s.ctr.duplicates.Add(uint64(resp.duplicates))
	return resp
}

// TenantVerdict is one tenant's externally visible audit state. Every
// field is a deterministic function of the tenant's accepted observation
// stream, so verdict JSON is byte-diffable across crash/recovery runs.
type TenantVerdict struct {
	Tenant   string    `json:"tenant"`
	Accepted uint64    `json:"accepted"`
	Kept     [2]uint64 `json:"kept"`
	Sampled  uint64    `json:"sampled_out"`
	Pending  [2]int    `json:"pending"`
	Degraded bool      `json:"degraded"`

	Quarantined      bool   `json:"quarantined"`
	QuarantineReason string `json:"quarantine_reason,omitempty"`

	Flushed    bool   `json:"flushed"`
	FlushError string `json:"flush_error,omitempty"`

	Windows            int                  `json:"windows"`
	Tripped            int                  `json:"tripped"`
	MaxMI              float64              `json:"max_mi_bits"`
	FirstExceeded      int                  `json:"first_exceeded_window"`
	FirstExceededCycle uint64               `json:"first_exceeded_cycle"`
	WithinBudget       bool                 `json:"within_budget"`
	Recent             []audit.WindowReport `json:"recent_windows,omitempty"`
}

// verdictLocked renders the tenant's verdict; caller holds t.mu.
func (t *tenant) verdictLocked() TenantVerdict {
	return TenantVerdict{
		Tenant:             t.name,
		Accepted:           t.nextSeq,
		Kept:               t.kept,
		Sampled:            t.sampled,
		Pending:            t.aud.Pending(),
		Degraded:           t.degraded,
		Quarantined:        t.poisoned,
		QuarantineReason:   t.poisonReason,
		Flushed:            t.flushed,
		FlushError:         t.flushError,
		Windows:            t.agg.Windows,
		Tripped:            t.agg.Tripped,
		MaxMI:              t.agg.MaxMI,
		FirstExceeded:      t.agg.FirstExceeded,
		FirstExceededCycle: t.agg.FirstExceededCycle,
		WithinBudget:       t.agg.FirstExceeded < 0,
		Recent:             append([]audit.WindowReport(nil), t.recent...),
	}
}

// sortedTenants snapshots the registry in name order.
func (s *Service) sortedTenants() []*tenant {
	s.mu.RLock()
	ts := make([]*tenant, 0, len(s.tenants))
	for _, t := range s.tenants {
		ts = append(ts, t)
	}
	s.mu.RUnlock()
	sort.Slice(ts, func(i, j int) bool { return ts[i].name < ts[j].name })
	return ts
}

// Verdicts returns every tenant's verdict, sorted by tenant name.
func (s *Service) Verdicts() []TenantVerdict {
	ts := s.sortedTenants()
	out := make([]TenantVerdict, 0, len(ts))
	for _, t := range ts {
		t.mu.Lock()
		out = append(out, t.verdictLocked())
		t.mu.Unlock()
	}
	return out
}

// Verdict returns one tenant's verdict.
func (s *Service) Verdict(name string) (TenantVerdict, bool) {
	s.mu.RLock()
	t := s.tenants[name]
	s.mu.RUnlock()
	if t == nil {
		return TenantVerdict{}, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.verdictLocked(), true
}

// Flush force-evaluates the named tenant's final partial window — the
// end-of-stream audit. A starved stream surfaces the typed
// audit.ErrInsufficientSamples, which is also recorded on the verdict.
func (s *Service) Flush(name string) (*audit.WindowReport, error) {
	s.mu.RLock()
	t := s.tenants[name]
	s.mu.RUnlock()
	if t == nil {
		return nil, fmt.Errorf("auditd: unknown tenant %q", name)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.poisoned {
		return nil, fmt.Errorf("auditd: tenant %q quarantined: %s", name, t.poisonReason)
	}
	rep, err := t.aud.Flush()
	t.flushed = true
	if err != nil {
		t.flushError = err.Error()
		return nil, err
	}
	t.flushError = ""
	s.feedWindows(t, t.fold(s.cfg.RecentWindows))
	t.aud.Compact()
	// The final partial window may be the edge that trips a burn-rate
	// rule; evaluate before the caller reads /v1/alerts.
	s.evalAlerts(t.nextSeq)
	return rep, nil
}

// Overloaded reports whether every shard queue is at capacity — the
// /readyz signal that new ingest is likely to shed.
func (s *Service) Overloaded() bool {
	for _, sh := range s.shards {
		if len(sh.ch) < cap(sh.ch) {
			return false
		}
	}
	return true
}

// Close drains and stops the service: ingest is refused first, in-flight
// handlers finish, shard queues run dry, and a final checkpoint persists
// every tenant. Safe to call more than once. The context bounds the
// handler drain only in that callers should have stopped the HTTP server
// (or its listeners) first; Close itself waits for its own goroutines.
func (s *Service) Close(ctx context.Context) error {
	s.closeOnce.Do(func() {
		s.ready.Store(false)
		s.accepting.Store(false)
		s.handlerWG.Wait() // no new enqueues past this point
		for _, sh := range s.shards {
			close(sh.ch)
		}
		s.shardWG.Wait()
		s.closeErr = s.Checkpoint()
		_ = ctx
	})
	return s.closeErr
}

// serviceStateKind tags the checkpoint payload so a dagauditd checkpoint
// is never confused with a simulator snapshot sharing the same framing.
const serviceStateKind = "dagauditd-tenants"

// serviceStateVersion guards the checkpoint schema.
const serviceStateVersion = 1

// tenantState is one tenant's serialized form.
type tenantState struct {
	Name         string               `json:"name"`
	NextSeq      uint64               `json:"next_seq"`
	Kept         [2]uint64            `json:"kept"`
	Sampled      uint64               `json:"sampled"`
	Degraded     bool                 `json:"degraded"`
	Poisoned     bool                 `json:"poisoned"`
	PoisonReason string               `json:"poison_reason,omitempty"`
	Flushed      bool                 `json:"flushed"`
	FlushError   string               `json:"flush_error,omitempty"`
	Agg          aggregate            `json:"agg"`
	Recent       []audit.WindowReport `json:"recent,omitempty"`
	Auditor      *audit.AuditorState  `json:"auditor"`
}

// serviceState is the full checkpoint payload. TSDB and Engine are
// optional (alerting may be off); checkpoints written before the flight
// recorder existed simply lack them and restore as cold alerting state.
type serviceState struct {
	Kind    string           `json:"kind"`
	Version int              `json:"version"`
	Tenants []tenantState    `json:"tenants"`
	TSDB    *obs.TSDBState   `json:"tsdb,omitempty"`
	Engine  *obs.EngineState `json:"engine,omitempty"`
}

// snapshot captures all tenant state. Tenants are locked one at a time:
// per-tenant consistency is the recovery invariant (nextSeq must match the
// auditor position), cross-tenant simultaneity is not required because
// tenants never interact.
func (s *Service) snapshot() *serviceState {
	st := &serviceState{
		Kind: serviceStateKind, Version: serviceStateVersion,
		TSDB: s.tsdb.SaveState(), Engine: s.engine.SaveState(),
	}
	for _, t := range s.sortedTenants() {
		t.mu.Lock()
		st.Tenants = append(st.Tenants, tenantState{
			Name:         t.name,
			NextSeq:      t.nextSeq,
			Kept:         t.kept,
			Sampled:      t.sampled,
			Degraded:     t.degraded,
			Poisoned:     t.poisoned,
			PoisonReason: t.poisonReason,
			Flushed:      t.flushed,
			FlushError:   t.flushError,
			Agg:          t.agg,
			Recent:       append([]audit.WindowReport(nil), t.recent...),
			Auditor:      t.aud.SaveState(),
		})
		t.mu.Unlock()
	}
	return st
}

// Checkpoint persists all tenant state through the internal/ckpt framing
// (checksummed, atomically renamed): a kill at any instant leaves either
// the previous checkpoint or this one, never a torn file.
func (s *Service) Checkpoint() error {
	if s.cfg.CheckpointPath == "" {
		return nil
	}
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()
	payload, err := json.Marshal(s.snapshot())
	if err != nil {
		return fmt.Errorf("auditd: encode checkpoint: %w", err)
	}
	if err := ckptSave(s.cfg.CheckpointPath, payload); err != nil {
		return err
	}
	s.ctr.checkpoints.Add(1)
	return nil
}

// Checkpoints returns how many checkpoints have been persisted.
func (s *Service) Checkpoints() uint64 { return s.ctr.checkpoints.Load() }

// restore loads the checkpoint at cfg.CheckpointPath if one exists.
func (s *Service) restore() error {
	payload, err := ckptLoad(s.cfg.CheckpointPath)
	if err != nil {
		if isNotExist(err) {
			return nil // fresh start
		}
		return err
	}
	var st serviceState
	if err := strictUnmarshal(payload, &st); err != nil {
		return fmt.Errorf("auditd: corrupt checkpoint payload: %w", err)
	}
	if st.Kind != serviceStateKind {
		return fmt.Errorf("auditd: checkpoint kind %q, want %q", st.Kind, serviceStateKind)
	}
	if st.Version != serviceStateVersion {
		return fmt.Errorf("auditd: checkpoint version %d, this build reads %d", st.Version, serviceStateVersion)
	}
	if st.TSDB != nil && s.tsdb != nil {
		if err := s.tsdb.RestoreState(st.TSDB); err != nil {
			return fmt.Errorf("auditd: restore tsdb: %w", err)
		}
	}
	if st.Engine != nil && s.engine != nil {
		if err := s.engine.RestoreState(st.Engine); err != nil {
			return fmt.Errorf("auditd: restore alert engine: %w", err)
		}
	}
	for i, ts := range st.Tenants {
		aud, err := audit.RestoreAuditor(ts.Auditor)
		if err != nil {
			return fmt.Errorf("auditd: restore tenant %q: %w", ts.Name, err)
		}
		t := &tenant{
			name: ts.Name, slot: i + 1,
			nextSeq: ts.NextSeq, kept: ts.Kept, sampled: ts.Sampled, degraded: ts.Degraded,
			poisoned: ts.Poisoned, poisonReason: ts.PoisonReason,
			flushed: ts.Flushed, flushError: ts.FlushError,
			aud: aud, agg: ts.Agg,
			recent: append([]audit.WindowReport(nil), ts.Recent...),
		}
		s.tenants[ts.Name] = t
	}
	return nil
}
