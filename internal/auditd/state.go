package auditd

import (
	"bytes"
	"encoding/json"
	"errors"
	"io/fs"

	"dagguise/internal/ckpt"
)

// The checkpoint file layout is internal/ckpt's generic frame (magic,
// version, length, SHA-256) around the JSON serviceState payload: every
// corruption mode the frame detects — truncation, bit rot, wrong file —
// surfaces as a typed error at restore instead of silently wrong verdicts.

func ckptSave(path string, payload []byte) error {
	return ckpt.SaveFrame(path, payload)
}

func ckptLoad(path string) ([]byte, error) {
	return ckpt.LoadFrame(path)
}

func isNotExist(err error) bool {
	return errors.Is(err, fs.ErrNotExist)
}

// strictUnmarshal decodes JSON rejecting unknown fields, so a checkpoint
// written by a newer schema fails loudly instead of dropping state.
func strictUnmarshal(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	return nil
}
