// Package sym implements a hash-consed boolean circuit builder in the
// style of an and-inverter graph (AIG): every expression reduces to AND
// nodes and complemented edges, with structural hashing and constant
// folding. Circuits are evaluated concretely (for simulation-based
// testing) or converted to CNF via the Tseitin transformation and handed
// to the CDCL solver in internal/sat. Together they replace the
// Rosette/SMT stack the paper used for its security verification (§5).
package sym

import "fmt"

// Expr is a reference to a circuit node with a complement bit in bit 0.
// Expr 0 is the constant false, Expr 1 the constant true.
type Expr uint32

// False and True are the constant expressions.
const (
	False Expr = 0
	True  Expr = 1
)

func (e Expr) node() uint32     { return uint32(e) >> 1 }
func (e Expr) complement() bool { return e&1 == 1 }

// Not complements an expression (free in an AIG).
func (e Expr) Not() Expr { return e ^ 1 }

type nodeKind uint8

const (
	kindConst nodeKind = iota
	kindVar
	kindAnd
)

type node struct {
	kind nodeKind
	a, b Expr // children for AND nodes
	v    int  // variable index for var nodes
}

// Builder owns a circuit arena.
type Builder struct {
	nodes []node
	cache map[[2]Expr]Expr
	nvars int
}

// NewBuilder creates an empty circuit.
func NewBuilder() *Builder {
	b := &Builder{cache: make(map[[2]Expr]Expr)}
	b.nodes = append(b.nodes, node{kind: kindConst}) // node 0 = false
	return b
}

// NumVars returns the number of variables created so far.
func (b *Builder) NumVars() int { return b.nvars }

// NumNodes returns the arena size (a complexity measure).
func (b *Builder) NumNodes() int { return len(b.nodes) }

// Var creates a fresh boolean variable.
func (b *Builder) Var() Expr {
	b.nvars++
	b.nodes = append(b.nodes, node{kind: kindVar, v: b.nvars})
	return Expr(uint32(len(b.nodes)-1) << 1)
}

// Const returns the constant expression for v.
func (b *Builder) Const(v bool) Expr {
	if v {
		return True
	}
	return False
}

// And builds the conjunction with folding and structural hashing.
func (b *Builder) And(x, y Expr) Expr {
	// Constant folding and trivial cases.
	switch {
	case x == False || y == False:
		return False
	case x == True:
		return y
	case y == True:
		return x
	case x == y:
		return x
	case x == y.Not():
		return False
	}
	// Canonical order for hashing.
	if x > y {
		x, y = y, x
	}
	key := [2]Expr{x, y}
	if e, ok := b.cache[key]; ok {
		return e
	}
	b.nodes = append(b.nodes, node{kind: kindAnd, a: x, b: y})
	e := Expr(uint32(len(b.nodes)-1) << 1)
	b.cache[key] = e
	return e
}

// Or builds the disjunction.
func (b *Builder) Or(x, y Expr) Expr {
	return b.And(x.Not(), y.Not()).Not()
}

// Xor builds exclusive or.
func (b *Builder) Xor(x, y Expr) Expr {
	return b.Or(b.And(x, y.Not()), b.And(x.Not(), y))
}

// Eq builds x == y (XNOR).
func (b *Builder) Eq(x, y Expr) Expr { return b.Xor(x, y).Not() }

// Implies builds x -> y.
func (b *Builder) Implies(x, y Expr) Expr { return b.Or(x.Not(), y) }

// Ite builds if-then-else: c ? t : e.
func (b *Builder) Ite(c, t, e Expr) Expr {
	return b.Or(b.And(c, t), b.And(c.Not(), e))
}

// AndAll folds And over the list (True for empty).
func (b *Builder) AndAll(xs ...Expr) Expr {
	acc := True
	for _, x := range xs {
		acc = b.And(acc, x)
	}
	return acc
}

// OrAll folds Or over the list (False for empty).
func (b *Builder) OrAll(xs ...Expr) Expr {
	acc := False
	for _, x := range xs {
		acc = b.Or(acc, x)
	}
	return acc
}

// Eval computes the concrete value of e under the assignment (indexed by
// variable number, as returned in order of Var creation: variable i is
// assignment[i-1]).
func (b *Builder) Eval(e Expr, assignment []bool) bool {
	memo := make(map[uint32]bool)
	var rec func(Expr) bool
	rec = func(x Expr) bool {
		n := x.node()
		val, ok := memo[n]
		if !ok {
			nd := &b.nodes[n]
			switch nd.kind {
			case kindConst:
				val = false
			case kindVar:
				if nd.v-1 >= len(assignment) {
					panic(fmt.Sprintf("sym: assignment too short for var %d", nd.v))
				}
				val = assignment[nd.v-1]
			case kindAnd:
				val = rec(nd.a) && rec(nd.b)
			}
			memo[n] = val
		}
		if x.complement() {
			return !val
		}
		return val
	}
	return rec(e)
}

// CNFResult is the output of the Tseitin transformation.
type CNFResult struct {
	// Clauses in DIMACS convention: positive/negative non-zero ints.
	Clauses [][]int
	// NumVars is the total SAT variable count.
	NumVars int
	// Lit maps an Expr (previously passed to Lit) to its literal.
	lits    map[Expr]int
	nodeVar map[uint32]int
}

// CNF converts the circuit reachable from the roots into CNF. Each root's
// literal can be retrieved with Lit; callers typically assert a root by
// adding a unit clause of its literal.
func (b *Builder) CNF(roots ...Expr) *CNFResult {
	res := &CNFResult{lits: make(map[Expr]int), nodeVar: make(map[uint32]int)}
	nodeVar := res.nodeVar
	// Node 0 (constant false) gets a dedicated variable forced false.
	next := 0
	newVar := func() int { next++; return next }

	var visit func(Expr) int // returns the SAT literal for the expr
	visit = func(e Expr) int {
		n := e.node()
		v, ok := nodeVar[n]
		if !ok {
			nd := &b.nodes[n]
			switch nd.kind {
			case kindConst:
				v = newVar()
				res.Clauses = append(res.Clauses, []int{-v}) // false
			case kindVar:
				v = newVar()
			case kindAnd:
				la := visit(nd.a)
				lb := visit(nd.b)
				v = newVar()
				// v <-> la & lb
				res.Clauses = append(res.Clauses,
					[]int{-v, la},
					[]int{-v, lb},
					[]int{-la, -lb, v})
			}
			nodeVar[n] = v
		}
		if e.complement() {
			return -v
		}
		return v
	}
	for _, r := range roots {
		res.lits[r] = visit(r)
	}
	res.NumVars = next
	return res
}

// Lit returns the DIMACS literal of a root passed to CNF.
func (r *CNFResult) Lit(e Expr) int {
	l, ok := r.lits[e]
	if !ok {
		panic("sym: expression was not a CNF root")
	}
	return l
}

// LitOf returns the literal of any expression whose node appeared in the
// CNF cone (e.g. an input variable), for counterexample extraction.
func (r *CNFResult) LitOf(e Expr) (int, bool) {
	v, ok := r.nodeVar[e.node()]
	if !ok {
		return 0, false
	}
	if e.complement() {
		return -v, true
	}
	return v, true
}
