package sym

import "fmt"

// Vec is a little-endian bit vector (Vec[0] is the least significant bit).
type Vec []Expr

// VecVar creates a vector of fresh variables.
func (b *Builder) VecVar(width int) Vec {
	v := make(Vec, width)
	for i := range v {
		v[i] = b.Var()
	}
	return v
}

// VecConst builds a constant vector of the given width.
func (b *Builder) VecConst(width int, value uint64) Vec {
	v := make(Vec, width)
	for i := range v {
		v[i] = b.Const(value>>uint(i)&1 == 1)
	}
	return v
}

// VecEq builds equality of two vectors (must be the same width).
func (b *Builder) VecEq(x, y Vec) Expr {
	if len(x) != len(y) {
		panic(fmt.Sprintf("sym: vector width mismatch %d vs %d", len(x), len(y)))
	}
	acc := True
	for i := range x {
		acc = b.And(acc, b.Eq(x[i], y[i]))
	}
	return acc
}

// VecIte selects between two vectors bitwise.
func (b *Builder) VecIte(c Expr, t, e Vec) Vec {
	if len(t) != len(e) {
		panic(fmt.Sprintf("sym: vector width mismatch %d vs %d", len(t), len(e)))
	}
	out := make(Vec, len(t))
	for i := range t {
		out[i] = b.Ite(c, t[i], e[i])
	}
	return out
}

// VecIsZero tests whether all bits are clear.
func (b *Builder) VecIsZero(x Vec) Expr {
	return b.OrAll(x...).Not()
}

// VecDec builds x-1 with saturation at zero: if x is zero the result is
// zero. Used for countdown timers.
func (b *Builder) VecDec(x Vec) Vec {
	out := make(Vec, len(x))
	borrow := True // subtracting 1: initial borrow in
	for i := range x {
		out[i] = b.Xor(x[i], borrow)
		borrow = b.And(borrow, x[i].Not())
	}
	// Saturate: if x was zero, keep zero.
	zero := b.VecIsZero(x)
	return b.VecIte(zero, b.VecConst(len(x), 0), out)
}

// VecInc builds x+1 with wraparound.
func (b *Builder) VecInc(x Vec) Vec {
	out := make(Vec, len(x))
	carry := True
	for i := range x {
		out[i] = b.Xor(x[i], carry)
		carry = b.And(carry, x[i])
	}
	return out
}

// VecEqConst compares a vector to a constant.
func (b *Builder) VecEqConst(x Vec, value uint64) Expr {
	return b.VecEq(x, b.VecConst(len(x), value))
}

// VecLeConst builds x <= value (unsigned).
func (b *Builder) VecLeConst(x Vec, value uint64) Expr {
	// x <= c  <=>  NOT (x > c); compare from MSB down.
	gt := False
	eq := True
	for i := len(x) - 1; i >= 0; i-- {
		cBit := b.Const(value>>uint(i)&1 == 1)
		gt = b.Or(gt, b.AndAll(eq, x[i], cBit.Not()))
		eq = b.And(eq, b.Eq(x[i], cBit))
	}
	return gt.Not()
}

// VecEval evaluates a vector to a concrete integer under an assignment.
func (b *Builder) VecEval(x Vec, assignment []bool) uint64 {
	var out uint64
	for i := range x {
		if b.Eval(x[i], assignment) {
			out |= 1 << uint(i)
		}
	}
	return out
}
