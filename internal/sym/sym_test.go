package sym

import (
	"math/rand"
	"testing"

	"dagguise/internal/sat"
)

func TestConstantsAndNot(t *testing.T) {
	b := NewBuilder()
	if True.Not() != False || False.Not() != True {
		t.Fatal("constant complement broken")
	}
	x := b.Var()
	if x.Not().Not() != x {
		t.Fatal("double negation not identity")
	}
}

func TestAndFolding(t *testing.T) {
	b := NewBuilder()
	x := b.Var()
	if b.And(x, False) != False || b.And(False, x) != False {
		t.Fatal("and-false")
	}
	if b.And(x, True) != x || b.And(True, x) != x {
		t.Fatal("and-true")
	}
	if b.And(x, x) != x {
		t.Fatal("idempotence")
	}
	if b.And(x, x.Not()) != False {
		t.Fatal("contradiction")
	}
}

func TestHashConsing(t *testing.T) {
	b := NewBuilder()
	x, y := b.Var(), b.Var()
	a1 := b.And(x, y)
	a2 := b.And(y, x)
	if a1 != a2 {
		t.Fatal("commutative pair not hash-consed")
	}
	n := b.NumNodes()
	b.And(x, y)
	if b.NumNodes() != n {
		t.Fatal("duplicate AND allocated a node")
	}
}

func TestEvalTruthTables(t *testing.T) {
	b := NewBuilder()
	x, y, z := b.Var(), b.Var(), b.Var()
	cases := []struct {
		name string
		e    Expr
		fn   func(a, bb, c bool) bool
	}{
		{"and", b.And(x, y), func(a, bb, _ bool) bool { return a && bb }},
		{"or", b.Or(x, y), func(a, bb, _ bool) bool { return a || bb }},
		{"xor", b.Xor(x, y), func(a, bb, _ bool) bool { return a != bb }},
		{"eq", b.Eq(x, y), func(a, bb, _ bool) bool { return a == bb }},
		{"implies", b.Implies(x, y), func(a, bb, _ bool) bool { return !a || bb }},
		{"ite", b.Ite(x, y, z), func(a, bb, c bool) bool {
			if a {
				return bb
			}
			return c
		}},
	}
	for _, tc := range cases {
		for m := 0; m < 8; m++ {
			assign := []bool{m&1 == 1, m&2 == 2, m&4 == 4}
			want := tc.fn(assign[0], assign[1], assign[2])
			if got := b.Eval(tc.e, assign); got != want {
				t.Fatalf("%s(%v) = %v, want %v", tc.name, assign, got, want)
			}
		}
	}
}

func TestVecOps(t *testing.T) {
	b := NewBuilder()
	for _, v := range []uint64{0, 1, 5, 7} {
		x := b.VecConst(3, v)
		// Increment.
		inc := b.VecInc(x)
		if got := b.VecEval(inc, nil); got != (v+1)&7 {
			t.Fatalf("inc(%d) = %d", v, got)
		}
		// Saturating decrement.
		dec := b.VecDec(x)
		want := uint64(0)
		if v > 0 {
			want = v - 1
		}
		if got := b.VecEval(dec, nil); got != want {
			t.Fatalf("dec(%d) = %d, want %d", v, got, want)
		}
		// Zero test.
		if b.Eval(b.VecIsZero(x), nil) != (v == 0) {
			t.Fatalf("iszero(%d) wrong", v)
		}
		// Comparisons.
		for c := uint64(0); c < 8; c++ {
			if b.Eval(b.VecEqConst(x, c), nil) != (v == c) {
				t.Fatalf("eqconst(%d,%d)", v, c)
			}
			if b.Eval(b.VecLeConst(x, c), nil) != (v <= c) {
				t.Fatalf("leconst(%d,%d)", v, c)
			}
		}
	}
}

func TestVecIteAndEq(t *testing.T) {
	b := NewBuilder()
	x := b.VecConst(4, 9)
	y := b.VecConst(4, 4)
	if b.VecEval(b.VecIte(True, x, y), nil) != 9 {
		t.Fatal("ite true")
	}
	if b.VecEval(b.VecIte(False, x, y), nil) != 4 {
		t.Fatal("ite false")
	}
	if b.Eval(b.VecEq(x, x), nil) != true || b.Eval(b.VecEq(x, y), nil) != false {
		t.Fatal("vec eq")
	}
}

func TestVecWidthMismatchPanics(t *testing.T) {
	b := NewBuilder()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	b.VecEq(b.VecConst(2, 0), b.VecConst(3, 0))
}

// TestCNFAgainstEval cross-checks Tseitin+SAT against direct evaluation on
// random circuits: the circuit is satisfiable iff some assignment
// evaluates to true, and SAT models must evaluate to true.
func TestCNFAgainstEval(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for iter := 0; iter < 200; iter++ {
		b := NewBuilder()
		const nv = 6
		vars := make([]Expr, nv)
		for i := range vars {
			vars[i] = b.Var()
		}
		// Build a random expression tree.
		pool := append([]Expr{}, vars...)
		for i := 0; i < 12; i++ {
			x := pool[rng.Intn(len(pool))]
			y := pool[rng.Intn(len(pool))]
			var e Expr
			switch rng.Intn(4) {
			case 0:
				e = b.And(x, y)
			case 1:
				e = b.Or(x, y)
			case 2:
				e = b.Xor(x, y)
			default:
				e = x.Not()
			}
			pool = append(pool, e)
		}
		root := pool[len(pool)-1]

		// Brute-force satisfiability by evaluation.
		want := false
		for m := 0; m < 1<<nv; m++ {
			assign := make([]bool, nv)
			for i := range assign {
				assign[i] = m>>uint(i)&1 == 1
			}
			if b.Eval(root, assign) {
				want = true
				break
			}
		}

		cnf := b.CNF(root)
		s := sat.New()
		s.EnsureVars(cnf.NumVars)
		ok := true
		for _, cl := range cnf.Clauses {
			if !s.AddClause(cl...) {
				ok = false
			}
		}
		var got bool
		if ok {
			got = s.Solve(cnf.Lit(root)) == sat.Sat
		}
		if got != want {
			t.Fatalf("iter %d: sat=%v eval=%v", iter, got, want)
		}
		if got {
			// The model must evaluate the root to true.
			assign := make([]bool, nv)
			for i, v := range vars {
				if l, found := cnf.LitOf(v); found {
					assign[i] = s.Value(abs(l))
					if l < 0 {
						assign[i] = !assign[i]
					}
				}
			}
			if !b.Eval(root, assign) {
				t.Fatalf("iter %d: SAT model does not satisfy circuit", iter)
			}
		}
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func TestCNFLitPanicsOnNonRoot(t *testing.T) {
	b := NewBuilder()
	x := b.Var()
	cnf := b.CNF(x)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	cnf.Lit(b.Var())
}
