package verify

import (
	"fmt"

	"dagguise/internal/sym"
)

// Replay runs a base-step counterexample on the concrete model (by
// building the circuit with constant inputs and evaluating it) and checks
// that the two transmitter traces really do produce different receiver
// observations. It returns the cycle at which the observations first
// differ, or an error if the counterexample does not reproduce — which
// would indicate a bug in the CNF encoding or the solver.
//
// Replay closes the verification loop: UNSAT results are trusted because
// SAT results are independently validated against the executable model.
func (v *Verifier) Replay(cex *Counterexample) (int, error) {
	if cex == nil {
		return 0, fmt.Errorf("verify: nil counterexample")
	}
	if cex.Induction {
		return 0, fmt.Errorf("verify: only base-step counterexamples replay from reset")
	}
	b := sym.NewBuilder()
	m, err := NewModel(v.cfg, b)
	if err != nil {
		return 0, err
	}
	s1 := m.ResetState()
	s2 := m.ResetState()
	firstDiff := -1
	for i, step := range cex.Steps {
		in1 := Input{
			TxValid: b.Const(step.TxValid), TxBank: b.Const(step.TxBank),
			RxValid: b.Const(step.RxValid), RxBank: b.Const(step.RxBank),
		}
		in2 := Input{
			TxValid: b.Const(step.Tx2Valid), TxBank: b.Const(step.Tx2Bank),
			RxValid: b.Const(step.RxValid), RxBank: b.Const(step.RxBank),
		}
		var o1, o2 Output
		s1, o1 = m.Step(s1, in1)
		s2, o2 = m.Step(s2, in2)
		// All-constant circuit: evaluate without an assignment.
		v1 := b.Eval(o1.RespValid, nil)
		v2 := b.Eval(o2.RespValid, nil)
		b1 := b.Eval(o1.RespBank, nil)
		b2 := b.Eval(o2.RespBank, nil)
		if v1 != v2 || (v1 && b1 != b2) {
			firstDiff = i
			break
		}
	}
	if firstDiff < 0 {
		return 0, fmt.Errorf("verify: counterexample did not reproduce on the concrete model")
	}
	return firstDiff, nil
}
