package verify

import (
	"fmt"

	"dagguise/internal/sat"
	"dagguise/internal/sym"
)

// TraceStep is one decoded cycle of a counterexample.
type TraceStep struct {
	TxValid, TxBank   bool // transmitter request, run 1
	Tx2Valid, Tx2Bank bool // transmitter request, run 2
	RxValid, RxBank   bool // shared receiver request
}

// Counterexample describes a violation of the indistinguishability
// property found by the solver.
type Counterexample struct {
	// K is the unrolling depth checked.
	K int
	// Induction is true when the violation came from the induction step
	// (a possibly-unreachable start state), false for the base step.
	Induction bool
	// Steps is the decoded input trace.
	Steps []TraceStep
}

// String renders the counterexample compactly.
func (c *Counterexample) String() string {
	kind := "base"
	if c.Induction {
		kind = "induction"
	}
	s := fmt.Sprintf("counterexample (%s step, k=%d):\n", kind, c.K)
	for i, st := range c.Steps {
		s += fmt.Sprintf("  cycle %d: ReqTx=%v/%v ReqTx'=%v/%v ReqRx=%v/%v\n",
			i, st.TxValid, st.TxBank, st.Tx2Valid, st.Tx2Bank, st.RxValid, st.RxBank)
	}
	return s
}

// Report is the outcome of a verification run.
type Report struct {
	K              int
	BaseHolds      bool
	InductionHolds bool
	// DeterminismHolds records the side condition that justifies the
	// induction strengthening (see CheckPublicDeterminism).
	DeterminismHolds bool
	// Cex is non-nil when a step failed.
	Cex *Counterexample
	// Vars and Clauses record the size of the largest SAT instance.
	Vars, Clauses int
}

// Holds reports whether the property was proven at this K.
func (r Report) Holds() bool { return r.BaseHolds && r.InductionHolds && r.DeterminismHolds }

// Verifier drives k-induction over the model.
type Verifier struct {
	cfg ModelConfig
}

// NewVerifier builds a verifier for the configuration.
func NewVerifier(cfg ModelConfig) (*Verifier, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Verifier{cfg: cfg}, nil
}

// unrolled holds the symbolic artefacts of a two-run unrolling.
type unrolled struct {
	b       *sym.Builder
	m       *Model
	inputs1 []Input // per-cycle ReqTx of run 1
	inputs2 []Input // per-cycle ReqTx of run 2 (shares Rx with run 1)
	outEq   []sym.Expr
}

// unroll simulates both runs for k cycles from the given start states,
// sharing the receiver's inputs, and collects per-cycle output equality.
func (v *Verifier) unroll(b *sym.Builder, m *Model, s1, s2 State, k int) unrolled {
	u := unrolled{b: b, m: m}
	for i := 0; i < k; i++ {
		in1 := m.FreeInput()
		in2 := m.FreeInput()
		// The two runs share the receiver's request trace.
		in2.RxValid = in1.RxValid
		in2.RxBank = in1.RxBank
		var o1, o2 Output
		s1, o1 = m.Step(s1, in1)
		s2, o2 = m.Step(s2, in2)
		u.inputs1 = append(u.inputs1, in1)
		u.inputs2 = append(u.inputs2, in2)
		u.outEq = append(u.outEq, m.OutputsEqual(o1, o2))
	}
	return u
}

// solve asserts the formula and extracts a counterexample on SAT.
func (v *Verifier) solve(u unrolled, violation sym.Expr, k int, induction bool) (bool, *Counterexample, int, int) {
	cnf := u.b.CNF(violation)
	solver := sat.New()
	solver.EnsureVars(cnf.NumVars)
	ok := true
	for _, cl := range cnf.Clauses {
		if !solver.AddClause(cl...) {
			ok = false
			break
		}
	}
	if !ok {
		return true, nil, solver.NumVars(), len(cnf.Clauses)
	}
	if solver.Solve(cnf.Lit(violation)) == sat.Unsat {
		return true, nil, solver.NumVars(), len(cnf.Clauses)
	}
	cex := &Counterexample{K: k, Induction: induction}
	readBit := func(e sym.Expr) bool {
		if l, found := cnf.LitOf(e); found {
			val := solver.Value(abs(l))
			if l < 0 {
				val = !val
			}
			return val
		}
		return false
	}
	for i := range u.inputs1 {
		cex.Steps = append(cex.Steps, TraceStep{
			TxValid:  readBit(u.inputs1[i].TxValid),
			TxBank:   readBit(u.inputs1[i].TxBank),
			Tx2Valid: readBit(u.inputs2[i].TxValid),
			Tx2Bank:  readBit(u.inputs2[i].TxBank),
			RxValid:  readBit(u.inputs1[i].RxValid),
			RxBank:   readBit(u.inputs1[i].RxBank),
		})
	}
	return false, cex, solver.NumVars(), len(cnf.Clauses)
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// CheckBase performs bounded model checking of P(reset, k): from reset, no
// pair of transmitter traces makes the receiver's responses differ within
// k cycles.
func (v *Verifier) CheckBase(k int) (bool, *Counterexample, error) {
	b := sym.NewBuilder()
	m, err := NewModel(v.cfg, b)
	if err != nil {
		return false, nil, err
	}
	u := v.unroll(b, m, m.ResetState(), m.ResetState(), k)
	// Violation: some cycle's outputs differ.
	violation := sym.False
	for _, eq := range u.outEq {
		violation = b.Or(violation, eq.Not())
	}
	holds, cex, _, _ := v.solve(u, violation, k, false)
	return holds, cex, nil
}

// pairedStates builds the induction start states: a fully symbolic state
// S and a second state S' sharing all of S's public components, with only
// the transmitter-private pending counters free. This strengthening is
// required for induction to close, and it is itself discharged by
// CheckPublicDeterminism: the public state is a deterministic function of
// the public history (defense rDAG schedule + shared receiver trace), so
// any two runs of the real property — which start from the same reset
// state and share ReqRx — always agree on it. Without the strengthening,
// plain two-state k-induction can never close for this system: a shaper
// phase difference between unconstrained states stays silent for as long
// as the receiver refrains from probing.
func (v *Verifier) pairedStates(m *Model) (State, State) {
	s1 := m.FreeState()
	s2 := s1
	s2.Pending = nil
	for i := 0; i < m.cfg.Banks; i++ {
		s2.Pending = append(s2.Pending, m.b.VecVar(m.pendBits))
	}
	return s1, s2
}

// CheckInduction performs the induction step: from any well-formed pair of
// states agreeing on the public components (see pairedStates) whose
// outputs agree for k cycles, the outputs also agree at cycle k+1.
func (v *Verifier) CheckInduction(k int) (bool, *Counterexample, error) {
	b := sym.NewBuilder()
	m, err := NewModel(v.cfg, b)
	if err != nil {
		return false, nil, err
	}
	s1, s2 := v.pairedStates(m)
	u := v.unroll(b, m, s1, s2, k+1)
	assume := b.And(m.WellFormed(s1), m.WellFormed(s2))
	for _, eq := range u.outEq[:k] {
		assume = b.And(assume, eq)
	}
	violation := b.And(assume, u.outEq[k].Not())
	holds, cex, _, _ := v.solve(u, violation, k, true)
	return holds, cex, nil
}

// publicEqual builds equality of the public (receiver-influencing) state
// components of two states — everything except the private pending
// counters.
func (m *Model) publicEqual(a, b State) sym.Expr {
	bd := m.b
	eq := bd.AndAll(
		bd.Eq(a.Step, b.Step),
		bd.Eq(a.Busy, b.Busy),
		bd.VecEq(a.Remaining, b.Remaining),
		bd.Eq(a.ServDom, b.ServDom),
		bd.Eq(a.ServBank, b.ServBank),
		bd.Eq(a.ServSeq, b.ServSeq),
	)
	for q := range a.Waiting {
		eq = bd.AndAll(eq,
			bd.Eq(a.Waiting[q], b.Waiting[q]),
			bd.VecEq(a.Countdown[q], b.Countdown[q]))
	}
	for i := range a.QValid {
		eq = bd.AndAll(eq,
			bd.Eq(a.QValid[i], b.QValid[i]),
			bd.Eq(a.QDom[i], b.QDom[i]),
			bd.Eq(a.QBank[i], b.QBank[i]),
			bd.Eq(a.QSeq[i], b.QSeq[i]))
	}
	return eq
}

// CheckPublicDeterminism discharges the strengthening used by
// CheckInduction: if two well-formed states agree on the public
// components, then after one step with arbitrary (different) transmitter
// inputs and a shared receiver input, the public components still agree —
// and the receiver outputs are equal. Together with the base case (both
// runs of the property start from the same reset state) this proves the
// public state stays shared along the entire real execution.
func (v *Verifier) CheckPublicDeterminism() (bool, *Counterexample, error) {
	b := sym.NewBuilder()
	m, err := NewModel(v.cfg, b)
	if err != nil {
		return false, nil, err
	}
	s1, s2 := v.pairedStates(m)
	in1 := m.FreeInput()
	in2 := m.FreeInput()
	in2.RxValid = in1.RxValid
	in2.RxBank = in1.RxBank
	n1, o1 := m.Step(s1, in1)
	n2, o2 := m.Step(s2, in2)
	assume := b.And(m.WellFormed(s1), m.WellFormed(s2))
	preserved := b.And(m.publicEqual(n1, n2), m.OutputsEqual(o1, o2))
	violation := b.And(assume, preserved.Not())
	u := unrolled{b: b, m: m, inputs1: []Input{in1}, inputs2: []Input{in2}}
	holds, cex, _, _ := v.solve(u, violation, 1, true)
	return holds, cex, nil
}

// DetectionDepth returns the smallest base-step depth at which the
// verifier produces a counterexample for a (leaky) configuration, or an
// error if none is found up to maxK. This is the "cycles for a request to
// traverse the system" quantity the paper relates its minimal K to.
func (v *Verifier) DetectionDepth(maxK int) (int, *Counterexample, error) {
	for k := 1; k <= maxK; k++ {
		ok, cex, err := v.CheckBase(k)
		if err != nil {
			return 0, nil, err
		}
		if !ok {
			return k, cex, nil
		}
	}
	return 0, nil, fmt.Errorf("verify: no counterexample up to k=%d", maxK)
}

// Verify runs the base step, the induction step and the public-state
// determinism side condition at depth k.
func (v *Verifier) Verify(k int) (Report, error) {
	rep := Report{K: k}
	var err error
	var cex *Counterexample
	rep.BaseHolds, cex, err = v.CheckBase(k)
	if err != nil {
		return rep, err
	}
	if !rep.BaseHolds {
		rep.Cex = cex
		return rep, nil
	}
	rep.InductionHolds, cex, err = v.CheckInduction(k)
	if err != nil {
		return rep, err
	}
	if !rep.InductionHolds {
		rep.Cex = cex
		return rep, nil
	}
	rep.DeterminismHolds, cex, err = v.CheckPublicDeterminism()
	if err != nil {
		return rep, err
	}
	if !rep.DeterminismHolds {
		rep.Cex = cex
	}
	return rep, nil
}

// MinimalK searches for the smallest k at which both steps hold, following
// the paper's methodology of incrementing k until the induction step
// succeeds. It returns an error if no k up to maxK works.
func (v *Verifier) MinimalK(maxK int) (int, error) {
	for k := 1; k <= maxK; k++ {
		rep, err := v.Verify(k)
		if err != nil {
			return 0, err
		}
		if !rep.BaseHolds {
			return 0, fmt.Errorf("verify: base step failed at k=%d — the property itself is false:\n%s", k, rep.Cex)
		}
		if rep.InductionHolds {
			return k, nil
		}
	}
	return 0, fmt.Errorf("verify: induction did not close by k=%d", maxK)
}
