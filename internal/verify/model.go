// Package verify implements the paper's formal security verification (§5)
// on top of our own circuit builder and CDCL SAT solver: a bit-level model
// of the simplified DAGguise system — a request shaper executing a strict
// chain defense rDAG in front of an FCFS memory controller with constant
// service latency — and a k-induction proof that the receiver's response
// trace is independent of the transmitter's request trace.
package verify

import (
	"fmt"

	"dagguise/internal/sym"
)

// ModelConfig parameterises the verified system, mirroring the Rosette
// artifact's configuration.
type ModelConfig struct {
	// Banks is 1 or 2; with 2 banks the defense rDAG alternates banks and
	// responses carry a bank bit.
	Banks int
	// Sequences is 1 (a single strictly-dependent chain, the paper's
	// verified configuration) or 2 (two parallel chains — the template
	// structure of Figure 6, extending the verified rDAG family). With 2
	// sequences and 2 banks, sequence i is pinned to bank i.
	Sequences int
	// Weight is the defense rDAG edge weight in cycles.
	Weight int
	// MemLatency is the constant FCFS service latency in cycles.
	MemLatency int
	// QueueDepth is the controller transaction queue depth.
	QueueDepth int
	// PendingMax saturates the shaper's private pending counters.
	PendingMax int
	// Leaky deliberately breaks the shaper (it emits immediately when a
	// real request is pending, ignoring the rDAG schedule) so tests can
	// confirm the checker finds counterexamples.
	Leaky bool
	// LeakyBank is a second bug class: the shaper keeps the rDAG's
	// timing but emits to the bank of a pending real request instead of
	// the prescribed bank, leaking the victim's bank pattern.
	LeakyBank bool
}

// DefaultModel returns the configuration used by the bundled proof: two
// banks, a single weight-2 chain, latency 2, a two-entry transaction queue.
func DefaultModel() ModelConfig {
	return ModelConfig{Banks: 2, Sequences: 1, Weight: 2, MemLatency: 2, QueueDepth: 2, PendingMax: 3}
}

// Validate checks the configuration.
func (c ModelConfig) Validate() error {
	if c.Banks != 1 && c.Banks != 2 {
		return fmt.Errorf("verify: banks must be 1 or 2, got %d", c.Banks)
	}
	if c.Sequences < 0 || c.Sequences > 2 {
		return fmt.Errorf("verify: sequences must be 1 or 2, got %d", c.Sequences)
	}
	if c.Sequences == 2 && c.Banks != 2 {
		return fmt.Errorf("verify: two sequences require two banks")
	}
	if c.Weight < 1 || c.MemLatency < 1 || c.QueueDepth < 1 || c.PendingMax < 1 {
		return fmt.Errorf("verify: weight, latency, queue depth and pending max must be positive")
	}
	return nil
}

// sequences returns the effective sequence count (zero-value selects 1).
func (c ModelConfig) sequences() int {
	if c.Sequences == 0 {
		return 1
	}
	return c.Sequences
}

func bitsFor(maxVal int) int {
	bits := 1
	for 1<<uint(bits) <= maxVal {
		bits++
	}
	return bits
}

// State is the symbolic machine state at the start of a cycle.
type State struct {
	// Shaper state, one entry per defense-rDAG sequence.
	Waiting   []sym.Expr // an emitted request is outstanding
	Countdown []sym.Vec  // cycles until the next emission (when not waiting)
	Step      sym.Expr   // bank parity of the next emission (1-seq, 2-bank mode)
	Pending   []sym.Vec  // private-queue occupancy per bank

	// Controller queue (entry 0 is the head): per-entry valid, domain
	// (false = Tx, true = Rx), bank, and the emitting sequence for Tx
	// entries.
	QValid []sym.Expr
	QDom   []sym.Expr
	QBank  []sym.Expr
	QSeq   []sym.Expr

	// Service unit.
	Busy      sym.Expr
	Remaining sym.Vec
	ServDom   sym.Expr
	ServBank  sym.Expr
	ServSeq   sym.Expr
}

// Input is one cycle's request inputs.
type Input struct {
	TxValid, TxBank sym.Expr
	RxValid, RxBank sym.Expr
}

// Output is one cycle's receiver-visible response.
type Output struct {
	RespValid, RespBank sym.Expr
}

// Model builds symbolic transitions over a shared Builder.
type Model struct {
	cfg ModelConfig
	b   *sym.Builder

	cdBits, remBits, pendBits int
}

// NewModel validates the configuration and wraps the builder.
func NewModel(cfg ModelConfig, b *sym.Builder) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Model{
		cfg:      cfg,
		b:        b,
		cdBits:   bitsFor(cfg.Weight),
		remBits:  bitsFor(cfg.MemLatency),
		pendBits: bitsFor(cfg.PendingMax),
	}, nil
}

// Config returns the model configuration.
func (m *Model) Config() ModelConfig { return m.cfg }

// ResetState is the post-reset state: idle shaper due to emit immediately,
// empty queue, idle service unit.
func (m *Model) ResetState() State {
	b := m.b
	s := State{
		Step:      sym.False,
		Busy:      sym.False,
		Remaining: b.VecConst(m.remBits, 0),
		ServDom:   sym.False,
		ServBank:  sym.False,
		ServSeq:   sym.False,
	}
	for q := 0; q < m.cfg.sequences(); q++ {
		s.Waiting = append(s.Waiting, sym.False)
		s.Countdown = append(s.Countdown, b.VecConst(m.cdBits, 0))
	}
	for i := 0; i < m.cfg.Banks; i++ {
		s.Pending = append(s.Pending, b.VecConst(m.pendBits, 0))
	}
	for i := 0; i < m.cfg.QueueDepth; i++ {
		s.QValid = append(s.QValid, sym.False)
		s.QDom = append(s.QDom, sym.False)
		s.QBank = append(s.QBank, sym.False)
		s.QSeq = append(s.QSeq, sym.False)
	}
	return s
}

// FreeState allocates a fully symbolic state (for the induction step).
func (m *Model) FreeState() State {
	b := m.b
	s := State{
		Step:      b.Var(),
		Busy:      b.Var(),
		Remaining: b.VecVar(m.remBits),
		ServDom:   b.Var(),
		ServBank:  b.Var(),
		ServSeq:   b.Var(),
	}
	for q := 0; q < m.cfg.sequences(); q++ {
		s.Waiting = append(s.Waiting, b.Var())
		s.Countdown = append(s.Countdown, b.VecVar(m.cdBits))
	}
	for i := 0; i < m.cfg.Banks; i++ {
		s.Pending = append(s.Pending, b.VecVar(m.pendBits))
	}
	for i := 0; i < m.cfg.QueueDepth; i++ {
		s.QValid = append(s.QValid, b.Var())
		s.QDom = append(s.QDom, b.Var())
		s.QBank = append(s.QBank, b.Var())
		s.QSeq = append(s.QSeq, b.Var())
	}
	return s
}

// FreeInput allocates one cycle's symbolic inputs.
func (m *Model) FreeInput() Input {
	b := m.b
	in := Input{TxValid: b.Var(), RxValid: b.Var(), TxBank: sym.False, RxBank: sym.False}
	if m.cfg.Banks == 2 {
		in.TxBank = b.Var()
		in.RxBank = b.Var()
	}
	return in
}

// WellFormed states the structural invariants any reachable state
// satisfies: counters within range and queue validity contiguous (no
// holes). The induction step assumes it of the arbitrary start states.
func (m *Model) WellFormed(s State) sym.Expr {
	b := m.b
	wf := b.VecLeConst(s.Remaining, uint64(m.cfg.MemLatency))
	// busy <-> remaining >= 1
	wf = b.And(wf, b.Eq(s.Busy, b.VecIsZero(s.Remaining).Not()))
	for i := 0; i < m.cfg.Banks; i++ {
		wf = b.And(wf, b.VecLeConst(s.Pending[i], uint64(m.cfg.PendingMax)))
	}
	for i := 1; i < m.cfg.QueueDepth; i++ {
		wf = b.And(wf, b.Implies(s.QValid[i], s.QValid[i-1]))
	}
	// Per sequence: counters in range, and when the sequence is not
	// waiting for a response, none of its requests is queued or being
	// served (each chain has at most one request in flight).
	for q := 0; q < m.cfg.sequences(); q++ {
		wf = b.And(wf, b.VecLeConst(s.Countdown[q], uint64(m.cfg.Weight)))
		notWaiting := s.Waiting[q].Not()
		seqIsQ := func(e sym.Expr) sym.Expr {
			if m.cfg.sequences() == 1 {
				return sym.True
			}
			if q == 0 {
				return e.Not()
			}
			return e
		}
		txServed := b.AndAll(s.Busy, s.ServDom.Not(), seqIsQ(s.ServSeq))
		wf = b.And(wf, b.Implies(notWaiting, txServed.Not()))
		for i := 0; i < m.cfg.QueueDepth; i++ {
			txQueued := b.AndAll(s.QValid[i], s.QDom[i].Not(), seqIsQ(s.QSeq[i]))
			wf = b.And(wf, b.Implies(notWaiting, txQueued.Not()))
		}
	}
	return wf
}

// pendingSelect returns the pending counter for a symbolic bank bit.
func (m *Model) pendingSelect(pend []sym.Vec, bank sym.Expr) sym.Vec {
	if m.cfg.Banks == 1 {
		return pend[0]
	}
	return m.b.VecIte(bank, pend[1], pend[0])
}

// Step builds one cycle of the system: shaper private-queue update,
// defense-rDAG emissions (one per due sequence, in sequence order),
// controller enqueue (shaper first, then receiver), FCFS service and
// response delivery.
func (m *Model) Step(s State, in Input) (State, Output) {
	b := m.b
	nseq := m.cfg.sequences()
	next := State{}

	// --- 1. Transmitter request enters the private queue (saturating).
	pend := make([]sym.Vec, m.cfg.Banks)
	for i := 0; i < m.cfg.Banks; i++ {
		hit := in.TxValid
		if m.cfg.Banks == 2 {
			bankIsI := in.TxBank
			if i == 0 {
				bankIsI = in.TxBank.Not()
			}
			hit = b.And(in.TxValid, bankIsI)
		}
		atMax := b.VecEqConst(s.Pending[i], uint64(m.cfg.PendingMax))
		pend[i] = b.VecIte(b.And(hit, atMax.Not()), b.VecInc(s.Pending[i]), s.Pending[i])
	}

	// --- 2. Service completion (computed before popping so a freshly
	// popped request is never served in the same cycle).
	remDec := b.VecDec(s.Remaining)
	completing := b.And(s.Busy, b.VecEqConst(s.Remaining, 1))
	respTx := b.And(completing, s.ServDom.Not())
	respRx := b.And(completing, s.ServDom)
	out := Output{RespValid: respRx, RespBank: b.And(respRx, s.ServBank)}

	busyAfter := b.And(s.Busy, completing.Not())
	remAfter := b.VecIte(completing, b.VecConst(m.remBits, 0), remDec)
	remAfter = b.VecIte(s.Busy, remAfter, s.Remaining)

	// --- 3. Per-sequence emission decisions (sequence order fixed).
	anyPending := sym.False
	for i := 0; i < m.cfg.Banks; i++ {
		anyPending = b.Or(anyPending, b.VecIsZero(pend[i]).Not())
	}
	dues := make([]sym.Expr, nseq)
	emitBanks := make([]sym.Expr, nseq)
	for q := 0; q < nseq; q++ {
		cdZero := b.VecIsZero(s.Countdown[q])
		due := b.And(s.Waiting[q].Not(), cdZero)
		if m.cfg.Leaky {
			// Broken shaper: a pending real request is emitted
			// immediately, ignoring the schedule.
			due = b.Or(due, b.And(s.Waiting[q].Not(), anyPending))
		}
		dues[q] = due
		switch {
		case m.cfg.Banks == 1:
			emitBanks[q] = sym.False
		case nseq == 2:
			// Sequence q is pinned to bank q.
			emitBanks[q] = b.Const(q == 1)
		default:
			emitBanks[q] = s.Step
		}
		if m.cfg.LeakyBank && m.cfg.Banks == 2 {
			// Broken shaper: follow the pending request's bank instead
			// of the prescription (bank 0 if it has pending work, else
			// bank 1) — the victim's bank pattern becomes observable.
			pendingBank := b.VecIsZero(pend[0])
			emitBanks[q] = b.Ite(anyPending, pendingBank, emitBanks[q])
		}
		// Consume a matching pending request when one exists; whether
		// the emission is real or fake is invisible downstream.
		emitPend := m.pendingSelect(pend, emitBanks[q])
		isReal := b.And(due, b.VecIsZero(emitPend).Not())
		for i := 0; i < m.cfg.Banks; i++ {
			sel := sym.True
			if m.cfg.Banks == 2 {
				sel = emitBanks[q]
				if i == 0 {
					sel = emitBanks[q].Not()
				}
			}
			dec := b.And(isReal, sel)
			pend[i] = b.VecIte(dec, b.VecDec(pend[i]), pend[i])
		}
	}

	// --- 4. Countdown advance (only while not waiting and not yet due).
	cdAfter := make([]sym.Vec, nseq)
	for q := 0; q < nseq; q++ {
		cdDec := b.VecDec(s.Countdown[q])
		cdAfter[q] = b.VecIte(b.And(s.Waiting[q].Not(), dues[q].Not()), cdDec, s.Countdown[q])
	}

	// --- 5. FCFS pop into the service unit.
	canPop := b.And(busyAfter.Not(), s.QValid[0])
	busyAfter2 := b.Or(busyAfter, canPop)
	remAfter2 := b.VecIte(canPop, b.VecConst(m.remBits, uint64(m.cfg.MemLatency)), remAfter)
	servDom := b.Ite(canPop, s.QDom[0], s.ServDom)
	servBank := b.Ite(canPop, s.QBank[0], s.ServBank)
	servSeq := b.Ite(canPop, s.QSeq[0], s.ServSeq)

	// Shifted queue after the pop.
	qValid := make([]sym.Expr, m.cfg.QueueDepth)
	qDom := make([]sym.Expr, m.cfg.QueueDepth)
	qBank := make([]sym.Expr, m.cfg.QueueDepth)
	qSeq := make([]sym.Expr, m.cfg.QueueDepth)
	for i := 0; i < m.cfg.QueueDepth; i++ {
		var nv, nd, nb, ns sym.Expr
		if i+1 < m.cfg.QueueDepth {
			nv, nd, nb, ns = s.QValid[i+1], s.QDom[i+1], s.QBank[i+1], s.QSeq[i+1]
		} else {
			nv, nd, nb, ns = sym.False, sym.False, sym.False, sym.False
		}
		qValid[i] = b.Ite(canPop, nv, s.QValid[i])
		qDom[i] = b.Ite(canPop, nd, s.QDom[i])
		qBank[i] = b.Ite(canPop, nb, s.QBank[i])
		qSeq[i] = b.Ite(canPop, ns, s.QSeq[i])
	}

	// --- 6. Enqueue shaper emissions (sequence order), then the receiver.
	for q := 0; q < nseq; q++ {
		qValid, qDom, qBank, qSeq = m.enqueue(qValid, qDom, qBank, qSeq, dues[q], sym.False, emitBanks[q], b.Const(q == 1))
	}
	qValid, qDom, qBank, qSeq = m.enqueue(qValid, qDom, qBank, qSeq, in.RxValid, sym.True, in.RxBank, sym.False)

	// --- 7. Shaper response handling, per sequence.
	next.Waiting = make([]sym.Expr, nseq)
	next.Countdown = make([]sym.Vec, nseq)
	for q := 0; q < nseq; q++ {
		gotResp := respTx
		if nseq == 2 {
			if q == 0 {
				gotResp = b.And(respTx, s.ServSeq.Not())
			} else {
				gotResp = b.And(respTx, s.ServSeq)
			}
		}
		next.Waiting[q] = b.Or(b.And(s.Waiting[q], gotResp.Not()), dues[q])
		next.Countdown[q] = b.VecIte(gotResp, b.VecConst(m.cdBits, uint64(m.cfg.Weight)), cdAfter[q])
	}
	step := s.Step
	if nseq == 1 && m.cfg.Banks == 2 {
		step = b.Ite(dues[0], s.Step.Not(), s.Step)
	} else {
		step = sym.False
	}

	next.Step = step
	next.Pending = pend
	next.QValid = qValid
	next.QDom = qDom
	next.QBank = qBank
	next.QSeq = qSeq
	next.Busy = busyAfter2
	next.Remaining = remAfter2
	next.ServDom = servDom
	next.ServBank = servBank
	next.ServSeq = servSeq
	return next, out
}

// enqueue inserts an entry into the first invalid slot (dropped when the
// queue is full — identically for both compared runs, since occupancy is
// secret-independent).
func (m *Model) enqueue(qValid, qDom, qBank, qSeq []sym.Expr, valid, dom, bank, seq sym.Expr) ([]sym.Expr, []sym.Expr, []sym.Expr, []sym.Expr) {
	b := m.b
	placed := sym.False
	nv := append([]sym.Expr{}, qValid...)
	nd := append([]sym.Expr{}, qDom...)
	nb := append([]sym.Expr{}, qBank...)
	ns := append([]sym.Expr{}, qSeq...)
	for i := 0; i < m.cfg.QueueDepth; i++ {
		here := b.AndAll(valid, placed.Not(), qValid[i].Not())
		nv[i] = b.Or(qValid[i], here)
		nd[i] = b.Ite(here, dom, qDom[i])
		nb[i] = b.Ite(here, bank, qBank[i])
		ns[i] = b.Ite(here, seq, qSeq[i])
		placed = b.Or(placed, here)
	}
	return nv, nd, nb, ns
}

// OutputsEqual builds the equality of two receiver observations: validity
// must match, and when valid the bank must match.
func (m *Model) OutputsEqual(a, b Output) sym.Expr {
	bd := m.b
	eq := bd.Eq(a.RespValid, b.RespValid)
	bankEq := bd.Or(a.RespValid.Not(), bd.Eq(a.RespBank, b.RespBank))
	return bd.And(eq, bankEq)
}
