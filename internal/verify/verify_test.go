package verify

import (
	"math/rand"
	"testing"

	"dagguise/internal/sym"
)

func TestModelConfigValidate(t *testing.T) {
	bad := []ModelConfig{
		{Banks: 3, Weight: 1, MemLatency: 1, QueueDepth: 1, PendingMax: 1},
		{Banks: 1, Weight: 0, MemLatency: 1, QueueDepth: 1, PendingMax: 1},
		{Banks: 1, Weight: 1, MemLatency: 0, QueueDepth: 1, PendingMax: 1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	if err := DefaultModel().Validate(); err != nil {
		t.Fatal(err)
	}
}

// concreteSim runs the symbolic model with all-constant inputs by building
// the circuit and evaluating it — used to sanity-check the model's
// behaviour against hand-computed expectations.
type concreteSim struct {
	t *testing.T
	b *sym.Builder
	m *Model
	s State
}

func newConcreteSim(t *testing.T, cfg ModelConfig) *concreteSim {
	b := sym.NewBuilder()
	m, err := NewModel(cfg, b)
	if err != nil {
		t.Fatal(err)
	}
	return &concreteSim{t: t, b: b, m: m, s: m.ResetState()}
}

func (c *concreteSim) step(txValid bool, txBank uint64, rxValid bool, rxBank uint64) (respValid bool, respBank uint64) {
	in := Input{
		TxValid: c.b.Const(txValid), TxBank: c.b.Const(txBank == 1),
		RxValid: c.b.Const(rxValid), RxBank: c.b.Const(rxBank == 1),
	}
	var out Output
	c.s, out = c.m.Step(c.s, in)
	// All-constant circuit: evaluation needs no assignment.
	respValid = c.b.Eval(out.RespValid, nil)
	respBank = 0
	if c.b.Eval(out.RespBank, nil) {
		respBank = 1
	}
	return
}

func TestModelServesReceiverRequest(t *testing.T) {
	sim := newConcreteSim(t, DefaultModel())
	// Cycle 0: Rx sends a request to bank 1. The shaper also emits its
	// first request (to bank 0) the same cycle, ahead of Rx in FCFS.
	if v, _ := sim.step(false, 0, true, 1); v {
		t.Fatal("response too early")
	}
	// Service: shaper request pops at cycle 1, completes at cycle 3;
	// Rx pops at 3, completes at 5.
	var got []struct {
		cycle uint64
		bank  uint64
	}
	for cyc := uint64(1); cyc < 12; cyc++ {
		if v, bank := sim.step(false, 0, false, 0); v {
			got = append(got, struct{ cycle, bank uint64 }{cyc, bank})
		}
	}
	if len(got) != 1 {
		t.Fatalf("receiver responses = %d, want 1 (got %v)", len(got), got)
	}
	if got[0].bank != 1 {
		t.Fatalf("response bank = %d, want 1", got[0].bank)
	}
}

func TestModelShaperEmitsPeriodically(t *testing.T) {
	// With no receiver traffic, the shaper's chain still occupies the
	// controller periodically; receiver requests arriving later see a
	// deterministic pattern. Here we just confirm the model is live: a
	// receiver request is eventually served even with heavy Tx input.
	sim := newConcreteSim(t, DefaultModel())
	sim.step(true, 0, true, 0)
	served := false
	for i := 0; i < 40 && !served; i++ {
		v, _ := sim.step(true, uint64(i%2), false, 0)
		served = served || v
	}
	if !served {
		t.Fatal("receiver starved in the model")
	}
}

func TestBaseStepHoldsForSecureModel(t *testing.T) {
	v, err := NewVerifier(DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{1, 3, 6} {
		ok, cex, err := v.CheckBase(k)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("base step failed at k=%d:\n%s", k, cex)
		}
	}
}

func TestLeakyModelCaught(t *testing.T) {
	cfg := DefaultModel()
	cfg.Leaky = true
	v, err := NewVerifier(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ok, cex, err := v.CheckBase(8)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("base step passed for the deliberately leaky shaper")
	}
	if cex == nil || len(cex.Steps) != 8 {
		t.Fatalf("counterexample missing or wrong length: %v", cex)
	}
	// The two transmitter traces must actually differ somewhere.
	differ := false
	for _, st := range cex.Steps {
		if st.TxValid != st.Tx2Valid || st.TxBank != st.Tx2Bank {
			differ = true
			break
		}
	}
	if !differ {
		t.Fatalf("counterexample with identical transmitter traces:\n%s", cex)
	}
	if cex.String() == "" {
		t.Fatal("empty counterexample rendering")
	}
}

func TestMinimalKProvesProperty(t *testing.T) {
	v, err := NewVerifier(DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	k, err := v.MinimalK(16)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("minimal k = %d", k)
	if k < 1 {
		t.Fatalf("invalid k = %d", k)
	}
}

func TestPublicDeterminismHolds(t *testing.T) {
	v, err := NewVerifier(DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	ok, cex, err := v.CheckPublicDeterminism()
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("public state is not input-deterministic:\n%s", cex)
	}
}

func TestBankLeakUnobservableInFCFSModel(t *testing.T) {
	// The second bug class: correct timing, wrong banks (LeakyBank). In
	// the §5.1 simplified model — a single FCFS server with constant
	// latency — bank choice cannot influence the receiver's timing, so
	// the checker must find NO counterexample: the property genuinely
	// holds for this model even with the bank bug. This documents the
	// model's scope (the same scope as the paper's Rosette model): bank-
	// contention channels are outside it and are instead demonstrated on
	// the full simulator (internal/attack catches bank leaks, e.g. in
	// Camouflage). The proof still closes for the buggy-bank shaper.
	cfg := DefaultModel()
	cfg.LeakyBank = true
	v, err := NewVerifier(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := v.DetectionDepth(10); err == nil {
		t.Fatal("FCFS constant-latency model reported a bank-timing counterexample; " +
			"the model gained bank-dependent timing — update this test and EXPERIMENTS.md")
	}
	ok, _, err := v.CheckBase(8)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("base step failed for the bank-leaky shaper in a bank-blind model")
	}
}

func TestLeakyDetectionDepth(t *testing.T) {
	cfg := DefaultModel()
	cfg.Leaky = true
	v, err := NewVerifier(cfg)
	if err != nil {
		t.Fatal(err)
	}
	depth, cex, err := v.DetectionDepth(16)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("leak detected at base depth %d", depth)
	if cex == nil {
		t.Fatal("no counterexample returned")
	}
	// The leak needs at least a request's traversal through the system
	// (service latency) before it is observable.
	if depth < 3 {
		t.Fatalf("detection depth %d below the system traversal time", depth)
	}
}

func TestVerifyReportAtProvenK(t *testing.T) {
	v, _ := NewVerifier(DefaultModel())
	k, err := v.MinimalK(16)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := v.Verify(k)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Holds() {
		t.Fatalf("Verify(%d) = %+v, want proof", k, rep)
	}
}

func TestSingleBankModel(t *testing.T) {
	cfg := DefaultModel()
	cfg.Banks = 1
	v, err := NewVerifier(cfg)
	if err != nil {
		t.Fatal(err)
	}
	k, err := v.MinimalK(16)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("single-bank minimal k = %d", k)
}

func TestCounterexampleReplays(t *testing.T) {
	// Every SAT counterexample must reproduce on the concrete model —
	// this validates the Tseitin encoding and the solver end to end.
	for _, cfg := range []ModelConfig{
		{Banks: 2, Sequences: 1, Weight: 2, MemLatency: 2, QueueDepth: 2, PendingMax: 3, Leaky: true},
		{Banks: 1, Sequences: 1, Weight: 3, MemLatency: 2, QueueDepth: 2, PendingMax: 3, Leaky: true},
		{Banks: 2, Sequences: 2, Weight: 2, MemLatency: 2, QueueDepth: 2, PendingMax: 3, Leaky: true},
	} {
		v, err := NewVerifier(cfg)
		if err != nil {
			t.Fatal(err)
		}
		depth, cex, err := v.DetectionDepth(20)
		if err != nil {
			t.Fatalf("%+v: %v", cfg, err)
		}
		diffAt, err := v.Replay(cex)
		if err != nil {
			t.Fatalf("%+v: counterexample at depth %d failed to replay: %v", cfg, depth, err)
		}
		if diffAt >= depth {
			t.Fatalf("first difference at cycle %d, beyond the %d-cycle window", diffAt, depth)
		}
	}
}

func TestReplayRejectsBadInput(t *testing.T) {
	v, _ := NewVerifier(DefaultModel())
	if _, err := v.Replay(nil); err == nil {
		t.Fatal("nil counterexample accepted")
	}
	if _, err := v.Replay(&Counterexample{Induction: true}); err == nil {
		t.Fatal("induction counterexample accepted for replay")
	}
	// A bogus all-equal counterexample must be rejected as
	// non-reproducing.
	bogus := &Counterexample{K: 3, Steps: make([]TraceStep, 3)}
	if _, err := v.Replay(bogus); err == nil {
		t.Fatal("non-reproducing counterexample accepted")
	}
}

func TestTwoSequenceModelProven(t *testing.T) {
	// The §5.1 note that the tool extends to other rDAGs, realised: the
	// verified defense rDAG family includes two parallel chains (the
	// Figure 6 template structure), each pinned to its own bank.
	cfg := DefaultModel()
	cfg.Sequences = 2
	v, err := NewVerifier(cfg)
	if err != nil {
		t.Fatal(err)
	}
	k, err := v.MinimalK(10)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := v.Verify(k)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Holds() {
		t.Fatalf("two-sequence proof failed at k=%d: %+v", k, rep)
	}
	// And the leaky two-sequence variant is still caught.
	cfg.Leaky = true
	lv, _ := NewVerifier(cfg)
	depth, cex, err := lv.DetectionDepth(16)
	if err != nil {
		t.Fatal(err)
	}
	if cex == nil {
		t.Fatalf("leaky two-sequence shaper not caught (depth %d)", depth)
	}
}

func TestTwoSequencesRequireTwoBanks(t *testing.T) {
	cfg := DefaultModel()
	cfg.Sequences = 2
	cfg.Banks = 1
	if err := cfg.Validate(); err == nil {
		t.Fatal("2 sequences with 1 bank accepted")
	}
}

func TestVerifyAcrossConfigurations(t *testing.T) {
	// The proof must close for a range of model parameters, not just the
	// defaults — weights, latencies and queue depths change the state
	// encoding widths and the transition structure.
	configs := []ModelConfig{
		{Banks: 1, Weight: 1, MemLatency: 1, QueueDepth: 1, PendingMax: 1},
		{Banks: 2, Weight: 3, MemLatency: 2, QueueDepth: 2, PendingMax: 3},
		{Banks: 2, Weight: 2, MemLatency: 4, QueueDepth: 3, PendingMax: 2},
		{Banks: 1, Weight: 5, MemLatency: 3, QueueDepth: 2, PendingMax: 7},
	}
	for i, cfg := range configs {
		v, err := NewVerifier(cfg)
		if err != nil {
			t.Fatalf("config %d: %v", i, err)
		}
		k, err := v.MinimalK(8)
		if err != nil {
			t.Fatalf("config %d (%+v): %v", i, cfg, err)
		}
		rep, err := v.Verify(k)
		if err != nil {
			t.Fatalf("config %d: %v", i, err)
		}
		if !rep.Holds() {
			t.Fatalf("config %d (%+v): proof does not hold at k=%d", i, cfg, k)
		}
	}
}

func TestLeakyVariantsCaughtAcrossConfigurations(t *testing.T) {
	for _, cfg := range []ModelConfig{
		{Banks: 1, Weight: 2, MemLatency: 2, QueueDepth: 2, PendingMax: 3, Leaky: true},
		{Banks: 2, Weight: 4, MemLatency: 3, QueueDepth: 2, PendingMax: 3, Leaky: true},
	} {
		v, err := NewVerifier(cfg)
		if err != nil {
			t.Fatal(err)
		}
		depth, cex, err := v.DetectionDepth(20)
		if err != nil {
			t.Fatalf("%+v: %v", cfg, err)
		}
		if cex == nil || depth == 0 {
			t.Fatalf("%+v: leak not detected", cfg)
		}
	}
}

// TestModelMatchesRandomisedDifferentialRuns drives the concrete model
// with random shared Rx traffic and two different Tx traces, asserting the
// Rx outputs match — a randomised shadow of the theorem.
func TestModelMatchesRandomisedDifferentialRuns(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		simA := newConcreteSim(t, DefaultModel())
		simB := newConcreteSim(t, DefaultModel())
		for cyc := 0; cyc < 60; cyc++ {
			rxV := rng.Intn(3) == 0
			rxB := uint64(rng.Intn(2))
			vA, bA := simA.step(rng.Intn(2) == 0, uint64(rng.Intn(2)), rxV, rxB)
			vB, bB := simB.step(rng.Intn(2) == 0, uint64(rng.Intn(2)), rxV, rxB)
			if vA != vB || (vA && bA != bB) {
				t.Fatalf("trial %d cycle %d: receiver outputs differ (%v/%d vs %v/%d)",
					trial, cyc, vA, bA, vB, bB)
			}
		}
	}
}
