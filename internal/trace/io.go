package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"dagguise/internal/mem"
)

// The binary trace format: a magic header, a varint op count, then per op
// a flags byte (kind, dep-present), a varint gap, a varint address delta
// (zig-zag from the previous address, since traces are locality-heavy) and
// an optional varint dependency distance. Typical victim traces compress
// to a few bytes per op.

var traceMagic = [8]byte{'d', 'a', 'g', 't', 'r', 'c', '0', '1'}

const (
	flagWrite = 1 << 0
	flagDep   = 1 << 1
)

// Write serialises the trace to w.
func Write(w io.Writer, s *Slice) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(traceMagic[:]); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := putUvarint(uint64(len(s.Ops))); err != nil {
		return err
	}
	prev := uint64(0)
	for _, op := range s.Ops {
		flags := byte(0)
		if op.Kind == mem.Write {
			flags |= flagWrite
		}
		if op.Dep > 0 {
			flags |= flagDep
		}
		if err := bw.WriteByte(flags); err != nil {
			return err
		}
		if err := putUvarint(uint64(op.Gap)); err != nil {
			return err
		}
		delta := int64(op.Addr) - int64(prev)
		n := binary.PutUvarint(buf[:], zigzag(delta))
		if _, err := bw.Write(buf[:n]); err != nil {
			return err
		}
		prev = op.Addr
		if op.Dep > 0 {
			if err := putUvarint(uint64(op.Dep)); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Read deserialises a trace written by Write.
func Read(r io.Reader) (*Slice, error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if magic != traceMagic {
		return nil, fmt.Errorf("trace: bad magic %q", magic[:])
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: reading count: %w", err)
	}
	const maxOps = 1 << 28
	if count > maxOps {
		return nil, fmt.Errorf("trace: op count %d exceeds limit", count)
	}
	ops := make([]Op, 0, count)
	prev := uint64(0)
	for i := uint64(0); i < count; i++ {
		flags, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("trace: op %d flags: %w", i, err)
		}
		gap, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: op %d gap: %w", i, err)
		}
		zz, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: op %d addr: %w", i, err)
		}
		addr := uint64(int64(prev) + unzigzag(zz))
		prev = addr
		op := Op{Addr: addr, Gap: int(gap)}
		if flags&flagWrite != 0 {
			op.Kind = mem.Write
		}
		if flags&flagDep != 0 {
			dep, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("trace: op %d dep: %w", i, err)
			}
			op.Dep = int(dep)
		}
		ops = append(ops, op)
	}
	return &Slice{Ops: ops}, nil
}

func zigzag(v int64) uint64 {
	return uint64((v << 1) ^ (v >> 63))
}

func unzigzag(v uint64) int64 {
	return int64(v>>1) ^ -int64(v&1)
}

// Stats summarises a trace for inspection tools.
type Stats struct {
	Ops           int
	Reads         int
	Writes        int
	Dependent     int
	Instructions  uint64 // gaps + one per op
	DistinctLines int
}

// Summarize computes trace statistics.
func Summarize(s *Slice) Stats {
	st := Stats{Ops: len(s.Ops)}
	lines := make(map[uint64]struct{})
	for _, op := range s.Ops {
		if op.Kind == mem.Write {
			st.Writes++
		} else {
			st.Reads++
		}
		if op.Dep > 0 {
			st.Dependent++
		}
		st.Instructions += uint64(op.Gap) + 1
		lines[op.Addr>>6] = struct{}{}
	}
	st.DistinctLines = len(lines)
	return st
}
