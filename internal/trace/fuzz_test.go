package trace

import (
	"bytes"
	"testing"
)

// FuzzRead checks the binary trace reader never panics on arbitrary input
// and that anything it accepts round-trips through Write.
func FuzzRead(f *testing.F) {
	var seed bytes.Buffer
	Write(&seed, &Slice{Ops: []Op{{Addr: 64, Gap: 3}, {Addr: 0, Gap: 1, Dep: 1}}})
	f.Add(seed.Bytes())
	f.Add([]byte("dagtrc01"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := Write(&out, s); err != nil {
			t.Fatalf("accepted trace failed to re-encode: %v", err)
		}
		back, err := Read(&out)
		if err != nil {
			t.Fatalf("re-encoded trace failed to parse: %v", err)
		}
		if len(back.Ops) != len(s.Ops) {
			t.Fatalf("round trip changed length: %d vs %d", len(back.Ops), len(s.Ops))
		}
	})
}
