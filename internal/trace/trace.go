// Package trace defines the program-trace representation consumed by the
// trace-driven core model: a sequence of memory operations, each annotated
// with the number of non-memory instructions preceding it and an optional
// dependency on an earlier operation. Traces substitute for gem5's
// execution-driven cores (see DESIGN.md): they preserve exactly what the
// evaluation needs — bandwidth demand, memory-level parallelism and
// latency sensitivity.
package trace

import "dagguise/internal/mem"

// Op is one memory operation.
type Op struct {
	// Addr is the byte address accessed (the cache model aligns it).
	Addr uint64
	// Kind is Read (load) or Write (store).
	Kind mem.Kind
	// Gap is the number of non-memory instructions executed since the
	// previous memory operation.
	Gap int
	// Dep, when positive, says this op may not begin until the op Dep
	// positions earlier has completed (pointer-chasing serialisation).
	// Zero means the op is independent and can overlap earlier misses.
	Dep int
}

// Source yields the ops of one program. Implementations must be
// deterministic for a given construction.
type Source interface {
	// Next returns the next op. ok is false when the trace is exhausted;
	// infinite sources never return false.
	Next() (op Op, ok bool)
	// Reset rewinds the source to its beginning.
	Reset()
}

// Slice is a finite in-memory trace.
type Slice struct {
	Ops []Op
	pos int
}

// Next implements Source.
func (s *Slice) Next() (Op, bool) {
	if s.pos >= len(s.Ops) {
		return Op{}, false
	}
	op := s.Ops[s.pos]
	s.pos++
	return op, true
}

// Reset implements Source.
func (s *Slice) Reset() { s.pos = 0 }

// Loop wraps a finite source into an infinite one by resetting it on
// exhaustion. Wraps of an empty source return false to avoid spinning.
type Loop struct {
	Inner Source
	// Wraps counts completed passes.
	Wraps uint64
}

// Next implements Source.
func (l *Loop) Next() (Op, bool) {
	op, ok := l.Inner.Next()
	if ok {
		return op, true
	}
	l.Inner.Reset()
	l.Wraps++
	op, ok = l.Inner.Next()
	return op, ok
}

// Reset implements Source.
func (l *Loop) Reset() {
	l.Inner.Reset()
	l.Wraps = 0
}

// Recorder collects ops emitted by an instrumented application (the victim
// implementations in internal/victim record through one of these).
type Recorder struct {
	ops      []Op
	gap      int
	lastLine map[uint64]int // line -> op index, for dependency inference
	inferDep bool
}

// NewRecorder builds a recorder. When inferDeps is true, an access to a
// line that was previously accessed records a dependency on the earlier
// op, modelling data-dependent address generation (hash-table chains).
func NewRecorder(inferDeps bool) *Recorder {
	return &Recorder{lastLine: make(map[uint64]int), inferDep: inferDeps}
}

// Compute records n non-memory instructions.
func (r *Recorder) Compute(n int) { r.gap += n }

// Load records a read of addr.
func (r *Recorder) Load(addr uint64) { r.access(addr, mem.Read, 0) }

// Store records a write of addr.
func (r *Recorder) Store(addr uint64) { r.access(addr, mem.Write, 0) }

// LoadDep records a read whose address depended on the value of the
// previous memory operation (a serialised, pointer-chased load).
func (r *Recorder) LoadDep(addr uint64) { r.access(addr, mem.Read, 1) }

func (r *Recorder) access(addr uint64, kind mem.Kind, dep int) {
	r.ops = append(r.ops, Op{Addr: addr, Kind: kind, Gap: r.gap, Dep: dep})
	r.gap = 0
}

// Trace returns the recorded trace.
func (r *Recorder) Trace() *Slice { return &Slice{Ops: r.ops} }

// Len returns the number of recorded ops.
func (r *Recorder) Len() int { return len(r.ops) }
