package trace

import (
	"fmt"

	"dagguise/internal/rng"
)

// SourceState is the serializable position of a trace source. It is a small
// tagged union: Kind names the concrete source, and only the fields that
// source uses are populated. Sources that wrap another source (Loop) nest
// the wrapped source's state in Inner.
type SourceState struct {
	Kind  string       `json:"kind"`
	Pos   uint64       `json:"pos,omitempty"`
	Wraps uint64       `json:"wraps,omitempty"`
	Rand  *rng.State   `json:"rand,omitempty"`
	Inner *SourceState `json:"inner,omitempty"`
}

// Stateful is a Source whose position can be captured in a checkpoint and
// restored bit-exactly: after RestoreState(SaveState()) the source yields
// exactly the ops it would have yielded without the round trip.
type Stateful interface {
	Source
	SaveState() SourceState
	RestoreState(SourceState) error
}

// SaveState implements Stateful.
func (s *Slice) SaveState() SourceState {
	return SourceState{Kind: "slice", Pos: uint64(s.pos)}
}

// RestoreState implements Stateful. The ops themselves are not part of the
// state: the caller must restore into a Slice holding the same trace.
func (s *Slice) RestoreState(st SourceState) error {
	if st.Kind != "slice" {
		return fmt.Errorf("trace: restoring %q state into a slice source", st.Kind)
	}
	if st.Pos > uint64(len(s.Ops)) {
		return fmt.Errorf("trace: slice position %d beyond trace length %d", st.Pos, len(s.Ops))
	}
	s.pos = int(st.Pos)
	return nil
}

// SaveState implements Stateful. The inner source must itself be Stateful.
func (l *Loop) SaveState() SourceState {
	inner := l.Inner.(Stateful).SaveState()
	return SourceState{Kind: "loop", Wraps: l.Wraps, Inner: &inner}
}

// RestoreState implements Stateful.
func (l *Loop) RestoreState(st SourceState) error {
	if st.Kind != "loop" {
		return fmt.Errorf("trace: restoring %q state into a loop source", st.Kind)
	}
	if st.Inner == nil {
		return fmt.Errorf("trace: loop state missing inner source state")
	}
	inner, ok := l.Inner.(Stateful)
	if !ok {
		return fmt.Errorf("trace: loop inner source %T is not checkpointable", l.Inner)
	}
	if err := inner.RestoreState(*st.Inner); err != nil {
		return err
	}
	l.Wraps = st.Wraps
	return nil
}
