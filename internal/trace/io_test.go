package trace

import (
	"bytes"
	"testing"
	"testing/quick"

	"dagguise/internal/mem"
)

func TestWriteReadRoundTrip(t *testing.T) {
	s := &Slice{Ops: []Op{
		{Addr: 0x1000, Kind: mem.Read, Gap: 5},
		{Addr: 0x40, Kind: mem.Write, Gap: 0},
		{Addr: 0xdeadbeef00, Kind: mem.Read, Gap: 1000, Dep: 3},
	}}
	var buf bytes.Buffer
	if err := Write(&buf, s); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Ops) != len(s.Ops) {
		t.Fatalf("ops = %d, want %d", len(back.Ops), len(s.Ops))
	}
	for i := range s.Ops {
		if back.Ops[i] != s.Ops[i] {
			t.Fatalf("op %d: %+v != %+v", i, back.Ops[i], s.Ops[i])
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(addrs []uint32, gaps []uint8, kinds []bool) bool {
		var ops []Op
		for i, a := range addrs {
			op := Op{Addr: uint64(a) * 64}
			if i < len(gaps) {
				op.Gap = int(gaps[i])
			}
			if i < len(kinds) && kinds[i] {
				op.Kind = mem.Write
			}
			if i%5 == 4 {
				op.Dep = 1
			}
			ops = append(ops, op)
		}
		s := &Slice{Ops: ops}
		var buf bytes.Buffer
		if err := Write(&buf, s); err != nil {
			return false
		}
		back, err := Read(&buf)
		if err != nil {
			return false
		}
		if len(back.Ops) != len(ops) {
			return false
		}
		for i := range ops {
			if back.Ops[i] != ops[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("not a trace file"))); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := Read(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
	// Valid magic but truncated body.
	var buf bytes.Buffer
	Write(&buf, &Slice{Ops: []Op{{Addr: 64}, {Addr: 128}}})
	data := buf.Bytes()
	if _, err := Read(bytes.NewReader(data[:len(data)-1])); err == nil {
		t.Fatal("truncated trace accepted")
	}
}

func TestSummarize(t *testing.T) {
	s := &Slice{Ops: []Op{
		{Addr: 0, Gap: 9},
		{Addr: 64, Kind: mem.Write, Gap: 0},
		{Addr: 0, Gap: 1, Dep: 1},
	}}
	st := Summarize(s)
	if st.Ops != 3 || st.Reads != 2 || st.Writes != 1 || st.Dependent != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Instructions != 13 {
		t.Fatalf("instructions = %d, want 13", st.Instructions)
	}
	if st.DistinctLines != 2 {
		t.Fatalf("distinct lines = %d, want 2", st.DistinctLines)
	}
}

func TestCompression(t *testing.T) {
	// Sequential traces should encode compactly (few bytes per op).
	ops := make([]Op, 10000)
	for i := range ops {
		ops[i] = Op{Addr: uint64(i) * 64, Gap: 10}
	}
	var buf bytes.Buffer
	if err := Write(&buf, &Slice{Ops: ops}); err != nil {
		t.Fatal(err)
	}
	perOp := float64(buf.Len()) / float64(len(ops))
	if perOp > 6 {
		t.Fatalf("%.1f bytes/op; sequential traces should compress below 6", perOp)
	}
}
