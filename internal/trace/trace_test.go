package trace

import (
	"testing"
	"testing/quick"

	"dagguise/internal/mem"
)

func TestSliceNextAndReset(t *testing.T) {
	s := &Slice{Ops: []Op{{Addr: 1}, {Addr: 2}}}
	op, ok := s.Next()
	if !ok || op.Addr != 1 {
		t.Fatalf("first = %+v, %v", op, ok)
	}
	s.Next()
	if _, ok := s.Next(); ok {
		t.Fatal("exhausted slice returned an op")
	}
	s.Reset()
	op, ok = s.Next()
	if !ok || op.Addr != 1 {
		t.Fatal("reset did not rewind")
	}
}

func TestLoopWraps(t *testing.T) {
	l := &Loop{Inner: &Slice{Ops: []Op{{Addr: 1}, {Addr: 2}}}}
	var got []uint64
	for i := 0; i < 5; i++ {
		op, ok := l.Next()
		if !ok {
			t.Fatal("loop exhausted")
		}
		got = append(got, op.Addr)
	}
	want := []uint64{1, 2, 1, 2, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sequence %v, want %v", got, want)
		}
	}
	if l.Wraps != 2 {
		t.Fatalf("wraps = %d, want 2", l.Wraps)
	}
	l.Reset()
	if l.Wraps != 0 {
		t.Fatal("reset did not clear wraps")
	}
}

func TestLoopEmptyInner(t *testing.T) {
	l := &Loop{Inner: &Slice{}}
	if _, ok := l.Next(); ok {
		t.Fatal("empty loop returned an op")
	}
}

func TestRecorderGapsAndKinds(t *testing.T) {
	r := NewRecorder(false)
	r.Compute(10)
	r.Load(0x100)
	r.Compute(3)
	r.Compute(2)
	r.Store(0x200)
	r.LoadDep(0x300)
	tr := r.Trace()
	if len(tr.Ops) != 3 {
		t.Fatalf("ops = %d", len(tr.Ops))
	}
	if tr.Ops[0].Gap != 10 || tr.Ops[0].Kind != mem.Read {
		t.Fatalf("op0 = %+v", tr.Ops[0])
	}
	if tr.Ops[1].Gap != 5 || tr.Ops[1].Kind != mem.Write {
		t.Fatalf("op1 = %+v", tr.Ops[1])
	}
	if tr.Ops[2].Dep != 1 {
		t.Fatalf("op2 dep = %d, want 1", tr.Ops[2].Dep)
	}
	if r.Len() != 3 {
		t.Fatal("Len mismatch")
	}
}

func TestLoopDeterministicProperty(t *testing.T) {
	// Property: reading 2n ops from a loop over an n-op slice yields the
	// slice twice.
	f := func(addrs []uint16) bool {
		if len(addrs) == 0 {
			return true
		}
		ops := make([]Op, len(addrs))
		for i, a := range addrs {
			ops[i] = Op{Addr: uint64(a)}
		}
		l := &Loop{Inner: &Slice{Ops: ops}}
		for pass := 0; pass < 2; pass++ {
			for i := range ops {
				op, ok := l.Next()
				if !ok || op.Addr != ops[i].Addr {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
