package cpu

import "testing"

func TestPrefetcherDisabledWhenDepthZero(t *testing.T) {
	if newPrefetcher(0, 8) != nil {
		t.Fatal("depth 0 should disable the prefetcher")
	}
}

func TestPrefetcherNeedsConfirmation(t *testing.T) {
	p := newPrefetcher(4, 8)
	if got := p.onMiss(100); got != nil {
		t.Fatalf("first miss prefetched %v", got)
	}
	// Second sequential miss confirms the stream but needs two hits.
	if got := p.onMiss(101); got != nil {
		t.Fatalf("unconfirmed stream prefetched %v", got)
	}
	got := p.onMiss(102)
	if len(got) == 0 {
		t.Fatal("confirmed stream did not prefetch")
	}
	for _, l := range got {
		if l <= 102 || l > 106 {
			t.Fatalf("prefetch line %d outside lookahead window", l)
		}
	}
}

func TestPrefetcherNoDuplicateLines(t *testing.T) {
	p := newPrefetcher(4, 8)
	p.onMiss(10)
	p.onMiss(11)
	seen := map[uint64]bool{}
	for l := uint64(12); l < 40; l++ {
		for _, pf := range p.onMiss(l) {
			if seen[pf] {
				t.Fatalf("line %d prefetched twice", pf)
			}
			seen[pf] = true
		}
	}
	if len(seen) == 0 {
		t.Fatal("no prefetches issued")
	}
}

func TestPrefetcherTracksMultipleStreams(t *testing.T) {
	p := newPrefetcher(2, 4)
	// Interleave two sequential streams far apart.
	var got []uint64
	for i := uint64(0); i < 6; i++ {
		got = append(got, p.onMiss(100+i)...)
		got = append(got, p.onMiss(5000+i)...)
	}
	lo, hi := false, false
	for _, l := range got {
		if l > 100 && l < 200 {
			lo = true
		}
		if l > 5000 && l < 5100 {
			hi = true
		}
	}
	if !lo || !hi {
		t.Fatalf("streams not both tracked: prefetches %v", got)
	}
}

func TestPrefetcherEvictsLRUStream(t *testing.T) {
	p := newPrefetcher(2, 2)
	p.onMiss(100)
	p.onMiss(200)
	p.onMiss(300) // evicts the LRU entry (stream at 100)
	// Stream at 100 must re-train from scratch.
	if got := p.onMiss(101); got != nil {
		t.Fatalf("evicted stream still confirmed: %v", got)
	}
}

func TestPrefetcherToleratesSkips(t *testing.T) {
	p := newPrefetcher(4, 8)
	p.onMiss(50)
	p.onMiss(51)
	p.onMiss(52)
	// A skip of up to 2 lines still extends the stream.
	if got := p.onMiss(54); len(got) == 0 {
		t.Fatal("small skip broke the stream")
	}
}
