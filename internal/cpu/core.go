// Package cpu implements the trace-driven out-of-order core model: a
// ROB-sized instruction window, MSHR-limited outstanding misses and
// dependency-limited memory-level parallelism. It reproduces the property
// the evaluation depends on — IPC falls as memory latency grows and as
// bandwidth shrinks, with a sensitivity set by each workload's miss
// density and dependency structure (see DESIGN.md for the gem5
// substitution rationale).
package cpu

import (
	"fmt"

	"dagguise/internal/cache"
	"dagguise/internal/config"
	"dagguise/internal/mem"
	"dagguise/internal/obs"
	"dagguise/internal/trace"
)

// Port accepts memory requests from a core: either the memory controller's
// transaction queue directly (unprotected domains) or a DAGguise/Camouflage
// shaper's private queue (protected domains).
type Port interface {
	TryEnqueue(req mem.Request, now uint64) bool
}

// IDAlloc returns unique request IDs; all producers in a simulation share
// one allocator.
type IDAlloc func() uint64

type opStatus int

const (
	stWaitDep opStatus = iota
	stReady
	stInMem
	stDone
)

type slot struct {
	op         trace.Op
	seq        uint64
	status     opStatus
	completion uint64
	reqID      uint64
	gapLeft    int
}

// Stats aggregates core counters.
type Stats struct {
	Cycles       uint64
	Instructions uint64
	MemOps       uint64
	MemReads     uint64 // demand reads issued to memory (LLC misses)
	Prefetches   uint64 // prefetch reads issued to memory
	Writebacks   uint64
	StallCycles  uint64 // cycles with zero retirement
}

// IPC returns retired instructions per cycle.
func (s Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Instructions) / float64(s.Cycles)
}

// Core is one trace-driven core.
type Core struct {
	domain mem.Domain
	src    trace.Source
	hier   *cache.Hierarchy
	cfg    config.CoreConfig
	port   Port
	alloc  IDAlloc

	window    []slot
	baseSeq   uint64 // seq of window[0]
	nextSeq   uint64
	instCount int // instructions represented in the window

	outstanding int
	reads       map[uint64]uint64 // reqID -> seq
	wbQueue     []uint64

	pf          *prefetcher
	pfPending   []uint64          // prefetch lines awaiting a free slot/port
	fillPending []uint64          // store-miss fill lines (write-allocate)
	pfInMem     map[uint64]uint64 // reqID -> line address
	pfIssued    map[uint64]bool   // lines with an in-flight prefetch/fill

	exhausted bool
	stats     Stats

	// Observability (nil = off); measurement only.
	mx *obs.Registry
}

// New builds a core for the domain reading ops from src through the given
// cache hierarchy, sending misses to port.
func New(domain mem.Domain, src trace.Source, hier *cache.Hierarchy, cfg config.CoreConfig, port Port, alloc IDAlloc) *Core {
	return &Core{
		domain:   domain,
		src:      src,
		hier:     hier,
		cfg:      cfg,
		port:     port,
		alloc:    alloc,
		reads:    make(map[uint64]uint64),
		pf:       newPrefetcher(cfg.PrefetchDepth, cfg.PrefetchStreams),
		pfInMem:  make(map[uint64]uint64),
		pfIssued: make(map[uint64]bool),
	}
}

// Domain returns the core's security domain.
func (c *Core) Domain() mem.Domain { return c.domain }

// Observe attaches an observability registry (nil = off). Measurement
// only: the core's timing never consults it.
func (c *Core) Observe(mx *obs.Registry) { c.mx = mx }

// Stats returns the core's counters.
func (c *Core) Stats() Stats { return c.stats }

// Hierarchy exposes the core's caches (for workload calibration).
func (c *Core) Hierarchy() *cache.Hierarchy { return c.hier }

// Done reports whether a finite trace has fully retired.
func (c *Core) Done() bool { return c.exhausted && len(c.window) == 0 }

// depSatisfied reports whether the op's dependency has completed.
func (c *Core) depSatisfied(s *slot) bool {
	if s.op.Dep <= 0 {
		return true
	}
	depSeq := s.seq - uint64(s.op.Dep)
	if s.seq < uint64(s.op.Dep) || depSeq < c.baseSeq {
		return true // dependency already retired
	}
	dep := &c.window[depSeq-c.baseSeq]
	return dep.status == stDone
}

// Tick advances the core one cycle.
func (c *Core) Tick(now uint64) {
	c.stats.Cycles++
	c.mx.Observe(obs.HistMLP, int(c.domain), uint64(c.outstanding))
	c.fill()
	c.issue(now)
	c.issuePrefetches(now)
	c.flushWritebacks(now)
	c.retire(now)
}

// issuePrefetches drains pending store-fill and prefetch lines through the
// port, bounded by a private outstanding budget so they never steal demand
// MSHRs. Store fills skip the cache-presence filter: their line was
// functionally allocated at store time, but the bus transfer still happens.
func (c *Core) issuePrefetches(now uint64) {
	budget := 2 * c.cfg.PrefetchDepth
	if budget < 4 {
		budget = 4
	}
	trySend := func(line uint64) bool {
		id := c.alloc()
		req := mem.Request{ID: id, Addr: line * 64, Kind: mem.Read, Domain: c.domain, Issue: now, Prefetch: true}
		if !c.port.TryEnqueue(req, now) {
			return false
		}
		c.pfIssued[line] = true
		c.pfInMem[id] = line * 64
		c.stats.Prefetches++
		return true
	}
	for len(c.fillPending) > 0 && len(c.pfInMem) < budget {
		line := c.fillPending[0]
		if c.pfIssued[line] {
			c.fillPending = c.fillPending[1:]
			continue
		}
		if !trySend(line) {
			return
		}
		c.fillPending = c.fillPending[1:]
	}
	for len(c.pfPending) > 0 && len(c.pfInMem) < budget {
		line := c.pfPending[0]
		if c.pfIssued[line] || c.hier.Contains(line*64) {
			c.pfPending = c.pfPending[1:]
			continue
		}
		if !trySend(line) {
			return
		}
		c.pfPending = c.pfPending[1:]
	}
}

func (c *Core) fill() {
	for !c.exhausted && c.instCount < c.cfg.ROBEntries {
		op, ok := c.src.Next()
		if !ok {
			c.exhausted = true
			return
		}
		c.window = append(c.window, slot{op: op, seq: c.nextSeq, status: stWaitDep, gapLeft: op.Gap})
		c.nextSeq++
		c.instCount += op.Gap + 1
	}
}

func (c *Core) issue(now uint64) {
	for i := range c.window {
		s := &c.window[i]
		switch s.status {
		case stWaitDep:
			if !c.depSatisfied(s) {
				continue
			}
			s.status = stReady
			fallthrough
		case stReady:
			c.access(s, now)
		}
	}
}

// needsMemSentinel marks a slot whose cache access already ran (and
// missed) but whose timing request was rejected by a full port; the retry
// must not repeat the functional access, which would now hit.
const needsMemSentinel = ^uint64(0)

// access performs the cache access for a ready op and transitions it.
func (c *Core) access(s *slot, now uint64) {
	if s.op.Kind == mem.Write {
		// Stores retire through the store buffer: account the cache
		// effects (allocation + dirty evictions) but never stall. A
		// store miss still fetches its line (write-allocate) as a
		// non-blocking fill read through the prefetch engine.
		res := c.hier.Access(s.op.Addr, true)
		c.wbQueue = append(c.wbQueue, res.Writebacks...)
		if c.pf != nil && res.Level >= 2 {
			c.pfPending = append(c.pfPending, c.pf.onMiss(s.op.Addr/64)...)
		}
		if res.MissToMem {
			c.fillPending = append(c.fillPending, s.op.Addr/64)
		}
		s.status = stDone
		s.completion = now
		return
	}
	// Loads that need memory must claim an MSHR and a queue slot; stay
	// Ready and retry next cycle when either is unavailable.
	if c.outstanding >= c.cfg.MSHRs {
		return
	}
	if s.reqID != needsMemSentinel {
		res := c.hier.Access(s.op.Addr, false)
		c.wbQueue = append(c.wbQueue, res.Writebacks...)
		// Train the stream prefetcher on every L1 miss — including hits
		// on previously prefetched lines in L2/L3, otherwise a covered
		// stream would stop advancing and stall itself.
		if c.pf != nil && res.Level >= 2 {
			c.pfPending = append(c.pfPending, c.pf.onMiss(s.op.Addr/64)...)
		}
		if !res.MissToMem {
			s.status = stDone
			s.completion = now + res.Latency
			return
		}
		s.reqID = needsMemSentinel
	}
	id := c.alloc()
	req := mem.Request{ID: id, Addr: s.op.Addr, Kind: mem.Read, Domain: c.domain, Issue: now}
	if !c.port.TryEnqueue(req, now) {
		return // port full: retry next cycle without re-accessing caches
	}
	s.status = stInMem
	s.reqID = id
	c.reads[id] = s.seq
	c.outstanding++
	c.stats.MemReads++
}

func (c *Core) flushWritebacks(now uint64) {
	for len(c.wbQueue) > 0 {
		req := mem.Request{ID: c.alloc(), Addr: c.wbQueue[0], Kind: mem.Write, Domain: c.domain, Issue: now}
		if !c.port.TryEnqueue(req, now) {
			return
		}
		c.wbQueue = c.wbQueue[1:]
		c.stats.Writebacks++
	}
}

func (c *Core) retire(now uint64) {
	budget := c.cfg.IssueWidth
	retired := 0
	for budget > 0 && len(c.window) > 0 {
		head := &c.window[0]
		if head.gapLeft > 0 {
			n := head.gapLeft
			if n > budget {
				n = budget
			}
			head.gapLeft -= n
			budget -= n
			retired += n
			continue
		}
		if head.status != stDone || head.completion > now {
			break
		}
		budget--
		retired++
		c.stats.MemOps++
		c.instCount -= head.op.Gap + 1
		c.window = c.window[1:]
		c.baseSeq++
	}
	c.stats.Instructions += uint64(retired)
	if retired == 0 {
		c.stats.StallCycles++
		c.mx.Inc(obs.CtrROBStallCycles, int(c.domain))
	} else {
		c.mx.Add(obs.CtrRetired, int(c.domain), uint64(retired))
	}
}

// RetiredResponseError reports a memory completion for an instruction that
// already retired — a protocol violation: the core never retires a load
// before its response arrives, so a late duplicate or corrupted response ID
// is the only way here.
type RetiredResponseError struct {
	// Domain is the core's security domain, ID the response's request ID.
	Domain mem.Domain
	ID     uint64
	// Seq is the retired instruction sequence number, Base the oldest
	// in-window sequence at the time of the violation.
	Seq, Base uint64
}

// Error implements error.
func (e *RetiredResponseError) Error() string {
	return fmt.Sprintf("cpu: domain %d response %d for retired op seq %d (base %d)", e.Domain, e.ID, e.Seq, e.Base)
}

// OnResponse delivers a memory read completion to the core. Prefetch
// completions fill L2/L3; unknown IDs (e.g. write completions, which the
// core does not track) are ignored. A response for an already-retired
// instruction is a protocol violation reported as *RetiredResponseError.
func (c *Core) OnResponse(resp mem.Response, now uint64) error {
	if addr, ok := c.pfInMem[resp.ID]; ok {
		delete(c.pfInMem, resp.ID)
		delete(c.pfIssued, addr/64)
		c.wbQueue = append(c.wbQueue, c.hier.PrefetchFill(addr)...)
		return nil
	}
	seq, ok := c.reads[resp.ID]
	if !ok {
		return nil
	}
	delete(c.reads, resp.ID)
	if seq < c.baseSeq {
		return &RetiredResponseError{Domain: c.domain, ID: resp.ID, Seq: seq, Base: c.baseSeq}
	}
	s := &c.window[seq-c.baseSeq]
	s.status = stDone
	s.completion = now
	c.outstanding--
	return nil
}

// Outstanding returns in-flight memory reads.
func (c *Core) Outstanding() int { return c.outstanding }
