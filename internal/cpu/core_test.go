package cpu

import (
	"testing"

	"dagguise/internal/cache"
	"dagguise/internal/config"
	"dagguise/internal/mem"
	"dagguise/internal/trace"
)

// fixedLatencyPort completes every request a fixed delay after enqueue.
type fixedLatencyPort struct {
	latency  uint64
	inflight []mem.Response
	due      []uint64
	capacity int
	accepted uint64
	writes   uint64
}

func (p *fixedLatencyPort) TryEnqueue(req mem.Request, now uint64) bool {
	if p.capacity > 0 && len(p.inflight) >= p.capacity {
		return false
	}
	if req.Kind == mem.Write {
		p.writes++
		return true // writes complete silently
	}
	p.accepted++
	p.inflight = append(p.inflight, mem.Response{ID: req.ID, Addr: req.Addr, Kind: req.Kind, Domain: req.Domain})
	p.due = append(p.due, now+p.latency)
	return true
}

func (p *fixedLatencyPort) deliver(c *Core, now uint64) {
	keepR := p.inflight[:0]
	keepD := p.due[:0]
	for i := range p.inflight {
		if p.due[i] <= now {
			r := p.inflight[i]
			r.Completion = now
			c.OnResponse(r, now)
		} else {
			keepR = append(keepR, p.inflight[i])
			keepD = append(keepD, p.due[i])
		}
	}
	p.inflight = keepR
	p.due = keepD
}

func tinyCaches(t *testing.T) *cache.Hierarchy {
	t.Helper()
	cfg := config.Default(1, config.Insecure)
	cfg.L1 = config.CacheLevel{SizeBytes: 1 << 10, Ways: 2, LineBytes: 64, LatencyCycles: 4}
	cfg.L2 = config.CacheLevel{SizeBytes: 2 << 10, Ways: 4, LineBytes: 64, LatencyCycles: 13}
	cfg.L3 = config.CacheLevel{SizeBytes: 4 << 10, Ways: 4, LineBytes: 64, LatencyCycles: 42}
	h, err := cache.NewHierarchy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func idAlloc() IDAlloc {
	n := uint64(0)
	return func() uint64 { n++; return n }
}

func coreCfg() config.CoreConfig {
	return config.CoreConfig{IssueWidth: 8, ROBEntries: 192, MSHRs: 16}
}

// missTrace builds n independent loads to distinct lines far apart (always
// missing the tiny caches), each preceded by gap instructions.
func missTrace(n, gap, dep int) *trace.Slice {
	ops := make([]trace.Op, n)
	for i := range ops {
		ops[i] = trace.Op{Addr: uint64(i) * (1 << 16), Kind: mem.Read, Gap: gap, Dep: dep}
	}
	return &trace.Slice{Ops: ops}
}

func run(c *Core, p *fixedLatencyPort, cycles uint64) {
	for now := uint64(0); now < cycles && !c.Done(); now++ {
		c.Tick(now)
		p.deliver(c, now)
	}
}

func TestComputeBoundIPCNearIssueWidth(t *testing.T) {
	ops := make([]trace.Op, 100)
	for i := range ops {
		ops[i] = trace.Op{Addr: 0x40, Kind: mem.Read, Gap: 100}
	}
	// First access misses; all later hit L1.
	p := &fixedLatencyPort{latency: 100}
	c := New(0, &trace.Slice{Ops: ops}, tinyCaches(t), coreCfg(), p, idAlloc())
	run(c, p, 100000)
	if !c.Done() {
		t.Fatal("trace did not finish")
	}
	ipc := c.Stats().IPC()
	if ipc < 5.0 {
		t.Fatalf("compute-bound IPC = %.2f, want near issue width 8", ipc)
	}
}

func TestMemoryLatencySensitivity(t *testing.T) {
	mkIPC := func(latency uint64) float64 {
		p := &fixedLatencyPort{latency: latency}
		c := New(0, missTrace(300, 10, 1), tinyCaches(t), coreCfg(), p, idAlloc())
		run(c, p, 1_000_000)
		if !c.Done() {
			t.Fatalf("trace stuck at latency %d", latency)
		}
		return c.Stats().IPC()
	}
	fast := mkIPC(50)
	slow := mkIPC(500)
	if !(fast > slow*2) {
		t.Fatalf("dependent-miss IPC not latency sensitive: fast=%.3f slow=%.3f", fast, slow)
	}
}

func TestMLPOverlapsIndependentMisses(t *testing.T) {
	p1 := &fixedLatencyPort{latency: 200}
	serial := New(0, missTrace(200, 5, 1), tinyCaches(t), coreCfg(), p1, idAlloc())
	run(serial, p1, 1_000_000)
	p2 := &fixedLatencyPort{latency: 200}
	parallel := New(0, missTrace(200, 5, 0), tinyCaches(t), coreCfg(), p2, idAlloc())
	run(parallel, p2, 1_000_000)
	if !serial.Done() || !parallel.Done() {
		t.Fatal("traces did not finish")
	}
	sIPC, pIPC := serial.Stats().IPC(), parallel.Stats().IPC()
	if !(pIPC > sIPC*3) {
		t.Fatalf("independent misses not overlapped: serial=%.3f parallel=%.3f", sIPC, pIPC)
	}
}

func TestMSHRLimitsOutstanding(t *testing.T) {
	cfg := coreCfg()
	cfg.MSHRs = 4
	p := &fixedLatencyPort{latency: 10_000}
	c := New(0, missTrace(100, 0, 0), tinyCaches(t), cfg, p, idAlloc())
	maxOut := 0
	for now := uint64(0); now < 5000; now++ {
		c.Tick(now)
		if c.Outstanding() > maxOut {
			maxOut = c.Outstanding()
		}
	}
	if maxOut > 4 {
		t.Fatalf("outstanding reached %d with 4 MSHRs", maxOut)
	}
	if maxOut != 4 {
		t.Fatalf("outstanding never reached the MSHR limit: %d", maxOut)
	}
}

func TestPortBackpressureRetries(t *testing.T) {
	p := &fixedLatencyPort{latency: 50, capacity: 1}
	c := New(0, missTrace(20, 0, 0), tinyCaches(t), coreCfg(), p, idAlloc())
	run(c, p, 200_000)
	if !c.Done() {
		t.Fatal("core deadlocked under port backpressure")
	}
	if p.accepted != 20 {
		t.Fatalf("accepted %d reads, want 20 (no duplicates, no losses)", p.accepted)
	}
}

func TestWritebacksReachPort(t *testing.T) {
	// Dirty many lines then stream reads to force dirty evictions.
	var ops []trace.Op
	for i := 0; i < 64; i++ {
		ops = append(ops, trace.Op{Addr: uint64(i) * 64 * 8, Kind: mem.Write, Gap: 1})
	}
	for i := 0; i < 512; i++ {
		ops = append(ops, trace.Op{Addr: uint64(1<<20) + uint64(i)*64*8, Kind: mem.Read, Gap: 1})
	}
	p := &fixedLatencyPort{latency: 30}
	c := New(0, &trace.Slice{Ops: ops}, tinyCaches(t), coreCfg(), p, idAlloc())
	run(c, p, 1_000_000)
	if !c.Done() {
		t.Fatal("trace did not finish")
	}
	if p.writes == 0 {
		t.Fatal("no writebacks reached the memory port")
	}
	if c.Stats().Writebacks != p.writes {
		t.Fatalf("core counted %d writebacks, port saw %d", c.Stats().Writebacks, p.writes)
	}
}

func TestStatsAccounting(t *testing.T) {
	p := &fixedLatencyPort{latency: 30}
	c := New(3, missTrace(10, 7, 0), tinyCaches(t), coreCfg(), p, idAlloc())
	run(c, p, 100_000)
	st := c.Stats()
	if st.MemOps != 10 {
		t.Fatalf("mem ops = %d, want 10", st.MemOps)
	}
	if st.Instructions != 10*8 {
		t.Fatalf("instructions = %d, want 80 (10 ops with gap 7)", st.Instructions)
	}
	if c.Domain() != 3 {
		t.Fatal("domain lost")
	}
}

func TestLoopedTraceNeverDone(t *testing.T) {
	p := &fixedLatencyPort{latency: 30}
	src := &trace.Loop{Inner: missTrace(5, 2, 0)}
	c := New(0, src, tinyCaches(t), coreCfg(), p, idAlloc())
	for now := uint64(0); now < 10_000; now++ {
		c.Tick(now)
		p.deliver(c, now)
	}
	if c.Done() {
		t.Fatal("looped trace reported done")
	}
	if src.Wraps == 0 {
		t.Fatal("trace never wrapped")
	}
}
