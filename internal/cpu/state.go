package cpu

import (
	"fmt"
	"sort"

	"dagguise/internal/cache"
	"dagguise/internal/trace"
)

// SlotState mirrors one ROB window slot.
type SlotState struct {
	Op         trace.Op `json:"op"`
	Seq        uint64   `json:"seq"`
	Status     int      `json:"status"`
	Completion uint64   `json:"completion"`
	ReqID      uint64   `json:"req_id"`
	GapLeft    int      `json:"gap_left"`
}

// PairU64 is one entry of a uint64-keyed map, stored as a sorted pair list
// so the serialized form never depends on map iteration order.
type PairU64 struct {
	K uint64 `json:"k"`
	V uint64 `json:"v"`
}

// StreamSave mirrors one prefetcher stream entry.
type StreamSave struct {
	Next    uint64 `json:"next"`
	Ahead   uint64 `json:"ahead"`
	Hits    int    `json:"hits"`
	LastUse uint64 `json:"last_use"`
}

// PrefetcherState mirrors the stream table (nil when prefetching is off).
type PrefetcherState struct {
	Streams []StreamSave `json:"streams"`
	Clock   uint64       `json:"clock"`
}

// CoreState is the core's full mutable state: the instruction window, MSHR
// tracking, writeback and prefetch queues, the trace-source cursor and the
// private cache hierarchy.
type CoreState struct {
	Window      []SlotState          `json:"window,omitempty"`
	BaseSeq     uint64               `json:"base_seq"`
	NextSeq     uint64               `json:"next_seq"`
	InstCount   int                  `json:"inst_count"`
	Outstanding int                  `json:"outstanding"`
	Reads       []PairU64            `json:"reads,omitempty"`
	WBQueue     []uint64             `json:"wb_queue,omitempty"`
	PfPending   []uint64             `json:"pf_pending,omitempty"`
	FillPending []uint64             `json:"fill_pending,omitempty"`
	PfInMem     []PairU64            `json:"pf_in_mem,omitempty"`
	PfIssued    []uint64             `json:"pf_issued,omitempty"`
	Exhausted   bool                 `json:"exhausted"`
	Stats       Stats                `json:"stats"`
	Prefetch    *PrefetcherState     `json:"prefetch,omitempty"`
	Source      trace.SourceState    `json:"source"`
	Cache       cache.HierarchyState `json:"cache"`
}

func sortedPairs(m map[uint64]uint64) []PairU64 {
	if len(m) == 0 {
		return nil
	}
	out := make([]PairU64, 0, len(m))
	for k, v := range m {
		out = append(out, PairU64{K: k, V: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].K < out[j].K })
	return out
}

// SaveState captures the core's full mutable state. The trace source must
// be checkpointable (implement trace.Stateful).
func (c *Core) SaveState() (CoreState, error) {
	src, ok := c.src.(trace.Stateful)
	if !ok {
		return CoreState{}, fmt.Errorf("cpu: domain %d trace source %T is not checkpointable", c.domain, c.src)
	}
	st := CoreState{
		BaseSeq:     c.baseSeq,
		NextSeq:     c.nextSeq,
		InstCount:   c.instCount,
		Outstanding: c.outstanding,
		Reads:       sortedPairs(c.reads),
		WBQueue:     append([]uint64(nil), c.wbQueue...),
		PfPending:   append([]uint64(nil), c.pfPending...),
		FillPending: append([]uint64(nil), c.fillPending...),
		PfInMem:     sortedPairs(c.pfInMem),
		Exhausted:   c.exhausted,
		Stats:       c.stats,
		Source:      src.SaveState(),
		Cache:       c.hier.SaveState(),
	}
	for _, s := range c.window {
		st.Window = append(st.Window, SlotState{
			Op: s.op, Seq: s.seq, Status: int(s.status),
			Completion: s.completion, ReqID: s.reqID, GapLeft: s.gapLeft,
		})
	}
	for line := range c.pfIssued {
		st.PfIssued = append(st.PfIssued, line)
	}
	sort.Slice(st.PfIssued, func(i, j int) bool { return st.PfIssued[i] < st.PfIssued[j] })
	if c.pf != nil {
		ps := &PrefetcherState{Clock: c.pf.clock}
		for _, s := range c.pf.streams {
			ps.Streams = append(ps.Streams, StreamSave{Next: s.next, Ahead: s.ahead, Hits: s.hits, LastUse: s.lastUse})
		}
		st.Prefetch = ps
	}
	return st, nil
}

// RestoreState overwrites the core's mutable state. The core must have been
// built with the same configuration and an equivalent trace source.
func (c *Core) RestoreState(st CoreState) error {
	src, ok := c.src.(trace.Stateful)
	if !ok {
		return fmt.Errorf("cpu: domain %d trace source %T is not checkpointable", c.domain, c.src)
	}
	if err := src.RestoreState(st.Source); err != nil {
		return fmt.Errorf("cpu: domain %d trace source: %w", c.domain, err)
	}
	if err := c.hier.RestoreState(st.Cache); err != nil {
		return fmt.Errorf("cpu: domain %d cache: %w", c.domain, err)
	}
	if (c.pf == nil) != (st.Prefetch == nil) {
		return fmt.Errorf("cpu: domain %d prefetcher presence does not match state", c.domain)
	}
	if c.pf != nil {
		if len(st.Prefetch.Streams) != len(c.pf.streams) {
			return fmt.Errorf("cpu: domain %d state holds %d prefetch streams, core has %d",
				c.domain, len(st.Prefetch.Streams), len(c.pf.streams))
		}
		for i, s := range st.Prefetch.Streams {
			c.pf.streams[i] = stream{next: s.Next, ahead: s.Ahead, hits: s.Hits, lastUse: s.LastUse}
		}
		c.pf.clock = st.Prefetch.Clock
	}
	c.window = c.window[:0]
	for _, s := range st.Window {
		c.window = append(c.window, slot{
			op: s.Op, seq: s.Seq, status: opStatus(s.Status),
			completion: s.Completion, reqID: s.ReqID, gapLeft: s.GapLeft,
		})
	}
	c.baseSeq = st.BaseSeq
	c.nextSeq = st.NextSeq
	c.instCount = st.InstCount
	c.outstanding = st.Outstanding
	c.reads = make(map[uint64]uint64, len(st.Reads))
	for _, p := range st.Reads {
		c.reads[p.K] = p.V
	}
	c.wbQueue = append(c.wbQueue[:0], st.WBQueue...)
	c.pfPending = append(c.pfPending[:0], st.PfPending...)
	c.fillPending = append(c.fillPending[:0], st.FillPending...)
	c.pfInMem = make(map[uint64]uint64, len(st.PfInMem))
	for _, p := range st.PfInMem {
		c.pfInMem[p.K] = p.V
	}
	c.pfIssued = make(map[uint64]bool, len(st.PfIssued))
	for _, line := range st.PfIssued {
		c.pfIssued[line] = true
	}
	c.exhausted = st.Exhausted
	c.stats = st.Stats
	return nil
}
