package cpu

// The L2 stream prefetcher: a small table of sequential miss streams. When
// a demand miss extends a tracked stream, the prefetcher runs PrefetchDepth
// lines ahead of it. Prefetched lines fill L2/L3 only, prefetch requests
// use their own outstanding budget (they must not steal demand MSHRs), and
// — crucially for this paper — they travel through the same port as demand
// traffic, so a protected core's prefetches are shaped by its DAGguise
// shaper like any other request.

type stream struct {
	next    uint64 // next expected miss line
	ahead   uint64 // highest line already prefetched
	hits    int
	lastUse uint64
}

type prefetcher struct {
	streams []stream
	depth   int
	clock   uint64
}

func newPrefetcher(depth, streams int) *prefetcher {
	if depth <= 0 {
		return nil
	}
	if streams <= 0 {
		streams = 8
	}
	return &prefetcher{streams: make([]stream, streams), depth: depth}
}

// onMiss records a demand miss to the line and returns the lines to
// prefetch (possibly none).
func (p *prefetcher) onMiss(line uint64) []uint64 {
	p.clock++
	// Extend an existing stream?
	for i := range p.streams {
		s := &p.streams[i]
		if s.next != 0 && line >= s.next && line <= s.next+2 {
			s.hits++
			s.next = line + 1
			s.lastUse = p.clock
			if s.hits < 2 {
				return nil // not yet confirmed
			}
			target := line + uint64(p.depth)
			if s.ahead < line {
				s.ahead = line
			}
			var out []uint64
			for l := s.ahead + 1; l <= target; l++ {
				out = append(out, l)
			}
			s.ahead = target
			return out
		}
	}
	// Allocate the least-recently-used entry for a potential new stream.
	lru := 0
	for i := range p.streams {
		if p.streams[i].lastUse < p.streams[lru].lastUse {
			lru = i
		}
	}
	p.streams[lru] = stream{next: line + 1, lastUse: p.clock}
	return nil
}
