package sim

import (
	"encoding/json"
	"testing"

	"dagguise/internal/config"
	"dagguise/internal/fault"
	"dagguise/internal/mem"
)

// clusterFaultSched draws the randomized campaign the cluster fault tests
// share: storms, response delay/drop, backpressure and egress stalls over
// the first three quarters of the run.
func clusterFaultSched(horizon uint64) fault.Schedule {
	return fault.Campaign(4242, fault.CampaignConfig{
		Horizon:  horizon * 3 / 4,
		Domains:  []mem.Domain{1},
		MaxStorm: horizon / 32,
		Events:   16,
	})
}

// TestClusterNonInterferenceUnderFaults extends the cluster-scale twin
// audit to the faulty machine: two DAGguise clusters differing only in
// the protected tenants' secret, subjected to an identical fault
// campaign (keyed on cycle and domain only), must still produce equal
// audit digests — and the insecure baseline must still leak, so the
// faults have not destroyed the observable.
func TestClusterNonInterferenceUnderFaults(t *testing.T) {
	const cycles = 20_000
	sched := clusterFaultSched(cycles)
	run := func(scheme config.Scheme, secret int) (string, ClusterCounters) {
		cfg := clusterCfg(t, 2, 12, scheme)
		c, err := NewCluster(cfg, 0, 2, 1234, secret)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.AttachFaults(sched); err != nil {
			t.Fatal(err)
		}
		c.Run(cycles)
		return c.AuditDigest(), c.Counters()
	}
	a, ca := run(config.DAGguise, 11)
	b, _ := run(config.DAGguise, 12)
	if a != b {
		t.Errorf("DAGguise leaks under faults: secret 11 digest %s != secret 12 digest %s", a, b)
	}
	if ca.FaultDeferred == 0 && ca.FaultStallHits == 0 {
		t.Fatalf("fault campaign never fired; the twin comparison is vacuous: %+v", ca)
	}
	ia, _ := run(config.Insecure, 11)
	ib, _ := run(config.Insecure, 12)
	if ia == ib {
		t.Error("insecure baseline did not leak under faults; observable too coarse")
	}
}

// TestClusterFaultCheckpointRoundTrip pins the deferred-response state
// round-trip: a faulted cluster interrupted mid-run (potentially with
// responses withheld by delay/drop faults in flight) and resumed from
// its serialized state must finish bit-identical to an uninterrupted
// run.
func TestClusterFaultCheckpointRoundTrip(t *testing.T) {
	const cycles = 20_000
	sched := clusterFaultSched(cycles)
	build := func() *Cluster {
		cfg := clusterCfg(t, 2, 10, config.DAGguise)
		c, err := NewCluster(cfg, 0, 2, 99, 11)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.AttachFaults(sched); err != nil {
			t.Fatal(err)
		}
		return c
	}
	ref := build()
	ref.Run(cycles)
	if c := ref.Counters(); c.FaultDeferred == 0 {
		t.Skip("campaign produced no deferred responses; round-trip has nothing fault-specific to pin")
	}

	// Interrupt at several points so at least one lands with deferred
	// responses in flight.
	for _, cut := range []uint64{cycles / 4, cycles / 2, cycles * 3 / 4} {
		half := build()
		half.Run(cut)
		st, err := half.SaveState()
		if err != nil {
			t.Fatal(err)
		}
		blob, err := json.Marshal(st)
		if err != nil {
			t.Fatal(err)
		}
		var decoded ClusterState
		if err := json.Unmarshal(blob, &decoded); err != nil {
			t.Fatal(err)
		}
		resumed := build()
		if err := resumed.RestoreState(&decoded); err != nil {
			t.Fatal(err)
		}
		resumed.Run(cycles - cut)

		if got, want := resumed.AuditDigest(), ref.AuditDigest(); got != want {
			t.Fatalf("cut %d: resumed digest %s != uninterrupted %s", cut, got, want)
		}
		refSt, err := ref.SaveState()
		if err != nil {
			t.Fatal(err)
		}
		resSt, err := resumed.SaveState()
		if err != nil {
			t.Fatal(err)
		}
		refBlob, _ := json.Marshal(refSt)
		resBlob, _ := json.Marshal(resSt)
		if string(refBlob) != string(resBlob) {
			t.Fatalf("cut %d: resumed final state differs from uninterrupted run", cut)
		}
	}
}

// TestShardFaultScheduleMatchesClusterDomains guards the fleet-to-sim
// seam: the per-shard campaign derived by the pool validates and only
// targets domains the shard's clusters actually protect.
func TestShardFaultScheduleMatchesClusterDomains(t *testing.T) {
	cfg := clusterCfg(t, 2, 10, config.DAGguise)
	sched := fault.Campaign(7, fault.CampaignConfig{
		Horizon: 10_000,
		Domains: protectedDomains(cfg.Protected),
		Events:  8,
	})
	c, err := NewCluster(cfg, 0, 2, 3, 11)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AttachFaults(sched); err != nil {
		t.Fatalf("cluster rejected its own derived campaign: %v", err)
	}
}

// protectedDomains mirrors fleet.Sweep.ShardFaultSchedule's domain
// derivation: domains 1..Protected.
func protectedDomains(protected int) []mem.Domain {
	var doms []mem.Domain
	for i := 0; i < protected; i++ {
		doms = append(doms, mem.Domain(i+1))
	}
	return doms
}
