package sim

import (
	"testing"

	"dagguise/internal/audit"
	"dagguise/internal/config"
	"dagguise/internal/fault"
	"dagguise/internal/mem"
	"dagguise/internal/trace"
	"dagguise/internal/victim"
)

func TestAuditTapStreamSecretIndependent(t *testing.T) {
	sched := fault.Campaign(42, fault.CampaignConfig{Horizon: 120_000, Domains: []mem.Domain{1}, MaxStorm: 4_000, Events: 12})
	run := func(secret int64) []audit.Sample {
		vt, err := victim.DocDistTrace(secret, victim.DefaultDocDist())
		if err != nil {
			t.Fatal(err)
		}
		cfg := config.Default(2, config.DAGguise)
		sys, err := New(cfg, []CoreSpec{
			{Name: "docdist", Source: &trace.Loop{Inner: vt}, Protected: true},
			specFor(t, "lbm", 5, false),
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.AttachFaults(sched); err != nil {
			t.Fatal(err)
		}
		tap := audit.NewTap()
		sys.AuditResponses(1, tap)
		if err := sys.RunChecked(120_000); err != nil {
			t.Fatal(err)
		}
		return tap.Samples()
	}
	a := run(11)
	b := run(12)
	if len(a) != len(b) {
		t.Fatalf("lengths %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("diverge at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	t.Logf("identical tap streams, %d samples", len(a))
}
