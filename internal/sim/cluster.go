package sim

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"

	"dagguise/internal/audit"
	"dagguise/internal/config"
	"dagguise/internal/dram"
	"dagguise/internal/fault"
	"dagguise/internal/mem"
	"dagguise/internal/memctrl"
	"dagguise/internal/rdag"
	"dagguise/internal/rng"
	"dagguise/internal/shaper"
)

// clusterMaxOutstanding bounds each tenant's in-flight requests, standing in
// for the MSHR limit of a real core's memory interface.
const clusterMaxOutstanding = 4

// Cluster is the datacenter-scale machine of the fleet fabric: N memory
// channels, each with its own controller and DRAM device, shared by up to
// hundreds of concurrent security domains. Tenant requests hash across the
// channels via mem.RouteChannel; under DAGguise every protected tenant gets
// one request shaper per channel, driven by that channel's defense rDAG.
//
// A Cluster may own only a slice [ChanLo, ChanHi) of the configured
// channels — the unit of fleet sharding. Requests the router sends outside
// the slice are counted as remote and complete immediately (they are
// simulated by the shard that owns that slice), which keeps every shard a
// pure function of its descriptor.
//
// The machine is deterministic end to end: tenants are open-loop generators
// over rng.Derive substreams, all per-entity iteration is in index order,
// and SaveState/RestoreState round-trip the complete mutable state.
type Cluster struct {
	cfg    config.MultiChannelConfig
	chanLo int
	chanHi int
	seed   int64
	secret int

	now     uint64
	nextID  uint64
	tenants []*clusterTenant
	chans   []*channelUnit

	// faults answers per-cycle fault queries (nil = clean run). Every
	// query is keyed on (cycle, domain) only, so twin runs differing only
	// in secret experience bit-identical fault sequences — the property
	// that extends the non-interference argument to the faulty machine.
	faults        *fault.Injector
	faultDeferred uint64
}

// clusterTenant is one open-loop security domain. Protected tenants carry
// the secret in their traffic intensity: the generated address stream and
// the rng draw sequence are secret-independent by construction, only the
// inter-request gap is modulated by secret bits, so any secret-dependent
// difference an unprotected tenant observes is a genuine timing channel.
type clusterTenant struct {
	index     int
	dom       mem.Domain
	protected bool
	gapBase   uint64
	rng       *rng.Rand

	nextAt      uint64
	generated   uint64
	outstanding int
	pending     *mem.Request

	issued    uint64
	completed uint64
	remote    uint64
	stalls    uint64

	tap      *audit.Tap // response-timing tap; unprotected tenants only
	lastDone uint64
}

// channelUnit is one memory channel: a single-channel address mapper, a
// DRAM device, a controller, the per-protected-tenant shapers (DAGguise)
// and a FIFO staging the shaper egress toward the transaction queue.
type channelUnit struct {
	index   int
	mapper  *mem.Mapper
	dev     *dram.Device
	ctrl    *memctrl.Controller
	shapers []*shaper.Shaper // indexed by protected-tenant index; nil off DAGguise
	egress  []mem.Request
	// deferred holds responses withheld by RespDelay/RespDrop faults,
	// redelivered in insertion order once their cycle arrives.
	deferred []DeferredResponse
}

// NewCluster builds a cluster over the channel slice [chanLo, chanHi) of
// the configuration. seed fixes every derived tenant and shaper stream;
// secret is the value the protected tenants' traffic intensity encodes
// (the twin-run observable of the non-interference audit).
func NewCluster(cfg config.MultiChannelConfig, chanLo, chanHi int, seed int64, secret int) (*Cluster, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if chanLo < 0 || chanHi > cfg.Channels || chanLo >= chanHi {
		return nil, fmt.Errorf("sim: channel slice [%d, %d) outside [0, %d)", chanLo, chanHi, cfg.Channels)
	}
	switch cfg.Scheme {
	case config.Insecure, config.DAGguise:
	default:
		return nil, fmt.Errorf("sim: cluster supports the insecure and dagguise schemes, got %s", cfg.Scheme)
	}
	c := &Cluster{cfg: cfg, chanLo: chanLo, chanHi: chanHi, seed: seed, secret: secret}
	alloc := func() uint64 {
		c.nextID++
		return c.nextID
	}
	for i := 0; i < cfg.Domains; i++ {
		t := &clusterTenant{
			index:     i,
			dom:       mem.Domain(i + 1),
			protected: i < cfg.Protected,
			rng:       rng.New(rng.Derive(seed, fmt.Sprintf("tenant-%05d", i))),
		}
		if t.protected {
			// Victims alternate hot bursts and idle phases; the phase
			// pattern is the secret (see gap()).
			t.gapBase = 256
		} else {
			t.gapBase = 48 + uint64(i%5)*16
			t.tap = audit.NewTap()
		}
		c.tenants = append(c.tenants, t)
	}
	for ch := chanLo; ch < chanHi; ch++ {
		mapper, err := mem.NewMapper(cfg.Geometry)
		if err != nil {
			return nil, err
		}
		dev := dram.New(cfg.Timing, mapper, cfg.ClosedRow())
		// The capacity must cover the per-domain partitions in full, or a
		// checkpoint cut at high occupancy could fail queue validation on
		// restore.
		ctrl := memctrl.New(dev, mapper, memctrl.FRFCFS{}, cfg.QueueDepth*cfg.Domains)
		u := &channelUnit{index: ch, mapper: mapper, dev: dev, ctrl: ctrl}
		if cfg.Scheme == config.DAGguise {
			ctrl.PartitionQueue(cfg.QueueDepth)
			u.shapers = make([]*shaper.Shaper, cfg.Protected)
			for i := 0; i < cfg.Protected; i++ {
				drv, err := rdag.NewPatternDriver(cfg.ChannelDefenses[ch])
				if err != nil {
					return nil, err
				}
				sseed := rng.Derive(seed, fmt.Sprintf("shaper-ch%04d-dom%05d", ch, i+1))
				u.shapers[i] = shaper.New(mem.Domain(i+1), drv, mapper, cfg.ShaperDepth, alloc, sseed)
			}
		}
		c.chans = append(c.chans, u)
	}
	return c, nil
}

// Config returns the configuration the cluster was built from.
func (c *Cluster) Config() config.MultiChannelConfig { return c.cfg }

// Slice returns the channel slice [lo, hi) this cluster owns.
func (c *Cluster) Slice() (lo, hi int) { return c.chanLo, c.chanHi }

// Now returns the current cycle.
func (c *Cluster) Now() uint64 { return c.now }

// AttachFaults wires a deterministic fault schedule into the cluster:
// DRAM stall windows are registered with every channel's device model,
// and the remaining kinds are consulted cycle by cycle during tick.
// Attach once, before running (a checkpoint restore replaces the device
// windows with the saved set, so attach-then-restore is also safe). The
// same schedule attached to twin clusters produces bit-identical fault
// sequences regardless of their secrets.
func (c *Cluster) AttachFaults(sched fault.Schedule) error {
	in, err := fault.NewInjector(sched)
	if err != nil {
		return err
	}
	c.faults = in
	for _, u := range c.chans {
		for _, w := range in.StallWindows() {
			u.dev.InjectStallWindow(w.Start, w.End())
		}
	}
	return nil
}

// gap returns tenant t's next inter-request gap. Protected tenants walk the
// secret's bits: a set bit stretches the gap by 8x the base (an idle
// phase), a clear bit keeps the burst pace. The jitter draw is taken
// unconditionally so the rng position — and with it the secret-independent
// address stream — never depends on the secret.
func (c *Cluster) gap(t *clusterTenant) uint64 {
	jitter := uint64(t.rng.Int63n(32))
	if !t.protected {
		return t.gapBase + jitter
	}
	bit := (uint64(c.secret) >> (t.generated % 16)) & 1
	return t.gapBase/8 + jitter + bit*t.gapBase*8
}

// generate draws tenant t's next request: a uniformly random line address
// in the configured capacity. Writes are deterministic (every 16th
// request), so the kind mix costs no rng draws.
func (c *Cluster) generate(t *clusterTenant) mem.Request {
	geo := c.cfg.Geometry
	capBytes := uint64(geo.CapacityGiB)
	if capBytes == 0 {
		capBytes = 4
	}
	lines := (capBytes << 30) / uint64(geo.LineBytes)
	addr := (uint64(t.rng.Int63()) % lines) * uint64(geo.LineBytes)
	kind := mem.Read
	if t.generated%16 == 15 {
		kind = mem.Write
	}
	t.generated++
	c.nextID++
	return mem.Request{ID: c.nextID, Addr: addr, Kind: kind, Domain: t.dom, Issue: c.now}
}

// issue routes one request. It reports whether the request left the tenant
// (accepted locally, or remote and therefore out of this shard's hands).
func (c *Cluster) issue(t *clusterTenant, req mem.Request) bool {
	ch := mem.RouteChannel(req.Domain, req.Addr, c.cfg.Channels)
	if ch < c.chanLo || ch >= c.chanHi {
		t.remote++
		return true
	}
	u := c.chans[ch-c.chanLo]
	if t.protected && c.cfg.Scheme == config.DAGguise {
		if c.faults != nil && c.faults.ShaperRejects(req.Domain, c.now) {
			// Backpressure burst: the shaper refuses the enqueue and the
			// core stalls. The shaped egress stream is unaffected — the
			// shaper keeps following its defense rDAG.
			return false
		}
		ok, err := u.shapers[t.index].Enqueue(req, c.now)
		if err != nil {
			// Routing is exact by construction; a mismatch is a bug.
			panic(err)
		}
		if !ok {
			return false
		}
	} else if !u.ctrl.Enqueue(req, c.now) {
		return false
	}
	t.outstanding++
	t.issued++
	return true
}

// tickTenants advances every tenant's generator in index order.
func (c *Cluster) tickTenants() {
	for _, t := range c.tenants {
		if t.pending != nil {
			if c.issue(t, *t.pending) {
				t.pending = nil
			} else {
				t.stalls++
			}
			continue
		}
		if c.now < t.nextAt || t.outstanding >= clusterMaxOutstanding {
			continue
		}
		req := c.generate(t)
		t.nextAt = c.now + c.gap(t)
		if !c.issue(t, req) {
			t.pending = &req
			t.stalls++
		}
	}
}

// deliver hands a completed response back to its tenant, recording the
// completion gap on tapped (unprotected) tenants — the attacker-observable
// stream the non-interference audit digests.
func (c *Cluster) deliver(resp mem.Response) {
	idx := int(resp.Domain) - 1
	if idx < 0 || idx >= len(c.tenants) {
		return
	}
	t := c.tenants[idx]
	if t.outstanding > 0 {
		t.outstanding--
	}
	t.completed++
	if t.tap != nil {
		t.tap.Record(c.now, c.now-t.lastDone)
		t.lastDone = c.now
	}
}

// tickChannel advances one channel: deferred responses whose redelivery
// cycle arrived dispatch first, shaper emissions stage into the egress
// FIFO, the FIFO drains into the transaction queue in order (unless an
// egress-stall fault blocks its head), the controller issues and
// completes, and responses route back through the emitting shaper (which
// swallows fakes) or directly to the tenant — unless a RespDelay/RespDrop
// fault withholds them into the deferred queue.
func (c *Cluster) tickChannel(u *channelUnit) {
	if len(u.deferred) > 0 {
		kept := u.deferred[:0]
		for _, d := range u.deferred {
			if d.Until <= c.now {
				c.dispatch(u, d.Resp)
			} else {
				kept = append(kept, d)
			}
		}
		u.deferred = kept
	}
	for _, sh := range u.shapers {
		u.egress = append(u.egress, sh.Tick(c.now)...)
	}
	for len(u.egress) > 0 {
		if c.faults != nil && c.faults.EgressStalled(u.egress[0].Domain, c.now) {
			break
		}
		if !u.ctrl.Enqueue(u.egress[0], c.now) {
			break
		}
		u.egress = u.egress[1:]
	}
	for _, resp := range u.ctrl.Tick(c.now) {
		if c.faults != nil {
			if until, ok := c.faults.DeferResponse(resp.Domain, c.now); ok {
				u.deferred = append(u.deferred, DeferredResponse{Until: until, Resp: resp})
				c.faultDeferred++
				continue
			}
		}
		c.dispatch(u, resp)
	}
}

// dispatch routes one completed response to its consumer: the emitting
// shaper for protected domains under DAGguise (late redeliveries
// included), the tenant directly otherwise.
func (c *Cluster) dispatch(u *channelUnit, resp mem.Response) {
	idx := int(resp.Domain) - 1
	if c.cfg.Scheme == config.DAGguise && idx >= 0 && idx < c.cfg.Protected {
		real, err := u.shapers[idx].OnResponse(resp, c.now)
		if err != nil {
			panic(err)
		}
		if real {
			c.deliver(resp)
		}
		return
	}
	c.deliver(resp)
}

// Tick advances the cluster one cycle.
func (c *Cluster) Tick() {
	c.tickTenants()
	for _, u := range c.chans {
		c.tickChannel(u)
	}
	c.now++
}

// Run advances the cluster by the given number of cycles.
func (c *Cluster) Run(cycles uint64) {
	for end := c.now + cycles; c.now < end; {
		c.Tick()
	}
}

// AuditDigest hashes the attacker-observable record: every unprotected
// tenant's response-timing samples, walked in tenant index order. Two twin
// runs differing only in the protected tenants' secret must produce equal
// digests under a sound defense; any difference is interference.
func (c *Cluster) AuditDigest() string {
	h := sha256.New()
	var buf [8]byte
	for _, t := range c.tenants {
		if t.tap == nil {
			continue
		}
		binary.LittleEndian.PutUint64(buf[:], uint64(t.index))
		h.Write(buf[:])
		samples := t.tap.Samples()
		binary.LittleEndian.PutUint64(buf[:], uint64(len(samples)))
		h.Write(buf[:])
		for _, s := range samples {
			binary.LittleEndian.PutUint64(buf[:], s.Cycle)
			h.Write(buf[:])
			binary.LittleEndian.PutUint64(buf[:], s.Value)
			h.Write(buf[:])
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// ClusterCounters aggregates the cluster's deterministic counters; every
// field is a pure function of the (config, slice, seed, secret, cycles)
// tuple, so they are safe to fold into byte-stable fleet reports.
type ClusterCounters struct {
	Cycles          uint64   `json:"cycles"`
	Tenants         int      `json:"tenants"`
	Issued          uint64   `json:"issued"`
	Completed       uint64   `json:"completed"`
	Remote          uint64   `json:"remote"`
	Stalls          uint64   `json:"stalls"`
	ShaperForwarded uint64   `json:"shaper_forwarded"`
	ShaperFakes     uint64   `json:"shaper_fakes"`
	TapSamples      uint64   `json:"tap_samples"`
	ChannelIssued   []uint64 `json:"channel_issued"`
	// Fault-campaign counters (zero — and absent from the JSON — on
	// clean runs, so clean reports are byte-identical to older ones).
	FaultDeferred  uint64 `json:"fault_deferred,omitempty"`
	FaultStallHits uint64 `json:"fault_stall_hits,omitempty"`
}

// Counters returns the cluster's aggregate counters.
func (c *Cluster) Counters() ClusterCounters {
	out := ClusterCounters{Cycles: c.now, Tenants: len(c.tenants)}
	for _, t := range c.tenants {
		out.Issued += t.issued
		out.Completed += t.completed
		out.Remote += t.remote
		out.Stalls += t.stalls
		if t.tap != nil {
			out.TapSamples += uint64(t.tap.Len())
		}
	}
	out.FaultDeferred = c.faultDeferred
	for _, u := range c.chans {
		out.ChannelIssued = append(out.ChannelIssued, u.ctrl.Stats().Issued)
		out.FaultStallHits += u.dev.InjectedStallHits()
		for _, sh := range u.shapers {
			st := sh.Stats()
			out.ShaperForwarded += st.Forwarded
			out.ShaperFakes += st.Fakes
		}
	}
	return out
}
