package sim

import (
	"errors"
	"testing"

	"dagguise/internal/config"
	"dagguise/internal/fault"
	"dagguise/internal/mem"
	"dagguise/internal/shaper"
	"dagguise/internal/trace"
	"dagguise/internal/victim"
)

// faultVictimSpec is docdistSpec with a selectable secret seed, for the
// non-interference runs that differ only in the victim's secret.
func faultVictimSpec(t *testing.T, secret int64) CoreSpec {
	t.Helper()
	tr, err := victim.DocDistTrace(secret, victim.DefaultDocDist())
	if err != nil {
		t.Fatal(err)
	}
	s := docdistSpec(t, true)
	s.Source = &trace.Loop{Inner: tr}
	return s
}

// TestNonInterferenceUnderFaults is the headline robustness property: two
// DAGguise runs that differ ONLY in the victim's secret, subjected to an
// identical randomized fault schedule (DRAM storms, response delay/drop,
// shaper backpressure, egress stalls), must produce bit-identical shaped
// egress timing traces. Fault injection is keyed on (cycle, domain) only,
// so it cannot act as a secret-dependent disturbance — this extends the
// paper's security argument from the nominal machine to the faulty one.
func TestNonInterferenceUnderFaults(t *testing.T) {
	const cycles = 80_000
	sched := fault.Campaign(1234, fault.CampaignConfig{
		Horizon:  60_000,
		Domains:  []mem.Domain{1},
		MaxStorm: 2_000, // well under the watchdog stall budget
	})
	run := func(secret int64) []EgressEvent {
		cfg := config.Default(2, config.DAGguise)
		sys, err := New(cfg, []CoreSpec{faultVictimSpec(t, secret), specFor(t, "lbm", 5, false)})
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.AttachFaults(sched); err != nil {
			t.Fatal(err)
		}
		sys.EnableEgressTrace()
		if err := sys.RunChecked(cycles); err != nil {
			t.Fatalf("secret %d: %v", secret, err)
		}
		return sys.EgressTrace(1)
	}
	a := run(11)
	b := run(12)
	if len(a) < 100 {
		t.Fatalf("trace too short to be meaningful: %d events", len(a))
	}
	if len(a) != len(b) {
		t.Fatalf("trace lengths diverge: secret A %d events, secret B %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at event %d: secret A %+v, secret B %+v", i, a[i], b[i])
		}
	}
}

// TestPermanentStallBecomesDeadlockError checks the watchdog's core
// promise: a DRAM device that never recovers turns into a structured
// deadlock SimError within the stall budget instead of hanging the run.
func TestPermanentStallBecomesDeadlockError(t *testing.T) {
	cfg := config.Default(2, config.Insecure)
	sys, err := New(cfg, []CoreSpec{docdistSpec(t, false), specFor(t, "lbm", 5, false)})
	if err != nil {
		t.Fatal(err)
	}
	err = sys.AttachFaults(fault.Schedule{Events: []fault.Event{
		{Kind: fault.DRAMStall, Start: 2_000, Duration: fault.Forever},
	}})
	if err != nil {
		t.Fatal(err)
	}
	sys.SetWatchdog(Watchdog{StallBudget: 8_000})
	err = sys.RunChecked(200_000)
	if err == nil {
		t.Fatal("permanently stalled DRAM ran to completion")
	}
	var serr *SimError
	if !errors.As(err, &serr) {
		t.Fatalf("error = %T (%v), want *SimError", err, err)
	}
	if serr.Invariant != InvariantDeadlock {
		t.Fatalf("invariant = %s, want %s (%v)", serr.Invariant, InvariantDeadlock, serr)
	}
	if serr.Cycle <= 2_000 {
		t.Fatalf("deadlock reported at cycle %d, before the storm began", serr.Cycle)
	}
	if sys.Now() > 100_000 {
		t.Fatalf("detection took until cycle %d; want bounded by the stall budget", sys.Now())
	}
	if len(serr.Queue) == 0 {
		t.Fatalf("deadlock error carries no queue snapshot: %v", serr)
	}
	if serr.Error() == "" {
		t.Fatal("empty error string")
	}
}

// TestFiniteStormRecovers checks the flip side: a bounded refresh storm
// shorter than the stall budget must NOT trip the watchdog, and the
// machine must make normal progress once the storm clears.
func TestFiniteStormRecovers(t *testing.T) {
	cfg := config.Default(2, config.DAGguise)
	sys, err := New(cfg, []CoreSpec{docdistSpec(t, true), specFor(t, "lbm", 5, false)})
	if err != nil {
		t.Fatal(err)
	}
	err = sys.AttachFaults(fault.Schedule{Events: []fault.Event{
		{Kind: fault.DRAMStall, Start: 5_000, Duration: 15_000},
	}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.MeasureChecked(10_000, 100_000)
	if err != nil {
		t.Fatalf("finite storm tripped the watchdog: %v", err)
	}
	for _, c := range res.Cores {
		if c.IPC <= 0 {
			t.Fatalf("core %s made no progress after the storm", c.Name)
		}
	}
	if _, ok := res.EgressDepths[1]; !ok {
		t.Fatalf("no egress depth recorded for the shaped domain: %+v", res.EgressDepths)
	}
	if res.EgressMaxDepth < res.EgressDepths[1] {
		t.Fatalf("EgressMaxDepth %d below domain depth %d", res.EgressMaxDepth, res.EgressDepths[1])
	}
}

// TestEgressStallTriggersLivelock checks the per-domain egress high-water
// invariant: a permanently blocked shaper→controller path makes emissions
// pile up until the livelock invariant fires for that domain.
func TestEgressStallTriggersLivelock(t *testing.T) {
	cfg := config.Default(2, config.DAGguise)
	sys, err := New(cfg, []CoreSpec{docdistSpec(t, true), specFor(t, "lbm", 5, false)})
	if err != nil {
		t.Fatal(err)
	}
	err = sys.AttachFaults(fault.Schedule{Events: []fault.Event{
		{Kind: fault.EgressStall, Domain: 1, Start: 0, Duration: fault.Forever},
	}})
	if err != nil {
		t.Fatal(err)
	}
	// The pattern driver holds one slot in flight per sequence (8 here),
	// so depth plateaus near 8: a high-water mark of 4 must trip.
	sys.SetWatchdog(Watchdog{EgressHighWater: 4})
	err = sys.RunChecked(50_000)
	var serr *SimError
	if !errors.As(err, &serr) {
		t.Fatalf("error = %T (%v), want *SimError", err, err)
	}
	if serr.Invariant != InvariantLivelock {
		t.Fatalf("invariant = %s, want %s (%v)", serr.Invariant, InvariantLivelock, serr)
	}
	if serr.Domain != 1 {
		t.Fatalf("livelock attributed to domain %d, want 1 (%v)", serr.Domain, serr)
	}
	if serr.Egress[1] <= 4 {
		t.Fatalf("egress snapshot %v does not show the overflow", serr.Egress)
	}
}

// TestCorruptedResponseIsProtocolError checks the protocol invariant: a
// response whose ID matches no outstanding request (a corrupted or
// duplicated completion) surfaces as a protocol SimError wrapping the
// shaper's typed error, instead of a panic.
func TestCorruptedResponseIsProtocolError(t *testing.T) {
	cfg := config.Default(2, config.DAGguise)
	sys, err := New(cfg, []CoreSpec{docdistSpec(t, true), specFor(t, "lbm", 5, false)})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.RunChecked(5_000); err != nil {
		t.Fatal(err)
	}
	// Inject a bogus completion on the controller→core boundary, as a
	// dropped-and-corrupted redelivery would.
	sys.deferred = append(sys.deferred, deferredResp{at: sys.Now(), resp: mem.Response{ID: 1 << 62, Domain: 1}})
	err = sys.TickChecked()
	var serr *SimError
	if !errors.As(err, &serr) {
		t.Fatalf("error = %T (%v), want *SimError", err, err)
	}
	if serr.Invariant != InvariantProtocol {
		t.Fatalf("invariant = %s, want %s (%v)", serr.Invariant, InvariantProtocol, serr)
	}
	var uerr *shaper.UnknownResponseError
	if !errors.As(err, &uerr) {
		t.Fatalf("underlying error = %v, want *shaper.UnknownResponseError", serr.Err)
	}
}

// TestAttachFaultsRejectsInvalidSchedule checks schedule validation at the
// system boundary.
func TestAttachFaultsRejectsInvalidSchedule(t *testing.T) {
	cfg := config.Default(2, config.Insecure)
	sys, err := New(cfg, []CoreSpec{docdistSpec(t, false), specFor(t, "lbm", 5, false)})
	if err != nil {
		t.Fatal(err)
	}
	bad := fault.Schedule{Events: []fault.Event{{Kind: fault.DRAMStall, Start: 10, Duration: 0}}}
	if err := sys.AttachFaults(bad); err == nil {
		t.Fatal("zero-duration event accepted")
	}
}
