package sim

import (
	"encoding/json"
	"testing"

	"dagguise/internal/config"
)

func clusterCfg(t *testing.T, channels, domains int, scheme config.Scheme) config.MultiChannelConfig {
	t.Helper()
	cfg := config.DefaultMultiChannel(channels, domains, scheme)
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	return cfg
}

func TestClusterDeterministic(t *testing.T) {
	for _, scheme := range []config.Scheme{config.Insecure, config.DAGguise} {
		cfg := clusterCfg(t, 2, 12, scheme)
		run := func() (string, ClusterCounters) {
			c, err := NewCluster(cfg, 0, 2, 42, 11)
			if err != nil {
				t.Fatal(err)
			}
			c.Run(12000)
			return c.AuditDigest(), c.Counters()
		}
		d1, c1 := run()
		d2, c2 := run()
		if d1 != d2 {
			t.Fatalf("%s: identical runs digest differently: %s vs %s", scheme, d1, d2)
		}
		b1, _ := json.Marshal(c1)
		b2, _ := json.Marshal(c2)
		if string(b1) != string(b2) {
			t.Fatalf("%s: identical runs count differently:\n%s\n%s", scheme, b1, b2)
		}
		if c1.Issued == 0 || c1.Completed == 0 || c1.TapSamples == 0 {
			t.Fatalf("%s: cluster did no observable work: %+v", scheme, c1)
		}
	}
}

// TestClusterNonInterference is the headline security property at cluster
// scale: twin runs differing only in the protected tenants' secret must be
// indistinguishable to the unprotected tenants under DAGguise, and
// distinguishable under the insecure baseline (otherwise the observable is
// too weak to mean anything).
func TestClusterNonInterference(t *testing.T) {
	digest := func(scheme config.Scheme, secret int) string {
		cfg := clusterCfg(t, 2, 12, scheme)
		c, err := NewCluster(cfg, 0, 2, 1234, secret)
		if err != nil {
			t.Fatal(err)
		}
		c.Run(20000)
		return c.AuditDigest()
	}
	if a, b := digest(config.DAGguise, 11), digest(config.DAGguise, 12); a != b {
		t.Errorf("DAGguise leaks: secret 11 digest %s != secret 12 digest %s", a, b)
	}
	if a, b := digest(config.Insecure, 11), digest(config.Insecure, 12); a == b {
		t.Errorf("insecure baseline did not leak; the attacker observable is too coarse")
	}
}

// TestClusterVictimStreamSecretIndependent pins the construction that makes
// the twin comparison sound: the protected tenants' rng positions (and so
// their address streams) do not depend on the secret, only their timing.
func TestClusterVictimStreamSecretIndependent(t *testing.T) {
	cfg := clusterCfg(t, 2, 8, config.Insecure)
	c, err := NewCluster(cfg, 0, 2, 7, 11)
	if err != nil {
		t.Fatal(err)
	}
	c.Run(15000)
	// The i-th generated request of a tenant must consume exactly 2 draws
	// (gap jitter + address) regardless of the secret's bit pattern, so a
	// victim's address stream is a pure function of (seed, request index).
	for _, tn := range c.tenants {
		if tn.generated > 0 && tn.rng.State().Draws != 2*tn.generated {
			t.Fatalf("tenant %d: %d draws for %d requests; rng cost must be exactly 2 draws/request",
				tn.index, tn.rng.State().Draws, tn.generated)
		}
	}
}

func TestClusterCheckpointRoundTrip(t *testing.T) {
	for _, scheme := range []config.Scheme{config.Insecure, config.DAGguise} {
		cfg := clusterCfg(t, 2, 10, scheme)
		ref, err := NewCluster(cfg, 0, 2, 99, 11)
		if err != nil {
			t.Fatal(err)
		}
		ref.Run(16000)

		half, err := NewCluster(cfg, 0, 2, 99, 11)
		if err != nil {
			t.Fatal(err)
		}
		half.Run(8000)
		st, err := half.SaveState()
		if err != nil {
			t.Fatal(err)
		}
		blob, err := json.Marshal(st)
		if err != nil {
			t.Fatal(err)
		}
		var decoded ClusterState
		if err := json.Unmarshal(blob, &decoded); err != nil {
			t.Fatal(err)
		}
		resumed, err := NewCluster(cfg, 0, 2, 99, 11)
		if err != nil {
			t.Fatal(err)
		}
		if err := resumed.RestoreState(&decoded); err != nil {
			t.Fatal(err)
		}
		resumed.Run(8000)

		if got, want := resumed.AuditDigest(), ref.AuditDigest(); got != want {
			t.Fatalf("%s: resumed digest %s != uninterrupted %s", scheme, got, want)
		}
		refSt, err := ref.SaveState()
		if err != nil {
			t.Fatal(err)
		}
		resSt, err := resumed.SaveState()
		if err != nil {
			t.Fatal(err)
		}
		refBlob, _ := json.Marshal(refSt)
		resBlob, _ := json.Marshal(resSt)
		if string(refBlob) != string(resBlob) {
			t.Fatalf("%s: resumed final state differs from uninterrupted run", scheme)
		}
	}
}

// TestClusterCheckpointBytesDeterministic guards the byte stability of the
// serialized state itself (satellite: sorted keys everywhere a map feeds an
// exported artifact).
func TestClusterCheckpointBytesDeterministic(t *testing.T) {
	cfg := clusterCfg(t, 2, 10, config.DAGguise)
	snap := func() []byte {
		c, err := NewCluster(cfg, 0, 2, 5, 11)
		if err != nil {
			t.Fatal(err)
		}
		c.Run(9000)
		st, err := c.SaveState()
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(st)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	if a, b := snap(), snap(); string(a) != string(b) {
		t.Fatal("identical cluster runs serialize to different bytes")
	}
}

func TestClusterChannelSlice(t *testing.T) {
	cfg := clusterCfg(t, 4, 16, config.Insecure)
	c, err := NewCluster(cfg, 1, 3, 21, 11)
	if err != nil {
		t.Fatal(err)
	}
	c.Run(8000)
	counters := c.Counters()
	if counters.Remote == 0 {
		t.Fatal("a half-slice cluster should route some traffic remotely")
	}
	if len(counters.ChannelIssued) != 2 {
		t.Fatalf("slice [1,3) should own 2 channels, counters cover %d", len(counters.ChannelIssued))
	}
	if counters.ChannelIssued[0] == 0 || counters.ChannelIssued[1] == 0 {
		t.Fatalf("both owned channels should see traffic: %v", counters.ChannelIssued)
	}
	if _, err := NewCluster(cfg, 3, 3, 21, 11); err == nil {
		t.Fatal("empty channel slice accepted")
	}
	if _, err := NewCluster(cfg, 0, 5, 21, 11); err == nil {
		t.Fatal("out-of-range channel slice accepted")
	}
}

func TestClusterRejectsUnsupportedScheme(t *testing.T) {
	cfg := clusterCfg(t, 2, 8, config.FSBTA)
	if _, err := NewCluster(cfg, 0, 2, 1, 11); err == nil {
		t.Fatal("cluster accepted a scheme it does not implement")
	}
}
