package sim

import (
	"context"
	"errors"
	"testing"
	"time"

	"dagguise/internal/config"
	"dagguise/internal/fault"
)

func twoCore(t *testing.T, scheme config.Scheme) *System {
	t.Helper()
	cfg := config.Default(2, scheme)
	sys, err := New(cfg, []CoreSpec{docdistSpec(t, true), specFor(t, "lbm", 5, false)})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestRunCheckedCtxHonoursCancel(t *testing.T) {
	sys := twoCore(t, config.DAGguise)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := sys.RunCheckedCtx(ctx, 100_000); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if sys.now != 0 {
		t.Fatalf("pre-canceled context still advanced the machine to cycle %d", sys.now)
	}
}

func TestRunCheckedCtxDeadlineStopsMidRun(t *testing.T) {
	sys := twoCore(t, config.DAGguise)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	err := sys.RunCheckedCtx(ctx, 1<<40) // far more cycles than 10ms allows
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want context.DeadlineExceeded", err)
	}
	if sys.now == 0 {
		t.Fatal("deadline fired before any progress")
	}
	// The machine stopped at a consistent boundary: it must run on cleanly.
	if err := sys.RunChecked(10_000); err != nil {
		t.Fatalf("machine not resumable after ctx stop: %v", err)
	}
}

func TestRunCheckedCtxMatchesRun(t *testing.T) {
	a := twoCore(t, config.DAGguise)
	a.EnableEgressTrace()
	a.Run(50_000)

	b := twoCore(t, config.DAGguise)
	b.EnableEgressTrace()
	if err := b.RunCheckedCtx(context.Background(), 50_000); err != nil {
		t.Fatal(err)
	}
	ta, tb := a.EgressTrace(1), b.EgressTrace(1)
	if len(ta) == 0 || len(ta) != len(tb) {
		t.Fatalf("egress traces differ: %d vs %d events", len(ta), len(tb))
	}
	for i := range ta {
		if ta[i] != tb[i] {
			t.Fatalf("event %d: %+v vs %+v", i, ta[i], tb[i])
		}
	}
}

func TestMeasureCheckedCtxCancel(t *testing.T) {
	sys := twoCore(t, config.Insecure)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sys.MeasureCheckedCtx(ctx, 10_000, 10_000); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

// TestWatchdogTripLeavesSystemRestartable pins the recovery contract the
// campaign runner depends on: a watchdog deadlock report mid-run must leave
// the machine in a consistent state, so that widening the budget (or
// clearing the stall) lets the same System resume and finish.
func TestWatchdogTripLeavesSystemRestartable(t *testing.T) {
	sys := twoCore(t, config.DAGguise)
	// A finite DRAM stall longer than the stall budget: the watchdog must
	// report deadlock while the storm is still in force.
	err := sys.AttachFaults(fault.Schedule{Events: []fault.Event{
		{Kind: fault.DRAMStall, Start: 2_000, Duration: 40_000},
	}})
	if err != nil {
		t.Fatal(err)
	}
	sys.SetWatchdog(Watchdog{StallBudget: 5_000})
	runErr := sys.RunChecked(100_000)
	var se *SimError
	if !errors.As(runErr, &se) || se.Invariant != InvariantDeadlock {
		t.Fatalf("got %v, want deadlock SimError", runErr)
	}
	tripCycle := sys.now

	// Recovery: widen the budget past the remaining storm and run on. The
	// same System must make it to the end without another trip.
	sys.SetWatchdog(Watchdog{StallBudget: 60_000})
	if err := sys.RunChecked(100_000 - (tripCycle - 0)); err != nil {
		t.Fatalf("system not restartable after watchdog trip: %v", err)
	}
	if sys.now < 100_000 {
		t.Fatalf("resumed run stopped early at cycle %d", sys.now)
	}

	// And the restarted machine still checkpoints cleanly.
	if _, err := sys.SaveState(); err != nil {
		t.Fatalf("post-recovery SaveState failed: %v", err)
	}
}
