package sim

import (
	"fmt"
	"sort"

	"dagguise/internal/audit"
	"dagguise/internal/camouflage"
	"dagguise/internal/config"
	"dagguise/internal/cpu"
	"dagguise/internal/dram"
	"dagguise/internal/mem"
	"dagguise/internal/memctrl"
	"dagguise/internal/obs"
	"dagguise/internal/sched"
	"dagguise/internal/shaper"
)

// DomainRequests is one shaped domain's staged egress queue.
type DomainRequests struct {
	Domain mem.Domain    `json:"domain"`
	Reqs   []mem.Request `json:"reqs"`
}

// DomainInt is one (domain, int) pair, used for high-water marks.
type DomainInt struct {
	Domain mem.Domain `json:"domain"`
	V      int        `json:"v"`
}

// DomainU64 is one (domain, uint64) pair.
type DomainU64 struct {
	Domain mem.Domain `json:"domain"`
	V      uint64     `json:"v"`
}

// DeferredSave mirrors one fault-withheld response awaiting redelivery.
type DeferredSave struct {
	At   uint64       `json:"at"`
	Resp mem.Response `json:"resp"`
}

// DomainShaperState is one DAGguise shaper's state.
type DomainShaperState struct {
	Domain mem.Domain   `json:"domain"`
	State  shaper.State `json:"state"`
}

// DomainCamoState is one Camouflage shaper's state.
type DomainCamoState struct {
	Domain mem.Domain       `json:"domain"`
	State  camouflage.State `json:"state"`
}

// DomainTapState is one audit tap's recorded samples.
type DomainTapState struct {
	Domain  mem.Domain     `json:"domain"`
	Samples []audit.Sample `json:"samples"`
}

// SystemState is the complete mutable state of a System, sufficient to
// resume a run bit-identically on a machine rebuilt from the same
// configuration and core specs. Scheme and core count are recorded for
// shape validation; everything structural (mapper, policy, wiring) is
// configuration and is rebuilt by New. Deliberately excluded: the egress
// trace ring (an observation log, not machine state — a resumed run's trace
// continues from empty and concatenates with the pre-save trace), the
// watchdog configuration (runtime policy, set by the caller) and the fault
// injector (pure function of its schedule; reattach before restoring).
type SystemState struct {
	Scheme config.Scheme `json:"scheme"`
	Cores  int           `json:"cores"`

	Now    uint64 `json:"now"`
	NextID uint64 `json:"next_id"`

	CoreStates []cpu.CoreState         `json:"core_states"`
	Device     dram.DeviceState        `json:"device"`
	Ctrl       memctrl.ControllerState `json:"ctrl"`
	Sched      *sched.State            `json:"sched,omitempty"`
	Shapers    []DomainShaperState     `json:"shapers,omitempty"`
	Camos      []DomainCamoState       `json:"camos,omitempty"`

	Egress   []DomainRequests `json:"egress,omitempty"`
	Deferred []DeferredSave   `json:"deferred,omitempty"`
	EgressHW []DomainInt      `json:"egress_hw,omitempty"`

	LastProgress uint64 `json:"last_progress"`
	LastRetired  uint64 `json:"last_retired"`

	AuditTaps []DomainTapState `json:"audit_taps,omitempty"`
	AuditLast []DomainU64      `json:"audit_last,omitempty"`

	// Obs is the observability registry snapshot when one is attached,
	// so metrics after a resume match an uninterrupted run.
	Obs *obs.Snapshot `json:"obs,omitempty"`

	// Spans is the flight-recorder span state when a recorder is
	// attached: spans open at Save reopen identically after a restore
	// (same IDs, parents, names and start cycles) and ID allocation
	// resumes without collision. Absent in checkpoints written before
	// the flight recorder existed, which restores as "no spans".
	Spans *obs.SpansState `json:"spans,omitempty"`
}

// SaveState captures the system's complete mutable state. Every core's
// trace source must be checkpointable (trace.Stateful); every shaper's
// driver must be checkpointable (both rdag drivers are).
func (s *System) SaveState() (*SystemState, error) {
	st := &SystemState{
		Scheme:       s.cfg.Scheme,
		Cores:        len(s.cores),
		Now:          s.now,
		NextID:       s.nextID,
		Device:       s.dev.SaveState(),
		Ctrl:         s.ctrl.SaveState(),
		LastProgress: s.lastProgress,
		LastRetired:  s.lastRetired,
		Obs:          s.mx.Snapshot(),
		Spans:        s.spans.SaveState(),
	}
	for _, c := range s.cores {
		cs, err := c.SaveState()
		if err != nil {
			return nil, err
		}
		st.CoreStates = append(st.CoreStates, cs)
	}
	if ss, ok := s.policy.(sched.StatefulScheduler); ok {
		sst := ss.SaveState()
		st.Sched = &sst
	}
	for _, dom := range s.order {
		if sh, ok := s.shapers[dom]; ok {
			shs, err := sh.SaveState()
			if err != nil {
				return nil, err
			}
			st.Shapers = append(st.Shapers, DomainShaperState{Domain: dom, State: shs})
		}
		if sh, ok := s.camos[dom]; ok {
			st.Camos = append(st.Camos, DomainCamoState{Domain: dom, State: sh.SaveState()})
		}
		if q := s.egress[dom]; len(q) > 0 {
			st.Egress = append(st.Egress, DomainRequests{Domain: dom, Reqs: append([]mem.Request(nil), q...)})
		}
	}
	for _, d := range s.deferred {
		st.Deferred = append(st.Deferred, DeferredSave{At: d.at, Resp: d.resp})
	}
	for dom, hw := range s.egressHW {
		st.EgressHW = append(st.EgressHW, DomainInt{Domain: dom, V: hw})
	}
	sort.Slice(st.EgressHW, func(i, j int) bool { return st.EgressHW[i].Domain < st.EgressHW[j].Domain })
	for dom, tap := range s.auditTaps {
		st.AuditTaps = append(st.AuditTaps, DomainTapState{Domain: dom, Samples: tap.SaveState()})
	}
	sort.Slice(st.AuditTaps, func(i, j int) bool { return st.AuditTaps[i].Domain < st.AuditTaps[j].Domain })
	for dom, last := range s.auditLast {
		st.AuditLast = append(st.AuditLast, DomainU64{Domain: dom, V: last})
	}
	sort.Slice(st.AuditLast, func(i, j int) bool { return st.AuditLast[i].Domain < st.AuditLast[j].Domain })
	return st, nil
}

// RestoreState overwrites the system's mutable state with a previously
// saved one. The system must have been built by New from the same
// configuration and equivalent core specs; attach any fault schedule
// before restoring (the device's saved stall-window set replaces whatever
// AttachFaults registered). Audit taps present in the state are restored
// only into taps already attached with AuditResponses.
func (s *System) RestoreState(st *SystemState) error {
	if st.Scheme != s.cfg.Scheme {
		return fmt.Errorf("sim: state was saved under scheme %v, system runs %v", st.Scheme, s.cfg.Scheme)
	}
	if st.Cores != len(s.cores) || len(st.CoreStates) != len(s.cores) {
		return fmt.Errorf("sim: state holds %d cores, system has %d", st.Cores, len(s.cores))
	}
	if len(st.Shapers) != len(s.shapers) || len(st.Camos) != len(s.camos) {
		return fmt.Errorf("sim: state holds %d shapers and %d camouflage shapers, system has %d and %d",
			len(st.Shapers), len(st.Camos), len(s.shapers), len(s.camos))
	}
	for i, c := range s.cores {
		if err := c.RestoreState(st.CoreStates[i]); err != nil {
			return err
		}
	}
	if err := s.dev.RestoreState(st.Device); err != nil {
		return err
	}
	if err := s.ctrl.RestoreState(st.Ctrl); err != nil {
		return err
	}
	if ss, ok := s.policy.(sched.StatefulScheduler); ok {
		if st.Sched == nil {
			return fmt.Errorf("sim: state missing %s arbiter state", s.policy.Name())
		}
		if err := ss.RestoreState(*st.Sched); err != nil {
			return err
		}
	} else if st.Sched != nil {
		return fmt.Errorf("sim: state carries %q arbiter state, system policy %s is stateless", st.Sched.Kind, s.policy.Name())
	}
	for _, ds := range st.Shapers {
		sh, ok := s.shapers[ds.Domain]
		if !ok {
			return fmt.Errorf("sim: state holds shaper state for domain %d, system has none", ds.Domain)
		}
		if err := sh.RestoreState(ds.State); err != nil {
			return err
		}
	}
	for _, ds := range st.Camos {
		sh, ok := s.camos[ds.Domain]
		if !ok {
			return fmt.Errorf("sim: state holds camouflage state for domain %d, system has none", ds.Domain)
		}
		if err := sh.RestoreState(ds.State); err != nil {
			return err
		}
	}
	for dom := range s.egress {
		delete(s.egress, dom)
	}
	for _, dq := range st.Egress {
		s.egress[dq.Domain] = append([]mem.Request(nil), dq.Reqs...)
	}
	s.deferred = s.deferred[:0]
	for _, d := range st.Deferred {
		s.deferred = append(s.deferred, deferredResp{at: d.At, resp: d.Resp})
	}
	s.egressHW = make(map[mem.Domain]int, len(st.EgressHW))
	for _, di := range st.EgressHW {
		s.egressHW[di.Domain] = di.V
	}
	for _, dom := range s.order {
		if _, ok := s.egressHW[dom]; !ok {
			s.egressHW[dom] = 0
		}
	}
	for _, dt := range st.AuditTaps {
		if tap, ok := s.auditTaps[dt.Domain]; ok {
			tap.RestoreState(dt.Samples)
		}
	}
	if len(st.AuditLast) > 0 && s.auditLast == nil {
		s.auditLast = make(map[mem.Domain]uint64)
	}
	for _, du := range st.AuditLast {
		s.auditLast[du.Domain] = du.V
	}
	if s.mx != nil && st.Obs != nil {
		if err := s.mx.Restore(st.Obs); err != nil {
			return err
		}
	}
	if s.spans != nil && st.Spans != nil {
		if err := s.spans.RestoreState(st.Spans); err != nil {
			return err
		}
	}
	s.now = st.Now
	s.nextID = st.NextID
	s.lastProgress = st.LastProgress
	s.lastRetired = st.LastRetired
	s.portErr = nil
	return nil
}
