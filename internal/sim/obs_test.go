package sim

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"dagguise/internal/config"
	"dagguise/internal/obs"
	"dagguise/internal/rdag"
	"dagguise/internal/trace"
	"dagguise/internal/victim"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// obsSystem builds the standard two-core DAGguise pair with a configurable
// victim secret, for observability and non-interference tests.
func obsSystem(t *testing.T, secret int64) *System {
	t.Helper()
	tr, err := victim.DocDistTrace(secret, victim.DefaultDocDist())
	if err != nil {
		t.Fatal(err)
	}
	cfg := config.Default(2, config.DAGguise)
	sys, err := New(cfg, []CoreSpec{
		{
			Name:      "docdist",
			Source:    &trace.Loop{Inner: tr},
			Protected: true,
			Defense:   rdag.Template{Sequences: 8, Weight: 150, WriteRatio: 0.25, Banks: 8},
		},
		specFor(t, "lbm", 5, false),
	})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// TestObservabilityNonInterference is the tentpole invariant: attaching a
// registry and tracer must leave the shaped egress stream bit-identical.
// It checks both axes — same secret with observability on vs off, and two
// different secrets both with observability on.
func TestObservabilityNonInterference(t *testing.T) {
	const cycles = 60_000
	run := func(secret int64, observe bool) []EgressEvent {
		sys := obsSystem(t, secret)
		if observe {
			sys.Observe(obs.NewRegistry(sys.NumDomains()), obs.NewTracer(1<<16))
		}
		sys.EnableEgressTrace()
		if err := sys.RunChecked(cycles); err != nil {
			t.Fatal(err)
		}
		return sys.EgressTrace(1)
	}
	plain := run(11, false)
	observed := run(11, true)
	if len(plain) == 0 {
		t.Fatal("empty egress trace")
	}
	if len(plain) != len(observed) {
		t.Fatalf("observability changed egress length: %d vs %d", len(plain), len(observed))
	}
	for i := range plain {
		if plain[i] != observed[i] {
			t.Fatalf("observability perturbed egress at event %d: %+v vs %+v", i, plain[i], observed[i])
		}
	}
	other := run(12, true)
	if len(observed) != len(other) {
		t.Fatalf("secret leaked into egress length with observability on: %d vs %d", len(observed), len(other))
	}
	for i := range observed {
		if observed[i] != other[i] {
			t.Fatalf("secret leaked at event %d with observability on: %+v vs %+v", i, observed[i], other[i])
		}
	}
}

// TestChromeTraceDeterminism pins byte-identical exports across two runs of
// the same seed: the trace pipeline introduces no map-order or timing
// nondeterminism.
func TestChromeTraceDeterminism(t *testing.T) {
	export := func() []byte {
		sys := obsSystem(t, 11)
		tr := obs.NewTracer(1 << 16)
		sys.Observe(obs.NewRegistry(sys.NumDomains()), tr)
		if err := sys.RunChecked(20_000); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := obs.WriteChromeTrace(&buf, tr.Events()); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := export(), export()
	if !bytes.Equal(a, b) {
		t.Fatal("two identical-seed runs produced different trace files")
	}
	if !json.Valid(a) {
		t.Fatal("trace export is not valid JSON")
	}
}

// TestChromeTraceGoldenRun pins the full export of a tiny two-domain run.
// Any change to event emission sites, ordering or the JSON shape shows up
// as a diff against testdata/tiny_run_trace.golden (regenerate with
// `go test ./internal/sim -run ChromeTraceGoldenRun -update`).
func TestChromeTraceGoldenRun(t *testing.T) {
	sys := obsSystem(t, 11)
	tr := obs.NewTracer(1 << 16)
	sys.Observe(obs.NewRegistry(sys.NumDomains()), tr)
	if err := sys.RunChecked(3_000); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := obs.WriteChromeTrace(&buf, tr.Events()); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "tiny_run_trace.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/sim -run ChromeTraceGoldenRun -update`)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatal("trace export drifted from golden file; if the change is intended, regenerate with -update")
	}
}

// TestMeasureMetricsPopulated checks that a measured window carries a
// populated metrics snapshot: row-buffer outcomes, shaper activity, core
// retirement and the per-tick occupancy histograms.
func TestMeasureMetricsPopulated(t *testing.T) {
	sys := obsSystem(t, 11)
	sys.Observe(obs.NewRegistry(sys.NumDomains()), nil)
	res := sys.Measure(5_000, 60_000)
	m := res.Metrics
	if m == nil {
		t.Fatal("Result.Metrics nil with a registry attached")
	}
	if m.CounterTotal(obs.CtrRowHits)+m.CounterTotal(obs.CtrRowMisses)+m.CounterTotal(obs.CtrRowConflicts) == 0 {
		t.Fatal("no row-buffer outcomes recorded")
	}
	if m.Counter(obs.CtrShaperForwarded, 1) == 0 || m.Counter(obs.CtrShaperFakes, 1) == 0 {
		t.Fatal("shaper emission counters empty for the protected domain")
	}
	if m.CounterTotal(obs.CtrRetired) == 0 {
		t.Fatal("no retirement recorded")
	}
	if m.CounterTotal(obs.CtrSchedPicks) == 0 {
		t.Fatal("no scheduling decisions recorded")
	}
	if m.CounterTotal(obs.CtrBusBusyCycles) == 0 {
		t.Fatal("no bus occupancy recorded")
	}
	for _, h := range []obs.Hist{obs.HistShaperQueue, obs.HistEgressQueue, obs.HistNodeWait} {
		if m.HistTotal(h, 1) == 0 {
			t.Errorf("histogram %v empty for the protected domain", h)
		}
	}
	if m.HistTotal(obs.HistMLP, 2) == 0 {
		t.Error("MLP histogram empty for the unprotected core")
	}
	if m.HistTotal(obs.HistQueueDepth, 0) == 0 {
		t.Error("controller queue-depth histogram empty")
	}
	// The delta must cover only the window, not warmup: per-tick samples
	// bound the observation count.
	if got := m.HistTotal(obs.HistShaperQueue, 1); got != 60_000 {
		t.Errorf("shaper occupancy samples = %d, want exactly one per window tick", got)
	}
}

// TestSlotCountersUnderFSBTA checks the secure-arbiter slot accounting
// reaches the registry (domain 0) when an FS-family scheme runs.
func TestSlotCountersUnderFSBTA(t *testing.T) {
	cfg := config.Default(2, config.FSBTA)
	sys, err := New(cfg, []CoreSpec{docdistSpec(t, true), specFor(t, "lbm", 5, false)})
	if err != nil {
		t.Fatal(err)
	}
	sys.Observe(obs.NewRegistry(sys.NumDomains()), nil)
	res := sys.Measure(2_000, 40_000)
	m := res.Metrics
	if m.Counter(obs.CtrSlotsSeen, 0) == 0 {
		t.Fatal("no slots seen")
	}
	if m.Counter(obs.CtrSlotsUsed, 0) == 0 {
		t.Fatal("no slots used")
	}
}

// TestEgressDepthsPopulatedOnMeasure is the regression test for the egress
// high-water accounting: the mark must be sampled before the per-tick
// drain, so a healthy DAGguise run reports the real peak staging occupancy
// (not zero) on the unchecked Measure path as well as the checked one.
func TestEgressDepthsPopulatedOnMeasure(t *testing.T) {
	sys := obsSystem(t, 11)
	res := sys.Measure(2_000, 40_000)
	if res.EgressDepths == nil {
		t.Fatal("EgressDepths nil for a shaped system")
	}
	if res.EgressDepths[1] == 0 {
		t.Fatal("EgressDepths[1] = 0: high-water mark sampled after the drain")
	}
	if res.EgressMaxDepth == 0 {
		t.Fatal("EgressMaxDepth = 0")
	}

	sysChecked := obsSystem(t, 11)
	resChecked, err := sysChecked.MeasureChecked(2_000, 40_000)
	if err != nil {
		t.Fatal(err)
	}
	if resChecked.EgressDepths[1] != res.EgressDepths[1] {
		t.Fatalf("checked and unchecked paths disagree: %d vs %d",
			resChecked.EgressDepths[1], res.EgressDepths[1])
	}
}
