// Package sim wires the full simulated machine together: trace-driven
// cores with private cache hierarchies, optional DAGguise or Camouflage
// shapers per protected domain, a shared memory controller with the
// configured scheduling policy (insecure FR-FCFS, FS, FS-BTA, TP), and the
// DRAM device model. It drives everything cycle by cycle and reports
// per-core IPC and bandwidth, the measurements behind Figures 7, 9 and 10.
package sim

import (
	"fmt"

	"dagguise/internal/audit"
	"dagguise/internal/cache"
	"dagguise/internal/camouflage"
	"dagguise/internal/config"
	"dagguise/internal/cpu"
	"dagguise/internal/dram"
	"dagguise/internal/fault"
	"dagguise/internal/mem"
	"dagguise/internal/memctrl"
	"dagguise/internal/obs"
	"dagguise/internal/rdag"
	"dagguise/internal/sched"
	"dagguise/internal/shaper"
	"dagguise/internal/trace"
)

// CPUFrequencyHz is the simulated core clock (Table 2).
const CPUFrequencyHz = 2.4e9

// privateQueueDepth is the per-domain private transaction queue depth of
// the shaper hardware (8 entries in the paper's area evaluation).
const privateQueueDepth = 8

// CoreSpec describes one core's software and protection needs.
type CoreSpec struct {
	// Name labels the core in results.
	Name string
	// Source supplies the core's trace (usually an infinite/looped one).
	Source trace.Source
	// Protected marks the core's domain as security sensitive. Under
	// DAGguise it gets a request shaper, under Camouflage a distribution
	// shaper, and under FS/FS-BTA/TP its own slot group.
	Protected bool
	// Defense is the defense rDAG template for DAGguise (ignored
	// otherwise). Zero value selects a reasonable default.
	Defense rdag.Template
	// Distribution is the target interval distribution for Camouflage.
	Distribution camouflage.Distribution
}

// System is a fully wired simulated machine.
type System struct {
	cfg    config.SystemConfig
	mapper *mem.Mapper
	dev    *dram.Device
	ctrl   *memctrl.Controller
	policy memctrl.Scheduler
	cores  []*cpu.Core
	specs  []CoreSpec

	shapers map[mem.Domain]*shaper.Shaper
	camos   map[mem.Domain]*camouflage.Shaper
	egress  map[mem.Domain][]mem.Request
	order   []mem.Domain // shaper service order, deterministic

	// Fault injection and forward-progress watchdog (nil/zero = off).
	faults   *fault.Injector
	wd       Watchdog
	deferred []deferredResp // responses withheld by delay/drop faults
	portErr  error          // routing violation raised inside a port this tick

	egressHW     map[mem.Domain]int // per-domain egress depth high-water marks
	lastProgress uint64             // last cycle with retirement or delivery
	lastRetired  uint64             // total retired instructions at lastProgress

	traceOn bool
	traces  map[mem.Domain][]EgressEvent

	// Observability (nil = off); measurement only, never consulted by the
	// simulated machine (see TestObservabilityNonInterference).
	mx    *obs.Registry
	tr    *obs.Tracer
	prof  *obs.CycleProfile
	spans *obs.Spans

	// Leakage-audit taps per domain (nil map = off); like mx/tr they are
	// write-only from the machine's perspective (see
	// TestAuditTapNonInterference).
	auditTaps map[mem.Domain]*audit.Tap
	auditLast map[mem.Domain]uint64

	now    uint64
	nextID uint64
}

// deferredResp is a response withheld by a delay/drop fault, due for
// redelivery at cycle at. The slice stays insertion-ordered, so redelivery
// order is deterministic: by due cycle, ties broken by original completion
// order.
type deferredResp struct {
	at   uint64
	resp mem.Response
}

// EgressEvent is one externally observable shaper emission: the cycle it
// entered the egress path, the flat bank it targets and its read/write
// kind. Addresses and IDs are deliberately excluded — they may differ
// between runs with different victim secrets, while the
// (cycle, bank, kind) stream is exactly what the paper proves
// secret-independent.
type EgressEvent struct {
	Cycle uint64
	Bank  int
	Kind  mem.Kind
}

// domainOf maps core index to its security domain (domains start at 1;
// domain 0 is reserved for unattributed traffic).
func domainOf(core int) mem.Domain { return mem.Domain(core + 1) }

// New builds a system from the configuration and core specs.
func New(cfg config.SystemConfig, specs []CoreSpec) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(specs) != cfg.Cores {
		return nil, fmt.Errorf("sim: %d core specs for %d cores", len(specs), cfg.Cores)
	}
	// The row-buffer-aware extension (§4.4): when every protected
	// domain's defense rDAG encodes its own row-hit pattern, the
	// closed-row policy is unnecessary — the rDAG prescribes the
	// row-buffer behaviour instead.
	if cfg.Scheme == config.DAGguise {
		rowAware := false
		for _, spec := range specs {
			if spec.Protected && spec.Defense.RowHitRatio > 0 {
				rowAware = true
			} else if spec.Protected {
				rowAware = false
				break
			}
		}
		if rowAware {
			cfg.ClosedRow = false
		}
	}
	mapper := mem.MustMapper(cfg.Geometry)
	dev := dram.New(cfg.Timing, mapper, cfg.ClosedRow)

	s := &System{
		cfg:      cfg,
		mapper:   mapper,
		dev:      dev,
		shapers:  make(map[mem.Domain]*shaper.Shaper),
		camos:    make(map[mem.Domain]*camouflage.Shaper),
		egress:   make(map[mem.Domain][]mem.Request),
		egressHW: make(map[mem.Domain]int),
		specs:    specs,
	}

	policy, err := s.buildPolicy(specs)
	if err != nil {
		return nil, err
	}
	s.policy = policy
	// Every scheme partitions the transaction queue per domain: real
	// controllers give each source its own read queue/credits, and a
	// shared queue lets one streaming core monopolise entries and starve
	// the rest (for the secure schemes partitioning is mandatory — see
	// Controller.PartitionQueue).
	s.ctrl = memctrl.New(dev, mapper, policy, privateQueueDepth*cfg.Cores)
	s.ctrl.PartitionQueue(privateQueueDepth)

	alloc := cpu.IDAlloc(s.alloc)
	for i, spec := range specs {
		dom := domainOf(i)
		hier, err := cache.NewHierarchy(cfg)
		if err != nil {
			return nil, err
		}
		port, err := s.buildPort(dom, spec)
		if err != nil {
			return nil, err
		}
		s.cores = append(s.cores, cpu.New(dom, spec.Source, hier, cfg.Core, port, alloc))
	}
	for _, dom := range s.order {
		s.egressHW[dom] = 0 // shaped domains always report a high-water mark
	}
	return s, nil
}

func (s *System) alloc() uint64 {
	s.nextID++
	return s.nextID
}

// buildPolicy selects the scheduling policy for the configured scheme.
func (s *System) buildPolicy(specs []CoreSpec) (memctrl.Scheduler, error) {
	switch s.cfg.Scheme {
	case config.Insecure, config.Camouflage:
		return memctrl.FRFCFS{}, nil
	case config.DAGguise:
		// DAGguise keeps the high-performance scheduler: dynamic
		// contention is safe because the shaped stream is already
		// secret-independent.
		return memctrl.FRFCFS{}, nil
	case config.FixedService, config.FSBTA, config.TemporalPartitioning:
		groups := buildGroups(specs)
		switch s.cfg.Scheme {
		case config.FixedService:
			return sched.NewFixedService(s.cfg.Timing, groups), nil
		case config.FSBTA:
			if s.cfg.FSBTAStrideDRAM > 0 {
				return sched.NewFSBTAWithStride(s.cfg.Timing, groups, s.cfg.FSBTAStrideDRAM), nil
			}
			return sched.NewFSBTA(s.cfg.Timing, groups), nil
		default:
			return sched.NewTemporalPartitioning(s.cfg.Timing, groups, 96), nil
		}
	default:
		return nil, fmt.Errorf("sim: unsupported scheme %v", s.cfg.Scheme)
	}
}

// buildGroups constructs the slot rotation for FS-family arbiters: each
// protected core alone in its group, all unprotected cores sharing one
// group that appears once per unprotected core. On the paper's eight-core
// setup this yields the 4 x 1/8 victim slots + 4/8 shared SPEC slots.
func buildGroups(specs []CoreSpec) []sched.Group {
	var unprotected sched.Group
	for i, spec := range specs {
		if !spec.Protected {
			unprotected = append(unprotected, domainOf(i))
		}
	}
	var groups []sched.Group
	for i, spec := range specs {
		if spec.Protected {
			groups = append(groups, sched.Group{domainOf(i)})
		} else {
			groups = append(groups, unprotected)
		}
	}
	return groups
}

// ctrlPort adapts the controller as a core port.
type ctrlPort struct{ s *System }

func (p ctrlPort) TryEnqueue(req mem.Request, now uint64) bool {
	return p.s.ctrl.Enqueue(req, now)
}

// dagPort adapts a DAGguise shaper as a core port. A fault-injected
// backpressure burst makes it reject enqueues exactly like a full private
// queue; the rejection is keyed on (domain, cycle) only and is therefore
// secret-independent. Routing violations are stashed on the System for the
// current tick to surface as a protocol SimError.
type dagPort struct {
	s  *System
	sh *shaper.Shaper
}

func (p dagPort) TryEnqueue(req mem.Request, now uint64) bool {
	if p.s.faults != nil && p.s.faults.ShaperRejects(p.sh.Domain(), now) {
		return false
	}
	if p.sh.Full() {
		return false
	}
	ok, err := p.sh.Enqueue(req, now)
	if err != nil && p.s.portErr == nil {
		p.s.portErr = err
	}
	return ok
}

// camoPort adapts a Camouflage shaper as a core port.
type camoPort struct {
	s  *System
	sh *camouflage.Shaper
}

func (p camoPort) TryEnqueue(req mem.Request, now uint64) bool {
	if p.s.faults != nil && p.s.faults.ShaperRejects(p.sh.Domain(), now) {
		return false
	}
	if p.sh.Full() {
		return false
	}
	ok, err := p.sh.Enqueue(req, now)
	if err != nil && p.s.portErr == nil {
		p.s.portErr = err
	}
	return ok
}

func (s *System) buildPort(dom mem.Domain, spec CoreSpec) (cpu.Port, error) {
	if !spec.Protected {
		return ctrlPort{s}, nil
	}
	switch s.cfg.Scheme {
	case config.DAGguise:
		tpl := spec.Defense
		if tpl.Sequences == 0 {
			tpl = rdag.Template{Sequences: 4, Weight: 300, WriteRatio: 0.001, Banks: s.mapper.BankCount()}
		}
		driver, err := rdag.NewPatternDriver(tpl)
		if err != nil {
			return nil, err
		}
		sh := shaper.New(dom, driver, s.mapper, privateQueueDepth, s.alloc, int64(dom)*7919)
		s.shapers[dom] = sh
		s.order = append(s.order, dom)
		return dagPort{s, sh}, nil
	case config.Camouflage:
		dist := spec.Distribution
		if len(dist.Intervals) == 0 {
			dist = camouflage.Distribution{Intervals: []uint64{200, 300, 400, 600}}
		}
		sh, err := camouflage.New(dom, dist, s.mapper, privateQueueDepth, s.alloc, int64(dom)*104729)
		if err != nil {
			return nil, err
		}
		s.camos[dom] = sh
		s.order = append(s.order, dom)
		return camoPort{s, sh}, nil
	default:
		// FS-family schemes protect at the scheduler; cores talk to the
		// controller directly. Insecure runs unshaped by definition.
		return ctrlPort{s}, nil
	}
}

// Tick advances the whole machine one cycle. It panics on an invariant
// violation (the legacy unchecked contract); use TickChecked, RunChecked or
// MeasureChecked to receive a structured *SimError instead.
func (s *System) Tick() {
	if err := s.tick(); err != nil {
		panic(err)
	}
}

// TickChecked advances the machine one cycle and reports any invariant
// violation as a *SimError.
func (s *System) TickChecked() error { return s.tick() }

func (s *System) tick() error {
	now := s.now
	// The profiler is a telescoping lap clock: each Lap charges the time
	// since the previous lap (anywhere) to its bucket. Lapping PBHarness
	// first attributes everything since the last tick ended — the caller's
	// loop, checkProgress, bench harness glue — to the harness bucket, so
	// the per-component buckets stay pure and the report explains ~100%
	// of wall time.
	s.prof.Lap(obs.PBHarness)
	s.portErr = nil
	for _, c := range s.cores {
		c.Tick(now)
	}
	s.prof.Lap(obs.PBCPU)
	if s.portErr != nil {
		return s.errf(InvariantProtocol, 0, s.portErr, "request misrouted at core port")
	}
	for _, dom := range s.order {
		var emitted []mem.Request
		if sh, ok := s.shapers[dom]; ok {
			emitted = sh.Tick(now)
			s.prof.Lap(obs.PBShaper)
		}
		if sh, ok := s.camos[dom]; ok {
			emitted = append(emitted, sh.Tick(now)...)
			s.prof.Lap(obs.PBCamouflage)
		}
		if s.traceOn {
			for _, req := range emitted {
				s.traces[dom] = append(s.traces[dom], EgressEvent{
					Cycle: now,
					Bank:  s.mapper.FlatBank(s.mapper.Decode(req.Addr)),
					Kind:  req.Kind,
				})
			}
		}
		q := append(s.egress[dom], emitted...)
		// The high-water mark records peak staging occupancy, so it must be
		// sampled before the drain: post-drain the queue is empty whenever
		// the controller keeps up, and the mark would stay zero on every
		// healthy run.
		if len(q) > s.egressHW[dom] {
			s.egressHW[dom] = len(q)
		}
		s.mx.Observe(obs.HistEgressQueue, int(dom), uint64(len(q)))
		// Drain into the controller through an index cursor and compact
		// with copy: the former q = q[1:] loop kept the consumed prefix
		// of the backing array reachable forever.
		n := 0
		stalled := s.faults != nil && s.faults.EgressStalled(dom, now)
		if stalled && len(q) > 0 {
			s.tr.Emit(obs.Event{Cycle: now, Comp: obs.CompSystem, Kind: obs.EvEgressStall, Index: int32(dom), Domain: int32(dom)})
		}
		if !stalled {
			for n < len(q) && s.ctrl.Enqueue(q[n], now) {
				n++
			}
		}
		if n > 0 {
			rest := copy(q, q[n:])
			q = q[:rest]
		}
		s.egress[dom] = q
		if s.wd.EgressHighWater > 0 && len(q) > s.wd.EgressHighWater {
			return s.errf(InvariantLivelock, dom, nil,
				"egress queue depth %d exceeds high-water mark %d", len(q), s.wd.EgressHighWater)
		}
		s.prof.Lap(obs.PBEgress)
	}
	// ctrl.Tick laps its own interior (sched picks -> PBSched, device
	// service -> PBDRAM, bookkeeping/drain -> PBMemctrl) on the shared
	// profiler, telescoping seamlessly with the laps here.
	resps := s.ctrl.Tick(now)
	// Fault layer on the controller→core boundary: withhold responses
	// covered by a delay/drop window and redeliver the ones that are due.
	// Both decisions are keyed on (domain, cycle) only.
	if s.faults != nil {
		kept := resps[:0]
		for _, r := range resps {
			if at, held := s.faults.DeferResponse(r.Domain, now); held {
				s.deferred = append(s.deferred, deferredResp{at: at, resp: r})
			} else {
				kept = append(kept, r)
			}
		}
		resps = kept
	}
	if len(s.deferred) > 0 {
		rest := s.deferred[:0]
		for _, d := range s.deferred {
			if d.at <= now {
				resps = append(resps, d.resp)
			} else {
				rest = append(rest, d)
			}
		}
		s.deferred = rest
	}
	for _, resp := range resps {
		// Audit taps observe the controller's response stream — the
		// externally visible completion timing, fake responses included —
		// before any shaper filters it. Recording the inter-completion gap
		// is measurement-only; the tap is never read back during a tick.
		if tap, ok := s.auditTaps[resp.Domain]; ok {
			tap.Record(now, now-s.auditLast[resp.Domain])
			s.auditLast[resp.Domain] = now
		}
		if err := s.route(resp, now); err != nil {
			return s.errf(InvariantProtocol, resp.Domain, err, "response routing failed")
		}
	}
	s.prof.Lap(obs.PBRoute)
	s.now++
	return s.checkProgress(len(resps) > 0)
}

// checkProgress enforces the deadlock invariant: with pending work, some
// instruction must retire or some response must be delivered within the
// stall budget.
func (s *System) checkProgress(delivered bool) error {
	if s.wd.StallBudget == 0 {
		return nil
	}
	var retired uint64
	for _, c := range s.cores {
		retired += c.Stats().Instructions
	}
	if delivered || retired != s.lastRetired {
		s.lastProgress = s.now
		s.lastRetired = retired
		return nil
	}
	if s.now-s.lastProgress <= s.wd.StallBudget {
		return nil
	}
	if s.idle() {
		// Nothing pending anywhere (e.g. all finite traces retired):
		// quiescence, not deadlock.
		s.lastProgress = s.now
		return nil
	}
	detail := fmt.Sprintf("no instruction retired and no response delivered for %d cycles", s.now-s.lastProgress)
	if at, ok := s.ctrl.NextCompletion(); ok {
		detail += fmt.Sprintf("; earliest in-flight completion at cycle %d", at)
	}
	return s.errf(InvariantDeadlock, 0, nil, "%s", detail)
}

// idle reports whether the machine has genuinely nothing left to do.
func (s *System) idle() bool {
	if !s.ctrl.Idle() || len(s.deferred) > 0 {
		return false
	}
	for _, q := range s.egress {
		if len(q) > 0 {
			return false
		}
	}
	for _, c := range s.cores {
		if !c.Done() {
			return false
		}
	}
	return true
}

func (s *System) route(resp mem.Response, now uint64) error {
	if sh, ok := s.shapers[resp.Domain]; ok {
		deliver, err := sh.OnResponse(resp, now)
		if err != nil {
			return err
		}
		if deliver {
			return s.coreFor(resp.Domain).OnResponse(resp, now)
		}
		return nil
	}
	if sh, ok := s.camos[resp.Domain]; ok {
		if sh.OnResponse(resp, now) {
			return s.coreFor(resp.Domain).OnResponse(resp, now)
		}
		return nil
	}
	return s.coreFor(resp.Domain).OnResponse(resp, now)
}

func (s *System) coreFor(d mem.Domain) *cpu.Core {
	return s.cores[int(d)-1]
}

// Run advances the machine by the given number of cycles, panicking on an
// invariant violation (the legacy unchecked contract).
func (s *System) Run(cycles uint64) {
	end := s.now + cycles
	for s.now < end {
		s.Tick()
	}
}

// RunChecked advances the machine by the given number of cycles with the
// forward-progress watchdog armed, returning a structured *SimError the
// moment an invariant fails (instead of panicking or spinning forever). If
// no watchdog was configured with SetWatchdog, DefaultWatchdog is used.
func (s *System) RunChecked(cycles uint64) error {
	restore := s.armWatchdog()
	defer restore()
	end := s.now + cycles
	for s.now < end {
		if err := s.tick(); err != nil {
			return err
		}
	}
	return nil
}

// armWatchdog installs the default watchdog if none is configured and
// returns a func restoring the previous state.
func (s *System) armWatchdog() func() {
	prev := s.wd
	if s.wd == (Watchdog{}) {
		s.wd = DefaultWatchdog()
		s.lastProgress = s.now
	}
	return func() { s.wd = prev }
}

// SetWatchdog configures the forward-progress invariants for the Checked
// APIs. Fields left zero disable the corresponding check.
func (s *System) SetWatchdog(w Watchdog) {
	s.wd = w
	s.lastProgress = s.now
	var retired uint64
	for _, c := range s.cores {
		retired += c.Stats().Instructions
	}
	s.lastRetired = retired
}

// AttachFaults wires a deterministic fault schedule into the machine: DRAM
// stall windows are registered with the device model, and the remaining
// fault kinds are consulted cycle by cycle during tick. Attach faults once,
// before running; the same schedule attached to two systems produces
// bit-identical fault sequences.
func (s *System) AttachFaults(sched fault.Schedule) error {
	in, err := fault.NewInjector(sched)
	if err != nil {
		return err
	}
	s.faults = in
	for _, w := range in.StallWindows() {
		s.dev.InjectStallWindow(w.Start, w.End())
	}
	return nil
}

// EnableEgressTrace starts recording every shaper emission as an
// EgressEvent per protected domain. Enable it before running; tracing is
// the observation side of the non-interference-under-faults argument.
func (s *System) EnableEgressTrace() {
	s.traceOn = true
	if s.traces == nil {
		s.traces = make(map[mem.Domain][]EgressEvent)
	}
}

// EgressTrace returns the recorded shaped-egress timing trace of the
// domain (nil when tracing is off or the domain is unshaped).
func (s *System) EgressTrace(d mem.Domain) []EgressEvent { return s.traces[d] }

// NumDomains returns the number of observability domain slots this system
// needs: one per core plus the system-wide slot 0.
func (s *System) NumDomains() int { return len(s.cores) + 1 }

// Observe attaches an observability registry and tracer (either may be
// nil) and threads them through every component: the memory controller and
// DRAM device, each shaper, each core and (when the scheme has one) the
// secure arbiter. Collection is measurement-only — no component's timing
// decision ever reads back from the registry or tracer — so the simulated
// machine behaves bit-identically with observability on or off.
func (s *System) Observe(mx *obs.Registry, tr *obs.Tracer) {
	s.mx = mx
	s.tr = tr
	s.ctrl.Observe(mx, tr)
	for _, dom := range s.order {
		if sh, ok := s.shapers[dom]; ok {
			sh.Observe(mx, tr)
		}
		if sh, ok := s.camos[dom]; ok {
			sh.Observe(mx, tr)
		}
	}
	for _, c := range s.cores {
		c.Observe(mx)
	}
	if so, ok := s.policy.(interface{ Observe(*obs.Registry) }); ok {
		so.Observe(mx)
	}
}

// Profile attaches a cycle-attribution profiler (nil = off) to the tick
// loop and the memory controller. Like Observe it is measurement only:
// laps read the wall clock and write profiler-private buckets, nothing
// in the simulated machine consults them, so shaped egress is
// bit-identical with profiling on or off (pinned by the full-on
// non-interference test).
func (s *System) Profile(p *obs.CycleProfile) {
	s.prof = p
	s.ctrl.Profile(p)
}

// TraceSpans attaches a span recorder (nil = off). The simulator itself
// opens spans only at measurement granularity (Measure's warmup/window
// phases); callers like the campaign runner layer job/chunk spans on
// the same recorder, and SaveState captures spans open at checkpoint
// time so they reopen identically after RestoreState.
func (s *System) TraceSpans(sp *obs.Spans) { s.spans = sp }

// Spans returns the attached span recorder (nil when disabled).
func (s *System) Spans() *obs.Spans { return s.spans }

// AuditResponses attaches a leakage-audit tap to the domain: every
// controller response for the domain is recorded as (completion cycle,
// gap since the domain's previous completion) — the response-timing stream
// an attacker on the shared channel can observe. The tap sees the stream
// before shaper filtering, so fake responses are included; under DAGguise
// the recorded stream is secret-independent by construction. A nil tap
// detaches the domain. Measurement only: TestAuditTapNonInterference pins
// the shaped egress bit-identical with auditing on and off.
func (s *System) AuditResponses(d mem.Domain, t *audit.Tap) {
	if s.auditTaps == nil {
		s.auditTaps = make(map[mem.Domain]*audit.Tap)
		s.auditLast = make(map[mem.Domain]uint64)
	}
	if t == nil {
		delete(s.auditTaps, d)
		return
	}
	s.auditTaps[d] = t
}

// Now returns the current cycle.
func (s *System) Now() uint64 { return s.now }

// Controller exposes the memory controller (for attack experiments and
// detailed inspection).
func (s *System) Controller() *memctrl.Controller { return s.ctrl }

// Core returns core i.
func (s *System) Core(i int) *cpu.Core { return s.cores[i] }

// Shaper returns the DAGguise shaper of the domain, if any.
func (s *System) Shaper(d mem.Domain) (*shaper.Shaper, bool) {
	sh, ok := s.shapers[d]
	return sh, ok
}

// CoreResult is the per-core outcome of a measurement window.
type CoreResult struct {
	Name          string
	Domain        mem.Domain
	IPC           float64
	Instructions  uint64
	MemReads      uint64
	Writebacks    uint64
	BandwidthGBps float64
	// ShaperFakes / ShaperForwarded are zero for unshaped cores.
	ShaperFakes     uint64
	ShaperForwarded uint64
}

// Result is the outcome of a measurement window.
type Result struct {
	Cycles        uint64
	Cores         []CoreResult
	TotalGBps     float64
	RowHits       uint64
	RowMisses     uint64
	RowConflicts  uint64
	QueueMaxDepth int
	// EgressDepths holds each shaped domain's egress queue high-water
	// mark since the system started; EgressMaxDepth is their maximum.
	// The watchdog's livelock invariant bounds these online.
	EgressDepths   map[mem.Domain]int
	EgressMaxDepth int
	// Metrics is the observability snapshot delta over the measurement
	// window (nil unless a registry was attached with Observe).
	Metrics *obs.Snapshot
}

type snapshot struct {
	inst  []uint64
	reads []uint64
	wbs   []uint64
	bytes []uint64
	fakes []uint64
	fwd   []uint64
	total uint64
	cycle uint64
}

func (s *System) snap() snapshot {
	sn := snapshot{cycle: s.now, total: s.ctrl.Stats().BytesServed}
	for i, c := range s.cores {
		st := c.Stats()
		sn.inst = append(sn.inst, st.Instructions)
		sn.reads = append(sn.reads, st.MemReads)
		sn.wbs = append(sn.wbs, st.Writebacks)
		sn.bytes = append(sn.bytes, s.ctrl.BytesForDomain(domainOf(i)))
		var fakes, fwd uint64
		if sh, ok := s.shapers[domainOf(i)]; ok {
			fakes, fwd = sh.Stats().Fakes, sh.Stats().Forwarded
		}
		if sh, ok := s.camos[domainOf(i)]; ok {
			fakes, fwd = sh.Stats().Fakes, sh.Stats().Forwarded
		}
		sn.fakes = append(sn.fakes, fakes)
		sn.fwd = append(sn.fwd, fwd)
	}
	return sn
}

// Measure runs warmup cycles (discarded) then a measurement window and
// returns per-core IPC and bandwidth over that window. It panics on an
// invariant violation; use MeasureChecked for the structured-error form.
func (s *System) Measure(warmup, window uint64) Result {
	res, err := s.measure(warmup, window, false)
	if err != nil {
		panic(err)
	}
	return res
}

// MeasureChecked is Measure with the forward-progress watchdog armed: it
// returns a *SimError (and the zero Result) the moment an invariant fails
// during warmup or measurement.
func (s *System) MeasureChecked(warmup, window uint64) (Result, error) {
	return s.measure(warmup, window, true)
}

func (s *System) measure(warmup, window uint64, checked bool) (Result, error) {
	run := func(cycles uint64) error {
		if checked {
			return s.RunChecked(cycles)
		}
		end := s.now + cycles
		for s.now < end {
			if err := s.tick(); err != nil {
				return err
			}
		}
		return nil
	}
	return s.measureWith(run, warmup, window)
}

// measureWith is the measurement core, parameterised over the run loop so
// the context-aware form shares the exact accounting.
func (s *System) measureWith(run func(uint64) error, warmup, window uint64) (Result, error) {
	root := s.spans.Begin("measure", obs.CompSystem, 0, 0, 0, s.now)
	warm := s.spans.Begin("warmup", obs.CompSystem, 0, 0, root, s.now)
	if err := run(warmup); err != nil {
		return Result{}, err
	}
	s.spans.End(warm, s.now)
	before := s.snap()
	mxBefore := s.mx.Snapshot()
	win := s.spans.Begin("window", obs.CompSystem, 0, 0, root, s.now)
	if err := run(window); err != nil {
		return Result{}, err
	}
	s.spans.End(win, s.now)
	s.spans.End(root, s.now)
	after := s.snap()

	cycles := after.cycle - before.cycle
	res := Result{Cycles: cycles}
	toGBps := func(bytes uint64) float64 {
		return float64(bytes) * CPUFrequencyHz / float64(cycles) / 1e9
	}
	for i := range s.cores {
		res.Cores = append(res.Cores, CoreResult{
			Name:            s.specs[i].Name,
			Domain:          domainOf(i),
			IPC:             float64(after.inst[i]-before.inst[i]) / float64(cycles),
			Instructions:    after.inst[i] - before.inst[i],
			MemReads:        after.reads[i] - before.reads[i],
			Writebacks:      after.wbs[i] - before.wbs[i],
			BandwidthGBps:   toGBps(after.bytes[i] - before.bytes[i]),
			ShaperFakes:     after.fakes[i] - before.fakes[i],
			ShaperForwarded: after.fwd[i] - before.fwd[i],
		})
	}
	res.TotalGBps = toGBps(after.total - before.total)
	if s.mx != nil {
		res.Metrics = s.mx.Snapshot().Sub(mxBefore)
	}
	res.RowHits, res.RowMisses, res.RowConflicts, _ = s.dev.Stats()
	res.QueueMaxDepth = s.ctrl.Stats().MaxQueueLen
	if len(s.egressHW) > 0 {
		res.EgressDepths = make(map[mem.Domain]int, len(s.egressHW))
		for d, hw := range s.egressHW {
			res.EgressDepths[d] = hw
			if hw > res.EgressMaxDepth {
				res.EgressMaxDepth = hw
			}
		}
	}
	return res, nil
}
