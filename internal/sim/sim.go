// Package sim wires the full simulated machine together: trace-driven
// cores with private cache hierarchies, optional DAGguise or Camouflage
// shapers per protected domain, a shared memory controller with the
// configured scheduling policy (insecure FR-FCFS, FS, FS-BTA, TP), and the
// DRAM device model. It drives everything cycle by cycle and reports
// per-core IPC and bandwidth, the measurements behind Figures 7, 9 and 10.
package sim

import (
	"fmt"

	"dagguise/internal/cache"
	"dagguise/internal/camouflage"
	"dagguise/internal/config"
	"dagguise/internal/cpu"
	"dagguise/internal/dram"
	"dagguise/internal/mem"
	"dagguise/internal/memctrl"
	"dagguise/internal/rdag"
	"dagguise/internal/sched"
	"dagguise/internal/shaper"
	"dagguise/internal/trace"
)

// CPUFrequencyHz is the simulated core clock (Table 2).
const CPUFrequencyHz = 2.4e9

// privateQueueDepth is the per-domain private transaction queue depth of
// the shaper hardware (8 entries in the paper's area evaluation).
const privateQueueDepth = 8

// CoreSpec describes one core's software and protection needs.
type CoreSpec struct {
	// Name labels the core in results.
	Name string
	// Source supplies the core's trace (usually an infinite/looped one).
	Source trace.Source
	// Protected marks the core's domain as security sensitive. Under
	// DAGguise it gets a request shaper, under Camouflage a distribution
	// shaper, and under FS/FS-BTA/TP its own slot group.
	Protected bool
	// Defense is the defense rDAG template for DAGguise (ignored
	// otherwise). Zero value selects a reasonable default.
	Defense rdag.Template
	// Distribution is the target interval distribution for Camouflage.
	Distribution camouflage.Distribution
}

// System is a fully wired simulated machine.
type System struct {
	cfg    config.SystemConfig
	mapper *mem.Mapper
	dev    *dram.Device
	ctrl   *memctrl.Controller
	cores  []*cpu.Core
	specs  []CoreSpec

	shapers map[mem.Domain]*shaper.Shaper
	camos   map[mem.Domain]*camouflage.Shaper
	egress  map[mem.Domain][]mem.Request
	order   []mem.Domain // shaper service order, deterministic

	now    uint64
	nextID uint64
}

// domainOf maps core index to its security domain (domains start at 1;
// domain 0 is reserved for unattributed traffic).
func domainOf(core int) mem.Domain { return mem.Domain(core + 1) }

// New builds a system from the configuration and core specs.
func New(cfg config.SystemConfig, specs []CoreSpec) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(specs) != cfg.Cores {
		return nil, fmt.Errorf("sim: %d core specs for %d cores", len(specs), cfg.Cores)
	}
	// The row-buffer-aware extension (§4.4): when every protected
	// domain's defense rDAG encodes its own row-hit pattern, the
	// closed-row policy is unnecessary — the rDAG prescribes the
	// row-buffer behaviour instead.
	if cfg.Scheme == config.DAGguise {
		rowAware := false
		for _, spec := range specs {
			if spec.Protected && spec.Defense.RowHitRatio > 0 {
				rowAware = true
			} else if spec.Protected {
				rowAware = false
				break
			}
		}
		if rowAware {
			cfg.ClosedRow = false
		}
	}
	mapper := mem.MustMapper(cfg.Geometry)
	dev := dram.New(cfg.Timing, mapper, cfg.ClosedRow)

	s := &System{
		cfg:     cfg,
		mapper:  mapper,
		dev:     dev,
		shapers: make(map[mem.Domain]*shaper.Shaper),
		camos:   make(map[mem.Domain]*camouflage.Shaper),
		egress:  make(map[mem.Domain][]mem.Request),
		specs:   specs,
	}

	policy, err := s.buildPolicy(specs)
	if err != nil {
		return nil, err
	}
	// Every scheme partitions the transaction queue per domain: real
	// controllers give each source its own read queue/credits, and a
	// shared queue lets one streaming core monopolise entries and starve
	// the rest (for the secure schemes partitioning is mandatory — see
	// Controller.PartitionQueue).
	s.ctrl = memctrl.New(dev, mapper, policy, privateQueueDepth*cfg.Cores)
	s.ctrl.PartitionQueue(privateQueueDepth)

	alloc := cpu.IDAlloc(s.alloc)
	for i, spec := range specs {
		dom := domainOf(i)
		hier, err := cache.NewHierarchy(cfg)
		if err != nil {
			return nil, err
		}
		port, err := s.buildPort(dom, spec)
		if err != nil {
			return nil, err
		}
		s.cores = append(s.cores, cpu.New(dom, spec.Source, hier, cfg.Core, port, alloc))
	}
	return s, nil
}

func (s *System) alloc() uint64 {
	s.nextID++
	return s.nextID
}

// buildPolicy selects the scheduling policy for the configured scheme.
func (s *System) buildPolicy(specs []CoreSpec) (memctrl.Scheduler, error) {
	switch s.cfg.Scheme {
	case config.Insecure, config.Camouflage:
		return memctrl.FRFCFS{}, nil
	case config.DAGguise:
		// DAGguise keeps the high-performance scheduler: dynamic
		// contention is safe because the shaped stream is already
		// secret-independent.
		return memctrl.FRFCFS{}, nil
	case config.FixedService, config.FSBTA, config.TemporalPartitioning:
		groups := buildGroups(specs)
		switch s.cfg.Scheme {
		case config.FixedService:
			return sched.NewFixedService(s.cfg.Timing, groups), nil
		case config.FSBTA:
			if s.cfg.FSBTAStrideDRAM > 0 {
				return sched.NewFSBTAWithStride(s.cfg.Timing, groups, s.cfg.FSBTAStrideDRAM), nil
			}
			return sched.NewFSBTA(s.cfg.Timing, groups), nil
		default:
			return sched.NewTemporalPartitioning(s.cfg.Timing, groups, 96), nil
		}
	default:
		return nil, fmt.Errorf("sim: unsupported scheme %v", s.cfg.Scheme)
	}
}

// buildGroups constructs the slot rotation for FS-family arbiters: each
// protected core alone in its group, all unprotected cores sharing one
// group that appears once per unprotected core. On the paper's eight-core
// setup this yields the 4 x 1/8 victim slots + 4/8 shared SPEC slots.
func buildGroups(specs []CoreSpec) []sched.Group {
	var unprotected sched.Group
	for i, spec := range specs {
		if !spec.Protected {
			unprotected = append(unprotected, domainOf(i))
		}
	}
	var groups []sched.Group
	for i, spec := range specs {
		if spec.Protected {
			groups = append(groups, sched.Group{domainOf(i)})
		} else {
			groups = append(groups, unprotected)
		}
	}
	return groups
}

// ctrlPort adapts the controller as a core port.
type ctrlPort struct{ s *System }

func (p ctrlPort) TryEnqueue(req mem.Request, now uint64) bool {
	return p.s.ctrl.Enqueue(req, now)
}

// dagPort adapts a DAGguise shaper as a core port.
type dagPort struct{ sh *shaper.Shaper }

func (p dagPort) TryEnqueue(req mem.Request, now uint64) bool {
	if p.sh.Full() {
		return false
	}
	return p.sh.Enqueue(req, now)
}

// camoPort adapts a Camouflage shaper as a core port.
type camoPort struct{ sh *camouflage.Shaper }

func (p camoPort) TryEnqueue(req mem.Request, now uint64) bool {
	if p.sh.Full() {
		return false
	}
	return p.sh.Enqueue(req, now)
}

func (s *System) buildPort(dom mem.Domain, spec CoreSpec) (cpu.Port, error) {
	if !spec.Protected {
		return ctrlPort{s}, nil
	}
	switch s.cfg.Scheme {
	case config.DAGguise:
		tpl := spec.Defense
		if tpl.Sequences == 0 {
			tpl = rdag.Template{Sequences: 4, Weight: 300, WriteRatio: 0.001, Banks: s.mapper.BankCount()}
		}
		driver, err := rdag.NewPatternDriver(tpl)
		if err != nil {
			return nil, err
		}
		sh := shaper.New(dom, driver, s.mapper, privateQueueDepth, s.alloc, int64(dom)*7919)
		s.shapers[dom] = sh
		s.order = append(s.order, dom)
		return dagPort{sh}, nil
	case config.Camouflage:
		dist := spec.Distribution
		if len(dist.Intervals) == 0 {
			dist = camouflage.Distribution{Intervals: []uint64{200, 300, 400, 600}}
		}
		sh, err := camouflage.New(dom, dist, s.mapper, privateQueueDepth, s.alloc, int64(dom)*104729)
		if err != nil {
			return nil, err
		}
		s.camos[dom] = sh
		s.order = append(s.order, dom)
		return camoPort{sh}, nil
	default:
		// FS-family schemes protect at the scheduler; cores talk to the
		// controller directly. Insecure runs unshaped by definition.
		return ctrlPort{s}, nil
	}
}

// Tick advances the whole machine one cycle.
func (s *System) Tick() {
	now := s.now
	for _, c := range s.cores {
		c.Tick(now)
	}
	for _, dom := range s.order {
		if sh, ok := s.shapers[dom]; ok {
			s.egress[dom] = append(s.egress[dom], sh.Tick(now)...)
		}
		if sh, ok := s.camos[dom]; ok {
			s.egress[dom] = append(s.egress[dom], sh.Tick(now)...)
		}
		q := s.egress[dom]
		for len(q) > 0 && s.ctrl.Enqueue(q[0], now) {
			q = q[1:]
		}
		s.egress[dom] = q
	}
	for _, resp := range s.ctrl.Tick(now) {
		s.route(resp, now)
	}
	s.now++
}

func (s *System) route(resp mem.Response, now uint64) {
	if sh, ok := s.shapers[resp.Domain]; ok {
		if sh.OnResponse(resp, now) {
			s.coreFor(resp.Domain).OnResponse(resp, now)
		}
		return
	}
	if sh, ok := s.camos[resp.Domain]; ok {
		if sh.OnResponse(resp, now) {
			s.coreFor(resp.Domain).OnResponse(resp, now)
		}
		return
	}
	s.coreFor(resp.Domain).OnResponse(resp, now)
}

func (s *System) coreFor(d mem.Domain) *cpu.Core {
	return s.cores[int(d)-1]
}

// Run advances the machine by the given number of cycles.
func (s *System) Run(cycles uint64) {
	end := s.now + cycles
	for s.now < end {
		s.Tick()
	}
}

// Now returns the current cycle.
func (s *System) Now() uint64 { return s.now }

// Controller exposes the memory controller (for attack experiments and
// detailed inspection).
func (s *System) Controller() *memctrl.Controller { return s.ctrl }

// Core returns core i.
func (s *System) Core(i int) *cpu.Core { return s.cores[i] }

// Shaper returns the DAGguise shaper of the domain, if any.
func (s *System) Shaper(d mem.Domain) (*shaper.Shaper, bool) {
	sh, ok := s.shapers[d]
	return sh, ok
}

// CoreResult is the per-core outcome of a measurement window.
type CoreResult struct {
	Name          string
	Domain        mem.Domain
	IPC           float64
	Instructions  uint64
	MemReads      uint64
	Writebacks    uint64
	BandwidthGBps float64
	// ShaperFakes / ShaperForwarded are zero for unshaped cores.
	ShaperFakes     uint64
	ShaperForwarded uint64
}

// Result is the outcome of a measurement window.
type Result struct {
	Cycles        uint64
	Cores         []CoreResult
	TotalGBps     float64
	RowHits       uint64
	RowMisses     uint64
	RowConflicts  uint64
	QueueMaxDepth int
}

type snapshot struct {
	inst  []uint64
	reads []uint64
	wbs   []uint64
	bytes []uint64
	fakes []uint64
	fwd   []uint64
	total uint64
	cycle uint64
}

func (s *System) snap() snapshot {
	sn := snapshot{cycle: s.now, total: s.ctrl.Stats().BytesServed}
	for i, c := range s.cores {
		st := c.Stats()
		sn.inst = append(sn.inst, st.Instructions)
		sn.reads = append(sn.reads, st.MemReads)
		sn.wbs = append(sn.wbs, st.Writebacks)
		sn.bytes = append(sn.bytes, s.ctrl.BytesForDomain(domainOf(i)))
		var fakes, fwd uint64
		if sh, ok := s.shapers[domainOf(i)]; ok {
			fakes, fwd = sh.Stats().Fakes, sh.Stats().Forwarded
		}
		if sh, ok := s.camos[domainOf(i)]; ok {
			fakes, fwd = sh.Stats().Fakes, sh.Stats().Forwarded
		}
		sn.fakes = append(sn.fakes, fakes)
		sn.fwd = append(sn.fwd, fwd)
	}
	return sn
}

// Measure runs warmup cycles (discarded) then a measurement window and
// returns per-core IPC and bandwidth over that window.
func (s *System) Measure(warmup, window uint64) Result {
	s.Run(warmup)
	before := s.snap()
	s.Run(window)
	after := s.snap()

	cycles := after.cycle - before.cycle
	res := Result{Cycles: cycles}
	toGBps := func(bytes uint64) float64 {
		return float64(bytes) * CPUFrequencyHz / float64(cycles) / 1e9
	}
	for i := range s.cores {
		res.Cores = append(res.Cores, CoreResult{
			Name:            s.specs[i].Name,
			Domain:          domainOf(i),
			IPC:             float64(after.inst[i]-before.inst[i]) / float64(cycles),
			Instructions:    after.inst[i] - before.inst[i],
			MemReads:        after.reads[i] - before.reads[i],
			Writebacks:      after.wbs[i] - before.wbs[i],
			BandwidthGBps:   toGBps(after.bytes[i] - before.bytes[i]),
			ShaperFakes:     after.fakes[i] - before.fakes[i],
			ShaperForwarded: after.fwd[i] - before.fwd[i],
		})
	}
	res.TotalGBps = toGBps(after.total - before.total)
	res.RowHits, res.RowMisses, res.RowConflicts, _ = s.dev.Stats()
	res.QueueMaxDepth = s.ctrl.Stats().MaxQueueLen
	return res
}
