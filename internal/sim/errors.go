package sim

import (
	"fmt"
	"sort"
	"strings"

	"dagguise/internal/mem"
	"dagguise/internal/obs"
)

// Invariant names a forward-progress or protocol invariant the watchdog
// enforces every cycle.
type Invariant string

const (
	// InvariantDeadlock fires when the machine has pending work but
	// neither retires an instruction nor delivers a response for the
	// configured stall budget.
	InvariantDeadlock Invariant = "deadlock"
	// InvariantLivelock fires when a per-domain egress queue exceeds its
	// high-water mark: the shaper keeps producing but the controller
	// never accepts, so the system spins without net progress.
	InvariantLivelock Invariant = "livelock"
	// InvariantProtocol fires on request/response routing violations:
	// a response for an unknown or retired request, or a request routed
	// to the wrong domain's shaper.
	InvariantProtocol Invariant = "protocol"
)

// SimError is a structured simulation failure: which invariant broke, when,
// for which domain, and a snapshot of the queues at that moment. It
// replaces the former panic-or-hang behaviour so fault campaigns can
// classify outcomes and replay them from the reported state.
type SimError struct {
	// Cycle is the simulation cycle the invariant failed.
	Cycle uint64
	// Domain is the implicated security domain (0 when system-wide).
	Domain mem.Domain
	// Invariant identifies the failed check.
	Invariant Invariant
	// Detail is a human-readable elaboration.
	Detail string
	// Queue is the controller transaction queue occupancy per domain.
	Queue map[mem.Domain]int
	// Egress is the per-domain shaper egress queue depth.
	Egress map[mem.Domain]int
	// Err is the underlying typed error for protocol violations
	// (e.g. *shaper.UnknownResponseError), nil otherwise.
	Err error
}

// Error implements error.
func (e *SimError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sim: %s at cycle %d", e.Invariant, e.Cycle)
	if e.Domain != 0 {
		fmt.Fprintf(&b, " (domain %d)", e.Domain)
	}
	if e.Detail != "" {
		fmt.Fprintf(&b, ": %s", e.Detail)
	}
	if e.Err != nil {
		fmt.Fprintf(&b, ": %v", e.Err)
	}
	if len(e.Queue) > 0 {
		fmt.Fprintf(&b, " [queue %s]", formatDepths(e.Queue))
	}
	if len(e.Egress) > 0 {
		fmt.Fprintf(&b, " [egress %s]", formatDepths(e.Egress))
	}
	return b.String()
}

// Unwrap exposes the underlying protocol error to errors.Is/As.
func (e *SimError) Unwrap() error { return e.Err }

func formatDepths(m map[mem.Domain]int) string {
	doms := make([]int, 0, len(m))
	for d := range m {
		doms = append(doms, int(d))
	}
	sort.Ints(doms)
	parts := make([]string, 0, len(doms))
	for _, d := range doms {
		parts = append(parts, fmt.Sprintf("d%d=%d", d, m[mem.Domain(d)]))
	}
	return strings.Join(parts, " ")
}

// Watchdog configures the forward-progress invariants checked each tick by
// the Checked run APIs. The zero value of a field disables that check.
type Watchdog struct {
	// StallBudget is the number of consecutive cycles the machine may go
	// with pending work but no instruction retired and no response
	// delivered before the deadlock invariant fires. It must comfortably
	// exceed legitimate stall spans (refresh windows, TP dead time, and
	// any finite injected storm).
	StallBudget uint64
	// EgressHighWater is the per-domain egress queue depth above which
	// the livelock invariant fires.
	EgressHighWater int
}

// DefaultWatchdog returns the budget used by RunChecked when none is
// configured: 50k cycles of stall (an order of magnitude above the longest
// legitimate stall on the Table 2 machine) and a 4096-entry egress bound.
func DefaultWatchdog() Watchdog {
	return Watchdog{StallBudget: 50_000, EgressHighWater: 4096}
}

// errf builds a SimError with the current queue snapshots attached, and
// marks the violation in the event trace so a postmortem trace shows where
// the run died.
func (s *System) errf(inv Invariant, dom mem.Domain, cause error, format string, args ...interface{}) *SimError {
	s.tr.Emit(obs.Event{Cycle: s.now, Comp: obs.CompSystem, Kind: obs.EvViolation, Domain: int32(dom)})
	egress := make(map[mem.Domain]int, len(s.egress))
	for d, q := range s.egress {
		if len(q) > 0 {
			egress[d] = len(q)
		}
	}
	return &SimError{
		Cycle:     s.now,
		Domain:    dom,
		Invariant: inv,
		Detail:    fmt.Sprintf(format, args...),
		Queue:     s.ctrl.QueueSnapshot(),
		Egress:    egress,
		Err:       cause,
	}
}
