package sim

import (
	"testing"

	"dagguise/internal/config"
	"dagguise/internal/rdag"
	"dagguise/internal/trace"
	"dagguise/internal/victim"
	"dagguise/internal/workload"
)

func specFor(t *testing.T, name string, seed int64, protected bool) CoreSpec {
	t.Helper()
	p, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return CoreSpec{Name: name, Source: workload.MustSource(p, seed), Protected: protected}
}

func docdistSpec(t *testing.T, protected bool) CoreSpec {
	t.Helper()
	tr, err := victim.DocDistTrace(11, victim.DefaultDocDist())
	if err != nil {
		t.Fatal(err)
	}
	return CoreSpec{
		Name:      "docdist",
		Source:    &trace.Loop{Inner: tr},
		Protected: protected,
		Defense:   rdag.Template{Sequences: 8, Weight: 150, WriteRatio: 0.25, Banks: 8},
	}
}

func TestTwoCoreSystemRuns(t *testing.T) {
	cfg := config.Default(2, config.Insecure)
	sys, err := New(cfg, []CoreSpec{docdistSpec(t, true), specFor(t, "lbm", 5, false)})
	if err != nil {
		t.Fatal(err)
	}
	res := sys.Measure(20_000, 200_000)
	if len(res.Cores) != 2 {
		t.Fatalf("cores = %d", len(res.Cores))
	}
	for _, c := range res.Cores {
		if c.IPC <= 0 {
			t.Fatalf("core %s has zero IPC", c.Name)
		}
	}
	if res.TotalGBps <= 0 {
		t.Fatal("no memory traffic measured")
	}
}

func TestSchemeOrderingOnMemoryBoundPair(t *testing.T) {
	// Insecure must be fastest; DAGguise must beat FS-BTA on the
	// unprotected co-runner; all must make progress.
	run := func(scheme config.Scheme) Result {
		cfg := config.Default(2, scheme)
		sys, err := New(cfg, []CoreSpec{docdistSpec(t, true), specFor(t, "lbm", 5, false)})
		if err != nil {
			t.Fatal(err)
		}
		return sys.Measure(20_000, 300_000)
	}
	insecure := run(config.Insecure)
	dag := run(config.DAGguise)
	bta := run(config.FSBTA)

	t.Logf("insecure: docdist=%.3f lbm=%.3f total=%.2fGB/s", insecure.Cores[0].IPC, insecure.Cores[1].IPC, insecure.TotalGBps)
	t.Logf("dagguise: docdist=%.3f lbm=%.3f total=%.2fGB/s", dag.Cores[0].IPC, dag.Cores[1].IPC, dag.TotalGBps)
	t.Logf("fs-bta:   docdist=%.3f lbm=%.3f total=%.2fGB/s", bta.Cores[0].IPC, bta.Cores[1].IPC, bta.TotalGBps)

	if !(insecure.Cores[1].IPC > dag.Cores[1].IPC*0.99) {
		t.Errorf("insecure lbm %.3f should be >= dagguise %.3f", insecure.Cores[1].IPC, dag.Cores[1].IPC)
	}
	if !(dag.Cores[1].IPC > bta.Cores[1].IPC) {
		t.Errorf("dagguise lbm %.3f should beat fs-bta %.3f", dag.Cores[1].IPC, bta.Cores[1].IPC)
	}
}

func TestDAGguiseShaperActive(t *testing.T) {
	cfg := config.Default(2, config.DAGguise)
	sys, err := New(cfg, []CoreSpec{docdistSpec(t, true), specFor(t, "leela", 9, false)})
	if err != nil {
		t.Fatal(err)
	}
	res := sys.Measure(10_000, 100_000)
	v := res.Cores[0]
	if v.ShaperForwarded == 0 {
		t.Fatal("shaper forwarded no real requests")
	}
	if v.ShaperFakes == 0 {
		t.Fatal("shaper emitted no fakes over 100k cycles")
	}
}

func TestTwoChannelGeometryRuns(t *testing.T) {
	// The mapper, DRAM model and controller support multi-channel
	// geometries; a two-channel machine must run and deliver more
	// bandwidth to a streaming pair than one channel.
	run := func(channels int) float64 {
		cfg := config.Default(2, config.Insecure)
		cfg.Geometry.Channels = channels
		p, err := workload.ByName("lbm")
		if err != nil {
			t.Fatal(err)
		}
		sys, err := New(cfg, []CoreSpec{
			{Name: "lbm-a", Source: workload.MustSource(p, 31)},
			{Name: "lbm-b", Source: workload.MustSource(p, 32)},
		})
		if err != nil {
			t.Fatal(err)
		}
		return sys.Measure(20_000, 200_000).TotalGBps
	}
	one := run(1)
	two := run(2)
	if !(two > one*1.2) {
		t.Fatalf("two channels (%.2f GB/s) not clearly above one (%.2f GB/s)", two, one)
	}
}

func TestSpecMismatchRejected(t *testing.T) {
	cfg := config.Default(2, config.Insecure)
	if _, err := New(cfg, []CoreSpec{docdistSpec(t, false)}); err == nil {
		t.Fatal("mismatched spec count accepted")
	}
}

func TestEightCoreSystemRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("eight-core run in short mode")
	}
	cfg := config.Default(8, config.DAGguise)
	eightCoreVictim := func() CoreSpec {
		s := docdistSpec(t, true)
		// Sparser defense for heavily provisioned systems (see
		// eval.EightCoreDefense).
		s.Defense = rdag.Template{Sequences: 4, Weight: 300, WriteRatio: 0.25, Banks: 8}
		return s
	}
	specs := []CoreSpec{
		eightCoreVictim(),
		specFor(t, "lbm", 21, false),
		eightCoreVictim(),
		specFor(t, "lbm", 22, false),
		eightCoreVictim(),
		specFor(t, "lbm", 23, false),
		eightCoreVictim(),
		specFor(t, "lbm", 24, false),
	}
	sys, err := New(cfg, specs)
	if err != nil {
		t.Fatal(err)
	}
	res := sys.Measure(10_000, 100_000)
	for _, c := range res.Cores {
		if c.IPC <= 0 {
			t.Fatalf("core %s starved", c.Name)
		}
	}
}
