package sim

import (
	"fmt"

	"dagguise/internal/audit"
	"dagguise/internal/dram"
	"dagguise/internal/mem"
	"dagguise/internal/memctrl"
	"dagguise/internal/rng"
	"dagguise/internal/shaper"
)

// ClusterTenantState is one tenant's mutable state. Every field is scalar
// or an ordered slice, so the JSON form is byte-deterministic.
type ClusterTenantState struct {
	Index       int            `json:"index"`
	Rand        rng.State      `json:"rand"`
	NextAt      uint64         `json:"next_at"`
	Generated   uint64         `json:"generated"`
	Outstanding int            `json:"outstanding"`
	Pending     *mem.Request   `json:"pending,omitempty"`
	Issued      uint64         `json:"issued"`
	Completed   uint64         `json:"completed"`
	Remote      uint64         `json:"remote"`
	Stalls      uint64         `json:"stalls"`
	LastDone    uint64         `json:"last_done"`
	Tap         []audit.Sample `json:"tap,omitempty"`
}

// DeferredResponse is one response withheld by a RespDelay/RespDrop
// fault, redelivered at cycle Until.
type DeferredResponse struct {
	Until uint64       `json:"until"`
	Resp  mem.Response `json:"resp"`
}

// ClusterChannelState is one channel's mutable state: the DRAM device, the
// controller, the staged shaper egress, fault-deferred responses and the
// per-protected-tenant shapers in tenant order.
type ClusterChannelState struct {
	Index      int                     `json:"index"`
	Device     dram.DeviceState        `json:"device"`
	Controller memctrl.ControllerState `json:"controller"`
	Egress     []mem.Request           `json:"egress,omitempty"`
	Deferred   []DeferredResponse      `json:"deferred,omitempty"`
	Shapers    []shaper.State          `json:"shapers,omitempty"`
}

// ClusterState is the complete serializable state of a Cluster. Restoring
// it into a freshly built cluster with the same (config, slice, seed,
// secret) tuple continues the identical simulation.
type ClusterState struct {
	Scheme  string                `json:"scheme"`
	ChanLo  int                   `json:"chan_lo"`
	ChanHi  int                   `json:"chan_hi"`
	Seed    int64                 `json:"seed"`
	Secret  int                   `json:"secret"`
	Now     uint64                `json:"now"`
	NextID  uint64                `json:"next_id"`
	Tenants []ClusterTenantState  `json:"tenants"`
	Chans   []ClusterChannelState `json:"chans"`
	// FaultDeferred counts responses withheld by injected faults (absent
	// on clean runs, keeping their state encoding unchanged).
	FaultDeferred uint64 `json:"fault_deferred,omitempty"`
}

// SaveState captures the cluster's full mutable state.
func (c *Cluster) SaveState() (*ClusterState, error) {
	st := &ClusterState{
		Scheme: c.cfg.Scheme.String(),
		ChanLo: c.chanLo, ChanHi: c.chanHi,
		Seed: c.seed, Secret: c.secret,
		Now: c.now, NextID: c.nextID,
		FaultDeferred: c.faultDeferred,
	}
	for _, t := range c.tenants {
		ts := ClusterTenantState{
			Index:       t.index,
			Rand:        t.rng.State(),
			NextAt:      t.nextAt,
			Generated:   t.generated,
			Outstanding: t.outstanding,
			Pending:     t.pending,
			Issued:      t.issued,
			Completed:   t.completed,
			Remote:      t.remote,
			Stalls:      t.stalls,
			LastDone:    t.lastDone,
		}
		if t.tap != nil {
			ts.Tap = t.tap.SaveState()
		}
		st.Tenants = append(st.Tenants, ts)
	}
	for _, u := range c.chans {
		cs := ClusterChannelState{
			Index:      u.index,
			Device:     u.dev.SaveState(),
			Controller: u.ctrl.SaveState(),
			Egress:     append([]mem.Request(nil), u.egress...),
			Deferred:   append([]DeferredResponse(nil), u.deferred...),
		}
		for _, sh := range u.shapers {
			ss, err := sh.SaveState()
			if err != nil {
				return nil, err
			}
			cs.Shapers = append(cs.Shapers, ss)
		}
		st.Chans = append(st.Chans, cs)
	}
	return st, nil
}

// RestoreState overwrites the cluster's mutable state. The cluster must
// have been built with the same configuration, channel slice, seed and
// secret as the one that produced the state.
func (c *Cluster) RestoreState(st *ClusterState) error {
	if st == nil {
		return fmt.Errorf("sim: nil cluster state")
	}
	if st.Scheme != c.cfg.Scheme.String() {
		return fmt.Errorf("sim: cluster state is for scheme %s, cluster runs %s", st.Scheme, c.cfg.Scheme)
	}
	if st.ChanLo != c.chanLo || st.ChanHi != c.chanHi {
		return fmt.Errorf("sim: cluster state covers channels [%d, %d), cluster owns [%d, %d)",
			st.ChanLo, st.ChanHi, c.chanLo, c.chanHi)
	}
	if st.Seed != c.seed || st.Secret != c.secret {
		return fmt.Errorf("sim: cluster state (seed %d, secret %d) does not match cluster (seed %d, secret %d)",
			st.Seed, st.Secret, c.seed, c.secret)
	}
	if len(st.Tenants) != len(c.tenants) {
		return fmt.Errorf("sim: cluster state has %d tenants, cluster %d", len(st.Tenants), len(c.tenants))
	}
	if len(st.Chans) != len(c.chans) {
		return fmt.Errorf("sim: cluster state has %d channels, cluster %d", len(st.Chans), len(c.chans))
	}
	for i, ts := range st.Tenants {
		t := c.tenants[i]
		if ts.Index != t.index {
			return fmt.Errorf("sim: tenant state %d labelled %d", i, ts.Index)
		}
		if (ts.Tap != nil) && t.tap == nil {
			return fmt.Errorf("sim: tenant %d state carries a tap, tenant has none", i)
		}
		t.rng.Restore(ts.Rand)
		t.nextAt = ts.NextAt
		t.generated = ts.Generated
		t.outstanding = ts.Outstanding
		t.pending = ts.Pending
		t.issued = ts.Issued
		t.completed = ts.Completed
		t.remote = ts.Remote
		t.stalls = ts.Stalls
		t.lastDone = ts.LastDone
		if t.tap != nil {
			t.tap.RestoreState(ts.Tap)
		}
	}
	for i, cs := range st.Chans {
		u := c.chans[i]
		if cs.Index != u.index {
			return fmt.Errorf("sim: channel state %d labelled %d, cluster channel is %d", i, cs.Index, u.index)
		}
		if len(cs.Shapers) != len(u.shapers) {
			return fmt.Errorf("sim: channel %d state has %d shapers, channel %d", u.index, len(cs.Shapers), len(u.shapers))
		}
		if err := u.dev.RestoreState(cs.Device); err != nil {
			return err
		}
		if err := u.ctrl.RestoreState(cs.Controller); err != nil {
			return err
		}
		u.egress = append(u.egress[:0], cs.Egress...)
		u.deferred = append(u.deferred[:0], cs.Deferred...)
		for j, ss := range cs.Shapers {
			if err := u.shapers[j].RestoreState(ss); err != nil {
				return err
			}
		}
	}
	c.now = st.Now
	c.nextID = st.NextID
	c.faultDeferred = st.FaultDeferred
	return nil
}
