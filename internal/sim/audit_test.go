package sim

import (
	"testing"

	"dagguise/internal/audit"
)

// TestAuditTapNonInterference is the audit-layer analogue of the
// observability invariant: attaching a leakage-audit tap must leave the
// shaped egress stream bit-identical, because a tap that perturbed timing
// would itself be a side channel.
func TestAuditTapNonInterference(t *testing.T) {
	const cycles = 60_000
	run := func(secret int64, tapped bool) ([]EgressEvent, *audit.Tap) {
		sys := obsSystem(t, secret)
		var tap *audit.Tap
		if tapped {
			tap = audit.NewTap()
		}
		// Attach unconditionally: a nil tap via the nil-receiver no-op
		// path must behave exactly like no attachment.
		sys.AuditResponses(1, tap)
		sys.EnableEgressTrace()
		if err := sys.RunChecked(cycles); err != nil {
			t.Fatal(err)
		}
		return sys.EgressTrace(1), tap
	}

	off, _ := run(11, false)
	on, tap := run(11, true)
	if len(off) == 0 {
		t.Fatal("no shaped egress recorded")
	}
	if len(off) != len(on) {
		t.Fatalf("egress length differs with audit tap: %d vs %d", len(off), len(on))
	}
	for i := range off {
		if off[i] != on[i] {
			t.Fatalf("egress event %d differs with audit tap: %+v vs %+v", i, off[i], on[i])
		}
	}
	if tap.Len() == 0 {
		t.Fatal("audit tap recorded nothing")
	}
	// The recorded stream must be monotone in cycle with self-consistent
	// gaps (gap i = cycle i - cycle i-1).
	samples := tap.Samples()
	for i := 1; i < len(samples); i++ {
		if samples[i].Cycle < samples[i-1].Cycle {
			t.Fatalf("sample %d cycle regressed", i)
		}
		if samples[i].Value != samples[i].Cycle-samples[i-1].Cycle {
			t.Fatalf("sample %d gap %d != cycle delta %d",
				i, samples[i].Value, samples[i].Cycle-samples[i-1].Cycle)
		}
	}
}

// TestAuditTapSecretIndependentUnderDAGguise runs two different victim
// secrets through tapped systems: the response-timing stream the tap
// records must be identical, the full-system version of the Table 1 claim.
func TestAuditTapSecretIndependentUnderDAGguise(t *testing.T) {
	const cycles = 60_000
	run := func(secret int64) []audit.Sample {
		sys := obsSystem(t, secret)
		tap := audit.NewTap()
		sys.AuditResponses(1, tap)
		if err := sys.RunChecked(cycles); err != nil {
			t.Fatal(err)
		}
		return tap.Samples()
	}
	a, b := run(11), run(13)
	if len(a) == 0 {
		t.Fatal("no samples recorded")
	}
	if len(a) != len(b) {
		t.Fatalf("sample counts differ across secrets: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sample %d differs across secrets: %+v vs %+v", i, a[i], b[i])
		}
	}
}
