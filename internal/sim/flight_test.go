package sim

import (
	"reflect"
	"testing"
	"time"

	"dagguise/internal/obs"
)

// TestFullObservabilityNonInterference extends the PR 2 invariant to the
// whole flight recorder: with metrics, ring tracing, spans AND the
// cycle-attribution profiler all enabled at once, the shaped egress
// stream must stay bit-identical to a fully disabled run, and must not
// depend on the victim secret.
func TestFullObservabilityNonInterference(t *testing.T) {
	const cycles = 60_000
	run := func(secret int64, everything bool) []EgressEvent {
		sys := obsSystem(t, secret)
		if everything {
			tr := obs.NewTracer(1 << 16)
			sys.Observe(obs.NewRegistry(sys.NumDomains()), tr)
			sys.TraceSpans(obs.NewSpans(tr))
			sys.Profile(obs.NewCycleProfile())
			root := sys.Spans().Begin("run", obs.CompSystem, 0, 0, 0, sys.Now())
			defer sys.Spans().End(root, sys.Now())
		}
		sys.EnableEgressTrace()
		if err := sys.RunChecked(cycles); err != nil {
			t.Fatal(err)
		}
		return sys.EgressTrace(1)
	}
	plain := run(11, false)
	full := run(11, true)
	if len(plain) == 0 {
		t.Fatal("empty egress trace")
	}
	if !reflect.DeepEqual(plain, full) {
		t.Fatal("full flight recorder perturbed the shaped egress stream")
	}
	other := run(12, true)
	if !reflect.DeepEqual(full, other) {
		t.Fatal("secret leaked into egress with the full flight recorder on")
	}
}

// TestCycleAttributionCoverage is the acceptance bar for the ROADMAP's
// event-driven refactor: the profiler's report must account for >=95%
// of the wall time of the BenchmarkSystemTick loop shape (same two-core
// DAGguise system, ticked back to back).
func TestCycleAttributionCoverage(t *testing.T) {
	sys := benchSystem(t)
	prof := obs.NewCycleProfile()
	sys.Profile(prof)
	// Warm up out of profile, then measure a tight tick loop.
	if err := sys.RunChecked(5_000); err != nil {
		t.Fatal(err)
	}
	prof.Reset()
	const ticks = 200_000
	start := time.Now()
	if err := sys.RunChecked(ticks); err != nil {
		t.Fatal(err)
	}
	wall := time.Since(start)

	r := prof.Report(wall, ticks)
	if r.Coverage < 0.95 {
		t.Fatalf("cycle attribution covers %.1f%% of wall time, want >= 95%%\n%s", 100*r.Coverage, r)
	}
	if r.Coverage > 1.02 {
		t.Fatalf("coverage %.3f exceeds wall time: laps are double counting\n%s", r.Coverage, r)
	}
	// Every core component of the tick loop must appear.
	seen := map[string]bool{}
	for _, row := range r.Buckets {
		seen[row.Name] = true
	}
	for _, want := range []string{"cpu", "shaper", "egress", "sched", "dram", "memctrl", "route", "harness"} {
		if !seen[want] {
			t.Errorf("bucket %q missing from the report:\n%s", want, r)
		}
	}
}

// benchSystem mirrors the root BenchmarkSystemTick configuration: the
// two-core DAGguise machine whose tick cost gates the event-driven
// refactor.
func benchSystem(t *testing.T) *System {
	t.Helper()
	return obsSystem(t, 11)
}

// TestSpanNestingAcrossCheckpoint pins the flight-recorder checkpoint
// contract at system level: spans open at SaveState reopen identically
// after RestoreState into a fresh system — same IDs, parents, names and
// start cycles — and the reopened recorder emits begin events into the
// new tracer so the post-restore Perfetto export nests exactly like an
// uninterrupted run's.
func TestSpanNestingAcrossCheckpoint(t *testing.T) {
	sys := obsSystem(t, 11)
	tr := obs.NewTracer(1 << 16)
	sp := obs.NewSpans(tr)
	sys.Observe(obs.NewRegistry(sys.NumDomains()), tr)
	sys.TraceSpans(sp)

	job := sp.Begin("job", obs.CompRunner, 0, 1, 0, sys.Now())
	if err := sys.RunChecked(10_000); err != nil {
		t.Fatal(err)
	}
	chunk := sp.Begin("chunk", obs.CompRunner, 0, 1, job, sys.Now())
	if err := sys.RunChecked(5_000); err != nil {
		t.Fatal(err)
	}

	st, err := sys.SaveState()
	if err != nil {
		t.Fatal(err)
	}
	if st.Spans == nil || len(st.Spans.Open) != 2 {
		t.Fatalf("state spans = %+v, want 2 open", st.Spans)
	}

	sys2 := obsSystem(t, 11)
	tr2 := obs.NewTracer(1 << 16)
	sp2 := obs.NewSpans(tr2)
	sys2.Observe(obs.NewRegistry(sys2.NumDomains()), tr2)
	sys2.TraceSpans(sp2)
	if err := sys2.RestoreState(st); err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(sp2.Open(), sp.Open()) {
		t.Fatalf("open spans diverge after restore:\ngot  %+v\nwant %+v", sp2.Open(), sp.Open())
	}
	// The restored tracer holds reopened begin events for both spans, at
	// their original start cycles, before any post-restore events.
	var begins []obs.Event
	for _, ev := range tr2.Events() {
		if ev.Kind == obs.EvSpanBegin {
			begins = append(begins, ev)
		}
	}
	if len(begins) != 2 || begins[0].Span != job || begins[1].Span != chunk {
		t.Fatalf("reopened begins = %+v", begins)
	}
	if begins[1].Parent != job {
		t.Fatalf("chunk span lost its parent: %+v", begins[1])
	}

	// Ending the reopened spans after more simulated work closes them on
	// both recorders identically, and new IDs continue past the old ones.
	if err := sys2.RunChecked(5_000); err != nil {
		t.Fatal(err)
	}
	sp2.End(chunk, sys2.Now())
	sp2.End(job, sys2.Now())
	if next := sp2.Begin("post", obs.CompRunner, 0, 1, 0, sys2.Now()); next != chunk+1 {
		t.Fatalf("post-restore span ID = %d, want %d", next, chunk+1)
	}
}

// TestSpansInMeasure checks Measure brackets warmup and window in
// nested spans on the attached recorder.
func TestSpansInMeasure(t *testing.T) {
	sys := obsSystem(t, 11)
	tr := obs.NewTracer(1 << 16)
	sys.Observe(nil, tr)
	sys.TraceSpans(obs.NewSpans(tr))
	sys.Measure(2_000, 10_000)

	var names []string
	var parents []uint64
	for _, ev := range tr.Events() {
		if ev.Kind == obs.EvSpanBegin {
			names = append(names, ev.Name)
			parents = append(parents, ev.Parent)
		}
	}
	if !reflect.DeepEqual(names, []string{"measure", "warmup", "window"}) {
		t.Fatalf("measure spans = %v", names)
	}
	if parents[0] != 0 || parents[1] != 1 || parents[2] != 1 {
		t.Fatalf("measure span parents = %v", parents)
	}
	if open := sys.Spans().Open(); len(open) != 0 {
		t.Fatalf("spans left open after Measure: %+v", open)
	}
}
