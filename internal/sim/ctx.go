package sim

import "context"

// ctxCheckInterval is how many cycles the context-aware run loops advance
// between context polls. Polling every tick would put a synchronized
// atomic load on the simulator's hot path; 4096 cycles bounds cancellation
// latency to a few microseconds of wall time while keeping the poll cost
// unmeasurable.
const ctxCheckInterval = 4096

// RunCheckedCtx is RunChecked with cooperative cancellation: the context is
// polled every ctxCheckInterval cycles and its error is returned as soon as
// it fires (use errors.Is with context.Canceled / context.DeadlineExceeded).
// The machine stops at a cycle boundary in a consistent state, so a caller
// may checkpoint it with SaveState and resume later.
func (s *System) RunCheckedCtx(ctx context.Context, cycles uint64) error {
	restore := s.armWatchdog()
	defer restore()
	end := s.now + cycles
	for s.now < end {
		if err := ctx.Err(); err != nil {
			return err
		}
		stop := s.now + ctxCheckInterval
		if stop > end {
			stop = end
		}
		for s.now < stop {
			if err := s.tick(); err != nil {
				return err
			}
		}
	}
	return nil
}

// MeasureCheckedCtx is MeasureChecked with cooperative cancellation through
// both the warmup and the measurement window.
func (s *System) MeasureCheckedCtx(ctx context.Context, warmup, window uint64) (Result, error) {
	return s.measureWith(func(cycles uint64) error {
		return s.RunCheckedCtx(ctx, cycles)
	}, warmup, window)
}
