// Package rng wraps math/rand with a draw-counting source so that a
// generator's exact position in its pseudo-random stream can be captured in
// a checkpoint and restored bit-exactly. Every place the simulator draws
// randomness at run time (shaper fake addresses, Camouflage interval
// sampling, workload trace generation) holds an *rng.Rand instead of a bare
// *rand.Rand; internal/ckpt serializes the two-word State and a restored
// simulation continues the identical stream.
//
// The wrapper delegates to the standard library generator unchanged — the
// value stream of rng.New(seed) is exactly that of
// rand.New(rand.NewSource(seed)) — so swapping it in is invisible to every
// golden test. Restore replays the recorded number of source draws, which
// is exact because both Source methods (Int63 and Uint64) consume exactly
// one step of the underlying generator.
package rng

import "math/rand"

// State is the serializable position of a Rand: the seed it was created
// with and the number of source draws consumed since.
type State struct {
	Seed  int64  `json:"seed"`
	Draws uint64 `json:"draws"`
}

// countingSource counts every draw taken from the wrapped source.
type countingSource struct {
	inner rand.Source
	s64   rand.Source64 // inner, when it supports Uint64 (it always does today)
	draws uint64
}

func (s *countingSource) Int63() int64 {
	s.draws++
	return s.inner.Int63()
}

func (s *countingSource) Uint64() uint64 {
	s.draws++
	if s.s64 != nil {
		return s.s64.Uint64()
	}
	// Fallback composition, mirroring math/rand's internal read64: never
	// taken with the standard source, which implements Source64.
	s.draws++
	return uint64(s.inner.Int63())>>31 | uint64(s.inner.Int63())<<32
}

func (s *countingSource) Seed(seed int64) {
	s.inner.Seed(seed)
	s.draws = 0
}

// Rand is a checkpointable pseudo-random generator. The embedded *rand.Rand
// exposes the full standard API (Intn, Int63n, Float64, Shuffle, ...).
type Rand struct {
	*rand.Rand
	seed int64
	src  *countingSource
}

// New returns a generator producing the same stream as
// rand.New(rand.NewSource(seed)).
func New(seed int64) *Rand {
	inner := rand.NewSource(seed)
	src := &countingSource{inner: inner}
	if s64, ok := inner.(rand.Source64); ok {
		src.s64 = s64
	}
	return &Rand{Rand: rand.New(src), seed: seed, src: src}
}

// State returns the generator's serializable position.
func (r *Rand) State() State {
	return State{Seed: r.seed, Draws: r.src.draws}
}

// Restore rewinds or fast-forwards the generator to the given state. The
// state's seed replaces the current one, and the stream is advanced by
// replaying the recorded draws; the next value drawn after Restore is
// exactly the value that would have followed State.
func (r *Rand) Restore(st State) {
	inner := rand.NewSource(st.Seed)
	src := &countingSource{inner: inner}
	if s64, ok := inner.(rand.Source64); ok {
		src.s64 = s64
	}
	for i := uint64(0); i < st.Draws; i++ {
		src.Int63()
	}
	src.draws = st.Draws
	r.seed = st.Seed
	r.src = src
	r.Rand = rand.New(src)
}

// FromState builds a generator positioned at the given state.
func FromState(st State) *Rand {
	r := New(st.Seed)
	r.Restore(st)
	return r
}

// Derive maps a base seed and a label onto a substream seed, so that
// independently named consumers (per-tenant auditors, per-shard noise
// sources) get decorrelated but individually reproducible streams. The
// mix is FNV-1a over the label folded into the seed — a pure function of
// its arguments, stable across processes and platforms.
//
// The fleet fabric leans on two properties pinned by tests:
//
//   - Distinct labels under one base seed yield distinct substream seeds
//     at campaign scale (tens of thousands of shard/tenant/shaper labels;
//     TestDeriveNoCollisionsAtShardScale). FNV-1a is not cryptographic, so
//     collisions are possible in principle — the test keeps the label
//     vocabulary the repo actually uses collision-free.
//   - A (seed, label) pair is a stable address: any worker on any machine
//     reconstructs the same substream, which is what lets a shard be
//     re-executed after a crash, or on a different worker, with identical
//     results.
//
// Labels should be fully qualified (e.g. "shaper-ch0002-dom00017", not
// "17") so that differently scoped consumers can never alias.
func Derive(seed int64, label string) int64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= prime64
	}
	return seed ^ int64(h&0x7fffffffffffffff)
}
