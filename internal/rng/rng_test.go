package rng

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestMatchesStdlibStream pins the load-bearing compatibility property: the
// wrapper's value stream is exactly math/rand's for the same seed, so
// swapping rng.New in for rand.New(rand.NewSource(seed)) changes no golden
// output anywhere in the repo.
func TestMatchesStdlibStream(t *testing.T) {
	r := New(42)
	ref := rand.New(rand.NewSource(42))
	for i := 0; i < 2000; i++ {
		switch i % 5 {
		case 0:
			if got, want := r.Int63(), ref.Int63(); got != want {
				t.Fatalf("draw %d: Int63 %d != %d", i, got, want)
			}
		case 1:
			if got, want := r.Intn(977), ref.Intn(977); got != want {
				t.Fatalf("draw %d: Intn %d != %d", i, got, want)
			}
		case 2:
			if got, want := r.Float64(), ref.Float64(); got != want {
				t.Fatalf("draw %d: Float64 %v != %v", i, got, want)
			}
		case 3:
			if got, want := r.Uint64(), ref.Uint64(); got != want {
				t.Fatalf("draw %d: Uint64 %d != %d", i, got, want)
			}
		case 4:
			if got, want := r.Int63n(1<<40), ref.Int63n(1<<40); got != want {
				t.Fatalf("draw %d: Int63n %d != %d", i, got, want)
			}
		}
	}
}

// TestSaveRestoreContinues proves the checkpoint property: a generator
// restored from State produces exactly the stream the original generator
// produces after the save point, across a mixed method workload.
func TestSaveRestoreContinues(t *testing.T) {
	orig := New(7)
	// Consume a messy mix so the draw counter covers every method.
	for i := 0; i < 1234; i++ {
		switch i % 4 {
		case 0:
			orig.Intn(31)
		case 1:
			orig.Float64()
		case 2:
			orig.Int63n(1 << 50)
		case 3:
			orig.Shuffle(8, func(a, b int) {})
		}
	}
	st := orig.State()

	restored := FromState(st)
	if restored.State() != st {
		t.Fatalf("restored state %+v != saved %+v", restored.State(), st)
	}
	for i := 0; i < 2000; i++ {
		switch i % 3 {
		case 0:
			if got, want := restored.Int63(), orig.Int63(); got != want {
				t.Fatalf("continuation draw %d: %d != %d", i, got, want)
			}
		case 1:
			if got, want := restored.Float64(), orig.Float64(); got != want {
				t.Fatalf("continuation draw %d: %v != %v", i, got, want)
			}
		case 2:
			if got, want := restored.Intn(4096), orig.Intn(4096); got != want {
				t.Fatalf("continuation draw %d: %d != %d", i, got, want)
			}
		}
	}
}

// TestRestoreInPlace checks Restore on a live generator rewinds it.
func TestRestoreInPlace(t *testing.T) {
	r := New(99)
	r.Intn(1000)
	st := r.State()
	want := []int{r.Intn(1000), r.Intn(1000), r.Intn(1000)}
	r.Restore(st)
	for i, w := range want {
		if got := r.Intn(1000); got != w {
			t.Fatalf("replayed draw %d: %d != %d", i, got, w)
		}
	}
}

// TestZeroDrawState covers the fresh-generator round trip.
func TestZeroDrawState(t *testing.T) {
	st := New(5).State()
	if st != (State{Seed: 5}) {
		t.Fatalf("fresh state = %+v", st)
	}
	a, b := FromState(st), New(5)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("fresh restore diverges at draw %d", i)
		}
	}
}

// TestDeriveStable pins Derive as a pure, process-independent function:
// same (seed, label) always maps to the same substream seed, and the seed
// and label both matter.
func TestDeriveStable(t *testing.T) {
	if Derive(42, "tenant-00001") != Derive(42, "tenant-00001") {
		t.Fatal("Derive is not deterministic")
	}
	if Derive(42, "tenant-00001") == Derive(43, "tenant-00001") {
		t.Fatal("Derive ignores the seed")
	}
	if Derive(42, "tenant-00001") == Derive(42, "tenant-00002") {
		t.Fatal("Derive ignores the label")
	}
}

// TestDeriveNoCollisionsAtShardScale is the fleet fabric's substream
// independence smoke test: the label vocabulary a big campaign generates —
// 10k shard seeds crossed with the per-tenant and per-shaper label shapes
// sim.Cluster uses — must produce no colliding substream seeds under one
// base seed.
func TestDeriveNoCollisionsAtShardScale(t *testing.T) {
	const base = int64(1)
	seen := make(map[int64]string, 64_000)
	check := func(label string) {
		t.Helper()
		s := Derive(base, label)
		if prev, dup := seen[s]; dup {
			t.Fatalf("substream seed collision: %q and %q both derive %d", prev, label, s)
		}
		seen[s] = label
	}
	for shard := 0; shard < 10_000; shard++ {
		check(fmt.Sprintf("shard-%05d", shard))
	}
	// One shard's worth of tenant and shaper streams at fleet scale.
	for tenant := 0; tenant < 10_000; tenant++ {
		check(fmt.Sprintf("tenant-%05d", tenant))
	}
	for ch := 0; ch < 16; ch++ {
		for dom := 1; dom <= 2_000; dom++ {
			check(fmt.Sprintf("shaper-ch%04d-dom%05d", ch, dom))
		}
	}
}
