package mem

import "testing"

func TestRouteChannelRange(t *testing.T) {
	for _, channels := range []int{1, 2, 3, 4, 8, 16} {
		for d := Domain(0); d < 64; d++ {
			for addr := uint64(0); addr < 1<<16; addr += 4096 {
				ch := RouteChannel(d, addr, channels)
				if ch < 0 || ch >= channels {
					t.Fatalf("RouteChannel(%d, %#x, %d) = %d out of range", d, addr, channels, ch)
				}
			}
		}
	}
}

func TestRouteChannelDeterministic(t *testing.T) {
	for d := Domain(0); d < 300; d++ {
		addr := uint64(d) * 0x40
		a := RouteChannel(d, addr, 4)
		b := RouteChannel(d, addr, 4)
		if a != b {
			t.Fatalf("RouteChannel not deterministic for domain %d: %d vs %d", d, a, b)
		}
	}
}

// TestRouteChannelSpread checks the hash spreads a single tenant's
// sequential line stream over all channels, and that no channel starves:
// a degenerate router would serialise the fleet onto one controller.
func TestRouteChannelSpread(t *testing.T) {
	const channels = 4
	const lines = 4096
	for _, d := range []Domain{1, 7, 201} {
		var counts [channels]int
		for i := 0; i < lines; i++ {
			counts[RouteChannel(d, uint64(i)*64, channels)]++
		}
		for ch, n := range counts {
			if n < lines/channels/2 || n > lines/channels*2 {
				t.Fatalf("domain %d channel %d got %d of %d lines (want near %d)",
					d, ch, n, lines, lines/channels)
			}
		}
	}
}

// TestRouteChannelDomainDecorrelated checks that two domains issuing the
// identical address stream are routed differently somewhere: the domain
// must be part of the hash input.
func TestRouteChannelDomainDecorrelated(t *testing.T) {
	diff := 0
	for i := 0; i < 1024; i++ {
		addr := uint64(i) * 64
		if RouteChannel(1, addr, 4) != RouteChannel(2, addr, 4) {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("domains 1 and 2 route identically on every address; domain not hashed")
	}
}
