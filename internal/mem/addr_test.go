package mem

import (
	"testing"
	"testing/quick"
)

func table2Geometry() Geometry {
	return Geometry{Channels: 1, Ranks: 1, Banks: 8, RowBytes: 8 << 10, LineBytes: 64, CapacityGiB: 4}
}

func TestNewMapperRejectsNonPowerOfTwo(t *testing.T) {
	cases := []Geometry{
		{Channels: 3, Ranks: 1, Banks: 8, RowBytes: 8192, LineBytes: 64},
		{Channels: 1, Ranks: 0, Banks: 8, RowBytes: 8192, LineBytes: 64},
		{Channels: 1, Ranks: 1, Banks: 6, RowBytes: 8192, LineBytes: 64},
		{Channels: 1, Ranks: 1, Banks: 8, RowBytes: 1000, LineBytes: 64},
		{Channels: 1, Ranks: 1, Banks: 8, RowBytes: 8192, LineBytes: 48},
		{Channels: 1, Ranks: 1, Banks: 8, RowBytes: 32, LineBytes: 64},
	}
	for i, g := range cases {
		if _, err := NewMapper(g); err == nil {
			t.Errorf("case %d: expected error for geometry %+v", i, g)
		}
	}
}

func TestMapperDecodeFields(t *testing.T) {
	m := MustMapper(table2Geometry())
	// Line-interleaved: consecutive lines hit consecutive banks.
	for line := 0; line < 16; line++ {
		c := m.Decode(uint64(line * 64))
		if c.Bank != line%8 {
			t.Fatalf("line %d: bank = %d, want %d", line, c.Bank, line%8)
		}
	}
	// Row bytes 8KiB with 64B lines across 8 banks: 128 columns per row,
	// so the row increments every 8*128 lines.
	linesPerRowAllBanks := 8 * 128
	c := m.Decode(uint64(linesPerRowAllBanks * 64))
	if c.Row != 1 {
		t.Fatalf("row = %d, want 1", c.Row)
	}
	if c.Bank != 0 || c.Column != 0 {
		t.Fatalf("bank/col = %d/%d, want 0/0", c.Bank, c.Column)
	}
}

func TestMapperEncodeDecodeRoundTrip(t *testing.T) {
	m := MustMapper(table2Geometry())
	f := func(raw uint64) bool {
		addr := (raw % (4 << 30)) &^ 63 // line aligned, in capacity
		c := m.Decode(addr)
		return m.Encode(c) == addr
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestMapperDecodeEncodeRoundTrip(t *testing.T) {
	m := MustMapper(table2Geometry())
	f := func(bank uint8, row uint32, col uint16) bool {
		c := Coord{Bank: int(bank % 8), Row: uint64(row % 4096), Column: int(col % 128)}
		got := m.Decode(m.Encode(c))
		return got == c
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestAddrForBank(t *testing.T) {
	m := MustMapper(table2Geometry())
	for b := 0; b < m.BankCount(); b++ {
		addr := m.AddrForBank(b, 7, 3)
		c := m.Decode(addr)
		if m.FlatBank(c) != b {
			t.Errorf("bank %d: FlatBank = %d", b, m.FlatBank(c))
		}
		if c.Row != 7 || c.Column != 3 {
			t.Errorf("bank %d: row/col = %d/%d", b, c.Row, c.Column)
		}
	}
}

func TestMapperMultiRank(t *testing.T) {
	m := MustMapper(Geometry{Channels: 2, Ranks: 2, Banks: 8, RowBytes: 8 << 10, LineBytes: 64, CapacityGiB: 8})
	if m.BankCount() != 32 {
		t.Fatalf("BankCount = %d, want 32", m.BankCount())
	}
	seen := make(map[int]bool)
	for fb := 0; fb < 32; fb++ {
		c := m.Decode(m.AddrForBank(fb, 0, 0))
		got := m.FlatBank(c)
		if got != fb {
			t.Fatalf("flat bank %d decoded to %d", fb, got)
		}
		seen[got] = true
	}
	if len(seen) != 32 {
		t.Fatalf("only %d distinct banks reachable", len(seen))
	}
}

func TestLineAddr(t *testing.T) {
	m := MustMapper(table2Geometry())
	if got := m.LineAddr(0x12345); got != 0x12340 {
		t.Fatalf("LineAddr = %#x, want 0x12340", got)
	}
}

func TestKindString(t *testing.T) {
	if Read.String() != "R" || Write.String() != "W" {
		t.Fatal("Kind.String mismatch")
	}
}

func TestRequestString(t *testing.T) {
	r := Request{ID: 1, Addr: 0x40, Kind: Write, Domain: 2, Fake: true}
	s := r.String()
	if s == "" {
		t.Fatal("empty request string")
	}
}
