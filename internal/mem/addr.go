package mem

import "fmt"

// Geometry describes the DRAM organisation visible to address mapping.
// The Table 2 configuration is 1 channel, 1 rank/channel, 8 banks/rank.
type Geometry struct {
	Channels    int
	Ranks       int
	Banks       int
	RowBytes    int // bytes per DRAM row (per bank)
	LineBytes   int // cache line size
	CapacityGiB int // total capacity, used for address wrap-around
}

// Coord locates a cache line within the DRAM organisation.
type Coord struct {
	Channel int
	Rank    int
	Bank    int
	Row     uint64
	Column  int
}

// Mapper decodes physical addresses into DRAM coordinates using a
// line-interleaved scheme: consecutive cache lines map to consecutive banks
// so that streaming traffic spreads across all banks, and the row index
// occupies the high bits. This mirrors the DRAMSim2 "scheme7"-style mapping
// used in the paper's artifact.
type Mapper struct {
	geo        Geometry
	lineShift  uint
	bankShift  uint
	bankMask   uint64
	chanShift  uint
	chanMask   uint64
	rankShift  uint
	rankMask   uint64
	colShift   uint
	colMask    uint64
	rowShift   uint
	capacity   uint64
	linesPerRw int
}

// NewMapper validates the geometry and builds a Mapper. All field values
// must be powers of two.
func NewMapper(geo Geometry) (*Mapper, error) {
	for _, v := range []struct {
		name string
		val  int
	}{
		{"channels", geo.Channels},
		{"ranks", geo.Ranks},
		{"banks", geo.Banks},
		{"row bytes", geo.RowBytes},
		{"line bytes", geo.LineBytes},
	} {
		if v.val <= 0 || v.val&(v.val-1) != 0 {
			return nil, fmt.Errorf("mem: %s must be a positive power of two, got %d", v.name, v.val)
		}
	}
	if geo.RowBytes < geo.LineBytes {
		return nil, fmt.Errorf("mem: row bytes %d smaller than line bytes %d", geo.RowBytes, geo.LineBytes)
	}
	m := &Mapper{geo: geo, linesPerRw: geo.RowBytes / geo.LineBytes}
	m.lineShift = log2(uint64(geo.LineBytes))
	next := m.lineShift
	m.chanShift, m.chanMask, next = field(next, geo.Channels)
	m.bankShift, m.bankMask, next = field(next, geo.Banks)
	m.rankShift, m.rankMask, next = field(next, geo.Ranks)
	m.colShift, m.colMask, next = field(next, m.linesPerRw)
	m.rowShift = next
	cap := uint64(geo.CapacityGiB)
	if cap == 0 {
		cap = 4
	}
	m.capacity = cap << 30
	return m, nil
}

// MustMapper is NewMapper that panics on error, for use with known-good
// static configurations.
func MustMapper(geo Geometry) *Mapper {
	m, err := NewMapper(geo)
	if err != nil {
		panic(err)
	}
	return m
}

func field(shift uint, n int) (fshift uint, mask uint64, next uint) {
	bits := log2(uint64(n))
	return shift, uint64(n - 1), shift + bits
}

func log2(v uint64) uint {
	var n uint
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// Geometry returns the geometry the mapper was built with.
func (m *Mapper) Geometry() Geometry { return m.geo }

// Decode maps a physical byte address to its DRAM coordinate.
func (m *Mapper) Decode(addr uint64) Coord {
	addr %= m.capacity
	return Coord{
		Channel: int((addr >> m.chanShift) & m.chanMask),
		Rank:    int((addr >> m.rankShift) & m.rankMask),
		Bank:    int((addr >> m.bankShift) & m.bankMask),
		Column:  int((addr >> m.colShift) & m.colMask),
		Row:     addr >> m.rowShift,
	}
}

// Encode is the inverse of Decode: it builds a line-aligned physical address
// from a DRAM coordinate. Encode(Decode(a)) equals a with the line offset
// bits cleared, for addresses below the configured capacity.
func (m *Mapper) Encode(c Coord) uint64 {
	addr := uint64(c.Channel) << m.chanShift
	addr |= uint64(c.Bank) << m.bankShift
	addr |= uint64(c.Rank) << m.rankShift
	addr |= uint64(c.Column) << m.colShift
	addr |= c.Row << m.rowShift
	return addr
}

// LineAddr clears the intra-line offset bits of addr.
func (m *Mapper) LineAddr(addr uint64) uint64 {
	return addr &^ (uint64(m.geo.LineBytes) - 1)
}

// BankCount returns the total number of banks across all ranks and channels.
func (m *Mapper) BankCount() int {
	return m.geo.Channels * m.geo.Ranks * m.geo.Banks
}

// FlatBank returns a dense index in [0, BankCount) identifying the bank of
// the coordinate across channels and ranks.
func (m *Mapper) FlatBank(c Coord) int {
	return (c.Channel*m.geo.Ranks+c.Rank)*m.geo.Banks + c.Bank
}

// AddrForBank constructs a line-aligned address that decodes to the given
// flat bank index, row and column. Useful for attack code that needs precise
// bank placement.
func (m *Mapper) AddrForBank(flatBank int, row uint64, column int) uint64 {
	banks := m.geo.Banks
	ranks := m.geo.Ranks
	bank := flatBank % banks
	rank := (flatBank / banks) % ranks
	ch := flatBank / (banks * ranks)
	return m.Encode(Coord{Channel: ch, Rank: rank, Bank: bank, Row: row, Column: column})
}
