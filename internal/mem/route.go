package mem

// RoutingWidth is the size of the security-domain space the channel router
// covers: the full uint16 Domain space. Multi-channel configurations must
// keep their domain count below this bound (domain 0 is reserved for
// unattributed traffic), which config validation enforces.
const RoutingWidth = 1 << 16

// RouteChannel deterministically maps a (domain, line address) pair onto a
// channel index in [0, channels). The hash is FNV-1a over the domain
// followed by the line address bytes — a pure function of its arguments,
// stable across processes and platforms, so any two shards (or a shard and
// its resumed incarnation) agree on where every request goes.
//
// Folding the domain into the hash decorrelates tenants: two tenants
// streaming the same address range still spread differently across
// channels, so no tenant can colocate itself with a victim on every
// channel by mirroring the victim's addresses alone.
func RouteChannel(d Domain, lineAddr uint64, channels int) int {
	if channels <= 1 {
		return 0
	}
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	h ^= uint64(d) & 0xff
	h *= prime64
	h ^= uint64(d) >> 8
	h *= prime64
	for i := uint(0); i < 64; i += 8 {
		h ^= (lineAddr >> i) & 0xff
		h *= prime64
	}
	return int(h % uint64(channels))
}
