// Package mem defines the shared memory request/response types that flow
// between cores, caches, the DAGguise shaper, the memory controller and the
// DRAM device model, together with the physical address mapping used to
// split addresses into channel/rank/bank/row/column coordinates.
package mem

import "fmt"

// Kind distinguishes read and write requests.
type Kind uint8

const (
	// Read is a memory read (cache-line fill).
	Read Kind = iota
	// Write is a memory write (dirty line write-back).
	Write
)

// String returns "R" or "W".
func (k Kind) String() string {
	if k == Write {
		return "W"
	}
	return "R"
}

// Domain identifies a security domain. Every memory request is tagged with
// the domain of the core that produced it (paper §4.4); the shaper keeps one
// private transaction queue and one defense rDAG per protected domain.
type Domain uint16

// UnprotectedDomain is the conventional domain ID for traffic that bypasses
// the shaper and enters the global transaction queue directly.
const UnprotectedDomain Domain = 0

// Request is a memory transaction headed for the memory controller.
type Request struct {
	// ID is unique per request within a simulation.
	ID uint64
	// Addr is the physical byte address (line aligned by the cache layer).
	Addr uint64
	// Kind is Read or Write.
	Kind Kind
	// Domain tags the issuing security domain.
	Domain Domain
	// Fake marks a shaper-generated decoy request. Fake requests occupy
	// scheduler and DRAM timing state like real ones but carry no data and
	// produce no core-visible response ("suppression" approach, §4.4).
	Fake bool
	// Prefetch marks speculative traffic (stream prefetches, store
	// fills); demand-first schedulers deprioritise it. Shapers strip the
	// flag: all shaper emissions look identical downstream, otherwise the
	// demand/prefetch mix would leak through scheduling priority.
	Prefetch bool
	// Issue is the cycle the producer handed the request downstream.
	Issue uint64
	// Arrival is the cycle the request entered the controller's
	// transaction queue (set by the controller).
	Arrival uint64
}

// Response reports completion of a request back to its producer.
type Response struct {
	ID         uint64
	Addr       uint64
	Kind       Kind
	Domain     Domain
	Fake       bool
	Completion uint64
}

// String renders a compact single-line description of the request.
func (r Request) String() string {
	fake := ""
	if r.Fake {
		fake = " fake"
	}
	return fmt.Sprintf("req{id=%d %s addr=%#x dom=%d%s}", r.ID, r.Kind, r.Addr, r.Domain, fake)
}
