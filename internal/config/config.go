// Package config carries the simulated architecture configuration from
// Table 2 of the paper: core, cache, DRAM geometry and DRAM timing
// parameters, plus the protection-scheme selector used by the evaluation.
package config

import (
	"fmt"

	"dagguise/internal/mem"
)

// Scheme selects the memory-side protection mechanism under evaluation.
type Scheme int

const (
	// Insecure is the unprotected baseline: FR-FCFS scheduling with an
	// open-row policy.
	Insecure Scheme = iota
	// FixedService is the Fixed Service static temporal partitioning
	// baseline (Shafiee et al., MICRO'15).
	FixedService
	// FSBTA is Fixed Service with Bank Triple Alternation, the
	// performance-optimised FS variant the paper compares against.
	FSBTA
	// TemporalPartitioning is coarse time-sliced partitioning
	// (Wang et al., HPCA'14).
	TemporalPartitioning
	// Camouflage is distribution-based traffic shaping
	// (Zhou et al., HPCA'17); insecure against fine-grained attacks.
	Camouflage
	// DAGguise is this paper's rDAG request shaper.
	DAGguise
)

var schemeNames = map[Scheme]string{
	Insecure:             "insecure",
	FixedService:         "fs",
	FSBTA:                "fs-bta",
	TemporalPartitioning: "tp",
	Camouflage:           "camouflage",
	DAGguise:             "dagguise",
}

// String returns the short evaluation name of the scheme.
func (s Scheme) String() string {
	if n, ok := schemeNames[s]; ok {
		return n
	}
	return fmt.Sprintf("scheme(%d)", int(s))
}

// ParseScheme maps an evaluation name back to a Scheme.
func ParseScheme(name string) (Scheme, error) {
	for s, n := range schemeNames {
		if n == name {
			return s, nil
		}
	}
	return Insecure, fmt.Errorf("config: unknown scheme %q", name)
}

// Secure reports whether the scheme is intended to block memory timing side
// channels. Camouflage is counted as insecure per the paper's analysis.
func (s Scheme) Secure() bool {
	switch s {
	case FixedService, FSBTA, TemporalPartitioning, DAGguise:
		return true
	}
	return false
}

// DRAMTiming holds DDR3-1600 timing constraints in DRAM (bus) cycles, as
// listed in Table 2. ClockRatio converts them to CPU cycles.
type DRAMTiming struct {
	TRC    int // row cycle: ACT-to-ACT same bank
	TRCD   int // ACT-to-RD/WR
	TRAS   int // ACT-to-PRE
	TFAW   int // four-activate window
	TWR    int // write recovery
	TRP    int // precharge period
	TRTRS  int // rank-to-rank switch
	TCAS   int // CAS latency (read)
	TCWD   int // CAS write delay
	TRTP   int // read-to-precharge
	TBURST int // data burst length on the bus
	TCCD   int // column-to-column delay
	TWTR   int // write-to-read turnaround
	TRRD   int // ACT-to-ACT different banks
	TREFI  int // refresh interval
	TRFC   int // refresh cycle time

	// ClockRatio is CPU cycles per DRAM bus cycle (2.4GHz / 800MHz = 3).
	ClockRatio int
}

// DDR31600 returns the Table 2 timing parameters. tREFI is 7.8us and tRFC
// 260ns, converted to 800MHz bus cycles.
func DDR31600() DRAMTiming {
	return DRAMTiming{
		TRC:        39,
		TRCD:       11,
		TRAS:       28,
		TFAW:       24,
		TWR:        12,
		TRP:        11,
		TRTRS:      2,
		TCAS:       11,
		TCWD:       8,
		TRTP:       6,
		TBURST:     4,
		TCCD:       4,
		TWTR:       6,
		TRRD:       5,
		TREFI:      6240, // 7.8us * 800MHz
		TRFC:       208,  // 260ns * 800MHz
		ClockRatio: 3,
	}
}

// CPU converts a DRAM-cycle quantity to CPU cycles.
func (t DRAMTiming) CPU(drCycles int) uint64 {
	return uint64(drCycles * t.ClockRatio)
}

// Validate checks the parameters for internal consistency.
func (t DRAMTiming) Validate() error {
	if t.ClockRatio <= 0 {
		return fmt.Errorf("config: clock ratio must be positive, got %d", t.ClockRatio)
	}
	if t.TRCD+t.TRTP > t.TRAS+t.TRP {
		// tRAS must cover activation to precharge-eligible; a violation
		// indicates a transcription error in the parameter set.
		return fmt.Errorf("config: tRCD+tRTP=%d exceeds tRAS+tRP=%d", t.TRCD+t.TRTP, t.TRAS+t.TRP)
	}
	for _, p := range []struct {
		name string
		v    int
	}{{"tRC", t.TRC}, {"tRCD", t.TRCD}, {"tRAS", t.TRAS}, {"tRP", t.TRP}, {"tCAS", t.TCAS}, {"tBURST", t.TBURST}} {
		if p.v <= 0 {
			return fmt.Errorf("config: %s must be positive, got %d", p.name, p.v)
		}
	}
	return nil
}

// CacheLevel is one level of the hierarchy.
type CacheLevel struct {
	SizeBytes int
	Ways      int
	LineBytes int
	// LatencyCycles is the round-trip hit latency in CPU cycles.
	LatencyCycles int
}

// Sets returns the number of sets in the level.
func (c CacheLevel) Sets() int { return c.SizeBytes / (c.Ways * c.LineBytes) }

// CoreConfig models the 8-issue out-of-order core of Table 2.
type CoreConfig struct {
	IssueWidth int
	ROBEntries int
	// MSHRs bounds outstanding misses to memory (memory-level parallelism).
	MSHRs int
	// PrefetchDepth is how many lines ahead the L2 stream prefetcher
	// runs on a confirmed sequential miss stream; 0 disables it.
	PrefetchDepth int
	// PrefetchStreams is the stream-table size (concurrent sequential
	// streams tracked).
	PrefetchStreams int
}

// SystemConfig is the full simulated machine.
type SystemConfig struct {
	Cores    int
	Core     CoreConfig
	L1       CacheLevel
	L2       CacheLevel
	L3       CacheLevel // size is per core and scaled by Cores
	Geometry mem.Geometry
	Timing   DRAMTiming
	Scheme   Scheme
	// RowPolicy: true = closed-row (required by FS-BTA and DAGguise to
	// hide row-buffer state), false = open-row.
	ClosedRow bool
	// FSBTAStrideDRAM overrides the FS-BTA slot stride (DRAM cycles) for
	// sensitivity studies. Zero selects the hazard-safe derivation; the
	// paper's aggressive tRC/3 stride (13 for DDR3-1600) performs better
	// but leaks through write-to-read bus turnarounds (see
	// sched.NewFSBTAWithStride).
	FSBTAStrideDRAM int
}

// Default returns the Table 2 machine with the given core count and scheme.
// Secure schemes automatically select the closed-row policy.
func Default(cores int, scheme Scheme) SystemConfig {
	capacity := 4
	if cores > 2 {
		capacity = 8
	}
	cfg := SystemConfig{
		Cores: cores,
		Core:  CoreConfig{IssueWidth: 8, ROBEntries: 192, MSHRs: 16, PrefetchDepth: 8, PrefetchStreams: 8},
		L1:    CacheLevel{SizeBytes: 32 << 10, Ways: 8, LineBytes: 64, LatencyCycles: 4},
		L2:    CacheLevel{SizeBytes: 256 << 10, Ways: 16, LineBytes: 64, LatencyCycles: 13},
		L3:    CacheLevel{SizeBytes: cores * (1 << 20), Ways: 16, LineBytes: 64, LatencyCycles: 42},
		Geometry: mem.Geometry{
			Channels:    1,
			Ranks:       1,
			Banks:       8,
			RowBytes:    8 << 10,
			LineBytes:   64,
			CapacityGiB: capacity,
		},
		Timing:    DDR31600(),
		Scheme:    scheme,
		ClosedRow: scheme != Insecure && scheme != Camouflage,
	}
	return cfg
}

// Validate checks the whole system configuration.
func (c SystemConfig) Validate() error {
	if c.Cores <= 0 {
		return fmt.Errorf("config: cores must be positive, got %d", c.Cores)
	}
	if err := c.Timing.Validate(); err != nil {
		return err
	}
	for _, lvl := range []struct {
		name string
		l    CacheLevel
	}{{"L1", c.L1}, {"L2", c.L2}, {"L3", c.L3}} {
		if lvl.l.SizeBytes <= 0 || lvl.l.Ways <= 0 || lvl.l.LineBytes <= 0 {
			return fmt.Errorf("config: %s cache has non-positive parameter", lvl.name)
		}
		if lvl.l.Sets() <= 0 {
			return fmt.Errorf("config: %s cache smaller than one set", lvl.name)
		}
	}
	if _, err := mem.NewMapper(c.Geometry); err != nil {
		return err
	}
	return nil
}
