package config

import (
	"strings"
	"testing"
)

func TestDefaultValidates(t *testing.T) {
	for _, scheme := range []Scheme{Insecure, FixedService, FSBTA, TemporalPartitioning, Camouflage, DAGguise} {
		for _, cores := range []int{1, 2, 8} {
			if err := Default(cores, scheme).Validate(); err != nil {
				t.Errorf("Default(%d, %v) invalid: %v", cores, scheme, err)
			}
		}
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*SystemConfig)
		want   string
	}{
		{"zero cores", func(c *SystemConfig) { c.Cores = 0 }, "cores"},
		{"negative cores", func(c *SystemConfig) { c.Cores = -3 }, "cores"},
		{"zero clock ratio", func(c *SystemConfig) { c.Timing.ClockRatio = 0 }, "clock ratio"},
		{"negative tRC", func(c *SystemConfig) { c.Timing.TRC = -1 }, "tRC"},
		{"zero tCAS", func(c *SystemConfig) { c.Timing.TCAS = 0 }, "tCAS"},
		{"zero tBURST", func(c *SystemConfig) { c.Timing.TBURST = 0 }, "tBURST"},
		{"row cycle hazard", func(c *SystemConfig) { c.Timing.TRTP = 1000 }, "exceeds"},
		{"zero L1 size", func(c *SystemConfig) { c.L1.SizeBytes = 0 }, "L1"},
		{"zero L2 ways", func(c *SystemConfig) { c.L2.Ways = 0 }, "L2"},
		{"zero L3 line", func(c *SystemConfig) { c.L3.LineBytes = 0 }, "L3"},
		{"cache below one set", func(c *SystemConfig) {
			c.L1 = CacheLevel{SizeBytes: 64, Ways: 8, LineBytes: 64, LatencyCycles: 4}
		}, "smaller than one set"},
		{"bad geometry", func(c *SystemConfig) { c.Geometry.Banks = 0 }, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := Default(2, DAGguise)
			tc.mutate(&cfg)
			err := cfg.Validate()
			if err == nil {
				t.Fatalf("%s accepted", tc.name)
			}
			if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestTimingValidateAcceptsDDR31600(t *testing.T) {
	if err := DDR31600().Validate(); err != nil {
		t.Fatal(err)
	}
}
