package config

import (
	"errors"
	"fmt"

	"dagguise/internal/mem"
	"dagguise/internal/rdag"
)

// Typed validation errors for multi-channel configurations, so callers
// (CLI flag parsing, fleet manifest loading) can distinguish operator
// mistakes without string matching.
var (
	// ErrZeroChannels rejects a configuration with no memory channels.
	ErrZeroChannels = errors.New("config: multi-channel config needs at least one channel")
	// ErrDomainsExceedRouting rejects more security domains than the
	// channel router can address (mem.RoutingWidth, minus the reserved
	// domain 0).
	ErrDomainsExceedRouting = errors.New("config: domain count exceeds routing width")
	// ErrChannelSpecMismatch rejects a per-channel defense-rDAG list whose
	// length does not match the channel count.
	ErrChannelSpecMismatch = errors.New("config: per-channel defense specs do not match channel count")
)

// MultiChannelConfig describes the datacenter-scale machine the fleet
// simulates: N independent memory channels (each with its own controller,
// DRAM device and — under DAGguise — one request shaper per protected
// tenant), shared by hundreds of mutually distrusting security domains. A
// domain's requests hash deterministically across the channels via
// mem.RouteChannel, so every shard of a sweep agrees on the placement.
type MultiChannelConfig struct {
	// Scheme selects the protection mechanism on every channel.
	Scheme Scheme
	// Channels is the number of independent memory channels/controllers.
	Channels int
	// Domains is the number of concurrent security domains (tenants).
	// Tenant i occupies mem.Domain(i+1); domain 0 stays reserved.
	Domains int
	// Protected is how many leading tenants are protected victims whose
	// traffic is shaped (DAGguise) and whose intensity carries the secret
	// in non-interference twin runs.
	Protected int
	// QueueDepth is the per-domain transaction-queue partition depth on
	// each controller (secure schemes); it also sizes the shared queue for
	// the insecure baseline (QueueDepth entries per domain, capped).
	QueueDepth int
	// ShaperDepth is the private shaper queue depth per (channel,
	// protected tenant) pair.
	ShaperDepth int
	// ChannelDefenses holds one defense-rDAG template per channel, indexed
	// by channel. Required (len == Channels) when Scheme is DAGguise;
	// otherwise it must be empty or match the channel count.
	ChannelDefenses []rdag.Template
	// Geometry is the per-channel DRAM organisation; Geometry.Channels
	// must be 1 (each channelUnit owns a single-channel mapper — the
	// cross-channel spread is the router's job, not the address mapper's).
	Geometry mem.Geometry
	// Timing is the DRAM timing shared by all channels.
	Timing DRAMTiming
}

// DefaultMultiChannel returns a fleet machine with the Table 2 per-channel
// geometry and timing, the given channel and tenant counts, four protected
// victims (capped at the domain count), and the evaluation's default
// defense rDAG replicated on every channel.
func DefaultMultiChannel(channels, domains int, scheme Scheme) MultiChannelConfig {
	base := Default(2, scheme)
	base.Geometry.Channels = 1
	protected := 4
	if protected > domains {
		protected = domains
	}
	cfg := MultiChannelConfig{
		Scheme:      scheme,
		Channels:    channels,
		Domains:     domains,
		Protected:   protected,
		QueueDepth:  8,
		ShaperDepth: 8,
		Geometry:    base.Geometry,
		Timing:      base.Timing,
	}
	if scheme == DAGguise {
		banks := base.Geometry.Ranks * base.Geometry.Banks
		cfg.ChannelDefenses = make([]rdag.Template, channels)
		for ch := range cfg.ChannelDefenses {
			cfg.ChannelDefenses[ch] = rdag.Template{
				Sequences: 4, Weight: 300, WriteRatio: 0.001, Banks: banks,
			}
		}
	}
	return cfg
}

// ClosedRow reports whether the channels run the closed-row policy; like
// the single-channel machine, secure schemes require it so row-buffer
// state cannot carry the victim's address locality.
func (c MultiChannelConfig) ClosedRow() bool {
	return c.Scheme != Insecure && c.Scheme != Camouflage
}

// Validate checks the fleet configuration, returning the typed sentinel
// errors above (wrapped with detail) for the operator-facing failure modes.
func (c MultiChannelConfig) Validate() error {
	if c.Channels < 1 {
		return fmt.Errorf("%w: got %d", ErrZeroChannels, c.Channels)
	}
	if c.Domains < 1 {
		return fmt.Errorf("config: need at least one domain, got %d", c.Domains)
	}
	if c.Domains > mem.RoutingWidth-1 {
		return fmt.Errorf("%w: %d domains, routing width %d (domain 0 reserved)",
			ErrDomainsExceedRouting, c.Domains, mem.RoutingWidth)
	}
	if c.Protected < 0 || c.Protected > c.Domains {
		return fmt.Errorf("config: protected tenants %d outside [0, %d]", c.Protected, c.Domains)
	}
	if c.QueueDepth < 1 {
		return fmt.Errorf("config: queue depth must be positive, got %d", c.QueueDepth)
	}
	if c.ShaperDepth < 1 {
		return fmt.Errorf("config: shaper depth must be positive, got %d", c.ShaperDepth)
	}
	if c.Geometry.Channels != 1 {
		return fmt.Errorf("config: per-channel geometry must have Channels=1, got %d (cross-channel spread is the router's job)", c.Geometry.Channels)
	}
	if _, err := mem.NewMapper(c.Geometry); err != nil {
		return err
	}
	if err := c.Timing.Validate(); err != nil {
		return err
	}
	switch {
	case c.Scheme == DAGguise && len(c.ChannelDefenses) != c.Channels:
		return fmt.Errorf("%w: scheme %s needs %d defense templates, got %d",
			ErrChannelSpecMismatch, c.Scheme, c.Channels, len(c.ChannelDefenses))
	case len(c.ChannelDefenses) != 0 && len(c.ChannelDefenses) != c.Channels:
		return fmt.Errorf("%w: %d templates for %d channels",
			ErrChannelSpecMismatch, len(c.ChannelDefenses), c.Channels)
	}
	banks := c.Geometry.Ranks * c.Geometry.Banks
	for ch, tpl := range c.ChannelDefenses {
		if err := tpl.Validate(); err != nil {
			return fmt.Errorf("config: channel %d defense: %w", ch, err)
		}
		if tpl.Banks != banks {
			return fmt.Errorf("%w: channel %d defense covers %d banks, channel has %d",
				ErrChannelSpecMismatch, ch, tpl.Banks, banks)
		}
	}
	return nil
}
