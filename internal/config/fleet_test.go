package config

import (
	"errors"
	"testing"

	"dagguise/internal/mem"
	"dagguise/internal/rdag"
)

func TestDefaultMultiChannelValid(t *testing.T) {
	for _, scheme := range []Scheme{Insecure, DAGguise} {
		for _, channels := range []int{1, 2, 4} {
			for _, domains := range []int{1, 2, 100, 257} {
				cfg := DefaultMultiChannel(channels, domains, scheme)
				if err := cfg.Validate(); err != nil {
					t.Errorf("DefaultMultiChannel(%d, %d, %s): %v", channels, domains, scheme, err)
				}
			}
		}
	}
}

// TestMultiChannelValidation is the table of operator-facing failure modes,
// each pinned to its typed sentinel so callers can errors.Is on them.
func TestMultiChannelValidation(t *testing.T) {
	valid := func() MultiChannelConfig { return DefaultMultiChannel(4, 100, DAGguise) }
	cases := []struct {
		name   string
		mutate func(*MultiChannelConfig)
		want   error // nil = any error acceptable, checked non-nil only
	}{
		{
			name:   "zero channels",
			mutate: func(c *MultiChannelConfig) { c.Channels = 0 },
			want:   ErrZeroChannels,
		},
		{
			name:   "negative channels",
			mutate: func(c *MultiChannelConfig) { c.Channels = -3 },
			want:   ErrZeroChannels,
		},
		{
			name:   "domains exceed routing width",
			mutate: func(c *MultiChannelConfig) { c.Domains = mem.RoutingWidth },
			want:   ErrDomainsExceedRouting,
		},
		{
			name: "domain count at routing boundary is accepted",
			mutate: func(c *MultiChannelConfig) {
				c.Domains = mem.RoutingWidth - 1
				c.Protected = 4
			},
			want: nil,
		},
		{
			name:   "too few defense templates",
			mutate: func(c *MultiChannelConfig) { c.ChannelDefenses = c.ChannelDefenses[:2] },
			want:   ErrChannelSpecMismatch,
		},
		{
			name: "too many defense templates",
			mutate: func(c *MultiChannelConfig) {
				c.ChannelDefenses = append(c.ChannelDefenses, c.ChannelDefenses[0])
			},
			want: ErrChannelSpecMismatch,
		},
		{
			name: "defense banks mismatch channel geometry",
			mutate: func(c *MultiChannelConfig) {
				c.ChannelDefenses[1].Banks = 2 * c.Geometry.Banks
			},
			want: ErrChannelSpecMismatch,
		},
		{
			name: "insecure scheme with stray partial templates",
			mutate: func(c *MultiChannelConfig) {
				c.Scheme = Insecure
				c.ChannelDefenses = c.ChannelDefenses[:1]
			},
			want: ErrChannelSpecMismatch,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := valid()
			tc.mutate(&cfg)
			err := cfg.Validate()
			if tc.want == nil {
				if tc.name == "domain count at routing boundary is accepted" {
					if err != nil {
						t.Fatalf("unexpected error: %v", err)
					}
					return
				}
			}
			if err == nil {
				t.Fatal("validation accepted a broken config")
			}
			if tc.want != nil && !errors.Is(err, tc.want) {
				t.Fatalf("got %v, want errors.Is(..., %v)", err, tc.want)
			}
		})
	}
}

func TestMultiChannelValidationUntypedFailures(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*MultiChannelConfig)
	}{
		{"zero domains", func(c *MultiChannelConfig) { c.Domains = 0 }},
		{"protected exceeds domains", func(c *MultiChannelConfig) { c.Protected = c.Domains + 1 }},
		{"zero queue depth", func(c *MultiChannelConfig) { c.QueueDepth = 0 }},
		{"zero shaper depth", func(c *MultiChannelConfig) { c.ShaperDepth = 0 }},
		{"multi-channel per-channel geometry", func(c *MultiChannelConfig) { c.Geometry.Channels = 2 }},
		{"broken geometry", func(c *MultiChannelConfig) { c.Geometry.Banks = 3 }},
		{"broken timing", func(c *MultiChannelConfig) { c.Timing.ClockRatio = 0 }},
		{"broken defense template", func(c *MultiChannelConfig) { c.ChannelDefenses[0].Sequences = 0 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultMultiChannel(4, 16, DAGguise)
			tc.mutate(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Fatal("validation accepted a broken config")
			}
		})
	}
}

func TestDefaultMultiChannelDefensesCoverBanks(t *testing.T) {
	cfg := DefaultMultiChannel(4, 32, DAGguise)
	if len(cfg.ChannelDefenses) != 4 {
		t.Fatalf("got %d defense templates, want 4", len(cfg.ChannelDefenses))
	}
	banks := cfg.Geometry.Ranks * cfg.Geometry.Banks
	for ch, tpl := range cfg.ChannelDefenses {
		if tpl.Banks != banks {
			t.Fatalf("channel %d template covers %d banks, want %d", ch, tpl.Banks, banks)
		}
		if _, err := rdag.NewPatternDriver(tpl); err != nil {
			t.Fatalf("channel %d template does not drive: %v", ch, err)
		}
	}
}
