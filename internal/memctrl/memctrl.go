// Package memctrl implements the shared memory controller: a global
// transaction queue in front of the DRAM device, a pluggable scheduling
// policy (FCFS, FR-FCFS, or one of the secure arbiters from
// internal/sched), and the response path back to the cores and shapers.
//
// The controller is the contention point that memory timing side channels
// exploit: requests from different security domains meet in the transaction
// queue, compete for banks and the shared data bus, and their completion
// times depend on each other's presence (Figure 1 of the paper).
package memctrl

import (
	"container/heap"
	"fmt"

	"dagguise/internal/dram"
	"dagguise/internal/mem"
	"dagguise/internal/obs"
)

// Entry is a queued transaction together with its decoded DRAM coordinate.
type Entry struct {
	Req   mem.Request
	Coord mem.Coord
}

// Scheduler picks the next transaction to commit to the DRAM device.
// Implementations include the insecure FCFS/FR-FCFS policies in this
// package and the secure FS / FS-BTA / TP arbiters in internal/sched.
type Scheduler interface {
	// Pick returns the index into q of the transaction to issue at cycle
	// now, or -1 if none may issue this cycle. q is the current global
	// transaction queue in arrival order; dev exposes bank/row state.
	Pick(q []Entry, now uint64, dev *dram.Device) int
	// Name identifies the policy in stats output.
	Name() string
}

type completion struct {
	at   uint64
	resp mem.Response
}

type completionHeap []completion

func (h completionHeap) Len() int            { return len(h) }
func (h completionHeap) Less(i, j int) bool  { return h[i].at < h[j].at }
func (h completionHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *completionHeap) Push(x interface{}) { *h = append(*h, x.(completion)) }
func (h *completionHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Stats aggregates controller-level counters.
type Stats struct {
	Issued        uint64
	Reads         uint64
	Writes        uint64
	Fakes         uint64
	TotalLatency  uint64 // sum of (completion - arrival) over real requests
	TotalQueueing uint64 // sum of (issue start - arrival)
	BytesServed   uint64
	MaxQueueLen   int
}

// Controller is the memory controller for one channel group.
type Controller struct {
	dev       *dram.Device
	mapper    *mem.Mapper
	sched     Scheduler
	queue     []Entry
	capacity  int
	domainCap int // per-domain queue partition; 0 = shared queue
	perDomain map[mem.Domain]int
	inflight  completionHeap
	perBank   []int // in-flight transactions per flat bank
	stats     Stats
	byDomain  map[mem.Domain]uint64 // real bytes served per domain
	lineSize  uint64

	// Observability (nil = off). The controller attributes per-domain
	// DRAM metrics because it is the last point that knows the request's
	// security domain. Measurement only: never consulted by Pick/issue.
	mx    *obs.Registry
	tr    *obs.Tracer
	prof  *obs.CycleProfile
	burst uint64 // cached data-burst length for bus accounting
}

// New builds a controller over the device with the given scheduling policy
// and transaction queue capacity (entries).
func New(dev *dram.Device, mapper *mem.Mapper, sched Scheduler, capacity int) *Controller {
	if capacity <= 0 {
		capacity = 32
	}
	return &Controller{
		dev:      dev,
		mapper:   mapper,
		sched:    sched,
		capacity: capacity,
		perBank:  make([]int, mapper.BankCount()),
		byDomain: make(map[mem.Domain]uint64),
		lineSize: uint64(mapper.Geometry().LineBytes),
	}
}

// PartitionQueue switches the transaction queue to per-domain accounting:
// each domain may hold at most perDomain entries, independent of other
// domains' occupancy. Secure schemes require this — with a shared queue, a
// victim's bursts back-pressure the attacker's enqueues, leaking timing
// through queue-full signals even under a non-interfering scheduler.
func (c *Controller) PartitionQueue(perDomain int) {
	c.domainCap = perDomain
	c.perDomain = make(map[mem.Domain]int)
}

// Observe attaches an observability registry and tracer (either may be
// nil) to the controller and its device.
func (c *Controller) Observe(mx *obs.Registry, tr *obs.Tracer) {
	c.mx = mx
	c.tr = tr
	c.burst = c.dev.Timing().Burst
	c.dev.Observe(mx, tr)
}

// Profile attaches a cycle-attribution profiler (nil = off). The
// controller laps the shared telescoping clock at its interior section
// boundaries: scheduler picks land in PBSched, device service in
// PBDRAM, and the rest of the controller's tick (queue sampling, stats,
// completion heap, drain) in PBMemctrl.
func (c *Controller) Profile(p *obs.CycleProfile) { c.prof = p }

// Device returns the underlying DRAM model.
func (c *Controller) Device() *dram.Device { return c.dev }

// Mapper returns the address mapper in use.
func (c *Controller) Mapper() *mem.Mapper { return c.mapper }

// Scheduler returns the active scheduling policy.
func (c *Controller) Scheduler() Scheduler { return c.sched }

// QueueLen returns the current global transaction queue occupancy.
func (c *Controller) QueueLen() int { return len(c.queue) }

// Full reports whether the transaction queue is at capacity.
func (c *Controller) Full() bool { return len(c.queue) >= c.capacity }

// FullFor reports whether the domain may not enqueue right now, honouring
// per-domain partitioning when enabled.
func (c *Controller) FullFor(d mem.Domain) bool {
	if c.domainCap > 0 {
		return c.perDomain[d] >= c.domainCap
	}
	return len(c.queue) >= c.capacity
}

// InFlight returns the number of committed-but-incomplete transactions.
func (c *Controller) InFlight() int { return len(c.inflight) }

// Idle reports whether the controller has no queued or in-flight work.
func (c *Controller) Idle() bool { return len(c.queue) == 0 && len(c.inflight) == 0 }

// Enqueue inserts a request into the global transaction queue. It returns
// false when the queue is full (the producer must retry later). The
// request's Arrival field is stamped with now.
func (c *Controller) Enqueue(req mem.Request, now uint64) bool {
	if c.domainCap > 0 {
		if c.perDomain[req.Domain] >= c.domainCap {
			return false
		}
		c.perDomain[req.Domain]++
	} else if len(c.queue) >= c.capacity {
		return false
	}
	req.Arrival = now
	c.queue = append(c.queue, Entry{Req: req, Coord: c.mapper.Decode(req.Addr)})
	if len(c.queue) > c.stats.MaxQueueLen {
		c.stats.MaxQueueLen = len(c.queue)
	}
	return true
}

// bankFree reports whether the entry's bank has no in-flight transaction.
func (c *Controller) bankFree(e Entry) bool {
	return c.perBank[c.mapper.FlatBank(e.Coord)] == 0
}

// Tick advances the controller one cycle: it lets the scheduling policy
// commit at most one transaction to the device and returns all responses
// that complete at or before now.
func (c *Controller) Tick(now uint64) []mem.Response {
	c.mx.Observe(obs.HistQueueDepth, 0, uint64(len(c.queue)))
	if len(c.queue) > 0 {
		c.prof.Lap(obs.PBMemctrl)
		idx := c.sched.Pick(c.queue, now, c.dev)
		c.prof.Lap(obs.PBSched)
		if idx >= 0 {
			c.issue(idx, now)
		}
	}
	resps := c.drain(now)
	c.prof.Lap(obs.PBMemctrl)
	return resps
}

func (c *Controller) issue(idx int, now uint64) {
	e := c.queue[idx]
	c.queue = append(c.queue[:idx], c.queue[idx+1:]...)
	if c.domainCap > 0 {
		c.perDomain[e.Req.Domain]--
	}
	c.prof.Lap(obs.PBMemctrl)
	res := c.dev.Service(e.Coord, e.Req.Kind, now)
	c.prof.Lap(obs.PBDRAM)
	fb := c.mapper.FlatBank(e.Coord)
	c.perBank[fb]++
	c.stats.Issued++
	if e.Req.Kind == mem.Write {
		c.stats.Writes++
	} else {
		c.stats.Reads++
	}
	if e.Req.Fake {
		c.stats.Fakes++
	} else {
		c.stats.BytesServed += c.lineSize
		c.byDomain[e.Req.Domain] += c.lineSize
		c.stats.TotalLatency += res.DataDone - e.Req.Arrival
		if res.Start > e.Req.Arrival {
			c.stats.TotalQueueing += res.Start - e.Req.Arrival
		}
	}
	if c.mx != nil || c.tr != nil {
		c.record(e, idx, res, fb)
	}
	heap.Push(&c.inflight, completion{
		at: res.DataDone,
		resp: mem.Response{
			ID: e.Req.ID, Addr: e.Req.Addr, Kind: e.Req.Kind,
			Domain: e.Req.Domain, Fake: e.Req.Fake, Completion: res.DataDone,
		},
	})
}

// record mirrors one issued transaction into the observability layer:
// per-domain row-buffer outcome, issue mix, bus/bank occupancy and
// latency histograms, plus bank- and channel-lane trace events. Called
// only when a registry or tracer is attached.
func (c *Controller) record(e Entry, idx int, res dram.Result, fb int) {
	dom := int(e.Req.Domain)
	c.mx.Inc(obs.CtrSchedPicks, 0)
	if idx > 0 {
		c.mx.Inc(obs.CtrSchedReorders, 0)
	}
	var kind obs.EventKind
	switch res.Outcome {
	case dram.RowHit:
		c.mx.Inc(obs.CtrRowHits, dom)
		kind = obs.EvRowHit
	case dram.RowMiss:
		c.mx.Inc(obs.CtrRowMisses, dom)
		kind = obs.EvRowMiss
	default:
		c.mx.Inc(obs.CtrRowConflicts, dom)
		c.mx.Inc(obs.CtrPrecharges, dom)
		kind = obs.EvRowConflict
	}
	if c.dev.ClosedRow() {
		c.mx.Inc(obs.CtrPrecharges, dom)
	}
	switch {
	case e.Req.Fake:
		c.mx.Inc(obs.CtrIssuedFakes, dom)
	case e.Req.Kind == mem.Write:
		c.mx.Inc(obs.CtrIssuedWrites, dom)
	default:
		c.mx.Inc(obs.CtrIssuedReads, dom)
	}
	c.mx.Add(obs.CtrBusBusyCycles, dom, c.burst)
	c.mx.Add(obs.CtrBankBusyCycles, dom, res.DataDone-res.Start)
	if !e.Req.Fake {
		c.mx.Observe(obs.HistReqLatency, dom, res.DataDone-e.Req.Arrival)
		if res.Start > e.Req.Arrival {
			c.mx.Observe(obs.HistQueueWait, dom, res.Start-e.Req.Arrival)
		} else {
			c.mx.Observe(obs.HistQueueWait, dom, 0)
		}
	}
	if c.tr != nil {
		c.tr.Emit(obs.Event{
			Cycle: res.Start, Dur: res.DataDone - res.Start,
			Comp: obs.CompBank, Kind: kind, Index: int32(fb), Domain: int32(dom),
		})
		c.tr.Emit(obs.Event{
			Cycle: res.DataDone - c.burst, Dur: c.burst,
			Comp: obs.CompChannel, Kind: obs.EvBurst, Index: int32(e.Coord.Channel), Domain: int32(dom),
		})
	}
}

func (c *Controller) drain(now uint64) []mem.Response {
	var out []mem.Response
	for len(c.inflight) > 0 && c.inflight[0].at <= now {
		done := heap.Pop(&c.inflight).(completion)
		c.perBank[c.mapper.FlatBank(c.mapper.Decode(done.resp.Addr))]--
		out = append(out, done.resp)
	}
	return out
}

// NextEvent returns the earliest cycle at which the controller has work to
// do: the next in-flight completion, or now if transactions are queued.
// Simulation drivers can use it to skip idle cycles.
func (c *Controller) NextEvent(now uint64) (uint64, bool) {
	if len(c.queue) > 0 {
		return now, true
	}
	if len(c.inflight) > 0 {
		return c.inflight[0].at, true
	}
	return 0, false
}

// Stats returns the cumulative counters.
func (c *Controller) Stats() Stats { return c.stats }

// BytesForDomain returns the real (non-fake) bytes served for the domain.
func (c *Controller) BytesForDomain(d mem.Domain) uint64 { return c.byDomain[d] }

// QueueSnapshot returns the per-domain occupancy of the transaction queue,
// for watchdog diagnostics (the queue picture at the moment an invariant
// fails). Domains with no queued requests are absent from the map.
func (c *Controller) QueueSnapshot() map[mem.Domain]int {
	snap := make(map[mem.Domain]int, len(c.perDomain))
	for _, e := range c.queue {
		snap[e.Req.Domain]++
	}
	return snap
}

// NextCompletion returns the cycle of the earliest in-flight completion,
// or false if nothing is in flight. The watchdog uses it to tell a stalled
// device (completions parked in the far future) from an idle one.
func (c *Controller) NextCompletion() (uint64, bool) {
	if len(c.inflight) == 0 {
		return 0, false
	}
	return c.inflight[0].at, true
}

// PendingForDomain counts queued requests belonging to the domain.
func (c *Controller) PendingForDomain(d mem.Domain) int {
	n := 0
	for _, e := range c.queue {
		if e.Req.Domain == d {
			n++
		}
	}
	return n
}

// String describes the controller configuration.
func (c *Controller) String() string {
	return fmt.Sprintf("memctrl{%s cap=%d}", c.sched.Name(), c.capacity)
}
