package memctrl

import (
	"testing"

	"dagguise/internal/config"
	"dagguise/internal/dram"
	"dagguise/internal/mem"
)

func testRig(sched Scheduler, closed bool) (*Controller, *mem.Mapper) {
	m := mem.MustMapper(mem.Geometry{Channels: 1, Ranks: 1, Banks: 8, RowBytes: 8 << 10, LineBytes: 64, CapacityGiB: 4})
	dev := dram.New(config.DDR31600(), m, closed)
	return New(dev, m, sched, 32), m
}

// runUntil ticks the controller until all enqueued requests complete or
// maxCycles elapses, returning responses in completion order.
func runUntil(c *Controller, maxCycles uint64) []mem.Response {
	var out []mem.Response
	for now := uint64(0); now < maxCycles; now++ {
		out = append(out, c.Tick(now)...)
		if c.Idle() {
			break
		}
	}
	return out
}

func TestFCFSServesInOrder(t *testing.T) {
	c, m := testRig(FCFS{}, false)
	for i := 0; i < 4; i++ {
		ok := c.Enqueue(mem.Request{ID: uint64(i), Addr: m.AddrForBank(i%2, uint64(i), 0), Kind: mem.Read}, 0)
		if !ok {
			t.Fatalf("enqueue %d failed", i)
		}
	}
	resps := runUntil(c, 10000)
	if len(resps) != 4 {
		t.Fatalf("got %d responses, want 4", len(resps))
	}
	for i, r := range resps {
		if r.ID != uint64(i) {
			t.Fatalf("response %d has ID %d; FCFS must preserve order", i, r.ID)
		}
	}
}

func TestFRFCFSPrefersRowHits(t *testing.T) {
	c, m := testRig(FRFCFS{}, false)
	// Open row 5 in bank 0.
	c.Enqueue(mem.Request{ID: 0, Addr: m.AddrForBank(0, 5, 0)}, 0)
	var now uint64
	var opened bool
	for now = 0; now < 5000; now++ {
		if len(c.Tick(now)) > 0 {
			opened = true
			break
		}
	}
	if !opened {
		t.Fatal("first request never completed")
	}
	// Now queue: a row-conflict request (older) and a row-hit (younger).
	c.Enqueue(mem.Request{ID: 1, Addr: m.AddrForBank(0, 9, 0)}, now)
	c.Enqueue(mem.Request{ID: 2, Addr: m.AddrForBank(0, 5, 1)}, now)
	resps := []mem.Response{}
	for ; now < 20000 && len(resps) < 2; now++ {
		resps = append(resps, c.Tick(now)...)
	}
	if len(resps) != 2 {
		t.Fatalf("got %d responses", len(resps))
	}
	if resps[0].ID != 2 {
		t.Fatalf("FR-FCFS served ID %d first, want the row hit (2)", resps[0].ID)
	}
}

func TestControllerQueueCapacity(t *testing.T) {
	c, m := testRig(FCFS{}, false)
	for i := 0; i < 32; i++ {
		if !c.Enqueue(mem.Request{ID: uint64(i), Addr: m.AddrForBank(0, uint64(i), 0)}, 0) {
			t.Fatalf("enqueue %d rejected below capacity", i)
		}
	}
	if !c.Full() {
		t.Fatal("controller should be full")
	}
	if c.Enqueue(mem.Request{ID: 99, Addr: 0}, 0) {
		t.Fatal("enqueue accepted over capacity")
	}
}

func TestControllerLatencyAccounting(t *testing.T) {
	c, m := testRig(FCFS{}, false)
	c.Enqueue(mem.Request{ID: 0, Addr: m.AddrForBank(0, 0, 0), Kind: mem.Read}, 0)
	resps := runUntil(c, 10000)
	if len(resps) != 1 {
		t.Fatal("request lost")
	}
	st := c.Stats()
	if st.Issued != 1 || st.Reads != 1 || st.Writes != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.TotalLatency != resps[0].Completion {
		t.Fatalf("latency %d, want completion %d (arrival 0)", st.TotalLatency, resps[0].Completion)
	}
	if st.BytesServed != 64 {
		t.Fatalf("bytes = %d, want 64", st.BytesServed)
	}
}

func TestFakeRequestsExcludedFromBandwidth(t *testing.T) {
	c, m := testRig(FCFS{}, false)
	c.Enqueue(mem.Request{ID: 0, Addr: m.AddrForBank(0, 0, 0), Fake: true}, 0)
	resps := runUntil(c, 10000)
	if len(resps) != 1 || !resps[0].Fake {
		t.Fatal("fake response lost or unmarked")
	}
	st := c.Stats()
	if st.Fakes != 1 || st.BytesServed != 0 || st.TotalLatency != 0 {
		t.Fatalf("fake accounting wrong: %+v", st)
	}
}

func TestOneInFlightPerBank(t *testing.T) {
	c, m := testRig(FCFS{}, true)
	c.Enqueue(mem.Request{ID: 0, Addr: m.AddrForBank(0, 0, 0)}, 0)
	c.Enqueue(mem.Request{ID: 1, Addr: m.AddrForBank(0, 1, 0)}, 0)
	// After one tick, the first is committed; the second must wait for
	// the bank even though FCFS would allow it next cycle.
	c.Tick(0)
	if c.InFlight() != 1 {
		t.Fatalf("in flight = %d, want 1", c.InFlight())
	}
	c.Tick(1)
	if c.InFlight() != 1 {
		t.Fatal("second request committed while bank busy")
	}
}

func TestPendingForDomain(t *testing.T) {
	c, m := testRig(FCFS{}, false)
	c.Enqueue(mem.Request{ID: 0, Addr: m.AddrForBank(0, 0, 0), Domain: 1}, 0)
	c.Enqueue(mem.Request{ID: 1, Addr: m.AddrForBank(1, 0, 0), Domain: 2}, 0)
	c.Enqueue(mem.Request{ID: 2, Addr: m.AddrForBank(2, 0, 0), Domain: 1}, 0)
	if got := c.PendingForDomain(1); got != 2 {
		t.Fatalf("pending for domain 1 = %d, want 2", got)
	}
}

func TestDomainFiltered(t *testing.T) {
	inner := FCFS{}
	f := DomainFiltered{Inner: inner, Allow: func(d mem.Domain) bool { return d == 7 }}
	c, m := testRig(f, false)
	c.Enqueue(mem.Request{ID: 0, Addr: m.AddrForBank(0, 0, 0), Domain: 1}, 0)
	c.Enqueue(mem.Request{ID: 1, Addr: m.AddrForBank(1, 0, 0), Domain: 7}, 0)
	resps := []mem.Response{}
	for now := uint64(0); now < 5000 && len(resps) == 0; now++ {
		resps = append(resps, c.Tick(now)...)
	}
	if len(resps) != 1 || resps[0].ID != 1 {
		t.Fatalf("filtered scheduler served %v, want only domain 7", resps)
	}
	if c.QueueLen() != 1 {
		t.Fatal("disallowed request should remain queued")
	}
}

func TestNextEvent(t *testing.T) {
	c, m := testRig(FCFS{}, false)
	if _, ok := c.NextEvent(0); ok {
		t.Fatal("idle controller reported work")
	}
	c.Enqueue(mem.Request{ID: 0, Addr: m.AddrForBank(0, 0, 0)}, 5)
	at, ok := c.NextEvent(5)
	if !ok || at != 5 {
		t.Fatalf("NextEvent = %d,%v; want 5,true", at, ok)
	}
	c.Tick(5)
	at, ok = c.NextEvent(6)
	if !ok || at <= 5 {
		t.Fatalf("NextEvent after commit = %d,%v; want completion cycle", at, ok)
	}
}

func TestFRFCFSWriteDrain(t *testing.T) {
	// With WritePressure set, a backlog of writes gets drained ahead of
	// younger reads.
	c, m := testRig(FRFCFS{WritePressure: 2}, true)
	c.Enqueue(mem.Request{ID: 0, Addr: m.AddrForBank(0, 0, 0), Kind: mem.Write}, 0)
	c.Enqueue(mem.Request{ID: 1, Addr: m.AddrForBank(1, 0, 0), Kind: mem.Write}, 0)
	c.Enqueue(mem.Request{ID: 2, Addr: m.AddrForBank(2, 0, 0), Kind: mem.Read}, 0)
	var order []uint64
	for now := uint64(0); now < 10000 && len(order) < 3; now++ {
		for _, r := range c.Tick(now) {
			order = append(order, r.ID)
		}
	}
	if len(order) != 3 {
		t.Fatalf("served %d of 3", len(order))
	}
	if order[0] == 2 {
		t.Fatalf("read served before the write drain: order %v", order)
	}
}

func TestFRFCFSAgeCapPromotesStarvedRequest(t *testing.T) {
	// An old request must eventually outrank a stream of younger row
	// hits to its own bank.
	c, m := testRig(FRFCFS{AgeCap: 300}, false)
	// Open row 1 in bank 0 and keep hitting it.
	c.Enqueue(mem.Request{ID: 0, Addr: m.AddrForBank(0, 1, 0), Kind: mem.Read}, 0)
	// The victim of starvation: a row-conflict request in the same bank.
	c.Enqueue(mem.Request{ID: 100, Addr: m.AddrForBank(0, 9, 0), Kind: mem.Read}, 0)
	served := map[uint64]uint64{}
	nextHit := uint64(1)
	col := 1
	for now := uint64(0); now < 20000 && len(served) < 20; now++ {
		// Keep the row-hit pressure up.
		if now%50 == 0 && !c.Full() {
			c.Enqueue(mem.Request{ID: nextHit, Addr: m.AddrForBank(0, 1, col%64), Kind: mem.Read}, now)
			nextHit++
			col++
		}
		for _, r := range c.Tick(now) {
			served[r.ID] = now
		}
	}
	doneAt, ok := served[100]
	if !ok {
		t.Fatal("conflict request starved despite age cap")
	}
	if doneAt > 3000 {
		t.Fatalf("conflict request served only at cycle %d; age cap ineffective", doneAt)
	}
}

func TestControllerString(t *testing.T) {
	c, _ := testRig(FRFCFS{}, false)
	if c.String() == "" || c.Scheduler().Name() != "fr-fcfs" {
		t.Fatal("controller description broken")
	}
}
