package memctrl

import (
	"fmt"
	"sort"

	"dagguise/internal/mem"
)

// CompletionSave mirrors one in-flight completion. The slice preserves the
// heap's backing-array order, which is itself a valid heap, so restoring it
// verbatim reproduces the exact pop order.
type CompletionSave struct {
	At   uint64       `json:"at"`
	Resp mem.Response `json:"resp"`
}

// DomainBytes is one domain's served-bytes counter, stored as a sorted pair
// list so the serialized form never depends on map iteration order.
type DomainBytes struct {
	Domain mem.Domain `json:"domain"`
	Bytes  uint64     `json:"bytes"`
}

// ControllerState is the controller's full mutable state. Coordinates,
// per-domain occupancy and per-bank in-flight counts are derived data,
// recomputed on restore from the queue and in-flight sets.
type ControllerState struct {
	Queue    []mem.Request    `json:"queue"`
	Inflight []CompletionSave `json:"inflight"`
	Stats    Stats            `json:"stats"`
	ByDomain []DomainBytes    `json:"by_domain,omitempty"`
}

// SaveState captures the controller's full mutable state.
func (c *Controller) SaveState() ControllerState {
	st := ControllerState{Stats: c.stats}
	for _, e := range c.queue {
		st.Queue = append(st.Queue, e.Req)
	}
	for _, f := range c.inflight {
		st.Inflight = append(st.Inflight, CompletionSave{At: f.at, Resp: f.resp})
	}
	for d, b := range c.byDomain {
		st.ByDomain = append(st.ByDomain, DomainBytes{Domain: d, Bytes: b})
	}
	sort.Slice(st.ByDomain, func(i, j int) bool { return st.ByDomain[i].Domain < st.ByDomain[j].Domain })
	return st
}

// RestoreState overwrites the controller's mutable state, recomputing every
// derived structure (decoded coordinates, per-domain occupancy, per-bank
// in-flight counts).
func (c *Controller) RestoreState(st ControllerState) error {
	if len(st.Queue) > c.capacity {
		return fmt.Errorf("memctrl: state queue depth %d exceeds capacity %d", len(st.Queue), c.capacity)
	}
	c.queue = c.queue[:0]
	if c.domainCap > 0 {
		c.perDomain = make(map[mem.Domain]int)
	}
	for _, req := range st.Queue {
		c.queue = append(c.queue, Entry{Req: req, Coord: c.mapper.Decode(req.Addr)})
		if c.domainCap > 0 {
			c.perDomain[req.Domain]++
			if c.perDomain[req.Domain] > c.domainCap {
				return fmt.Errorf("memctrl: state holds %d queued requests for domain %d, partition cap is %d",
					c.perDomain[req.Domain], req.Domain, c.domainCap)
			}
		}
	}
	c.inflight = c.inflight[:0]
	for i := range c.perBank {
		c.perBank[i] = 0
	}
	for _, f := range st.Inflight {
		c.inflight = append(c.inflight, completion{at: f.At, resp: f.Resp})
		fb := c.mapper.FlatBank(c.mapper.Decode(f.Resp.Addr))
		c.perBank[fb]++
	}
	c.stats = st.Stats
	c.byDomain = make(map[mem.Domain]uint64, len(st.ByDomain))
	for _, db := range st.ByDomain {
		c.byDomain[db.Domain] = db.Bytes
	}
	return nil
}
