package memctrl

import (
	"dagguise/internal/dram"
	"dagguise/internal/mem"
)

// FCFS is strict first-come-first-served scheduling: only the oldest
// transaction may issue, and only once its bank is free. This is the policy
// used by the simplified memory controller of the formal model (§5.1).
type FCFS struct{}

// Name implements Scheduler.
func (FCFS) Name() string { return "fcfs" }

// Pick implements Scheduler.
func (FCFS) Pick(q []Entry, now uint64, dev *dram.Device) int {
	if len(q) == 0 {
		return -1
	}
	if dev.BankBusyUntil(q[0].Coord) > now {
		return -1
	}
	return 0
}

// FRFCFS is first-ready FCFS, the insecure baseline policy: among
// transactions whose bank is free it prefers row-buffer hits, breaking ties
// by age; if no row hit is ready it issues the oldest ready transaction.
type FRFCFS struct {
	// WritePressure optionally prioritises writes when more than this many
	// are queued, modelling write-buffer draining. Zero disables it.
	WritePressure int
	// AgeCap bounds reordering: a ready demand request older than this
	// many cycles is served first regardless of row-hit status, the
	// standard FR-FCFS starvation guard. Zero selects the default.
	AgeCap uint64
}

// defaultAgeCap bounds FR-FCFS reordering (CPU cycles).
const defaultAgeCap = 1500

// Name implements Scheduler.
func (FRFCFS) Name() string { return "fr-fcfs" }

// Pick implements Scheduler. Demand traffic outranks prefetch traffic;
// within each class, row hits outrank older requests.
func (p FRFCFS) Pick(q []Entry, now uint64, dev *dram.Device) int {
	writes := 0
	for i := range q {
		if q[i].Req.Kind == mem.Write {
			writes++
		}
	}
	drainWrites := p.WritePressure > 0 && writes >= p.WritePressure
	ageCap := p.AgeCap
	if ageCap == 0 {
		ageCap = defaultAgeCap
	}
	// Candidate ranks, best first: starved (over the age cap), demand
	// row-hit, demand, prefetch row-hit, prefetch. Ties go to the oldest.
	best := -1
	bestRank := 5
	for i := range q {
		e := &q[i]
		if dev.BankBusyUntil(e.Coord) > now {
			continue
		}
		if drainWrites && e.Req.Kind != mem.Write {
			continue
		}
		rank := 2
		if e.Req.Prefetch {
			rank = 4
		}
		if dev.RowOpen(e.Coord) {
			rank--
		}
		age := now - e.Req.Arrival
		if age > ageCap && (!e.Req.Prefetch || age > 4*ageCap) {
			rank = 0
		}
		if rank < bestRank {
			bestRank = rank
			best = i
			if rank == 0 {
				break
			}
		}
	}
	return best
}

// DomainFiltered wraps a policy so that only requests from an allowed set
// of domains are eligible. It is used by the temporal-partitioning arbiter
// and by tests that isolate one domain's traffic.
type DomainFiltered struct {
	Inner Scheduler
	Allow func(mem.Domain) bool
}

// Name implements Scheduler.
func (d DomainFiltered) Name() string { return d.Inner.Name() + "+filter" }

// Pick implements Scheduler.
func (d DomainFiltered) Pick(q []Entry, now uint64, dev *dram.Device) int {
	// Build the filtered view, then translate the inner pick back.
	idxMap := make([]int, 0, len(q))
	sub := make([]Entry, 0, len(q))
	for i := range q {
		if d.Allow(q[i].Req.Domain) {
			idxMap = append(idxMap, i)
			sub = append(sub, q[i])
		}
	}
	if len(sub) == 0 {
		return -1
	}
	inner := d.Inner.Pick(sub, now, dev)
	if inner < 0 {
		return -1
	}
	return idxMap[inner]
}
