package runner

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"dagguise/internal/config"
	"dagguise/internal/fault"
	"dagguise/internal/rdag"
	"dagguise/internal/sim"
	"dagguise/internal/trace"
	"dagguise/internal/victim"
	"dagguise/internal/workload"
)

func buildPair(t testing.TB, scheme config.Scheme) func(int) (*sim.System, error) {
	return func(int) (*sim.System, error) {
		tr, err := victim.DocDistTrace(11, victim.DefaultDocDist())
		if err != nil {
			return nil, err
		}
		p, err := workload.ByName("lbm")
		if err != nil {
			return nil, err
		}
		cfg := config.Default(2, scheme)
		return sim.New(cfg, []sim.CoreSpec{
			{
				Name:      "docdist",
				Source:    &trace.Loop{Inner: tr},
				Protected: true,
				Defense:   rdag.Template{Sequences: 8, Weight: 150, WriteRatio: 0.25, Banks: 8},
			},
			{Name: "lbm", Source: workload.MustSource(p, 5)},
		})
	}
}

// finishStats emits a deterministic result: per-core retired instruction
// counts at the final cycle.
func finishStats(sys *sim.System) (json.RawMessage, error) {
	type out struct {
		Cycle uint64   `json:"cycle"`
		Inst  []uint64 `json:"instructions"`
	}
	o := out{Cycle: sys.Now()}
	st, err := sys.SaveState()
	if err != nil {
		return nil, err
	}
	for _, cs := range st.CoreStates {
		o.Inst = append(o.Inst, cs.Stats.Instructions)
	}
	return json.Marshal(o)
}

func campaign(t testing.TB, cycles uint64) []Job {
	return []Job{
		{Name: "dagguise-pair", Cycles: cycles, Build: buildPair(t, config.DAGguise), Finish: finishStats},
		{Name: "insecure-pair", Cycles: cycles, Build: buildPair(t, config.Insecure), Finish: finishStats},
	}
}

func resultsOf(recs []JobRecord) string {
	var b bytes.Buffer
	for _, r := range recs {
		fmt.Fprintf(&b, "%s %s %s\n", r.Name, r.State, string(r.Result))
	}
	return b.String()
}

func TestRunnerCompletesCampaign(t *testing.T) {
	r := New(Config{Dir: t.TempDir(), Every: 10_000})
	recs, err := r.Run(context.Background(), campaign(t, 30_000))
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		if rec.State != StateDone {
			t.Fatalf("job %s: %s (%s)", rec.Name, rec.State, rec.Error)
		}
		if rec.Cycles != 30_000 || len(rec.Result) == 0 {
			t.Fatalf("job %s: cycles=%d result=%q", rec.Name, rec.Cycles, rec.Result)
		}
		if rec.Checkpoint != "" {
			t.Fatalf("job %s: done but checkpoint %q not dropped", rec.Name, rec.Checkpoint)
		}
	}
}

func TestRunnerInterruptAndResumeMatchesUninterrupted(t *testing.T) {
	const cycles = 60_000

	// Reference: uninterrupted campaign.
	ref, err := New(Config{}).Run(context.Background(), campaign(t, cycles))
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted: cancel from the first auto-checkpoint of the first job.
	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	r := New(Config{Dir: dir, Every: 15_000, OnCheckpoint: func(string, uint64) { cancel() }})
	recs, err := r.Run(ctx, campaign(t, cycles))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted run returned %v, want context.Canceled", err)
	}
	if recs[0].State != StateRunning || recs[0].Checkpoint == "" {
		t.Fatalf("interrupted job not checkpointed: %+v", recs[0])
	}
	if _, err := os.Stat(filepath.Join(dir, recs[0].Checkpoint)); err != nil {
		t.Fatalf("checkpoint file missing: %v", err)
	}

	// Resume in a fresh Runner (a new process in real life).
	recs2, err := New(Config{Dir: dir, Every: 15_000}).Run(context.Background(), campaign(t, cycles))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := resultsOf(recs2), resultsOf(ref); got != want {
		t.Fatalf("resumed campaign differs from uninterrupted:\n--- resumed\n%s--- reference\n%s", got, want)
	}
}

func TestRunnerSIGTERMSavesAndResumesIdentically(t *testing.T) {
	const cycles = 60_000

	ref, err := New(Config{}).Run(context.Background(), campaign(t, cycles))
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	ctx, stop := WithSignals(context.Background())
	defer stop()
	r := New(Config{Dir: dir, Every: 15_000, OnCheckpoint: func(string, uint64) {
		_ = syscall.Kill(os.Getpid(), syscall.SIGTERM)
	}})
	recs, err := r.Run(ctx, campaign(t, cycles))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("SIGTERM run returned %v, want context.Canceled", err)
	}
	if recs[0].State == StateDone && recs[1].State == StateDone {
		t.Fatal("SIGTERM landed after the whole campaign finished; nothing was interrupted")
	}
	stop() // release the signal handler before anything else runs

	recs2, err := New(Config{Dir: dir, Every: 15_000}).Run(context.Background(), campaign(t, cycles))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := resultsOf(recs2), resultsOf(ref); got != want {
		t.Fatalf("post-SIGTERM resume differs from uninterrupted:\n--- resumed\n%s--- reference\n%s", got, want)
	}
}

func TestRunnerRetriesInjectedDeadlock(t *testing.T) {
	// Attempt 0 carries an injected DRAM storm that outlives the watchdog
	// budget; attempt 1 runs clean. The runner must classify the SimError
	// as retryable, back off, rebuild and succeed.
	build := func(attempt int) (*sim.System, error) {
		sys, err := buildPair(t, config.DAGguise)(attempt)
		if err != nil {
			return nil, err
		}
		if attempt == 0 {
			err = sys.AttachFaults(fault.Schedule{Events: []fault.Event{
				{Kind: fault.DRAMStall, Start: 1_000, Duration: 30_000},
			}})
			if err != nil {
				return nil, err
			}
			sys.SetWatchdog(sim.Watchdog{StallBudget: 4_000})
		}
		return sys, nil
	}
	var log bytes.Buffer
	r := New(Config{Retries: 1, Backoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond, Log: &log})
	recs, err := r.Run(context.Background(), []Job{
		{Name: "stormy", Cycles: 20_000, Build: build, Finish: finishStats},
	})
	if err != nil {
		t.Fatal(err)
	}
	if recs[0].State != StateDone {
		t.Fatalf("job not recovered: %+v\nlog:\n%s", recs[0], log.String())
	}
	if recs[0].Attempts != 2 {
		t.Fatalf("attempts = %d, want 2", recs[0].Attempts)
	}
}

func TestRunnerIsolatesPanicsAndExhaustsRetries(t *testing.T) {
	panicky := Job{
		Name:   "panicky",
		Cycles: 1_000,
		Build: func(int) (*sim.System, error) {
			panic("boom")
		},
		Finish: finishStats,
	}
	jobs := []Job{panicky, {Name: "healthy", Cycles: 10_000, Build: buildPair(t, config.Insecure), Finish: finishStats}}
	r := New(Config{Retries: 1, Backoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond})
	recs, err := r.Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if recs[0].State != StateFailed || recs[0].Error == "" {
		t.Fatalf("panicky job: %+v", recs[0])
	}
	if recs[0].Attempts != 2 {
		t.Fatalf("panicky attempts = %d, want 2 (1 + 1 retry)", recs[0].Attempts)
	}
	if recs[1].State != StateDone {
		t.Fatalf("healthy job starved by the panicky one: %+v", recs[1])
	}
}

func TestRunnerSkipsCompletedJobsOnRerun(t *testing.T) {
	dir := t.TempDir()
	builds := 0
	job := Job{
		Name:   "once",
		Cycles: 5_000,
		Build: func(a int) (*sim.System, error) {
			builds++
			return buildPair(t, config.Insecure)(a)
		},
		Finish: finishStats,
	}
	if _, err := New(Config{Dir: dir}).Run(context.Background(), []Job{job}); err != nil {
		t.Fatal(err)
	}
	recs, err := New(Config{Dir: dir}).Run(context.Background(), []Job{job})
	if err != nil {
		t.Fatal(err)
	}
	if builds != 1 {
		t.Fatalf("job rebuilt %d times; the second campaign must skip it", builds)
	}
	if recs[0].State != StateDone || len(recs[0].Result) == 0 {
		t.Fatalf("skipped job lost its result: %+v", recs[0])
	}
}

func TestRunnerRejectsMismatchedManifest(t *testing.T) {
	dir := t.TempDir()
	if _, err := New(Config{Dir: dir}).Run(context.Background(), campaign(t, 5_000)); err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{Dir: dir}).Run(context.Background(), campaign(t, 9_000)); err == nil {
		t.Fatal("campaign with a different cycle budget reused the old manifest")
	}
}

func TestValidateJobs(t *testing.T) {
	r := New(Config{})
	if _, err := r.Run(context.Background(), []Job{{Name: ""}}); err == nil {
		t.Fatal("nameless job accepted")
	}
	j := campaign(t, 1_000)
	j[1].Name = j[0].Name
	if _, err := r.Run(context.Background(), j); err == nil {
		t.Fatal("duplicate job names accepted")
	}
}
