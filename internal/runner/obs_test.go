package runner

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"dagguise/internal/config"
	"dagguise/internal/obs"
	"dagguise/internal/sim"
)

// TestRunnerCountersSurviveSIGTERMResume pins the PR's counter contract:
// the retry/backoff/checkpoint/resume counters live in the manifest, so
// a SIGTERM mid-campaign and a resume in a fresh process accumulate them
// across both invocations instead of resetting — and with the span
// recorder attached, the interrupted job's span reopens from the
// checkpoint and closes exactly once when the job finally completes.
func TestRunnerCountersSurviveSIGTERMResume(t *testing.T) {
	const cycles = 60_000

	ref, err := New(Config{}).Run(context.Background(), campaign(t, cycles))
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	ctx, stop := WithSignals(context.Background())
	defer stop()
	tr1 := obs.NewTracer(1 << 14)
	sp1 := obs.NewSpans(tr1)
	r := New(Config{Dir: dir, Every: 15_000, Spans: sp1, OnCheckpoint: func(string, uint64) {
		_ = syscall.Kill(os.Getpid(), syscall.SIGTERM)
	}})
	recs, err := r.Run(ctx, campaign(t, cycles))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("SIGTERM run returned %v, want context.Canceled", err)
	}
	stop()
	if recs[0].State != StateRunning {
		t.Fatalf("first job not interrupted: %+v", recs[0])
	}
	// One cadence checkpoint (which delivered the SIGTERM) plus the
	// interruption save.
	if recs[0].Checkpoints < 2 {
		t.Fatalf("interrupted job counted %d checkpoint writes, want >= 2", recs[0].Checkpoints)
	}
	if recs[0].Resumes != 0 || recs[0].Retries != 0 || recs[0].BackoffNs != 0 {
		t.Fatalf("unexpected counters before resume: %+v", recs[0])
	}
	// The job span (and only it) is open at the kill; chunks never
	// straddle a checkpoint.
	open := sp1.Open()
	if len(open) != 1 || open[0].Name != "job:"+recs[0].Name || open[0].Comp != obs.CompRunner {
		t.Fatalf("open spans at interrupt = %+v, want only the job span", open)
	}
	interrupted := recs[0]

	// Resume in a fresh process: new Runner, new span recorder.
	tr2 := obs.NewTracer(1 << 14)
	sp2 := obs.NewSpans(tr2)
	recs2, err := New(Config{Dir: dir, Every: 15_000, Spans: sp2}).Run(context.Background(), campaign(t, cycles))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := resultsOf(recs2), resultsOf(ref); got != want {
		t.Fatalf("resume with spans+counters perturbed results:\n--- resumed\n%s--- reference\n%s", got, want)
	}
	fin := recs2[0]
	if fin.Resumes != 1 {
		t.Fatalf("resumed job counted %d resumes, want 1", fin.Resumes)
	}
	if fin.Checkpoints <= interrupted.Checkpoints {
		t.Fatalf("checkpoint counter reset across resume: %d -> %d", interrupted.Checkpoints, fin.Checkpoints)
	}
	if fin.Retries != 0 || fin.BackoffNs != 0 {
		t.Fatalf("clean campaign accrued retries: %+v", fin)
	}

	// The reopened job span began at its checkpointed start cycle (0: the
	// span opened when the fresh system started driving) and ended once.
	var begins, ends int
	for _, ev := range tr2.Events() {
		if ev.Name != "job:"+fin.Name {
			continue
		}
		switch ev.Kind {
		case obs.EvSpanBegin:
			begins++
			if ev.Cycle != 0 {
				t.Fatalf("reopened job span begins at cycle %d, want 0", ev.Cycle)
			}
		case obs.EvSpanEnd:
			ends++
			if ev.Cycle != cycles {
				t.Fatalf("job span ends at cycle %d, want %d", ev.Cycle, cycles)
			}
		}
	}
	if begins != 1 || ends != 1 {
		t.Fatalf("job span begin/end = %d/%d, want 1/1", begins, ends)
	}
	if n := len(sp2.Open()); n != 0 {
		t.Fatalf("%d spans left open after the campaign completed", n)
	}

	// The counters are durable: the on-disk manifest agrees with the
	// in-memory records.
	data, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		t.Fatal(err)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	if m.Jobs[0].Checkpoints != fin.Checkpoints || m.Jobs[0].Resumes != fin.Resumes {
		t.Fatalf("manifest counters diverge from records: %+v vs %+v", m.Jobs[0], fin)
	}
}

// TestRunnerRetryCounters checks the retry path charges both the retry
// counter and the deterministic backoff-delay accumulator: the recorded
// BackoffNs must equal the BackoffDelay the supervisor actually slept.
func TestRunnerRetryCounters(t *testing.T) {
	cfg := Config{Retries: 2, Backoff: time.Millisecond, MaxBackoff: 4 * time.Millisecond, Seed: 7}
	build := func(attempt int) (*sim.System, error) {
		if attempt < 2 {
			panic("flaky build")
		}
		return buildPair(t, config.Insecure)(attempt)
	}
	recs, err := New(cfg).Run(context.Background(), []Job{
		{Name: "flaky", Cycles: 5_000, Build: build, Finish: finishStats},
	})
	if err != nil {
		t.Fatal(err)
	}
	rec := recs[0]
	if rec.State != StateDone || rec.Attempts != 3 {
		t.Fatalf("flaky job: %+v", rec)
	}
	if rec.Retries != 2 {
		t.Fatalf("retries = %d, want 2", rec.Retries)
	}
	want := int64(BackoffDelay(cfg.Backoff, cfg.MaxBackoff, cfg.Seed, 0) +
		BackoffDelay(cfg.Backoff, cfg.MaxBackoff, cfg.Seed, 1))
	if rec.BackoffNs != want {
		t.Fatalf("backoff ns = %d, want %d", rec.BackoffNs, want)
	}
}

// TestWriteJobMetrics checks the Prometheus export carries every counter
// with metadata, in deterministic order.
func TestWriteJobMetrics(t *testing.T) {
	recs := []JobRecord{
		{Name: "a", State: StateDone, Cycles: 500, Total: 500, Attempts: 1, Checkpoints: 3, Resumes: 1},
		{Name: "b", State: StateFailed, Cycles: 120, Total: 500, Attempts: 3, Retries: 2,
			BackoffNs: int64(750 * time.Millisecond), Error: "boom"},
	}
	var buf bytes.Buffer
	if err := WriteJobMetrics(&buf, recs); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP dagrunner_job_cycles_done ",
		"# TYPE dagrunner_job_cycles_done gauge",
		`dagrunner_job_cycles_done{job="a"} 500`,
		"# TYPE dagrunner_job_retries_total counter",
		`dagrunner_job_retries_total{job="b"} 2`,
		`dagrunner_job_backoff_seconds_total{job="b"} 0.75`,
		`dagrunner_job_checkpoint_writes_total{job="a"} 3`,
		`dagrunner_job_resumes_total{job="a"} 1`,
		`dagrunner_job_state{job="a",state="done"} 1`,
		`dagrunner_job_state{job="a",state="failed"} 0`,
		`dagrunner_job_state{job="b",state="failed"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Every # TYPE line names a metric exactly once, and the rendering is
	// deterministic.
	var buf2 bytes.Buffer
	if err := WriteJobMetrics(&buf2, recs); err != nil {
		t.Fatal(err)
	}
	if out != buf2.String() {
		t.Fatal("WriteJobMetrics is not deterministic")
	}
	types := map[string]int{}
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			types[strings.Fields(line)[2]]++
		}
	}
	for name, n := range types {
		if n != 1 {
			t.Errorf("metric %s declared %d times", name, n)
		}
	}
}
