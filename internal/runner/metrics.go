package runner

import (
	"fmt"
	"io"
)

// jobMetric maps one JobRecord field to a Prometheus series.
type jobMetric struct {
	name  string
	typ   string // "counter" or "gauge"
	help  string
	value func(r *JobRecord) float64
}

// jobMetrics is emitted in this fixed order so the exposition is
// deterministic and diffs cleanly between scrapes.
var jobMetrics = []jobMetric{
	{"dagrunner_job_cycles_done", "gauge",
		"Simulated cycles the job has completed so far.",
		func(r *JobRecord) float64 { return float64(r.Cycles) }},
	{"dagrunner_job_cycles_total", "gauge",
		"The job's cycle budget.",
		func(r *JobRecord) float64 { return float64(r.Total) }},
	{"dagrunner_job_attempts_total", "counter",
		"Build attempts, including the first.",
		func(r *JobRecord) float64 { return float64(r.Attempts) }},
	{"dagrunner_job_retries_total", "counter",
		"Supervised retry decisions after retryable failures.",
		func(r *JobRecord) float64 { return float64(r.Retries) }},
	{"dagrunner_job_backoff_seconds_total", "counter",
		"Deterministic backoff delay scheduled for the job's retries.",
		func(r *JobRecord) float64 { return float64(r.BackoffNs) / 1e9 }},
	{"dagrunner_job_checkpoint_writes_total", "counter",
		"Successful checkpoint snapshots persisted for the job.",
		func(r *JobRecord) float64 { return float64(r.Checkpoints) }},
	{"dagrunner_job_resumes_total", "counter",
		"Restores of the job from a persisted checkpoint.",
		func(r *JobRecord) float64 { return float64(r.Resumes) }},
}

// jobStates is the fixed label universe of the state gauge, so a scrape
// always carries all four series per job (1 on the current state).
var jobStates = []JobState{StatePending, StateRunning, StateDone, StateFailed}

// WriteJobMetrics renders campaign progress from manifest records in
// Prometheus text exposition format (counters and gauges with # HELP and
// # TYPE metadata). Records are emitted in manifest order, so identical
// campaign states produce byte-identical expositions. The records can
// come from a live Run's return value or from a manifest read off disk
// while the campaign is still running — the manifest is persisted
// atomically, so a concurrent scrape always sees a consistent snapshot.
func WriteJobMetrics(w io.Writer, records []JobRecord) error {
	for _, m := range jobMetrics {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", m.name, m.help, m.name, m.typ); err != nil {
			return err
		}
		for i := range records {
			r := &records[i]
			if _, err := fmt.Fprintf(w, "%s{job=%q} %g\n", m.name, r.Name, m.value(r)); err != nil {
				return err
			}
		}
	}
	const state = "dagrunner_job_state"
	if _, err := fmt.Fprintf(w, "# HELP %s Job lifecycle state (1 on the current state's series).\n# TYPE %s gauge\n", state, state); err != nil {
		return err
	}
	for i := range records {
		for _, s := range jobStates {
			v := 0
			if records[i].State == s {
				v = 1
			}
			if _, err := fmt.Fprintf(w, "%s{job=%q,state=%q} %d\n", state, records[i].Name, s, v); err != nil {
				return err
			}
		}
	}
	return nil
}
