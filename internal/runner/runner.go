// Package runner supervises long simulation campaigns: it threads context
// cancellation through every tick loop, isolates per-job panics, retries
// transiently-failed jobs with exponentially backed-off, deterministically
// jittered delays, auto-checkpoints running jobs on a cycle cadence, and
// records everything in an atomically-persisted JSON manifest so a killed
// campaign resumes exactly where it stopped.
//
// The determinism contract: because checkpoints restore bit-identically
// (see internal/ckpt), a campaign that is interrupted at any point and
// resumed produces byte-identical job results to one that ran start to
// finish. The manifest carries bookkeeping (attempts, checkpoint names)
// that may differ between the two histories; job results never do.
package runner

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"dagguise/internal/ckpt"
	"dagguise/internal/obs"
	"dagguise/internal/rng"
	"dagguise/internal/sim"
)

// Job is one unit of supervised work: build a machine, run it for a cycle
// budget, extract a result.
type Job struct {
	// Name identifies the job in the manifest and checkpoint files; it must
	// be unique within a campaign.
	Name string
	// Cycles is the absolute cycle the machine must reach (fresh systems
	// start at cycle 0, so this is also the run length).
	Cycles uint64
	// Build constructs a fresh, fully-wired System (faults attached, traces
	// enabled). attempt is 0 for the first try and increments on every
	// supervised retry, so chaos campaigns can vary their schedule per
	// attempt instead of deterministically re-tripping the same failure.
	Build func(attempt int) (*sim.System, error)
	// Finish extracts the job's result once the machine reached Cycles. It
	// must be deterministic in the system state: the resume test diffs its
	// output byte for byte against an uninterrupted run.
	Finish func(sys *sim.System) (json.RawMessage, error)
}

// Config parameterises a Runner.
type Config struct {
	// Dir is the checkpoint/manifest directory; empty disables persistence
	// (no auto-checkpoints, no resume).
	Dir string
	// Every is the auto-checkpoint cadence in simulated cycles (0 saves
	// only on interruption).
	Every uint64
	// Retries is how many supervised retries a job gets after a retryable
	// failure (a watchdog SimError or a panic) before it is marked failed.
	Retries int
	// Backoff is the base delay before the first retry; it doubles per
	// attempt up to MaxBackoff. Zero selects 50ms.
	Backoff time.Duration
	// MaxBackoff caps the backoff growth. Zero selects 2s.
	MaxBackoff time.Duration
	// Seed drives the backoff jitter deterministically.
	Seed int64
	// Log receives human-readable progress lines (nil = silent).
	Log io.Writer
	// OnCheckpoint, when set, is called after every successful
	// auto-checkpoint with the job name and its cycle position — an
	// observability and test hook.
	OnCheckpoint func(job string, cycle uint64)
	// Spans, when set, is the shared flight-recorder span layer: the
	// runner opens one span per job (lane = job index, reopened across
	// checkpoint resumes via the sim state) and one child span per
	// checkpoint chunk, and attaches the recorder to every system it
	// materializes so spans open at a checkpoint reopen after restore.
	Spans *obs.Spans
}

// JobState is a manifest lifecycle state.
type JobState string

const (
	StatePending JobState = "pending"
	StateRunning JobState = "running"
	StateDone    JobState = "done"
	StateFailed  JobState = "failed"
)

// JobRecord is one job's manifest entry. The observability counters
// (Retries, BackoffNs, Checkpoints, Resumes) live in the manifest
// rather than in process memory so campaign progress is scrapeable via
// WriteJobMetrics and survives a SIGTERM + resume exactly like the job
// results do; omitempty keeps manifests written before these fields
// existed loadable (absent decodes as zero).
type JobRecord struct {
	Name       string          `json:"name"`
	State      JobState        `json:"state"`
	Cycles     uint64          `json:"cycles_done"`
	Total      uint64          `json:"cycles_total"`
	Attempts   int             `json:"attempts"`
	Checkpoint string          `json:"checkpoint,omitempty"`
	Result     json.RawMessage `json:"result,omitempty"`
	Error      string          `json:"error,omitempty"`

	// Retries counts supervised retry decisions after retryable failures.
	Retries uint64 `json:"retries,omitempty"`
	// BackoffNs accumulates the deterministic backoff delay the job's
	// retries were scheduled with, in nanoseconds.
	BackoffNs int64 `json:"backoff_ns,omitempty"`
	// Checkpoints counts successful checkpoint writes (auto-cadence and
	// interruption saves alike).
	Checkpoints uint64 `json:"checkpoint_writes,omitempty"`
	// Resumes counts restores from a persisted checkpoint.
	Resumes uint64 `json:"resumes,omitempty"`
}

// manifestVersion guards the manifest schema the same way ckpt.Version
// guards snapshots.
const manifestVersion = 1

// Manifest is the campaign's durable progress record.
type Manifest struct {
	Version int         `json:"version"`
	Jobs    []JobRecord `json:"jobs"`
}

// ManifestName is the manifest's file name inside Config.Dir.
const ManifestName = "manifest.json"

// Runner executes campaigns under the supervision Config describes.
type Runner struct {
	cfg Config
}

// New builds a Runner, filling backoff defaults.
func New(cfg Config) *Runner {
	if cfg.Backoff <= 0 {
		cfg.Backoff = 50 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 2 * time.Second
	}
	return &Runner{cfg: cfg}
}

// WithSignals derives a context that cancels on SIGINT or SIGTERM, so a ^C
// or a supervisor's terminate lands as ordinary cooperative cancellation:
// the running job checkpoints, the manifest is persisted, and Run returns.
func WithSignals(ctx context.Context) (context.Context, context.CancelFunc) {
	return signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
}

// Run executes the jobs in order. Completed jobs recorded in an existing
// manifest are skipped (their stored result is returned); a job interrupted
// by a previous kill resumes from its checkpoint. The returned error is
// non-nil only for campaign-level failures — a context interruption (after
// state has been saved) or persistence trouble; individual job failures are
// reported in their JobRecord.
func (r *Runner) Run(ctx context.Context, jobs []Job) ([]JobRecord, error) {
	if err := validateJobs(jobs); err != nil {
		return nil, err
	}
	records, err := r.loadOrInitManifest(jobs)
	if err != nil {
		return nil, err
	}
	for i := range jobs {
		rec := &records[i]
		if rec.State == StateDone {
			r.logf("job %s: already done (%d cycles), skipping", rec.Name, rec.Cycles)
			continue
		}
		if rec.State == StateFailed {
			r.logf("job %s: previously failed (%s), skipping", rec.Name, rec.Error)
			continue
		}
		if err := r.runJob(ctx, &jobs[i], rec, records, i); err != nil {
			// Interrupted: state is saved; surface the cancellation.
			return records, err
		}
	}
	return records, nil
}

// runJob supervises one job through retries and checkpoints. It returns an
// error only when the context fired; job-level failures land in rec.
func (r *Runner) runJob(ctx context.Context, job *Job, rec *JobRecord, all []JobRecord, idx int) error {
	for {
		sys, err := r.materialize(job, rec)
		if err == nil {
			err = r.drive(ctx, job, rec, all, sys, idx)
		}
		switch {
		case err == nil:
			return nil
		case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
			return err
		case !retryable(err):
			return r.fail(rec, all, err)
		case rec.Attempts > r.cfg.Retries:
			return r.fail(rec, all, fmt.Errorf("%w (after %d attempts)", err, rec.Attempts))
		}
		r.logf("job %s: attempt %d failed (%v); retrying after backoff", job.Name, rec.Attempts-1, err)
		r.dropCheckpoint(rec)
		rec.Retries++
		if err := r.backoff(ctx, rec.Attempts-1, rec); err != nil {
			return err
		}
	}
}

// materialize produces the system for the job's next attempt: restored from
// its checkpoint when one exists, freshly built otherwise. Panics in Build
// are converted to errors.
func (r *Runner) materialize(job *Job, rec *JobRecord) (sys *sim.System, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = &panicError{job: job.Name, stage: "build", val: p}
		}
	}()
	attempt := rec.Attempts
	rec.Attempts++ // count before Build so a panicking attempt still counts
	sys, err = job.Build(attempt)
	if err != nil {
		return nil, fmt.Errorf("runner: job %q build: %w", job.Name, err)
	}
	if r.cfg.Spans != nil {
		// Attach before restoring so spans captured in the checkpoint
		// (the job span, any sim-side spans) reopen into the shared
		// recorder with their original IDs and start cycles.
		sys.TraceSpans(r.cfg.Spans)
	}
	if rec.Checkpoint != "" && r.cfg.Dir != "" {
		st, lerr := ckpt.Load(filepath.Join(r.cfg.Dir, rec.Checkpoint))
		if lerr != nil {
			return nil, fmt.Errorf("runner: job %q resume: %w", job.Name, lerr)
		}
		if rerr := sys.RestoreState(st); rerr != nil {
			return nil, fmt.Errorf("runner: job %q resume: %w", job.Name, rerr)
		}
		rec.Resumes++
		r.logf("job %s: resumed from %s at cycle %d", job.Name, rec.Checkpoint, sys.Now())
	}
	return sys, nil
}

// jobSpan returns the job's flight-recorder span: the one the checkpoint
// restore reopened when resuming, or a freshly opened root span on the
// job's own lane (Perfetto thread = campaign index) otherwise.
func (r *Runner) jobSpan(name string, idx int, sys *sim.System) uint64 {
	if r.cfg.Spans == nil {
		return 0
	}
	for _, o := range r.cfg.Spans.Open() {
		if o.Comp == obs.CompRunner && o.Name == "job:"+name {
			return o.ID
		}
	}
	return r.cfg.Spans.Begin("job:"+name, obs.CompRunner, int32(idx), 0, 0, sys.Now())
}

// drive advances the system to the job's cycle target in checkpoint-sized
// chunks, persisting a snapshot and the manifest after each. Panics in the
// tick loop or in Finish are converted to errors.
func (r *Runner) drive(ctx context.Context, job *Job, rec *JobRecord, all []JobRecord, sys *sim.System, idx int) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = &panicError{job: job.Name, stage: "run", val: p}
		}
	}()
	rec.State = StateRunning
	jobSpan := r.jobSpan(job.Name, idx, sys)
	for sys.Now() < job.Cycles {
		chunk := job.Cycles - sys.Now()
		if r.cfg.Every > 0 && chunk > r.cfg.Every {
			chunk = r.cfg.Every
		}
		cs := r.cfg.Spans.Begin("chunk", obs.CompRunner, int32(idx), 0, jobSpan, sys.Now())
		runErr := sys.RunCheckedCtx(ctx, chunk)
		rec.Cycles = sys.Now()
		// Chunk spans never straddle a checkpoint: close before saving so
		// only the job span reopens on resume.
		r.cfg.Spans.End(cs, sys.Now())
		if runErr != nil {
			if errors.Is(runErr, context.Canceled) || errors.Is(runErr, context.DeadlineExceeded) {
				// Interrupted: persist a final checkpoint so the next
				// invocation resumes mid-job.
				if serr := r.saveCheckpoint(sys, rec, all); serr != nil {
					return serr
				}
				r.logf("job %s: interrupted at cycle %d, checkpoint saved", job.Name, rec.Cycles)
			}
			return runErr
		}
		if r.cfg.Every > 0 && sys.Now() < job.Cycles {
			if serr := r.saveCheckpoint(sys, rec, all); serr != nil {
				return serr
			}
			if r.cfg.OnCheckpoint != nil {
				r.cfg.OnCheckpoint(job.Name, sys.Now())
			}
		}
	}
	result, err := job.Finish(sys)
	if err != nil {
		return fmt.Errorf("runner: job %q finish: %w", job.Name, err)
	}
	rec.State = StateDone
	rec.Cycles = sys.Now()
	rec.Result = result
	r.cfg.Spans.End(jobSpan, sys.Now())
	r.dropCheckpoint(rec)
	r.logf("job %s: done at cycle %d", job.Name, rec.Cycles)
	return r.saveManifest(all)
}

// fail marks the job failed in the manifest and keeps the campaign going.
func (r *Runner) fail(rec *JobRecord, all []JobRecord, cause error) error {
	rec.State = StateFailed
	rec.Error = cause.Error()
	r.dropCheckpoint(rec)
	r.logf("job %s: failed: %v", rec.Name, cause)
	return r.saveManifest(all)
}

// panicError wraps a recovered panic so supervision can classify it.
type panicError struct {
	job   string
	stage string
	val   interface{}
}

func (e *panicError) Error() string {
	return fmt.Sprintf("runner: job %q %s panicked: %v", e.job, e.stage, e.val)
}

// retryable reports whether a failure is worth another supervised attempt:
// watchdog/invariant SimErrors (typically injected-fault outcomes) and
// recovered panics, but not build/config errors.
func retryable(err error) bool {
	var se *sim.SimError
	if errors.As(err, &se) {
		return true
	}
	var pe *panicError
	return errors.As(err, &pe)
}

// BackoffDelay computes the supervised-retry delay for the given attempt:
// 2^attempt * base, capped at the configurable max before jitter is
// applied, with a deterministic jitter drawn from (seed, attempt) placing
// the result in [cap/2, cap]. The growth loop stops at the cap, so the
// delay is bounded no matter how many retries a flaky job accumulates, and
// the jitter is a pure function of its inputs, so campaign wall-clock
// behaviour replays exactly from a seed. Shared with the dagauditd client
// library, whose retry loop needs the identical bounded-and-deterministic
// contract.
func BackoffDelay(base, max time.Duration, seed int64, attempt int) time.Duration {
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	if max <= 0 {
		max = 2 * time.Second
	}
	if max < base {
		max = base
	}
	d := base
	for i := 0; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	jit := rng.New(seed + int64(attempt))
	return d/2 + time.Duration(jit.Int63n(int64(d/2)+1))
}

// backoff sleeps for BackoffDelay of the attempt, honouring cancellation,
// and charges the scheduled delay to the job's backoff counter (counted
// even when cancellation cuts the sleep short — the delay was committed).
func (r *Runner) backoff(ctx context.Context, attempt int, rec *JobRecord) error {
	d := BackoffDelay(r.cfg.Backoff, r.cfg.MaxBackoff, r.cfg.Seed, attempt)
	rec.BackoffNs += int64(d)
	select {
	case <-time.After(d):
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// saveCheckpoint snapshots the system and persists manifest + snapshot
// atomically (snapshot first, so the manifest never references a missing
// file). With no Dir configured it is a no-op.
func (r *Runner) saveCheckpoint(sys *sim.System, rec *JobRecord, all []JobRecord) error {
	if r.cfg.Dir == "" {
		return nil
	}
	st, err := sys.SaveState()
	if err != nil {
		return fmt.Errorf("runner: checkpoint %q: %w", rec.Name, err)
	}
	name := checkpointName(rec.Name)
	if err := ckpt.Save(filepath.Join(r.cfg.Dir, name), st); err != nil {
		return err
	}
	rec.Checkpoint = name
	rec.Checkpoints++
	return r.saveManifest(all)
}

// dropCheckpoint forgets (and best-effort deletes) the job's snapshot.
func (r *Runner) dropCheckpoint(rec *JobRecord) {
	if rec.Checkpoint != "" && r.cfg.Dir != "" {
		_ = os.Remove(filepath.Join(r.cfg.Dir, rec.Checkpoint))
	}
	rec.Checkpoint = ""
}

// loadOrInitManifest reconciles an existing manifest with the requested
// jobs, or initialises a fresh one.
func (r *Runner) loadOrInitManifest(jobs []Job) ([]JobRecord, error) {
	fresh := make([]JobRecord, len(jobs))
	for i, j := range jobs {
		fresh[i] = JobRecord{Name: j.Name, State: StatePending, Total: j.Cycles}
	}
	if r.cfg.Dir == "" {
		return fresh, nil
	}
	data, err := os.ReadFile(filepath.Join(r.cfg.Dir, ManifestName))
	if errors.Is(err, os.ErrNotExist) {
		return fresh, r.saveManifest(fresh)
	}
	if err != nil {
		return nil, fmt.Errorf("runner: read manifest: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("runner: corrupt manifest: %w", err)
	}
	if m.Version != manifestVersion {
		return nil, fmt.Errorf("runner: manifest version %d, this build reads %d", m.Version, manifestVersion)
	}
	byName := make(map[string]JobRecord, len(m.Jobs))
	for _, rec := range m.Jobs {
		byName[rec.Name] = rec
	}
	for i := range fresh {
		rec, ok := byName[fresh[i].Name]
		if !ok {
			continue
		}
		if rec.Total != fresh[i].Total {
			return nil, fmt.Errorf("runner: manifest job %q ran for %d total cycles, campaign now asks %d — refusing to mix",
				rec.Name, rec.Total, fresh[i].Total)
		}
		fresh[i] = rec
	}
	return fresh, nil
}

// saveManifest persists the campaign state atomically (fsync'd temp file +
// rename), so a kill at any instant leaves a consistent manifest.
func (r *Runner) saveManifest(records []JobRecord) error {
	if r.cfg.Dir == "" {
		return nil
	}
	data, err := json.MarshalIndent(Manifest{Version: manifestVersion, Jobs: records}, "", "  ")
	if err != nil {
		return err
	}
	return ckpt.WriteFileAtomic(filepath.Join(r.cfg.Dir, ManifestName), append(data, '\n'))
}

func validateJobs(jobs []Job) error {
	seen := make(map[string]bool, len(jobs))
	for _, j := range jobs {
		if j.Name == "" || j.Build == nil || j.Finish == nil || j.Cycles == 0 {
			return fmt.Errorf("runner: job %q needs a name, Build, Finish and a cycle budget", j.Name)
		}
		if seen[j.Name] {
			return fmt.Errorf("runner: duplicate job name %q", j.Name)
		}
		seen[j.Name] = true
	}
	return nil
}

// checkpointName maps a job name to a file-safe snapshot name.
func checkpointName(job string) string {
	var b strings.Builder
	for _, r := range job {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_', r == '.':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String() + ".ckpt"
}

func (r *Runner) logf(format string, args ...interface{}) {
	if r.cfg.Log != nil {
		fmt.Fprintf(r.cfg.Log, "runner: "+format+"\n", args...)
	}
}
