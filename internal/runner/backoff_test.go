package runner

import (
	"testing"
	"time"
)

// TestBackoffDelayBounds pins the retry-delay contract: for any attempt
// count — including ones far past the doubling range — the jittered delay
// stays within [base/2, max], so a job that keeps failing can never grow
// an unbounded sleep.
func TestBackoffDelayBounds(t *testing.T) {
	base := 50 * time.Millisecond
	max := 2 * time.Second
	for attempt := 0; attempt <= 200; attempt++ {
		d := BackoffDelay(base, max, 7, attempt)
		if d < base/2 {
			t.Fatalf("attempt %d: delay %v below base/2 %v", attempt, d, base/2)
		}
		if d > max {
			t.Fatalf("attempt %d: delay %v exceeds the configured cap %v", attempt, d, max)
		}
	}
	// Deep in the capped region the delay must sit in [max/2, max].
	if d := BackoffDelay(base, max, 7, 100); d < max/2 {
		t.Fatalf("capped delay %v below max/2 %v", d, max/2)
	}
}

// TestBackoffDelayDeterministicJitter pins that the jitter is a pure
// function of (seed, attempt): equal inputs give equal delays, different
// seeds decorrelate them.
func TestBackoffDelayDeterministicJitter(t *testing.T) {
	base := 80 * time.Millisecond
	max := 5 * time.Second
	for attempt := 0; attempt < 12; attempt++ {
		a := BackoffDelay(base, max, 42, attempt)
		b := BackoffDelay(base, max, 42, attempt)
		if a != b {
			t.Fatalf("attempt %d: delay not deterministic (%v vs %v)", attempt, a, b)
		}
	}
	same := 0
	for attempt := 0; attempt < 12; attempt++ {
		if BackoffDelay(base, max, 1, attempt) == BackoffDelay(base, max, 2, attempt) {
			same++
		}
	}
	if same == 12 {
		t.Fatal("different seeds produced identical jitter on every attempt")
	}
}

// TestBackoffDelayCapConfigurable checks the cap is honoured when the
// caller tightens or loosens it, and that degenerate configs fall back to
// sane defaults instead of a zero (hot-loop) delay.
func TestBackoffDelayCapConfigurable(t *testing.T) {
	if d := BackoffDelay(time.Second, 100*time.Millisecond, 3, 10); d > time.Second {
		t.Fatalf("cap below base: delay %v exceeds base", d)
	}
	if d := BackoffDelay(0, 0, 3, 4); d <= 0 {
		t.Fatalf("zero config produced non-positive delay %v", d)
	}
	tight := 30 * time.Millisecond
	for attempt := 0; attempt < 50; attempt++ {
		if d := BackoffDelay(10*time.Millisecond, tight, 9, attempt); d > tight {
			t.Fatalf("attempt %d: delay %v exceeds tightened cap %v", attempt, d, tight)
		}
	}
}
