// Package eval contains the experiment runners that regenerate every
// table and figure of the paper's evaluation (see DESIGN.md's
// per-experiment index). The cmd/ tools print their output and
// bench_test.go wraps them as benchmarks; both share the code here so the
// numbers always come from one implementation.
package eval

import (
	"context"
	"fmt"
	"sync"
	"time"

	"dagguise/internal/attack"
	"dagguise/internal/audit"
	"dagguise/internal/camouflage"
	"dagguise/internal/config"
	"dagguise/internal/profile"
	"dagguise/internal/rdag"
	"dagguise/internal/rng"
	"dagguise/internal/sim"
	"dagguise/internal/stats"
	"dagguise/internal/trace"
	"dagguise/internal/victim"
	"dagguise/internal/workload"
)

// Options sizes the simulations. Benchmarks shrink the windows; the cmd
// tools use the defaults.
type Options struct {
	Warmup uint64
	Window uint64
	// Apps restricts Figure 9 to a subset of SPEC profiles (nil = all).
	Apps []string
	// Attach, when non-nil, is called on every freshly built system before
	// it runs — the hook the CLIs use to wire a shared observability
	// registry and tracer across an experiment's many simulations.
	Attach func(*sim.System)
	// Ctx, when non-nil, threads cooperative cancellation through every
	// simulation's tick loop: a SIGINT/SIGTERM or deadline stops the sweep
	// between cycles and surfaces as a context error.
	Ctx context.Context
	// Cache, when non-nil, resumes figure sweeps: completed (figure, app,
	// scheme) measurements are persisted immediately and skipped on rerun.
	Cache *RunCache
	// Workers parallelizes the per-app rows of the figure sweeps over a
	// bounded goroutine pool (<= 1 = sequential). Rows are independent
	// simulations with per-app seeds and results are assembled in app
	// order, so the output is identical at any worker count. Callers
	// attaching a non-thread-safe observer (obs.CycleProfile) must keep
	// this at 1.
	Workers int
	// Row, when non-nil, is called as each figure-sweep row starts and
	// finishes (event "claim", "done" or "failed") — the hook dagsim uses
	// to feed a fleet telemetry stream. Must be safe for concurrent use
	// when Workers > 1.
	Row func(app, event string)
	// Claim, when non-nil, arbitrates row ownership between cooperating
	// processes sharing one results cache (dagsim -join): it returns a
	// release function and true when this process should run the row, or
	// false when a live peer owns it. A row denied here is retried after
	// PollInterval — by the time the peer releases, every measurement in
	// the row is a cache hit and re-running it is free, so every process
	// still assembles the complete figure. Must be safe for concurrent use
	// when Workers > 1.
	Claim func(app string) (release func(), ok bool)
	// PollInterval is the retry delay while waiting on a peer-owned row
	// (0 = 250ms). Only read when Claim is set.
	PollInterval time.Duration
}

// DefaultOptions returns windows long enough for stable IPCs: the window
// covers at least one full loop of the victim traces, so every scheme's
// measurement averages over the same mix of program phases.
func DefaultOptions() Options {
	return Options{Warmup: 100_000, Window: 1_600_000}
}

// DefaultDefense is the defense rDAG the Figure 7 profiling sweep selects
// for DocDist on this simulator: the knee of the IPC-versus-allocated-
// bandwidth curve (8 parallel sequences, 50 DRAM cycles = 150 CPU cycles,
// streaming write ratio). Used for the two-core experiment.
func DefaultDefense() rdag.Template {
	return rdag.Template{Sequences: 8, Weight: 150, WriteRatio: 0.25, Banks: 8}
}

// EightCoreDefense is the defense rDAG used for the eight-core experiment:
// the paper's published DocDist choice of 4 parallel sequences with a
// uniform 100-DRAM-cycle (300 CPU cycles) edge weight (Figure 6a). With
// four shapers sharing one channel, the single-victim knee is too dense —
// its fake requests crowd out the co-runners — and the sparser template
// maximises system-wide performance (see BenchmarkAblationTemplateDensity).
func EightCoreDefense() rdag.Template {
	return rdag.Template{Sequences: 4, Weight: 300, WriteRatio: 0.25, Banks: 8}
}

// specMaker builds a fresh CoreSpec per simulation run. Sources are
// stateful (they carry a position), so every scheme comparison must use a
// fresh one — otherwise one run would resume the victim's trace where the
// previous run stopped and the two runs would measure different program
// phases.
type specMaker func() (sim.CoreSpec, error)

// docdistMaker records the DocDist trace once and serves fresh loops of it.
func docdistMaker(secretSeed int64) (specMaker, error) {
	tr, err := victim.DocDistTrace(secretSeed, victim.DefaultDocDist())
	if err != nil {
		return nil, err
	}
	return func() (sim.CoreSpec, error) {
		cp := *tr
		return sim.CoreSpec{
			Name:      "docdist",
			Source:    &trace.Loop{Inner: &cp},
			Protected: true,
			Defense:   DefaultDefense(),
		}, nil
	}, nil
}

// dnaMaker records the DNA alignment trace once and serves fresh loops.
func dnaMaker(secretSeed int64) (specMaker, error) {
	tr, err := victim.DNATrace(secretSeed, victim.DefaultDNA())
	if err != nil {
		return nil, err
	}
	return func() (sim.CoreSpec, error) {
		cp := *tr
		return sim.CoreSpec{
			Name:      "dna",
			Source:    &trace.Loop{Inner: &cp},
			Protected: true,
			Defense:   DefaultDefense(),
		}, nil
	}, nil
}

// appMaker serves fresh generators for a SPEC-like profile.
func appMaker(name string, seed int64) specMaker {
	return func() (sim.CoreSpec, error) {
		p, err := workload.ByName(name)
		if err != nil {
			return sim.CoreSpec{}, err
		}
		return sim.CoreSpec{Name: name, Source: workload.MustSource(p, seed)}, nil
	}
}

// forEachApp runs fn for every app index over a pool of opts.Workers
// goroutines, returning the first error by app order. fn writes its row
// into caller-owned slices at its index, so the assembled output never
// depends on scheduling.
func forEachApp(apps []string, opts Options, fn func(i int, app string) error) error {
	run := func(i int, app string) error {
		if opts.Claim != nil {
			// Cooperating processes: wait out a peer that owns the row.
			// Once it releases (or its lease lapses) we acquire and run the
			// row anyway — the peer's measurements are cache hits, so the
			// duplicate pass is free and fills our in-memory figure.
			poll := opts.PollInterval
			if poll <= 0 {
				poll = 250 * time.Millisecond
			}
			for {
				release, ok := opts.Claim(app)
				if ok {
					defer release()
					break
				}
				select {
				case <-opts.ctxOf().Done():
					return opts.ctxOf().Err()
				case <-time.After(poll):
				}
			}
		}
		if opts.Row != nil {
			opts.Row(app, "claim")
		}
		err := fn(i, app)
		if opts.Row != nil {
			if err != nil {
				opts.Row(app, "failed")
			} else {
				opts.Row(app, "done")
			}
		}
		return err
	}
	workers := opts.Workers
	if workers <= 1 || len(apps) <= 1 {
		for i, app := range apps {
			if err := run(i, app); err != nil {
				return err
			}
		}
		return nil
	}
	if workers > len(apps) {
		workers = len(apps)
	}
	errs := make([]error, len(apps))
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				errs[i] = run(i, apps[i])
			}
		}()
	}
	for i := range apps {
		next <- i
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// SchemeIPCs holds per-core IPCs of one scheme run.
type SchemeIPCs struct {
	IPCs      []float64
	TotalGBps float64
}

// runSystem builds and measures one configuration. key names the run for
// the resume cache ("" = never cached); a cached measurement short-circuits
// the simulation entirely.
func runSystem(key string, scheme config.Scheme, specs []sim.CoreSpec, opts Options) (SchemeIPCs, error) {
	if opts.Cache != nil && key != "" {
		if out, ok := opts.Cache.get(key); ok {
			return out, nil
		}
	}
	cfg := config.Default(len(specs), scheme)
	sys, err := sim.New(cfg, specs)
	if err != nil {
		return SchemeIPCs{}, err
	}
	if opts.Attach != nil {
		opts.Attach(sys)
	}
	var res sim.Result
	if opts.Ctx != nil {
		res, err = sys.MeasureCheckedCtx(opts.ctxOf(), opts.Warmup, opts.Window)
		if err != nil {
			return SchemeIPCs{}, err
		}
	} else {
		res = sys.Measure(opts.Warmup, opts.Window)
	}
	out := SchemeIPCs{TotalGBps: res.TotalGBps}
	for _, c := range res.Cores {
		out.IPCs = append(out.IPCs, c.IPC)
	}
	if opts.Cache != nil && key != "" {
		if err := opts.Cache.put(key, out); err != nil {
			return SchemeIPCs{}, err
		}
	}
	return out, nil
}

// Figure9Row is one SPEC co-runner's result on the two-core system.
type Figure9Row struct {
	App string
	// Normalized IPCs (vs the insecure baseline under the same
	// co-location), per Figure 9: the victim (DocDist), the SPEC app,
	// and their average, for FS-BTA and DAGguise.
	FSBTAVictim, FSBTASpec, FSBTAAvg          float64
	DAGguiseVictim, DAGguiseSpec, DAGguiseAvg float64
}

// Figure9Result is the full two-core overhead experiment.
type Figure9Result struct {
	Rows []Figure9Row
	// Geomean of the per-app average normalized IPCs.
	FSBTAGeomean, DAGguiseGeomean float64
}

// Figure9 reproduces the two-core experiment: DocDist protected by each
// scheme, co-located with each SPEC-like application.
func Figure9(opts Options) (*Figure9Result, error) {
	apps := opts.Apps
	if len(apps) == 0 {
		apps = workload.Names()
	}
	res := &Figure9Result{Rows: make([]Figure9Row, len(apps))}
	mkVic, err := docdistMaker(11)
	if err != nil {
		return nil, err
	}
	err = forEachApp(apps, opts, func(i int, app string) error {
		mkCo := appMaker(app, int64(i)+21)
		specs := func(protected bool) ([]sim.CoreSpec, error) {
			v, err := mkVic()
			if err != nil {
				return nil, err
			}
			v.Protected = protected
			co, err := mkCo()
			if err != nil {
				return nil, err
			}
			return []sim.CoreSpec{v, co}, nil
		}
		insSpecs, err := specs(false)
		if err != nil {
			return err
		}
		base, err := runSystem("fig9/"+app+"/insecure", config.Insecure, insSpecs, opts)
		if err != nil {
			return err
		}
		fsSpecs, err := specs(true)
		if err != nil {
			return err
		}
		fs, err := runSystem("fig9/"+app+"/fs-bta", config.FSBTA, fsSpecs, opts)
		if err != nil {
			return err
		}
		dagSpecs, err := specs(true)
		if err != nil {
			return err
		}
		dag, err := runSystem("fig9/"+app+"/dagguise", config.DAGguise, dagSpecs, opts)
		if err != nil {
			return err
		}
		row := Figure9Row{App: app}
		row.FSBTAVictim = fs.IPCs[0] / base.IPCs[0]
		row.FSBTASpec = fs.IPCs[1] / base.IPCs[1]
		row.FSBTAAvg = (row.FSBTAVictim + row.FSBTASpec) / 2
		row.DAGguiseVictim = dag.IPCs[0] / base.IPCs[0]
		row.DAGguiseSpec = dag.IPCs[1] / base.IPCs[1]
		row.DAGguiseAvg = (row.DAGguiseVictim + row.DAGguiseSpec) / 2
		res.Rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	var fsAvgs, dagAvgs []float64
	for _, row := range res.Rows {
		fsAvgs = append(fsAvgs, row.FSBTAAvg)
		dagAvgs = append(dagAvgs, row.DAGguiseAvg)
	}
	if res.FSBTAGeomean, err = stats.Geomean(fsAvgs); err != nil {
		return nil, err
	}
	if res.DAGguiseGeomean, err = stats.Geomean(dagAvgs); err != nil {
		return nil, err
	}
	return res, nil
}

// Figure10Row is one SPEC co-runner's result on the eight-core system.
type Figure10Row struct {
	App string
	// Per Figure 10: average normalized IPC of the whole system under
	// each scheme, plus the per-class normalized IPCs.
	FSBTAAvg, DAGguiseAvg         float64
	FSBTAVictims, DAGguiseVictims float64 // mean over the 4 protected cores
	FSBTASpec, DAGguiseSpec       float64 // mean over the 4 SPEC cores
}

// Figure10Result is the scalability experiment.
type Figure10Result struct {
	Rows                          []Figure10Row
	FSBTAGeomean, DAGguiseGeomean float64
}

// Figure10 reproduces the eight-core experiment: two DocDist and two DNA
// victims protected, four identical SPEC co-runners unprotected.
func Figure10(opts Options) (*Figure10Result, error) {
	apps := opts.Apps
	if len(apps) == 0 {
		apps = workload.Names()
	}
	res := &Figure10Result{Rows: make([]Figure10Row, len(apps))}
	d1, err := docdistMaker(11)
	if err != nil {
		return nil, err
	}
	d2, err := docdistMaker(13)
	if err != nil {
		return nil, err
	}
	n1, err := dnaMaker(17)
	if err != nil {
		return nil, err
	}
	n2, err := dnaMaker(19)
	if err != nil {
		return nil, err
	}
	victims := []specMaker{d1, n1, d2, n2}
	err = forEachApp(apps, opts, func(i int, app string) error {
		build := func(protected bool) ([]sim.CoreSpec, error) {
			var specs []sim.CoreSpec
			for _, mk := range victims {
				v, err := mk()
				if err != nil {
					return nil, err
				}
				v.Protected = protected
				v.Defense = EightCoreDefense()
				specs = append(specs, v)
				co, err := appMaker(app, int64(len(specs))*31+int64(i))()
				if err != nil {
					return nil, err
				}
				specs = append(specs, co)
			}
			return specs, nil
		}
		insSpecs, err := build(false)
		if err != nil {
			return err
		}
		base, err := runSystem("fig10/"+app+"/insecure", config.Insecure, insSpecs, opts)
		if err != nil {
			return err
		}
		fsSpecs, err := build(true)
		if err != nil {
			return err
		}
		fs, err := runSystem("fig10/"+app+"/fs-bta", config.FSBTA, fsSpecs, opts)
		if err != nil {
			return err
		}
		dagSpecs, err := build(true)
		if err != nil {
			return err
		}
		dag, err := runSystem("fig10/"+app+"/dagguise", config.DAGguise, dagSpecs, opts)
		if err != nil {
			return err
		}
		row := Figure10Row{App: app}
		var fsAll, dagAll []float64
		var fsVic, dagVic, fsSpec, dagSpec []float64
		for c := 0; c < 8; c++ {
			fn := fs.IPCs[c] / base.IPCs[c]
			dn := dag.IPCs[c] / base.IPCs[c]
			fsAll = append(fsAll, fn)
			dagAll = append(dagAll, dn)
			if c%2 == 0 { // protected cores are at even indices
				fsVic = append(fsVic, fn)
				dagVic = append(dagVic, dn)
			} else {
				fsSpec = append(fsSpec, fn)
				dagSpec = append(dagSpec, dn)
			}
		}
		row.FSBTAAvg = stats.Mean(fsAll)
		row.DAGguiseAvg = stats.Mean(dagAll)
		row.FSBTAVictims = stats.Mean(fsVic)
		row.DAGguiseVictims = stats.Mean(dagVic)
		row.FSBTASpec = stats.Mean(fsSpec)
		row.DAGguiseSpec = stats.Mean(dagSpec)
		res.Rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	var fsAvgs, dagAvgs []float64
	for _, row := range res.Rows {
		fsAvgs = append(fsAvgs, row.FSBTAAvg)
		dagAvgs = append(dagAvgs, row.DAGguiseAvg)
	}
	if res.FSBTAGeomean, err = stats.Geomean(fsAvgs); err != nil {
		return nil, err
	}
	if res.DAGguiseGeomean, err = stats.Geomean(dagAvgs); err != nil {
		return nil, err
	}
	return res, nil
}

// Figure7 runs the DocDist profiling sweep over the paper's search space.
func Figure7(opts Options) (*profile.Result, error) {
	tr, err := victim.DocDistTrace(11, victim.DefaultDocDist())
	if err != nil {
		return nil, err
	}
	mk := func() trace.Source {
		cp := *tr
		return &cp
	}
	space := rdag.DefaultSpace(8)
	return profile.Sweep(mk, space, profile.Options{
		Warmup: opts.Warmup, Window: opts.Window, KneeFraction: 0.85,
		Attach: opts.Attach,
	})
}

// Figure1Primer re-exports the attack primer for the cmd tools.
func Figure1Primer(probes int) ([]attack.Figure1Row, error) {
	return attack.Figure1Primer(probes)
}

// Figure1PrimerObserved re-exports the attach-hook variant.
func Figure1PrimerObserved(probes int, attach func(*attack.Harness)) ([]attack.Figure1Row, error) {
	return attack.Figure1PrimerObserved(probes, attach)
}

// Table1Row is one scheme's leakage measurement.
type Table1Row struct {
	Scheme      config.Scheme
	AggregateMI float64
	// AggMILo / AggMIHi bound AggregateMI with a percentile-bootstrap 95%
	// confidence interval; AggThreshold and SeqThreshold are the
	// permutation-calibrated rejection thresholds (1% false-positive rate)
	// for the aggregate and per-position estimators.
	AggMILo, AggMIHi float64
	AggThreshold     float64
	SequenceMI       float64
	SeqThreshold     float64
	Accuracy         float64
	// Secure is the *measured* verdict: both MI estimates at or below
	// their calibrated thresholds (it used to be hard-coded from the
	// scheme's paper classification, which is kept as Claimed).
	Secure bool
	// Claimed is the paper's classification of the scheme.
	Claimed bool
}

// Calibration defaults of the Table 1 thresholds and intervals.
const (
	table1Alpha        = 0.01
	table1Permutations = 200
	table1Bootstrap    = 200
	table1Confidence   = 0.95
)

// figure5Pair returns the Figure 5 secret pair, the attacker probe and the
// Camouflage distribution every leakage experiment shares.
func figure5Pair() (attack.Pattern, attack.Pattern, attack.Probe, camouflage.Distribution) {
	s0 := attack.Pattern{Gaps: []uint64{100}, Banks: []int{0, 1, 2, 3}}
	s1 := attack.Pattern{Gaps: []uint64{200}, Banks: []int{0, 1, 2, 3}}
	probe := attack.Probe{Bank: 0, Row: 0, Gap: 120}
	dist := camouflage.Distribution{Intervals: []uint64{200, 400}}
	return s0, s1, probe, dist
}

// Table1 quantifies each scheme's leakage for the Figure 5 secret pair:
// the security column of the design-goals comparison.
func Table1(probes, trials int) ([]Table1Row, error) {
	return Table1Observed(probes, trials, nil)
}

// Table1Observed is Table1 with an observability hook: attach, when
// non-nil, is called on every harness before it runs.
func Table1Observed(probes, trials int, attach func(*attack.Harness)) ([]Table1Row, error) {
	s0, s1, probe, dist := figure5Pair()
	miStat := func(a, b []uint64) float64 { return stats.BinaryMI(a, b, attack.LeakageBinWidth) }
	var rows []Table1Row
	for _, scheme := range []config.Scheme{
		config.Insecure, config.Camouflage, config.FixedService,
		config.FSBTA, config.TemporalPartitioning, config.DAGguise,
	} {
		res, err := attack.MeasureLeakageOpts(scheme, DefaultDefense(), dist, s0, s1, probe, probes, trials,
			attack.MeasureOpts{Attach: attach})
		if err != nil {
			return nil, err
		}
		// One deterministic calibration stream per scheme: the thresholds
		// and intervals in the printed table are reproducible run to run.
		rnd := rng.New(4243 + int64(scheme))
		row := Table1Row{
			Scheme:      scheme,
			AggregateMI: res.AggregateMI,
			SequenceMI:  res.SequenceMI,
			Accuracy:    res.Accuracy,
			Claimed:     scheme.Secure(),
		}
		row.AggThreshold = audit.PermutationThreshold(res.Raw0, res.Raw1, miStat,
			table1Permutations, table1Alpha, rnd)
		row.SeqThreshold = audit.SequencePermutationThreshold(res.Seq0, res.Seq1, attack.LeakageBinWidth,
			table1Permutations, table1Alpha, rnd)
		row.AggMILo, row.AggMIHi = audit.BootstrapCI(res.Raw0, res.Raw1, miStat,
			table1Bootstrap, table1Confidence, rnd)
		row.Secure = row.AggregateMI <= row.AggThreshold && row.SequenceMI <= row.SeqThreshold
		rows = append(rows, row)
	}
	return rows, nil
}

// Audit runs the streaming leakage audit on the Figure 5 secret pair under
// the scheme — the cmd/dagaudit entry point and the CI leakage-budget
// gate. attach, when non-nil, is called on each harness before it runs.
func Audit(scheme config.Scheme, probes int, cfg audit.Config, attach func(*attack.Harness)) (*audit.Report, error) {
	return AuditCtx(context.Background(), scheme, probes, cfg, attach)
}

// AuditCtx is Audit with cooperative cancellation threaded into the
// auditor's per-window calibration loops (see attack.AuditLeakageCtx).
func AuditCtx(ctx context.Context, scheme config.Scheme, probes int, cfg audit.Config, attach func(*attack.Harness)) (*audit.Report, error) {
	s0, s1, probe, dist := figure5Pair()
	return attack.AuditLeakageCtx(ctx, scheme, DefaultDefense(), dist, s0, s1, probe, probes, cfg, attach)
}

// AuditStreams runs the Figure 5 secret pair under the scheme and returns
// the two raw attacker-observable sample streams — the wire-format input
// of the dagauditd service path, deterministic in (scheme, probes, seed),
// so a traffic generator can regenerate and replay them byte-identically
// after a crash.
func AuditStreams(scheme config.Scheme, probes int, seed int64) (s0, s1 []audit.Sample, err error) {
	p0, p1, probe, dist := figure5Pair()
	return attack.CollectTaps(scheme, DefaultDefense(), dist, p0, p1, probe, probes, seed, nil)
}

// FormatTable1 renders the rows as an aligned text table.
func FormatTable1(rows []Table1Row) string {
	out := fmt.Sprintf("%-12s %12s %17s %9s %12s %9s %9s %9s %9s\n",
		"scheme", "aggregate MI", "95% ci", "thr", "sequence MI", "thr", "accuracy", "secure", "claimed")
	for _, r := range rows {
		out += fmt.Sprintf("%-12s %12.4f %8.4f..%-8.4f %9.4f %12.4f %9.4f %9.3f %9v %9v\n",
			r.Scheme, r.AggregateMI, r.AggMILo, r.AggMIHi, r.AggThreshold,
			r.SequenceMI, r.SeqThreshold, r.Accuracy, r.Secure, r.Claimed)
	}
	return out
}

// FormatFigure9 renders the rows as an aligned text table.
func FormatFigure9(r *Figure9Result) string {
	out := fmt.Sprintf("%-12s %10s %10s %10s %10s %10s %10s\n",
		"app", "fs:victim", "fs:spec", "fs:avg", "dag:victim", "dag:spec", "dag:avg")
	for _, row := range r.Rows {
		out += fmt.Sprintf("%-12s %10.3f %10.3f %10.3f %10.3f %10.3f %10.3f\n",
			row.App, row.FSBTAVictim, row.FSBTASpec, row.FSBTAAvg,
			row.DAGguiseVictim, row.DAGguiseSpec, row.DAGguiseAvg)
	}
	out += fmt.Sprintf("%-12s %21s %10.3f %21s %10.3f\n", "geomean", "", r.FSBTAGeomean, "", r.DAGguiseGeomean)
	return out
}

// FormatFigure10 renders the rows as an aligned text table.
func FormatFigure10(r *Figure10Result) string {
	out := fmt.Sprintf("%-12s %10s %10s %10s %10s %10s %10s\n",
		"app", "fs:victim", "fs:spec", "fs:avg", "dag:victim", "dag:spec", "dag:avg")
	for _, row := range r.Rows {
		out += fmt.Sprintf("%-12s %10.3f %10.3f %10.3f %10.3f %10.3f %10.3f\n",
			row.App, row.FSBTAVictims, row.FSBTASpec, row.FSBTAAvg,
			row.DAGguiseVictims, row.DAGguiseSpec, row.DAGguiseAvg)
	}
	out += fmt.Sprintf("%-12s %21s %10.3f %21s %10.3f\n", "geomean", "", r.FSBTAGeomean, "", r.DAGguiseGeomean)
	return out
}
