package eval

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sync"
	"time"

	"dagguise/internal/ckpt"
	"dagguise/internal/fleet"
)

// runCacheVersion guards the cache schema.
const runCacheVersion = 1

// cacheLease is the lease name serializing shared-cache writes.
const cacheLease = "results-cache"

// RunCache is dagsim's campaign-level resume store: every completed
// (figure, app, scheme) measurement is persisted as soon as it finishes, so
// an interrupted figure sweep rerun with the same options skips straight to
// the first unmeasured configuration. Simulations are deterministic, so a
// cached entry is exactly what rerunning the simulation would produce.
// RunCache is safe for concurrent use: parallel figure sweeps (Options.
// Workers > 1) share one cache.
//
// In shared mode (OpenSharedRunCache) the file is additionally shared
// with peer processes: every put merges under a lease before writing, and
// a get miss refreshes from disk to adopt peer-completed measurements.
type RunCache struct {
	mu      sync.Mutex
	path    string
	entries map[string]SchemeIPCs
	// lm and owner select shared mode (dagsim -join): the "results-cache"
	// lease serializes read-merge-write cycles across processes.
	lm    *fleet.LeaseManager
	owner string
}

type runCacheFile struct {
	Version int                   `json:"version"`
	Entries map[string]SchemeIPCs `json:"entries"`
}

// OpenRunCache loads the cache at path, or initialises an empty one when
// the file does not exist yet.
func OpenRunCache(path string) (*RunCache, error) {
	c := &RunCache{path: path, entries: make(map[string]SchemeIPCs)}
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return c, nil
	}
	if err != nil {
		return nil, fmt.Errorf("eval: read run cache: %w", err)
	}
	var f runCacheFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("eval: corrupt run cache %s: %w", path, err)
	}
	if f.Version != runCacheVersion {
		return nil, fmt.Errorf("eval: run cache %s is v%d, this build reads v%d", path, f.Version, runCacheVersion)
	}
	if f.Entries != nil {
		c.entries = f.Entries
	}
	return c, nil
}

// OpenSharedRunCache opens the cache at path for cooperative use by
// several dagsim processes (-join): puts serialize through lm's
// "results-cache" lease and merge the on-disk entries before writing, so
// K processes filling one cache never lose each other's measurements.
// owner names this process in the lease.
func OpenSharedRunCache(path string, lm *fleet.LeaseManager, owner string) (*RunCache, error) {
	c, err := OpenRunCache(path)
	if err != nil {
		return nil, err
	}
	if lm == nil || owner == "" {
		return nil, fmt.Errorf("eval: shared run cache needs a lease manager and an owner id")
	}
	c.lm = lm
	c.owner = owner
	return c, nil
}

// Len returns the number of cached measurements.
func (c *RunCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

func (c *RunCache) get(key string) (SchemeIPCs, bool) {
	c.mu.Lock()
	v, ok := c.entries[key]
	c.mu.Unlock()
	if !ok && c.lm != nil {
		// Shared mode: a peer may have committed this measurement since we
		// last read the file. The cache file is written atomically, so a
		// plain re-read is always a consistent snapshot.
		c.refresh()
		c.mu.Lock()
		v, ok = c.entries[key]
		c.mu.Unlock()
	}
	return v, ok
}

// refresh folds the on-disk entries into memory (shared mode only).
// Values are deterministic, so a key present in both is identical and
// either side winning is equivalent.
func (c *RunCache) refresh() {
	data, err := os.ReadFile(c.path)
	if err != nil {
		return
	}
	var f runCacheFile
	if json.Unmarshal(data, &f) != nil || f.Version != runCacheVersion {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for k, v := range f.Entries {
		if _, ok := c.entries[k]; !ok {
			c.entries[k] = v
		}
	}
}

// put records a completed measurement and persists the cache atomically, so
// a kill between measurements never loses finished work. In shared mode
// the read-merge-write cycle runs under the "results-cache" lease so
// concurrent peers never lose each other's entries.
func (c *RunCache) put(key string, v SchemeIPCs) error {
	if c.lm != nil {
		for {
			h, err := c.lm.Acquire(cacheLease, c.owner)
			if errors.Is(err, fleet.ErrLeaseHeld) {
				time.Sleep(20 * time.Millisecond)
				continue
			}
			if err != nil {
				return fmt.Errorf("eval: shared run cache: %w", err)
			}
			defer c.lm.Release(h)
			c.refresh()
			break
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries[key] = v
	data, err := json.MarshalIndent(runCacheFile{Version: runCacheVersion, Entries: c.entries}, "", "  ")
	if err != nil {
		return err
	}
	return ckpt.WriteFileAtomic(c.path, append(data, '\n'))
}

// ctxOf returns the Options context, defaulting to Background.
func (o Options) ctxOf() context.Context {
	if o.Ctx != nil {
		return o.Ctx
	}
	return context.Background()
}
