package eval

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sync"

	"dagguise/internal/ckpt"
)

// runCacheVersion guards the cache schema.
const runCacheVersion = 1

// RunCache is dagsim's campaign-level resume store: every completed
// (figure, app, scheme) measurement is persisted as soon as it finishes, so
// an interrupted figure sweep rerun with the same options skips straight to
// the first unmeasured configuration. Simulations are deterministic, so a
// cached entry is exactly what rerunning the simulation would produce.
// RunCache is safe for concurrent use: parallel figure sweeps (Options.
// Workers > 1) share one cache.
type RunCache struct {
	mu      sync.Mutex
	path    string
	entries map[string]SchemeIPCs
}

type runCacheFile struct {
	Version int                   `json:"version"`
	Entries map[string]SchemeIPCs `json:"entries"`
}

// OpenRunCache loads the cache at path, or initialises an empty one when
// the file does not exist yet.
func OpenRunCache(path string) (*RunCache, error) {
	c := &RunCache{path: path, entries: make(map[string]SchemeIPCs)}
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return c, nil
	}
	if err != nil {
		return nil, fmt.Errorf("eval: read run cache: %w", err)
	}
	var f runCacheFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("eval: corrupt run cache %s: %w", path, err)
	}
	if f.Version != runCacheVersion {
		return nil, fmt.Errorf("eval: run cache %s is v%d, this build reads v%d", path, f.Version, runCacheVersion)
	}
	if f.Entries != nil {
		c.entries = f.Entries
	}
	return c, nil
}

// Len returns the number of cached measurements.
func (c *RunCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

func (c *RunCache) get(key string) (SchemeIPCs, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.entries[key]
	return v, ok
}

// put records a completed measurement and persists the cache atomically, so
// a kill between measurements never loses finished work.
func (c *RunCache) put(key string, v SchemeIPCs) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries[key] = v
	data, err := json.MarshalIndent(runCacheFile{Version: runCacheVersion, Entries: c.entries}, "", "  ")
	if err != nil {
		return err
	}
	return ckpt.WriteFileAtomic(c.path, append(data, '\n'))
}

// ctxOf returns the Options context, defaulting to Background.
func (o Options) ctxOf() context.Context {
	if o.Ctx != nil {
		return o.Ctx
	}
	return context.Background()
}
