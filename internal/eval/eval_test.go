package eval

import (
	"reflect"
	"strings"
	"testing"

	"dagguise/internal/audit"
	"dagguise/internal/config"
)

func quickOpts() Options {
	return Options{Warmup: 10_000, Window: 120_000}
}

func TestFigure9ShapesOnSubset(t *testing.T) {
	opts := quickOpts()
	opts.Apps = []string{"lbm", "leela"}
	res, err := Figure9(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		for name, v := range map[string]float64{
			"fs victim": row.FSBTAVictim, "fs spec": row.FSBTASpec,
			"dag victim": row.DAGguiseVictim, "dag spec": row.DAGguiseSpec,
		} {
			if v <= 0 || v > 1.6 {
				t.Errorf("%s: %s normalized IPC %f out of range", row.App, name, v)
			}
		}
	}
	// Memory-bound lbm: the co-runner must do much better under DAGguise
	// than FS-BTA (the headline claim).
	lbm := res.Rows[0]
	if !(lbm.DAGguiseSpec > lbm.FSBTASpec) {
		t.Errorf("lbm co-runner: dag %f <= fs %f", lbm.DAGguiseSpec, lbm.FSBTASpec)
	}
	if !(res.DAGguiseGeomean > res.FSBTAGeomean) {
		t.Errorf("geomean: dag %f <= fs %f", res.DAGguiseGeomean, res.FSBTAGeomean)
	}
	text := FormatFigure9(res)
	if !strings.Contains(text, "lbm") || !strings.Contains(text, "geomean") {
		t.Fatal("format incomplete")
	}
}

func TestFigure10ShapesOnSubset(t *testing.T) {
	if testing.Short() {
		t.Skip("eight-core runs in short mode")
	}
	opts := quickOpts()
	opts.Apps = []string{"lbm"}
	res, err := Figure10(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	row := res.Rows[0]
	if !(row.DAGguiseAvg > row.FSBTAAvg) {
		t.Errorf("8-core avg: dag %f <= fs %f", row.DAGguiseAvg, row.FSBTAAvg)
	}
	if FormatFigure10(res) == "" {
		t.Fatal("empty format")
	}
}

func TestTable1SecurityClassification(t *testing.T) {
	rows, err := Table1(120, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, row := range rows {
		leaks := row.SequenceMI > 0.01
		if row.Secure && leaks {
			t.Errorf("%v measured secure but leaks %.3f bits/probe", row.Scheme, row.SequenceMI)
		}
		if row.Scheme == config.Insecure && !leaks {
			t.Error("insecure baseline shows no leakage; harness broken")
		}
		if row.Scheme == config.Camouflage && !leaks {
			t.Error("camouflage shows no leakage; Figure 2 not reproduced")
		}
		// The measured verdict must agree with the paper's classification
		// on this secret pair: the calibrated thresholds replace the
		// hard-coded Secure() mapping without changing the table.
		if row.Secure != row.Claimed {
			t.Errorf("%v: measured verdict %v disagrees with the paper's claim %v (agg %.4f thr %.4f, seq %.4f thr %.4f)",
				row.Scheme, row.Secure, row.Claimed,
				row.AggregateMI, row.AggThreshold, row.SequenceMI, row.SeqThreshold)
		}
		if !(row.AggMILo <= row.AggregateMI && row.AggregateMI <= row.AggMIHi) {
			t.Errorf("%v: CI [%.4f, %.4f] does not bracket aggregate MI %.4f",
				row.Scheme, row.AggMILo, row.AggMIHi, row.AggregateMI)
		}
	}
	text := FormatTable1(rows)
	if !strings.Contains(text, "insecure") || !strings.Contains(text, "claimed") {
		t.Fatal("FormatTable1 incomplete")
	}
}

func quickAuditConfig() audit.Config {
	cfg := audit.DefaultConfig()
	cfg.Window = 50
	cfg.Permutations = 100
	cfg.Bootstrap = 100
	return cfg
}

func TestAuditGateMatchesSchemeSecurity(t *testing.T) {
	insecure, err := Audit(config.Insecure, 100, quickAuditConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if insecure.WithinBudget {
		t.Fatal("insecure baseline within leakage budget; detector has no power")
	}
	dag, err := Audit(config.DAGguise, 100, quickAuditConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !dag.WithinBudget {
		t.Fatalf("DAGguise over budget: window %d at cycle %d", dag.FirstExceeded, dag.FirstExceededCycle)
	}
}

func TestFigure7Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("profiling sweep in short mode")
	}
	opts := Options{Warmup: 4_000, Window: 40_000}
	res, err := Figure7(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 72 {
		t.Fatalf("points = %d, want 72 (4 sequences x 9 weights x 2 write ratios)", len(res.Points))
	}
	if res.Selected.Sequences == 0 {
		t.Fatal("no defense selected")
	}
	series := res.SeriesBySequences()
	if len(series) != 4 {
		t.Fatalf("series = %d, want 4", len(series))
	}
	// Figure 7(a): within a series, IPC must not increase as the weight
	// grows (monotone to within noise).
	for seq, pts := range series {
		first, last := pts[0], pts[len(pts)-1]
		if first.IPC < last.IPC*0.95 {
			t.Errorf("seq=%d: IPC at weight %d (%f) below weight %d (%f)",
				seq, first.Template.Weight, first.IPC, last.Template.Weight, last.IPC)
		}
	}
}

func TestDefaultDefenseIsValid(t *testing.T) {
	if err := DefaultDefense().Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestFigure9WorkerCountInvariant pins that the parallel per-app fan-out
// changes nothing in the results: rows are independently seeded and
// assembled in app order, so any worker count produces identical numbers.
func TestFigure9WorkerCountInvariant(t *testing.T) {
	opts := quickOpts()
	opts.Apps = []string{"lbm", "xz", "roms"}
	solo, err := Figure9(opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Workers = 3
	many, err := Figure9(opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(solo, many) {
		t.Fatalf("Figure9 depends on worker count:\n1 worker:  %+v\n3 workers: %+v", solo, many)
	}
}
