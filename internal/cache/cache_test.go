package cache

import (
	"testing"
	"testing/quick"

	"dagguise/internal/config"
)

func smallLevel() config.CacheLevel {
	return config.CacheLevel{SizeBytes: 1024, Ways: 2, LineBytes: 64, LatencyCycles: 4}
}

func TestNewRejectsBadGeometry(t *testing.T) {
	if _, err := New(config.CacheLevel{SizeBytes: 1000, Ways: 3, LineBytes: 64, LatencyCycles: 1}); err == nil {
		t.Fatal("non-power-of-two set count accepted")
	}
	if _, err := New(config.CacheLevel{SizeBytes: 1024, Ways: 2, LineBytes: 48, LatencyCycles: 1}); err == nil {
		t.Fatal("non-power-of-two line accepted")
	}
}

func TestLookupMissThenHit(t *testing.T) {
	c := MustNew(smallLevel())
	if c.Lookup(0x1000, false) {
		t.Fatal("cold cache hit")
	}
	c.Insert(0x1000, false)
	if !c.Lookup(0x1000, false) {
		t.Fatal("miss after insert")
	}
	if !c.Lookup(0x1040, false) == true && c.Lookup(0x1040, false) {
		t.Fatal("different line hit")
	}
	st := c.Stats()
	if st.Hits != 1 {
		t.Fatalf("hits = %d, want 1", st.Hits)
	}
}

func TestLRUEviction(t *testing.T) {
	// 1KiB, 2-way, 64B lines: 8 sets. Three lines mapping to set 0:
	// line numbers 0, 8, 16 (addresses 0, 512, 1024... set = line & 7).
	c := MustNew(smallLevel())
	a, b, d := uint64(0), uint64(8*64), uint64(16*64)
	c.Insert(a, false)
	c.Insert(b, false)
	c.Lookup(a, false) // a most recent
	v, ev := c.Insert(d, false)
	if !ev {
		t.Fatal("no eviction from full set")
	}
	if v.Addr != b {
		t.Fatalf("evicted %#x, want LRU line %#x", v.Addr, b)
	}
	if !c.Lookup(a, false) || c.Lookup(b, false) {
		t.Fatal("LRU state wrong after eviction")
	}
}

func TestDirtyEvictionReported(t *testing.T) {
	c := MustNew(smallLevel())
	a, b, d := uint64(0), uint64(8*64), uint64(16*64)
	c.Insert(a, true)
	c.Insert(b, false)
	c.Lookup(b, false)
	v, ev := c.Insert(d, false)
	if !ev || !v.Dirty || v.Addr != a {
		t.Fatalf("dirty eviction wrong: %+v ev=%v", v, ev)
	}
	if c.Stats().DirtyEvictions != 1 {
		t.Fatal("dirty eviction not counted")
	}
}

func TestInsertExistingRefreshes(t *testing.T) {
	c := MustNew(smallLevel())
	c.Insert(0, false)
	if _, ev := c.Insert(0, true); ev {
		t.Fatal("re-insert evicted")
	}
	// Line should now be dirty: evicting it must report dirty.
	c.Insert(8*64, false)
	v, ev := c.Insert(16*64, false)
	if !ev || !v.Dirty {
		t.Fatalf("expected dirty eviction of refreshed line, got %+v ev=%v", v, ev)
	}
}

func TestMarkDirtyOnLookup(t *testing.T) {
	c := MustNew(smallLevel())
	c.Insert(0, false)
	c.Lookup(0, true) // store hit
	c.Insert(8*64, false)
	v, _ := c.Insert(16*64, false)
	if !v.Dirty {
		t.Fatal("store hit did not mark line dirty")
	}
}

func testSystem() config.SystemConfig {
	cfg := config.Default(1, config.Insecure)
	// Shrink the hierarchy so tests exercise evictions quickly.
	cfg.L1 = config.CacheLevel{SizeBytes: 1 << 10, Ways: 2, LineBytes: 64, LatencyCycles: 4}
	cfg.L2 = config.CacheLevel{SizeBytes: 2 << 10, Ways: 4, LineBytes: 64, LatencyCycles: 13}
	cfg.L3 = config.CacheLevel{SizeBytes: 4 << 10, Ways: 4, LineBytes: 64, LatencyCycles: 42}
	return cfg
}

func TestHierarchyLevels(t *testing.T) {
	h, err := NewHierarchy(testSystem())
	if err != nil {
		t.Fatal(err)
	}
	r := h.Access(0x10000, false)
	if r.Level != 4 || !r.MissToMem {
		t.Fatalf("cold access level = %d, MissToMem=%v", r.Level, r.MissToMem)
	}
	r = h.Access(0x10000, false)
	if r.Level != 1 || r.Latency != 4 {
		t.Fatalf("second access level = %d lat=%d, want L1/4", r.Level, r.Latency)
	}
}

func TestHierarchyWritebackToMemory(t *testing.T) {
	h, err := NewHierarchy(testSystem())
	if err != nil {
		t.Fatal(err)
	}
	// Dirty a line, then stream enough lines through to push it out of
	// all three levels.
	h.Access(0, true)
	sawWB := false
	for i := uint64(1); i < 4096; i++ {
		r := h.Access(i*64*8, false) // same set stride to force evictions
		for _, wb := range r.Writebacks {
			if wb == 0 {
				sawWB = true
			}
		}
	}
	if !sawWB {
		t.Fatal("dirty line never written back to memory")
	}
}

func TestHierarchyStoreMissesRequestFill(t *testing.T) {
	h, err := NewHierarchy(testSystem())
	if err != nil {
		t.Fatal(err)
	}
	r := h.Access(0x2000, true)
	if !r.MissToMem {
		t.Fatal("store miss did not request a write-allocate fill")
	}
	// After allocation the line is present and dirty.
	r = h.Access(0x2000, false)
	if r.Level != 1 {
		t.Fatalf("allocated line not in L1: level %d", r.Level)
	}
}

func TestHierarchyContains(t *testing.T) {
	h, _ := NewHierarchy(testSystem())
	if h.Contains(0x40) {
		t.Fatal("cold hierarchy contains line")
	}
	h.Access(0x40, false)
	if !h.Contains(0x40) {
		t.Fatal("line lost after access")
	}
}

func TestPrefetchFillLandsInL2L3(t *testing.T) {
	h, _ := NewHierarchy(testSystem())
	h.PrefetchFill(0x80)
	r := h.Access(0x80, false)
	if r.Level != 2 {
		t.Fatalf("prefetched line found at level %d, want L2", r.Level)
	}
}

func TestMPKI(t *testing.T) {
	h, _ := NewHierarchy(testSystem())
	for i := uint64(0); i < 100; i++ {
		h.Access(i*64*64, false)
	}
	if got := h.MPKI(100_000); got <= 0 {
		t.Fatalf("MPKI = %f, want > 0", got)
	}
	if h.MPKI(0) != 0 {
		t.Fatal("MPKI with zero instructions should be 0")
	}
}

func TestCacheNeverExceedsCapacityProperty(t *testing.T) {
	// Property: after any access pattern, the number of distinct
	// resident lines equals insertions minus evictions and never exceeds
	// sets*ways.
	f := func(addrs []uint16) bool {
		c := MustNew(smallLevel())
		inserted, evicted := 0, 0
		for _, a := range addrs {
			addr := uint64(a) * 64
			if !c.Lookup(addr, false) {
				_, ev := c.Insert(addr, false)
				inserted++
				if ev {
					evicted++
				}
			}
		}
		resident := inserted - evicted
		return resident <= 16 && resident >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestHierarchyInclusionOnHitPath(t *testing.T) {
	h, _ := NewHierarchy(testSystem())
	h.Access(0x40, false) // miss everywhere, fill all levels
	// Evict from L1 only by filling its set (8 sets, 2 ways: stride 512).
	h.Access(0x40+512, false)
	h.Access(0x40+1024, false)
	r := h.Access(0x40, false)
	if r.Level == 4 {
		t.Fatal("line lost from the entire hierarchy after L1 eviction")
	}
	if r.Level == 1 {
		t.Fatal("line unexpectedly still in L1")
	}
}
