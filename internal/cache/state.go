package cache

import "fmt"

// Line flag bits in State.Flags.
const (
	flagValid = 1 << 0
	flagDirty = 1 << 1
)

// State is the serializable content of one cache level: the line arrays
// flattened set-major (index = set*ways + way). Geometry (set count, ways,
// line size, latency) is configuration, rebuilt by the constructor, and is
// recorded only as lengths for shape validation on restore.
type State struct {
	Tags  []uint64 `json:"tags"`
	Flags []uint8  `json:"flags"`
	LRU   []uint64 `json:"lru"`
	Clock uint64   `json:"clock"`
	Stats Stats    `json:"stats"`
}

// SaveState captures the level's full mutable state.
func (c *Cache) SaveState() State {
	n := len(c.sets) * c.ways
	st := State{
		Tags:  make([]uint64, 0, n),
		Flags: make([]uint8, 0, n),
		LRU:   make([]uint64, 0, n),
		Clock: c.clock,
		Stats: c.stats,
	}
	for _, set := range c.sets {
		for _, ln := range set {
			var f uint8
			if ln.valid {
				f |= flagValid
			}
			if ln.dirty {
				f |= flagDirty
			}
			st.Tags = append(st.Tags, ln.tag)
			st.Flags = append(st.Flags, f)
			st.LRU = append(st.LRU, ln.lru)
		}
	}
	return st
}

// RestoreState overwrites the level's mutable state. The cache must have
// been built with the same configuration the state was saved from.
func (c *Cache) RestoreState(st State) error {
	n := len(c.sets) * c.ways
	if len(st.Tags) != n || len(st.Flags) != n || len(st.LRU) != n {
		return fmt.Errorf("cache: state holds %d/%d/%d lines, cache has %d",
			len(st.Tags), len(st.Flags), len(st.LRU), n)
	}
	i := 0
	for s := range c.sets {
		for w := range c.sets[s] {
			c.sets[s][w] = line{
				tag:   st.Tags[i],
				valid: st.Flags[i]&flagValid != 0,
				dirty: st.Flags[i]&flagDirty != 0,
				lru:   st.LRU[i],
			}
			i++
		}
	}
	c.clock = st.Clock
	c.stats = st.Stats
	return nil
}

// HierarchyState is the serializable state of one core's cache stack.
type HierarchyState struct {
	L1 State `json:"l1"`
	L2 State `json:"l2"`
	L3 State `json:"l3"`
}

// SaveState captures all three levels.
func (h *Hierarchy) SaveState() HierarchyState {
	return HierarchyState{L1: h.L1.SaveState(), L2: h.L2.SaveState(), L3: h.L3.SaveState()}
}

// RestoreState overwrites all three levels.
func (h *Hierarchy) RestoreState(st HierarchyState) error {
	if err := h.L1.RestoreState(st.L1); err != nil {
		return fmt.Errorf("L1: %w", err)
	}
	if err := h.L2.RestoreState(st.L2); err != nil {
		return fmt.Errorf("L2: %w", err)
	}
	if err := h.L3.RestoreState(st.L3); err != nil {
		return fmt.Errorf("L3: %w", err)
	}
	return nil
}
