// Package cache implements the private L1/L2 and per-core L3 slice of the
// Table 2 hierarchy: set-associative, LRU replacement, write-back with
// write-allocate. The hierarchy is evaluated functionally (hit level and
// latency are determined at access time) which keeps the simulator fast
// while preserving the miss stream's addresses, mix and density — the
// inputs that matter to the memory-side evaluation.
//
// L3 is modelled as a private per-core slice rather than one shared array:
// DAGguise targets the memory-controller channel, and the paper's
// evaluation isolates it from cache-occupancy channels (which need their
// own defenses, e.g. partitioning).
package cache

import (
	"fmt"

	"dagguise/internal/config"
)

type line struct {
	tag   uint64
	valid bool
	dirty bool
	lru   uint64 // higher = more recent
}

// Stats counts per-level outcomes.
type Stats struct {
	Hits           uint64
	Misses         uint64
	Evictions      uint64
	DirtyEvictions uint64
}

// Cache is one set-associative level.
type Cache struct {
	sets      [][]line
	ways      int
	lineShift uint
	setMask   uint64
	latency   uint64
	clock     uint64
	stats     Stats
}

// New builds a cache level from its configuration.
func New(cfg config.CacheLevel) (*Cache, error) {
	sets := cfg.Sets()
	if sets <= 0 || sets&(sets-1) != 0 {
		return nil, fmt.Errorf("cache: set count %d must be a positive power of two", sets)
	}
	if cfg.LineBytes <= 0 || cfg.LineBytes&(cfg.LineBytes-1) != 0 {
		return nil, fmt.Errorf("cache: line size %d must be a positive power of two", cfg.LineBytes)
	}
	c := &Cache{
		sets:    make([][]line, sets),
		ways:    cfg.Ways,
		setMask: uint64(sets - 1),
		latency: uint64(cfg.LatencyCycles),
	}
	var shift uint
	for v := cfg.LineBytes; v > 1; v >>= 1 {
		shift++
	}
	c.lineShift = shift
	for i := range c.sets {
		c.sets[i] = make([]line, cfg.Ways)
	}
	return c, nil
}

// MustNew panics on configuration error.
func MustNew(cfg config.CacheLevel) *Cache {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Latency returns the level's round-trip hit latency in CPU cycles.
func (c *Cache) Latency() uint64 { return c.latency }

func (c *Cache) index(addr uint64) (set uint64, tag uint64) {
	l := addr >> c.lineShift
	return l & c.setMask, l >> 0
}

// Lookup probes the cache for addr, updating LRU on hit. markDirty sets
// the line's dirty bit (for stores).
func (c *Cache) Lookup(addr uint64, markDirty bool) bool {
	set, tag := c.index(addr)
	c.clock++
	for i := range c.sets[set] {
		ln := &c.sets[set][i]
		if ln.valid && ln.tag == tag {
			ln.lru = c.clock
			if markDirty {
				ln.dirty = true
			}
			c.stats.Hits++
			return true
		}
	}
	c.stats.Misses++
	return false
}

// Victim describes a line displaced by Insert.
type Victim struct {
	Addr  uint64
	Dirty bool
}

// Insert allocates addr (possibly dirty). If a valid line is displaced it
// is returned with evicted=true.
func (c *Cache) Insert(addr uint64, dirty bool) (v Victim, evicted bool) {
	set, tag := c.index(addr)
	c.clock++
	var lruIdx int
	var lruVal uint64 = ^uint64(0)
	for i := range c.sets[set] {
		ln := &c.sets[set][i]
		if ln.valid && ln.tag == tag {
			// Already present (e.g. refill racing an earlier insert);
			// just refresh.
			ln.lru = c.clock
			if dirty {
				ln.dirty = true
			}
			return Victim{}, false
		}
		if !ln.valid {
			*ln = line{tag: tag, valid: true, dirty: dirty, lru: c.clock}
			return Victim{}, false
		}
		if ln.lru < lruVal {
			lruVal = ln.lru
			lruIdx = i
		}
	}
	old := c.sets[set][lruIdx]
	c.sets[set][lruIdx] = line{tag: tag, valid: true, dirty: dirty, lru: c.clock}
	c.stats.Evictions++
	if old.dirty {
		c.stats.DirtyEvictions++
	}
	// Reconstruct the victim address: tag holds the full line number.
	return Victim{Addr: old.tag << c.lineShift, Dirty: old.dirty}, true
}

// Stats returns the level's counters.
func (c *Cache) Stats() Stats { return c.stats }

// Hierarchy is the private three-level stack of one core.
type Hierarchy struct {
	L1, L2, L3 *Cache
	memKinds   bool
}

// NewHierarchy builds a hierarchy from the system configuration. The L3
// slice is sized as cfg.L3.SizeBytes / cfg.Cores (per-core slice).
func NewHierarchy(cfg config.SystemConfig) (*Hierarchy, error) {
	l1, err := New(cfg.L1)
	if err != nil {
		return nil, err
	}
	l2, err := New(cfg.L2)
	if err != nil {
		return nil, err
	}
	l3cfg := cfg.L3
	l3cfg.SizeBytes = cfg.L3.SizeBytes / cfg.Cores
	l3, err := New(l3cfg)
	if err != nil {
		return nil, err
	}
	return &Hierarchy{L1: l1, L2: l2, L3: l3}, nil
}

// Result describes one hierarchy access.
type Result struct {
	// Level is the hit level: 1, 2, 3, or 4 for memory.
	Level int
	// Latency is the hit latency in CPU cycles; for memory misses it is
	// the L3 latency already paid before the request leaves the chip
	// (the memory latency is added dynamically by the simulator).
	Latency uint64
	// MissToMem reports whether a memory read must be issued.
	MissToMem bool
	// Writebacks lists dirty-line addresses displaced to memory.
	Writebacks []uint64
}

// Access performs a load or store at addr.
func (h *Hierarchy) Access(addr uint64, write bool) Result {
	if h.L1.Lookup(addr, write) {
		return Result{Level: 1, Latency: h.L1.Latency()}
	}
	if h.L2.Lookup(addr, false) {
		h.fill(addr, write, 1)
		return Result{Level: 2, Latency: h.L2.Latency()}
	}
	if h.L3.Lookup(addr, false) {
		h.fill(addr, write, 2)
		return Result{Level: 3, Latency: h.L3.Latency()}
	}
	// Both loads and stores fetch the line from memory on a full miss
	// (write-allocate); the core issues the store's fill read without
	// stalling retirement.
	res := Result{Level: 4, Latency: h.L3.Latency(), MissToMem: true}
	res.Writebacks = h.fill(addr, write, 3)
	return res
}

// fill allocates addr into all levels up to and including upTo (1-based),
// cascading dirty evictions downwards and returning those that leave L3.
func (h *Hierarchy) fill(addr uint64, dirty bool, upTo int) []uint64 {
	var toMem []uint64
	if v, ev := h.L1.Insert(addr, dirty); ev && v.Dirty && upTo >= 1 {
		// L1 dirty victim moves to L2.
		if v2, ev2 := h.L2.Insert(v.Addr, true); ev2 && v2.Dirty {
			if v3, ev3 := h.L3.Insert(v2.Addr, true); ev3 && v3.Dirty {
				toMem = append(toMem, v3.Addr)
			}
		}
	}
	if upTo >= 2 {
		if v, ev := h.L2.Insert(addr, false); ev && v.Dirty {
			if v3, ev3 := h.L3.Insert(v.Addr, true); ev3 && v3.Dirty {
				toMem = append(toMem, v3.Addr)
			}
		}
	}
	if upTo >= 3 {
		if v, ev := h.L3.Insert(addr, false); ev && v.Dirty {
			toMem = append(toMem, v.Addr)
		}
	}
	return toMem
}

// Contains probes for addr without updating replacement state, used by the
// prefetcher to filter redundant prefetches.
func (c *Cache) Contains(addr uint64) bool {
	set, tag := c.index(addr)
	for i := range c.sets[set] {
		ln := &c.sets[set][i]
		if ln.valid && ln.tag == tag {
			return true
		}
	}
	return false
}

// Contains reports whether any level holds addr (read-only probe).
func (h *Hierarchy) Contains(addr uint64) bool {
	return h.L1.Contains(addr) || h.L2.Contains(addr) || h.L3.Contains(addr)
}

// PrefetchFill installs a prefetched line into L2 and L3 (not L1, matching
// an L2 stream prefetcher), returning dirty lines displaced to memory.
func (h *Hierarchy) PrefetchFill(addr uint64) []uint64 {
	var toMem []uint64
	if v, ev := h.L2.Insert(addr, false); ev && v.Dirty {
		if v3, ev3 := h.L3.Insert(v.Addr, true); ev3 && v3.Dirty {
			toMem = append(toMem, v3.Addr)
		}
	}
	if v, ev := h.L3.Insert(addr, false); ev && v.Dirty {
		toMem = append(toMem, v.Addr)
	}
	return toMem
}

// MPKI returns misses-to-memory per kilo-instruction given an instruction
// count (uses the L3 miss counter).
func (h *Hierarchy) MPKI(instructions uint64) float64 {
	if instructions == 0 {
		return 0
	}
	return float64(h.L3.Stats().Misses) / float64(instructions) * 1000
}
