package telem

import (
	"sort"

	"dagguise/internal/obs"
)

// DetRules is the deterministic-plane fleet rule catalog, evaluated
// over the merged logical-cycle TSDB inside Report. Everything here is
// a pure function of the sweep, so the resulting alert sequence is part
// of the byte-identical report contract.
func DetRules() []obs.Rule {
	rules := []obs.Rule{
		// leak_rate/<scheme> is the collector's rollup: the fraction of
		// the scheme's shards whose audit found cross-domain
		// interference. Any scheme leaking in half its shards or more is
		// burning the campaign's leakage budget.
		{Name: "fleet-leak-budget-burn", Series: "leak_rate/*", Kind: obs.RuleThreshold, Threshold: 0.5, Severity: obs.SeverityCritical},
	}
	for i := range rules {
		if err := rules[i].Validate(); err != nil {
			panic(err) // stock catalog must be valid by construction
		}
	}
	return rules
}

// FleetRules is the ops-plane rule catalog evaluated by EvalOps against
// wall-clock-derived series. These drive dagtop and dagmon during a
// live campaign and are deliberately excluded from the deterministic
// report.
func FleetRules() []obs.Rule {
	rules := []obs.Rule{
		// straggler/<shard>: wall-clock elapsed of a running shard as a
		// multiple of the median done-shard duration.
		{Name: "straggler", Series: "straggler/*", Kind: obs.RuleThreshold, Threshold: 3},
		// worker_stall/<worker>: seconds since the worker's last
		// heartbeat, appended only while it holds a running shard.
		{Name: "worker-stall", Series: "worker_stall/*", Kind: obs.RuleThreshold, Threshold: 30, Severity: obs.SeverityCritical},
		// requeue_rate: 0/1 indicator per lifecycle transition (claims
		// score 0, requeues 1) — a burn rate over recent transitions.
		{Name: "requeue-rate", Series: "requeue_rate", Kind: obs.RuleBurnRate, Threshold: 0.5, Window: 8, MinPoints: 4},
	}
	for i := range rules {
		if err := rules[i].Validate(); err != nil {
			panic(err)
		}
	}
	return rules
}

// Straggler ranks one running shard against the fleet's median pace.
type Straggler struct {
	Shard     string
	Worker    string
	ElapsedMs int64
	// Ratio is elapsed over the median done-shard duration (0 when no
	// shard has finished yet).
	Ratio float64
}

// EvalOps evaluates the ops-plane rules at wall time nowMs (unix
// milliseconds — inject a fixed clock in tests) and returns the alert
// edges plus the straggler ranking, slowest first. It builds a fresh
// TSDB and engine per call, so calling it repeatedly on successive
// collections (the dagtop refresh loop) never double-counts.
func (c *Collection) EvalOps(nowMs int64, rules []obs.Rule) ([]obs.Alert, []Straggler) {
	if rules == nil {
		rules = FleetRules()
	}
	db := obs.NewTSDB(0)

	// Requeue-rate indicators, in global lifecycle order.
	i := uint64(0)
	for _, r := range c.lifecycle {
		switch r.Event {
		case EventClaim:
			db.Append("requeue_rate", i, 0)
			i++
		case EventRequeue:
			db.Append("requeue_rate", i, 1)
			i++
		}
	}

	// Straggler ratios for running shards against the median pace.
	p50 := c.medianDoneMs()
	var rank []Straggler
	for _, st := range c.Shards {
		if st.State != "claim" || st.ClaimWall <= 0 || nowMs < st.ClaimWall {
			continue
		}
		elapsed := nowMs - st.ClaimWall
		s := Straggler{Shard: st.Name, Worker: st.Worker, ElapsedMs: elapsed}
		if p50 > 0 {
			s.Ratio = float64(elapsed) / p50
		}
		db.Append("straggler/"+st.Name, uint64(nowMs), s.Ratio)
		rank = append(rank, s)
	}
	sort.Slice(rank, func(i, j int) bool {
		if rank[i].Ratio != rank[j].Ratio {
			return rank[i].Ratio > rank[j].Ratio
		}
		if rank[i].ElapsedMs != rank[j].ElapsedMs {
			return rank[i].ElapsedMs > rank[j].ElapsedMs
		}
		return rank[i].Shard < rank[j].Shard
	})

	// Heartbeat gaps for workers still holding work.
	for _, w := range c.Workers {
		if len(w.Running) == 0 || w.LastWall <= 0 || nowMs < w.LastWall {
			continue
		}
		db.Append("worker_stall/"+w.Name, uint64(nowMs), float64(nowMs-w.LastWall)/1000)
	}

	eng := obs.NewEngine(db, rules)
	alerts := eng.Eval(uint64(nowMs))
	return alerts, rank
}

// medianDoneMs is the median wall duration of finished shards in
// milliseconds (0 when none have finished).
func (c *Collection) medianDoneMs() float64 {
	var durs []float64
	for _, st := range c.Shards {
		if st.State == "done" && st.EndWall >= st.ClaimWall && st.ClaimWall > 0 {
			durs = append(durs, float64(st.EndWall-st.ClaimWall))
		}
	}
	if len(durs) == 0 {
		return 0
	}
	sort.Float64s(durs)
	return durs[len(durs)/2]
}

// ETA estimates milliseconds until the campaign finishes, from the
// median done-shard duration, the remaining shard count and the worker
// pool size. ok is false until at least one shard has finished.
func (c *Collection) ETA() (ms int64, ok bool) {
	p50 := c.medianDoneMs()
	if p50 <= 0 {
		return 0, false
	}
	pending, running, _, _ := c.Counts()
	remaining := pending + running
	if remaining == 0 {
		return 0, true
	}
	workers := c.PoolWorkers
	if workers <= 0 {
		workers = 1
	}
	waves := (remaining + workers - 1) / workers
	return int64(float64(waves) * p50), true
}
