package telem

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dagguise/internal/obs"
)

// fixedClock returns an injectable wall clock starting at base that
// advances stepMs per reading.
func fixedClock(base, stepMs int64) func() int64 {
	t := base - stepMs
	return func() int64 {
		t += stepMs
		return t
	}
}

func openTestEmitter(t *testing.T, dir, worker, fp string, clock func() int64) *Emitter {
	t.Helper()
	e, err := OpenEmitter(dir, worker, fp)
	if err != nil {
		t.Fatal(err)
	}
	if clock != nil {
		e.SetClock(clock)
	}
	return e
}

func TestEmitterCollectRoundTrip(t *testing.T) {
	dir := t.TempDir()
	e := openTestEmitter(t, dir, "0", "fp-round", fixedClock(1000, 10))
	e.Campaign(4, 2, 6000)
	e.Shard("s0", EventClaim, "", 6000)
	e.Heartbeat("s0", 3000)
	e.Point("completed/s0", 3000, 17)
	e.SpanBegin("s0", "chunk", 0)
	e.SpanEnd("s0", "chunk", 0, 3000)
	e.Shard("s0", EventDone, "", 6000)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	c, err := Collect(dir)
	if err != nil {
		t.Fatal(err)
	}
	if c.Fingerprint != "fp-round" {
		t.Fatalf("fingerprint %q", c.Fingerprint)
	}
	if c.TotalShards != 4 || c.PoolWorkers != 2 || c.ShardCycles != 6000 {
		t.Fatalf("campaign fold: %+v", c)
	}
	if len(c.Workers) != 1 || c.Workers[0].Name != "0" {
		t.Fatalf("workers: %+v", c.Workers)
	}
	if c.Workers[0].LastWall == 0 {
		t.Fatal("ops records should stamp LastWall")
	}
	if len(c.Shards) != 1 || c.Shards[0].State != "done" || c.Shards[0].Target != 6000 {
		t.Fatalf("shards: %+v", c.Shards)
	}
	if got := c.Shards[0].Cycle; got != 6000 {
		t.Fatalf("done event should lift Cycle to 6000, got %d", got)
	}
	p, ok := c.DB.Last("completed/s0")
	if !ok || p.T != 3000 || p.V != 17 {
		t.Fatalf("point fold: %+v ok=%v", p, ok)
	}
	want := Span{Shard: "s0", Name: "chunk", Start: 0, End: 3000}
	if len(c.Spans) != 1 || c.Spans[0] != want {
		t.Fatalf("spans: %+v", c.Spans)
	}
	pending, running, done, failed := c.Counts()
	if pending != 3 || running != 0 || done != 1 || failed != 0 {
		t.Fatalf("counts: %d/%d/%d/%d", pending, running, done, failed)
	}
}

func TestEmitterRepairsTornTail(t *testing.T) {
	dir := t.TempDir()
	e := openTestEmitter(t, dir, "0", "fp", nil)
	e.Point("a", 1, 1)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, StreamName("0"))
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// A crash mid-append leaves a torn unterminated line.
	if err := os.WriteFile(path, append(whole, []byte("DAGT1 0123456789abcdef {\"k\":\"pt\",\"ser")...), 0o644); err != nil {
		t.Fatal(err)
	}

	// Reopening repairs the tail; the stream stays collectible and the
	// valid prefix survives untouched.
	e2 := openTestEmitter(t, dir, "0", "fp", nil)
	e2.Point("b", 2, 2)
	if err := e2.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(data, whole) {
		t.Fatal("repair rewrote valid prefix lines")
	}
	c, err := Collect(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []string{"a", "b"} {
		if _, ok := c.DB.Last(s); !ok {
			t.Fatalf("series %q missing after repair", s)
		}
	}
}

func TestEmitterRefusesMidStreamCorruption(t *testing.T) {
	dir := t.TempDir()
	e := openTestEmitter(t, dir, "0", "fp", nil)
	e.Point("a", 1, 1)
	e.Point("b", 2, 2)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, StreamName("0"))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte in the middle of the stream (first line's payload):
	// a corrupt line followed by valid lines is never a torn tail.
	idx := bytes.IndexByte(data, '{')
	data[idx+1] ^= 0x20
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenEmitter(dir, "0", "fp"); err == nil {
		t.Fatal("emitter opened a mid-stream-corrupt file")
	}
	if _, err := Collect(dir); !errors.Is(err, ErrCorruptStream) {
		t.Fatalf("Collect: got %v, want ErrCorruptStream", err)
	}
}

func TestCollectToleratesTornTail(t *testing.T) {
	dir := t.TempDir()
	e := openTestEmitter(t, dir, "0", "fp", nil)
	e.Point("a", 1, 1)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, StreamName("0"))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-2], 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := Collect(dir)
	if err != nil {
		t.Fatal(err)
	}
	if c.Truncated != 1 {
		t.Fatalf("Truncated = %d, want 1", c.Truncated)
	}
	if _, ok := c.DB.Last("a"); ok {
		t.Fatal("torn final line should be dropped, not ingested")
	}
}

func TestCollectFingerprintRules(t *testing.T) {
	dir := t.TempDir()
	openTestEmitter(t, dir, "0", "fp-A", nil).Close()
	// An empty fingerprint (a standalone auditd stream) joins any sweep.
	openTestEmitter(t, dir, "auditd", "", nil).Close()
	c, err := Collect(dir)
	if err != nil {
		t.Fatal(err)
	}
	if c.Fingerprint != "fp-A" {
		t.Fatalf("fingerprint %q, want fp-A", c.Fingerprint)
	}
	// Two different non-empty fingerprints never mix.
	openTestEmitter(t, dir, "1", "fp-B", nil).Close()
	if _, err := Collect(dir); !errors.Is(err, ErrFingerprintMismatch) {
		t.Fatalf("got %v, want ErrFingerprintMismatch", err)
	}
}

// emitShardRun writes the deterministic plane of one finished shard.
func emitShardRun(e *Emitter, shard, scheme string, cycles uint64, leak float64) {
	e.SpanBegin(shard, "chunk", 0)
	e.SpanEnd(shard, "chunk", 0, cycles/2)
	e.SpanBegin(shard, "chunk", cycles/2)
	e.SpanEnd(shard, "chunk", cycles/2, cycles)
	e.Point("completed/"+shard, cycles/2, 10)
	e.Point("completed/"+shard, cycles, 20)
	e.SpanBegin(shard, "shard:"+shard, 0)
	e.SpanEnd(shard, "shard:"+shard, 0, cycles)
	e.Point("leak/"+scheme+"/"+shard, cycles, leak)
}

// TestReportWorkerSplitInvariant pins the tentpole invariant at the
// package level: the deterministic report is byte-identical whether the
// records landed in one stream, were split across two workers, or were
// duplicated by a crash/resume replay.
func TestReportWorkerSplitInvariant(t *testing.T) {
	encode := func(write func(dir string)) []byte {
		dir := t.TempDir()
		write(dir)
		c, err := Collect(dir)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := c.Report(nil)
		if err != nil {
			t.Fatal(err)
		}
		blob, err := rep.Encode()
		if err != nil {
			t.Fatal(err)
		}
		return blob
	}

	solo := encode(func(dir string) {
		e := openTestEmitter(t, dir, "0", "fp", fixedClock(1000, 7))
		emitShardRun(e, "s0", "dagguise", 4000, 0)
		emitShardRun(e, "s1", "insecure", 4000, 1)
		e.Close()
	})
	split := encode(func(dir string) {
		a := openTestEmitter(t, dir, "0", "fp", fixedClock(5000, 3))
		emitShardRun(a, "s1", "insecure", 4000, 1)
		a.Close()
		b := openTestEmitter(t, dir, "1", "fp", fixedClock(9000, 11))
		emitShardRun(b, "s0", "dagguise", 4000, 0)
		b.Close()
	})
	replayed := encode(func(dir string) {
		a := openTestEmitter(t, dir, "0", "fp", nil)
		emitShardRun(a, "s0", "dagguise", 4000, 0)
		// Crash/resume replays the first chunk verbatim on another worker.
		a.Close()
		b := openTestEmitter(t, dir, "1", "fp", nil)
		b.SpanBegin("s0", "chunk", 0)
		b.SpanEnd("s0", "chunk", 0, 2000)
		b.Point("completed/s0", 2000, 10)
		// A dangling begin (crashed attempt) must not become a span.
		b.SpanBegin("s1", "attempt", 100)
		emitShardRun(b, "s1", "insecure", 4000, 1)
		b.Close()
	})

	if !bytes.Equal(solo, split) {
		t.Fatalf("report depends on worker split:\n--- solo ---\n%s\n--- split ---\n%s", solo, split)
	}
	if !bytes.Equal(solo, replayed) {
		t.Fatalf("report depends on replay:\n--- solo ---\n%s\n--- replayed ---\n%s", solo, replayed)
	}
}

func TestReportLeakRollupFiresDetRule(t *testing.T) {
	dir := t.TempDir()
	e := openTestEmitter(t, dir, "0", "fp", nil)
	emitShardRun(e, "s0", "insecure", 1000, 1)
	emitShardRun(e, "s1", "insecure", 1000, 1)
	emitShardRun(e, "s2", "dagguise", 1000, 0)
	e.Close()

	c, err := Collect(dir)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.Report(nil)
	if err != nil {
		t.Fatal(err)
	}
	if p, ok := c.DB.Last("leak_rate/insecure"); !ok || p.V != 1 {
		t.Fatalf("leak_rate/insecure rollup: %+v ok=%v", p, ok)
	}
	if p, ok := c.DB.Last("leak_rate/dagguise"); !ok || p.V != 0 {
		t.Fatalf("leak_rate/dagguise rollup: %+v ok=%v", p, ok)
	}
	var fired *obs.Alert
	for i := range rep.Alerts {
		if rep.Alerts[i].Rule == "fleet-leak-budget-burn" && rep.Alerts[i].Series == "leak_rate/insecure" {
			fired = &rep.Alerts[i]
		}
	}
	if fired == nil {
		t.Fatalf("fleet-leak-budget-burn did not fire; alerts: %+v", rep.Alerts)
	}
	if fired.State != "firing" || fired.Severity != obs.SeverityCritical {
		t.Fatalf("alert edge: %+v", fired)
	}
	for _, a := range rep.Alerts {
		if a.Series == "leak_rate/dagguise" {
			t.Fatalf("clean scheme fired: %+v", a)
		}
	}
	if rep.TraceDigest == "" || rep.Fingerprint != "fp" {
		t.Fatalf("report header: %+v", rep)
	}
}

// TestOpsRulesFire drives the straggler, worker-stall and requeue-rate
// rules to a firing edge with synthetic streams and an injected clock —
// the acceptance demonstration that the fleet rules actually alert.
func TestOpsRulesFire(t *testing.T) {
	dir := t.TempDir()
	// Worker 0: four shards done quickly (the median pace), then goes
	// silent while still holding a claimed shard -> worker-stall.
	e0 := openTestEmitter(t, dir, "0", "fp", fixedClock(10_000, 1000))
	for _, sh := range []string{"d0", "d1", "d2", "d3"} {
		e0.Shard(sh, EventClaim, "", 100) // wall advances 1s per event
		e0.Shard(sh, EventDone, "", 100)
	}
	e0.Shard("slow", EventClaim, "", 100)
	e0.Close()

	// Worker 1: claim/requeue churn -> requeue-rate burn.
	e1 := openTestEmitter(t, dir, "1", "fp", fixedClock(40_000, 1000))
	for i := 0; i < 4; i++ {
		e1.Shard("flappy", EventClaim, "", 100)
		e1.Shard("flappy", EventRequeue, "", 0)
	}
	e1.Shard("flappy", EventDone, "", 100)
	e1.Close()

	c, err := Collect(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Wall now: far past the claims, so "slow" has been running ~50x the
	// 1s median shard duration and worker 0's last heartbeat is stale.
	now := int64(64_000)
	alerts, rank := c.EvalOps(now, nil)

	want := map[string]string{ // rule -> series
		"straggler":    "straggler/slow",
		"worker-stall": "worker_stall/0",
		"requeue-rate": "requeue_rate",
	}
	got := make(map[string]obs.Alert)
	for _, a := range alerts {
		got[a.Rule] = a
	}
	for rule, series := range want {
		a, ok := got[rule]
		if !ok {
			t.Fatalf("rule %s did not fire; alerts: %+v", rule, alerts)
		}
		if a.Series != series || a.State != "firing" {
			t.Fatalf("rule %s: %+v, want series %s firing", rule, a, series)
		}
	}
	if got["worker-stall"].Severity != obs.SeverityCritical {
		t.Fatalf("worker-stall severity: %+v", got["worker-stall"])
	}

	if len(rank) == 0 || rank[0].Shard != "slow" || rank[0].Worker != "0" {
		t.Fatalf("straggler ranking: %+v", rank)
	}
	if rank[0].Ratio < 3 {
		t.Fatalf("straggler ratio %.2f should be past the 3x threshold", rank[0].Ratio)
	}

	// Repeated evaluation (the dagtop refresh loop) must not
	// double-count: a fresh engine re-reports the same firing edges.
	again, _ := c.EvalOps(now, nil)
	if len(again) != len(alerts) {
		t.Fatalf("EvalOps is not idempotent: %d then %d edges", len(alerts), len(again))
	}

	if ms, ok := c.ETA(); !ok || ms <= 0 {
		t.Fatalf("ETA with done history and pending work: %d ok=%v", ms, ok)
	}
}

func TestStreamNameSanitize(t *testing.T) {
	cases := map[string]string{
		"0":        "telem-worker-0.ndjson",
		"auditd":   "telem-worker-auditd.ndjson",
		"":         "telem-worker-anon.ndjson",
		"a/b c":    "telem-worker-a_b_c.ndjson",
		"W.1-x_9":  "telem-worker-W.1-x_9.ndjson",
		"über/sûr": "telem-worker-_ber_s_r.ndjson",
	}
	for in, want := range cases {
		if got := StreamName(in); got != want {
			t.Errorf("StreamName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestNilEmitterIsNoOp(t *testing.T) {
	var e *Emitter
	e.SetClock(func() int64 { return 0 })
	e.Campaign(1, 1, 1)
	e.Shard("s", EventClaim, "", 1)
	e.Heartbeat("s", 1)
	e.Point("x", 1, 1)
	e.SpanBegin("s", "n", 0)
	e.SpanEnd("s", "n", 0, 1)
	e.Metrics(nil, nil)
	if err := e.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestMetricsDelta(t *testing.T) {
	dir := t.TempDir()
	e := openTestEmitter(t, dir, "fleet", "fp", fixedClock(1, 1))
	mx := obs.NewRegistry(1)
	mx.Inc(obs.CtrFleetShardsDone, 0)
	mx.Inc(obs.CtrFleetShardsDone, 0)
	snap1 := mx.Snapshot()
	e.Metrics(snap1, nil)
	mx.Inc(obs.CtrFleetShardsDone, 0)
	e.Metrics(mx.Snapshot(), snap1)
	e.Metrics(mx.Snapshot(), mx.Snapshot()) // zero delta: no record
	e.Close()

	c, err := Collect(dir)
	if err != nil {
		t.Fatal(err)
	}
	name := obs.CtrFleetShardsDone.String()
	if c.Counters[name] != 3 {
		t.Fatalf("summed counter delta = %d, want 3 (%+v)", c.Counters[name], c.Counters)
	}
	if c.Workers[0].Records != 2 {
		t.Fatalf("zero delta should emit nothing: %d records", c.Workers[0].Records)
	}
}

func TestCollectEmptyDir(t *testing.T) {
	if _, err := Collect(t.TempDir()); err == nil || !strings.Contains(err.Error(), "no telem-worker-") {
		t.Fatalf("got %v, want a no-streams error", err)
	}
}
