package telem

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"io"
	"sort"

	"dagguise/internal/obs"
)

// Report is the deterministic campaign telemetry artifact: the merged
// logical-cycle series, the fleet alert edges over them, the canonical
// stitched span set and the digest of the stitched Perfetto trace.
// Every field is a pure function of the sweep, so Encode is
// byte-identical whether the campaign ran on one worker, on K workers,
// or on K workers SIGKILL'd mid-stream and resumed — the same invariant
// the fleet report pins for results.
type Report struct {
	Version     int                 `json:"version"`
	Fingerprint string              `json:"fingerprint"`
	Series      []obs.TSSeriesState `json:"series"`
	Alerts      []obs.Alert         `json:"alerts"`
	Spans       []Span              `json:"spans"`
	TraceDigest string              `json:"trace_digest"`
}

// Report folds the collection's deterministic plane into a Report,
// evaluating rules (DetRules when nil) once at the newest logical
// timestamp so the alert sequence is reproducible.
func (c *Collection) Report(rules []obs.Rule) (*Report, error) {
	if rules == nil {
		rules = DetRules()
	}
	r := &Report{Version: Version, Fingerprint: c.Fingerprint, Spans: c.Spans}
	if r.Spans == nil {
		r.Spans = []Span{}
	}

	st := c.DB.SaveState()
	if st != nil {
		r.Series = st.Series
	}
	if r.Series == nil {
		r.Series = []obs.TSSeriesState{}
	}

	// One evaluation at the global newest timestamp: the engine sees the
	// fully merged store, so the edge sequence cannot depend on worker
	// count or interleaving.
	var maxT uint64
	for _, s := range r.Series {
		for _, p := range s.Points {
			if p.T > maxT {
				maxT = p.T
			}
		}
	}
	eng := obs.NewEngine(c.DB, rules)
	eng.Eval(maxT)
	r.Alerts = eng.History()
	if r.Alerts == nil {
		r.Alerts = []obs.Alert{}
	}
	sort.SliceStable(r.Alerts, func(i, j int) bool { return r.Alerts[i].Seq < r.Alerts[j].Seq })

	var buf bytes.Buffer
	if err := c.WriteTrace(&buf); err != nil {
		return nil, err
	}
	sum := sha256.Sum256(buf.Bytes())
	r.TraceDigest = hex.EncodeToString(sum[:])
	return r, nil
}

// Encode renders the report as stable indented JSON with a trailing
// newline (the byte-diffable artifact the telem-soak CI job compares).
func (r *Report) Encode() ([]byte, error) {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// WriteTrace stitches the canonical span set from every worker into one
// Chrome/Perfetto trace: each shard gets its own runner lane (indexed
// by sorted shard name, so lane assignment is worker-independent), and
// a root span named sweep:<fingerprint-prefix> brackets the whole
// campaign on the system lane. Output bytes are deterministic.
func (c *Collection) WriteTrace(w io.Writer) error {
	lane := make(map[string]int32)
	for _, sp := range c.Spans {
		if _, ok := lane[sp.Shard]; !ok {
			lane[sp.Shard] = 0
		}
	}
	names := make([]string, 0, len(lane))
	for name := range lane {
		names = append(names, name)
	}
	sort.Strings(names)
	for i, name := range names {
		lane[name] = int32(i)
	}

	// B/E event pairs per span. Perfetto nests same-lane B/E events by
	// order, so within one (lane, cycle) the order must be: ends before
	// begins; simultaneous begins outer-first (larger End opens first);
	// simultaneous ends inner-first (larger Start closes first).
	type traceEv struct {
		cycle uint64
		end   bool
		span  Span
		id    uint64
	}
	var evs []traceEv
	var maxEnd uint64
	for i, sp := range c.Spans {
		id := uint64(i) + 2 // id 1 is the root span
		evs = append(evs, traceEv{cycle: sp.Start, span: sp, id: id})
		evs = append(evs, traceEv{cycle: sp.End, end: true, span: sp, id: id})
		if sp.End > maxEnd {
			maxEnd = sp.End
		}
	}
	sort.SliceStable(evs, func(i, j int) bool {
		a, b := evs[i], evs[j]
		if a.cycle != b.cycle {
			return a.cycle < b.cycle
		}
		if a.end != b.end {
			return a.end // ends first
		}
		if a.end {
			if a.span.Start != b.span.Start {
				return a.span.Start > b.span.Start // inner closes first
			}
		} else {
			if a.span.End != b.span.End {
				return a.span.End > b.span.End // outer opens first
			}
		}
		if a.span.Shard != b.span.Shard {
			return a.span.Shard < b.span.Shard
		}
		return a.span.Name < b.span.Name
	})

	fp := c.Fingerprint
	if len(fp) > 12 {
		fp = fp[:12]
	}
	events := make([]obs.Event, 0, len(evs)+2)
	events = append(events, obs.Event{
		Cycle: 0, Name: "sweep:" + fp, Comp: obs.CompSystem, Kind: obs.EvSpanBegin, Span: 1,
	})
	for _, ev := range evs {
		kind := obs.EvSpanBegin
		if ev.end {
			kind = obs.EvSpanEnd
		}
		events = append(events, obs.Event{
			Cycle:  ev.cycle,
			Name:   ev.span.Name,
			Comp:   obs.CompRunner,
			Kind:   kind,
			Span:   ev.id,
			Parent: 1,
			Index:  lane[ev.span.Shard],
		})
	}
	events = append(events, obs.Event{
		Cycle: maxEnd, Name: "sweep:" + fp, Comp: obs.CompSystem, Kind: obs.EvSpanEnd, Span: 1,
	})
	return obs.WriteChromeTrace(w, events)
}
