package telem

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"dagguise/internal/ckpt"
	"dagguise/internal/obs"
)

// ErrCorruptStream reports a telemetry stream with an invalid line that
// is not the crash-truncated tail — real corruption, never tolerated.
var ErrCorruptStream = errors.New("telem: corrupt stream")

// ErrFingerprintMismatch reports streams from different sweeps in one
// telemetry directory.
var ErrFingerprintMismatch = errors.New("telem: streams belong to different sweeps")

// Span is one stitched deterministic span: a (shard, name, start, end)
// tuple on the campaign's logical-cycle axis. Worker identity is
// deliberately absent — which worker ran a shard is scheduling noise,
// and the stitched trace must not depend on it.
type Span struct {
	Shard string `json:"shard"`
	Name  string `json:"name"`
	Start uint64 `json:"start"`
	End   uint64 `json:"end"`
}

// ShardStatus is the collector's view of one shard's lifecycle, folded
// from every stream (ops plane).
type ShardStatus struct {
	Name   string
	State  string // claim | done | failed (last event wins)
	Worker string // worker that produced the last lifecycle event
	Cause  string
	// Target is the shard's cycle budget (from the claim event); Cycle
	// is its latest observed logical progress.
	Target uint64
	Cycle  uint64
	// Retries and Requeues count ops-plane events seen for the shard.
	Retries  int
	Requeues int
	// Owner and Epoch are the shard's lease identity from the newest
	// claim/steal event (empty on pre-lease streams); Steals and Fenced
	// count lease evictions and refused zombie commits.
	Owner  string
	Epoch  uint64
	Steals int
	Fenced int
	// ClaimWall and EndWall are unix ms of the last claim and the
	// terminal event (0 = still running).
	ClaimWall int64
	EndWall   int64
}

// Worker is the collector's view of one stream.
type Worker struct {
	Name string
	// LastWall is the newest wall stamp in the stream (unix ms): the
	// worker's last proof of life.
	LastWall int64
	// Running is the set of shards the worker has claimed but not
	// finished, sorted.
	Running []string
	// Records counts valid records read from the stream.
	Records int
}

// Collection is the folded state of a telemetry directory: the
// deterministic plane (DB, Spans) feeding Report, and the ops plane
// (Shards, Workers, Ops, Counters) feeding dagtop and the fleet rules.
type Collection struct {
	Fingerprint string
	// TotalShards and PoolWorkers come from the campaign record (0 when
	// no fleet driver wrote one).
	TotalShards int
	PoolWorkers int
	// ShardCycles is the per-shard cycle budget from the campaign record.
	ShardCycles uint64
	// DB holds the deterministic series: multi-worker streams merged on
	// the logical-cycle axis, sorted by timestamp, duplicates (from
	// crash/resume replay) collapsed.
	DB *obs.TSDB
	// Spans is the canonical stitched span set, sorted and deduplicated.
	Spans []Span
	// Shards and Workers are the ops-plane lifecycle folds, sorted.
	Shards  []ShardStatus
	Workers []Worker
	// Ops holds collector-computed operational series (shard wall
	// durations); EvalOps adds the straggler/stall/requeue series.
	Ops *obs.TSDB
	// Counters is the summed ops-plane fleet counter deltas.
	Counters map[string]uint64
	// Truncated counts crash-torn tail lines dropped across streams.
	Truncated int

	// lifecycle retains shard events in global wall order for the
	// requeue-rate series.
	lifecycle []Record
}

// Collect reads every telemetry stream in dir (live or post-hoc) and
// folds them into one Collection. Streams may end in a torn line (a
// SIGKILL'd worker); anything worse is ErrCorruptStream.
func Collect(dir string) (*Collection, error) {
	paths, err := filepath.Glob(filepath.Join(dir, StreamPrefix+"*"+StreamSuffix))
	if err != nil {
		return nil, err
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("telem: no %s*%s streams in %s", StreamPrefix, StreamSuffix, dir)
	}
	sort.Strings(paths)
	c := &Collection{
		DB:       obs.NewTSDB(0),
		Ops:      obs.NewTSDB(0),
		Counters: make(map[string]uint64),
	}
	type pointKey struct {
		series string
		t      uint64
	}
	points := make(map[pointKey]float64)
	spanSet := make(map[Span]bool)
	openSpans := make(map[Span]bool) // begin seen, end pending
	shards := make(map[string]*ShardStatus)
	var order []Record // lifecycle events, folded in global wall order
	var beats []Record // heartbeats, applied after the lifecycle fold

	for _, path := range paths {
		w, recs, truncated, err := readStream(path)
		if err != nil {
			return nil, err
		}
		c.Truncated += truncated
		worker := Worker{Name: w.Worker}
		// An empty fingerprint (a standalone auditd stream) joins any
		// sweep; two different non-empty fingerprints never mix.
		if w.Fingerprint != "" {
			if c.Fingerprint == "" {
				c.Fingerprint = w.Fingerprint
			} else if w.Fingerprint != c.Fingerprint {
				return nil, fmt.Errorf("%w: %.12s… vs %.12s… (stream %s)",
					ErrFingerprintMismatch, c.Fingerprint, w.Fingerprint, filepath.Base(path))
			}
		}
		for _, r := range recs {
			worker.Records++
			if r.Wall > worker.LastWall {
				worker.LastWall = r.Wall
			}
			switch r.Kind {
			case KindCampaign:
				c.TotalShards = r.Shards
				c.PoolWorkers = r.Workers
				c.ShardCycles = r.T
			case KindPoint:
				// Last write wins; replayed duplicates carry identical
				// values, so the choice is moot for deterministic data.
				points[pointKey{r.Series, r.T}] = r.V
			case KindSpanBegin:
				openSpans[Span{Shard: r.Shard, Name: r.Name, Start: r.Start}] = true
			case KindSpanEnd:
				sp := Span{Shard: r.Shard, Name: r.Name, Start: r.Start, End: r.End}
				spanSet[sp] = true
				delete(openSpans, Span{Shard: r.Shard, Name: r.Name, Start: r.Start})
			case KindShard:
				r.Worker = w.Worker
				order = append(order, r)
			case KindHeartbeat:
				beats = append(beats, r)
			case KindMetrics:
				for name, v := range r.Counters {
					c.Counters[name] += v
				}
			}
		}
		c.Workers = append(c.Workers, worker)
	}
	sort.Slice(c.Workers, func(i, j int) bool { return c.Workers[i].Name < c.Workers[j].Name })

	// Fold the deterministic points: global (series, t) order, one point
	// per timestamp. obs.TSDB.Append preserves insertion order verbatim
	// (see its contract), so the collector owns sorting and dedup here.
	keys := make([]pointKey, 0, len(points))
	for k := range points {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].series != keys[j].series {
			return keys[i].series < keys[j].series
		}
		return keys[i].t < keys[j].t
	})
	for _, k := range keys {
		c.DB.Append(k.series, k.t, points[k])
	}
	c.appendRollups()

	// Canonical span set: completed spans only (a dangling begin is a
	// crashed attempt, which the resumed run re-emits in full), sorted.
	for sp := range spanSet {
		c.Spans = append(c.Spans, sp)
	}
	sort.Slice(c.Spans, func(i, j int) bool {
		a, b := c.Spans[i], c.Spans[j]
		if a.Shard != b.Shard {
			return a.Shard < b.Shard
		}
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.End != b.End {
			return a.End < b.End
		}
		return a.Name < b.Name
	})

	// Ops folds. Lifecycle events are applied in global wall order, not
	// stream order: after a kill+resume a shard can migrate between
	// workers, and the dead worker's stale claim must not outvote the
	// resuming worker's done just because its stream sorts later. The
	// stable sort keeps per-stream order for equal stamps.
	sort.SliceStable(order, func(i, j int) bool { return order[i].Wall < order[j].Wall })
	c.lifecycle = order
	for _, r := range order {
		st := shards[r.Shard]
		if st == nil {
			st = &ShardStatus{Name: r.Shard}
			shards[r.Shard] = st
		}
		applyLifecycle(st, r)
	}
	for _, r := range beats {
		if st := shards[r.Shard]; st != nil && r.T > st.Cycle {
			st.Cycle = r.T
		}
	}
	runningBy := make(map[string]map[string]bool)
	for _, st := range shards {
		if st.State == "claim" && st.Worker != "" {
			m := runningBy[st.Worker]
			if m == nil {
				m = make(map[string]bool)
				runningBy[st.Worker] = m
			}
			m[st.Name] = true
		}
	}
	for i := range c.Workers {
		c.Workers[i].Running = sortedKeys(runningBy[c.Workers[i].Name])
	}
	for _, st := range shards {
		c.Shards = append(c.Shards, *st)
	}
	sort.Slice(c.Shards, func(i, j int) bool { return c.Shards[i].Name < c.Shards[j].Name })
	n := uint64(0)
	for _, st := range c.Shards {
		if st.State == "done" && st.EndWall >= st.ClaimWall && st.ClaimWall > 0 {
			c.Ops.Append("shard_wall_ms/"+st.Name, n, float64(st.EndWall-st.ClaimWall))
			n++
		}
	}
	return c, nil
}

// applyLifecycle folds one shard event into its status.
func applyLifecycle(st *ShardStatus, r Record) {
	switch r.Event {
	case EventClaim:
		st.State = "claim"
		st.Worker = r.Worker
		st.ClaimWall = r.Wall
		st.EndWall = 0
		if r.T > 0 {
			st.Target = r.T
		}
		if r.Owner != "" {
			st.Owner = r.Owner
			st.Epoch = r.Epoch
		}
	case EventSteal:
		st.Steals++
		st.State = "claim"
		st.Worker = r.Worker
		st.ClaimWall = r.Wall
		st.EndWall = 0
		st.Owner = r.Owner
		st.Epoch = r.Epoch
	case EventFenced:
		st.Fenced++
	case EventRetry:
		st.Retries++
		st.Cause = r.Cause
	case EventRequeue:
		st.Requeues++
		if st.State == "claim" {
			st.State = ""
			st.Worker = ""
		}
	case EventDone:
		st.State = "done"
		st.Worker = r.Worker
		st.EndWall = r.Wall
		if r.T > st.Cycle {
			st.Cycle = r.T
		}
	case EventFailed:
		st.State = "failed"
		st.Worker = r.Worker
		st.Cause = r.Cause
		st.EndWall = r.Wall
	}
}

// appendRollups computes fleet-level deterministic series from the
// merged per-shard ones: leak_rate/<scheme> is the mean of the final
// leak/<scheme>/<shard> indicators, the series the fleet-level
// leak-budget-burn rule watches.
func (c *Collection) appendRollups() {
	type agg struct {
		sum  float64
		n    int
		maxT uint64
	}
	schemes := make(map[string]*agg)
	for _, name := range c.DB.Names() {
		rest, ok := strings.CutPrefix(name, "leak/")
		if !ok {
			continue
		}
		scheme, _, ok := strings.Cut(rest, "/")
		if !ok {
			continue
		}
		p, ok := c.DB.Last(name)
		if !ok {
			continue
		}
		a := schemes[scheme]
		if a == nil {
			a = &agg{}
			schemes[scheme] = a
		}
		a.sum += p.V
		a.n++
		if p.T > a.maxT {
			a.maxT = p.T
		}
	}
	for _, scheme := range sortedAggKeys(schemes) {
		a := schemes[scheme]
		c.DB.Append("leak_rate/"+scheme, a.maxT, a.sum/float64(a.n))
	}
}

func sortedAggKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedKeys(m map[string]bool) []string {
	if len(m) == 0 {
		return nil
	}
	return sortedAggKeys(m)
}

// streamHello is the identifying first record of a stream.
type streamHello struct {
	Worker      string
	Fingerprint string
}

// readStream parses one stream file: its hello, its valid records, and
// how many torn tail lines were dropped.
func readStream(path string) (streamHello, []Record, int, error) {
	f, err := os.Open(path)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return streamHello{}, nil, 0, err
		}
		return streamHello{}, nil, 0, err
	}
	defer f.Close()
	var hello streamHello
	var recs []Record
	truncated := 0
	br := bufio.NewReaderSize(f, 1<<16)
	lineNo := 0
	for {
		line, err := br.ReadBytes('\n')
		atEOF := errors.Is(err, io.EOF)
		if err != nil && !atEOF {
			return hello, nil, 0, err
		}
		if len(line) == 0 && atEOF {
			break
		}
		lineNo++
		torn := atEOF && !bytes.HasSuffix(line, []byte("\n"))
		payload, perr := ckpt.UnframeLine(line)
		if perr == nil {
			var r Record
			if r, perr = decode(payload); perr == nil {
				perr = r.Validate()
				if perr == nil {
					if r.Kind == KindHello {
						hello.Worker = r.Worker
						if r.Fingerprint != "" {
							hello.Fingerprint = r.Fingerprint
						}
					} else {
						recs = append(recs, r)
					}
				}
			}
		}
		if perr != nil {
			if torn {
				truncated++
				break
			}
			return hello, nil, 0, fmt.Errorf("%w: %s line %d: %v", ErrCorruptStream, filepath.Base(path), lineNo, perr)
		}
		if atEOF {
			break
		}
	}
	if hello.Worker == "" {
		return hello, nil, 0, fmt.Errorf("%w: %s has no hello record", ErrCorruptStream, filepath.Base(path))
	}
	return hello, recs, truncated, nil
}

// Counts returns the ops-plane shard state tallies. Pending is derived
// from the campaign record's total when one was seen.
func (c *Collection) Counts() (pending, running, done, failed int) {
	for _, st := range c.Shards {
		switch st.State {
		case "claim":
			running++
		case "done":
			done++
		case "failed":
			failed++
		default:
			pending++
		}
	}
	if c.TotalShards > len(c.Shards) {
		pending += c.TotalShards - len(c.Shards)
	}
	return
}
