package telem

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"dagguise/internal/ckpt"
	"dagguise/internal/obs"
)

// Emitter appends one worker's telemetry stream. Like every collector in
// internal/obs it is nil-no-op: all methods are safe on a nil receiver
// and cost one predictable branch, so call sites stay unconditional and
// the disabled overhead is pinned by a benchmark guard (~2 ns/site).
//
// Writes are crash-safe by construction: on open the emitter repairs a
// torn tail left by a previous SIGKILL (truncating the file back to its
// last valid framed line), every record is one framed line appended with
// a single write, and Sync fsyncs the file. The fleet pool syncs the
// stream before it cuts a shard checkpoint, so any chunk the resumed
// shard will skip is already durable in some stream — the invariant
// that keeps the collector's report byte-identical across crashes.
type Emitter struct {
	mu     sync.Mutex
	f      *os.File
	bw     *bufio.Writer
	worker string
	// now is the wall clock, injectable for tests. Only ops-plane
	// records ever read it.
	now func() int64
}

// OpenEmitter opens (creating or repairing) the stream for worker inside
// dir and writes a hello record carrying the sweep fingerprint.
func OpenEmitter(dir, worker, fingerprint string) (*Emitter, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("telem: %w", err)
	}
	path := filepath.Join(dir, StreamName(worker))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("telem: %w", err)
	}
	if err := repairTail(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("telem: repair %s: %w", path, err)
	}
	e := &Emitter{
		f:      f,
		bw:     bufio.NewWriter(f),
		worker: worker,
		now:    func() int64 { return time.Now().UnixMilli() },
	}
	if err := e.emit(Record{Kind: KindHello, Version: Version, Worker: worker, Fingerprint: fingerprint, Wall: e.now()}); err != nil {
		f.Close()
		return nil, err
	}
	return e, nil
}

// SetClock overrides the wall clock used to stamp ops-plane records
// (tests inject a deterministic clock). No-op on nil.
func (e *Emitter) SetClock(now func() int64) {
	if e == nil || now == nil {
		return
	}
	e.mu.Lock()
	e.now = now
	e.mu.Unlock()
}

// repairTail truncates f back to the end of its last valid framed line,
// discarding a tail torn by a crash mid-append. Valid lines before the
// torn tail are never touched; a corrupt line followed by more valid
// lines is real corruption and refuses the stream.
func repairTail(f *os.File) error {
	data, err := io.ReadAll(f)
	if err != nil {
		return err
	}
	valid := int64(0)
	off := 0
	for off < len(data) {
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			break // unterminated tail: torn
		}
		line := data[off : off+nl+1]
		if _, err := ckpt.UnframeLine(line); err != nil {
			// A broken line is only tolerable as the very tail.
			if rest := data[off+nl+1:]; bytes.ContainsAny(rest, "\n") {
				return fmt.Errorf("telem: corrupt line mid-stream at byte %d: %w", off, err)
			}
			break
		}
		off += nl + 1
		valid = int64(off)
	}
	if valid != int64(len(data)) {
		if err := f.Truncate(valid); err != nil {
			return err
		}
	}
	_, err = f.Seek(valid, io.SeekStart)
	return err
}

// emit frames and appends one record.
func (e *Emitter) emit(r Record) error {
	payload, err := r.encode()
	if err != nil {
		return err
	}
	line, err := ckpt.FrameLine(payload)
	if err != nil {
		return err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.bw == nil {
		return fmt.Errorf("telem: emitter closed")
	}
	_, err = e.bw.Write(line)
	return err
}

// Campaign records the campaign shape (ops plane). No-op on nil.
func (e *Emitter) Campaign(shards, workers int, cycles uint64) {
	if e == nil {
		return
	}
	_ = e.emit(Record{Kind: KindCampaign, Shards: shards, Workers: workers, T: cycles, Wall: e.wall()})
}

// Shard records a shard lifecycle event (ops plane): claim, retry,
// requeue, done, failed. t is the shard's cycle budget on claim and its
// final cycle on done. No-op on nil.
func (e *Emitter) Shard(shard, event, cause string, t uint64) {
	if e == nil {
		return
	}
	_ = e.emit(Record{Kind: KindShard, Shard: shard, Event: event, Cause: cause, T: t, Wall: e.wall()})
}

// Lease records a shard lease transition (ops plane): a claim with its
// owner identity and fencing epoch, a steal of an expired lease, or a
// fenced zombie commit. t is the shard's cycle budget on claim, 0
// otherwise. No-op on nil.
func (e *Emitter) Lease(shard, event, owner string, epoch uint64, t uint64) {
	if e == nil {
		return
	}
	_ = e.emit(Record{Kind: KindShard, Shard: shard, Event: event, Owner: owner, Epoch: epoch, T: t, Wall: e.wall()})
}

// Heartbeat records worker liveness while working shard at cycle t (ops
// plane). No-op on nil.
func (e *Emitter) Heartbeat(shard string, t uint64) {
	if e == nil {
		return
	}
	_ = e.emit(Record{Kind: KindHeartbeat, Shard: shard, T: t, Wall: e.wall()})
}

// Point records one deterministic metric sample on the logical-cycle
// axis. Never wall-stamped. No-op on nil.
func (e *Emitter) Point(series string, t uint64, v float64) {
	if e == nil {
		return
	}
	_ = e.emit(Record{Kind: KindPoint, Series: series, T: t, V: v})
}

// SpanBegin opens a deterministic span named name on shard's lane at
// logical cycle start. No-op on nil.
func (e *Emitter) SpanBegin(shard, name string, start uint64) {
	if e == nil {
		return
	}
	_ = e.emit(Record{Kind: KindSpanBegin, Shard: shard, Name: name, Start: start})
}

// SpanEnd closes the span (identified by its shard, name and start) at
// logical cycle end. No-op on nil.
func (e *Emitter) SpanEnd(shard, name string, start, end uint64) {
	if e == nil {
		return
	}
	_ = e.emit(Record{Kind: KindSpanEnd, Shard: shard, Name: name, Start: start, End: end})
}

// Metrics records an ops-plane fleet counter delta: the nonzero
// all-domain totals of snap minus prev (prev may be nil). No-op on nil.
func (e *Emitter) Metrics(snap, prev *obs.Snapshot) {
	if e == nil || snap == nil {
		return
	}
	delta := snap.Sub(prev)
	counters := make(map[string]uint64)
	for c := obs.Counter(0); int(c) < obs.NumCounters; c++ {
		if v := delta.CounterTotal(c); v > 0 {
			counters[c.String()] = v
		}
	}
	if len(counters) == 0 {
		return
	}
	_ = e.emit(Record{Kind: KindMetrics, Counters: counters, Wall: e.wall()})
}

// wall reads the injected clock under the lock.
func (e *Emitter) wall() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.now()
}

// Sync flushes buffered records and fsyncs the stream file. The fleet
// pool calls it before each shard checkpoint and on every lifecycle
// event, so the durable stream is never behind the durable manifest.
// No-op on nil.
func (e *Emitter) Sync() error {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.bw == nil {
		return nil
	}
	if err := e.bw.Flush(); err != nil {
		return err
	}
	return e.f.Sync()
}

// Close flushes, fsyncs and closes the stream. No-op on nil.
func (e *Emitter) Close() error {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.bw == nil {
		return nil
	}
	flushErr := e.bw.Flush()
	syncErr := e.f.Sync()
	closeErr := e.f.Close()
	e.bw = nil
	if flushErr != nil {
		return flushErr
	}
	if syncErr != nil {
		return syncErr
	}
	return closeErr
}
