// Package telem is the fleet telemetry plane: durable per-worker NDJSON
// telemetry streams, a collector that folds every stream into one
// campaign-wide time-series store and alert engine, cross-worker span
// stitching into a single Perfetto trace, and a deterministic report.
//
// Two planes share the stream format but never mix:
//
//   - The deterministic plane (metric points on the shard's logical-cycle
//     axis, span begin/end records, leak indicators) is a pure function
//     of the sweep: the collector's Report is byte-identical whether the
//     campaign ran on one worker, on K workers, or on K workers that were
//     SIGKILL'd mid-stream and resumed.
//
//   - The ops plane (shard lifecycle events, heartbeats, fleet metric
//     deltas — everything stamped with wall-clock time) drives the live
//     console (`dagtop`), the straggler/worker-stall/requeue-rate rules
//     and the ETA, and is deliberately excluded from the report.
//
// Streams are crash-safe: every line is framed with ckpt.FrameLine
// (magic + truncated SHA-256), writers repair a torn tail before
// appending, and readers tolerate a truncated final line — the exact
// discipline binary checkpoints get from ckpt.Unframe.
package telem

import (
	"encoding/json"
	"fmt"
	"strings"
)

// Version is the telemetry stream format version, carried by every
// stream's hello record.
const Version = 1

// Kind classifies one telemetry record. Short tags keep the NDJSON
// lines compact; the constants are the API.
type Kind string

const (
	// KindHello opens every stream: format version, worker name and the
	// sweep fingerprint the stream belongs to.
	KindHello Kind = "hello"
	// KindCampaign describes the campaign shape (total shards, worker
	// pool size, cycles per shard); emitted by the fleet driver.
	KindCampaign Kind = "campaign"
	// KindShard is a shard lifecycle event (ops plane): claim, retry,
	// requeue, done, failed — with the failure cause where there is one.
	KindShard Kind = "shard"
	// KindHeartbeat is a liveness beacon (ops plane): the worker was
	// alive at Wall, working shard Shard at logical cycle T.
	KindHeartbeat Kind = "hb"
	// KindPoint is a deterministic metric sample: series Series holds
	// value V at logical cycle T. Never wall-stamped.
	KindPoint Kind = "pt"
	// KindSpanBegin / KindSpanEnd bracket a deterministic span on the
	// shard's logical-cycle axis.
	KindSpanBegin Kind = "sb"
	KindSpanEnd   Kind = "se"
	// KindMetrics is an ops-plane fleet counter delta (obs.Snapshot
	// condensed to nonzero named totals).
	KindMetrics Kind = "mx"
)

// Event names for KindShard records.
const (
	EventClaim   = "claim"
	EventRetry   = "retry"
	EventRequeue = "requeue"
	EventDone    = "done"
	EventFailed  = "failed"
	// EventSteal records an expired lease evicted by a new owner; Owner
	// and Epoch carry the thief's identity and fencing generation.
	EventSteal = "steal"
	// EventFenced records a zombie worker's commit or renewal refused by
	// the fencing epoch; Owner and Epoch carry the fenced identity.
	EventFenced = "fenced"
)

// Record is one telemetry stream line. Fields are pooled across kinds
// (omitempty keeps lines tight); Wall is only ever set on ops-plane
// records, so deterministic records are byte-stable on replay.
type Record struct {
	Kind Kind `json:"k"`
	// Hello fields.
	Version     int    `json:"ver,omitempty"`
	Worker      string `json:"worker,omitempty"`
	Fingerprint string `json:"fp,omitempty"`
	// Campaign fields.
	Shards  int `json:"shards,omitempty"`
	Workers int `json:"workers,omitempty"`
	// Shard lifecycle / heartbeat / span / point fields.
	Shard string `json:"shard,omitempty"`
	Event string `json:"event,omitempty"`
	Cause string `json:"cause,omitempty"`
	// Owner and Epoch carry the lease identity on claim/steal/fenced
	// events (ops plane).
	Owner  string  `json:"owner,omitempty"`
	Epoch  uint64  `json:"epoch,omitempty"`
	Series string  `json:"series,omitempty"`
	Name   string  `json:"name,omitempty"`
	T      uint64  `json:"t,omitempty"`
	V      float64 `json:"v,omitempty"`
	Start  uint64  `json:"start,omitempty"`
	End    uint64  `json:"end,omitempty"`
	// Wall is unix milliseconds; ops-plane records only.
	Wall int64 `json:"wall,omitempty"`
	// Counters is the condensed metric delta of a KindMetrics record.
	Counters map[string]uint64 `json:"counters,omitempty"`
}

// Validate rejects records that would corrupt a collection.
func (r *Record) Validate() error {
	switch r.Kind {
	case KindHello:
		if r.Version != Version {
			return fmt.Errorf("telem: stream is v%d, this build reads v%d", r.Version, Version)
		}
		if r.Worker == "" {
			return fmt.Errorf("telem: hello without a worker name")
		}
	case KindCampaign, KindShard, KindHeartbeat, KindPoint, KindSpanBegin, KindSpanEnd, KindMetrics:
	default:
		return fmt.Errorf("telem: unknown record kind %q", r.Kind)
	}
	return nil
}

// encode renders the record as its canonical JSON payload (no newline).
func (r *Record) encode() ([]byte, error) {
	return json.Marshal(r)
}

// decode parses one record payload.
func decode(payload []byte) (Record, error) {
	var r Record
	if err := json.Unmarshal(payload, &r); err != nil {
		return Record{}, fmt.Errorf("telem: bad record: %w", err)
	}
	return r, nil
}

// StreamPrefix and StreamSuffix bracket the per-worker stream file
// names: StreamPrefix + worker + StreamSuffix.
const (
	StreamPrefix = "telem-worker-"
	StreamSuffix = ".ndjson"
)

// StreamName returns the stream file name for a worker.
func StreamName(worker string) string {
	return StreamPrefix + sanitizeWorker(worker) + StreamSuffix
}

// sanitizeWorker keeps worker names filesystem-safe.
func sanitizeWorker(w string) string {
	if w == "" {
		return "anon"
	}
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_', r == '.':
			return r
		default:
			return '_'
		}
	}, w)
}
