package telem

import (
	"testing"
)

// BenchmarkDisabledEmitter pins the cost of telemetry call sites when
// telemetry is off: five nil-receiver method calls per iteration (one
// heartbeat, one point, one span pair, one lifecycle event — the mix a
// fleet chunk emits). The CI bench guard asserts the whole bundle stays
// within ~2 ns per site, so leaving the call sites unconditional in the
// hot shard loop is free.
func BenchmarkDisabledEmitter(b *testing.B) {
	var e *Emitter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Heartbeat("shard", uint64(i))
		e.Point("completed/shard", uint64(i), 1)
		e.SpanBegin("shard", "chunk", uint64(i))
		e.SpanEnd("shard", "chunk", uint64(i), uint64(i)+1)
		e.Shard("shard", EventClaim, "", 0)
	}
}

// BenchmarkCollect measures collector throughput folding a realistic
// multi-worker directory: 4 workers x 32 shards x 16 chunks of points,
// spans and lifecycle records.
func BenchmarkCollect(b *testing.B) {
	dir := b.TempDir()
	for w := 0; w < 4; w++ {
		e, err := OpenEmitter(dir, string(rune('0'+w)), "bench-fp")
		if err != nil {
			b.Fatal(err)
		}
		e.SetClock(fixedBenchClock(int64(w) * 1000))
		for s := 0; s < 32; s++ {
			if s%4 != w {
				continue
			}
			name := shardName(s)
			e.Shard(name, EventClaim, "", 16_000)
			for c := uint64(0); c < 16; c++ {
				lo, hi := c*1000, (c+1)*1000
				e.Heartbeat(name, hi)
				e.SpanBegin(name, "chunk", lo)
				e.SpanEnd(name, "chunk", lo, hi)
				e.Point("completed/"+name, hi, float64(hi/2))
				e.Point("issued/"+name, hi, float64(hi))
				e.Point("stalls/"+name, hi, float64(hi/8))
			}
			e.Point("leak/insecure/"+name, 16_000, float64(s%2))
			e.Shard(name, EventDone, "", 16_000)
		}
		if err := e.Close(); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := Collect(dir)
		if err != nil {
			b.Fatal(err)
		}
		if len(c.Shards) != 32 {
			b.Fatalf("folded %d shards", len(c.Shards))
		}
	}
}

func fixedBenchClock(base int64) func() int64 {
	t := base
	return func() int64 {
		t++
		return t
	}
}

func shardName(i int) string {
	return "shard-" + string(rune('a'+i/10)) + string(rune('0'+i%10))
}
