package fault

import (
	"reflect"
	"testing"

	"dagguise/internal/mem"
)

func TestCampaignDeterministic(t *testing.T) {
	cfg := CampaignConfig{Horizon: 100_000, Domains: []mem.Domain{1, 3}}
	a := Campaign(42, cfg)
	b := Campaign(42, cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different schedules")
	}
	c := Campaign(43, cfg)
	if reflect.DeepEqual(a.Events, c.Events) {
		t.Fatal("different seeds produced identical schedules")
	}
	if err := a.Validate(); err != nil {
		t.Fatalf("campaign schedule invalid: %v", err)
	}
}

func TestEventWindowQueries(t *testing.T) {
	in := MustInjector(Schedule{Events: []Event{
		{Kind: EgressStall, Domain: 2, Start: 100, Duration: 50},
		{Kind: ShaperBackpressure, Domain: AllDomains, Start: 10, Duration: 5},
	}})
	if in.EgressStalled(2, 99) || in.EgressStalled(2, 150) {
		t.Fatal("window boundaries wrong: [100,150) expected")
	}
	if !in.EgressStalled(2, 100) || !in.EgressStalled(2, 149) {
		t.Fatal("window interior not active")
	}
	if in.EgressStalled(1, 120) {
		t.Fatal("domain-scoped fault leaked to another domain")
	}
	if !in.ShaperRejects(1, 12) || !in.ShaperRejects(7, 12) {
		t.Fatal("AllDomains fault must hit every domain")
	}
}

func TestDeferResponseDelayAndDrop(t *testing.T) {
	in := MustInjector(Schedule{Events: []Event{
		{Kind: RespDelay, Domain: 1, Start: 0, Duration: 100, Delay: 30},
		{Kind: RespDrop, Domain: 1, Start: 50, Duration: 10, Delay: 20},
	}})
	at, ok := in.DeferResponse(1, 10)
	if !ok || at != 40 {
		t.Fatalf("delay window: got (%d,%v), want (40,true)", at, ok)
	}
	// In the overlap the latest redelivery wins: the delay window yields
	// 55+30=85, the drop window 60+20=80.
	at, ok = in.DeferResponse(1, 55)
	if !ok || at != 85 {
		t.Fatalf("overlap: got (%d,%v), want (85,true)", at, ok)
	}
	if _, ok := in.DeferResponse(2, 55); ok {
		t.Fatal("other domain must be unaffected")
	}
	if _, ok := in.DeferResponse(1, 200); ok {
		t.Fatal("outside all windows must be unaffected")
	}
}

func TestDeferResponseAlwaysFuture(t *testing.T) {
	// A drop whose window end is in the past relative to a late query must
	// still redeliver strictly in the future.
	in := MustInjector(Schedule{Events: []Event{
		{Kind: RespDrop, Domain: AllDomains, Start: 0, Duration: Forever, Delay: 0},
	}})
	at, ok := in.DeferResponse(1, 123)
	if !ok || at <= 123 {
		t.Fatalf("redelivery must be strictly future, got (%d,%v)", at, ok)
	}
}

func TestValidateRejectsBadEvents(t *testing.T) {
	cases := []Schedule{
		{Events: []Event{{Kind: Kind(99), Duration: 1}}},
		{Events: []Event{{Kind: DRAMStall, Duration: 0}}},
		{Events: []Event{{Kind: RespDelay, Duration: 5, Delay: 0}}},
	}
	for i, s := range cases {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: invalid schedule accepted", i)
		}
	}
	if _, err := NewInjector(cases[0]); err == nil {
		t.Error("NewInjector accepted invalid schedule")
	}
}

func TestEventEndSaturates(t *testing.T) {
	e := Event{Kind: DRAMStall, Start: Forever - 10, Duration: Forever}
	if e.End() != Forever {
		t.Fatalf("End() = %d, want saturation at Forever", e.End())
	}
	if e.active(1, Forever) {
		t.Fatal("cycle Forever must be outside every window")
	}
}
