// Storage fault injection for the fleet's durable artifacts. Where the
// core of this package perturbs the simulated memory system and client.go
// perturbs the audit transport, an FSSchedule perturbs the filesystem the
// fleet coordinates through: torn writes that leave a partial file at the
// target path, injected EIO, stalled renames and delayed fsyncs. The same
// two properties carry over: schedules are pure functions of their seed
// (a storage-chaos failure replays exactly), and injection decisions are
// keyed on the durable-write operation index only — never on path names
// or payload contents — so the fault sequence a fleet process experiences
// is independent of what it happens to be writing.
package fault

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"dagguise/internal/rng"
)

// ErrInjectedIO is the error an injected write fault surfaces. Callers
// retry it with runner.BackoffDelay; it never reaches a report.
var ErrInjectedIO = errors.New("fault: injected storage error")

// FSKind enumerates the storage fault classes.
type FSKind int

const (
	// FSTornWrite leaves a truncated copy of the payload at the target
	// path (a non-atomic writer died mid-write) and fails the operation;
	// the reader side must quarantine the torn artifact.
	FSTornWrite FSKind = iota
	// FSWriteEIO fails the operation with ErrInjectedIO and no side
	// effect (a transient device error).
	FSWriteEIO
	// FSRenameStall delays the operation DelayMs milliseconds before the
	// rename commits (a congested or remounting filesystem).
	FSRenameStall
	// FSFsyncDelay delays the operation DelayMs milliseconds at fsync
	// time (a saturated write-back cache).
	FSFsyncDelay
)

var fsKindNames = map[FSKind]string{
	FSTornWrite:   "torn-write",
	FSWriteEIO:    "write-eio",
	FSRenameStall: "rename-stall",
	FSFsyncDelay:  "fsync-delay",
}

// String names the storage fault kind.
func (k FSKind) String() string {
	if n, ok := fsKindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("fs-fault(%d)", int(k))
}

// FSEvent is one storage fault, bound to the Op-th durable-write
// operation of a process. DelayMs is the stall length for the delay
// kinds, unused otherwise.
type FSEvent struct {
	Kind    FSKind `json:"kind"`
	Op      int    `json:"op"`
	DelayMs int    `json:"delay_ms,omitempty"`
}

// FSSchedule is a reproducible set of storage faults. As with Schedule,
// the seed rides along for reporting only.
type FSSchedule struct {
	Seed   int64     `json:"seed"`
	Events []FSEvent `json:"events"`
}

// Validate rejects malformed storage schedules.
func (s FSSchedule) Validate() error {
	for i, e := range s.Events {
		if _, ok := fsKindNames[e.Kind]; !ok {
			return fmt.Errorf("fault: fs event %d has unknown kind %d", i, int(e.Kind))
		}
		if e.Op < 0 {
			return fmt.Errorf("fault: fs event %d (%s) targets negative op %d", i, e.Kind, e.Op)
		}
		if (e.Kind == FSRenameStall || e.Kind == FSFsyncDelay) && e.DelayMs < 1 {
			return fmt.Errorf("fault: fs event %d (%s) needs delay >= 1ms", i, e.Kind)
		}
	}
	return nil
}

// FSInjector hands out the faults for a process's durable-write
// operations in sequence. Unlike Injector it is stateful — it counts
// operations — so it is per-process, never shared; the mutex makes the
// counter safe for the pool's concurrent workers.
type FSInjector struct {
	mu   sync.Mutex
	next int
	byOp map[int][]FSEvent
}

// NewFSInjector validates the schedule and builds an injector over it.
func NewFSInjector(s FSSchedule) (*FSInjector, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	in := &FSInjector{byOp: make(map[int][]FSEvent)}
	for _, e := range s.Events {
		in.byOp[e.Op] = append(in.byOp[e.Op], e)
	}
	for op := range in.byOp {
		evs := in.byOp[op]
		sort.SliceStable(evs, func(i, j int) bool { return evs[i].Kind < evs[j].Kind })
	}
	return in, nil
}

// NextOp advances the operation counter and returns the faults scheduled
// for that operation (nil receiver and fault-free ops both return nil).
func (in *FSInjector) NextOp() []FSEvent {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	op := in.next
	in.next++
	return in.byOp[op]
}

// FSCampaign draws a randomized but fully seed-determined storage fault
// schedule over a process expected to perform about ops durable writes:
// calling it twice with equal arguments yields identical schedules.
func FSCampaign(seed int64, ops, events int) FSSchedule {
	rnd := rng.New(seed)
	if events <= 0 {
		events = 8
	}
	if ops < 1 {
		ops = 1
	}
	sched := FSSchedule{Seed: seed}
	for i := 0; i < events; i++ {
		e := FSEvent{Op: rnd.Intn(ops)}
		switch FSKind(rnd.Intn(4)) {
		case FSTornWrite:
			e.Kind = FSTornWrite
		case FSWriteEIO:
			e.Kind = FSWriteEIO
		case FSRenameStall:
			e.Kind = FSRenameStall
			e.DelayMs = 1 + rnd.Intn(20)
		default:
			e.Kind = FSFsyncDelay
			e.DelayMs = 1 + rnd.Intn(20)
		}
		sched.Events = append(sched.Events, e)
	}
	return sched
}
