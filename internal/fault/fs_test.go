package fault

import (
	"reflect"
	"testing"
)

func TestFSCampaignIsSeedDeterministic(t *testing.T) {
	a := FSCampaign(42, 100, 12)
	b := FSCampaign(42, 100, 12)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("equal seeds produced different storage schedules")
	}
	c := FSCampaign(43, 100, 12)
	if reflect.DeepEqual(a.Events, c.Events) {
		t.Fatal("different seeds produced identical storage schedules")
	}
	if err := a.Validate(); err != nil {
		t.Fatalf("campaign schedule fails its own validation: %v", err)
	}
	if len(a.Events) != 12 {
		t.Fatalf("got %d events, want 12", len(a.Events))
	}
	for i, e := range a.Events {
		if e.Op < 0 || e.Op >= 100 {
			t.Fatalf("event %d targets op %d outside [0,100)", i, e.Op)
		}
	}
}

func TestFSScheduleValidate(t *testing.T) {
	bad := []FSSchedule{
		{Events: []FSEvent{{Kind: FSKind(99), Op: 0}}},
		{Events: []FSEvent{{Kind: FSWriteEIO, Op: -1}}},
		{Events: []FSEvent{{Kind: FSRenameStall, Op: 0}}}, // delay kinds need DelayMs
		{Events: []FSEvent{{Kind: FSFsyncDelay, Op: 0, DelayMs: 0}}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Fatalf("schedule %d validated but is malformed", i)
		}
	}
	good := FSSchedule{Events: []FSEvent{
		{Kind: FSTornWrite, Op: 0},
		{Kind: FSWriteEIO, Op: 3},
		{Kind: FSRenameStall, Op: 5, DelayMs: 2},
	}}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFSInjectorSequencesByOpIndex(t *testing.T) {
	in, err := NewFSInjector(FSSchedule{Events: []FSEvent{
		{Kind: FSWriteEIO, Op: 1},
		{Kind: FSTornWrite, Op: 3},
		{Kind: FSWriteEIO, Op: 3},
	}})
	if err != nil {
		t.Fatal(err)
	}
	var got [][]FSEvent
	for op := 0; op < 5; op++ {
		got = append(got, in.NextOp())
	}
	if got[0] != nil || got[2] != nil || got[4] != nil {
		t.Fatal("fault-free ops returned events")
	}
	if len(got[1]) != 1 || got[1][0].Kind != FSWriteEIO {
		t.Fatalf("op 1: %+v, want one write-eio", got[1])
	}
	// Two faults on one op come back kind-sorted (torn-write < write-eio).
	if len(got[3]) != 2 || got[3][0].Kind != FSTornWrite || got[3][1].Kind != FSWriteEIO {
		t.Fatalf("op 3: %+v, want torn-write then write-eio", got[3])
	}
}

func TestFSInjectorNilIsNoOp(t *testing.T) {
	var in *FSInjector
	if evs := in.NextOp(); evs != nil {
		t.Fatal("nil injector returned events")
	}
}

func TestNewFSInjectorRejectsMalformed(t *testing.T) {
	_, err := NewFSInjector(FSSchedule{Events: []FSEvent{{Kind: FSRenameStall, Op: 0}}})
	if err == nil {
		t.Fatal("malformed schedule accepted")
	}
}
