package fault

import (
	"reflect"
	"testing"
)

func TestClientCampaignDeterministic(t *testing.T) {
	a := ClientCampaign(11, 20, 16)
	b := ClientCampaign(11, 20, 16)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("equal seeds produced different client schedules")
	}
	if err := a.Validate(); err != nil {
		t.Fatalf("campaign schedule invalid: %v", err)
	}
	c := ClientCampaign(12, 20, 16)
	if reflect.DeepEqual(a.Events, c.Events) {
		t.Fatal("different seeds produced identical client schedules")
	}
	for _, e := range a.Events {
		if e.Batch < 0 || e.Batch >= 20 {
			t.Fatalf("event targets batch %d outside the stream", e.Batch)
		}
	}
}

func TestClientScheduleForBatch(t *testing.T) {
	s := ClientSchedule{Events: []ClientEvent{
		{Kind: BurstStorm, Batch: 3, Magnitude: 2},
		{Kind: SlowClient, Batch: 3, Magnitude: 16},
		{Kind: MalformedPayload, Batch: 1},
	}}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	got := s.ForBatch(3)
	if len(got) != 2 || got[0].Kind != SlowClient || got[1].Kind != BurstStorm {
		t.Fatalf("ForBatch(3) = %v, want slow-client then burst-storm", got)
	}
	if len(s.ForBatch(0)) != 0 {
		t.Fatal("batch 0 should have no faults")
	}
}

func TestClientScheduleValidate(t *testing.T) {
	cases := []ClientSchedule{
		{Events: []ClientEvent{{Kind: ClientKind(99), Batch: 0}}},
		{Events: []ClientEvent{{Kind: SlowClient, Batch: 0}}},        // magnitude missing
		{Events: []ClientEvent{{Kind: BurstStorm, Batch: 0}}},        // magnitude missing
		{Events: []ClientEvent{{Kind: MalformedPayload, Batch: -1}}}, // negative batch
	}
	for i, s := range cases {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: invalid schedule accepted", i)
		}
	}
	if ClientKind(99).String() == "" || SlowClient.String() != "slow-client" {
		t.Fatal("kind names broken")
	}
}
