// Package fault is a deterministic, seeded fault-injection layer for the
// simulated memory system. A Schedule is a list of concrete fault Events —
// DRAM stall windows (refresh storms beyond nominal tREFI/tRFC), response
// delay or drop at the controller→core boundary with bounded redelivery,
// shaper private-queue backpressure bursts, and per-domain egress stalls —
// and an Injector answers point queries about them cycle by cycle.
//
// Two properties are load-bearing:
//
//   - Determinism: a Schedule is a pure function of its seed, so any
//     failure found by a randomized campaign replays exactly from the
//     reported seed.
//   - Secret independence: every injection decision is keyed on
//     (cycle, domain) only — never on request IDs, addresses or queue
//     contents, which may differ between runs with different victim
//     secrets. Two simulations that differ only in secret data therefore
//     experience bit-identical fault sequences, which is what lets the
//     non-interference-under-faults test extend the paper's security
//     argument from the nominal machine to the faulty one.
package fault

import (
	"fmt"
	"sort"

	"dagguise/internal/mem"
	"dagguise/internal/rng"
)

// Kind enumerates the concrete fault classes the injector can realise.
type Kind int

const (
	// DRAMStall is a device-level blackout window: a refresh storm during
	// which no DRAM command may start. Transactions committed inside the
	// window are pushed past its end, exactly like an (oversized) tRFC.
	DRAMStall Kind = iota
	// RespDelay adds Delay cycles to every response completing inside the
	// window on the controller→core boundary (bus jitter / ECC retry).
	RespDelay
	// RespDrop drops responses completing inside the window and
	// redelivers each once, Delay cycles after the window ends (a bounded
	// retry: the link recovers when the fault clears).
	RespDrop
	// ShaperBackpressure forces a protected domain's shaper private queue
	// to reject enqueues for the window, stalling the domain's core. The
	// shaped egress stream is unaffected: the shaper keeps following its
	// defense rDAG, substituting fakes for missing real requests.
	ShaperBackpressure
	// EgressStall blocks the shaper→controller egress path of a domain
	// for the window; emissions pile up in the per-domain egress queue.
	EgressStall
)

var kindNames = map[Kind]string{
	DRAMStall:          "dram-stall",
	RespDelay:          "resp-delay",
	RespDrop:           "resp-drop",
	ShaperBackpressure: "shaper-backpressure",
	EgressStall:        "egress-stall",
}

// String names the fault kind.
func (k Kind) String() string {
	if n, ok := kindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("fault(%d)", int(k))
}

// Forever is a duration that outlasts any realistic simulation horizon; use
// it to craft permanent faults (e.g. a DRAM device that never recovers) for
// watchdog tests. It is kept well below 2^64 so that window arithmetic and
// DRAM schedule computation cannot overflow.
const Forever uint64 = 1 << 60

// AllDomains matches every security domain (the zero value of mem.Domain
// is reserved for unattributed traffic and never labels a core).
const AllDomains mem.Domain = 0

// Event is one concrete fault: a kind, a half-open activity window
// [Start, Start+Duration), the domain it applies to (AllDomains for all),
// and a kind-specific Delay parameter.
type Event struct {
	Kind     Kind
	Domain   mem.Domain // AllDomains = every domain
	Start    uint64
	Duration uint64
	// Delay is the extra latency for RespDelay and the post-window retry
	// latency for RespDrop; unused otherwise.
	Delay uint64
}

// End returns the first cycle after the window, saturating at Forever.
func (e Event) End() uint64 {
	if e.Duration >= Forever || e.Start >= Forever-e.Duration {
		return Forever
	}
	return e.Start + e.Duration
}

// active reports whether the event covers cycle now for domain dom.
func (e Event) active(dom mem.Domain, now uint64) bool {
	if e.Domain != AllDomains && e.Domain != dom {
		return false
	}
	return now >= e.Start && now < e.End()
}

// String renders the event compactly.
func (e Event) String() string {
	dom := "all"
	if e.Domain != AllDomains {
		dom = fmt.Sprintf("%d", e.Domain)
	}
	return fmt.Sprintf("%s{dom=%s [%d,%d) delay=%d}", e.Kind, dom, e.Start, e.End(), e.Delay)
}

// Schedule is a reproducible set of fault events. The Seed is carried along
// purely for reporting: a campaign failure prints the seed, and rebuilding
// the schedule from it replays the identical fault sequence.
type Schedule struct {
	Seed   int64
	Events []Event
}

// Validate rejects malformed schedules.
func (s Schedule) Validate() error {
	for i, e := range s.Events {
		if _, ok := kindNames[e.Kind]; !ok {
			return fmt.Errorf("fault: event %d has unknown kind %d", i, int(e.Kind))
		}
		if e.Duration == 0 {
			return fmt.Errorf("fault: event %d (%s) has zero duration", i, e.Kind)
		}
		if e.Kind == RespDelay && e.Delay == 0 {
			return fmt.Errorf("fault: event %d (resp-delay) has zero delay", i)
		}
	}
	return nil
}

// Injector answers per-cycle fault queries for a validated schedule. All
// queries are pure functions of (kind, domain, cycle); the injector holds
// no mutable state, so one injector may serve concurrent simulations.
type Injector struct {
	byKind map[Kind][]Event
}

// NewInjector validates the schedule and builds an injector over it.
func NewInjector(s Schedule) (*Injector, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	in := &Injector{byKind: make(map[Kind][]Event)}
	for _, e := range s.Events {
		in.byKind[e.Kind] = append(in.byKind[e.Kind], e)
	}
	for k := range in.byKind {
		evs := in.byKind[k]
		sort.SliceStable(evs, func(i, j int) bool { return evs[i].Start < evs[j].Start })
	}
	return in, nil
}

// MustInjector panics on schedule error (for tests and fixed schedules).
func MustInjector(s Schedule) *Injector {
	in, err := NewInjector(s)
	if err != nil {
		panic(err)
	}
	return in
}

// StallWindows returns the DRAM blackout windows, for attachment to the
// device model.
func (in *Injector) StallWindows() []Event { return in.byKind[DRAMStall] }

// EgressStalled reports whether the domain's egress path is blocked at now.
func (in *Injector) EgressStalled(dom mem.Domain, now uint64) bool {
	return in.anyActive(EgressStall, dom, now)
}

// ShaperRejects reports whether the domain's shaper must refuse enqueues at
// now (private-queue backpressure burst).
func (in *Injector) ShaperRejects(dom mem.Domain, now uint64) bool {
	return in.anyActive(ShaperBackpressure, dom, now)
}

// DeferResponse reports whether a response for the domain completing at now
// must be withheld, and if so until which cycle it is redelivered. Delay
// and drop compose by taking the latest redelivery time, so overlapping
// windows remain deterministic. The redelivery cycle is always strictly
// after now and bounded: drops redeliver Delay cycles after their window
// ends, never silently losing the response.
func (in *Injector) DeferResponse(dom mem.Domain, now uint64) (uint64, bool) {
	var until uint64
	for _, e := range in.byKind[RespDelay] {
		if e.active(dom, now) && now+e.Delay > until {
			until = now + e.Delay
		}
	}
	for _, e := range in.byKind[RespDrop] {
		if e.active(dom, now) {
			at := e.End() + e.Delay
			if at <= now {
				at = now + 1
			}
			if at > until {
				until = at
			}
		}
	}
	return until, until > now
}

func (in *Injector) anyActive(k Kind, dom mem.Domain, now uint64) bool {
	for _, e := range in.byKind[k] {
		if e.active(dom, now) {
			return true
		}
	}
	return false
}

// CampaignConfig bounds the random fault campaign generator.
type CampaignConfig struct {
	// Horizon is the cycle span faults are placed in.
	Horizon uint64
	// Domains lists the protected domains eligible for domain-scoped
	// faults (shaper backpressure, egress stall). Delay/drop and DRAM
	// storms may also target AllDomains.
	Domains []mem.Domain
	// MaxStorm bounds a DRAM storm's duration; keep it below the
	// watchdog's stall budget or a healthy system will be flagged as
	// deadlocked. Zero selects Horizon/16.
	MaxStorm uint64
	// Events is the number of fault events to draw. Zero selects 12.
	Events int
}

// Campaign draws a randomized but fully seed-determined fault schedule:
// calling it twice with equal arguments yields identical schedules.
func Campaign(seed int64, cfg CampaignConfig) Schedule {
	rnd := rng.New(seed)
	if cfg.Events == 0 {
		cfg.Events = 12
	}
	if cfg.MaxStorm == 0 {
		cfg.MaxStorm = cfg.Horizon / 16
	}
	if cfg.MaxStorm == 0 {
		cfg.MaxStorm = 1
	}
	pick := func(n uint64) uint64 {
		if n == 0 {
			return 0
		}
		return uint64(rnd.Int63n(int64(n)))
	}
	domain := func() mem.Domain {
		if len(cfg.Domains) == 0 || rnd.Intn(3) == 0 {
			return AllDomains
		}
		return cfg.Domains[rnd.Intn(len(cfg.Domains))]
	}
	sched := Schedule{Seed: seed}
	for i := 0; i < cfg.Events; i++ {
		var e Event
		switch Kind(rnd.Intn(5)) {
		case DRAMStall:
			e = Event{Kind: DRAMStall, Start: pick(cfg.Horizon), Duration: 1 + pick(cfg.MaxStorm)}
		case RespDelay:
			e = Event{Kind: RespDelay, Domain: domain(), Start: pick(cfg.Horizon), Duration: 1 + pick(cfg.Horizon/8+1), Delay: 1 + pick(500)}
		case RespDrop:
			e = Event{Kind: RespDrop, Domain: domain(), Start: pick(cfg.Horizon), Duration: 1 + pick(cfg.Horizon/32+1), Delay: 1 + pick(200)}
		case ShaperBackpressure:
			e = Event{Kind: ShaperBackpressure, Domain: domain(), Start: pick(cfg.Horizon), Duration: 1 + pick(cfg.Horizon/8+1)}
		default:
			e = Event{Kind: EgressStall, Domain: domain(), Start: pick(cfg.Horizon), Duration: 1 + pick(cfg.Horizon/32+1)}
		}
		sched.Events = append(sched.Events, e)
	}
	return sched
}
