// Client-side fault injection for the dagauditd ingest path. Where the
// core of this package perturbs the simulated memory system, a
// ClientSchedule perturbs the transport between a traffic generator and
// the audit service: slow trickled uploads, malformed or truncated
// payloads, duplicate burst storms, and stalled readers that hold a
// connection open without consuming the response. The same two properties
// carry over: schedules are pure functions of their seed (a chaos failure
// replays exactly), and injection decisions are keyed on the batch index
// only — never on payload contents — so two streams that differ only in
// secret data experience bit-identical transport faults.
package fault

import (
	"fmt"
	"sort"

	"dagguise/internal/rng"
)

// ClientKind enumerates the transport fault classes a chaos client can
// inflict on the audit service.
type ClientKind int

const (
	// SlowClient trickles the batch body in Magnitude-byte writes with a
	// pause between them, exercising the server's read deadlines.
	SlowClient ClientKind = iota
	// MalformedPayload sends a garbage (non-JSON) batch before the real
	// one; the server must reject it with 400 without losing stream state.
	MalformedPayload
	// TruncatedPayload sends a copy of the batch cut off mid-line before
	// the real one, as a crashed client would leave it.
	TruncatedPayload
	// BurstStorm re-sends the identical batch Magnitude extra times in a
	// tight loop; the server's sequence dedup must absorb the duplicates.
	BurstStorm
	// StalledReader opens a request whose body never arrives, holding the
	// connection until the server times it out.
	StalledReader
)

var clientKindNames = map[ClientKind]string{
	SlowClient:       "slow-client",
	MalformedPayload: "malformed-payload",
	TruncatedPayload: "truncated-payload",
	BurstStorm:       "burst-storm",
	StalledReader:    "stalled-reader",
}

// String names the client fault kind.
func (k ClientKind) String() string {
	if n, ok := clientKindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("client-fault(%d)", int(k))
}

// ClientEvent is one transport fault, bound to the Batch-th upload of a
// stream. Magnitude is kind-specific: write chunk size for SlowClient,
// duplicate count for BurstStorm, unused otherwise.
type ClientEvent struct {
	Kind      ClientKind `json:"kind"`
	Batch     int        `json:"batch"`
	Magnitude int        `json:"magnitude,omitempty"`
}

// ClientSchedule is a reproducible set of transport faults. As with
// Schedule, the seed rides along for reporting only.
type ClientSchedule struct {
	Seed   int64         `json:"seed"`
	Events []ClientEvent `json:"events"`
}

// Validate rejects malformed client schedules.
func (s ClientSchedule) Validate() error {
	for i, e := range s.Events {
		if _, ok := clientKindNames[e.Kind]; !ok {
			return fmt.Errorf("fault: client event %d has unknown kind %d", i, int(e.Kind))
		}
		if e.Batch < 0 {
			return fmt.Errorf("fault: client event %d (%s) targets negative batch %d", i, e.Kind, e.Batch)
		}
		if (e.Kind == SlowClient || e.Kind == BurstStorm) && e.Magnitude < 1 {
			return fmt.Errorf("fault: client event %d (%s) needs magnitude >= 1", i, e.Kind)
		}
	}
	return nil
}

// ForBatch returns the faults scheduled for the i-th batch, in stable
// (kind, declaration) order.
func (s ClientSchedule) ForBatch(i int) []ClientEvent {
	var out []ClientEvent
	for _, e := range s.Events {
		if e.Batch == i {
			out = append(out, e)
		}
	}
	sort.SliceStable(out, func(a, b int) bool { return out[a].Kind < out[b].Kind })
	return out
}

// ClientCampaign draws a randomized but fully seed-determined transport
// fault schedule over a stream of the given batch count: calling it twice
// with equal arguments yields identical schedules.
func ClientCampaign(seed int64, batches, events int) ClientSchedule {
	rnd := rng.New(seed)
	if events <= 0 {
		events = 8
	}
	if batches < 1 {
		batches = 1
	}
	sched := ClientSchedule{Seed: seed}
	for i := 0; i < events; i++ {
		e := ClientEvent{Batch: rnd.Intn(batches)}
		switch ClientKind(rnd.Intn(5)) {
		case SlowClient:
			e.Kind = SlowClient
			e.Magnitude = 1 + rnd.Intn(64)
		case MalformedPayload:
			e.Kind = MalformedPayload
		case TruncatedPayload:
			e.Kind = TruncatedPayload
		case BurstStorm:
			e.Kind = BurstStorm
			e.Magnitude = 1 + rnd.Intn(3)
		default:
			e.Kind = StalledReader
		}
		sched.Events = append(sched.Events, e)
	}
	return sched
}
