package sched

import "fmt"

// State is the serializable mutable state of a secure arbiter — a tagged
// union over the arbiter kinds. TP's turn position is derived from the
// cycle counter, so only its counters are mutable; FS additionally tracks
// the current slot's issued flag.
type State struct {
	Kind    string `json:"kind"`
	CurSlot uint64 `json:"cur_slot,omitempty"`
	Issued  bool   `json:"issued,omitempty"`
	Stats   Stats  `json:"stats"`
}

// StatefulScheduler is a scheduler whose state can be checkpointed. The
// stateless insecure policies (FCFS, FR-FCFS) deliberately do not implement
// it.
type StatefulScheduler interface {
	SaveState() State
	RestoreState(State) error
}

// SaveState implements StatefulScheduler.
func (f *FixedService) SaveState() State {
	return State{Kind: f.Name(), CurSlot: f.curSlot, Issued: f.issued, Stats: f.stats}
}

// RestoreState implements StatefulScheduler.
func (f *FixedService) RestoreState(st State) error {
	if st.Kind != f.Name() {
		return fmt.Errorf("sched: restoring %q state into %s arbiter", st.Kind, f.Name())
	}
	f.curSlot = st.CurSlot
	f.issued = st.Issued
	f.stats = st.Stats
	return nil
}

// SaveState implements StatefulScheduler.
func (tp *TemporalPartitioning) SaveState() State {
	return State{Kind: tp.Name(), Stats: tp.stats}
}

// RestoreState implements StatefulScheduler.
func (tp *TemporalPartitioning) RestoreState(st State) error {
	if st.Kind != tp.Name() {
		return fmt.Errorf("sched: restoring %q state into %s arbiter", st.Kind, tp.Name())
	}
	tp.stats = st.Stats
	return nil
}
