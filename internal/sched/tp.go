package sched

import (
	"fmt"

	"dagguise/internal/config"
	"dagguise/internal/dram"
	"dagguise/internal/memctrl"
	"dagguise/internal/obs"
)

// TemporalPartitioning implements coarse time-sliced partitioning (Wang et
// al., HPCA'14): time is divided into fixed turns, each owned by one group.
// Within its turn a group enjoys unconstrained FR-FCFS scheduling; a dead
// time at the end of each turn stops new issues early enough that every
// transaction drains before the next turn begins, so no state crosses the
// turn boundary.
type TemporalPartitioning struct {
	groups []Group
	turn   uint64 // CPU cycles per turn
	dead   uint64 // no-issue window at the end of each turn
	inner  memctrl.FRFCFS
	stats  Stats
	mx     *obs.Registry // observability (nil = off); measurement only

	refi, rfc uint64 // refresh guard, as in FixedService
}

// NewTemporalPartitioning builds a TP arbiter. turnDRAMCycles is the turn
// length in DRAM cycles (the original paper used 64-128); the dead time is
// derived from the worst-case transaction span.
func NewTemporalPartitioning(t config.DRAMTiming, groups []Group, turnDRAMCycles int) *TemporalPartitioning {
	if len(groups) == 0 {
		panic("sched: temporal partitioning needs at least one group")
	}
	if turnDRAMCycles <= 0 {
		turnDRAMCycles = 96
	}
	dead := uint64((t.TRP + t.TRCD + t.TCWD + t.TBURST + t.TWR + t.TWTR) * t.ClockRatio)
	turn := uint64(turnDRAMCycles * t.ClockRatio)
	if turn <= dead {
		turn = dead * 2
	}
	return &TemporalPartitioning{
		groups: groups, turn: turn, dead: dead,
		refi: uint64(t.TREFI * t.ClockRatio),
		rfc:  uint64(t.TRFC * t.ClockRatio),
	}
}

// nearRefresh reports whether a transaction issued at now could overlap a
// periodic refresh window, in which case the issue is deferred for every
// domain alike so that refresh-displaced transactions cannot bleed into
// another group's turn.
func (tp *TemporalPartitioning) nearRefresh(now uint64) bool {
	if tp.refi == 0 {
		return false
	}
	k := now / tp.refi
	if k >= 1 {
		refStart := k * tp.refi
		if now < refStart+tp.rfc+tp.dead {
			return true
		}
	}
	return now+tp.dead > (k+1)*tp.refi
}

// Turn returns the turn length in CPU cycles.
func (tp *TemporalPartitioning) Turn() uint64 { return tp.turn }

// Name implements memctrl.Scheduler.
func (tp *TemporalPartitioning) Name() string { return "tp" }

// Stats returns turn usage counters (SlotsSeen counts issue opportunities).
func (tp *TemporalPartitioning) Stats() Stats { return tp.stats }

// Observe attaches an observability registry (nil = off); turn usage is
// mirrored there under the system-wide domain 0.
func (tp *TemporalPartitioning) Observe(mx *obs.Registry) { tp.mx = mx }

// Pick implements memctrl.Scheduler.
func (tp *TemporalPartitioning) Pick(q []memctrl.Entry, now uint64, dev *dram.Device) int {
	pos := now % tp.turn
	if pos >= tp.turn-tp.dead {
		return -1 // dead time: drain in-flight transactions
	}
	if tp.nearRefresh(now) {
		return -1
	}
	owner := tp.groups[(now/tp.turn)%uint64(len(tp.groups))]
	filtered := memctrl.DomainFiltered{Inner: tp.inner, Allow: owner.contains}
	idx := filtered.Pick(q, now, dev)
	if idx >= 0 {
		tp.stats.SlotsUsed++
		tp.mx.Inc(obs.CtrSlotsUsed, 0)
	}
	return idx
}

// String describes the arbiter.
func (tp *TemporalPartitioning) String() string {
	return fmt.Sprintf("tp{groups=%d turn=%d dead=%d}", len(tp.groups), tp.turn, tp.dead)
}
