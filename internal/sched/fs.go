// Package sched implements the secure memory scheduling baselines the
// paper compares against: Fixed Service and its Bank-Triple-Alternation
// variant (Shafiee et al., MICRO'15) and Temporal Partitioning (Wang et
// al., HPCA'14). All are memctrl.Scheduler implementations that constrain
// when each security domain's transactions may be committed so that no
// domain's timing can be influenced by another's traffic.
package sched

import (
	"fmt"

	"dagguise/internal/config"
	"dagguise/internal/dram"
	"dagguise/internal/mem"
	"dagguise/internal/memctrl"
	"dagguise/internal/obs"
)

// Group is a set of domains that share scheduling slots. Each protected
// domain must be alone in its group; mutually trusting applications (e.g.
// the unprotected SPEC co-runners) may share one group, which lets them
// flexibly use the group's slots (§6.3).
type Group []mem.Domain

func (g Group) contains(d mem.Domain) bool {
	for _, x := range g {
		if x == d {
			return true
		}
	}
	return false
}

// FixedService implements FS and FS-BTA slotted arbitration. Time is
// divided into fixed slots; slot s is owned by group s mod len(groups)
// (round-robin, no-skip: an unused slot is wasted, never donated). At most
// one transaction issues per slot, exactly at the slot boundary, so the
// schedule of issue opportunities is completely input-independent.
//
// With BankGroups == 1 this is plain FS: consecutive slots may target the
// same bank, so the stride must cover a full bank cycle (tRC). With
// BankGroups == 3 it is FS-BTA: slot s may only serve banks b with
// b mod 3 == s mod 3, allowing a 3x shorter stride since a given bank can
// only be used every third slot.
type FixedService struct {
	groups     []Group
	stride     uint64 // CPU cycles per slot
	bankGroups int

	// Refresh avoidance: slots whose transaction could collide with a
	// periodic refresh window are skipped for every group alike.
	refi, rfc, guard uint64

	curSlot uint64
	issued  bool
	stats   Stats
	mx      *obs.Registry // observability (nil = off); measurement only
}

// Stats counts slot usage for utilisation reporting.
type Stats struct {
	SlotsSeen   uint64
	SlotsUsed   uint64
	SlotsWasted uint64 // owned slots with no eligible request
}

// strideFor computes the minimal safe slot stride in CPU cycles for the
// given bank-group count, from the DRAM timing parameters:
//
//   - a bank recurs every bankGroups slots, so bankGroups*stride >= tRC;
//   - a write in slot s must not delay a read in slot s+1, so
//     stride + tRCD >= tRCD + tCWD + tBURST + tWTR.
func strideFor(t config.DRAMTiming, bankGroups int) uint64 {
	rcPart := (t.TRC + bankGroups - 1) / bankGroups
	wtrPart := t.TCWD + t.TBURST + t.TWTR
	stride := rcPart
	if wtrPart > stride {
		stride = wtrPart
	}
	if t.TBURST > stride {
		stride = t.TBURST
	}
	return uint64(stride * t.ClockRatio)
}

// NewFixedService builds a plain FS arbiter (bank group count 1).
func NewFixedService(t config.DRAMTiming, groups []Group) *FixedService {
	return newFS(t, groups, 1)
}

// NewFSBTA builds the Bank Triple Alternation variant.
func NewFSBTA(t config.DRAMTiming, groups []Group) *FixedService {
	return newFS(t, groups, 3)
}

// NewFSBTAWithStride builds FS-BTA with an explicit slot stride in DRAM
// cycles, overriding the hazard-safe derivation. The paper's FS-BTA uses
// the aggressive tRC/3 stride (13 cycles for DDR3-1600); our default adds
// the write-to-read turnaround margin (18 cycles) because the shorter
// stride lets a victim's write delay the next slot's read by a few cycles
// — a real, measurable leak (see TestAggressiveBTAStrideLeaks). Use this
// constructor for performance sensitivity studies only.
func NewFSBTAWithStride(t config.DRAMTiming, groups []Group, strideDRAMCycles int) *FixedService {
	f := newFS(t, groups, 3)
	if strideDRAMCycles > 0 {
		f.stride = uint64(strideDRAMCycles * t.ClockRatio)
	}
	return f
}

func newFS(t config.DRAMTiming, groups []Group, bankGroups int) *FixedService {
	if len(groups) == 0 {
		panic("sched: fixed service needs at least one group")
	}
	f := &FixedService{
		groups:     groups,
		stride:     strideFor(t, bankGroups),
		bankGroups: bankGroups,
		refi:       uint64(t.TREFI * t.ClockRatio),
		rfc:        uint64(t.TRFC * t.ClockRatio),
	}
	// A slot is unsafe if its transaction could still be using the bank
	// or bus when a refresh begins; guard by the worst-case transaction
	// span.
	f.guard = uint64((t.TRCD + t.TCWD + t.TBURST + t.TWR) * t.ClockRatio)
	return f
}

// Stride returns the slot stride in CPU cycles.
func (f *FixedService) Stride() uint64 { return f.stride }

// Name implements memctrl.Scheduler.
func (f *FixedService) Name() string {
	if f.bankGroups > 1 {
		return "fs-bta"
	}
	return "fs"
}

// Stats returns slot usage counters.
func (f *FixedService) Stats() Stats { return f.stats }

// Observe attaches an observability registry (nil = off); slot usage is
// mirrored there under the system-wide domain 0.
func (f *FixedService) Observe(mx *obs.Registry) { f.mx = mx }

// slotBlockedByRefresh reports whether a transaction issued at slotStart
// could overlap a refresh window. The refresh schedule is periodic and
// input-independent, so skipping is identical for all domains.
func (f *FixedService) slotBlockedByRefresh(slotStart uint64) bool {
	if f.refi == 0 {
		return false
	}
	// Refresh k occupies [k*refi, k*refi+rfc), k >= 1.
	k := slotStart / f.refi
	if k >= 1 {
		refStart := k * f.refi
		refEnd := refStart + f.rfc
		if slotStart < refEnd && slotStart+f.guard+f.stride > refStart {
			return true
		}
	}
	// Also guard against running into the next refresh start.
	next := (k + 1) * f.refi
	return slotStart+f.guard+f.stride > next
}

// Pick implements memctrl.Scheduler. Only the cycle at the slot boundary
// can issue, guaranteeing an input-independent command schedule.
func (f *FixedService) Pick(q []memctrl.Entry, now uint64, dev *dram.Device) int {
	slot := now / f.stride
	if slot != f.curSlot {
		f.curSlot = slot
		f.issued = false
	}
	if now%f.stride != 0 || f.issued {
		return -1
	}
	f.stats.SlotsSeen++
	f.mx.Inc(obs.CtrSlotsSeen, 0)
	if f.slotBlockedByRefresh(now) {
		return -1
	}
	owner := f.groups[slot%uint64(len(f.groups))]
	bankGroup := int(slot % uint64(f.bankGroups))
	for i := range q {
		e := &q[i]
		if !owner.contains(e.Req.Domain) {
			continue
		}
		if f.bankGroups > 1 && e.Coord.Bank%f.bankGroups != bankGroup {
			continue
		}
		if dev.BankBusyUntil(e.Coord) > now {
			continue
		}
		f.issued = true
		f.stats.SlotsUsed++
		f.mx.Inc(obs.CtrSlotsUsed, 0)
		return i
	}
	f.stats.SlotsWasted++
	f.mx.Inc(obs.CtrSlotsWasted, 0)
	return -1
}

// String describes the arbiter.
func (f *FixedService) String() string {
	return fmt.Sprintf("%s{groups=%d stride=%d}", f.Name(), len(f.groups), f.stride)
}
