package sched

import (
	"math/rand"
	"testing"

	"dagguise/internal/config"
	"dagguise/internal/dram"
	"dagguise/internal/mem"
	"dagguise/internal/memctrl"
)

func rig(s memctrl.Scheduler) (*memctrl.Controller, *mem.Mapper) {
	m := mem.MustMapper(mem.Geometry{Channels: 1, Ranks: 1, Banks: 8, RowBytes: 8 << 10, LineBytes: 64, CapacityGiB: 4})
	dev := dram.New(config.DDR31600(), m, true) // secure schemes use closed row
	c := memctrl.New(dev, m, s, 64)
	c.PartitionQueue(8) // secure schemes need per-domain queue partitions
	return c, m
}

func TestStrideCoversHazards(t *testing.T) {
	tm := config.DDR31600()
	fs := strideFor(tm, 1)
	bta := strideFor(tm, 3)
	if fs < uint64(tm.TRC*tm.ClockRatio) {
		t.Fatalf("plain FS stride %d below tRC", fs)
	}
	if bta >= fs {
		t.Fatalf("BTA stride %d not shorter than FS stride %d", bta, fs)
	}
	// BTA stride must cover the write-to-read turnaround hazard.
	wtr := uint64((tm.TCWD + tm.TBURST + tm.TWTR) * tm.ClockRatio)
	if bta < wtr {
		t.Fatalf("BTA stride %d below turnaround hazard %d", bta, wtr)
	}
}

func TestFSRoundRobinNoSkip(t *testing.T) {
	groups := []Group{{1}, {2}}
	fs := NewFixedService(config.DDR31600(), groups)
	c, m := rig(fs)
	// Only domain 2 has traffic; it still gets at most every other slot.
	for i := 0; i < 4; i++ {
		c.Enqueue(mem.Request{ID: uint64(i), Addr: m.AddrForBank(i, uint64(i), 0), Domain: 2}, 0)
	}
	var completions []uint64
	for now := uint64(0); now < 100000 && len(completions) < 4; now++ {
		for _, r := range c.Tick(now) {
			completions = append(completions, r.Completion)
		}
	}
	if len(completions) != 4 {
		t.Fatalf("only %d of 4 completed", len(completions))
	}
	stride := fs.Stride()
	// Domain 2 owns every second slot: consecutive completions must be
	// at least 2*stride apart (no-skip wastes domain 1's slots).
	for i := 1; i < len(completions); i++ {
		if completions[i]-completions[i-1] < 2*stride {
			t.Fatalf("completions %d and %d only %d apart; idle slots were donated",
				i-1, i, completions[i]-completions[i-1])
		}
	}
}

func TestFSBTABankGroupDiscipline(t *testing.T) {
	groups := []Group{{1}}
	bta := NewFSBTA(config.DDR31600(), groups)
	c, m := rig(bta)
	// A request to bank 1 must wait for a slot with slot%3 == 1.
	c.Enqueue(mem.Request{ID: 0, Addr: m.AddrForBank(1, 0, 0), Domain: 1}, 0)
	issuedAt := uint64(0)
	for now := uint64(0); now < 100000; now++ {
		if len(c.Tick(now)) > 0 {
			issuedAt = now
			break
		}
	}
	if issuedAt == 0 {
		t.Fatal("request never completed")
	}
	// Reconstruct the issue slot from the completion by checking the
	// arbiter stats instead: exactly one slot used.
	if bta.Stats().SlotsUsed != 1 {
		t.Fatalf("slots used = %d, want 1", bta.Stats().SlotsUsed)
	}
}

// attackerLatencies runs an attacker in domain 1 issuing a fixed probe
// pattern while an optional victim in domain 2 issues the given traffic.
// It returns the attacker's response latencies — the exact observable of a
// memory timing side channel.
func attackerLatencies(t *testing.T, mk func() memctrl.Scheduler, victimGaps []uint64, probes int) []uint64 {
	t.Helper()
	c, m := rig(mk())
	type probe struct{ issued uint64 }
	outstanding := map[uint64]probe{}
	var latencies []uint64
	nextProbe := uint64(0)
	probeID := uint64(0)
	vID := uint64(1 << 20)
	nextVictim := uint64(0)
	vi := 0
	rng := rand.New(rand.NewSource(7))

	for now := uint64(0); now < 3_000_000 && len(latencies) < probes; now++ {
		// Attacker: one outstanding probe to bank 0, reissued a fixed
		// gap after each response.
		if len(outstanding) == 0 && now >= nextProbe {
			id := probeID
			probeID++
			if c.Enqueue(mem.Request{ID: id, Addr: m.AddrForBank(0, uint64(id%64), 0), Kind: mem.Read, Domain: 1, Issue: now}, now) {
				outstanding[id] = probe{issued: now}
			}
		}
		// Victim traffic.
		if len(victimGaps) > 0 && now >= nextVictim {
			gap := victimGaps[vi%len(victimGaps)]
			vi++
			c.Enqueue(mem.Request{ID: vID, Addr: m.AddrForBank(rng.Intn(8), uint64(vID%512), 0), Kind: mem.Read, Domain: 2, Issue: now}, now)
			vID++
			nextVictim = now + gap
		}
		for _, r := range c.Tick(now) {
			if p, ok := outstanding[r.ID]; ok {
				latencies = append(latencies, now-p.issued)
				delete(outstanding, r.ID)
				nextProbe = now + 50
			}
		}
	}
	if len(latencies) < probes {
		t.Fatalf("attacker starved: only %d of %d probes completed", len(latencies), probes)
	}
	return latencies
}

func TestFSBTANonInterference(t *testing.T) {
	mk := func() memctrl.Scheduler {
		return NewFSBTA(config.DDR31600(), []Group{{1}, {2}})
	}
	quiet := attackerLatencies(t, mk, nil, 200)
	noisy := attackerLatencies(t, mk, []uint64{30, 90, 300}, 200)
	burst := attackerLatencies(t, mk, []uint64{10}, 200)
	for i := range quiet {
		if quiet[i] != noisy[i] || quiet[i] != burst[i] {
			t.Fatalf("probe %d latency differs across victim behaviours: %d / %d / %d",
				i, quiet[i], noisy[i], burst[i])
		}
	}
}

func TestFSNonInterference(t *testing.T) {
	mk := func() memctrl.Scheduler {
		return NewFixedService(config.DDR31600(), []Group{{1}, {2}})
	}
	quiet := attackerLatencies(t, mk, nil, 100)
	noisy := attackerLatencies(t, mk, []uint64{25, 150}, 100)
	for i := range quiet {
		if quiet[i] != noisy[i] {
			t.Fatalf("probe %d latency differs: %d vs %d", i, quiet[i], noisy[i])
		}
	}
}

func TestTPNonInterference(t *testing.T) {
	mk := func() memctrl.Scheduler {
		return NewTemporalPartitioning(config.DDR31600(), []Group{{1}, {2}}, 96)
	}
	quiet := attackerLatencies(t, mk, nil, 100)
	noisy := attackerLatencies(t, mk, []uint64{25, 150}, 100)
	for i := range quiet {
		if quiet[i] != noisy[i] {
			t.Fatalf("probe %d latency differs: %d vs %d", i, quiet[i], noisy[i])
		}
	}
}

func TestAggressiveBTAStrideLeaks(t *testing.T) {
	// The paper's FS-BTA stride (tRC/3 = 13 DRAM cycles) does not cover
	// the write-to-read bus turnaround: a victim WRITE in slot s can
	// push the attacker's READ in slot s+1 by a few cycles. This test
	// documents why our default stride adds the tWTR margin: with the
	// aggressive stride, attacker latencies depend on whether the victim
	// issued writes.
	// The attacker probes bank 0 (group 0); the slot immediately before
	// each attacker slot belongs to the victim with bank group 2, so the
	// victim hammers bank 5 — a write there can push the attacker's read
	// via the bus turnaround when the stride lacks the tWTR margin.
	mkVictim := func(kind mem.Kind) func(c *memctrl.Controller, m *mem.Mapper, now uint64, vID *uint64) {
		return func(c *memctrl.Controller, m *mem.Mapper, now uint64, vID *uint64) {
			if now%40 == 0 {
				c.Enqueue(mem.Request{ID: *vID, Addr: m.AddrForBank(5, uint64(*vID%64), 0), Kind: kind, Domain: 2, Issue: now}, now)
				*vID++
			}
		}
	}
	run := func(kind mem.Kind) []uint64 {
		bta := NewFSBTAWithStride(config.DDR31600(), []Group{{1}, {2}}, 13)
		c, m := rig(bta)
		victim := mkVictim(kind)
		var latencies []uint64
		outstanding := map[uint64]uint64{}
		probeID := uint64(0)
		nextProbe := uint64(0)
		vID := uint64(1 << 20)
		for now := uint64(0); now < 2_000_000 && len(latencies) < 100; now++ {
			if len(outstanding) == 0 && now >= nextProbe {
				id := probeID
				probeID++
				if c.Enqueue(mem.Request{ID: id, Addr: m.AddrForBank(0, uint64(id%64), 0), Kind: mem.Read, Domain: 1, Issue: now}, now) {
					outstanding[id] = now
				}
			}
			victim(c, m, now, &vID)
			for _, r := range c.Tick(now) {
				if issued, ok := outstanding[r.ID]; ok {
					latencies = append(latencies, now-issued)
					delete(outstanding, r.ID)
					nextProbe = now + 50
				}
			}
		}
		return latencies
	}
	reads := run(mem.Read)
	writes := run(mem.Write)
	if len(reads) < 100 || len(writes) < 100 {
		t.Fatal("attacker starved")
	}
	same := true
	for i := range reads {
		if reads[i] != writes[i] {
			same = false
			break
		}
	}
	if same {
		t.Skip("aggressive stride showed no turnaround leak under this pattern; default stride remains safe regardless")
	}
	// Leak demonstrated: this is the justification for the safe stride.
	safe := NewFSBTA(config.DDR31600(), []Group{{1}, {2}})
	if safe.Stride() <= NewFSBTAWithStride(config.DDR31600(), []Group{{1}, {2}}, 13).Stride() {
		t.Fatal("safe stride not larger than aggressive stride")
	}
}

func TestInsecureBaselineLeaksForContrast(t *testing.T) {
	// Sanity check of the test harness itself: under FR-FCFS the
	// attacker's latencies *must* differ when the victim runs.
	mk := func() memctrl.Scheduler { return memctrl.FRFCFS{} }
	quiet := attackerLatencies(t, mk, nil, 200)
	noisy := attackerLatencies(t, mk, []uint64{10}, 200)
	same := true
	for i := range quiet {
		if quiet[i] != noisy[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("FR-FCFS showed no interference; the harness cannot detect leaks")
	}
}

func TestTPTurnExclusivity(t *testing.T) {
	tp := NewTemporalPartitioning(config.DDR31600(), []Group{{1}, {2}}, 96)
	c, m := rig(tp)
	// Both domains have pending traffic from cycle 0.
	for i := 0; i < 3; i++ {
		c.Enqueue(mem.Request{ID: uint64(i), Addr: m.AddrForBank(i, 0, 0), Domain: 1}, 0)
		c.Enqueue(mem.Request{ID: uint64(10 + i), Addr: m.AddrForBank(4+i, 0, 0), Domain: 2}, 0)
	}
	turn := tp.Turn()
	var order []struct {
		id   uint64
		done uint64
	}
	for now := uint64(0); now < 50*turn && len(order) < 6; now++ {
		for _, r := range c.Tick(now) {
			order = append(order, struct {
				id   uint64
				done uint64
			}{r.ID, r.Completion})
		}
	}
	if len(order) != 6 {
		t.Fatalf("only %d of 6 completed", len(order))
	}
	// Every completion must belong to the turn of its domain's group.
	for _, o := range order {
		dom := mem.Domain(1)
		if o.id >= 10 {
			dom = 2
		}
		// Find the turn in which it was issued: completion is within
		// the same turn thanks to dead-time draining, or shortly after.
		slot := (o.done - 1) / turn
		owner := slot % 2
		wantOwner := uint64(0)
		if dom == 2 {
			wantOwner = 1
		}
		if owner != wantOwner {
			t.Fatalf("request %d (domain %d) completed in turn %d owned by group %d", o.id, dom, slot, owner)
		}
	}
}

func TestGroupContains(t *testing.T) {
	g := Group{3, 5}
	if !g.contains(3) || !g.contains(5) || g.contains(4) {
		t.Fatal("Group.contains broken")
	}
}

func TestSchedulerNames(t *testing.T) {
	tm := config.DDR31600()
	if NewFixedService(tm, []Group{{1}}).Name() != "fs" {
		t.Fatal("fs name")
	}
	if NewFSBTA(tm, []Group{{1}}).Name() != "fs-bta" {
		t.Fatal("fs-bta name")
	}
	if NewTemporalPartitioning(tm, []Group{{1}}, 96).Name() != "tp" {
		t.Fatal("tp name")
	}
}

func TestFSRejectsEmptyGroups(t *testing.T) {
	// The FS-family constructors treat an empty rotation as a wiring bug:
	// an arbiter with no slots can never serve anyone. The contract is a
	// panic at construction, not a silent dead scheduler.
	defer func() {
		if recover() == nil {
			t.Fatal("NewFixedService accepted an empty group rotation")
		}
	}()
	NewFixedService(config.DDR31600(), nil)
}

func TestFSBTARejectsEmptyGroups(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewFSBTA accepted an empty group rotation")
		}
	}()
	NewFSBTA(config.DDR31600(), nil)
}

func TestTPRejectsEmptyGroups(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewTemporalPartitioning accepted an empty group rotation")
		}
	}()
	NewTemporalPartitioning(config.DDR31600(), nil, 96)
}
