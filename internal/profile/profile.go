// Package profile implements DAGguise's offline profiling phase (§4.3):
// sweep an rDAG template search space, run the victim *alone* under each
// candidate defense rDAG, record its IPC and the bandwidth the rDAG
// allocates, and select a cost-effective defense at the knee of the
// IPC-versus-allocated-bandwidth curve. Because rDAGs are versatile, no
// knowledge of co-running applications is needed — this is the profiling
// cost advantage over Camouflage the paper claims.
package profile

import (
	"fmt"
	"sort"

	"dagguise/internal/config"
	"dagguise/internal/rdag"
	"dagguise/internal/sim"
	"dagguise/internal/trace"
)

// Point is one candidate rDAG's measurement (one point in Figure 7).
type Point struct {
	Template rdag.Template
	// IPC is the victim's IPC when shaped by this candidate, alone on
	// the machine.
	IPC float64
	// NormalizedIPC is IPC / unshaped baseline IPC.
	NormalizedIPC float64
	// AllocatedGBps is the bandwidth the defense rDAG claims from the
	// controller — real plus fake emissions — which is what co-runners
	// lose.
	AllocatedGBps float64
}

// Result is the full sweep outcome.
type Result struct {
	// BaselineIPC is the victim's unshaped, uncontended IPC.
	BaselineIPC float64
	// Points holds one entry per candidate, in candidate order.
	Points []Point
	// Selected is the chosen defense rDAG.
	Selected rdag.Template
}

// Options tunes the sweep.
type Options struct {
	// Warmup and Window are the per-candidate simulation lengths in
	// cycles.
	Warmup, Window uint64
	// KneeFraction selects the cheapest candidate achieving at least
	// this fraction of the best shaped IPC (default 0.9).
	KneeFraction float64
	// Attach, when non-nil, is called on every candidate's freshly built
	// system before it runs (observability wiring).
	Attach func(*sim.System)
}

// DefaultOptions returns sweep lengths adequate for the bundled victims.
func DefaultOptions() Options {
	return Options{Warmup: 100_000, Window: 1_600_000, KneeFraction: 0.85}
}

// Sweep profiles the victim under every candidate in the space. mkVictim
// must return a fresh source for each run (sources are stateful).
func Sweep(mkVictim func() trace.Source, space rdag.Space, opts Options) (*Result, error) {
	if opts.Window == 0 {
		opts = DefaultOptions()
	}
	if opts.KneeFraction <= 0 || opts.KneeFraction > 1 {
		opts.KneeFraction = 0.9
	}
	candidates := space.Candidates()
	if len(candidates) == 0 {
		return nil, fmt.Errorf("profile: empty search space")
	}

	baseline, err := runOnce(mkVictim(), config.Insecure, rdag.Template{}, opts)
	if err != nil {
		return nil, err
	}
	res := &Result{BaselineIPC: baseline.Cores[0].IPC}
	if res.BaselineIPC <= 0 {
		return nil, fmt.Errorf("profile: victim baseline IPC is zero")
	}

	for _, tpl := range candidates {
		r, err := runOnce(mkVictim(), config.DAGguise, tpl, opts)
		if err != nil {
			return nil, err
		}
		core := r.Cores[0]
		emissions := core.ShaperFakes + core.ShaperForwarded
		alloc := float64(emissions) * 64 * sim.CPUFrequencyHz / float64(r.Cycles) / 1e9
		res.Points = append(res.Points, Point{
			Template:      tpl,
			IPC:           core.IPC,
			NormalizedIPC: core.IPC / res.BaselineIPC,
			AllocatedGBps: alloc,
		})
	}
	res.Selected = selectKnee(res.Points, opts.KneeFraction)
	return res, nil
}

func runOnce(src trace.Source, scheme config.Scheme, tpl rdag.Template, opts Options) (sim.Result, error) {
	cfg := config.Default(1, scheme)
	if tpl.Banks == 0 {
		tpl.Banks = cfg.Geometry.Banks
	}
	sys, err := sim.New(cfg, []sim.CoreSpec{{
		Name:      "victim",
		Source:    &trace.Loop{Inner: src},
		Protected: scheme == config.DAGguise,
		Defense:   tpl,
	}})
	if err != nil {
		return sim.Result{}, err
	}
	if opts.Attach != nil {
		opts.Attach(sys)
	}
	return sys.Measure(opts.Warmup, opts.Window), nil
}

// selectKnee picks the cheapest candidate (by allocated bandwidth) whose
// shaped IPC reaches kneeFraction of the best candidate's IPC.
func selectKnee(points []Point, kneeFraction float64) rdag.Template {
	best := 0.0
	for _, p := range points {
		if p.IPC > best {
			best = p.IPC
		}
	}
	threshold := best * kneeFraction
	idx := -1
	for i, p := range points {
		if p.IPC < threshold {
			continue
		}
		if idx < 0 || p.AllocatedGBps < points[idx].AllocatedGBps {
			idx = i
		}
	}
	if idx < 0 {
		idx = 0
	}
	return points[idx].Template
}

// SeriesBySequences groups the sweep points by parallel-sequence count and
// orders each series by edge weight, matching the Figure 7(a)/(b) layout.
func (r *Result) SeriesBySequences() map[int][]Point {
	out := make(map[int][]Point)
	for _, p := range r.Points {
		out[p.Template.Sequences] = append(out[p.Template.Sequences], p)
	}
	for _, pts := range out {
		sort.Slice(pts, func(i, j int) bool { return pts[i].Template.Weight < pts[j].Template.Weight })
	}
	return out
}
