package profile

import (
	"testing"

	"dagguise/internal/rdag"
	"dagguise/internal/trace"
	"dagguise/internal/victim"
)

func docdistSource(t *testing.T) func() trace.Source {
	t.Helper()
	tr, err := victim.DocDistTrace(11, victim.DefaultDocDist())
	if err != nil {
		t.Fatal(err)
	}
	return func() trace.Source {
		cp := *tr
		return &cp
	}
}

func smallSpace() rdag.Space {
	return rdag.Space{
		Sequences:   []int{1, 8},
		Weights:     []uint64{60, 900},
		WriteRatios: []float64{0.001},
		Banks:       8,
	}
}

func TestSweepShapesFollowPaper(t *testing.T) {
	opts := Options{Warmup: 5_000, Window: 60_000, KneeFraction: 0.9}
	res, err := Sweep(docdistSource(t), smallSpace(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.BaselineIPC <= 0 {
		t.Fatal("no baseline IPC")
	}
	if len(res.Points) != 4 {
		t.Fatalf("points = %d, want 4", len(res.Points))
	}
	byTpl := map[[2]uint64]Point{}
	for _, p := range res.Points {
		byTpl[[2]uint64{uint64(p.Template.Sequences), p.Template.Weight}] = p
		if p.NormalizedIPC <= 0 || p.NormalizedIPC > 1.05 {
			t.Errorf("candidate %v normalized IPC %f out of range", p.Template, p.NormalizedIPC)
		}
	}
	dense := byTpl[[2]uint64{8, 60}]
	sparse := byTpl[[2]uint64{1, 900}]
	// Figure 7 trends: denser rDAGs allocate more bandwidth and give the
	// victim higher IPC.
	if !(dense.AllocatedGBps > sparse.AllocatedGBps) {
		t.Errorf("dense alloc %.2f not above sparse %.2f", dense.AllocatedGBps, sparse.AllocatedGBps)
	}
	if !(dense.IPC > sparse.IPC) {
		t.Errorf("dense IPC %.3f not above sparse %.3f", dense.IPC, sparse.IPC)
	}
}

func TestKneeSelection(t *testing.T) {
	pts := []Point{
		{Template: rdag.Template{Sequences: 1, Weight: 900, Banks: 8}, IPC: 0.3, AllocatedGBps: 0.5},
		{Template: rdag.Template{Sequences: 4, Weight: 300, Banks: 8}, IPC: 0.95, AllocatedGBps: 2.0},
		{Template: rdag.Template{Sequences: 8, Weight: 60, Banks: 8}, IPC: 1.0, AllocatedGBps: 6.0},
	}
	sel := selectKnee(pts, 0.9)
	if sel.Sequences != 4 {
		t.Fatalf("knee selected %v, want the 4-sequence candidate", sel)
	}
	// A stricter threshold forces the densest candidate.
	sel = selectKnee(pts, 0.99)
	if sel.Sequences != 8 {
		t.Fatalf("strict knee selected %v, want 8 sequences", sel)
	}
}

func TestSweepRejectsEmptySpace(t *testing.T) {
	if _, err := Sweep(docdistSource(t), rdag.Space{}, DefaultOptions()); err == nil {
		t.Fatal("empty space accepted")
	}
}

func TestSeriesBySequences(t *testing.T) {
	res := &Result{Points: []Point{
		{Template: rdag.Template{Sequences: 2, Weight: 300}},
		{Template: rdag.Template{Sequences: 2, Weight: 100}},
		{Template: rdag.Template{Sequences: 4, Weight: 100}},
	}}
	series := res.SeriesBySequences()
	if len(series) != 2 {
		t.Fatalf("series = %d, want 2", len(series))
	}
	two := series[2]
	if two[0].Template.Weight != 100 || two[1].Template.Weight != 300 {
		t.Fatal("series not sorted by weight")
	}
}
