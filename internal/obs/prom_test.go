package obs

import (
	"fmt"
	"strings"
	"testing"
)

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry(3)
	r.Add(CtrRowHits, 1, 42)
	r.Add(CtrRowHits, 2, 7)
	r.Observe(HistReqLatency, 1, 5)  // bucket 3: [4, 8)
	r.Observe(HistReqLatency, 1, 6)  // bucket 3
	r.Observe(HistReqLatency, 1, 90) // bucket 7: [64, 128)

	var b strings.Builder
	if err := WritePrometheus(&b, r.Snapshot(), "dagauditd"); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE dagauditd_row_hits_total counter",
		`dagauditd_row_hits_total{domain="1"} 42`,
		`dagauditd_row_hits_total{domain="2"} 7`,
		"# TYPE dagauditd_req_latency histogram",
		`dagauditd_req_latency_bucket{domain="1",le="7"} 2`,
		`dagauditd_req_latency_bucket{domain="1",le="127"} 3`,
		`dagauditd_req_latency_bucket{domain="1",le="+Inf"} 3`,
		`dagauditd_req_latency_count{domain="1"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, `domain="0"`) {
		t.Error("zero-valued domain series should be skipped")
	}

	// Deterministic byte-for-byte.
	var b2 strings.Builder
	if err := WritePrometheus(&b2, r.Snapshot(), "dagauditd"); err != nil {
		t.Fatal(err)
	}
	if b2.String() != out {
		t.Error("exposition not byte-deterministic")
	}

	// Nil snapshot is a silent no-op.
	if err := WritePrometheus(&b, nil, "x"); err != nil {
		t.Fatal(err)
	}
}

// parseExposition is a minimal Prometheus text-format parser for the
// round-trip test: it returns metric metadata (# HELP/# TYPE) and the
// sample lines as name{labels} -> value.
func parseExposition(t *testing.T, text string) (help, typ map[string]string, samples map[string]uint64) {
	t.Helper()
	help = map[string]string{}
	typ = map[string]string{}
	samples = map[string]uint64{}
	for _, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			rest := strings.TrimPrefix(line, "# HELP ")
			name, text, ok := strings.Cut(rest, " ")
			if !ok {
				t.Fatalf("malformed HELP line %q", line)
			}
			help[name] = text
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			rest := strings.TrimPrefix(line, "# TYPE ")
			name, kind, ok := strings.Cut(rest, " ")
			if !ok {
				t.Fatalf("malformed TYPE line %q", line)
			}
			typ[name] = kind
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("unknown comment line %q", line)
		}
		series, val, ok := strings.Cut(line, " ")
		if !ok {
			t.Fatalf("malformed sample line %q", line)
		}
		var v uint64
		if _, err := fmt.Sscanf(val, "%d", &v); err != nil {
			t.Fatalf("non-integer sample %q: %v", line, err)
		}
		samples[series] = v
	}
	return help, typ, samples
}

// TestWritePrometheusRoundTrip parses the exposition back and checks it
// reconstructs the snapshot: every populated counter and histogram
// count must survive, every emitted family must carry HELP and TYPE
// metadata, and metadata must precede its samples.
func TestWritePrometheusRoundTrip(t *testing.T) {
	r := NewRegistry(3)
	r.Add(CtrRowHits, 1, 42)
	r.Add(CtrShaperFakes, 2, 9)
	r.Add(CtrSchedPicks, 0, 1000)
	r.Observe(HistReqLatency, 1, 5)
	r.Observe(HistReqLatency, 1, 90)
	r.Observe(HistEgressQueue, 2, 0)
	snap := r.Snapshot()

	var b strings.Builder
	if err := WritePrometheus(&b, snap, "dag"); err != nil {
		t.Fatal(err)
	}
	help, typ, samples := parseExposition(t, b.String())

	// Metadata is complete and typed correctly.
	for name, wantType := range map[string]string{
		"dag_row_hits_total":         "counter",
		"dag_shaper_fakes_total":     "counter",
		"dag_sched_picks_total":      "counter",
		"dag_req_latency":            "histogram",
		"dag_egress_queue_occupancy": "histogram",
	} {
		if typ[name] != wantType {
			t.Errorf("TYPE[%s] = %q, want %q", name, typ[name], wantType)
		}
		if help[name] == "" {
			t.Errorf("no HELP for %s", name)
		}
	}

	// Counter values reconstruct the snapshot.
	for series, want := range map[string]uint64{
		`dag_row_hits_total{domain="1"}`:     42,
		`dag_shaper_fakes_total{domain="2"}`: 9,
		`dag_sched_picks_total{domain="0"}`:  1000,
	} {
		if samples[series] != want {
			t.Errorf("%s = %d, want %d", series, samples[series], want)
		}
	}

	// Histogram counts and cumulative buckets reconstruct.
	if samples[`dag_req_latency_count{domain="1"}`] != snap.HistTotal(HistReqLatency, 1) {
		t.Errorf("req_latency count diverges")
	}
	if samples[`dag_req_latency_bucket{domain="1",le="+Inf"}`] != 2 {
		t.Errorf("+Inf bucket = %d, want 2", samples[`dag_req_latency_bucket{domain="1",le="+Inf"}`])
	}
	if samples[`dag_egress_queue_occupancy_bucket{domain="2",le="0"}`] != 1 {
		t.Errorf("zero bucket missing from egress histogram")
	}

	// Metadata precedes samples for each family.
	out := b.String()
	if strings.Index(out, "# HELP dag_row_hits_total") > strings.Index(out, `dag_row_hits_total{domain="1"}`) {
		t.Error("HELP emitted after its samples")
	}
	if strings.Index(out, "# HELP dag_row_hits_total") > strings.Index(out, "# TYPE dag_row_hits_total") {
		t.Error("HELP must precede TYPE")
	}
}
