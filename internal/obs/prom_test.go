package obs

import (
	"strings"
	"testing"
)

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry(3)
	r.Add(CtrRowHits, 1, 42)
	r.Add(CtrRowHits, 2, 7)
	r.Observe(HistReqLatency, 1, 5)  // bucket 3: [4, 8)
	r.Observe(HistReqLatency, 1, 6)  // bucket 3
	r.Observe(HistReqLatency, 1, 90) // bucket 7: [64, 128)

	var b strings.Builder
	if err := WritePrometheus(&b, r.Snapshot(), "dagauditd"); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE dagauditd_row_hits_total counter",
		`dagauditd_row_hits_total{domain="1"} 42`,
		`dagauditd_row_hits_total{domain="2"} 7`,
		"# TYPE dagauditd_req_latency histogram",
		`dagauditd_req_latency_bucket{domain="1",le="7"} 2`,
		`dagauditd_req_latency_bucket{domain="1",le="127"} 3`,
		`dagauditd_req_latency_bucket{domain="1",le="+Inf"} 3`,
		`dagauditd_req_latency_count{domain="1"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, `domain="0"`) {
		t.Error("zero-valued domain series should be skipped")
	}

	// Deterministic byte-for-byte.
	var b2 strings.Builder
	if err := WritePrometheus(&b2, r.Snapshot(), "dagauditd"); err != nil {
		t.Fatal(err)
	}
	if b2.String() != out {
		t.Error("exposition not byte-deterministic")
	}

	// Nil snapshot is a silent no-op.
	if err := WritePrometheus(&b, nil, "x"); err != nil {
		t.Fatal(err)
	}
}
