package obs

import (
	"bytes"
	"encoding/json"
	"testing"
)

// FuzzWriteChromeTrace checks the exporter emits valid JSON for arbitrary
// event field values (hostile component/kind codes, extreme cycles and
// negative lane indices included).
func FuzzWriteChromeTrace(f *testing.F) {
	f.Add(uint64(0), uint64(0), uint8(0), uint8(0), int32(0), int32(0))
	f.Add(uint64(1<<40), uint64(7), uint8(250), uint8(250), int32(-3), int32(99))
	f.Fuzz(func(t *testing.T, cycle, dur uint64, comp, kind uint8, index, domain int32) {
		events := []Event{
			{Cycle: cycle, Dur: dur, Comp: Component(comp), Kind: EventKind(kind), Index: index, Domain: domain},
			{Cycle: cycle + 1, Comp: CompBank, Kind: EvRowHit, Index: index},
		}
		var buf bytes.Buffer
		if err := WriteChromeTrace(&buf, events); err != nil {
			t.Fatalf("export failed: %v", err)
		}
		if !json.Valid(buf.Bytes()) {
			t.Fatalf("invalid JSON for events %+v:\n%s", events, buf.Bytes())
		}
	})
}
