package obs

import "testing"

// BenchmarkDisabledCollection measures the cost components pay per
// observability call site when collection is off — the nil-receiver check
// that must keep the simulator's disabled-path regression under 2%.
func BenchmarkDisabledCollection(b *testing.B) {
	var r *Registry
	var tr *Tracer
	var p *CycleProfile
	var sp *Spans
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Inc(CtrRowHits, 1)
		r.Observe(HistReqLatency, 1, uint64(i))
		tr.Emit(Event{Cycle: uint64(i)})
		p.Lap(PBCPU)
		sp.End(uint64(i), uint64(i))
	}
}

// BenchmarkCycleProfileLap measures the enabled lap cost: one monotonic
// clock read plus two array writes per call site.
func BenchmarkCycleProfileLap(b *testing.B) {
	p := NewCycleProfile()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Lap(PBCPU)
	}
}

func BenchmarkRegistryInc(b *testing.B) {
	r := NewRegistry(3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Inc(CtrRowHits, 1)
	}
}

func BenchmarkRegistryObserve(b *testing.B) {
	r := NewRegistry(3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Observe(HistReqLatency, 1, uint64(i))
	}
}

func BenchmarkTracerEmit(b *testing.B) {
	tr := NewTracer(1 << 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Emit(Event{Cycle: uint64(i), Comp: CompBank, Kind: EvRowHit})
	}
}
