package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// webhookSink is a test receiver that can fail the first N posts.
type webhookSink struct {
	mu       sync.Mutex
	failLeft int
	got      []Alert
	attempts int
}

func (s *webhookSink) handler(w http.ResponseWriter, r *http.Request) {
	body, _ := io.ReadAll(r.Body)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.attempts++
	if s.failLeft > 0 {
		s.failLeft--
		w.WriteHeader(http.StatusInternalServerError)
		return
	}
	var a Alert
	if err := json.Unmarshal(body, &a); err == nil {
		s.got = append(s.got, a)
	}
	w.WriteHeader(http.StatusOK)
}

func (s *webhookSink) alerts() []Alert {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Alert(nil), s.got...)
}

func TestNotifierDeliversWithRetry(t *testing.T) {
	sink := &webhookSink{failLeft: 2}
	srv := httptest.NewServer(http.HandlerFunc(sink.handler))
	defer srv.Close()

	n := NewNotifier(srv.URL, NotifierConfig{Retries: 3, Backoff: time.Millisecond})
	n.Notify(Alert{Seq: 1, Rule: "leak-burn", Series: "leak_burn/insecure", State: "firing", Value: 1})
	n.Close()

	got := sink.alerts()
	if len(got) != 1 || got[0].Rule != "leak-burn" {
		t.Fatalf("delivered = %+v", got)
	}
	sink.mu.Lock()
	attempts := sink.attempts
	sink.mu.Unlock()
	if attempts != 3 {
		t.Fatalf("attempts = %d, want 3 (two failures then success)", attempts)
	}
	if n.Delivered() != 1 || n.Failed() != 0 || n.Dropped() != 0 {
		t.Fatalf("counters = delivered %d failed %d dropped %d", n.Delivered(), n.Failed(), n.Dropped())
	}
}

func TestNotifierCountsExhaustedRetries(t *testing.T) {
	sink := &webhookSink{failLeft: 100}
	srv := httptest.NewServer(http.HandlerFunc(sink.handler))
	defer srv.Close()

	var logged bool
	n := NewNotifier(srv.URL, NotifierConfig{
		Retries: 1, Backoff: time.Millisecond,
		Logf: func(string, ...any) { logged = true },
	})
	n.Notify(Alert{Seq: 1})
	n.Close()
	if n.Failed() != 1 || n.Delivered() != 0 {
		t.Fatalf("counters = delivered %d failed %d", n.Delivered(), n.Failed())
	}
	if !logged {
		t.Fatal("exhausted delivery not logged")
	}
}

func TestNotifierNilAndEmptyURL(t *testing.T) {
	if NewNotifier("", NotifierConfig{}) != nil {
		t.Fatal("empty URL built a notifier")
	}
	var n *Notifier
	n.Notify(Alert{}) // must not panic
	n.Close()
	if n.Delivered() != 0 || n.Failed() != 0 || n.Dropped() != 0 {
		t.Fatal("nil notifier reported counts")
	}
}

func TestNotifierDropsWhenQueueFull(t *testing.T) {
	// A server that blocks until released keeps the worker busy so the
	// tiny queue overflows.
	release := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release
	}))
	defer srv.Close()

	n := NewNotifier(srv.URL, NotifierConfig{Queue: 1, Retries: 0, Backoff: time.Millisecond})
	for i := 0; i < 10; i++ {
		n.Notify(Alert{Seq: uint64(i)})
	}
	if n.Dropped() == 0 {
		t.Fatal("full queue did not drop")
	}
	close(release)
	n.Close()
}
