package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
)

// WritePrometheus renders a snapshot in the Prometheus text exposition
// format (version 0.0.4): every counter becomes
// <ns>_<name>_total{domain="d"} and every histogram a cumulative
// <ns>_<name>_bucket{domain="d",le="..."} series with +Inf, _sum omitted
// (log2 buckets do not retain exact sums) and _count emitted. Each
// emitted metric family is preceded by # HELP and # TYPE metadata.
// Output is byte-deterministic for a given snapshot: series are written
// in catalog order, domains ascending, zero-valued domain series skipped
// for counters (Prometheus treats absent as zero) but never for
// populated histograms. A nil snapshot writes nothing and returns nil,
// matching the package's nil-no-op convention.
func WritePrometheus(w io.Writer, s *Snapshot, namespace string) error {
	if s == nil {
		return nil
	}
	if namespace == "" {
		namespace = "dagguise"
	}
	bw := bufio.NewWriter(w)

	for c := Counter(0); int(c) < NumCounters; c++ {
		name := namespace + "_" + c.String() + "_total"
		wrote := false
		for d := 0; d < s.Domains; d++ {
			v := s.Counter(c, d)
			if v == 0 {
				continue
			}
			if !wrote {
				fmt.Fprintf(bw, "# HELP %s %s\n", name, c.Help())
				fmt.Fprintf(bw, "# TYPE %s counter\n", name)
				wrote = true
			}
			fmt.Fprintf(bw, "%s{domain=\"%d\"} %d\n", name, d, v)
		}
	}

	for h := Hist(0); int(h) < NumHists; h++ {
		name := namespace + "_" + h.String()
		wrote := false
		for d := 0; d < s.Domains; d++ {
			total := s.HistTotal(h, d)
			if total == 0 {
				continue
			}
			if !wrote {
				fmt.Fprintf(bw, "# HELP %s %s\n", name, h.Help())
				fmt.Fprintf(bw, "# TYPE %s histogram\n", name)
				wrote = true
			}
			var cum uint64
			for k, n := range s.HistBuckets(h, d) {
				cum += n
				if n == 0 {
					continue
				}
				// The bucket upper bound: bucket k covers [2^(k-1), 2^k),
				// so le = 2^k - 1 in integer terms.
				le := strconv.FormatUint(bucketHigh(k), 10)
				fmt.Fprintf(bw, "%s_bucket{domain=\"%d\",le=\"%s\"} %d\n", name, d, le, cum)
			}
			fmt.Fprintf(bw, "%s_bucket{domain=\"%d\",le=\"+Inf\"} %d\n", name, d, total)
			fmt.Fprintf(bw, "%s_count{domain=\"%d\"} %d\n", name, d, total)
		}
	}
	return bw.Flush()
}

// bucketHigh returns the largest value falling in histogram bucket k.
func bucketHigh(k int) uint64 {
	if k == 0 {
		return 0
	}
	if k >= 64 {
		return ^uint64(0)
	}
	return 1<<uint(k) - 1
}
