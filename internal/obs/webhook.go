package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// Notifier delivers alert edges to an HTTP webhook as JSON POSTs from a
// dedicated goroutine, so alert evaluation on the hot ingest path never
// blocks on the network. Delivery is at-most-once per edge with bounded
// retries and capped exponential backoff; a full queue drops the edge
// and counts it rather than stalling the producer. (The backoff lives
// here rather than reusing internal/runner's: obs sits below runner in
// the import graph.)
type Notifier struct {
	url     string
	client  *http.Client
	ch      chan Alert
	done    chan struct{}
	wg      sync.WaitGroup
	retries int
	backoff time.Duration
	logf    func(format string, args ...any)

	delivered atomic.Uint64
	failed    atomic.Uint64
	dropped   atomic.Uint64
}

// NotifierConfig tunes a Notifier; zero values take defaults.
type NotifierConfig struct {
	// Retries is how many re-attempts follow a failed POST (default 3).
	Retries int
	// Backoff is the first retry delay, doubling per attempt up to
	// 8x (default 250ms).
	Backoff time.Duration
	// Queue is the pending-edge buffer (default 64).
	Queue int
	// Timeout bounds one POST (default 5s).
	Timeout time.Duration
	// Logf, when set, receives delivery failures.
	Logf func(format string, args ...any)
}

// NewNotifier starts a notifier posting to url. Empty url returns nil,
// and a nil *Notifier is a no-op everywhere, so callers wire the flag
// value straight through.
func NewNotifier(url string, cfg NotifierConfig) *Notifier {
	if url == "" {
		return nil
	}
	if cfg.Retries <= 0 {
		cfg.Retries = 3
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = 250 * time.Millisecond
	}
	if cfg.Queue <= 0 {
		cfg.Queue = 64
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 5 * time.Second
	}
	n := &Notifier{
		url:     url,
		client:  &http.Client{Timeout: cfg.Timeout},
		ch:      make(chan Alert, cfg.Queue),
		done:    make(chan struct{}),
		retries: cfg.Retries,
		backoff: cfg.Backoff,
		logf:    cfg.Logf,
	}
	n.wg.Add(1)
	go n.run()
	return n
}

// Notify enqueues an alert edge for delivery without blocking; when the
// queue is full the edge is dropped and counted. No-op on nil.
func (n *Notifier) Notify(a Alert) {
	if n == nil {
		return
	}
	select {
	case n.ch <- a:
	default:
		n.dropped.Add(1)
	}
}

// Close stops the notifier after draining edges already enqueued.
// No-op on nil.
func (n *Notifier) Close() {
	if n == nil {
		return
	}
	close(n.done)
	n.wg.Wait()
}

// Delivered, Failed and Dropped report delivery outcomes.
func (n *Notifier) Delivered() uint64 {
	if n == nil {
		return 0
	}
	return n.delivered.Load()
}

func (n *Notifier) Failed() uint64 {
	if n == nil {
		return 0
	}
	return n.failed.Load()
}

func (n *Notifier) Dropped() uint64 {
	if n == nil {
		return 0
	}
	return n.dropped.Load()
}

func (n *Notifier) run() {
	defer n.wg.Done()
	for {
		select {
		case a := <-n.ch:
			n.deliver(a)
		case <-n.done:
			// Drain what is already queued, then stop.
			for {
				select {
				case a := <-n.ch:
					n.deliver(a)
				default:
					return
				}
			}
		}
	}
}

// deliver POSTs one edge, retrying transient failures with capped
// exponential backoff.
func (n *Notifier) deliver(a Alert) {
	body, err := json.Marshal(a)
	if err != nil {
		n.failed.Add(1)
		return
	}
	delay := n.backoff
	maxDelay := 8 * n.backoff
	var lastErr error
	for attempt := 0; attempt <= n.retries; attempt++ {
		if attempt > 0 {
			select {
			case <-time.After(delay):
			case <-n.done:
				// Shutting down: one final immediate attempt, no wait.
			}
			delay *= 2
			if delay > maxDelay {
				delay = maxDelay
			}
		}
		lastErr = n.post(body)
		if lastErr == nil {
			n.delivered.Add(1)
			return
		}
	}
	n.failed.Add(1)
	if n.logf != nil {
		n.logf("obs: webhook delivery failed after %d attempts: %v", n.retries+1, lastErr)
	}
}

func (n *Notifier) post(body []byte) error {
	resp, err := n.client.Post(n.url, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		return fmt.Errorf("webhook returned %s", resp.Status)
	}
	return nil
}
