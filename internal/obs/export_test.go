package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// syntheticEvents is a tiny two-domain scenario: a shaper emission per
// domain, the resulting bank activity and bursts, one refresh window and an
// instant stall marker.
func syntheticEvents() []Event {
	return []Event{
		{Cycle: 10, Comp: CompShaper, Kind: EvReal, Index: 1, Domain: 1},
		{Cycle: 12, Dur: 46, Comp: CompBank, Kind: EvRowMiss, Index: 3, Domain: 1},
		{Cycle: 54, Dur: 4, Comp: CompChannel, Kind: EvBurst, Index: 0, Domain: 1},
		{Cycle: 20, Comp: CompShaper, Kind: EvFake, Index: 2, Domain: 2},
		{Cycle: 22, Dur: 20, Comp: CompBank, Kind: EvRowHit, Index: 5, Domain: 2},
		{Cycle: 38, Dur: 4, Comp: CompChannel, Kind: EvBurst, Index: 0, Domain: 2},
		{Cycle: 60, Dur: 160, Comp: CompRank, Kind: EvRefresh, Index: 0},
		{Cycle: 75, Comp: CompSystem, Kind: EvEgressStall, Index: 1, Domain: 1},
	}
}

func TestChromeTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, syntheticEvents()); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "chrome_trace.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/obs -run ChromeTraceGolden -update` to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("export drifted from golden file:\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

// chromeTrace mirrors the subset of the Chrome trace-event schema the
// exporter writes, for structural validation.
type chromeTrace struct {
	DisplayTimeUnit string `json:"displayTimeUnit"`
	TraceEvents     []struct {
		Ph   string `json:"ph"`
		Name string `json:"name"`
		Cat  string `json:"cat"`
		TS   uint64 `json:"ts"`
		Dur  uint64 `json:"dur"`
		Pid  int32  `json:"pid"`
		Tid  int32  `json:"tid"`
	} `json:"traceEvents"`
}

func TestChromeTraceIsValidJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, syntheticEvents()); err != nil {
		t.Fatal(err)
	}
	var parsed chromeTrace
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	var complete, instant, meta int
	for _, ev := range parsed.TraceEvents {
		switch ev.Ph {
		case "X":
			complete++
		case "i":
			instant++
		case "M":
			meta++
		}
	}
	if complete != 5 || instant != 3 {
		t.Fatalf("event mix X=%d i=%d, want 5/3", complete, instant)
	}
	// One process_name per component present plus one thread_name per lane.
	if meta == 0 {
		t.Fatal("no metadata records")
	}
	// Empty event slices still produce a loadable document.
	buf.Reset()
	if err := WriteChromeTrace(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("empty export invalid: %v", err)
	}
}

func TestFormatSummary(t *testing.T) {
	r := NewRegistry(2)
	r.Add(CtrRowHits, 1, 80)
	r.Add(CtrRowMisses, 1, 15)
	r.Add(CtrRowConflicts, 1, 5)
	r.Add(CtrIssuedReads, 1, 90)
	r.Add(CtrIssuedFakes, 1, 10)
	r.Add(CtrBusBusyCycles, 1, 400)
	r.Add(CtrShaperForwarded, 1, 90)
	r.Inc(CtrSchedPicks, 0)
	for i := 0; i < 10; i++ {
		r.Observe(HistShaperQueue, 1, uint64(i%5))
	}
	out := FormatSummary(r.Snapshot(), 1000)
	for _, want := range []string{
		"row-hits", "80.0%", "shaper_queue_occupancy", "bus-util", "40.0%", "sched picks 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}
