package obs

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// RuleKind selects how a Rule condenses a series into one value.
type RuleKind string

const (
	// RuleThreshold compares the most recent point against Threshold.
	RuleThreshold RuleKind = "threshold"
	// RuleBurnRate compares the mean of the last Window points against
	// Threshold — with a 0/1 indicator series (window exceeded its
	// budget or not) this is the classic SLO burn rate: the fraction of
	// the recent budget windows that burned.
	RuleBurnRate RuleKind = "burn_rate"
)

// Rule is one SLO alerting rule evaluated against TSDB series. Series
// may end in "*", matching every series with that prefix (so one rule
// covers e.g. leak_burn/<every tenant>); each match is tracked and
// deduplicated independently.
type Rule struct {
	// Name identifies the rule in alerts and logs.
	Name string `json:"name"`
	// Series is the series name or trailing-* prefix pattern.
	Series string `json:"series"`
	// Kind is threshold or burn_rate (default threshold).
	Kind RuleKind `json:"kind,omitempty"`
	// Op is the comparison: ">=" (default) or "<=".
	Op string `json:"op,omitempty"`
	// Threshold is the boundary value.
	Threshold float64 `json:"threshold"`
	// Window is the burn-rate lookback in points (default 5).
	Window int `json:"window,omitempty"`
	// MinPoints suppresses evaluation until the series holds at least
	// this many points (default 1), so cold series cannot flap.
	MinPoints int `json:"min_points,omitempty"`
	// Severity labels alerts from this rule: "info", "warning" (default)
	// or "critical". Consumers (dagmon -min-severity) filter on it.
	Severity string `json:"severity,omitempty"`
}

// Severity levels, weakest first.
const (
	SeverityInfo     = "info"
	SeverityWarning  = "warning"
	SeverityCritical = "critical"
)

// SeverityRank orders severities for filtering: info < warning <
// critical. Unknown strings rank below info.
func SeverityRank(s string) int {
	switch s {
	case SeverityInfo:
		return 1
	case SeverityWarning:
		return 2
	case SeverityCritical:
		return 3
	default:
		return 0
	}
}

// Validate checks one rule, applying defaults in place.
func (r *Rule) Validate() error {
	if r.Name == "" {
		return fmt.Errorf("obs: rule without a name")
	}
	if r.Series == "" {
		return fmt.Errorf("obs: rule %q without a series", r.Name)
	}
	switch r.Kind {
	case "":
		r.Kind = RuleThreshold
	case RuleThreshold, RuleBurnRate:
	default:
		return fmt.Errorf("obs: rule %q has unknown kind %q", r.Name, r.Kind)
	}
	switch r.Op {
	case "":
		r.Op = ">="
	case ">=", "<=":
	default:
		return fmt.Errorf("obs: rule %q has unknown op %q (want >= or <=)", r.Name, r.Op)
	}
	if r.Window <= 0 {
		r.Window = 5
	}
	if r.MinPoints <= 0 {
		r.MinPoints = 1
	}
	switch r.Severity {
	case "":
		r.Severity = SeverityWarning
	case SeverityInfo, SeverityWarning, SeverityCritical:
	default:
		return fmt.Errorf("obs: rule %q has unknown severity %q (want info, warning or critical)", r.Name, r.Severity)
	}
	return nil
}

// DefaultRules is the stock SLO catalog, keyed to the series naming
// conventions the feeders in this repo use: dagauditd feeds
// leak_burn/<tenant> (one 0/1 point per audited window),
// queue_sat/<shard> (fullness fraction per processed batch) and
// retry_rate/<shard> (0/1 duplicate indicator per batch); campaign
// tooling feeds stall/<job> from the simulator watchdog. Override with
// a -alert-rules JSON file when the defaults don't fit.
func DefaultRules() []Rule {
	rules := []Rule{
		{Name: "leak-budget-burn", Series: "leak_burn/*", Kind: RuleBurnRate, Threshold: 0.5, Window: 4, MinPoints: 2, Severity: SeverityCritical},
		{Name: "shard-queue-saturation", Series: "queue_sat/*", Kind: RuleThreshold, Threshold: 0.75},
		{Name: "watchdog-stall", Series: "stall/*", Kind: RuleThreshold, Threshold: 1, Severity: SeverityCritical},
		{Name: "retry-rate", Series: "retry_rate/*", Kind: RuleBurnRate, Threshold: 0.5, Window: 8, MinPoints: 4},
	}
	for i := range rules {
		if err := rules[i].Validate(); err != nil {
			panic(err) // the stock catalog must be valid by construction
		}
	}
	return rules
}

// ParseRules decodes a JSON rule list (the -alert-rules file format)
// and validates every entry.
func ParseRules(data []byte) ([]Rule, error) {
	var rules []Rule
	if err := strictJSON(data, &rules); err != nil {
		return nil, fmt.Errorf("obs: parsing rules: %w", err)
	}
	for i := range rules {
		if err := rules[i].Validate(); err != nil {
			return nil, err
		}
	}
	return rules, nil
}

func strictJSON(data []byte, v any) error {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

// Alert is one edge of a rule's state machine: a matched series
// crossing into violation ("firing") or back out ("resolved"). Seq is a
// per-engine monotonic sequence number; T is the logical time of the
// evaluation that produced the edge. Both are deterministic.
type Alert struct {
	Seq       uint64  `json:"seq"`
	T         uint64  `json:"t"`
	Rule      string  `json:"rule"`
	Series    string  `json:"series"`
	State     string  `json:"state"` // "firing" | "resolved"
	Value     float64 `json:"value"`
	Threshold float64 `json:"threshold"`
	Op        string  `json:"op"`
	// Severity copies the rule's severity onto each edge.
	Severity string `json:"severity,omitempty"`
}

// Engine evaluates rules against a TSDB and emits deduplicated alert
// edges: a (rule, series) pair fires once when it crosses into
// violation, stays silent while the violation persists, emits a
// "resolved" edge when it recovers, and may fire again after that.
// Safe for concurrent use; nil receivers are no-ops.
type Engine struct {
	mu      sync.Mutex
	db      *TSDB
	rules   []Rule
	active  map[string]bool
	nextSeq uint64
	history []Alert
	histCap int
}

// DefaultAlertHistory is how many alert edges an engine retains for
// /v1/alerts and checkpointing.
const DefaultAlertHistory = 256

// NewEngine builds an engine over db with the given rules (each must
// already Validate; NewEngine validates again defensively and panics on
// a bad rule, which is a programming error at this layer).
func NewEngine(db *TSDB, rules []Rule) *Engine {
	for i := range rules {
		if err := rules[i].Validate(); err != nil {
			panic(err)
		}
	}
	return &Engine{
		db:      db,
		rules:   rules,
		active:  make(map[string]bool),
		nextSeq: 1,
		histCap: DefaultAlertHistory,
	}
}

// Rules returns a copy of the engine's rule set.
func (e *Engine) Rules() []Rule {
	if e == nil {
		return nil
	}
	return append([]Rule(nil), e.rules...)
}

// Eval evaluates every rule at logical time t and returns the new alert
// edges (nil when nothing changed). No-op on nil.
func (e *Engine) Eval(t uint64) []Alert {
	if e == nil || e.db == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	var edges []Alert
	for i := range e.rules {
		r := &e.rules[i]
		for _, series := range e.matchSeries(r.Series) {
			value, ok := e.ruleValue(r, series)
			if !ok {
				continue
			}
			violated := compare(value, r.Op, r.Threshold)
			key := r.Name + "|" + series
			switch {
			case violated && !e.active[key]:
				e.active[key] = true
				edges = append(edges, e.record(Alert{
					T: t, Rule: r.Name, Series: series, State: "firing",
					Value: value, Threshold: r.Threshold, Op: r.Op, Severity: r.Severity,
				}))
			case !violated && e.active[key]:
				delete(e.active, key)
				edges = append(edges, e.record(Alert{
					T: t, Rule: r.Name, Series: series, State: "resolved",
					Value: value, Threshold: r.Threshold, Op: r.Op, Severity: r.Severity,
				}))
			}
		}
	}
	return edges
}

// matchSeries expands a rule's series pattern. Caller holds e.mu.
func (e *Engine) matchSeries(pattern string) []string {
	if !strings.HasSuffix(pattern, "*") {
		return []string{pattern}
	}
	prefix := strings.TrimSuffix(pattern, "*")
	var out []string
	for _, name := range e.dbNamesLocked() {
		if strings.HasPrefix(name, prefix) {
			out = append(out, name)
		}
	}
	return out
}

// dbNamesLocked lists series names without re-entering e.mu (TSDB has
// its own lock; ordering is db.mu < e.mu never holds since the engine
// only calls into the TSDB, never the reverse).
func (e *Engine) dbNamesLocked() []string {
	return e.db.Names()
}

// ruleValue condenses the series for one rule. Caller holds e.mu.
func (e *Engine) ruleValue(r *Rule, series string) (float64, bool) {
	if e.db.Len(series) < r.MinPoints {
		return 0, false
	}
	switch r.Kind {
	case RuleBurnRate:
		pts := e.db.Window(series, r.Window)
		if len(pts) == 0 {
			return 0, false
		}
		var sum float64
		for _, p := range pts {
			sum += p.V
		}
		return sum / float64(len(pts)), true
	default:
		p, ok := e.db.Last(series)
		if !ok {
			return 0, false
		}
		return p.V, true
	}
}

func compare(v float64, op string, threshold float64) bool {
	if op == "<=" {
		return v <= threshold
	}
	return v >= threshold
}

// record appends an edge to the bounded history. Caller holds e.mu.
func (e *Engine) record(a Alert) Alert {
	a.Seq = e.nextSeq
	e.nextSeq++
	e.history = append(e.history, a)
	if len(e.history) > e.histCap {
		e.history = e.history[len(e.history)-e.histCap:]
	}
	return a
}

// History returns the retained alert edges, oldest first.
func (e *Engine) History() []Alert {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]Alert(nil), e.history...)
}

// Firing returns the (rule, series) pairs currently in violation,
// sorted for determinism.
func (e *Engine) Firing() []string {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]string, 0, len(e.active))
	for k := range e.active {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// EngineState is the serializable state of an Engine: active keys
// sorted, history oldest-first, so the encoding is deterministic. Rules
// are not part of the state — they come from configuration, and a
// restore may legitimately apply a new rule set to old series.
type EngineState struct {
	NextSeq uint64   `json:"next_seq"`
	Active  []string `json:"active,omitempty"`
	History []Alert  `json:"history,omitempty"`
}

// SaveState captures the engine for a checkpoint. Nil receiver returns
// nil.
func (e *Engine) SaveState() *EngineState {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	st := &EngineState{NextSeq: e.nextSeq, History: append([]Alert(nil), e.history...)}
	for k := range e.active {
		st.Active = append(st.Active, k)
	}
	sort.Strings(st.Active)
	return st
}

// RestoreState rebuilds dedup state and history from a checkpoint. A
// nil state resets the engine.
func (e *Engine) RestoreState(st *EngineState) error {
	if e == nil {
		if st == nil {
			return nil
		}
		return fmt.Errorf("obs: engine state restore into a nil engine")
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if st == nil {
		e.active = make(map[string]bool)
		e.nextSeq = 1
		e.history = nil
		return nil
	}
	if st.NextSeq == 0 {
		return fmt.Errorf("obs: engine state has zero next sequence")
	}
	active := make(map[string]bool, len(st.Active))
	for _, k := range st.Active {
		active[k] = true
	}
	e.active = active
	e.nextSeq = st.NextSeq
	e.history = append([]Alert(nil), st.History...)
	if len(e.history) > e.histCap {
		e.history = e.history[len(e.history)-e.histCap:]
	}
	return nil
}
