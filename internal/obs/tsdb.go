package obs

import (
	"fmt"
	"sort"
	"sync"
)

// Point is one sample of a time series. T is a deterministic logical
// time axis — simulated cycles in the simulator, accepted-observation
// counts in the audit service — never wall clock, so stored series (and
// everything derived from them, like alert sequences) are reproducible
// run to run and survive checkpoint/restore bit-identically.
type Point struct {
	T uint64  `json:"t"`
	V float64 `json:"v"`
}

// TSDB is a bounded in-process time-series store: a named set of ring
// buffers of Points. Appends past the per-series capacity overwrite the
// oldest sample, so memory is O(series x cap) regardless of run length.
// Safe for concurrent use; nil receivers are no-ops.
type TSDB struct {
	mu     sync.Mutex
	cap    int
	series map[string]*tsRing
}

type tsRing struct {
	pts     []Point
	next    int
	wrapped bool
}

// DefaultTSDBCap is the default per-series retention (points).
const DefaultTSDBCap = 1024

// NewTSDB builds a store retaining at most capPerSeries points per
// series (DefaultTSDBCap when <= 0).
func NewTSDB(capPerSeries int) *TSDB {
	if capPerSeries <= 0 {
		capPerSeries = DefaultTSDBCap
	}
	return &TSDB{cap: capPerSeries, series: make(map[string]*tsRing)}
}

// Append records (t, v) into the named series, creating it on first
// use. No-op on nil.
//
// Contract: Append preserves insertion order verbatim. Points are
// retained exactly as given — an out-of-order timestamp is NOT
// re-sorted into place, and duplicate timestamps are all kept as
// distinct points. Window/Last therefore mean "most recently appended",
// not "largest T". Producers that feed a TSDB from multiple merged
// sources (the fleet telemetry collector folding per-worker streams)
// must canonicalize first — sort by (series, T) and collapse duplicate
// timestamps — before appending, or derived values (burn rates,
// last-point thresholds) silently depend on arrival order. Pinned by
// TestTSDBAppendOrderContract.
func (db *TSDB) Append(name string, t uint64, v float64) {
	if db == nil {
		return
	}
	db.mu.Lock()
	r := db.series[name]
	if r == nil {
		r = &tsRing{pts: make([]Point, 0, db.cap)}
		db.series[name] = r
	}
	p := Point{T: t, V: v}
	if len(r.pts) < cap(r.pts) {
		r.pts = append(r.pts, p)
	} else {
		r.pts[r.next] = p
		r.next++
		if r.next == cap(r.pts) {
			r.next = 0
		}
		r.wrapped = true
	}
	db.mu.Unlock()
}

// points returns the retained points oldest-first. Caller holds db.mu.
func (r *tsRing) points() []Point {
	out := make([]Point, 0, len(r.pts))
	if r.wrapped {
		out = append(out, r.pts[r.next:]...)
		out = append(out, r.pts[:r.next]...)
	} else {
		out = append(out, r.pts...)
	}
	return out
}

// Series returns the retained points of name, oldest first (nil when
// the series does not exist).
func (db *TSDB) Series(name string) []Point {
	if db == nil {
		return nil
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	r := db.series[name]
	if r == nil {
		return nil
	}
	return r.points()
}

// Last returns the most recent point of name.
func (db *TSDB) Last(name string) (Point, bool) {
	if db == nil {
		return Point{}, false
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	r := db.series[name]
	if r == nil || len(r.pts) == 0 {
		return Point{}, false
	}
	i := r.next - 1
	if i < 0 {
		i = len(r.pts) - 1
	}
	if !r.wrapped {
		i = len(r.pts) - 1
	}
	return r.pts[i], true
}

// Window returns the most recent n points of name, oldest first.
func (db *TSDB) Window(name string, n int) []Point {
	pts := db.Series(name)
	if len(pts) > n {
		pts = pts[len(pts)-n:]
	}
	return pts
}

// Names returns all series names, sorted.
func (db *TSDB) Names() []string {
	if db == nil {
		return nil
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	names := make([]string, 0, len(db.series))
	for n := range db.series {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Len returns the number of retained points of name.
func (db *TSDB) Len(name string) int {
	if db == nil {
		return 0
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	r := db.series[name]
	if r == nil {
		return 0
	}
	return len(r.pts)
}

// TSDBState is the serializable state of a TSDB: series sorted by name,
// points oldest-first, so the encoding is deterministic.
type TSDBState struct {
	Cap    int             `json:"cap"`
	Series []TSSeriesState `json:"series,omitempty"`
}

// TSSeriesState is one series of a TSDBState.
type TSSeriesState struct {
	Name   string  `json:"name"`
	Points []Point `json:"points"`
}

// SaveState captures the store for a checkpoint. Nil receiver returns
// nil.
func (db *TSDB) SaveState() *TSDBState {
	if db == nil {
		return nil
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	st := &TSDBState{Cap: db.cap}
	names := make([]string, 0, len(db.series))
	for n := range db.series {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		st.Series = append(st.Series, TSSeriesState{Name: n, Points: db.series[n].points()})
	}
	return st
}

// RestoreState rebuilds the store from a checkpoint, replacing all
// current series. A nil state clears the store.
func (db *TSDB) RestoreState(st *TSDBState) error {
	if db == nil {
		if st == nil {
			return nil
		}
		return fmt.Errorf("obs: tsdb state restore into a nil store")
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if st == nil {
		db.series = make(map[string]*tsRing)
		return nil
	}
	if st.Cap > 0 {
		db.cap = st.Cap
	}
	series := make(map[string]*tsRing, len(st.Series))
	for _, s := range st.Series {
		if s.Name == "" {
			return fmt.Errorf("obs: tsdb state has an unnamed series")
		}
		if _, dup := series[s.Name]; dup {
			return fmt.Errorf("obs: tsdb state has duplicate series %q", s.Name)
		}
		pts := s.Points
		if len(pts) > db.cap {
			pts = pts[len(pts)-db.cap:]
		}
		r := &tsRing{pts: make([]Point, 0, db.cap)}
		r.pts = append(r.pts, pts...)
		series[s.Name] = r
	}
	db.series = series
	return nil
}
