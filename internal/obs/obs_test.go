package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestBucketMath(t *testing.T) {
	cases := []struct {
		v    uint64
		want int
	}{
		{0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1 << 20, 21}, {^uint64(0), 64},
	}
	for _, c := range cases {
		if got := Bucket(c.v); got != c.want {
			t.Errorf("Bucket(%d) = %d, want %d", c.v, got, c.want)
		}
	}
	if BucketLow(0) != 0 || BucketLow(1) != 1 || BucketLow(4) != 8 {
		t.Fatalf("BucketLow broken: %d %d %d", BucketLow(0), BucketLow(1), BucketLow(4))
	}
	// Every value must land in the bucket whose range contains it.
	for _, v := range []uint64{0, 1, 5, 63, 64, 1000, 1 << 40} {
		b := Bucket(v)
		if v < BucketLow(b) {
			t.Errorf("value %d below its bucket %d floor %d", v, b, BucketLow(b))
		}
		if b+1 < NumBuckets && v >= BucketLow(b+1) {
			t.Errorf("value %d reaches next bucket %d floor %d", v, b+1, BucketLow(b+1))
		}
	}
}

func TestRegistryCountersAndHists(t *testing.T) {
	r := NewRegistry(3)
	r.Inc(CtrRowHits, 1)
	r.Add(CtrRowHits, 1, 4)
	r.Inc(CtrRowHits, 2)
	r.Inc(CtrRowMisses, 0)
	if got := r.Counter(CtrRowHits, 1); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if got := r.CounterTotal(CtrRowHits); got != 6 {
		t.Fatalf("total = %d, want 6", got)
	}
	r.Observe(HistReqLatency, 1, 100) // bucket 7: [64, 128)
	r.Observe(HistReqLatency, 1, 100)
	r.Observe(HistReqLatency, 1, 3) // bucket 2
	s := r.Snapshot()
	if got := s.HistTotal(HistReqLatency, 1); got != 3 {
		t.Fatalf("hist total = %d, want 3", got)
	}
	if s.HistBuckets(HistReqLatency, 1)[7] != 2 {
		t.Fatalf("bucket 7 = %d, want 2", s.HistBuckets(HistReqLatency, 1)[7])
	}
	if p50, ok := s.HistQuantile(HistReqLatency, 1, 0.5); !ok || p50 != 64 {
		t.Fatalf("p50 = %d, %v, want 64", p50, ok)
	}
	// Out-of-range domains clamp to the unattributed slot 0 rather than
	// corrupting memory.
	r.Inc(CtrRowHits, 99)
	r.Inc(CtrRowHits, -1)
	if got := r.Counter(CtrRowHits, 0); got != 2 {
		t.Fatalf("clamped counter = %d, want 2", got)
	}
}

func TestNilRegistryAndTracerAreNoOps(t *testing.T) {
	var r *Registry
	r.Inc(CtrRowHits, 1)
	r.Add(CtrRowHits, 1, 10)
	r.Observe(HistReqLatency, 1, 10)
	if r.Counter(CtrRowHits, 1) != 0 || r.CounterTotal(CtrRowHits) != 0 || r.Domains() != 0 {
		t.Fatal("nil registry returned nonzero")
	}
	if r.Snapshot() != nil {
		t.Fatal("nil registry snapshot should be nil")
	}
	var tr *Tracer
	tr.Emit(Event{})
	tr.Reset()
	if tr.Events() != nil || tr.Len() != 0 || tr.Cap() != 0 || tr.Overwritten() != 0 {
		t.Fatal("nil tracer returned nonzero")
	}
	var s *Snapshot
	if s.Counter(CtrRowHits, 0) != 0 || s.CounterTotal(CtrRowHits) != 0 || s.HistTotal(HistMLP, 0) != 0 {
		t.Fatal("nil snapshot returned nonzero")
	}
	if s.Sub(nil) != nil {
		t.Fatal("nil snapshot Sub should be nil")
	}
	if got := FormatSummary(nil, 0); !strings.Contains(got, "disabled") {
		t.Fatalf("nil summary = %q", got)
	}
}

func TestSnapshotSub(t *testing.T) {
	r := NewRegistry(2)
	r.Add(CtrRetired, 1, 10)
	r.Observe(HistMLP, 1, 4)
	before := r.Snapshot()
	r.Add(CtrRetired, 1, 7)
	r.Observe(HistMLP, 1, 4)
	d := r.Snapshot().Sub(before)
	if got := d.Counter(CtrRetired, 1); got != 7 {
		t.Fatalf("delta counter = %d, want 7", got)
	}
	if got := d.HistTotal(HistMLP, 1); got != 1 {
		t.Fatalf("delta hist total = %d, want 1", got)
	}
}

// TestConcurrentCollection exercises the atomic counter/histogram paths and
// background snapshotting under the race detector: the CI race job runs
// this package with -race.
func TestConcurrentCollection(t *testing.T) {
	r := NewRegistry(4)
	tr := NewTracer(1024)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(dom int) {
			defer wg.Done()
			for i := 0; i < 10_000; i++ {
				r.Inc(CtrRowHits, dom)
				r.Observe(HistReqLatency, dom, uint64(i))
				tr.Emit(Event{Cycle: uint64(i), Comp: CompBank, Kind: EvRowHit, Domain: int32(dom)})
			}
		}(g)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			_ = r.Snapshot()
			_ = tr.Events()
		}
	}()
	wg.Wait()
	<-done
	if got := r.CounterTotal(CtrRowHits); got != 40_000 {
		t.Fatalf("total = %d, want 40000", got)
	}
	if tr.Len() != 1024 {
		t.Fatalf("tracer retained %d, want full ring 1024", tr.Len())
	}
	if tr.Overwritten() != 40_000-1024 {
		t.Fatalf("overwritten = %d, want %d", tr.Overwritten(), 40_000-1024)
	}
}
