package obs

import "sync"

// Component names the hardware unit an event belongs to; in the Chrome
// trace export each component becomes a process with one thread (lane)
// per Index, so banks, shapers and cores render as parallel swimlanes.
type Component uint8

const (
	// CompBank events live on per-DRAM-bank lanes (Index = flat bank).
	CompBank Component = iota
	// CompChannel events live on per-channel data-bus lanes.
	CompChannel
	// CompRank events live on per-rank lanes (refresh windows).
	CompRank
	// CompShaper events live on per-shaper lanes (Index = domain).
	CompShaper
	// CompCore events live on per-core lanes (Index = domain).
	CompCore
	// CompSystem events are system-level markers (watchdog violations).
	CompSystem

	numComponents
)

var componentNames = [numComponents]string{
	CompBank:    "dram banks",
	CompChannel: "data bus",
	CompRank:    "ranks",
	CompShaper:  "shapers",
	CompCore:    "cores",
	CompSystem:  "system",
}

// String returns the component's lane-group name.
func (c Component) String() string {
	if int(c) < len(componentNames) {
		return componentNames[c]
	}
	return "unknown"
}

// EventKind classifies a traced event.
type EventKind uint8

const (
	// Row-buffer outcomes of a committed transaction (bank lanes).
	EvRowHit EventKind = iota
	EvRowMiss
	EvRowConflict
	// EvBurst is the data burst of a transaction (channel lanes).
	EvBurst
	// EvRefresh is a refresh-displacement window (rank lanes).
	EvRefresh
	// EvReal / EvFake are shaper emissions (shaper lanes).
	EvReal
	EvFake
	// EvEgressStall marks a tick whose shaped egress could not drain
	// (shaper lanes).
	EvEgressStall
	// EvViolation marks a watchdog invariant failure (system lane).
	EvViolation

	numEventKinds
)

var eventNames = [numEventKinds]string{
	EvRowHit:      "row-hit",
	EvRowMiss:     "row-miss",
	EvRowConflict: "row-conflict",
	EvBurst:       "burst",
	EvRefresh:     "refresh",
	EvReal:        "real",
	EvFake:        "fake",
	EvEgressStall: "egress-stall",
	EvViolation:   "violation",
}

// String returns the event kind's display name.
func (k EventKind) String() string {
	if int(k) < len(eventNames) {
		return eventNames[k]
	}
	return "unknown"
}

// Event is one traced occurrence: at Cycle, lasting Dur cycles (0 =
// instant), on lane Index of component Comp, attributed to Domain.
type Event struct {
	Cycle  uint64
	Dur    uint64
	Comp   Component
	Kind   EventKind
	Index  int32
	Domain int32
}

// Tracer records events into a bounded ring buffer: when full, the oldest
// events are overwritten and counted. All methods are safe on a nil
// receiver (no-ops) and safe for concurrent use.
type Tracer struct {
	mu          sync.Mutex
	buf         []Event
	next        int
	wrapped     bool
	overwritten uint64
}

// DefaultTraceCap is the default ring capacity (events).
const DefaultTraceCap = 1 << 20

// NewTracer builds a tracer retaining at most capacity events
// (DefaultTraceCap when capacity <= 0).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCap
	}
	return &Tracer{buf: make([]Event, 0, capacity)}
}

// Emit records an event. No-op on nil.
func (t *Tracer) Emit(ev Event) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, ev)
	} else {
		t.buf[t.next] = ev
		t.next++
		if t.next == cap(t.buf) {
			t.next = 0
		}
		t.wrapped = true
		t.overwritten++
	}
	t.mu.Unlock()
}

// Events returns the retained events in emission order (oldest first).
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, 0, len(t.buf))
	if t.wrapped {
		out = append(out, t.buf[t.next:]...)
		out = append(out, t.buf[:t.next]...)
	} else {
		out = append(out, t.buf...)
	}
	return out
}

// Len returns the number of retained events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.buf)
}

// Cap returns the ring capacity.
func (t *Tracer) Cap() int {
	if t == nil {
		return 0
	}
	return cap(t.buf)
}

// Overwritten returns how many events were lost to ring wraparound.
func (t *Tracer) Overwritten() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.overwritten
}

// Reset discards all retained events (the capacity is kept).
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.buf = t.buf[:0]
	t.next = 0
	t.wrapped = false
	t.overwritten = 0
	t.mu.Unlock()
}
