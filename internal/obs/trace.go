package obs

import "sync"

// Component names the hardware unit an event belongs to; in the Chrome
// trace export each component becomes a process with one thread (lane)
// per Index, so banks, shapers and cores render as parallel swimlanes.
type Component uint8

const (
	// CompBank events live on per-DRAM-bank lanes (Index = flat bank).
	CompBank Component = iota
	// CompChannel events live on per-channel data-bus lanes.
	CompChannel
	// CompRank events live on per-rank lanes (refresh windows).
	CompRank
	// CompShaper events live on per-shaper lanes (Index = domain).
	CompShaper
	// CompCore events live on per-core lanes (Index = domain).
	CompCore
	// CompSystem events are system-level markers (watchdog violations).
	CompSystem
	// CompRunner events live on per-job campaign-runner lanes.
	CompRunner
	// CompClient events live on auditd-client stream lanes.
	CompClient
	// CompService events live on auditd ingest/shard lanes.
	CompService

	numComponents
)

var componentNames = [numComponents]string{
	CompBank:    "dram banks",
	CompChannel: "data bus",
	CompRank:    "ranks",
	CompShaper:  "shapers",
	CompCore:    "cores",
	CompSystem:  "system",
	CompRunner:  "runner",
	CompClient:  "audit client",
	CompService: "audit service",
}

// String returns the component's lane-group name.
func (c Component) String() string {
	if int(c) < len(componentNames) {
		return componentNames[c]
	}
	return "unknown"
}

// EventKind classifies a traced event.
type EventKind uint8

const (
	// Row-buffer outcomes of a committed transaction (bank lanes).
	EvRowHit EventKind = iota
	EvRowMiss
	EvRowConflict
	// EvBurst is the data burst of a transaction (channel lanes).
	EvBurst
	// EvRefresh is a refresh-displacement window (rank lanes).
	EvRefresh
	// EvReal / EvFake are shaper emissions (shaper lanes).
	EvReal
	EvFake
	// EvEgressStall marks a tick whose shaped egress could not drain
	// (shaper lanes).
	EvEgressStall
	// EvViolation marks a watchdog invariant failure (system lane).
	EvViolation
	// EvSpanBegin / EvSpanEnd bracket a structured span (flight
	// recorder); Span carries the span ID, Parent the enclosing span.
	EvSpanBegin
	EvSpanEnd
	// EvAlert marks an SLO rule firing or resolving (system lane).
	EvAlert

	numEventKinds
)

var eventNames = [numEventKinds]string{
	EvRowHit:      "row-hit",
	EvRowMiss:     "row-miss",
	EvRowConflict: "row-conflict",
	EvBurst:       "burst",
	EvRefresh:     "refresh",
	EvReal:        "real",
	EvFake:        "fake",
	EvEgressStall: "egress-stall",
	EvViolation:   "violation",
	EvSpanBegin:   "span-begin",
	EvSpanEnd:     "span-end",
	EvAlert:       "alert",
}

// String returns the event kind's display name.
func (k EventKind) String() string {
	if int(k) < len(eventNames) {
		return eventNames[k]
	}
	return "unknown"
}

// Event is one traced occurrence: at Cycle, lasting Dur cycles (0 =
// instant), on lane Index of component Comp, attributed to Domain.
// Span events (EvSpanBegin/EvSpanEnd) additionally carry the span ID,
// its parent span (0 = root) and a display name; every other kind
// leaves those fields zero.
type Event struct {
	Cycle  uint64
	Dur    uint64
	Span   uint64
	Parent uint64
	Name   string
	Comp   Component
	Kind   EventKind
	Index  int32
	Domain int32
}

// Tracer records events into a bounded ring buffer: when full, the oldest
// events are overwritten and counted. All methods are safe on a nil
// receiver (no-ops) and safe for concurrent use.
type Tracer struct {
	mu          sync.Mutex
	buf         []Event
	next        int
	wrapped     bool
	overwritten uint64
}

// DefaultTraceCap is the default ring capacity (events).
const DefaultTraceCap = 1 << 20

// NewTracer builds a tracer retaining at most capacity events
// (DefaultTraceCap when capacity <= 0).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCap
	}
	return &Tracer{buf: make([]Event, 0, capacity)}
}

// Emit records an event. No-op on nil.
func (t *Tracer) Emit(ev Event) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, ev)
	} else {
		t.buf[t.next] = ev
		t.next++
		if t.next == cap(t.buf) {
			t.next = 0
		}
		t.wrapped = true
		t.overwritten++
	}
	t.mu.Unlock()
}

// Events returns the retained events in emission order (oldest first).
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, 0, len(t.buf))
	if t.wrapped {
		out = append(out, t.buf[t.next:]...)
		out = append(out, t.buf[:t.next]...)
	} else {
		out = append(out, t.buf...)
	}
	return out
}

// Len returns the number of retained events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.buf)
}

// Cap returns the ring capacity.
func (t *Tracer) Cap() int {
	if t == nil {
		return 0
	}
	return cap(t.buf)
}

// Overwritten returns how many events were lost to ring wraparound.
func (t *Tracer) Overwritten() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.overwritten
}

// Reset discards all retained events (the capacity is kept).
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.buf = t.buf[:0]
	t.next = 0
	t.wrapped = false
	t.overwritten = 0
	t.mu.Unlock()
}
